(* Benchmark driver: regenerates every figure of the paper's evaluation
   (Figures 3-13) plus the ablations, then runs Bechamel micro-benchmarks
   of the core runtime primitives.

     dune exec bench/main.exe                 # everything, paper scale
     dune exec bench/main.exe -- --quick      # shrunken sweeps
     dune exec bench/main.exe -- fig3 fig11   # a subset
     dune exec bench/main.exe -- --no-micro   # skip Bechamel section
     dune exec bench/main.exe -- --json       # also write BENCH.json *)

let run_figures ~scale ~ids =
  let c = Harness.Experiments.ctx scale in
  let all = Harness.Experiments.all c in
  let selected =
    match ids with
    | [] -> all
    | ids ->
      List.map
        (fun id ->
           match List.assoc_opt id all with
           | Some f -> (id, f)
           | None ->
             Printf.eprintf "unknown figure id %S; try: %s\n%!" id
               (String.concat " " (List.map fst all));
             exit 2)
        ids
  in
  List.map
    (fun (id, f) ->
       let t0 = Unix.gettimeofday () in
       let fig = f c in
       Harness.Series.render Format.std_formatter fig;
       (id, Unix.gettimeofday () -. t0))
    selected

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core primitives                    *)

(* The cache-hit benchmarks drive a real Thread_ctx outside the engine:
   a one-thread system faults a line in (and dirties it) during a warmup
   run, after which repeated hits on that line perform no effects — the
   access path is plain OCaml — so Bechamel can call it directly. *)
let warmed_hit_ctx () =
  let sys = Samhita.System.create ~threads:1 () in
  let got = ref None in
  ignore
    (Samhita.System.spawn sys (fun t ->
         let a = Samhita.Thread_ctx.malloc t ~bytes:64 in
         Samhita.Thread_ctx.write_i64 t a 1L;
         got := Some (t, a))
     : Samhita.Thread_ctx.t);
  Samhita.System.run sys;
  match !got with
  | Some ta -> ta
  | None -> failwith "warmup did not run"

let bechamel_tests () =
  let open Bechamel in
  let cfg = Samhita.Config.default in
  let layout = Samhita.Layout.of_config cfg in
  let line_bytes = Samhita.Config.line_bytes cfg in

  (* The strided false-sharing shape of Figures 5 and 8-11: at P=8 a
     thread owns every 8th double, so its twin diff changes one 8-byte
     slot per 64 bytes. Sparse diffs like this are where the word-wise
     scan earns its keep — 7 of 8 words compare equal and are skipped in
     one load each. *)
  let diff_pair () =
    let twin = Bytes.make line_bytes '\000' in
    let current = Bytes.copy twin in
    for i = 0 to (4096 / 64) - 1 do
      Bytes.set_int64_le current (i * 64) 0x3FF0000000000000L
    done;
    (twin, current)
  in
  let diff_make =
    let twin, current = diff_pair () in
    Test.make ~name:"diff.make (strided false sharing)"
      (Staged.stage (fun () ->
           ignore
             (Samhita.Diff.make layout ~line:0 ~twin ~current ~dirty_pages:1
              : Samhita.Diff.t)))
  in
  let diff_make_ref =
    (* The retired scalar implementation on the same input, measured in
       the same process: the diff.make speedup reported in BENCH.json is
       the ratio of these two, immune to run-to-run machine drift. *)
    let twin, current = diff_pair () in
    Test.make ~name:"diff.make (reference scalar)"
      (Staged.stage (fun () ->
           ignore
             (Samhita.Diff_reference.make layout ~line:0 ~twin ~current
                ~dirty_pages:1
              : Samhita.Diff_reference.t)))
  in
  (* The other shape that matters: numeric data freshly recomputed in
     place (a Jacobi or MD sweep) changes the mantissa bytes of every
     double but rarely its exponent byte, so every word differs
     partially. This is the worst case for a word-wise scan (nearly
     every word takes the byte-loop fallback) and is kept benched so it
     cannot regress silently. *)
  let diff_pair_dense () =
    let twin = Bytes.make line_bytes '\000' in
    let current = Bytes.copy twin in
    for i = 0 to (4096 / 8) - 1 do
      Bytes.set_int64_le current (i * 8) 0x0000BEEFBEEFBEEFL
    done;
    (twin, current)
  in
  let diff_make_dense =
    let twin, current = diff_pair_dense () in
    Test.make ~name:"diff.make (dense numeric)"
      (Staged.stage (fun () ->
           ignore
             (Samhita.Diff.make layout ~line:0 ~twin ~current ~dirty_pages:1
              : Samhita.Diff.t)))
  in
  let diff_make_dense_ref =
    let twin, current = diff_pair_dense () in
    Test.make ~name:"diff.make (dense numeric, reference)"
      (Staged.stage (fun () ->
           ignore
             (Samhita.Diff_reference.make layout ~line:0 ~twin ~current
                ~dirty_pages:1
              : Samhita.Diff_reference.t)))
  in
  let diff_apply =
    let twin, current = diff_pair () in
    let d = Samhita.Diff.make layout ~line:0 ~twin ~current ~dirty_pages:1 in
    let target = Bytes.make line_bytes '\000' in
    Test.make ~name:"diff.apply"
      (Staged.stage (fun () -> Samhita.Diff.apply d target))
  in
  let heap_bench =
    Test.make ~name:"event-queue push+pop x64"
      (Staged.stage (fun () ->
           let h = Desim.Heap.create ~initial_capacity:128 () in
           for i = 0 to 63 do
             Desim.Heap.push h ~time:(i * 37 mod 101) i
           done;
           let rec drain () =
             match Desim.Heap.pop h with
             | Some _ -> drain ()
             | None -> ()
           in
           drain ()))
  in
  let cache_read_hit, cache_write_hit =
    let t, a = warmed_hit_ctx () in
    ( Test.make ~name:"thread.read_i64 (cache hit)"
        (Staged.stage (fun () ->
             ignore (Samhita.Thread_ctx.read_i64 t a : int64))),
      Test.make ~name:"thread.write_i64 (cache hit)"
        (Staged.stage (fun () -> Samhita.Thread_ctx.write_i64 t a 2L)) )
  in
  let rng_bench =
    let rng = Desim.Rng.create ~seed:7 in
    Test.make ~name:"rng.int64"
      (Staged.stage (fun () -> ignore (Desim.Rng.int64 rng : int64)))
  in
  let arena_bench =
    let arena = Samhita.Allocator.Arena.create () in
    Samhita.Allocator.Arena.add_chunk arena ~base:0 ~size:(1 lsl 20);
    Test.make ~name:"arena alloc+free"
      (Staged.stage (fun () ->
           match Samhita.Allocator.Arena.alloc arena ~bytes:64 with
           | `Hit addr -> Samhita.Allocator.Arena.free arena ~addr ~bytes:64
           | `Need_chunk ->
             Samhita.Allocator.Arena.add_chunk arena ~base:0
               ~size:(1 lsl 20)))
  in
  let smp_read =
    let mcfg = Smp.Config.default in
    let machine = Smp.Machine.create mcfg in
    let addr = Smp.Machine.alloc machine ~bytes:4096 ~align:64 in
    Test.make ~name:"smp coherence read_cost"
      (Staged.stage (fun () ->
           ignore (Smp.Machine.read_cost machine ~thread:0 ~addr : float)))
  in
  let update_apply =
    let u = Samhita.Update.of_i64 ~addr:128 0x4000000000000000L in
    let buf = Bytes.make line_bytes '\000' in
    Test.make ~name:"update.apply_to_line"
      (Staged.stage (fun () ->
           Samhita.Update.apply_to_line layout u ~line:0 buf))
  in
  [ diff_make; diff_make_ref; diff_make_dense; diff_make_dense_ref;
    diff_apply; heap_bench; cache_read_hit; cache_write_hit; rng_bench;
    arena_bench; smp_read; update_apply ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  print_endline "== core-primitive micro-benchmarks (Bechamel) ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let strip name =
    if String.length name > 0 && name.[0] = '/' then
      String.sub name 1 (String.length name - 1)
    else name
  in
  let out = ref [] in
  List.iter
    (fun test ->
       let results = Benchmark.all cfg instances test in
       let analyzed = Analyze.all ols Instance.monotonic_clock results in
       Hashtbl.iter
         (fun name v ->
            match Analyze.OLS.estimates v with
            | Some [ est ] ->
              Printf.printf "  %-32s %10.1f ns/run\n%!" name est;
              out := (strip name, est) :: !out
            | _ -> Printf.printf "  %-32s (no estimate)\n%!" name)
         analyzed)
    (List.map (fun t -> Test.make_grouped ~name:"" [ t ]) (bechamel_tests ()));
  print_newline ();
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Replication cost probe                                              *)

(* What does primary-backup fault tolerance cost a real kernel? One
   quick Jacobi run on a two-server geometry without replication, one
   with — same seed, same shape — reported as a slowdown ratio plus the
   mirror/heartbeat counters that explain it. Both runs happen in this
   process back to back, so the ratio is machine-drift-immune like the
   speedup ratios above (the wall times here are simulated anyway). *)
let replication_probe () =
  let run replication =
    let config =
      { Samhita.Config.default with
        Samhita.Config.memory_servers = 2;
        replication }
    in
    let captured = ref None in
    let b =
      Workload.Samhita_backend.make ~config
        ~on_create:(fun sys -> captured := Some sys)
        ()
    in
    let p = { Workload.Jacobi.default_params with n = 32; iters = 4 } in
    let r = Workload.Jacobi.run b ~threads:4 p in
    (r.Workload.Jacobi.wall_ns, !captured)
  in
  let base_wall, _ = run 0 in
  let repl_wall, sys = run 1 in
  let slowdown = float_of_int repl_wall /. float_of_int base_wall in
  Printf.printf
    "== replication cost probe (jacobi n=32 iters=4 P=4, 2 servers) ==\n\
    \  baseline wall    %d ns\n\
    \  replicated wall  %d ns\n\
    \  slowdown         %.3fx\n\n"
    base_wall repl_wall slowdown;
  let counters =
    match sys with
    | Some s -> Samhita.Metrics.replication_of_system s
    | None -> None
  in
  ( ("jacobi_slowdown", slowdown),
    match counters with
    | None -> []
    | Some r ->
      [ ("mirrored_writes", r.Samhita.Metrics.mirrored_writes);
        ("mirror_bytes", r.Samhita.Metrics.mirror_bytes);
        ("degraded_writes", r.Samhita.Metrics.degraded_writes);
        ("heartbeats", r.Samhita.Metrics.heartbeats);
        ("leases_expired", r.Samhita.Metrics.leases_expired);
        ("promotions", r.Samhita.Metrics.promotions);
        ("replayed_updates", r.Samhita.Metrics.replayed_updates) ] )

(* ------------------------------------------------------------------ *)
(* Gray-failure detection probe                                        *)

(* How does the failure detector behave under a partition that is not a
   crash? One Jacobi run with a control-scope partition: the victim's
   lease expires (false suspicion), its backup is promoted, and the
   still-executing zombie's traffic is fenced by the epoch check until
   the heal lets it rejoin. Reported as the raw detection counters —
   the quantities the partition-torture oracle asserts over. *)
let detection_probe () =
  let config =
    { Samhita.Config.default with
      Samhita.Config.memory_servers = 2;
      replication = 1;
      lease_interval = Desim.Time.ns 20_000;
      partition_server = Some (1, Samhita.Config.Control, 5_000, 400_000) }
  in
  let captured = ref None in
  let b =
    Workload.Samhita_backend.make ~config
      ~on_create:(fun sys -> captured := Some sys)
      ()
  in
  let p = { Workload.Jacobi.default_params with n = 32; iters = 4 } in
  ignore (Workload.Jacobi.run b ~threads:4 p : Workload.Jacobi.result);
  let counters =
    match !captured with
    | Some s -> Samhita.Metrics.detection_of_system s
    | None -> None
  in
  match counters with
  | None -> []
  | Some d ->
    Printf.printf
      "== gray-failure detection probe (jacobi, control-scope partition) ==\n\
      \  suspicions        %d\n\
      \  false suspicions  %d\n\
      \  fenced messages   %d\n\
      \  rejoins           %d\n\n"
      d.Samhita.Metrics.suspicions d.Samhita.Metrics.false_suspicions
      d.Samhita.Metrics.fenced_messages d.Samhita.Metrics.rejoins;
    [ ("suspicions", d.Samhita.Metrics.suspicions);
      ("false_suspicions", d.Samhita.Metrics.false_suspicions);
      ("fenced_messages", d.Samhita.Metrics.fenced_messages);
      ("rejoins", d.Samhita.Metrics.rejoins) ]

(* ------------------------------------------------------------------ *)
(* ParDES events/sec probe                                             *)

(* Host-time throughput of the engine itself, sequential vs parallel:
   the 512-thread microbench macro (compute-heavy shape, global
   allocation — the shape whose hub-serial fraction is small enough for
   domains to matter) and a quick KV serving point, each run once on the
   sequential engine and once on 4 domains. Reported as executed
   simulation events per host second; the simulated results are equal by
   construction (the CI pardes-determinism job pins that), so the ratio
   isolates engine throughput. Unix.gettimeofday because this is the one
   probe measuring the host, not the simulation. *)
let pardes_probe () =
  let timed ~domains body =
    let config = { Samhita.Config.default with Samhita.Config.domains } in
    let captured = ref None in
    let b =
      Workload.Samhita_backend.make ~config
        ~on_create:(fun sys -> captured := Some sys)
        ()
    in
    let t0 = Unix.gettimeofday () in
    body b;
    let dt = Unix.gettimeofday () -. t0 in
    let events =
      match !captured with Some s -> Samhita.System.events s | None -> 0
    in
    float_of_int events /. dt
  in
  let micro b =
    ignore
      (Workload.Microbench.run b ~threads:512
         { Workload.Microbench.default_params with
           m_inner = 40;
           s_rows = 2;
           alloc = Workload.Microbench.Global }
       : Workload.Microbench.result)
  in
  let kv b =
    ignore
      (Workload.Kv.run b ~threads:8 Workload.Kv.default_params
       : Workload.Kv.result)
  in
  let m1 = timed ~domains:1 micro in
  let m4 = timed ~domains:4 micro in
  let k1 = timed ~domains:1 kv in
  let k4 = timed ~domains:4 kv in
  Printf.printf
    "== pardes events/sec probe (host wall) ==\n\
    \  micro 512t  1 domain   %12.0f ev/s\n\
    \  micro 512t  4 domains  %12.0f ev/s  (%.2fx)\n\
    \  kv quick    1 domain   %12.0f ev/s\n\
    \  kv quick    4 domains  %12.0f ev/s  (%.2fx)\n\n"
    m1 m4 (m4 /. m1) k1 k4 (k4 /. k1);
  [ ("micro_512t_domains1", m1);
    ("micro_512t_domains4", m4);
    ("micro_512t_speedup", m4 /. m1);
    ("kv_quick_domains1", k1);
    ("kv_quick_domains4", k4);
    ("kv_quick_speedup", k4 /. k1) ]

(* ------------------------------------------------------------------ *)
(* BENCH.json                                                          *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_bench_json ~scale ~micro ~figures ~repl ~detect ~pardes =
  let oc = open_out "BENCH.json" in
  let field_block name entries fmt_v =
    Printf.fprintf oc "  \"%s\": {" name;
    List.iteri
      (fun i (k, v) ->
         Printf.fprintf oc "%s\n    \"%s\": %s"
           (if i = 0 then "" else ",")
           (json_escape k) (fmt_v v))
      entries;
    Printf.fprintf oc "\n  }"
  in
  Printf.fprintf oc "{\n  \"scale\": \"%s\",\n" scale;
  field_block "micro_ns_per_run" micro (Printf.sprintf "%.1f");
  (* Same-process speedup ratios: both sides of each ratio were measured
     back to back above, so machine-wide frequency drift cancels. *)
  let ratio label now_name ref_name =
    match (List.assoc_opt now_name micro, List.assoc_opt ref_name micro) with
    | Some now, Some ref_ when now > 0. -> [ (label, ref_ /. now) ]
    | _ -> []
  in
  let speedups =
    ratio "diff.make vs scalar reference" "diff.make (strided false sharing)"
      "diff.make (reference scalar)"
    @ ratio "diff.make (dense numeric) vs reference"
        "diff.make (dense numeric)" "diff.make (dense numeric, reference)"
  in
  if speedups <> [] then begin
    Printf.fprintf oc ",\n";
    field_block "speedup" speedups (Printf.sprintf "%.2f")
  end;
  if figures <> [] then begin
    Printf.fprintf oc ",\n";
    field_block "figures_wall_s" figures (Printf.sprintf "%.3f")
  end;
  (let (slow_label, slowdown), counters = repl in
   Printf.fprintf oc ",\n";
   field_block "replication"
     ((slow_label, Printf.sprintf "%.3f" slowdown)
      :: List.map (fun (k, v) -> (k, string_of_int v)) counters)
     (fun s -> s));
  if detect <> [] then begin
    Printf.fprintf oc ",\n";
    field_block "detection" detect string_of_int
  end;
  Printf.fprintf oc ",\n";
  field_block "events_per_sec" pardes (Printf.sprintf "%.1f");
  Printf.fprintf oc "\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH.json\n%!"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let no_micro = List.mem "--no-micro" args in
  let json = List.mem "--json" args in
  let ids =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let scale =
    if quick then Harness.Experiments.Quick else Harness.Experiments.Paper
  in
  Printf.printf
    "Samhita/RegC reproduction benchmarks (%s scale)\n\
     one table per figure of the paper's evaluation; see EXPERIMENTS.md\n\n"
    (if quick then "quick" else "paper");
  let figures = run_figures ~scale ~ids in
  let micro = if not no_micro then run_bechamel () else [] in
  if json then begin
    let repl = replication_probe () in
    let detect = detection_probe () in
    let pardes = pardes_probe () in
    write_bench_json
      ~scale:(if quick then "quick" else "paper")
      ~micro ~figures ~repl ~detect ~pardes
  end
