#!/usr/bin/env bash
# Determinism lint: the simulator's reproducibility story (replayable
# torture seeds, RegCCheck counterexample schedules, byte-identical
# figures) rests on every source of randomness or wall-clock time going
# through the seeded splitmix in lib/sim/rng.ml. Reject any other use in
# library code.
#
# Forbidden anywhere under lib/ except lib/sim/rng.ml:
#   Random.            stdlib PRNG (global, unseeded state)
#   Unix.gettimeofday  wall-clock time
#   Unix.time          wall-clock time
#   Sys.time           processor time
#   Hashtbl.randomize  per-run hash orders (iteration-order leaks)
set -u

root="${1:-lib}"
allow="lib/sim/rng.ml"

pattern='Random\.|Unix\.gettimeofday|Unix\.time|Sys\.time|Hashtbl\.randomize'

hits=$(grep -rn -E "$pattern" "$root" --include='*.ml' --include='*.mli' \
  | grep -v "^$allow:" || true)

if [ -n "$hits" ]; then
  echo "lint_determinism: nondeterminism outside $allow:" >&2
  echo "$hits" >&2
  echo "route randomness through Sim.Rng (seeded, splittable) instead" >&2
  exit 1
fi
echo "lint_determinism: clean"
