#!/usr/bin/env bash
# Determinism lint: the simulator's reproducibility story (replayable
# torture seeds, RegCCheck counterexample schedules, byte-identical
# figures) rests on every source of randomness or wall-clock time going
# through the seeded splitmix in lib/sim/rng.ml. Reject any other use in
# library code.
#
# Forbidden anywhere under lib/ except lib/sim/rng.ml:
#   Random.            stdlib PRNG (global, unseeded state)
#   Unix.gettimeofday  wall-clock time
#   Unix.time          wall-clock time
#   Sys.time           processor time
#   Hashtbl.randomize  per-run hash orders (iteration-order leaks)
set -u

root="${1:-lib}"
allow="lib/sim/rng.ml"

pattern='Random\.|Unix\.gettimeofday|Unix\.time|Sys\.time|Hashtbl\.randomize'

hits=$(grep -rn -E "$pattern" "$root" --include='*.ml' --include='*.mli' \
  | grep -v "^$allow:" || true)

if [ -n "$hits" ]; then
  echo "lint_determinism: nondeterminism outside $allow:" >&2
  echo "$hits" >&2
  echo "route randomness through Sim.Rng (seeded, splittable) instead" >&2
  exit 1
fi

# Domain-safety check (ParDES): with the engine running client
# partitions on several OCaml domains, a new top-level `ref` or
# `Hashtbl.create` in lib/sim or lib/core is shared mutable state that
# every domain can reach — an unsynchronized write there is a data race
# the simulation cannot replay. Keep state inside per-engine/per-system
# records, use Domain.DLS for per-domain scratch, or Atomic.t for
# cross-domain counters; extend the allowlist only for hooks that are
# provably single-domain (set before the run, read serially).
#
# Allowlist (file:binding, matched against the grep hit):
#   lib/sim/resource.ml let observer — RegCCheck observer hook, installed
#   and read only in 1-domain model-checking runs.
mutable_allow='^lib/sim/resource\.ml:[0-9]+:let observer '
mutable_hits=$(grep -rn -E \
  '^let [^=]*= *(ref |Hashtbl\.create|Array\.make|Bytes\.create|Buffer\.create)' \
  lib/sim lib/core --include='*.ml' 2>/dev/null \
  | grep -v -E "$mutable_allow" || true)

if [ -n "$mutable_hits" ]; then
  echo "lint_determinism: new top-level mutable state in lib/sim or lib/core:" >&2
  echo "$mutable_hits" >&2
  echo "client partitions run on multiple domains (ParDES); top-level refs" >&2
  echo "and Hashtbls are cross-domain shared state. Put it in the engine or" >&2
  echo "system record, a Domain.DLS key, or an Atomic — or allowlist it" >&2
  echo "here with a proof it is only touched from one domain." >&2
  exit 1
fi
echo "lint_determinism: clean"
