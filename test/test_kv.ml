(* The KV serving kernel: exactness on both backends, history session
   checks (including that the oracle actually rejects tampered
   histories), and the torture sweeps of ISSUE record — 50 seeds clean,
   with and without crash injection. *)

let smh = Workload.Samhita_backend.default
let pth = Workload.Smp_backend.default

let small_p =
  { Workload.Kv.default_params with
    Workload.Kv.traffic =
      { Workload.Kv.default_params.Workload.Kv.traffic with
        Workload.Traffic.clients = 8;
        requests = 400;
        rate_rps = 400_000.;
        keys = 48 } }

let check_exact name backend threads =
  let r = Workload.Kv.run ~record_history:true backend ~threads small_p in
  Alcotest.(check (list (triple int int int)))
    (name ^ ": no lost or phantom writes")
    []
    (Workload.Kv.lost_writes r);
  Alcotest.(check int)
    (name ^ ": all requests served")
    400 r.Workload.Kv.served;
  Alcotest.(check int)
    (name ^ ": history complete")
    400
    (Array.length r.Workload.Kv.history);
  Array.iter
    (fun l ->
       Alcotest.(check bool) (name ^ ": latency positive") true (l > 0))
    r.Workload.Kv.latencies_ns;
  (* The history must satisfy the session guarantees. *)
  let oracle = Torture.Oracle.create ~config:Samhita.Config.default () in
  Torture.Oracle.check_kv_history oracle r.Workload.Kv.history;
  Alcotest.(check int)
    (name ^ ": session guarantees hold")
    0
    (List.length (Torture.Oracle.violations oracle))

let test_exact_pth () = List.iter (check_exact "pth" pth) [ 1; 2; 4 ]
let test_exact_smh () = List.iter (check_exact "smh" smh) [ 1; 3; 4 ]

let test_determinism () =
  let run () = Workload.Kv.run ~record_history:true smh ~threads:3 small_p in
  let a = run () and b = run () in
  Alcotest.(check bool) "same latencies" true
    (a.Workload.Kv.latencies_ns = b.Workload.Kv.latencies_ns);
  Alcotest.(check bool) "same history" true
    (a.Workload.Kv.history = b.Workload.Kv.history);
  Alcotest.(check int) "same wall" a.Workload.Kv.wall_ns b.Workload.Kv.wall_ns

let test_on_latency_feed () =
  let est = Harness.Percentile.create () in
  let r =
    Workload.Kv.run smh ~threads:2 small_p
      ~on_latency:(fun _ ~latency_ns -> Harness.Percentile.add est latency_ns)
  in
  Alcotest.(check int) "one callback per request" r.Workload.Kv.served
    (Harness.Percentile.count est);
  Alcotest.(check bool) "p50 <= p999" true
    (Harness.Percentile.percentile est 0.5
     <= Harness.Percentile.percentile est 0.999)

(* ---------------- oracle negative tests ---------------- *)

let ev client key op version =
  { Workload.Kv.e_client = client; e_key = key; e_op = op; e_version = version }

let violations_of history =
  let oracle = Torture.Oracle.create ~config:Samhita.Config.default () in
  Torture.Oracle.check_kv_history oracle (Array.of_list history);
  List.map
    (fun v -> v.Torture.Oracle.v_class)
    (Torture.Oracle.violations oracle)

let test_oracle_accepts_clean () =
  Alcotest.(check (list string)) "clean history" []
    (violations_of
       [ ev 0 1 Workload.Traffic.Put 1;
         ev 0 1 Workload.Traffic.Get 1;
         ev 1 1 Workload.Traffic.Put 2;
         ev 0 1 Workload.Traffic.Get 2;
         ev 1 2 Workload.Traffic.Get 0 ])

let test_oracle_rejects_lost_own_write () =
  Alcotest.(check (list string)) "read-your-writes violation"
    [ "kv-read-your-writes"; "kv-monotonic-reads" ]
    (violations_of
       [ ev 0 5 Workload.Traffic.Get 3;
         ev 0 5 Workload.Traffic.Put 4;
         ev 0 5 Workload.Traffic.Get 2 ])

let test_oracle_rejects_backwards_read () =
  Alcotest.(check (list string)) "monotonic-reads violation"
    [ "kv-monotonic-reads" ]
    (violations_of
       [ ev 2 7 Workload.Traffic.Get 9; ev 2 7 Workload.Traffic.Get 8 ])

let test_oracle_scopes_per_client () =
  (* Another client observing older state is not a session violation. *)
  Alcotest.(check (list string)) "cross-client staleness is legal" []
    (violations_of
       [ ev 0 3 Workload.Traffic.Put 4; ev 1 3 Workload.Traffic.Get 1 ])

(* ---------------- torture sweeps ---------------- *)

let sweep ~crash =
  Torture.Runner.run ~crash ~kernel:Torture.Runner.Kv
    ~level:Fabric.Faults.High ~seeds:50 ~base_seed:1 ()

let test_torture_sweep () =
  let s = sweep ~crash:false in
  Alcotest.(check int) "50 seeds clean" 0
    (List.length s.Torture.Runner.s_failures);
  Alcotest.(check bool) "reads were checked (not vacuous)" true
    (s.Torture.Runner.s_reads_checked > 0)

let test_torture_sweep_crash () =
  (* The acceptance sweep of ISSUE: 50 crash seeds, all clean — i.e. no
     acked write lost and no session-guarantee violation across any
     lease-detected promotion. *)
  let s = sweep ~crash:true in
  Alcotest.(check int) "50 crash seeds clean" 0
    (List.length s.Torture.Runner.s_failures);
  Alcotest.(check bool) "promotions actually happened" true
    (s.Torture.Runner.s_promotions > 0)

let test_validation () =
  Alcotest.check_raises "threads" (Invalid_argument "Kv.run: threads")
    (fun () -> ignore (Workload.Kv.run pth ~threads:0 small_p));
  Alcotest.check_raises "shards" (Invalid_argument "Kv.run: shards")
    (fun () ->
       ignore
         (Workload.Kv.run pth ~threads:1
            { small_p with Workload.Kv.shards = 0 }))

let tests =
  [ Alcotest.test_case "exact on pthreads" `Quick test_exact_pth;
    Alcotest.test_case "exact on samhita" `Quick test_exact_smh;
    Alcotest.test_case "deterministic per seed" `Quick test_determinism;
    Alcotest.test_case "on_latency feed" `Quick test_on_latency_feed;
    Alcotest.test_case "oracle accepts clean history" `Quick
      test_oracle_accepts_clean;
    Alcotest.test_case "oracle rejects lost own write" `Quick
      test_oracle_rejects_lost_own_write;
    Alcotest.test_case "oracle rejects backwards read" `Quick
      test_oracle_rejects_backwards_read;
    Alcotest.test_case "oracle scopes per client" `Quick
      test_oracle_scopes_per_client;
    Alcotest.test_case "torture 50 seeds" `Slow test_torture_sweep;
    Alcotest.test_case "torture 50 seeds with crash" `Slow
      test_torture_sweep_crash;
    Alcotest.test_case "validation" `Quick test_validation ]

let () = Alcotest.run "kv" [ ("kv", tests) ]
