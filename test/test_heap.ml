(* Unit and property tests for the event-queue heap. *)

let drain h =
  let rec go acc =
    match Desim.Heap.pop h with
    | Some (t, v) -> go ((t, v) :: acc)
    | None -> List.rev acc
  in
  go []

let test_empty () =
  let h = Desim.Heap.create () in
  Alcotest.(check bool) "is_empty" true (Desim.Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Desim.Heap.length h);
  Alcotest.(check bool) "pop none" true (Desim.Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Desim.Heap.peek_time h = None)

let test_ordering () =
  let h = Desim.Heap.create () in
  List.iter (fun t -> Desim.Heap.push h ~time:t t) [ 5; 1; 4; 2; 3 ];
  Alcotest.(check (list (pair int int)))
    "sorted"
    [ (1, 1); (2, 2); (3, 3); (4, 4); (5, 5) ]
    (drain h)

let test_fifo_ties () =
  let h = Desim.Heap.create () in
  List.iteri (fun i v -> Desim.Heap.push h ~time:(i mod 2) v) [ 10; 20; 30; 40; 50 ];
  (* time 0: 10,30,50 in insertion order; time 1: 20,40 *)
  Alcotest.(check (list (pair int int)))
    "fifo among equals"
    [ (0, 10); (0, 30); (0, 50); (1, 20); (1, 40) ]
    (drain h)

let test_peek () =
  let h = Desim.Heap.create () in
  Desim.Heap.push h ~time:9 'a';
  Desim.Heap.push h ~time:3 'b';
  Alcotest.(check (option int)) "peek" (Some 3) (Desim.Heap.peek_time h);
  Alcotest.(check int) "length unchanged" 2 (Desim.Heap.length h)

let test_growth () =
  let h = Desim.Heap.create ~initial_capacity:1 () in
  for i = 999 downto 0 do
    Desim.Heap.push h ~time:i i
  done;
  Alcotest.(check int) "length" 1000 (Desim.Heap.length h);
  let order = List.map fst (drain h) in
  Alcotest.(check (list int)) "all sorted" (List.init 1000 Fun.id) order

let test_clear () =
  let h = Desim.Heap.create () in
  Desim.Heap.push h ~time:1 ();
  Desim.Heap.push h ~time:2 ();
  Desim.Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Desim.Heap.is_empty h);
  Desim.Heap.push h ~time:5 ();
  Alcotest.(check (option int)) "usable after clear" (Some 5)
    (Desim.Heap.peek_time h)

(* The tie_break hook replaces FIFO order among equal times; seq still
   breaks priority collisions, so any hook yields a total order. *)
let test_tie_break_custom () =
  (* Reverse insertion order among equals: larger seq -> smaller prio. *)
  let h = Desim.Heap.create ~tie_break:(fun ~time:_ ~seq -> -seq) () in
  List.iter (fun v -> Desim.Heap.push h ~time:0 v) [ 1; 2; 3 ];
  Desim.Heap.push h ~time:1 9;
  Alcotest.(check (list (pair int int)))
    "reversed among equals, time still dominates"
    [ (0, 3); (0, 2); (0, 1); (1, 9) ]
    (drain h)

let shuffled_drain ~seed times =
  let h =
    Desim.Heap.create
      ~tie_break:(fun ~time ~seq -> Desim.Rng.hash3 seed time seq)
      ()
  in
  List.iteri (fun i t -> Desim.Heap.push h ~time:t (t, i)) times;
  List.map snd (drain h)

let test_shuffle_deterministic () =
  let times = List.init 40 (fun i -> i mod 4) in
  Alcotest.(check (list (pair int int)))
    "same seed, same permutation"
    (shuffled_drain ~seed:7 times)
    (shuffled_drain ~seed:7 times);
  (* Still sorted by time; only same-instant order may move. *)
  let out = shuffled_drain ~seed:7 times in
  Alcotest.(check bool) "time order preserved" true
    (List.for_all2
       (fun (t1, _) (t2, _) -> t1 <= t2)
       (List.filteri (fun i _ -> i < List.length out - 1) out)
       (List.tl out));
  let fifo =
    let h = Desim.Heap.create () in
    List.iteri (fun i t -> Desim.Heap.push h ~time:t (t, i)) times;
    List.map snd (drain h)
  in
  Alcotest.(check bool) "some seed deviates from FIFO" true
    (List.exists (fun seed -> shuffled_drain ~seed times <> fifo) [ 1; 2; 3 ])

let test_set_tie_break () =
  let h = Desim.Heap.create () in
  Desim.Heap.set_tie_break h (Some (fun ~time:_ ~seq -> -seq));
  List.iter (fun v -> Desim.Heap.push h ~time:0 v) [ 1; 2; 3 ];
  Alcotest.(check (list (pair int int)))
    "installed hook applies" [ (0, 3); (0, 2); (0, 1) ] (drain h);
  Desim.Heap.set_tie_break h None;
  List.iter (fun v -> Desim.Heap.push h ~time:0 v) [ 1; 2; 3 ];
  Alcotest.(check (list (pair int int)))
    "removal restores FIFO" [ (0, 1); (0, 2); (0, 3) ] (drain h)

let prop_sorted =
  QCheck.Test.make ~name:"pop order is sorted and stable" ~count:300
    QCheck.(list (int_bound 50))
    (fun times ->
       let h = Desim.Heap.create () in
       List.iteri (fun i t -> Desim.Heap.push h ~time:t (t, i)) times;
       let out = List.map snd (drain h) in
       (* Sorted by time, and among equal times by insertion index. *)
       let rec ok = function
         | (t1, i1) :: ((t2, i2) :: _ as rest) ->
           (t1 < t2 || (t1 = t2 && i1 < i2)) && ok rest
         | _ -> true
       in
       List.length out = List.length times && ok out)

let prop_interleaved =
  QCheck.Test.make ~name:"interleaved push/pop preserves min order"
    ~count:200
    QCheck.(list (pair (int_bound 100) bool))
    (fun ops ->
       let h = Desim.Heap.create () in
       let model = ref [] in
       let ok = ref true in
       List.iter
         (fun (t, is_pop) ->
            if is_pop then begin
              match (Desim.Heap.pop h, !model) with
              | None, [] -> ()
              | Some (ht, _), m ->
                let mn = List.fold_left min max_int m in
                if ht <> mn then ok := false
                else begin
                  (* remove one instance of mn *)
                  let rec rm = function
                    | [] -> []
                    | x :: r -> if x = mn then r else x :: rm r
                  in
                  model := rm m
                end
              | None, _ :: _ -> ok := false
            end
            else begin
              Desim.Heap.push h ~time:t ();
              model := t :: !model
            end)
         ops;
       !ok)

let tests =
  [ Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
    Alcotest.test_case "peek" `Quick test_peek;
    Alcotest.test_case "growth" `Quick test_growth;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "custom tie-break" `Quick test_tie_break_custom;
    Alcotest.test_case "seeded shuffle deterministic" `Quick
      test_shuffle_deterministic;
    Alcotest.test_case "set_tie_break" `Quick test_set_tie_break;
    QCheck_alcotest.to_alcotest prop_sorted;
    QCheck_alcotest.to_alcotest prop_interleaved ]

let () = Alcotest.run "desim.heap" [ ("heap", tests) ]
