(* The streaming estimator against exact sorted-array quantiles.

   Documented error bound (see percentile.mli): with [exact] the
   nearest-rank quantile of the raw stream,

     0 <= est - exact <= exact / 32

   — the estimator never undershoots and overshoots by at most one
   subbucket width (1/32 relative). Values below 64 are exact. *)

let exact_percentile values q =
  let a = Array.copy values in
  Array.sort compare a;
  let n = Array.length a in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  a.(rank - 1)

let quantiles = [ 0.0; 0.25; 0.5; 0.9; 0.99; 0.999; 1.0 ]

let check_bounds name values =
  let t = Harness.Percentile.create () in
  Array.iter (Harness.Percentile.add t) values;
  List.iter
    (fun q ->
       let est = Harness.Percentile.percentile t q in
       let exact = exact_percentile values q in
       Alcotest.(check bool)
         (Printf.sprintf "%s q=%.3f: est %d >= exact %d" name q est exact)
         true (est >= exact);
       Alcotest.(check bool)
         (Printf.sprintf "%s q=%.3f: est %d <= exact %d * 33/32" name q est
            exact)
         true
         (float_of_int est <= float_of_int exact *. (1. +. (1. /. 32.))))
    quantiles;
  Alcotest.(check int) "min exact"
    (Array.fold_left min max_int values)
    (Harness.Percentile.min_value t);
  Alcotest.(check int) "max exact"
    (Array.fold_left max 0 values)
    (Harness.Percentile.max_value t)

let test_uniform () =
  let rng = Desim.Rng.create ~seed:11 in
  check_bounds "uniform"
    (Array.init 10_000 (fun _ -> Desim.Rng.int rng 1_000_000))

let test_bimodal () =
  (* The serving shape: a fast mode and a slow mode three decades up. *)
  let rng = Desim.Rng.create ~seed:12 in
  check_bounds "bimodal"
    (Array.init 10_000 (fun _ ->
         if Desim.Rng.int rng 10 = 0 then
           900_000 + Desim.Rng.int rng 200_000
         else 80 + Desim.Rng.int rng 40))

let test_heavy_tail () =
  let rng = Desim.Rng.create ~seed:13 in
  check_bounds "heavy tail"
    (Array.init 10_000 (fun _ ->
         int_of_float (Desim.Rng.exponential rng ~mean:50_000.)))

let test_small_values_exact () =
  (* [0, 64) has unit-width buckets: every quantile is exact. *)
  let values = Array.init 64 Fun.id in
  let t = Harness.Percentile.create () in
  Array.iter (Harness.Percentile.add t) values;
  List.iter
    (fun q ->
       Alcotest.(check int)
         (Printf.sprintf "exact below 64 (q=%.3f)" q)
         (exact_percentile values q)
         (Harness.Percentile.percentile t q))
    quantiles

let test_empty () =
  let t = Harness.Percentile.create () in
  Alcotest.(check int) "empty count" 0 (Harness.Percentile.count t);
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Percentile.percentile: empty") (fun () ->
      ignore (Harness.Percentile.percentile t 0.5));
  Alcotest.check_raises "empty min"
    (Invalid_argument "Percentile.min_value: empty") (fun () ->
      ignore (Harness.Percentile.min_value t));
  Alcotest.check_raises "empty mean"
    (Invalid_argument "Percentile.mean: empty") (fun () ->
      ignore (Harness.Percentile.mean t))

let test_singleton () =
  let t = Harness.Percentile.create () in
  Harness.Percentile.add t 123_456;
  List.iter
    (fun q ->
       Alcotest.(check int)
         (Printf.sprintf "singleton q=%.3f" q)
         123_456
         (Harness.Percentile.percentile t q))
    quantiles;
  Alcotest.(check (float 0.)) "singleton mean" 123_456.
    (Harness.Percentile.mean t)

let test_validation () =
  let t = Harness.Percentile.create () in
  Alcotest.check_raises "negative value"
    (Invalid_argument "Percentile.add: negative value") (fun () ->
      Harness.Percentile.add t (-1));
  Harness.Percentile.add t 1;
  Alcotest.check_raises "quantile out of range"
    (Invalid_argument "Percentile.percentile: quantile must be in [0,1]")
    (fun () -> ignore (Harness.Percentile.percentile t 1.5))

let test_mean_and_count_exact () =
  let t = Harness.Percentile.create () in
  List.iter (Harness.Percentile.add t) [ 10; 20; 30; 40 ];
  Alcotest.(check int) "count" 4 (Harness.Percentile.count t);
  Alcotest.(check (float 0.)) "mean" 25. (Harness.Percentile.mean t)

let prop_bound_holds =
  QCheck.Test.make
    ~name:"estimate within [exact, exact*(1+1/32)] on random streams"
    ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 200) (int_range 0 10_000_000))
        (float_range 0. 1.))
    (fun (l, q) ->
       let values = Array.of_list l in
       let t = Harness.Percentile.create () in
       Array.iter (Harness.Percentile.add t) values;
       let est = Harness.Percentile.percentile t q in
       let exact = exact_percentile values q in
       est >= exact
       && float_of_int est <= float_of_int exact *. (1. +. (1. /. 32.)))

let tests =
  [ Alcotest.test_case "uniform" `Quick test_uniform;
    Alcotest.test_case "bimodal" `Quick test_bimodal;
    Alcotest.test_case "heavy tail" `Quick test_heavy_tail;
    Alcotest.test_case "exact below 64" `Quick test_small_values_exact;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "singleton" `Quick test_singleton;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "mean and count" `Quick test_mean_and_count_exact;
    QCheck_alcotest.to_alcotest prop_bound_holds ]

let () = Alcotest.run "percentile" [ ("percentile", tests) ]
