(* ParDES tests: the explicit-priority heap override, run_until under a
   quantum, the partitioned parallel engine's primitives, the
   domain-local diff scratch, and the domains knob end to end (config
   validation, kernels, serving harness). The load-bearing property
   everywhere: a parallel run's simulated results equal the sequential
   run's, field for field. *)

let ns = Desim.Time.ns

(* ------------------------------------------------------------------ *)
(* Heap: explicit priority *)

let drain h =
  let rec go acc =
    match Desim.Heap.pop h with
    | Some (t, v) -> go ((t, v) :: acc)
    | None -> List.rev acc
  in
  go []

(* Model of the heap's total order: time, then priority (explicit
   [?prio], else the push sequence number), then sequence number. *)
let prop_prio_model =
  QCheck.Test.make ~name:"pop order matches (time, prio, seq) sort"
    ~count:300
    QCheck.(list (pair (int_bound 20) (option (int_bound 5))))
    (fun items ->
       let h = Desim.Heap.create () in
       List.iteri
         (fun i (time, prio) -> Desim.Heap.push h ?prio ~time i)
         items;
       let model =
         List.mapi
           (fun i (time, prio) ->
              (time, (match prio with Some p -> p | None -> i), i))
           items
         |> List.sort compare
         |> List.map (fun (_, _, i) -> i)
       in
       List.map snd (drain h) = model)

let test_prio_beats_tie_break () =
  (* An explicit priority bypasses the installed tie-break hook; items
     without one still go through it (here: reverse insertion order). *)
  let h = Desim.Heap.create ~tie_break:(fun ~time:_ ~seq -> -seq) () in
  Desim.Heap.push h ~time:0 "a";
  Desim.Heap.push h ~time:0 "b";
  Desim.Heap.push h ~prio:(1 lsl 60) ~time:0 "drained";
  Alcotest.(check (list (pair int string)))
    "hook orders a/b, explicit prio sorts last"
    [ (0, "b"); (0, "a"); (0, "drained") ]
    (drain h)

(* ------------------------------------------------------------------ *)
(* run_until under a quantum *)

let test_run_until_quantum () =
  let e = Desim.Engine.create () in
  Desim.Engine.set_quantum e 100;
  let log = ref [] in
  let mark tag () =
    log := (tag, Desim.Time.to_ns (Desim.Engine.now e)) :: !log
  in
  Desim.Engine.schedule e ~delay:(ns 10) (mark "a");
  Desim.Engine.schedule e ~delay:(ns 110) (mark "b");
  Desim.Engine.schedule e ~delay:(ns 250) (mark "c");
  Desim.Engine.run_until e (Desim.Time.of_ns 200);
  Alcotest.(check (list (pair string int)))
    "instants round up to the quantum; horizon is inclusive"
    [ ("a", 100); ("b", 200) ]
    (List.rev !log);
  Alcotest.(check int) "clock parked exactly at the horizon" 200
    (Desim.Time.to_ns (Desim.Engine.now e));
  Desim.Engine.run_until e (Desim.Time.of_ns 1000);
  Alcotest.(check (pair string int))
    "the rounded tail event runs on the next call" ("c", 300)
    (List.hd !log);
  Alcotest.(check int) "empty queue still advances to the horizon" 1000
    (Desim.Time.to_ns (Desim.Engine.now e))

(* ------------------------------------------------------------------ *)
(* Parallel engine: primitives *)

let test_parallel_guards () =
  Alcotest.check_raises "domains must be >= 1"
    (Invalid_argument "Engine.create: domains must be >= 1") (fun () ->
      ignore (Desim.Engine.create ~domains:0 () : Desim.Engine.t));
  let need_lookahead = Desim.Engine.create ~domains:2 () in
  Desim.Engine.spawn need_lookahead (fun () -> ());
  Alcotest.check_raises "lookahead required"
    (Invalid_argument
       "Engine.run: a parallel run needs a positive lookahead \
        (Engine.set_lookahead)") (fun () ->
      Desim.Engine.run need_lookahead);
  let e = Desim.Engine.create ~domains:2 () in
  Desim.Engine.set_lookahead e (ns 10);
  Desim.Engine.set_quantum e 100;
  Alcotest.check_raises "quantum is sequential-only"
    (Invalid_argument "Engine.run: a quantum requires a single-domain engine")
    (fun () -> Desim.Engine.run e);
  Desim.Engine.set_quantum e 0;
  Alcotest.check_raises "run_until is sequential-only"
    (Invalid_argument "Engine.run_until: requires a single-domain engine")
    (fun () -> Desim.Engine.run_until e (Desim.Time.of_ns 100));
  Alcotest.check_raises "partition out of range"
    (Invalid_argument "Engine.spawn_on: partition out of range") (fun () ->
      Desim.Engine.spawn_on e ~part:3 (fun () -> ()))

(* One client process per partition, each hopping through delays and a
   hub region; every observation goes into that process's own ref cell,
   so the test itself is race-free by construction. *)
let run_partitioned () =
  let e = Desim.Engine.create ~domains:2 () in
  Desim.Engine.set_lookahead e (ns 25);
  let hub_hits = ref 0 in
  let log1 = ref [] and log2 = ref [] in
  let client log () =
    Desim.Engine.delay (ns 40);
    log := ("local", Desim.Time.to_ns (Desim.Engine.now e)) :: !log;
    let v =
      Desim.Engine.hub_run e (fun () ->
          incr hub_hits;
          Desim.Engine.delay (ns 30);
          Desim.Time.to_ns (Desim.Engine.now e))
    in
    log := ("hub", v) :: !log;
    Desim.Engine.delay (ns 5);
    log := ("done", Desim.Time.to_ns (Desim.Engine.now e)) :: !log
  in
  Desim.Engine.spawn_on e ~part:1 ~name:"c1" (client log1);
  Desim.Engine.spawn_on e ~part:2 ~delay:(ns 7) ~name:"c2" (client log2);
  Desim.Engine.run e;
  (List.rev !log1, List.rev !log2, !hub_hits)

let test_spawn_on_and_hub_run () =
  let log1, log2, hits = run_partitioned () in
  Alcotest.(check (list (pair string int)))
    "partition 1 timeline"
    [ ("local", 40); ("hub", 70); ("done", 75) ]
    log1;
  Alcotest.(check (list (pair string int)))
    "partition 2 timeline (offset by its spawn delay)"
    [ ("local", 47); ("hub", 77); ("done", 82) ]
    log2;
  Alcotest.(check int) "each client ran one hub region" 2 hits;
  (* Determinism: an identical parallel run observes identical times. *)
  let log1', log2', _ = run_partitioned () in
  Alcotest.(check bool) "repeat run identical" true
    (log1 = log1' && log2 = log2')

let test_hub_run_exception () =
  let e = Desim.Engine.create ~domains:2 () in
  Desim.Engine.set_lookahead e (ns 10);
  let caught = ref "" in
  Desim.Engine.spawn_on e ~part:1 (fun () ->
      Desim.Engine.delay (ns 5);
      try ignore (Desim.Engine.hub_run e (fun () -> failwith "boom") : int)
      with Failure m -> caught := m);
  Desim.Engine.run e;
  Alcotest.(check string) "hub exception re-raised at the caller" "boom"
    !caught

let test_remote_post () =
  let e = Desim.Engine.create ~domains:2 () in
  Desim.Engine.set_lookahead e (ns 10);
  let posted = ref [] in
  Desim.Engine.spawn_on e ~part:1 (fun () ->
      Desim.Engine.delay (ns 15);
      Desim.Engine.remote_post e (fun () -> posted := 1 :: !posted);
      Desim.Engine.delay (ns 15);
      Desim.Engine.remote_post e (fun () -> posted := 2 :: !posted));
  Desim.Engine.run e;
  Alcotest.(check (list int)) "hub-side posts ran in staging order" [ 1; 2 ]
    (List.rev !posted)

(* The same process program on a sequential and a parallel engine must
   observe the same simulated timeline. *)
let test_parallel_matches_sequential () =
  let program e record =
    List.iteri
      (fun i delays ->
         let cell = record i in
         let body () =
           List.iter
             (fun d ->
                Desim.Engine.delay (ns d);
                cell := Desim.Time.to_ns (Desim.Engine.now e) :: !cell)
             delays
         in
         let d = Desim.Engine.domains e in
         if d = 1 then Desim.Engine.spawn e body
         else Desim.Engine.spawn_on e ~part:((i mod d) + 1) body)
      [ [ 3; 11; 7 ]; [ 1; 1; 1; 40 ]; [ 13 ]; [ 2; 2; 9; 9 ]; [ 30; 4 ] ]
  in
  let run ~domains =
    let e = Desim.Engine.create ~domains () in
    if domains > 1 then Desim.Engine.set_lookahead e (ns 5);
    let cells = Array.init 5 (fun _ -> ref []) in
    program e (fun i -> cells.(i));
    Desim.Engine.run e;
    Array.map (fun c -> List.rev !c) cells
  in
  let seq = run ~domains:1 in
  Alcotest.(check bool) "2 domains: same per-process timelines" true
    (run ~domains:2 = seq);
  Alcotest.(check bool) "3 domains: same per-process timelines" true
    (run ~domains:3 = seq)

(* ------------------------------------------------------------------ *)
(* Diff scratch: one per domain via DLS *)

let test_diff_two_domains () =
  let cfg = Samhita.Config.default in
  let layout = Samhita.Layout.of_config cfg in
  let line_bytes = Samhita.Config.line_bytes cfg in
  let inputs seed =
    List.init 64 (fun i ->
        let twin = Bytes.make line_bytes '\000' in
        let current = Bytes.copy twin in
        (* Vary density and placement so scratch reuse sees spans of
           different counts and widths back to back. *)
        let stride = 8 * (1 + ((seed + i) mod 7)) in
        let j = ref ((seed + i) mod 16) in
        while !j * 8 < line_bytes - 8 do
          Bytes.set_int64_le current (!j * 8) (Int64.of_int (seed + !j));
          j := !j + (stride / 8)
        done;
        (twin, current))
  in
  let digest seed =
    let b = Buffer.create 4096 in
    List.iter
      (fun (twin, current) ->
         let d =
           Samhita.Diff.make layout ~line:0 ~twin ~current ~dirty_pages:1
         in
         let target = Bytes.make line_bytes '\xff' in
         Samhita.Diff.apply d target;
         Buffer.add_bytes b target)
      (inputs seed);
    Digest.string (Buffer.contents b)
  in
  let expected1 = digest 1 and expected2 = digest 2 in
  let d1 = Domain.spawn (fun () -> digest 1) in
  let d2 = Domain.spawn (fun () -> digest 2) in
  let got1 = Domain.join d1 and got2 = Domain.join d2 in
  Alcotest.(check string) "domain 1 diffs equal main-domain diffs"
    (Digest.to_hex expected1) (Digest.to_hex got1);
  Alcotest.(check string) "domain 2 diffs equal main-domain diffs"
    (Digest.to_hex expected2) (Digest.to_hex got2)

(* ------------------------------------------------------------------ *)
(* Config validation and system guards *)

let test_config_rejections () =
  let reject name config =
    match Samhita.Config.validate config with
    | Ok () -> Alcotest.failf "%s: expected a validation error" name
    | Error _ -> ()
  in
  let base = { Samhita.Config.default with Samhita.Config.domains = 2 } in
  reject "domains = 0"
    { Samhita.Config.default with Samhita.Config.domains = 0 };
  reject "sanitize" { base with Samhita.Config.sanitize = true };
  reject "shuffle" { base with Samhita.Config.shuffle = true };
  reject "crash_server"
    { base with Samhita.Config.crash_server = Some (0, 1000) };
  reject "home_migration" { base with Samhita.Config.home_migration = true };
  reject "manager_bypass" { base with Samhita.Config.manager_bypass = true };
  Alcotest.(check bool) "plain domains = 2 validates" true
    (Samhita.Config.validate base = Ok ())

let test_probe_rejected_parallel () =
  let config = { Samhita.Config.default with Samhita.Config.domains = 2 } in
  let sys = Samhita.System.create ~config ~threads:2 () in
  Alcotest.check_raises "probes are sequential-only"
    (Invalid_argument
       "System.set_probe: probes observe the global sequential schedule \
        and require domains = 1") (fun () ->
      Samhita.System.set_probe sys Samhita.Probe.nothing)

(* ------------------------------------------------------------------ *)
(* Kernels and serving: parallel equals sequential, field for field *)

let micro_result ~domains =
  let config = { Samhita.Config.default with Samhita.Config.domains } in
  let b = Workload.Samhita_backend.make ~config () in
  Workload.Microbench.run b ~threads:8
    { Workload.Microbench.default_params with
      Workload.Microbench.m_inner = 4;
      alloc = Workload.Microbench.Global }

let test_micro_domains_equal () =
  let seq = micro_result ~domains:1 in
  let par = micro_result ~domains:2 in
  Alcotest.(check int) "wall_ns equal" seq.Workload.Microbench.wall_ns
    par.Workload.Microbench.wall_ns;
  Alcotest.(check bool) "whole result equal" true (seq = par)

let jacobi_result ~domains =
  let config = { Samhita.Config.default with Samhita.Config.domains } in
  let b = Workload.Samhita_backend.make ~config () in
  Workload.Jacobi.run b ~threads:4
    { Workload.Jacobi.default_params with Workload.Jacobi.n = 32; iters = 3 }

let test_jacobi_domains_equal () =
  let seq = jacobi_result ~domains:1 in
  let par = jacobi_result ~domains:3 in
  Alcotest.(check int) "wall_ns equal" seq.Workload.Jacobi.wall_ns
    par.Workload.Jacobi.wall_ns;
  Alcotest.(check (float 0.)) "checksum equal" seq.Workload.Jacobi.checksum
    par.Workload.Jacobi.checksum;
  Alcotest.(check bool) "whole result equal" true (seq = par)

let serving_sweep ~domains =
  Harness.Serving.run ~fractions:[ 0.5 ] ~domains ~backend:Harness.Serving.Smh
    ~threads:4 ~replication:0 ~crash:false
    { Workload.Kv.default_params with
      Workload.Kv.traffic =
        { Workload.Kv.default_params.Workload.Kv.traffic with
          Workload.Traffic.clients = 8;
          requests = 256;
          keys = 64;
          seed = 7 } }

let test_serving_domains_equal () =
  let seq = serving_sweep ~domains:1 in
  let par = serving_sweep ~domains:2 in
  Alcotest.(check (float 0.)) "capacity equal"
    seq.Harness.Serving.capacity_rps par.Harness.Serving.capacity_rps;
  Alcotest.(check bool) "sweep points equal" true
    (seq.Harness.Serving.points = par.Harness.Serving.points)

let test_serving_domain_guards () =
  let kv = Workload.Kv.default_params in
  Alcotest.check_raises "pth backend rejected"
    (Invalid_argument "Serving.run: domains > 1 needs the smh backend")
    (fun () ->
      ignore
        (Harness.Serving.run ~domains:2 ~backend:Harness.Serving.Pth
           ~threads:2 ~replication:0 ~crash:false kv
         : Harness.Serving.t));
  Alcotest.check_raises "crash rejected"
    (Invalid_argument "Serving.run: domains > 1 is incompatible with crash")
    (fun () ->
      ignore
        (Harness.Serving.run ~domains:2 ~backend:Harness.Serving.Smh
           ~threads:2 ~replication:1 ~crash:true kv
         : Harness.Serving.t))

let tests =
  [ Alcotest.test_case "prio beats tie-break" `Quick test_prio_beats_tie_break;
    Alcotest.test_case "run_until under quantum" `Quick test_run_until_quantum;
    Alcotest.test_case "parallel guards" `Quick test_parallel_guards;
    Alcotest.test_case "spawn_on + hub_run" `Quick test_spawn_on_and_hub_run;
    Alcotest.test_case "hub_run exception" `Quick test_hub_run_exception;
    Alcotest.test_case "remote_post" `Quick test_remote_post;
    Alcotest.test_case "parallel = sequential (engine)" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "diff scratch across domains" `Quick
      test_diff_two_domains;
    Alcotest.test_case "config rejections" `Quick test_config_rejections;
    Alcotest.test_case "probe rejected when parallel" `Quick
      test_probe_rejected_parallel;
    Alcotest.test_case "micro: domains 1 = 2" `Quick test_micro_domains_equal;
    Alcotest.test_case "jacobi: domains 1 = 3" `Quick
      test_jacobi_domains_equal;
    Alcotest.test_case "serving: domains 1 = 2" `Quick
      test_serving_domains_equal;
    Alcotest.test_case "serving domain guards" `Quick
      test_serving_domain_guards;
    QCheck_alcotest.to_alcotest prop_prio_model ]

let () = Alcotest.run "pardes" [ ("pardes", tests) ]
