(* Gray failures: partitions, false suspicion, epoch fencing and rejoin.

   These tests partition one memory server mid-run — the server keeps
   executing, unlike a crash — and check that the lease detector's false
   suspicion is survivable: the backup is promoted under a new epoch,
   stale traffic is fenced, no acked write is lost, and the zombie
   rejoins as a backup after the heal. *)

module T = Samhita.Thread_ctx

let cfg = Samhita.Config.default
let line_bytes = Samhita.Config.line_bytes cfg

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* A replicated two-server geometry with a short lease so the detector
   fires inside the partition window at test scale. *)
let gray_config ?partition_server ?stall_server () =
  { cfg with
    memory_servers = 2;
    replication = 1;
    lease_interval = Desim.Time.ns 20_000;
    partition_server;
    stall_server }

(* ---------------- configuration validation ---------------- *)

let test_config_validation () =
  let bad c =
    match Samhita.Config.validate c with Ok () -> false | Error _ -> true
  in
  let iso = Samhita.Config.Isolate in
  Alcotest.(check bool) "victim out of range" true
    (bad (gray_config ~partition_server:(2, iso, 0, 1000) ()));
  Alcotest.(check bool) "empty window rejected" true
    (bad (gray_config ~partition_server:(0, iso, 1000, 1000) ()));
  Alcotest.(check bool) "negative start rejected" true
    (bad (gray_config ~partition_server:(0, iso, -1, 1000) ()));
  Alcotest.(check bool) "partition requires replication" true
    (bad
       { (gray_config ~partition_server:(0, iso, 0, 1000) ()) with
         replication = 0 });
  Alcotest.(check bool) "partition excludes crash" true
    (bad
       { (gray_config ~partition_server:(0, iso, 0, 1000) ()) with
         crash_server = Some (1, 5000) });
  Alcotest.(check bool) "stall victim out of range" true
    (bad (gray_config ~stall_server:(2, 0, 1000) ()));
  Alcotest.(check bool) "valid partition accepted" false
    (bad (gray_config ~partition_server:(0, iso, 5_000, 300_000) ()));
  Alcotest.(check bool) "valid stall accepted" false
    (bad (gray_config ~stall_server:(0, 5_000, 300_000) ()));
  (match Samhita.Config.scope_of_string "control" with
   | Ok Samhita.Config.Control -> ()
   | _ -> Alcotest.fail "scope_of_string control");
  (match Samhita.Config.scope_of_string "iso" with
   | Ok Samhita.Config.Isolate -> ()
   | _ -> Alcotest.fail "scope_of_string iso");
  match Samhita.Config.scope_of_string "sideways" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown scope accepted"

(* ---------------- retry jitter (decorrelated backoff) ---------------- *)

let test_retry_jitter_diverges () =
  let f = Fabric.Faults.create ~seed:42 ~level:Fabric.Faults.Off () in
  (* Deterministic and bounded. *)
  for attempt = 0 to 5 do
    let j = Fabric.Faults.retry_jitter f ~src:3 ~dst:1 ~attempt in
    Alcotest.(check int) "jitter is a pure function" j
      (Fabric.Faults.retry_jitter f ~src:3 ~dst:1 ~attempt);
    Alcotest.(check bool) "jitter bounded" true (j >= 0 && j < 1024)
  done;
  (* Two clients retrying against the same server must not retry in
     lockstep: their jitter sequences differ somewhere in the budget. *)
  let diverged = ref false in
  for attempt = 0 to Fabric.Scl.dead_retry_budget - 1 do
    if
      Fabric.Faults.retry_jitter f ~src:3 ~dst:1 ~attempt
      <> Fabric.Faults.retry_jitter f ~src:4 ~dst:1 ~attempt
    then diverged := true
  done;
  Alcotest.(check bool) "two clients' retry instants diverge" true !diverged;
  (* Different seeds decorrelate the same (src, dst, attempt). *)
  let g = Fabric.Faults.create ~seed:43 ~level:Fabric.Faults.Off () in
  let diverged = ref false in
  for attempt = 0 to Fabric.Scl.dead_retry_budget - 1 do
    if
      Fabric.Faults.retry_jitter f ~src:3 ~dst:1 ~attempt
      <> Fabric.Faults.retry_jitter g ~src:3 ~dst:1 ~attempt
    then diverged := true
  done;
  Alcotest.(check bool) "seeds decorrelate jitter" true !diverged

(* ---------------- partition window semantics ---------------- *)

let test_partition_window () =
  let t0 = Desim.Time.of_ns 10_000 and t1 = Desim.Time.of_ns 20_000 in
  (* Isolate: empty peer list means everyone is blocked. *)
  let f =
    Fabric.Faults.create ~partition:(2, [], t0, t1) ~seed:7
      ~level:Fabric.Faults.Off ()
  in
  let at ns = Desim.Time.of_ns ns in
  Alcotest.(check (option int)) "closed before the window" None
    (Fabric.Faults.unreachable_peer f ~src:0 ~dst:2 ~at:(at 9_999));
  Alcotest.(check (option int)) "victim named inside the window" (Some 2)
    (Fabric.Faults.unreachable_peer f ~src:0 ~dst:2 ~at:(at 10_000));
  Alcotest.(check (option int)) "both directions blocked" (Some 2)
    (Fabric.Faults.unreachable_peer f ~src:2 ~dst:0 ~at:(at 15_000));
  Alcotest.(check (option int)) "healed at the heal instant" None
    (Fabric.Faults.unreachable_peer f ~src:0 ~dst:2 ~at:(at 20_000));
  Alcotest.(check (option int)) "bystanders unaffected" None
    (Fabric.Faults.unreachable_peer f ~src:0 ~dst:1 ~at:(at 15_000));
  (* Control: only the listed peers are cut off from the victim. *)
  let g =
    Fabric.Faults.create ~partition:(2, [ 5 ], t0, t1) ~seed:7
      ~level:Fabric.Faults.Off ()
  in
  Alcotest.(check (option int)) "listed peer blocked" (Some 2)
    (Fabric.Faults.unreachable_peer g ~src:5 ~dst:2 ~at:(at 15_000));
  Alcotest.(check (option int)) "unlisted peer passes" None
    (Fabric.Faults.unreachable_peer g ~src:0 ~dst:2 ~at:(at 15_000))

(* ---------------- epoch fencing (directory unit) ---------------- *)

let test_directory_epoch_fence () =
  let config = gray_config () in
  let dir = Samhita.Directory.create config in
  Alcotest.(check int) "epoch starts at 0" 0 (Samhita.Directory.epoch dir);
  Alcotest.(check int) "slots start at 0" 0
    (Samhita.Directory.epoch_of dir ~logical:0);
  (* A healthy-epoch fence passes. *)
  Samhita.Directory.fence dir ~logical:0 ~epoch:0;
  Alcotest.(check int) "passing fence not counted" 0
    (Samhita.Directory.fenced dir);
  (* Promotion bumps to at least the detector's epoch and stamps the
     repointed slot. *)
  let promoted = Samhita.Directory.promote ~epoch:5 dir ~dead:0 in
  Alcotest.(check int) "backup promoted" 1 promoted;
  Alcotest.(check int) "epoch takes the detector's stamp" 5
    (Samhita.Directory.epoch dir);
  Alcotest.(check int) "repointed slot stamped" 5
    (Samhita.Directory.epoch_of dir ~logical:0);
  (* Traffic resolved under the old epoch is fenced and counted. *)
  (match Samhita.Directory.fence dir ~logical:0 ~epoch:0 with
   | () -> Alcotest.fail "stale fence must raise"
   | exception Samhita.Directory.Stale_epoch -> ());
  Alcotest.(check int) "fenced message counted" 1
    (Samhita.Directory.fenced dir);
  (* Current-epoch traffic passes. *)
  Samhita.Directory.fence dir ~logical:0 ~epoch:5

(* ---------------- oracle: split-brain detection ---------------- *)

let test_oracle_split_brain () =
  let oracle = Torture.Oracle.create ~config:cfg () in
  let p = Torture.Oracle.probe oracle in
  let data = Bytes.create line_bytes in
  let at ns = Desim.Time.of_ns ns in
  p.Samhita.Probe.on_recovery ~time:(at 100_000) ~failed:0 ~promoted:1
    ~replayed:0;
  (* A publication at the promoted server is fine. *)
  p.Samhita.Probe.on_publish ~thread:0 ~time:(at 150_000) ~server:1 ~line:3
    ~version:1 ~data;
  Alcotest.(check int) "promoted server publishes freely" 0
    (List.length (Torture.Oracle.violations oracle));
  (* A publication routed through the deposed primary is split-brain. *)
  p.Samhita.Probe.on_publish ~thread:0 ~time:(at 150_001) ~server:0 ~line:3
    ~version:2 ~data;
  match Torture.Oracle.violations oracle with
  | [ v ] ->
    Alcotest.(check string) "classified" "split-brain"
      v.Torture.Oracle.v_class
  | vs ->
    Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

(* ---------------- end-to-end partition runs ---------------- *)

(* The workhorse, mirroring test_recovery's crash_run: [threads] writers
   hammer a lock-protected counter while one server is partitioned over
   a window. The run must complete, every acked increment must survive,
   and — when the window is long enough for the lease to expire — the
   detector's false suspicion must end in a fenced epoch bump and a
   post-heal rejoin. *)
let partition_run ?stall_server ?partition_server ~threads ~iters () =
  let config = gray_config ?partition_server ?stall_server () in
  let addr = ref 0 in
  let final = ref nan in
  let sys = Samhita.System.create ~config ~threads () in
  let l = Samhita.System.mutex sys in
  let bar = Samhita.System.barrier sys ~parties:threads in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then begin
             addr := T.malloc t ~bytes:8;
             T.write_f64 t !addr 0.0
           end;
           T.barrier_wait t bar;
           for _ = 1 to iters do
             T.mutex_lock t l;
             T.write_f64 t !addr (T.read_f64 t !addr +. 1.0);
             T.mutex_unlock t l
           done;
           T.barrier_wait t bar;
           if tid = 0 then begin
             T.mutex_lock t l;
             final := T.read_f64 t !addr;
             T.mutex_unlock t l
           end)
        : T.t)
  done;
  Samhita.System.run sys;
  (sys, !final)

let detection sys =
  match Samhita.Metrics.detection_of_system sys with
  | Some d -> d
  | None -> Alcotest.fail "detection counters expected"

let test_partition_isolate_survives () =
  let threads = 4 and iters = 25 in
  let sys, final =
    partition_run
      ~partition_server:(0, Samhita.Config.Isolate, 5_000, 400_000)
      ~threads ~iters ()
  in
  Alcotest.(check (float 0.)) "all acked increments survive the partition"
    (float_of_int (threads * iters))
    final;
  let d = detection sys in
  Alcotest.(check bool) "lease falsely expired" true (d.suspicions >= 1);
  Alcotest.(check int) "suspicion was false" d.suspicions d.false_suspicions;
  Alcotest.(check int) "zombie rejoined after the heal" 1 d.rejoins;
  Alcotest.(check bool) "epoch advanced" true
    (Samhita.Directory.epoch (Samhita.System.directory sys) >= 1)

let test_partition_control_zombie_fenced () =
  (* Control scope: clients can still reach the deposed primary — the
     epoch fence is what keeps the zombie from serving. Safety is the
     checkable part: every acked increment must land exactly once. *)
  let threads = 4 and iters = 25 in
  let sys, final =
    partition_run
      ~partition_server:(0, Samhita.Config.Control, 5_000, 400_000)
      ~threads ~iters ()
  in
  Alcotest.(check (float 0.)) "no increment lost or doubled via the zombie"
    (float_of_int (threads * iters))
    final;
  let d = detection sys in
  Alcotest.(check bool) "lease falsely expired" true (d.suspicions >= 1);
  Alcotest.(check int) "zombie rejoined" 1 d.rejoins

(* Boundary sweep: the heal instant crosses the lease-expiry instant.
   Short windows heal before the detector fires (no suspicion, no
   promotion); long windows promote and must rejoin. Every point must
   complete with the exact counter value — including the race where the
   expiry lands at the heal instant itself. *)
let test_lease_expiry_at_heal_boundary () =
  let threads = 2 and iters = 15 in
  let saw_quiet = ref false and saw_promoted = ref false in
  List.iter
    (fun heal ->
       let sys, final =
         partition_run
           ~partition_server:(0, Samhita.Config.Isolate, 5_000, heal)
           ~threads ~iters ()
       in
       Alcotest.(check (float 0.))
         (Printf.sprintf "heal=%dns completes exactly" heal)
         (float_of_int (threads * iters))
         final;
       let d = detection sys in
       if d.suspicions = 0 then saw_quiet := true
       else begin
         saw_promoted := true;
         Alcotest.(check int)
           (Printf.sprintf "heal=%dns: suspicion implies rejoin" heal)
           1 d.rejoins
       end)
    [ 25_000; 60_000; 90_000; 110_000; 130_000; 150_000; 200_000; 300_000 ];
  Alcotest.(check bool) "sweep crosses the expiry boundary" true
    (!saw_quiet && !saw_promoted)

(* A stall is latency, not loss: the victim answers late but heartbeats
   still complete, so the detector must NOT fire. *)
let test_stall_is_not_suspected () =
  let threads = 2 and iters = 15 in
  let sys, final =
    partition_run ~stall_server:(0, 5_000, 300_000) ~threads ~iters ()
  in
  Alcotest.(check (float 0.)) "stalled run completes exactly"
    (float_of_int (threads * iters))
    final;
  let d = detection sys in
  Alcotest.(check int) "slow is not dead: no suspicion" 0 d.suspicions;
  Alcotest.(check int) "no rejoin needed" 0 d.rejoins

let test_partition_run_deterministic () =
  let run () =
    let sys, final =
      partition_run
        ~partition_server:(1, Samhita.Config.Control, 10_000, 350_000)
        ~threads:3 ~iters:15 ()
    in
    let d = detection sys in
    ( Desim.Time.to_ns (Samhita.System.elapsed sys),
      final,
      d.suspicions,
      d.fenced_messages,
      d.rejoins )
  in
  let w1, f1, s1, fe1, r1 = run () in
  let w2, f2, s2, fe2, r2 = run () in
  Alcotest.(check int) "same makespan" w1 w2;
  Alcotest.(check (float 0.)) "same result" f1 f2;
  Alcotest.(check int) "same suspicions" s1 s2;
  Alcotest.(check int) "same fenced" fe1 fe2;
  Alcotest.(check int) "same rejoins" r1 r2

(* ---------------- suspicion vs in-flight write (model) ---------------- *)

(* The gray model exhausts every interleaving of a replicated write with
   the suspect/heal/rejoin events — including a write resolved before the
   promotion and delivered after it: the write either commits under the
   old epoch (delivered before the suspect) or is fenced and re-run,
   never half-applied. The fence-disabled negative control proves the
   invariant checks can fail. *)
let test_suspicion_during_inflight_write () =
  List.iter
    (fun scope ->
       let r = Check.Gray.explore ~scope ~writes:2 () in
       Alcotest.(check int)
         (Printf.sprintf "scope %s: no violations with the fence"
            (Check.Gray.scope_name scope))
         0
         (List.length r.Check.Gray.g_defects);
       Alcotest.(check bool) "interleavings explored" true
         (r.Check.Gray.g_states > 10);
       Alcotest.(check bool) "some deliveries were fenced" true
         (r.Check.Gray.g_fenced > 0))
    [ Check.Gray.Isolate; Check.Gray.Control ];
  let neg =
    Check.Gray.explore ~fence:false ~scope:Check.Gray.Control ~writes:2 ()
  in
  Alcotest.(check bool) "fence disabled: split-brain found" true
    (List.exists
       (fun (msg, _) -> contains msg "split-brain")
       neg.Check.Gray.g_defects)

(* ---------------- reporting gates ---------------- *)

(* Healthy and crash-only runs must not grow a detection section: the
   counters are gated on gray-failure injection so the seed build's
   reports stay byte-identical. *)
let test_detection_gated () =
  let sys = Samhita.System.create ~config:cfg ~threads:1 () in
  ignore
    (Samhita.System.spawn sys (fun t -> ignore (T.malloc t ~bytes:64 : int))
      : T.t);
  Samhita.System.run sys;
  (match Samhita.Metrics.detection_of_system sys with
   | None -> ()
   | Some _ -> Alcotest.fail "healthy run must not report detection");
  let pp = Format.asprintf "%a" Samhita.Config.pp cfg in
  Alcotest.(check bool) "default config pp has no gray line" false
    (contains pp "gray:")

let test_report_shows_detection_line () =
  let sys, _ =
    partition_run
      ~partition_server:(0, Samhita.Config.Isolate, 5_000, 400_000)
      ~threads:2 ~iters:10 ()
  in
  let report =
    Format.asprintf "%a" Harness.Report.pp (Harness.Report.of_system sys)
  in
  Alcotest.(check bool) "failure detection section present" true
    (contains report "failure detection");
  Alcotest.(check bool) "fault tolerance section present too" true
    (contains report "fault tolerance")

(* ---------------- torture integration ---------------- *)

(* One deterministic partition-torture seed end to end: clean oracle,
   detection counters populated, and the failing-seed artifact machinery
   (fault trace ring) captures the partition events. *)
let test_torture_partition_seed () =
  let o =
    Torture.Runner.run_one ~partition:true ~kernel:Torture.Runner.Jacobi
      ~level:Fabric.Faults.Off ~seed:10 ()
  in
  Alcotest.(check int) "seed 10 clean" 0 (List.length o.Torture.Runner.o_violations);
  (match o.Torture.Runner.o_detect with
   | None -> Alcotest.fail "detection counters expected"
   | Some d ->
     Alcotest.(check bool) "suspicion recorded" true (d.suspicions >= 1);
     Alcotest.(check int) "rejoin recorded" 1 d.rejoins);
  Alcotest.(check bool) "fault trace captured partition events" true
    (List.exists
       (fun l -> contains l "partition")
       o.Torture.Runner.o_fault_trace)

let tests =
  [ Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "retry jitter diverges" `Quick
      test_retry_jitter_diverges;
    Alcotest.test_case "partition window semantics" `Quick
      test_partition_window;
    Alcotest.test_case "directory epoch fence" `Quick
      test_directory_epoch_fence;
    Alcotest.test_case "oracle split-brain" `Quick test_oracle_split_brain;
    Alcotest.test_case "isolate partition survives" `Quick
      test_partition_isolate_survives;
    Alcotest.test_case "control zombie fenced" `Quick
      test_partition_control_zombie_fenced;
    Alcotest.test_case "lease expiry at heal boundary" `Quick
      test_lease_expiry_at_heal_boundary;
    Alcotest.test_case "stall is not suspected" `Quick
      test_stall_is_not_suspected;
    Alcotest.test_case "partition run deterministic" `Quick
      test_partition_run_deterministic;
    Alcotest.test_case "suspicion during in-flight write" `Quick
      test_suspicion_during_inflight_write;
    Alcotest.test_case "detection gated off by default" `Quick
      test_detection_gated;
    Alcotest.test_case "report shows detection line" `Quick
      test_report_shows_detection_line;
    Alcotest.test_case "torture partition seed" `Quick
      test_torture_partition_seed ]

let () = Alcotest.run "samhita.partition" [ ("gray-failures", tests) ]
