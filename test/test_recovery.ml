(* Crash fault tolerance: primary-backup replication, the lease-based
   failure detector and the recovery protocol.

   These tests kill one memory server mid-run (fail-stop, by simulated
   instant) and check that the run still completes, that the promoted
   backup serves version-consistent data, and that every acked write
   survives the failover. *)

module T = Samhita.Thread_ctx

let cfg = Samhita.Config.default
let line_bytes = Samhita.Config.line_bytes cfg

(* A replicated two-server geometry with a short lease so the detector
   fires promptly at test scale. *)
let ft_config ?crash_server () =
  { cfg with
    memory_servers = 2;
    replication = 1;
    lease_interval = Desim.Time.ns 20_000;
    crash_server }

(* ---------------- configuration validation ---------------- *)

let test_config_validation () =
  let bad c =
    match Samhita.Config.validate c with Ok () -> false | Error _ -> true
  in
  Alcotest.(check bool) "replication=2 rejected" true
    (bad { cfg with memory_servers = 2; replication = 2 });
  Alcotest.(check bool) "replication needs 2 servers" true
    (bad { cfg with memory_servers = 1; replication = 1 });
  Alcotest.(check bool) "crash index out of range" true
    (bad { cfg with memory_servers = 2; crash_server = Some (2, 1000) });
  Alcotest.(check bool) "negative crash instant" true
    (bad { cfg with memory_servers = 2; crash_server = Some (0, -1) });
  Alcotest.(check bool) "valid ft config accepted" false
    (bad (ft_config ~crash_server:(0, 50_000) ()))

(* ---------------- replication without a crash ---------------- *)

(* Healthy replicated run: every flushed write is mirrored, no lease
   expires, and both replicas of every stripe hold identical bytes and
   versions at the end. *)
let test_mirror_on_healthy_run () =
  let config = ft_config () in
  let threads = 4 in
  let base = ref 0 in
  let sys = Samhita.System.create ~config ~threads () in
  let bar = Samhita.System.barrier sys ~parties:threads in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then base := T.malloc t ~bytes:(4 * line_bytes);
           T.barrier_wait t bar;
           T.write_f64 t (!base + (tid * line_bytes)) (float_of_int tid);
           T.barrier_wait t bar)
        : T.t)
  done;
  Samhita.System.run sys;
  match Samhita.Metrics.replication_of_system sys with
  | None -> Alcotest.fail "replication counters expected"
  | Some r ->
    Alcotest.(check bool) "writes mirrored" true (r.mirrored_writes > 0);
    Alcotest.(check bool) "mirror bytes counted" true (r.mirror_bytes > 0);
    Alcotest.(check int) "no degraded writes" 0 r.degraded_writes;
    Alcotest.(check bool) "heartbeats ran" true (r.heartbeats > 0);
    Alcotest.(check int) "no lease expired" 0 r.leases_expired;
    Alcotest.(check int) "no promotion" 0 r.promotions

(* ---------------- crash and recovery ---------------- *)

(* The workhorse: [threads] writers hammer lock-protected counters while
   one server dies mid-run. The run must complete (no [Engine.Stalled]),
   exactly one promotion must happen, and all acked increments must
   survive on the promoted replica. *)
let crash_run ~crash_server ~threads ~iters =
  let config = ft_config ~crash_server () in
  let addr = ref 0 in
  let final = ref nan in
  let sys = Samhita.System.create ~config ~threads () in
  let l = Samhita.System.mutex sys in
  let bar = Samhita.System.barrier sys ~parties:threads in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then begin
             addr := T.malloc t ~bytes:8;
             T.write_f64 t !addr 0.0
           end;
           T.barrier_wait t bar;
           for _ = 1 to iters do
             T.mutex_lock t l;
             T.write_f64 t !addr (T.read_f64 t !addr +. 1.0);
             T.mutex_unlock t l
           done;
           T.barrier_wait t bar;
           if tid = 0 then begin
             T.mutex_lock t l;
             final := T.read_f64 t !addr;
             T.mutex_unlock t l
           end)
        : T.t)
  done;
  Samhita.System.run sys;
  (sys, !final)

let test_crash_mid_run_completes () =
  let threads = 4 and iters = 25 in
  let sys, final = crash_run ~crash_server:(0, 400_000) ~threads ~iters in
  Alcotest.(check (float 0.)) "all acked increments survive failover"
    (float_of_int (threads * iters))
    final;
  match Samhita.Metrics.replication_of_system sys with
  | None -> Alcotest.fail "replication counters expected"
  | Some r ->
    Alcotest.(check int) "one lease expired" 1 r.leases_expired;
    Alcotest.(check int) "one promotion" 1 r.promotions;
    Alcotest.(check bool) "dead sends observed" true (r.dead_sends > 0)

let test_crash_other_server () =
  let threads = 4 and iters = 25 in
  let sys, final = crash_run ~crash_server:(1, 400_000) ~threads ~iters in
  Alcotest.(check (float 0.)) "server 1 crash also survives"
    (float_of_int (threads * iters))
    final;
  match Samhita.Metrics.replication_of_system sys with
  | None -> Alcotest.fail "replication counters expected"
  | Some r -> Alcotest.(check int) "one promotion" 1 r.promotions

(* A crash at t=0: the very first server interaction already faces a dead
   node, exercising the park-until-recovery path from a cold start. *)
let test_crash_at_time_zero () =
  let threads = 2 and iters = 10 in
  let sys, final = crash_run ~crash_server:(0, 0) ~threads ~iters in
  Alcotest.(check (float 0.)) "cold-start crash survives"
    (float_of_int (threads * iters))
    final;
  match Samhita.Metrics.replication_of_system sys with
  | None -> Alcotest.fail "replication counters expected"
  | Some r -> Alcotest.(check int) "one promotion" 1 r.promotions

(* Determinism: the same crash spec twice gives bit-identical makespan
   and counters. *)
let test_crash_run_deterministic () =
  let run () =
    let sys, final = crash_run ~crash_server:(0, 300_000) ~threads:3 ~iters:15 in
    let r =
      match Samhita.Metrics.replication_of_system sys with
      | Some r -> r
      | None -> Alcotest.fail "replication counters expected"
    in
    ( Desim.Time.to_ns (Samhita.System.elapsed sys),
      final,
      r.mirrored_writes,
      r.replayed_updates,
      r.failover_waits )
  in
  let w1, f1, m1, rp1, fw1 = run () in
  let w2, f2, m2, rp2, fw2 = run () in
  Alcotest.(check int) "same makespan" w1 w2;
  Alcotest.(check (float 0.)) "same result" f1 f2;
  Alcotest.(check int) "same mirrors" m1 m2;
  Alcotest.(check int) "same replays" rp1 rp2;
  Alcotest.(check int) "same failover waits" fw1 fw2

(* Degraded mode: when the backup dies, primaries keep acking writes
   unreplicated and count them. Crash server 1 (= backup of 0) and keep
   writing to stripes homed on 0 after the crash. *)
let test_degraded_writes_counted () =
  let sys, final = crash_run ~crash_server:(1, 100_000) ~threads:4 ~iters:40 in
  Alcotest.(check (float 0.)) "degraded run correct" (float_of_int (4 * 40))
    final;
  match Samhita.Metrics.replication_of_system sys with
  | None -> Alcotest.fail "replication counters expected"
  | Some r ->
    Alcotest.(check bool) "degraded writes counted" true
      (r.degraded_writes > 0)

(* Report integration: the fault-tolerance line shows up exactly when
   replication is configured. *)
let test_report_shows_ft_line () =
  let sys, _ = crash_run ~crash_server:(0, 300_000) ~threads:2 ~iters:10 in
  let report = Format.asprintf "%a" Harness.Report.pp
      (Harness.Report.of_system sys) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "fault tolerance section present" true
    (contains report "fault tolerance")

let tests =
  [ Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "healthy replicated run" `Quick
      test_mirror_on_healthy_run;
    Alcotest.test_case "crash mid-run completes" `Quick
      test_crash_mid_run_completes;
    Alcotest.test_case "crash other server" `Quick test_crash_other_server;
    Alcotest.test_case "crash at t=0" `Quick test_crash_at_time_zero;
    Alcotest.test_case "crash run deterministic" `Quick
      test_crash_run_deterministic;
    Alcotest.test_case "degraded writes counted" `Quick
      test_degraded_writes_counted;
    Alcotest.test_case "report shows ft line" `Quick
      test_report_shows_ft_line ]

let () = Alcotest.run "samhita.recovery" [ ("crash-recovery", tests) ]
