(* Tests for system assembly (node layout, configuration plumbing) and the
   pretty-printers of public records. *)

module T = Samhita.Thread_ctx

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------------- node layout ---------------- *)

let node_count ~config ~threads =
  let sys = Samhita.System.create ~config ~threads () in
  Fabric.Network.node_count (Samhita.System.network sys)

let test_node_layout () =
  let cfg = Samhita.Config.default in
  (* 1 manager + 1 server + ceil(threads/8) compute nodes. *)
  Alcotest.(check int) "8 threads -> 3 nodes" 3
    (node_count ~config:cfg ~threads:8);
  Alcotest.(check int) "9 threads -> 4 nodes" 4
    (node_count ~config:cfg ~threads:9);
  Alcotest.(check int) "32 threads -> 6 nodes" 6
    (node_count ~config:cfg ~threads:32);
  Alcotest.(check int) "3 servers add nodes" 5
    (node_count ~config:{ cfg with memory_servers = 3 } ~threads:8);
  Alcotest.(check int) "2 threads/node packs differently" 6
    (node_count ~config:{ cfg with threads_per_node = 2 } ~threads:8)

let test_invalid_system () =
  Alcotest.(check bool) "zero threads rejected" true
    (match Samhita.System.create ~threads:0 () with
     | exception Invalid_argument _ -> true
     | _ -> false);
  Alcotest.(check bool) "invalid config rejected" true
    (match
       Samhita.System.create
         ~config:{ Samhita.Config.default with page_bytes = 3000 }
         ~threads:1 ()
     with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_thread_limit () =
  (* The cap is a validated config field now (sharer/writer sets are
     bitsets, not 63-bit masks). The cap itself is fine; one more is
     rejected up front with a message that names both the request and the
     limit. *)
  let cap = Samhita.Config.default.Samhita.Config.max_threads in
  ignore (Samhita.System.create ~threads:cap () : Samhita.System.t);
  match Samhita.System.create ~threads:(cap + 1) () with
  | exception Invalid_argument msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i =
        i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "message names the limit" true
      (contains msg (string_of_int cap));
    Alcotest.(check bool) "message names the request" true
      (contains msg (string_of_int (cap + 1)))
  | _ -> Alcotest.fail "threads above max_threads must be rejected"

let test_threads_listed_in_order () =
  let sys = Samhita.System.create ~threads:4 () in
  for _ = 1 to 4 do
    ignore (Samhita.System.spawn sys (fun _ -> ()) : T.t)
  done;
  Samhita.System.run sys;
  Alcotest.(check (list int)) "id order" [ 0; 1; 2; 3 ]
    (List.map T.id (Samhita.System.threads sys))

let test_manager_bypass_layout () =
  (* With bypass, the manager endpoint sits on the first compute node, so
     synchronization messages are loopbacks. *)
  let sys =
    Samhita.System.create
      ~config:{ Samhita.Config.default with manager_bypass = true }
      ~threads:4 ()
  in
  let mgr_node =
    Fabric.Scl.node (Samhita.Manager_shard.endpoint (Samhita.System.manager sys))
  in
  (* node 0 = (unused) manager slot, 1 = server, 2 = first compute node *)
  Alcotest.(check int) "manager co-located with compute" 2 mgr_node

(* ---------------- pretty-printers ---------------- *)

let test_config_pp () =
  let s = Format.asprintf "%a" Samhita.Config.pp Samhita.Config.default in
  List.iter
    (fun needle ->
       Alcotest.(check bool) ("config pp has " ^ needle) true
         (contains s needle))
    [ "model=regc"; "page=4096B"; "ib-qdr-verbs"; "history=64" ];
  let sc =
    Format.asprintf "%a" Samhita.Config.pp
      { Samhita.Config.default with model = Samhita.Config.Sc_invalidate }
  in
  Alcotest.(check bool) "sc model named" true (contains sc "sc-invalidate")

let test_layout_pp () =
  let layout = Samhita.Layout.of_config Samhita.Config.default in
  let s = Format.asprintf "%a" Samhita.Layout.pp layout in
  Alcotest.(check bool) "layout pp" true (contains s "16384")

let test_profile_pp () =
  let s =
    Format.asprintf "%a" Fabric.Profile.pp Fabric.Profile.ib_qdr_verbs
  in
  Alcotest.(check bool) "profile pp" true
    (contains s "ib-qdr-verbs" && contains s "switched")

let test_metrics_pp () =
  let sys = Samhita.System.create ~threads:1 () in
  ignore
    (Samhita.System.spawn sys (fun t ->
         let a = T.malloc t ~bytes:8 in
         T.write_f64 t a 1.0)
      : T.t);
  Samhita.System.run sys;
  let ctx = List.hd (Samhita.System.threads sys) in
  let s =
    Format.asprintf "%a" Samhita.Metrics.pp_thread
      (Samhita.Metrics.of_ctx ctx)
  in
  Alcotest.(check bool) "thread metrics pp" true
    (contains s "t0:" && contains s "misses");
  let agg =
    Format.asprintf "%a" Samhita.Metrics.pp_aggregate
      (Samhita.Metrics.of_system sys)
  in
  Alcotest.(check bool) "aggregate pp" true (contains agg "1 threads")

let test_aggregate_empty_rejected () =
  Alcotest.check_raises "no threads"
    (Invalid_argument "Metrics.aggregate: no threads") (fun () ->
      ignore (Samhita.Metrics.aggregate ~wall_ns:0 []))

(* ---------------- backend odds and ends ---------------- *)

let test_backend_names () =
  let module S = (val Workload.Samhita_backend.default) in
  let module P = (val Workload.Smp_backend.default) in
  Alcotest.(check string) "samhita name" "samhita" S.name;
  Alcotest.(check string) "pthreads name" "pthreads" P.name

let test_mode_names () =
  Alcotest.(check string) "local" "local"
    (Workload.Microbench.mode_name Workload.Microbench.Local);
  Alcotest.(check string) "strided" "strided"
    (Workload.Microbench.mode_name Workload.Microbench.Global_strided)

let tests =
  [ Alcotest.test_case "node layout" `Quick test_node_layout;
    Alcotest.test_case "invalid system" `Quick test_invalid_system;
    Alcotest.test_case "thread limit" `Quick test_thread_limit;
    Alcotest.test_case "threads in id order" `Quick
      test_threads_listed_in_order;
    Alcotest.test_case "manager bypass layout" `Quick
      test_manager_bypass_layout;
    Alcotest.test_case "config pp" `Quick test_config_pp;
    Alcotest.test_case "layout pp" `Quick test_layout_pp;
    Alcotest.test_case "profile pp" `Quick test_profile_pp;
    Alcotest.test_case "metrics pp" `Quick test_metrics_pp;
    Alcotest.test_case "empty aggregate" `Quick
      test_aggregate_empty_rejected;
    Alcotest.test_case "backend names" `Quick test_backend_names;
    Alcotest.test_case "mode names" `Quick test_mode_names ]

let () = Alcotest.run "samhita.system" [ ("system+pp", tests) ]
