(* Tests for RegCCheck: exhaustive exploration finds the seeded race and
   the schedule-dependent ABBA deadlock, DPOR explores strictly fewer
   schedules than naive enumeration, counterexamples replay
   deterministically, and clean kernels exhaust clean. *)

module C = Check.Checker

let opts kernel = { C.default_opts with C.kernel }

let defect_classes r = List.map (fun d -> d.C.d_class) r.C.r_defects

let find_defect r cls =
  List.find_opt (fun d -> d.C.d_class = cls) r.C.r_defects

(* ---------------- exploration finds the seeded defects ------------- *)

let test_racy_race_found () =
  let r = C.explore (opts Check.Kernels.Racy) in
  Alcotest.(check bool) "not truncated" false r.C.r_truncated;
  Alcotest.(check bool) "race class reported" true
    (List.mem "race" (defect_classes r));
  Alcotest.(check bool) "at least one defective run" true
    (r.C.r_defect_runs >= 1)

let test_abba_deadlock_found () =
  let r = C.explore (opts Check.Kernels.Abba) in
  Alcotest.(check bool) "not truncated" false r.C.r_truncated;
  match find_defect r "deadlock" with
  | None -> Alcotest.fail "exploration missed the ABBA deadlock"
  | Some d ->
    (* The counterexample message carries the wait-for cycle. *)
    let has_cycle =
      let sub = "wait-for cycle" in
      let n = String.length d.C.d_message and m = String.length sub in
      let rec go i = i + m <= n && (String.sub d.C.d_message i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "message names the wait-for cycle" true has_cycle;
    Alcotest.(check bool) "counterexample schedule non-trivial" true
      (d.C.d_schedule <> [])

let test_micro_exhausts_clean () =
  let r = C.explore (opts Check.Kernels.Micro) in
  Alcotest.(check bool) "not truncated" false r.C.r_truncated;
  Alcotest.(check (list string)) "no defects" [] (defect_classes r);
  Alcotest.(check bool) "multiple schedules covered" true (r.C.r_schedules > 1)

(* ---------------- DPOR reduction ----------------------------------- *)

let reduction kernel =
  let naive = C.explore { (opts kernel) with C.dpor = false } in
  let dpor = C.explore (opts kernel) in
  (naive, dpor)

let test_dpor_beats_naive () =
  (* On micro the naive tree is so much larger that enumeration hits the
     budget — truncation there only understates the reduction factor; on
     the other kernels naive must exhaust so the ratio is exact. *)
  List.iter
    (fun (kernel, naive_exhausts) ->
       let naive, dpor = reduction kernel in
       if naive_exhausts then
         Alcotest.(check bool)
           (Check.Kernels.name kernel ^ ": naive exhausts too")
           false naive.C.r_truncated;
       Alcotest.(check bool)
         (Check.Kernels.name kernel ^ ": dpor exhausts")
         false dpor.C.r_truncated;
       Alcotest.(check bool)
         (Check.Kernels.name kernel ^ ": dpor strictly fewer schedules")
         true
         (dpor.C.r_schedules < naive.C.r_schedules);
       let factor =
         float_of_int naive.C.r_schedules /. float_of_int dpor.C.r_schedules
       in
       Alcotest.(check bool)
         (Check.Kernels.name kernel ^ ": reduction factor > 1")
         true (factor > 1.0))
    [ (Check.Kernels.Racy, true);
      (Check.Kernels.Abba, true);
      (Check.Kernels.Micro, false) ]

let test_dpor_preserves_verdicts () =
  (* Soundness smoke: reduction must not lose a defect class present in
     the full enumeration. *)
  List.iter
    (fun kernel ->
       let naive, dpor = reduction kernel in
       List.iter
         (fun cls ->
            Alcotest.(check bool)
              (Check.Kernels.name kernel ^ ": dpor kept class " ^ cls)
              true
              (List.mem cls (defect_classes dpor)))
         (defect_classes naive))
    [ Check.Kernels.Racy; Check.Kernels.Abba; Check.Kernels.Micro ]

(* ---------------- replay ------------------------------------------- *)

let test_replay_reproduces_deadlock () =
  let r = C.explore (opts Check.Kernels.Abba) in
  match find_defect r "deadlock" with
  | None -> Alcotest.fail "no deadlock counterexample to replay"
  | Some d ->
    let rp = C.replay (opts Check.Kernels.Abba) d.C.d_schedule in
    Alcotest.(check bool) "replay hits the deadlock again" true
      (List.mem_assoc "deadlock" rp.C.rp_defects)

let test_replay_deterministic () =
  let sched = [ 0; 1; 0 ] in
  let a = C.replay (opts Check.Kernels.Racy) sched in
  let b = C.replay (opts Check.Kernels.Racy) sched in
  Alcotest.(check int) "same choice points" a.C.rp_points b.C.rp_points;
  Alcotest.(check bool) "same oracle digest" true
    (a.C.rp_digest = b.C.rp_digest);
  Alcotest.(check bool) "same defect classes" true
    (List.map fst a.C.rp_defects = List.map fst b.C.rp_defects)

let test_replay_stale_schedule_rejected () =
  Alcotest.check_raises "out-of-range choice"
    (C.Bad_schedule "choice 7 out of range at point 0 (2 candidates)")
    (fun () -> ignore (C.replay (opts Check.Kernels.Racy) [ 7 ]))

(* ---------------- schedule codec ----------------------------------- *)

let test_schedule_roundtrip () =
  List.iter
    (fun s ->
       match Check.Schedule.of_string (Check.Schedule.to_string s) with
       | Ok s' -> Alcotest.(check (list int)) "roundtrip" s s'
       | Error e -> Alcotest.fail e)
    [ []; [ 0 ]; [ 1; 0; 2; 1 ] ];
  match Check.Schedule.of_string "1.x.2" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

(* ---------------- crash-mode exploration --------------------------- *)

let test_crash_micro_clean () =
  let r = C.explore { (opts Check.Kernels.Micro) with C.crash = true } in
  Alcotest.(check bool) "not truncated" false r.C.r_truncated;
  Alcotest.(check (list string)) "crash-mode micro clean" []
    (defect_classes r)

let test_crash_racy_race_survives () =
  let r = C.explore { (opts Check.Kernels.Racy) with C.crash = true } in
  Alcotest.(check bool) "race found across the crash" true
    (List.mem "race" (defect_classes r))

let () =
  Alcotest.run "samhita.check"
    [ ( "explore",
        [ Alcotest.test_case "racy race found" `Quick test_racy_race_found;
          Alcotest.test_case "abba deadlock found" `Quick
            test_abba_deadlock_found;
          Alcotest.test_case "micro exhausts clean" `Quick
            test_micro_exhausts_clean ] );
      ( "dpor",
        [ Alcotest.test_case "beats naive" `Quick test_dpor_beats_naive;
          Alcotest.test_case "preserves verdicts" `Quick
            test_dpor_preserves_verdicts ] );
      ( "replay",
        [ Alcotest.test_case "reproduces deadlock" `Quick
            test_replay_reproduces_deadlock;
          Alcotest.test_case "deterministic" `Quick test_replay_deterministic;
          Alcotest.test_case "stale schedule rejected" `Quick
            test_replay_stale_schedule_rejected;
          Alcotest.test_case "schedule codec" `Quick test_schedule_roundtrip ] );
      ( "crash",
        [ Alcotest.test_case "micro clean" `Quick test_crash_micro_clean;
          Alcotest.test_case "racy race survives" `Quick
            test_crash_racy_race_survives ] ) ]
