(* Tests for the protocol-event trace: a recorded run emits the expected
   event kinds at plausible times, and the default (null) trace stays
   silent and free. *)

module T = Samhita.Thread_ctx

let traced_ids = ref (0, 0) (* (lock, barrier) of the last traced run *)

let run_traced () =
  let trace = Desim.Trace.recording () in
  let sys = Samhita.System.create ~trace ~threads:2 () in
  let m = Samhita.System.mutex sys in
  let bar = Samhita.System.barrier sys ~parties:2 in
  traced_ids := (m, bar);
  let base = ref 0 in
  for tid = 0 to 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then base := T.malloc t ~bytes:64;
           T.barrier_wait t bar;
           T.write_f64 t (!base + (tid * 8)) 1.0;
           T.mutex_lock t m;
           T.write_f64 t (!base + 32) (float_of_int tid);
           T.mutex_unlock t m;
           T.barrier_wait t bar)
        : T.t)
  done;
  Samhita.System.run sys;
  (trace, sys)

let tags_of trace =
  List.map (fun e -> e.Desim.Trace.tag) (Desim.Trace.events trace)
  |> List.sort_uniq compare

let test_event_kinds () =
  let trace, _ = run_traced () in
  let tags = tags_of trace in
  List.iter
    (fun tag ->
       Alcotest.(check bool) ("has " ^ tag) true (List.mem tag tags))
    [ "fetch"; "acquire"; "release"; "barrier" ]

let test_events_timestamped_monotone () =
  let trace, sys = run_traced () in
  let events = Desim.Trace.events trace in
  Alcotest.(check bool) "events recorded" true (List.length events > 6);
  let wall = Samhita.System.elapsed sys in
  List.iter
    (fun e ->
       Alcotest.(check bool) "within run" true
         Desim.Time.(e.Desim.Trace.time <= wall))
    events;
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      Desim.Time.(a.Desim.Trace.time <= b.Desim.Trace.time) && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "emission order respects time" true (monotone events)

let test_acquire_actions_visible () =
  let trace, _ = run_traced () in
  let acquire_msgs =
    List.filter_map
      (fun e ->
         if e.Desim.Trace.tag = "acquire" then Some e.Desim.Trace.message
         else None)
      (Desim.Trace.events trace)
  in
  (* The first acquire is fresh; the second holder's grant carries the
     first holder's update. *)
  Alcotest.(check bool) "some acquire is fresh" true
    (List.exists
       (fun m -> String.length m > 0 && String.ends_with ~suffix:"fresh" m)
       acquire_msgs);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "some acquire patches" true
    (List.exists (fun m -> contains m "patch") acquire_msgs)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_sync_events_carry_ids () =
  let trace, _ = run_traced () in
  let lock, bar = !traced_ids in
  let events = Desim.Trace.events trace in
  let with_tag tag =
    List.filter_map
      (fun e ->
         if e.Desim.Trace.tag = tag then Some e.Desim.Trace.message else None)
      events
  in
  (* Every acquire/release names the lock that changed hands; every
     barrier event names the barrier. The kernel touches exactly one of
     each, so the traced ids must match what System handed out. *)
  let check_all tag needle =
    let msgs = with_tag tag in
    Alcotest.(check bool) (tag ^ " events present") true (msgs <> []);
    List.iter
      (fun m ->
         Alcotest.(check bool)
           (Printf.sprintf "%s message %S carries %s" tag m needle)
           true (contains m needle))
      msgs
  in
  check_all "acquire" (Printf.sprintf "lock=%d" lock);
  check_all "release" (Printf.sprintf "lock=%d" lock);
  check_all "barrier" (Printf.sprintf "barrier=%d" bar);
  (* Both threads contribute two barrier episodes each. *)
  Alcotest.(check int) "four barrier events" 4
    (List.length (with_tag "barrier"))

let test_sync_events_monotone_per_tag () =
  let trace, _ = run_traced () in
  let events = Desim.Trace.events trace in
  List.iter
    (fun tag ->
       let times =
         List.filter_map
           (fun e ->
              if e.Desim.Trace.tag = tag then Some e.Desim.Trace.time
              else None)
           events
       in
       let rec monotone = function
         | a :: (b :: _ as rest) -> Desim.Time.(a <= b) && monotone rest
         | _ -> true
       in
       Alcotest.(check bool) (tag ^ " timestamps monotone") true
         (monotone times))
    [ "acquire"; "release"; "barrier" ]

let test_null_trace_records_nothing () =
  let sys = Samhita.System.create ~threads:1 () in
  ignore
    (Samhita.System.spawn sys (fun t ->
         let a = T.malloc t ~bytes:8 in
         T.write_f64 t a 1.0)
      : T.t);
  Samhita.System.run sys;
  Alcotest.(check int) "no events on null trace" 0
    (List.length
       (Desim.Trace.events (Desim.Engine.trace (Samhita.System.engine sys))))

let tests =
  [ Alcotest.test_case "event kinds" `Quick test_event_kinds;
    Alcotest.test_case "timestamps monotone" `Quick
      test_events_timestamped_monotone;
    Alcotest.test_case "acquire actions visible" `Quick
      test_acquire_actions_visible;
    Alcotest.test_case "sync events carry ids" `Quick
      test_sync_events_carry_ids;
    Alcotest.test_case "sync timestamps monotone per tag" `Quick
      test_sync_events_monotone_per_tag;
    Alcotest.test_case "null trace silent" `Quick
      test_null_trace_records_nothing ]

let () = Alcotest.run "samhita.tracing" [ ("tracing", tests) ]
