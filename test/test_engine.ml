(* Tests for the discrete-event engine and its effects-based processes. *)

let ns = Desim.Time.ns

let test_schedule_order () =
  let e = Desim.Engine.create () in
  let log = ref [] in
  let mark tag () = log := tag :: !log in
  Desim.Engine.schedule e ~delay:(ns 30) (mark "c");
  Desim.Engine.schedule e ~delay:(ns 10) (mark "a");
  Desim.Engine.schedule e ~delay:(ns 20) (mark "b");
  Desim.Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    (List.rev !log);
  Alcotest.(check int) "clock at last event" 30
    (Desim.Time.to_ns (Desim.Engine.now e))

let test_same_instant_fifo () =
  let e = Desim.Engine.create () in
  let log = ref [] in
  for i = 0 to 4 do
    Desim.Engine.schedule e (fun () -> log := i :: !log)
  done;
  Desim.Engine.run e;
  Alcotest.(check (list int)) "insertion order" [ 0; 1; 2; 3; 4 ]
    (List.rev !log)

let test_schedule_past_rejected () =
  let e = Desim.Engine.create () in
  Desim.Engine.schedule e ~delay:(ns 10) (fun () ->
      Alcotest.check_raises "past"
        (Invalid_argument
           "Engine.schedule_at: instant is in the simulated past")
        (fun () -> Desim.Engine.schedule_at e (Desim.Time.of_ns 5) ignore));
  Desim.Engine.run e

let test_process_delay () =
  let e = Desim.Engine.create () in
  let stamps = ref [] in
  Desim.Engine.spawn e (fun () ->
      stamps := Desim.Time.to_ns (Desim.Engine.now e) :: !stamps;
      Desim.Engine.delay (ns 100);
      stamps := Desim.Time.to_ns (Desim.Engine.now e) :: !stamps;
      Desim.Engine.delay (ns 50);
      stamps := Desim.Time.to_ns (Desim.Engine.now e) :: !stamps);
  Desim.Engine.run e;
  Alcotest.(check (list int)) "delays advance the clock" [ 0; 100; 150 ]
    (List.rev !stamps)

let test_two_processes_interleave () =
  let e = Desim.Engine.create () in
  let log = ref [] in
  let proc name d () =
    for i = 1 to 3 do
      Desim.Engine.delay d;
      log := Printf.sprintf "%s%d@%d" name i (Desim.Time.to_ns (Desim.Engine.now e)) :: !log
    done
  in
  Desim.Engine.spawn e ~name:"a" (proc "a" (ns 10));
  Desim.Engine.spawn e ~name:"b" (proc "b" (ns 15));
  Desim.Engine.run e;
  Alcotest.(check (list string))
    "interleaving by virtual time"
    (* at t=30 both are due; b's wakeup was enqueued first (at t=15,
       vs a's at t=20), so FIFO tie-breaking runs b first *)
    [ "a1@10"; "b1@15"; "a2@20"; "b2@30"; "a3@30"; "b3@45" ]
    (List.rev !log)

let test_suspend_wake () =
  let e = Desim.Engine.create () in
  let wake_ref = ref (fun () -> ()) in
  let resumed_at = ref (-1) in
  Desim.Engine.spawn e (fun () ->
      Desim.Engine.suspend ~register:(fun ~wake -> wake_ref := wake);
      resumed_at := Desim.Time.to_ns (Desim.Engine.now e));
  Desim.Engine.schedule e ~delay:(ns 70) (fun () -> !wake_ref ());
  Desim.Engine.run e;
  Alcotest.(check int) "resumed at waker's instant" 70 !resumed_at

let test_suspendv_value () =
  let e = Desim.Engine.create () in
  let wake_ref = ref (fun (_ : int) -> ()) in
  let got = ref 0 in
  Desim.Engine.spawn e (fun () ->
      got := Desim.Engine.suspendv ~register:(fun ~wake -> wake_ref := wake));
  Desim.Engine.schedule e ~delay:(ns 5) (fun () -> !wake_ref 42);
  Desim.Engine.run e;
  Alcotest.(check int) "value passed through" 42 !got

let test_double_wake_ignored () =
  let e = Desim.Engine.create () in
  let wake_ref = ref (fun () -> ()) in
  let resumes = ref 0 in
  Desim.Engine.spawn e (fun () ->
      Desim.Engine.suspend ~register:(fun ~wake -> wake_ref := wake);
      incr resumes);
  Desim.Engine.schedule e ~delay:(ns 1) (fun () ->
      !wake_ref ();
      !wake_ref ());
  Desim.Engine.run e;
  Alcotest.(check int) "one resume" 1 !resumes

let test_deadlock_detection () =
  let e = Desim.Engine.create () in
  Desim.Engine.spawn e (fun () ->
      Desim.Engine.suspend ~register:(fun ~wake:_ -> ()));
  Alcotest.(check bool) "raises Stalled" true
    (match Desim.Engine.run e with
     | () -> false
     | exception Desim.Engine.Stalled _ -> true)

let test_exception_propagates () =
  let e = Desim.Engine.create () in
  Desim.Engine.spawn e (fun () -> failwith "boom");
  Alcotest.check_raises "propagates" (Failure "boom") (fun () ->
      Desim.Engine.run e)

let test_run_until () =
  let e = Desim.Engine.create () in
  let fired = ref [] in
  List.iter
    (fun d -> Desim.Engine.schedule e ~delay:(ns d) (fun () -> fired := d :: !fired))
    [ 10; 20; 30; 40 ];
  Desim.Engine.run_until e (Desim.Time.of_ns 25);
  Alcotest.(check (list int)) "only events <= limit" [ 10; 20 ]
    (List.rev !fired);
  Alcotest.(check int) "clock at limit" 25
    (Desim.Time.to_ns (Desim.Engine.now e));
  Desim.Engine.run_until e (Desim.Time.of_ns 100);
  Alcotest.(check int) "rest fired" 4 (List.length !fired);
  Alcotest.(check int) "clock forced to limit" 100
    (Desim.Time.to_ns (Desim.Engine.now e))

let test_yield_lets_peers_run () =
  let e = Desim.Engine.create () in
  let log = ref [] in
  Desim.Engine.spawn e (fun () ->
      log := "a1" :: !log;
      Desim.Engine.yield ();
      log := "a2" :: !log);
  Desim.Engine.spawn e (fun () -> log := "b" :: !log);
  Desim.Engine.run e;
  Alcotest.(check (list string)) "yield ordering" [ "a1"; "b"; "a2" ]
    (List.rev !log)

(* Schedule fuzzing: a shuffled engine permutes same-instant events as a
   pure function of the seed — replayable, time order untouched. *)
let shuffled_order ~seed =
  let e =
    Desim.Engine.create
      ~tie_break:(Desim.Engine.shuffle_tie_break ~seed)
      ()
  in
  let log = ref [] in
  for i = 0 to 7 do
    Desim.Engine.schedule e ~delay:(ns (i mod 2)) (fun () -> log := i :: !log)
  done;
  Desim.Engine.run e;
  List.rev !log

let test_shuffle_engine_deterministic () =
  Alcotest.(check (list int))
    "same seed, same order" (shuffled_order ~seed:42) (shuffled_order ~seed:42);
  let fifo = [ 0; 2; 4; 6; 1; 3; 5; 7 ] in
  List.iter
    (fun seed ->
       let out = shuffled_order ~seed in
       Alcotest.(check (list int))
         "time groups preserved"
         (List.sort compare (List.filteri (fun i _ -> i < 4) fifo))
         (List.sort compare (List.filteri (fun i _ -> i < 4) out)))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "some seed deviates from FIFO" true
    (List.exists (fun seed -> shuffled_order ~seed <> fifo) [ 1; 2; 3; 4; 5 ])

let test_stalled_names () =
  let e = Desim.Engine.create () in
  let park () = Desim.Engine.suspend ~register:(fun ~wake:_ -> ()) in
  Desim.Engine.spawn e ~name:"node0/thr1" park;
  Desim.Engine.spawn e ~name:"node1/thr0" park;
  Desim.Engine.spawn e (fun () -> ());
  (match Desim.Engine.run e with
   | () -> Alcotest.fail "expected Stalled"
   | exception Desim.Engine.Stalled msg ->
     let mem s =
       let n = String.length msg and k = String.length s in
       let rec go i = i + k <= n && (String.sub msg i k = s || go (i + 1)) in
       go 0
     in
     Alcotest.(check bool) "message names first blocked process" true
       (mem "node0/thr1");
     Alcotest.(check bool) "message names second blocked process" true
       (mem "node1/thr0"));
  Alcotest.(check (list string))
    "blocked_names lists them in spawn order"
    [ "node0/thr1"; "node1/thr0" ]
    (Desim.Engine.blocked_names e)

let test_trace_records () =
  let trace = Desim.Trace.recording () in
  let e = Desim.Engine.create ~trace () in
  Desim.Trace.emitf (Desim.Engine.trace e) ~time:(Desim.Engine.now e)
    ~tag:"test" "hello %d" 1;
  Alcotest.(check int) "one event" 1 (List.length (Desim.Trace.events trace));
  let ev = List.hd (Desim.Trace.events trace) in
  Alcotest.(check string) "message" "hello 1" ev.Desim.Trace.message;
  Desim.Trace.clear trace;
  Alcotest.(check int) "cleared" 0 (List.length (Desim.Trace.events trace))

let test_null_trace_silent () =
  Alcotest.(check bool) "disabled" false (Desim.Trace.enabled Desim.Trace.null);
  Desim.Trace.emit Desim.Trace.null ~time:Desim.Time.zero ~tag:"x" "y";
  Alcotest.(check int) "no events" 0
    (List.length (Desim.Trace.events Desim.Trace.null))

let tests =
  [ Alcotest.test_case "schedule order" `Quick test_schedule_order;
    Alcotest.test_case "same-instant FIFO" `Quick test_same_instant_fifo;
    Alcotest.test_case "past scheduling rejected" `Quick
      test_schedule_past_rejected;
    Alcotest.test_case "process delay" `Quick test_process_delay;
    Alcotest.test_case "two processes interleave" `Quick
      test_two_processes_interleave;
    Alcotest.test_case "suspend/wake" `Quick test_suspend_wake;
    Alcotest.test_case "suspendv value" `Quick test_suspendv_value;
    Alcotest.test_case "double wake ignored" `Quick test_double_wake_ignored;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "exception propagates" `Quick
      test_exception_propagates;
    Alcotest.test_case "run_until" `Quick test_run_until;
    Alcotest.test_case "yield" `Quick test_yield_lets_peers_run;
    Alcotest.test_case "shuffled engine deterministic" `Quick
      test_shuffle_engine_deterministic;
    Alcotest.test_case "stalled names blocked processes" `Quick
      test_stalled_names;
    Alcotest.test_case "trace recording" `Quick test_trace_records;
    Alcotest.test_case "null trace" `Quick test_null_trace_silent ]

let () = Alcotest.run "desim.engine" [ ("engine", tests) ]
