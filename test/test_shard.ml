(* The sharded control plane: consistent-hash placement (balance and
   minimal-disruption stability), seed-deterministic home-page
   migration, shard-crash takeover under the torture oracle, and the
   config bounds guarding the new geometry fields. *)

(* ---------------- hash ring ---------------- *)

let keys = 8192

let owners ~shards =
  let r = Samhita.Hash_ring.create ~shards () in
  Array.init keys (Samhita.Hash_ring.lookup r)

let test_ring_single_shard () =
  (* One shard degenerates to constant 0 — the unsharded fast path. *)
  Array.iteri
    (fun k s ->
       Alcotest.(check int) (Printf.sprintf "key %d on shard 0" k) 0 s)
    (owners ~shards:1)

let test_ring_balance () =
  List.iter
    (fun shards ->
       let counts = Array.make shards 0 in
       Array.iter
         (fun s -> counts.(s) <- counts.(s) + 1)
         (owners ~shards);
       let mean = keys / shards in
       Array.iteri
         (fun s n ->
            Alcotest.(check bool)
              (Printf.sprintf "%d shards: shard %d holds %d of %d keys"
                 shards s n keys)
              true
              (n > mean / 3 && n < mean * 3))
         counts)
    [ 2; 4; 8 ]

let test_ring_stability () =
  (* Growing the ring by one shard may move a key only TO the new shard
     (existing vnodes are unchanged), and only ~1/(N+1) of keys move. *)
  let before = owners ~shards:4 and after = owners ~shards:5 in
  let moved = ref 0 in
  Array.iteri
    (fun k b ->
       let a = after.(k) in
       if a <> b then begin
         incr moved;
         Alcotest.(check int)
           (Printf.sprintf "key %d moved to the new shard" k)
           4 a
       end)
    before;
  let frac = float_of_int !moved /. float_of_int keys in
  Alcotest.(check bool)
    (Printf.sprintf "adding a 5th shard moved %.3f of keys" frac)
    true
    (frac > 0.02 && frac < 0.45)

let test_ring_pure () =
  (* Placement is a pure function of (salt, shards, vnodes): rebuilding
     the ring gives identical ownership — no hidden RNG stream. *)
  Alcotest.(check bool) "rebuilt ring identical" true
    (owners ~shards:4 = owners ~shards:4)

(* ---------------- home-page migration ---------------- *)

(* One dominant writer hammering 8 distinct lines of a large (striped)
   allocation under a lock: with 2 memory servers about half those lines
   start on the remote server, and after [migration_window] observations
   each must be re-homed next to the writer. *)
let migration_run () =
  let config =
    { Samhita.Config.default with
      Samhita.Config.memory_servers = 2;
      home_migration = true;
      migration_window = 8 }
  in
  let stride = Samhita.Config.line_bytes config in
  let sys = Samhita.System.create ~config ~threads:2 () in
  let l = Samhita.System.mutex sys in
  let final = Array.make 8 nan in
  ignore
    (Samhita.System.spawn sys (fun t ->
         let a = Samhita.Thread_ctx.malloc t ~bytes:(8 * 1024 * 1024) in
         for i = 0 to 19 do
           Samhita.Thread_ctx.mutex_lock t l;
           for k = 0 to 7 do
             Samhita.Thread_ctx.write_f64 t
               (a + (k * stride))
               (float_of_int (i + k))
           done;
           Samhita.Thread_ctx.mutex_unlock t l
         done;
         Samhita.Thread_ctx.mutex_lock t l;
         for k = 0 to 7 do
           final.(k) <- Samhita.Thread_ctx.read_f64 t (a + (k * stride))
         done;
         Samhita.Thread_ctx.mutex_unlock t l)
      : Samhita.Thread_ctx.t);
  ignore
    (Samhita.System.spawn sys (fun t -> Samhita.Thread_ctx.charge t 1.0)
      : Samhita.Thread_ctx.t);
  Samhita.System.run sys;
  let cp = Samhita.System.control_plane sys in
  ( Samhita.Control_plane.migrations cp,
    Samhita.Directory.rehomed (Samhita.System.directory sys),
    Samhita.Control_plane.migration_log cp,
    Array.to_list final )

let test_migration_fires () =
  let migrations, rehomed, _, final = migration_run () in
  Alcotest.(check bool)
    (Printf.sprintf "migrations fired (%d)" migrations)
    true (migrations > 0);
  Alcotest.(check int) "directory re-homed as many lines" migrations
    rehomed;
  (* Re-homing must not corrupt the data: reads after the last migration
     still see the final write of every line. *)
  List.iteri
    (fun k v ->
       Alcotest.(check (float 0.0))
         (Printf.sprintf "line %d survives re-homing" k)
         (float_of_int (19 + k))
         v)
    final

let test_migration_deterministic () =
  (* Migration decisions are a pure function of the seed: two identical
     runs produce the same decision log, line for line. *)
  let _, _, log_a, _ = migration_run () in
  let _, _, log_b, _ = migration_run () in
  Alcotest.(check bool) "non-empty decision log" true (log_a <> []);
  Alcotest.(check (list (pair int int))) "identical decision logs" log_a
    log_b

(* ---------------- shard-crash takeover ---------------- *)

let test_shard_crash_takeover () =
  (* The torture harness under shard-crash mode: every seed derives a
     sharded geometry, kills one non-zero shard mid-run, and the oracle
     must stay silent across the takeover. *)
  (* A seed whose run ends before the derived crash instant legitimately
     sees no takeover; across a few seeds at least one must fire, and
     every run must stay violation-free either way. *)
  let fired = ref 0 in
  List.iter
    (fun seed ->
       let o =
         Torture.Runner.run_one ~crash_shard:true ~kernel:Torture.Runner.Micro
           ~level:Fabric.Faults.High ~seed ()
       in
       Alcotest.(check int)
         (Printf.sprintf "seed %d: no violations" seed)
         0
         (List.length o.Torture.Runner.o_violations);
       match o.Torture.Runner.o_ctl with
       | None -> Alcotest.fail "crash-shard run must report control metrics"
       | Some c ->
         Alcotest.(check bool)
           (Printf.sprintf "seed %d: at most one takeover (%d)" seed
              c.Samhita.Metrics.takeovers)
           true
           (c.Samhita.Metrics.takeovers <= 1);
         fired := !fired + c.Samhita.Metrics.takeovers)
    [ 0; 1; 2 ];
  Alcotest.(check bool)
    (Printf.sprintf "at least one seed crashed a shard (%d)" !fired)
    true (!fired > 0)

let test_shard_crash_deterministic () =
  let run seed =
    Torture.Runner.run_one ~crash_shard:true ~kernel:Torture.Runner.Micro
      ~level:Fabric.Faults.Off ~seed ()
  in
  let a = run 7 and b = run 7 in
  Alcotest.(check int) "same digest" a.Torture.Runner.o_digest
    b.Torture.Runner.o_digest;
  Alcotest.(check int) "same event count" a.Torture.Runner.o_events
    b.Torture.Runner.o_events

(* ---------------- config bounds ---------------- *)

let test_config_bounds () =
  let rejects msg config =
    match Samhita.Config.validate config with
    | Ok () -> Alcotest.failf "accepted invalid config (wanted %S)" msg
    | Error e ->
      Alcotest.(check string) (Printf.sprintf "error names the bound") msg e
  in
  let d = Samhita.Config.default in
  rejects "max_threads must be >= 1"
    { d with Samhita.Config.max_threads = 0 };
  rejects "manager_shards must be >= 1"
    { d with Samhita.Config.manager_shards = 0 };
  rejects "migration_window must be >= 2"
    { d with Samhita.Config.migration_window = 1 };
  rejects
    "manager_bypass requires manager_shards = 1 (bypass is a \
     single-compute-node optimization)"
    { d with Samhita.Config.manager_bypass = true; manager_shards = 2 };
  rejects
    "crash_shard requires manager_shards >= 2 (a surviving shard must \
     take over)"
    { d with Samhita.Config.crash_shard = Some (1, 100) };
  rejects
    "crash_shard index out of range (shard 0 hosts allocation and is \
     not killable)"
    { d with
      Samhita.Config.manager_shards = 3;
      crash_shard = Some (0, 100) };
  rejects
    "crash_shard index out of range (shard 0 hosts allocation and is \
     not killable)"
    { d with
      Samhita.Config.manager_shards = 3;
      crash_shard = Some (3, 100) };
  Alcotest.(check bool) "valid sharded config accepted" true
    (Samhita.Config.validate
       { d with Samhita.Config.manager_shards = 4; home_migration = true }
     = Ok ())

let test_config_accepts_max_threads () =
  (* The cap is a field, not a constant: raising it admits bigger
     systems. *)
  let d = Samhita.Config.default in
  Alcotest.(check int) "default cap is 512" 512
    d.Samhita.Config.max_threads;
  Alcotest.(check bool) "raised cap validates" true
    (Samhita.Config.validate { d with Samhita.Config.max_threads = 4096 }
     = Ok ())

let tests =
  [ Alcotest.test_case "ring: single shard" `Quick test_ring_single_shard;
    Alcotest.test_case "ring: balance" `Quick test_ring_balance;
    Alcotest.test_case "ring: stability under growth" `Quick
      test_ring_stability;
    Alcotest.test_case "ring: pure placement" `Quick test_ring_pure;
    Alcotest.test_case "migration: fires and preserves data" `Quick
      test_migration_fires;
    Alcotest.test_case "migration: seed-deterministic" `Quick
      test_migration_deterministic;
    Alcotest.test_case "shard crash: takeover clean" `Quick
      test_shard_crash_takeover;
    Alcotest.test_case "shard crash: deterministic" `Quick
      test_shard_crash_deterministic;
    Alcotest.test_case "config: bounds named in errors" `Quick
      test_config_bounds;
    Alcotest.test_case "config: max_threads is a field" `Quick
      test_config_accepts_max_threads ]

let () = Alcotest.run "shard" [ ("shard", tests) ]
