(* Property tests for the vector-clock laws RegCCheck's partial-order
   reduction rests on: [leq] is a partial order (antisymmetric via
   [equal]), [join] is a least upper bound and monotone, and [hb] is a
   strict order (irreflexive, transitive). *)

module V = Analysis.Vclock

let nthreads = 4

let of_list l =
  let v = V.create nthreads in
  List.iteri (fun i x -> V.set v i x) l;
  v

(* Generator: a clock over [nthreads] threads with small components. *)
let gen_clock =
  QCheck.map of_list
    QCheck.(list_of_size (QCheck.Gen.return nthreads) (int_bound 8))

let pair_clock = QCheck.pair gen_clock gen_clock
let triple_clock = QCheck.triple gen_clock gen_clock gen_clock

let prop_leq_refl =
  QCheck.Test.make ~name:"leq reflexive" ~count:200 gen_clock (fun a ->
      V.leq a a)

let prop_leq_antisym =
  QCheck.Test.make ~name:"leq antisymmetric" ~count:500 pair_clock
    (fun (a, b) -> (not (V.leq a b && V.leq b a)) || V.equal a b)

let prop_leq_trans =
  QCheck.Test.make ~name:"leq transitive" ~count:500 triple_clock
    (fun (a, b, c) -> (not (V.leq a b && V.leq b c)) || V.leq a c)

let prop_join_upper_bound =
  QCheck.Test.make ~name:"join is an upper bound" ~count:500 pair_clock
    (fun (a, b) ->
      let j = V.copy a in
      V.join j b;
      V.leq a j && V.leq b j)

let prop_join_least =
  QCheck.Test.make ~name:"join is the least upper bound" ~count:500
    triple_clock (fun (a, b, c) ->
      let j = V.copy a in
      V.join j b;
      (not (V.leq a c && V.leq b c)) || V.leq j c)

let prop_join_monotone =
  QCheck.Test.make ~name:"join monotone in either argument" ~count:500
    triple_clock (fun (a, b, c) ->
      (not (V.leq a b))
      ||
      let ja = V.copy a and jb = V.copy b in
      V.join ja c;
      V.join jb c;
      V.leq ja jb)

let prop_hb_irrefl =
  QCheck.Test.make ~name:"hb irreflexive" ~count:200 gen_clock (fun a ->
      not (V.hb a a))

let prop_hb_trans =
  QCheck.Test.make ~name:"hb transitive" ~count:500 triple_clock
    (fun (a, b, c) -> (not (V.hb a b && V.hb b c)) || V.hb a c)

let prop_hb_asym =
  QCheck.Test.make ~name:"hb asymmetric" ~count:500 pair_clock
    (fun (a, b) -> not (V.hb a b && V.hb b a))

let test_tick_orders () =
  let a = of_list [ 1; 2; 0; 0 ] in
  let b = V.copy a in
  V.tick b 0;
  Alcotest.(check bool) "a hb a-ticked" true (V.hb a b);
  Alcotest.(check bool) "ticked not hb original" false (V.hb b a)

let test_sizes_never_compare () =
  let a = V.create 2 and b = V.create 3 in
  Alcotest.(check bool) "different sizes never equal" false (V.equal a b)

let () =
  Alcotest.run "samhita.vclock"
    [ ( "laws",
        [ QCheck_alcotest.to_alcotest prop_leq_refl;
          QCheck_alcotest.to_alcotest prop_leq_antisym;
          QCheck_alcotest.to_alcotest prop_leq_trans;
          QCheck_alcotest.to_alcotest prop_join_upper_bound;
          QCheck_alcotest.to_alcotest prop_join_least;
          QCheck_alcotest.to_alcotest prop_join_monotone;
          QCheck_alcotest.to_alcotest prop_hb_irrefl;
          QCheck_alcotest.to_alcotest prop_hb_trans;
          QCheck_alcotest.to_alcotest prop_hb_asym;
          Alcotest.test_case "tick orders" `Quick test_tick_orders;
          Alcotest.test_case "sizes never compare" `Quick
            test_sizes_never_compare ] ) ]
