#!/usr/bin/env bash
# Pins the defect-detection exit-code contract shared by race, torture
# and check: 0 when clean, 1 when the tool found what it hunts for, 2 on
# usage errors. A drift in any of these breaks scripted CI consumers.
set -u

bin="$1"
fails=0

expect() {
  local want="$1"
  local desc="$2"
  shift 2
  "$bin" "$@" >/dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "exit_codes: $desc: want exit $want, got $got ($bin $*)" >&2
    fails=$((fails + 1))
  fi
}

# race: the seeded kernel always has findings.
expect 1 "race finds the seeded defects" race

# check: defect kernels exit 1, the clean kernel 0.
expect 1 "check finds the seeded race" check --kernel racy
expect 1 "check finds the ABBA deadlock" check --kernel abba
expect 0 "check exhausts micro clean" check --kernel micro

# check usage errors.
expect 2 "check rejects unknown kernel" check --kernel bogus
expect 2 "check rejects out-of-scope threads" check --threads 9
expect 2 "check rejects out-of-scope pages" check --pages 7
expect 2 "check rejects malformed schedule" check --replay 1.x.2
expect 2 "check rejects stale schedule" check --kernel racy --replay 9.9

# check replay: the deadlock counterexample reproduces (1), a clean
# schedule replays clean (0).
expect 1 "replayed counterexample reproduces" check --kernel abba --replay 0.0.0.1.0.0.0.0.0
expect 0 "clean replay is clean" check --kernel micro --replay 0

# torture: a clean sweep exits 0 (tiny sweep to stay fast).
expect 0 "clean torture sweep" torture --kernel micro --seeds 2 --faults off

if [ "$fails" -ne 0 ]; then
  echo "exit_codes: $fails contract violation(s)" >&2
  exit 1
fi
echo "exit_codes: contract holds"
