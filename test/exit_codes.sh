#!/usr/bin/env bash
# Pins the defect-detection exit-code contract shared by race, torture
# and check: 0 when clean, 1 when the tool found what it hunts for, 2 on
# usage errors. A drift in any of these breaks scripted CI consumers.
set -u

# Absolute path: the serve --json check below runs from a scratch dir.
bin="$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"
fails=0

expect() {
  local want="$1"
  local desc="$2"
  shift 2
  "$bin" "$@" >/dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "exit_codes: $desc: want exit $want, got $got ($bin $*)" >&2
    fails=$((fails + 1))
  fi
}

# race: the seeded kernel always has findings.
expect 1 "race finds the seeded defects" race

# check: defect kernels exit 1, the clean kernel 0.
expect 1 "check finds the seeded race" check --kernel racy
expect 1 "check finds the ABBA deadlock" check --kernel abba
expect 0 "check exhausts micro clean" check --kernel micro

# check usage errors.
expect 2 "check rejects unknown kernel" check --kernel bogus
expect 2 "check rejects out-of-scope threads" check --threads 9
expect 2 "check rejects out-of-scope pages" check --pages 7
expect 2 "check rejects malformed schedule" check --replay 1.x.2
expect 2 "check rejects stale schedule" check --kernel racy --replay 9.9

# check replay: the deadlock counterexample reproduces (1), a clean
# schedule replays clean (0).
expect 1 "replayed counterexample reproduces" check --kernel abba --replay 0.0.0.1.0.0.0.0.0
expect 0 "clean replay is clean" check --kernel micro --replay 0

# torture: a clean sweep exits 0 (tiny sweep to stay fast).
expect 0 "clean torture sweep" torture --kernel micro --seeds 2 --faults off
expect 0 "clean kv torture sweep" torture --kernel kv --seeds 2 --faults off

# torture shard-crash mode: clean sweep 0, incompatible modes 2.
expect 0 "clean shard-crash torture sweep" torture --kernel micro --seeds 2 --faults off --crash-shard
expect 2 "torture rejects crash + crash-shard" torture --kernel micro --seeds 1 --crash --crash-shard
expect 2 "torture rejects crash-shard on racy" torture --kernel racy --seeds 1 --crash-shard

# torture partition mode: clean gray-failure sweep 0, incompatible modes 2.
expect 0 "clean partition torture sweep" torture --kernel micro --seeds 2 --faults off --partition
expect 2 "torture rejects crash + partition" torture --kernel micro --seeds 1 --crash --partition
expect 2 "torture rejects partition on racy" torture --kernel racy --seeds 1 --partition

# check gray model: fenced runs clean (0), replay/crash are usage errors.
expect 0 "gray fence model holds" check --kernel gray
expect 2 "gray rejects replay" check --kernel gray --replay 0
expect 2 "gray rejects crash" check --kernel gray --crash

# kernel control-plane geometry: sharded run clean, bad geometry 2.
expect 0 "sharded micro run" micro -t 4 --shards 2
expect 2 "micro rejects zero shards" micro -t 4 --shards 0
expect 2 "micro rejects zero servers" micro --servers 0
expect 2 "micro rejects shards on pth" micro --backend pth --shards 2
expect 2 "micro rejects migrate on pth" micro --backend pth --migrate
expect 2 "micro rejects over-cap threads" micro -t 1000

# serve: 0 on a clean sweep, 2 on usage errors.
serve_quick=(--backend pth -t 2 --clients 4 --requests 64 --keys 16 --load 0.5)
expect 0 "clean serve sweep" serve "${serve_quick[@]}"
expect 2 "serve rejects zero threads" serve -t 0
expect 2 "serve rejects bad shards" serve --keys 8 --shards 9
expect 2 "serve rejects bad read fraction" serve --read-fraction 1.5
expect 2 "serve rejects bad replication" serve --replication 2
expect 2 "serve rejects replication on pth" serve --backend pth --replication 1
expect 2 "serve rejects crash without replication" serve --backend smh --crash
expect 2 "serve rejects malformed load" serve --load 0.5,zero
expect 2 "serve rejects negative load" serve --load=-0.5
expect 2 "serve rejects zero manager shards" serve --manager-shards 0
expect 2 "serve rejects manager shards on pth" serve --backend pth --manager-shards 2

# Usage errors carry subcommand context: "samhita_sim <cmd>: message".
shape="$("$bin" micro -t 4 --shards 0 2>&1 >/dev/null)"
case "$shape" in
  "samhita_sim micro: "*) : ;;
  *)
    echo "exit_codes: usage-error shape: got '$shape'" >&2
    fails=$((fails + 1))
    ;;
esac

# serve --json: the BENCH.json serve block's schema is a CI consumer
# contract. Written in a scratch dir so the repo root stays untouched,
# then appended again to prove the block replaces itself idempotently.
scratch="$(mktemp -d)"
(
  cd "$scratch" || exit 1
  "$bin" serve "${serve_quick[@]}" --json >/dev/null 2>&1
  "$bin" serve "${serve_quick[@]}" --json >/dev/null 2>&1
)
json_fail=0
for field in '"serve":' '"backend": "pth"' '"threads": 2' '"replication": 0' \
  '"crash": false' '"capacity_rps":' '"points":' '"fraction":' \
  '"rate_rps":' '"achieved_rps":' '"served":' '"p50_ns":' '"p99_ns":' \
  '"p999_ns":' '"mean_ns":' '"max_ns":' '"wall_ns":' '"lost_writes":'; do
  if ! grep -qF -- "$field" "$scratch/BENCH.json"; then
    echo "exit_codes: serve --json schema: missing $field" >&2
    json_fail=1
  fi
done
if [ "$(grep -cF '"serve":' "$scratch/BENCH.json")" -ne 1 ]; then
  echo "exit_codes: serve --json: re-append duplicated the serve block" >&2
  json_fail=1
fi
if [ "$json_fail" -ne 0 ]; then
  fails=$((fails + 1))
fi
rm -rf "$scratch"

if [ "$fails" -ne 0 ]; then
  echo "exit_codes: $fails contract violation(s)" >&2
  exit 1
fi
echo "exit_codes: contract holds"
