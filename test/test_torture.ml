(* Tests for the torture harness: oracle legality checking, digest
   determinism, and the racy kernel's pinned per-class defect counts
   under fault injection and schedule fuzzing. *)

let t_ns = Desim.Time.of_ns

let config = Samhita.Config.default
let line_bytes = Samhita.Config.line_bytes config

let mk_oracle () = Torture.Oracle.create ~config ()

let classes o =
  List.map (fun v -> v.Torture.Oracle.v_class) (Torture.Oracle.violations o)

(* ---------------- Oracle legality (fed directly, no system) -------- *)

let test_oracle_zero_legal () =
  let o = mk_oracle () in
  let p = Torture.Oracle.probe o in
  p.Samhita.Probe.on_read ~thread:0 ~time:(t_ns 10) ~addr:64 ~len:8
    ~value:(Some 0L);
  Alcotest.(check (list string)) "initial zero is legal" [] (classes o);
  Alcotest.(check int) "read was checked" 1 (Torture.Oracle.reads_checked o)

let test_oracle_flags_illegal_read () =
  let o = mk_oracle () in
  let p = Torture.Oracle.probe o in
  p.Samhita.Probe.on_read ~thread:0 ~time:(t_ns 10) ~addr:64 ~len:8
    ~value:(Some 0xDEADL);
  Alcotest.(check (list string)) "unsourced value flagged"
    [ "illegal-read" ] (classes o);
  Alcotest.(check bool) "trace contextualizes it" true
    (Torture.Oracle.trace_tail o <> [])

let test_oracle_own_store_legal () =
  let o = mk_oracle () in
  let p = Torture.Oracle.probe o in
  p.Samhita.Probe.on_write ~thread:2 ~time:(t_ns 1) ~addr:128 ~len:8
    ~value:(Some 7L);
  p.Samhita.Probe.on_read ~thread:2 ~time:(t_ns 2) ~addr:128 ~len:8
    ~value:(Some 7L);
  Alcotest.(check (list string)) "own last store is legal" [] (classes o);
  (* Another thread has no such edge: 7 was never published. *)
  p.Samhita.Probe.on_read ~thread:3 ~time:(t_ns 3) ~addr:128 ~len:8
    ~value:(Some 7L);
  Alcotest.(check (list string)) "other thread may not see it"
    [ "illegal-read" ] (classes o)

let test_oracle_published_history_legal () =
  let o = mk_oracle () in
  let p = Torture.Oracle.probe o in
  let publish v =
    let data = Bytes.make line_bytes '\000' in
    Bytes.set_int64_le data 0 v;
    p.Samhita.Probe.on_publish ~thread:0 ~time:(t_ns 5) ~server:0 ~line:2
      ~version:1 ~data
  in
  publish 11L;
  publish 22L;
  let addr = 2 * line_bytes in
  (* RegC permits stale reads: the full history is legal, not just the
     newest publication. *)
  p.Samhita.Probe.on_read ~thread:1 ~time:(t_ns 6) ~addr ~len:8
    ~value:(Some 22L);
  p.Samhita.Probe.on_read ~thread:1 ~time:(t_ns 7) ~addr ~len:8
    ~value:(Some 11L);
  Alcotest.(check (list string)) "published history legal" [] (classes o);
  p.Samhita.Probe.on_read ~thread:1 ~time:(t_ns 8) ~addr ~len:8
    ~value:(Some 33L);
  Alcotest.(check (list string)) "unpublished value still flagged"
    [ "illegal-read" ] (classes o)

let test_oracle_tainted_words_skipped () =
  let o = mk_oracle () in
  let p = Torture.Oracle.probe o in
  (* A sub-word store taints the containing word; word-level legality is
     no longer expressible there, so reads of it are not checked. *)
  p.Samhita.Probe.on_write ~thread:0 ~time:(t_ns 1) ~addr:68 ~len:4
    ~value:None;
  p.Samhita.Probe.on_read ~thread:1 ~time:(t_ns 2) ~addr:64 ~len:8
    ~value:(Some 0xBADL);
  Alcotest.(check (list string)) "tainted word not checked" [] (classes o);
  Alcotest.(check int) "and not counted as checked" 0
    (Torture.Oracle.reads_checked o)

let test_oracle_alloc_invariants () =
  let o = mk_oracle () in
  let p = Torture.Oracle.probe o in
  p.Samhita.Probe.on_malloc ~thread:0 ~time:(t_ns 1) ~addr:1024 ~bytes:256;
  p.Samhita.Probe.on_malloc ~thread:1 ~time:(t_ns 2) ~addr:1152 ~bytes:64;
  p.Samhita.Probe.on_free ~thread:0 ~time:(t_ns 3) ~addr:4096 ~bytes:16;
  Alcotest.(check (list string)) "overlap and invalid free"
    [ "alloc-overlap"; "alloc-invalid-free" ] (classes o)

let test_oracle_digest_order_sensitive () =
  let feed order =
    let o = mk_oracle () in
    let p = Torture.Oracle.probe o in
    List.iter
      (fun (thread, addr) ->
         p.Samhita.Probe.on_write ~thread ~time:(t_ns 1) ~addr ~len:8
           ~value:(Some 1L))
      order;
    Torture.Oracle.digest o
  in
  let a = [ (0, 64); (1, 128) ] in
  Alcotest.(check int) "same stream, same digest" (feed a) (feed a);
  Alcotest.(check bool) "swapped stream, different digest" true
    (feed a <> feed (List.rev a))

(* ---------------- Runner ------------------------------------------- *)

let test_kernel_of_string () =
  List.iter
    (fun (s, k) ->
       Alcotest.(check string) s (Torture.Runner.kernel_name k)
         (match Torture.Runner.kernel_of_string s with
          | Ok k -> Torture.Runner.kernel_name k
          | Error e -> e))
    [ ("micro", Torture.Runner.Micro); ("jacobi", Torture.Runner.Jacobi);
      ("racy", Torture.Runner.Racy) ];
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Torture.Runner.kernel_of_string "fft"))

let test_run_one_deterministic () =
  let o1 = Torture.Runner.run_one ~kernel:Torture.Runner.Micro
      ~level:Fabric.Faults.High ~seed:5 ()
  and o2 = Torture.Runner.run_one ~kernel:Torture.Runner.Micro
      ~level:Fabric.Faults.High ~seed:5 () in
  Alcotest.(check int) "same digest" o1.Torture.Runner.o_digest
    o2.Torture.Runner.o_digest;
  Alcotest.(check int) "same event count" o1.Torture.Runner.o_events
    o2.Torture.Runner.o_events;
  Alcotest.(check int) "same makespan" o1.Torture.Runner.o_wall_ns
    o2.Torture.Runner.o_wall_ns;
  Alcotest.(check bool) "oracle exercised" true
    (o1.Torture.Runner.o_reads_checked > 0);
  Alcotest.(check bool) "clean" true (o1.Torture.Runner.o_violations = []);
  let o3 = Torture.Runner.run_one ~kernel:Torture.Runner.Micro
      ~level:Fabric.Faults.High ~seed:6 () in
  Alcotest.(check bool) "different seed, different stream" true
    (o3.Torture.Runner.o_digest <> o1.Torture.Runner.o_digest)

let test_runner_summary_smoke () =
  let s = Torture.Runner.run ~kernel:Torture.Runner.Jacobi
      ~level:Fabric.Faults.Medium ~seeds:3 ~base_seed:100 () in
  Alcotest.(check int) "all seeds ran" 3 s.Torture.Runner.s_runs;
  Alcotest.(check bool) "reads checked" true
    (s.Torture.Runner.s_reads_checked > 0);
  Alcotest.(check bool) "faults injected" true
    (s.Torture.Runner.s_faults.Samhita.Metrics.delayed > 0);
  Alcotest.(check (list string)) "no failing seeds" []
    (List.map
       (fun (o : Torture.Runner.outcome) -> string_of_int o.o_seed)
       s.Torture.Runner.s_failures)

let test_crash_mode_smoke () =
  (* Crash mode: every seed gets a replicated geometry and one fail-stop
     server crash; runs must stay clean (no deadlock, no oracle
     violation) and recoveries must actually happen. *)
  let s = Torture.Runner.run ~crash:true ~kernel:Torture.Runner.Micro
      ~level:Fabric.Faults.High ~seeds:3 ~base_seed:1 () in
  Alcotest.(check int) "all seeds ran" 3 s.Torture.Runner.s_runs;
  Alcotest.(check (list string)) "no failing seeds" []
    (List.map
       (fun (o : Torture.Runner.outcome) -> string_of_int o.o_seed)
       s.Torture.Runner.s_failures);
  Alcotest.(check bool) "promotions happened" true
    (s.Torture.Runner.s_promotions > 0)

(* ---------------- Racy kernel under torture (satellite) ------------ *)

(* The racy workload seeds exactly one defect of each class; fault
   injection and schedule fuzzing must not add or mask findings — the
   defects are ordering bugs in the program, not in the schedule. *)
let test_racy_one_defect_per_class_50_seeds () =
  for seed = 1 to 50 do
    let cfg =
      { config with
        Samhita.Config.seed;
        fault_level = Fabric.Faults.High;
        shuffle = true }
    in
    let oracle = Torture.Oracle.create ~config:cfg () in
    let sys =
      Workload.Racy.run ~on_create:(Torture.Oracle.attach oracle)
        ~config:cfg ()
    in
    Torture.Oracle.finalize oracle sys;
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d: memory oracle clean" seed)
      []
      (List.map (fun v -> v.Torture.Oracle.v_class)
         (Torture.Oracle.violations oracle));
    let kinds =
      match Samhita.System.sanitizer sys with
      | None -> Alcotest.fail "racy kernel must force the sanitizer on"
      | Some san ->
        List.sort compare
          (List.map
             (fun (f : Analysis.Regcsan.finding) ->
                Analysis.Regcsan.kind_name f.Analysis.Regcsan.kind)
             (Analysis.Regcsan.findings san))
    in
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d: one defect per class" seed)
      (List.sort compare [ "race"; "unpublished"; "mixed"; "invalid-read" ])
      kinds
  done

let tests =
  [ Alcotest.test_case "oracle: zero legal" `Quick test_oracle_zero_legal;
    Alcotest.test_case "oracle: illegal read flagged" `Quick
      test_oracle_flags_illegal_read;
    Alcotest.test_case "oracle: own store legal" `Quick
      test_oracle_own_store_legal;
    Alcotest.test_case "oracle: published history legal" `Quick
      test_oracle_published_history_legal;
    Alcotest.test_case "oracle: tainted words skipped" `Quick
      test_oracle_tainted_words_skipped;
    Alcotest.test_case "oracle: allocation invariants" `Quick
      test_oracle_alloc_invariants;
    Alcotest.test_case "oracle: digest order-sensitive" `Quick
      test_oracle_digest_order_sensitive;
    Alcotest.test_case "kernel_of_string" `Quick test_kernel_of_string;
    Alcotest.test_case "run_one deterministic" `Quick
      test_run_one_deterministic;
    Alcotest.test_case "runner summary" `Quick test_runner_summary_smoke;
    Alcotest.test_case "crash mode smoke" `Quick test_crash_mode_smoke;
    Alcotest.test_case "racy: one defect per class, 50 seeds" `Slow
      test_racy_one_defect_per_class_50_seeds ]

let () = Alcotest.run "torture" [ ("torture", tests) ]
