(* Tests for the manager: allocation, locks (with RegC grant actions),
   barriers and condition variables. *)

let cfg = Samhita.Config.default
let layout = Samhita.Layout.of_config cfg
let t0 = Desim.Time.zero

let mk () =
  let e = Desim.Engine.create () in
  let net =
    Fabric.Network.create e ~profile:cfg.Samhita.Config.fabric ~node_count:4
  in
  let m =
    Samhita.Manager_shard.create cfg layout ~engine:e
      ~endpoint:(Fabric.Scl.endpoint net 0)
  in
  (e, net, m)

let mk_with cfg' =
  let e = Desim.Engine.create () in
  let net =
    Fabric.Network.create e ~profile:cfg'.Samhita.Config.fabric ~node_count:4
  in
  let m =
    Samhita.Manager_shard.create cfg' layout ~engine:e
      ~endpoint:(Fabric.Scl.endpoint net 0)
  in
  (e, net, m)

let ep net n = Fabric.Scl.endpoint net n

(* ---------------- allocation ---------------- *)

let test_alloc_alignment () =
  let _, _, m = mk () in
  let lb = Samhita.Config.line_bytes cfg in
  let a1 = Samhita.Manager_shard.alloc m ~kind:`Shared ~bytes:24 in
  Alcotest.(check int) "shared 8-aligned" 0 (a1 mod 8);
  let a2 = Samhita.Manager_shard.alloc m ~kind:`Arena_chunk ~bytes:100 in
  Alcotest.(check int) "chunk line-aligned" 0 (a2 mod lb);
  let a3 = Samhita.Manager_shard.alloc m ~kind:`Large ~bytes:1000 in
  Alcotest.(check int) "large stripe-aligned" 0
    (a3 mod Samhita.Home.stripe_bytes cfg);
  Alcotest.(check bool) "disjoint and ordered" true (a1 < a2 && a2 < a3);
  Alcotest.(check bool) "gas grows" true
    (Samhita.Manager_shard.gas_used m >= a3 + 1000)

let test_alloc_invalid () =
  let _, _, m = mk () in
  Alcotest.check_raises "zero"
    (Invalid_argument "Manager_shard.alloc: bytes must be positive") (fun () ->
      ignore (Samhita.Manager_shard.alloc m ~kind:`Shared ~bytes:0))

(* ---------------- locks ---------------- *)

let test_lock_grant_free () =
  let _, net, m = mk () in
  let l = Samhita.Manager_shard.lock_create m in
  Alcotest.(check (option int)) "free" None (Samhita.Manager_shard.lock_holder m l);
  match
    Samhita.Manager_shard.lock_acquire m ~now:t0 ~lock:l ~thread:1 ~last_seen:0
      ~endpoint:(ep net 2) ~wake:(fun _ -> Alcotest.fail "no wake expected")
  with
  | `Granted g ->
    Alcotest.(check bool) "fresh" true (g.Samhita.Manager_shard.action = Fresh);
    Alcotest.(check int) "version 0" 0 g.Samhita.Manager_shard.lock_version;
    Alcotest.(check (option int)) "held" (Some 1)
      (Samhita.Manager_shard.lock_holder m l)
  | `Queued -> Alcotest.fail "expected immediate grant"

let test_lock_queue_and_handoff () =
  let e, net, m = mk () in
  let l = Samhita.Manager_shard.lock_create m in
  ignore
    (Samhita.Manager_shard.lock_acquire m ~now:t0 ~lock:l ~thread:1 ~last_seen:0
       ~endpoint:(ep net 2) ~wake:(fun _ -> ()));
  let woken = ref None in
  (match
     Samhita.Manager_shard.lock_acquire m ~now:t0 ~lock:l ~thread:2 ~last_seen:0
       ~endpoint:(ep net 3)
       ~wake:(fun g -> woken := Some g)
   with
   | `Queued -> ()
   | `Granted _ -> Alcotest.fail "expected queue");
  (* Holder releases with a log; waiter gets the lock and a Patch. *)
  let u = Samhita.Update.of_i64 ~addr:0 5L in
  Samhita.Manager_shard.lock_release m ~now:t0 ~lock:l ~thread:1 ~log:[ u ]
    ~line_versions:[ (0, 1) ];
  Alcotest.(check (option int)) "handed off" (Some 2)
    (Samhita.Manager_shard.lock_holder m l);
  Alcotest.(check bool) "wake is a scheduled fabric event" true
    (!woken = None);
  Desim.Engine.run e;
  (match !woken with
   | Some g -> (
       Alcotest.(check int) "sees version 1" 1 g.Samhita.Manager_shard.lock_version;
       match g.Samhita.Manager_shard.action with
       | Samhita.Manager_shard.Patch ([ u' ], [ (0, 1) ]) ->
         Alcotest.(check int) "patch addr" 0 u'.Samhita.Update.addr
       | _ -> Alcotest.fail "expected Patch")
   | None -> Alcotest.fail "waiter never woken")

let test_lock_release_not_holder () =
  let _, net, m = mk () in
  let l = Samhita.Manager_shard.lock_create m in
  ignore
    (Samhita.Manager_shard.lock_acquire m ~now:t0 ~lock:l ~thread:1 ~last_seen:0
       ~endpoint:(ep net 2) ~wake:(fun _ -> ()));
  Alcotest.check_raises "wrong thread"
    (Invalid_argument "Manager_shard.lock_release: thread does not hold the lock")
    (fun () ->
       Samhita.Manager_shard.lock_release m ~now:t0 ~lock:l ~thread:9 ~log:[]
         ~line_versions:[])

let test_lock_release_error_mutates_nothing () =
  (* An erroneous release (wrong thread) must leave the lock state
     untouched: same holder, same version, and the waiter queue intact —
     the queued waiter is still handed the lock by the legitimate
     release afterwards. *)
  let e, net, m = mk () in
  let l = Samhita.Manager_shard.lock_create m in
  (match
     Samhita.Manager_shard.lock_acquire m ~now:t0 ~lock:l ~thread:1 ~last_seen:0
       ~endpoint:(ep net 2) ~wake:(fun _ -> ())
   with
   | `Granted _ -> ()
   | `Queued -> Alcotest.fail "free lock");
  Samhita.Manager_shard.lock_release m ~now:t0 ~lock:l ~thread:1
    ~log:[ Samhita.Update.of_i64 ~addr:0 1L ]
    ~line_versions:[ (0, 1) ];
  (match
     Samhita.Manager_shard.lock_acquire m ~now:t0 ~lock:l ~thread:1 ~last_seen:1
       ~endpoint:(ep net 2) ~wake:(fun _ -> ())
   with
   | `Granted _ -> ()
   | `Queued -> Alcotest.fail "free lock");
  let woken = ref None in
  (match
     Samhita.Manager_shard.lock_acquire m ~now:t0 ~lock:l ~thread:2 ~last_seen:0
       ~endpoint:(ep net 3) ~wake:(fun g -> woken := Some g)
   with
   | `Queued -> ()
   | `Granted _ -> Alcotest.fail "expected queue");
  let version_before = Samhita.Manager_shard.lock_version m l in
  Alcotest.check_raises "wrong thread rejected"
    (Invalid_argument "Manager_shard.lock_release: thread does not hold the lock")
    (fun () ->
       Samhita.Manager_shard.lock_release m ~now:t0 ~lock:l ~thread:2
         ~log:[ Samhita.Update.of_i64 ~addr:8 9L ]
         ~line_versions:[ (0, 9) ]);
  Alcotest.(check (option int)) "holder unchanged" (Some 1)
    (Samhita.Manager_shard.lock_holder m l);
  Alcotest.(check int) "version unchanged" version_before
    (Samhita.Manager_shard.lock_version m l);
  Alcotest.(check bool) "waiter not woken by the error" true (!woken = None);
  (* The legitimate release still finds the waiter queued. *)
  Samhita.Manager_shard.lock_release m ~now:t0 ~lock:l ~thread:1
    ~log:[ Samhita.Update.of_i64 ~addr:8 2L ]
    ~line_versions:[ (0, 2) ];
  Alcotest.(check (option int)) "handed off to the intact waiter" (Some 2)
    (Samhita.Manager_shard.lock_holder m l);
  Desim.Engine.run e;
  (match !woken with
   | Some g ->
     Alcotest.(check int) "waiter sees the post-release version" 2
       g.Samhita.Manager_shard.lock_version
   | None -> Alcotest.fail "waiter never woken")

let test_lock_release_free_lock () =
  (* Releasing a never-acquired lock is the same misuse: raises, and the
     lock stays free at version 0. *)
  let _, _, m = mk () in
  let l = Samhita.Manager_shard.lock_create m in
  Alcotest.check_raises "free lock rejected"
    (Invalid_argument "Manager_shard.lock_release: thread does not hold the lock")
    (fun () ->
       Samhita.Manager_shard.lock_release m ~now:t0 ~lock:l ~thread:1
         ~log:[ Samhita.Update.of_i64 ~addr:0 1L ]
         ~line_versions:[ (0, 1) ]);
  Alcotest.(check (option int)) "still free" None
    (Samhita.Manager_shard.lock_holder m l);
  Alcotest.(check int) "version still 0" 0 (Samhita.Manager_shard.lock_version m l)

let test_lock_patch_aggregates_history () =
  let _, net, m = mk () in
  let l = Samhita.Manager_shard.lock_create m in
  (* Three acquire/release rounds by thread 1. *)
  for i = 1 to 3 do
    (match
       Samhita.Manager_shard.lock_acquire m ~now:t0 ~lock:l ~thread:1
         ~last_seen:(i - 1) ~endpoint:(ep net 2) ~wake:(fun _ -> ())
     with
     | `Granted _ -> ()
     | `Queued -> Alcotest.fail "free lock");
    Samhita.Manager_shard.lock_release m ~now:t0 ~lock:l ~thread:1
      ~log:[ Samhita.Update.of_i64 ~addr:(i * 8) (Int64.of_int i) ]
      ~line_versions:[ (0, i) ]
  done;
  (* A thread that last saw version 1 gets updates 2 and 3, aggregated. *)
  match
    Samhita.Manager_shard.lock_acquire m ~now:t0 ~lock:l ~thread:2 ~last_seen:1
      ~endpoint:(ep net 3) ~wake:(fun _ -> ())
  with
  | `Granted { action = Samhita.Manager_shard.Patch (log, lvs); lock_version; _ } ->
    Alcotest.(check int) "current version" 3 lock_version;
    Alcotest.(check (list int)) "updates 2 then 3 (oldest first)"
      [ 16; 24 ]
      (List.map (fun u -> u.Samhita.Update.addr) log);
    Alcotest.(check (list (pair int int))) "final line version" [ (0, 3) ]
      lvs
  | `Granted _ -> Alcotest.fail "expected Patch"
  | `Queued -> Alcotest.fail "lock should be free"

let test_lock_notices_fallback () =
  (* History depth 1: a two-version gap cannot be patched. *)
  let cfg' = { cfg with update_log_history = 1 } in
  let _, net, m = mk_with cfg' in
  let l = Samhita.Manager_shard.lock_create m in
  for i = 1 to 3 do
    (match
       Samhita.Manager_shard.lock_acquire m ~now:t0 ~lock:l ~thread:1
         ~last_seen:(i - 1) ~endpoint:(ep net 2) ~wake:(fun _ -> ())
     with
     | `Granted _ -> ()
     | `Queued -> Alcotest.fail "free lock");
    Samhita.Manager_shard.lock_release m ~now:t0 ~lock:l ~thread:1
      ~log:[ Samhita.Update.of_i64 ~addr:(i * 8) 1L ]
      ~line_versions:[ (i, i) ]
  done;
  match
    Samhita.Manager_shard.lock_acquire m ~now:t0 ~lock:l ~thread:2 ~last_seen:0
      ~endpoint:(ep net 3) ~wake:(fun _ -> ())
  with
  | `Granted { action = Samhita.Manager_shard.Notices ns; _ } ->
    Alcotest.(check (list (pair int int))) "touched map"
      [ (1, 1); (2, 2); (3, 3) ]
      (List.sort compare ns)
  | `Granted _ -> Alcotest.fail "expected Notices"
  | `Queued -> Alcotest.fail "lock should be free"

let test_lock_grant_wire_grows_with_payload () =
  let _, net, m = mk () in
  let l = Samhita.Manager_shard.lock_create m in
  (match
     Samhita.Manager_shard.lock_acquire m ~now:t0 ~lock:l ~thread:1 ~last_seen:0
       ~endpoint:(ep net 2) ~wake:(fun _ -> ())
   with
   | `Granted g0 ->
     Samhita.Manager_shard.lock_release m ~now:t0 ~lock:l ~thread:1
       ~log:(List.init 10 (fun i -> Samhita.Update.of_i64 ~addr:(i * 8) 0L))
       ~line_versions:[ (0, 1) ];
     (match
        Samhita.Manager_shard.lock_acquire m ~now:t0 ~lock:l ~thread:2 ~last_seen:0
          ~endpoint:(ep net 3) ~wake:(fun _ -> ())
      with
      | `Granted g1 ->
        Alcotest.(check bool) "patch reply bigger than fresh reply" true
          (g1.Samhita.Manager_shard.wire_bytes > g0.Samhita.Manager_shard.wire_bytes)
      | `Queued -> Alcotest.fail "free")
   | `Queued -> Alcotest.fail "free")

(* ---------------- barriers ---------------- *)

let test_barrier_release_and_masks () =
  let e, net, m = mk () in
  let b = Samhita.Manager_shard.barrier_create m ~parties:3 in
  let woken = ref [] in
  let arrive thread lines =
    Samhita.Manager_shard.barrier_arrive m ~now:t0 ~barrier:b ~thread ~lines
      ~endpoint:(ep net 2)
      ~wake:(fun (ns, _) -> woken := (thread, ns) :: !woken)
  in
  (match arrive 0 [ 10 ] with
   | `Wait -> ()
   | `Released _ -> Alcotest.fail "not last");
  (match arrive 1 [ 10; 11 ] with
   | `Wait -> ()
   | `Released _ -> Alcotest.fail "not last");
  (match arrive 2 [] with
   | `Released (all, _) ->
     Alcotest.(check (list (pair int (list int))))
       "writer sets aggregated"
       [ (10, [ 0; 1 ]); (11, [ 1 ]) ]
       (List.sort compare
          (List.map (fun (l, s) -> (l, Samhita.Tset.to_list s)) all))
   | `Wait -> Alcotest.fail "last arriver must release");
  Desim.Engine.run e;
  Alcotest.(check int) "both waiters woken" 2 (List.length !woken);
  Alcotest.(check int) "epoch advanced" 1 (Samhita.Manager_shard.barrier_epoch m b)

let test_barrier_reusable () =
  let e, net, m = mk () in
  let b = Samhita.Manager_shard.barrier_create m ~parties:2 in
  for epoch = 0 to 2 do
    ignore
      (Samhita.Manager_shard.barrier_arrive m ~now:t0 ~barrier:b ~thread:0
         ~lines:[ epoch ] ~endpoint:(ep net 2) ~wake:(fun _ -> ()));
    match
      Samhita.Manager_shard.barrier_arrive m ~now:t0 ~barrier:b ~thread:1
        ~lines:[] ~endpoint:(ep net 3) ~wake:(fun _ -> ())
    with
    | `Released (all, _) ->
      Alcotest.(check (list (pair int (list int))))
        "epoch notices are fresh each time"
        [ (epoch, [ 0 ]) ]
        (List.map (fun (l, s) -> (l, Samhita.Tset.to_list s)) all)
    | `Wait -> Alcotest.fail "should release"
  done;
  Desim.Engine.run e;
  Alcotest.(check int) "three epochs" 3 (Samhita.Manager_shard.barrier_epoch m b)

let test_barrier_thread_id_range () =
  let e, net, m = mk () in
  let b = Samhita.Manager_shard.barrier_create m ~parties:1 in
  (* Thread ids beyond the old 62-entry mask limit are legal now that
     writer sets are bitsets; only negative ids are rejected. *)
  (match
     Samhita.Manager_shard.barrier_arrive m ~now:t0 ~barrier:b ~thread:62
       ~lines:[ 7 ] ~endpoint:(ep net 2) ~wake:(fun _ -> ())
   with
   | `Released (all, _) ->
     Alcotest.(check (list (pair int (list int))))
       "wide thread id recorded in the writer set"
       [ (7, [ 62 ]) ]
       (List.map (fun (l, s) -> (l, Samhita.Tset.to_list s)) all)
   | `Wait -> Alcotest.fail "single party must release");
  Desim.Engine.run e;
  Alcotest.check_raises "negative id"
    (Invalid_argument "Manager_shard.barrier_arrive: negative thread id")
    (fun () ->
       ignore
         (Samhita.Manager_shard.barrier_arrive m ~now:t0 ~barrier:b ~thread:(-1)
            ~lines:[] ~endpoint:(ep net 2) ~wake:(fun _ -> ())))

let test_barrier_invalid_parties () =
  let _, _, m = mk () in
  Alcotest.check_raises "parties"
    (Invalid_argument "Manager_shard.barrier_create: parties") (fun () ->
      ignore (Samhita.Manager_shard.barrier_create m ~parties:0))

(* ---------------- condition variables ---------------- *)

let test_cond_signal_fifo () =
  let e, net, m = mk () in
  let c = Samhita.Manager_shard.cond_create m in
  let woken = ref [] in
  for i = 1 to 3 do
    Samhita.Manager_shard.cond_wait m ~cond:c ~thread:i ~endpoint:(ep net 2)
      ~wake:(fun () -> woken := i :: !woken)
  done;
  Alcotest.(check int) "signal wakes one" 1
    (Samhita.Manager_shard.cond_signal m ~now:t0 ~cond:c);
  Desim.Engine.run e;
  Alcotest.(check (list int)) "first waiter" [ 1 ] (List.rev !woken);
  Alcotest.(check int) "broadcast wakes rest" 2
    (Samhita.Manager_shard.cond_broadcast m ~now:t0 ~cond:c);
  Desim.Engine.run e;
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (List.rev !woken);
  Alcotest.(check int) "signal on empty" 0
    (Samhita.Manager_shard.cond_signal m ~now:t0 ~cond:c)

let test_unknown_ids () =
  let _, net, m = mk () in
  Alcotest.check_raises "unknown lock" (Invalid_argument "Manager_shard: unknown lock")
    (fun () -> ignore (Samhita.Manager_shard.lock_holder m 999));
  Alcotest.check_raises "unknown barrier"
    (Invalid_argument "Manager_shard: unknown barrier") (fun () ->
      ignore (Samhita.Manager_shard.barrier_epoch m 999));
  Alcotest.check_raises "unknown cond"
    (Invalid_argument "Manager_shard: unknown condition variable") (fun () ->
      Samhita.Manager_shard.cond_wait m ~cond:999 ~thread:0 ~endpoint:(ep net 2)
        ~wake:(fun () -> ()))

let tests =
  [ Alcotest.test_case "alloc alignment" `Quick test_alloc_alignment;
    Alcotest.test_case "alloc invalid" `Quick test_alloc_invalid;
    Alcotest.test_case "lock grant when free" `Quick test_lock_grant_free;
    Alcotest.test_case "lock queue + handoff" `Quick
      test_lock_queue_and_handoff;
    Alcotest.test_case "release error mutates nothing" `Quick
      test_lock_release_error_mutates_nothing;
    Alcotest.test_case "release of a free lock" `Quick
      test_lock_release_free_lock;
    Alcotest.test_case "release by non-holder" `Quick
      test_lock_release_not_holder;
    Alcotest.test_case "patch aggregates history" `Quick
      test_lock_patch_aggregates_history;
    Alcotest.test_case "notices fallback" `Quick test_lock_notices_fallback;
    Alcotest.test_case "grant wire size" `Quick
      test_lock_grant_wire_grows_with_payload;
    Alcotest.test_case "barrier masks" `Quick test_barrier_release_and_masks;
    Alcotest.test_case "barrier reusable" `Quick test_barrier_reusable;
    Alcotest.test_case "barrier thread id range" `Quick
      test_barrier_thread_id_range;
    Alcotest.test_case "barrier invalid parties" `Quick
      test_barrier_invalid_parties;
    Alcotest.test_case "cond signal/broadcast" `Quick test_cond_signal_fifo;
    Alcotest.test_case "unknown ids" `Quick test_unknown_ids ]

let () = Alcotest.run "samhita.manager" [ ("manager", tests) ]
