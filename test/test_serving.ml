(* The offered-load sweep harness: percentile ordering, open-loop
   overload divergence, determinism, and the replication / crash
   tail-cost comparisons. All runs are simulated and seeded, so every
   assertion is on deterministic numbers. *)

let kv =
  { Workload.Kv.default_params with
    Workload.Kv.traffic =
      { Workload.Kv.default_params.Workload.Kv.traffic with
        Workload.Traffic.clients = 8;
        requests = 384;
        keys = 64 } }

let sweep ?(fractions = [ 0.5; 1.5 ]) ?(replication = 0) ?(crash = false)
    backend =
  Harness.Serving.run ~fractions ~backend ~threads:2 ~replication ~crash kv

let check_points name (s : Harness.Serving.t) =
  Alcotest.(check bool) (name ^ ": capacity positive") true
    (s.Harness.Serving.capacity_rps > 0.);
  List.iter
    (fun (p : Harness.Serving.point) ->
       Alcotest.(check bool) (name ^ ": p50 <= p99") true
         (p.Harness.Serving.p50_ns <= p.Harness.Serving.p99_ns);
       Alcotest.(check bool) (name ^ ": p99 <= p999") true
         (p.Harness.Serving.p99_ns <= p.Harness.Serving.p999_ns);
       Alcotest.(check bool) (name ^ ": p999 <= max") true
         (p.Harness.Serving.p999_ns <= p.Harness.Serving.max_ns);
       Alcotest.(check int) (name ^ ": no lost writes") 0
         p.Harness.Serving.lost_writes)
    s.Harness.Serving.points

let overload_diverges name (s : Harness.Serving.t) =
  match s.Harness.Serving.points with
  | first :: rest ->
    let last = List.nth rest (List.length rest - 1) in
    Alcotest.(check bool)
      (Printf.sprintf "%s: overloaded p999 (%d) > 2x stable p999 (%d)" name
         last.Harness.Serving.p999_ns first.Harness.Serving.p999_ns)
      true
      (last.Harness.Serving.p999_ns > 2 * first.Harness.Serving.p999_ns)
  | [] -> Alcotest.fail "empty sweep"

let test_smh () =
  let s = sweep Harness.Serving.Smh in
  check_points "smh" s;
  overload_diverges "smh" s

let test_pth () =
  let s = sweep Harness.Serving.Pth in
  check_points "pth" s;
  overload_diverges "pth" s

let test_determinism () =
  let a = sweep Harness.Serving.Smh and b = sweep Harness.Serving.Smh in
  Alcotest.(check bool) "identical sweeps" true (a = b)

let test_replication_cost () =
  let plain = sweep Harness.Serving.Smh in
  let repl = sweep ~replication:1 Harness.Serving.Smh in
  check_points "repl" repl;
  (* Mirroring every write costs capacity; it must never gain any. *)
  Alcotest.(check bool) "replication does not raise capacity" true
    (repl.Harness.Serving.capacity_rps
     <= plain.Harness.Serving.capacity_rps)

let test_crash_tail_cost () =
  let quiet = sweep ~fractions:[ 0.5 ] ~replication:1 Harness.Serving.Smh in
  let crash =
    sweep ~fractions:[ 0.5 ] ~replication:1 ~crash:true Harness.Serving.Smh
  in
  check_points "crash" crash;
  match (quiet.Harness.Serving.points, crash.Harness.Serving.points) with
  | [ q ], [ c ] ->
    (* The promotion pause must show up in the tail — and never lose an
       acked write (check_points above). *)
    Alcotest.(check bool)
      (Printf.sprintf "crash p999 (%d) > quiet p999 (%d)"
         c.Harness.Serving.p999_ns q.Harness.Serving.p999_ns)
      true
      (c.Harness.Serving.p999_ns > q.Harness.Serving.p999_ns)
  | _ -> Alcotest.fail "expected single-point sweeps"

let test_json_shape () =
  let s = sweep Harness.Serving.Smh in
  let j = Harness.Serving.to_json s in
  List.iter
    (fun key ->
       let needle = Printf.sprintf "\"%s\"" key in
       let found =
         let nh = String.length j and nn = String.length needle in
         let rec go i =
           i + nn <= nh && (String.sub j i nn = needle || go (i + 1))
         in
         go 0
       in
       Alcotest.(check bool) (Printf.sprintf "json has %s" key) true found)
    [ "backend"; "threads"; "replication"; "crash"; "capacity_rps";
      "points"; "fraction"; "p50_ns"; "p99_ns"; "p999_ns"; "lost_writes" ]

let test_validation () =
  let fails msg f =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () -> ignore (f ()))
  in
  fails
    "Serving.run: replication, crash and manager shards need the smh \
     backend" (fun () ->
      Harness.Serving.run ~backend:Harness.Serving.Pth ~threads:2
        ~replication:1 ~crash:false kv);
  fails
    "Serving.run: replication, crash and manager shards need the smh \
     backend" (fun () ->
      Harness.Serving.run ~backend:Harness.Serving.Pth ~manager_shards:2
        ~threads:2 ~replication:0 ~crash:false kv);
  fails "Serving.run: manager_shards must be >= 1" (fun () ->
      Harness.Serving.run ~backend:Harness.Serving.Smh ~manager_shards:0
        ~threads:2 ~replication:0 ~crash:false kv);
  fails "Serving.run: a crash is survivable only with replication"
    (fun () ->
       Harness.Serving.run ~backend:Harness.Serving.Smh ~threads:2
         ~replication:0 ~crash:true kv);
  fails "Serving.run: empty load sweep" (fun () ->
      Harness.Serving.run ~fractions:[] ~backend:Harness.Serving.Smh
        ~threads:2 ~replication:0 ~crash:false kv)

let tests =
  [ Alcotest.test_case "smh sweep" `Quick test_smh;
    Alcotest.test_case "pth sweep" `Quick test_pth;
    Alcotest.test_case "deterministic" `Quick test_determinism;
    Alcotest.test_case "replication cost" `Quick test_replication_cost;
    Alcotest.test_case "crash tail cost" `Quick test_crash_tail_cost;
    Alcotest.test_case "json shape" `Quick test_json_shape;
    Alcotest.test_case "validation" `Quick test_validation ]

let () = Alcotest.run "serving" [ ("serving", tests) ]
