(* RegCSan: the vector-clock happens-before engine and RegC linter.

   Unit tests drive the analyzer with hand-built event streams; the
   integration tests run real kernels with [Config.sanitize] on and check
   the seeded-race workload reports exactly its four defects while the
   clean kernels report none. *)

module R = Analysis.Regcsan

let tm n = Desim.Time.of_ns n

let fresh () = R.create ~threads:4 ~page_bytes:4096

let kinds s = List.map (fun f -> f.R.kind) (R.findings s)

let kind = Alcotest.testable (Fmt.of_to_string R.kind_name) ( = )

(* ---------------- races ---------------- *)

let test_ww_race () =
  let s = fresh () in
  R.on_malloc s ~thread:0 ~time:(tm 0) ~addr:0 ~bytes:64;
  R.on_write s ~thread:0 ~time:(tm 10) ~addr:0 ~len:8 ~lock:(-1);
  R.on_write s ~thread:1 ~time:(tm 20) ~addr:0 ~len:8 ~lock:(-1);
  Alcotest.(check (list kind)) "one W-W race" [ R.Race ] (kinds s)

let test_rw_race () =
  let s = fresh () in
  R.on_malloc s ~thread:0 ~time:(tm 0) ~addr:0 ~bytes:64;
  R.on_write s ~thread:0 ~time:(tm 10) ~addr:8 ~len:8 ~lock:(-1);
  R.on_read s ~thread:1 ~time:(tm 20) ~addr:8 ~len:8;
  (* The unordered read is itself a race; no visibility lint on top. *)
  Alcotest.(check (list kind)) "one R-W race" [ R.Race ] (kinds s)

let test_write_over_concurrent_reads () =
  let s = fresh () in
  R.on_malloc s ~thread:0 ~time:(tm 0) ~addr:0 ~bytes:64;
  R.on_write s ~thread:0 ~time:(tm 5) ~addr:0 ~len:8 ~lock:(-1);
  (* Publish t0's write through a barrier all four threads join. *)
  for th = 0 to 3 do
    R.on_barrier_arrive s ~thread:th ~barrier:7 ~epoch:0
  done;
  for th = 0 to 3 do
    R.on_barrier_depart s ~thread:th ~barrier:7 ~epoch:0
  done;
  R.on_read s ~thread:1 ~time:(tm 20) ~addr:0 ~len:8;
  R.on_read s ~thread:2 ~time:(tm 21) ~addr:0 ~len:8;
  Alcotest.(check (list kind)) "reads after barrier clean" [] (kinds s);
  (* t3 writes with no ordering against either reader: two races, one per
     racing pair (same page, distinct thread pairs). *)
  R.on_write s ~thread:3 ~time:(tm 30) ~addr:0 ~len:8 ~lock:(-1);
  Alcotest.(check (list kind)) "both racing readers reported"
    [ R.Race; R.Race ] (kinds s)

let test_lock_orders_accesses () =
  let s = fresh () in
  R.on_malloc s ~thread:0 ~time:(tm 0) ~addr:0 ~bytes:64;
  R.on_lock_attempt s ~thread:0 ~time:(tm 5) ~lock:1;
  R.on_lock_acquired s ~thread:0 ~time:(tm 6) ~lock:1;
  R.on_write s ~thread:0 ~time:(tm 10) ~addr:0 ~len:8 ~lock:1;
  R.on_unlock s ~thread:0 ~time:(tm 15) ~lock:1;
  R.on_lock_attempt s ~thread:1 ~time:(tm 20) ~lock:1;
  R.on_lock_acquired s ~thread:1 ~time:(tm 21) ~lock:1;
  R.on_read s ~thread:1 ~time:(tm 25) ~addr:0 ~len:8;
  R.on_unlock s ~thread:1 ~time:(tm 30) ~lock:1;
  Alcotest.(check (list kind)) "lock-ordered region accesses clean" []
    (kinds s)

(* ---------------- RegC publication lints ---------------- *)

let test_unpublished_ordinary () =
  let s = fresh () in
  R.on_malloc s ~thread:0 ~time:(tm 0) ~addr:0 ~bytes:64;
  (* Ordinary write, then hand happens-before to t1 through a lock: HB
     says ordered, but RegC only publishes ordinary data at barriers. *)
  R.on_write s ~thread:0 ~time:(tm 5) ~addr:0 ~len:8 ~lock:(-1);
  R.on_lock_acquired s ~thread:0 ~time:(tm 6) ~lock:1;
  R.on_unlock s ~thread:0 ~time:(tm 10) ~lock:1;
  R.on_lock_acquired s ~thread:1 ~time:(tm 21) ~lock:1;
  R.on_read s ~thread:1 ~time:(tm 20) ~addr:0 ~len:8;
  Alcotest.(check (list kind)) "unpublished ordinary write" [ R.Unpublished ]
    (kinds s)

let test_barrier_publishes () =
  let s = fresh () in
  R.on_malloc s ~thread:0 ~time:(tm 0) ~addr:0 ~bytes:64;
  R.on_write s ~thread:0 ~time:(tm 5) ~addr:0 ~len:8 ~lock:(-1);
  List.iter (fun th -> R.on_barrier_arrive s ~thread:th ~barrier:9 ~epoch:0)
    [ 0; 1 ];
  List.iter (fun th -> R.on_barrier_depart s ~thread:th ~barrier:9 ~epoch:0)
    [ 0; 1 ];
  R.on_read s ~thread:1 ~time:(tm 20) ~addr:0 ~len:8;
  Alcotest.(check (list kind)) "barrier publishes ordinary write" [] (kinds s)

let test_region_read_needs_lock_chain () =
  let s = fresh () in
  R.on_malloc s ~thread:0 ~time:(tm 0) ~addr:0 ~bytes:64;
  R.on_lock_acquired s ~thread:0 ~time:(tm 6) ~lock:1;
  R.on_write s ~thread:0 ~time:(tm 5) ~addr:0 ~len:8 ~lock:1;
  (* HB through a condvar, not through lock 1: the grant chain that would
     patch the region write into t1's cache never ran. *)
  R.on_cond_signal s ~thread:0 ~cond:3;
  R.on_unlock s ~thread:0 ~time:(tm 10) ~lock:1;
  R.on_cond_wake s ~thread:1 ~cond:3;
  R.on_read s ~thread:1 ~time:(tm 20) ~addr:0 ~len:8;
  Alcotest.(check (list kind)) "region data needs the lock's grant chain"
    [ R.Unpublished ] (kinds s)

let test_mixed_writes () =
  let s = fresh () in
  R.on_malloc s ~thread:0 ~time:(tm 0) ~addr:0 ~bytes:64;
  R.on_write s ~thread:0 ~time:(tm 5) ~addr:0 ~len:8 ~lock:(-1);
  (* Order t1 after t0 through the same lock it writes under, so the only
     complaint is the mixed region/ordinary discipline. *)
  R.on_lock_acquired s ~thread:0 ~time:(tm 6) ~lock:1;
  R.on_unlock s ~thread:0 ~time:(tm 8) ~lock:1;
  R.on_lock_acquired s ~thread:1 ~time:(tm 21) ~lock:1;
  R.on_write s ~thread:1 ~time:(tm 10) ~addr:0 ~len:8 ~lock:1;
  Alcotest.(check (list kind)) "mixed region/ordinary writes" [ R.Mixed ]
    (kinds s)

let test_mixed_ok_after_barrier () =
  let s = fresh () in
  R.on_malloc s ~thread:0 ~time:(tm 0) ~addr:0 ~bytes:64;
  R.on_write s ~thread:0 ~time:(tm 5) ~addr:0 ~len:8 ~lock:(-1);
  List.iter (fun th -> R.on_barrier_arrive s ~thread:th ~barrier:9 ~epoch:0)
    [ 0; 1 ];
  List.iter (fun th -> R.on_barrier_depart s ~thread:th ~barrier:9 ~epoch:0)
    [ 0; 1 ];
  R.on_lock_acquired s ~thread:1 ~time:(tm 21) ~lock:1;
  R.on_write s ~thread:1 ~time:(tm 20) ~addr:0 ~len:8 ~lock:1;
  Alcotest.(check (list kind))
    "region write over a barrier-published ordinary write is clean" []
    (kinds s)

(* ---------------- allocation lints ---------------- *)

let test_read_unallocated () =
  let s = fresh () in
  R.on_read s ~thread:2 ~time:(tm 5) ~addr:4096 ~len:8;
  Alcotest.(check (list kind)) "unallocated read" [ R.Invalid_read ] (kinds s)

let test_use_after_free () =
  let s = fresh () in
  R.on_malloc s ~thread:0 ~time:(tm 0) ~addr:0 ~bytes:32;
  R.on_write s ~thread:0 ~time:(tm 5) ~addr:0 ~len:8 ~lock:(-1);
  R.on_free s ~thread:0 ~time:(tm 10) ~addr:0 ~bytes:32;
  R.on_read s ~thread:0 ~time:(tm 15) ~addr:0 ~len:8;
  Alcotest.(check (list kind)) "use after free" [ R.Invalid_read ] (kinds s)

let test_realloc_resets_history () =
  let s = fresh () in
  R.on_malloc s ~thread:0 ~time:(tm 0) ~addr:0 ~bytes:32;
  R.on_write s ~thread:0 ~time:(tm 5) ~addr:0 ~len:8 ~lock:(-1);
  R.on_free s ~thread:0 ~time:(tm 10) ~addr:0 ~bytes:32;
  (* Recycled to t1: neither t0's write history nor the free may leak. *)
  R.on_malloc s ~thread:1 ~time:(tm 20) ~addr:0 ~bytes:32;
  R.on_write s ~thread:1 ~time:(tm 25) ~addr:0 ~len:8 ~lock:(-1);
  R.on_read s ~thread:1 ~time:(tm 30) ~addr:0 ~len:8;
  Alcotest.(check (list kind)) "recycled block starts clean" [] (kinds s)

(* ---------------- lock misuse ---------------- *)

let test_double_lock () =
  let s = fresh () in
  R.on_lock_attempt s ~thread:0 ~time:(tm 5) ~lock:1;
  R.on_lock_acquired s ~thread:0 ~time:(tm 6) ~lock:1;
  R.on_lock_attempt s ~thread:0 ~time:(tm 10) ~lock:1;
  Alcotest.(check (list kind)) "double lock" [ R.Lock_misuse ] (kinds s)

let test_unlock_unheld () =
  let s = fresh () in
  R.on_unlock s ~thread:0 ~time:(tm 5) ~lock:1;
  Alcotest.(check (list kind)) "unlock of unheld lock" [ R.Lock_misuse ]
    (kinds s)

let nest s ~thread ~t0 ~outer ~inner =
  R.on_lock_attempt s ~thread ~time:(tm t0) ~lock:outer;
  R.on_lock_acquired s ~thread ~time:(tm t0) ~lock:outer;
  R.on_lock_attempt s ~thread ~time:(tm (t0 + 1)) ~lock:inner;
  R.on_lock_acquired s ~thread ~time:(tm (t0 + 1)) ~lock:inner;
  R.on_unlock s ~thread ~time:(tm (t0 + 2)) ~lock:inner;
  R.on_unlock s ~thread ~time:(tm (t0 + 3)) ~lock:outer

let test_abba_lock_order () =
  let s = fresh () in
  (* t0 nests 1 then 2; t1 nests 2 then 1. No deadlock in this trace, but
     the pair is ABBA-inconsistent: warn exactly once. *)
  nest s ~thread:0 ~t0:10 ~outer:1 ~inner:2;
  nest s ~thread:1 ~t0:20 ~outer:2 ~inner:1;
  nest s ~thread:0 ~t0:30 ~outer:1 ~inner:2;
  Alcotest.(check (list kind)) "ABBA pair warned once" [ R.Lock_order ]
    (kinds s);
  Alcotest.(check int) "counter matches" 1 (R.lock_order_warnings s)

let test_consistent_lock_order () =
  let s = fresh () in
  nest s ~thread:0 ~t0:10 ~outer:1 ~inner:2;
  nest s ~thread:1 ~t0:20 ~outer:1 ~inner:2;
  Alcotest.(check (list kind)) "consistent nesting is clean" [] (kinds s);
  Alcotest.(check int) "no warnings" 0 (R.lock_order_warnings s)

(* ---------------- deduplication ---------------- *)

let test_dedup () =
  let s = fresh () in
  R.on_malloc s ~thread:0 ~time:(tm 0) ~addr:0 ~bytes:64;
  (* Two racing words on one page between the same thread pair: one
     finding. A third on another page: a second finding. *)
  R.on_write s ~thread:0 ~time:(tm 10) ~addr:0 ~len:8 ~lock:(-1);
  R.on_write s ~thread:1 ~time:(tm 20) ~addr:0 ~len:8 ~lock:(-1);
  R.on_write s ~thread:0 ~time:(tm 30) ~addr:8 ~len:8 ~lock:(-1);
  R.on_write s ~thread:1 ~time:(tm 40) ~addr:8 ~len:8 ~lock:(-1);
  R.on_malloc s ~thread:0 ~time:(tm 50) ~addr:8192 ~bytes:64;
  R.on_write s ~thread:0 ~time:(tm 60) ~addr:8192 ~len:8 ~lock:(-1);
  R.on_write s ~thread:1 ~time:(tm 70) ~addr:8192 ~len:8 ~lock:(-1);
  Alcotest.(check int) "deduped per (page, pair, kind)" 2
    (R.findings_count s);
  Alcotest.(check int) "findings list matches count" 2
    (List.length (R.findings s))

let test_word_granularity () =
  let s = fresh () in
  R.on_malloc s ~thread:0 ~time:(tm 0) ~addr:0 ~bytes:64;
  (* Unordered writes to distinct words of one page: RegC's
     multiple-writer protocol makes this legal, so no finding. *)
  R.on_write s ~thread:0 ~time:(tm 10) ~addr:0 ~len:8 ~lock:(-1);
  R.on_write s ~thread:1 ~time:(tm 20) ~addr:8 ~len:8 ~lock:(-1);
  R.on_write s ~thread:2 ~time:(tm 30) ~addr:16 ~len:16 ~lock:(-1);
  Alcotest.(check (list kind)) "false sharing is not a race" [] (kinds s)

(* ---------------- integration: real kernels ---------------- *)

let findings_of sys =
  match Samhita.System.sanitizer sys with
  | None -> Alcotest.fail "sanitize forced on but no analyzer attached"
  | Some s -> s

let test_racy_kernel () =
  let s = findings_of (Workload.Racy.run ()) in
  Alcotest.(check (list kind)) "exactly the four seeded defects"
    [ R.Race; R.Unpublished; R.Mixed; R.Invalid_read ] (kinds s)

let test_racy_deterministic () =
  let render s = Format.asprintf "%a" R.pp_report s in
  let a = render (findings_of (Workload.Racy.run ())) in
  let b = render (findings_of (Workload.Racy.run ())) in
  Alcotest.(check string) "identical report across runs" a b

let sanitized_backend captured =
  Workload.Samhita_backend.make
    ~config:{ Samhita.Config.default with Samhita.Config.sanitize = true }
    ~on_create:(fun sys -> captured := Some sys)
    ()

let check_clean name run =
  let captured = ref None in
  run (sanitized_backend captured);
  match !captured with
  | None -> Alcotest.fail (name ^ ": kernel never built a system")
  | Some sys ->
    let s = findings_of sys in
    Alcotest.(check int) (name ^ " has no findings") 0 (R.findings_count s)

let test_clean_kernels () =
  check_clean "jacobi" (fun b ->
      ignore
        (Workload.Jacobi.run b ~threads:4
           { Workload.Jacobi.default_params with n = 32; iters = 3 }
         : Workload.Jacobi.result));
  check_clean "md" (fun b ->
      ignore
        (Workload.Md.run b ~threads:4
           { Workload.Md.default_params with n = 24; steps = 2 }
         : Workload.Md.result));
  check_clean "micro" (fun b ->
      ignore
        (Workload.Microbench.run b ~threads:4
           { Workload.Microbench.default_params with n_outer = 2; m_inner = 2 }
         : Workload.Microbench.result))

let () =
  Alcotest.run "regcsan"
    [ ( "races",
        [ Alcotest.test_case "w-w race" `Quick test_ww_race;
          Alcotest.test_case "r-w race" `Quick test_rw_race;
          Alcotest.test_case "write over concurrent reads" `Quick
            test_write_over_concurrent_reads;
          Alcotest.test_case "lock orders accesses" `Quick
            test_lock_orders_accesses ] );
      ( "publication",
        [ Alcotest.test_case "unpublished ordinary" `Quick
            test_unpublished_ordinary;
          Alcotest.test_case "barrier publishes" `Quick test_barrier_publishes;
          Alcotest.test_case "region read needs lock chain" `Quick
            test_region_read_needs_lock_chain;
          Alcotest.test_case "mixed writes" `Quick test_mixed_writes;
          Alcotest.test_case "mixed ok after barrier" `Quick
            test_mixed_ok_after_barrier ] );
      ( "allocation",
        [ Alcotest.test_case "read unallocated" `Quick test_read_unallocated;
          Alcotest.test_case "use after free" `Quick test_use_after_free;
          Alcotest.test_case "realloc resets history" `Quick
            test_realloc_resets_history ] );
      ( "locks",
        [ Alcotest.test_case "double lock" `Quick test_double_lock;
          Alcotest.test_case "unlock unheld" `Quick test_unlock_unheld;
          Alcotest.test_case "ABBA lock order" `Quick test_abba_lock_order;
          Alcotest.test_case "consistent lock order" `Quick
            test_consistent_lock_order ] );
      ( "reporting",
        [ Alcotest.test_case "dedup" `Quick test_dedup;
          Alcotest.test_case "word granularity" `Quick test_word_granularity ]
      );
      ( "kernels",
        [ Alcotest.test_case "racy kernel: 4 findings" `Quick
            test_racy_kernel;
          Alcotest.test_case "racy kernel: deterministic" `Quick
            test_racy_deterministic;
          Alcotest.test_case "clean kernels: 0 findings" `Quick
            test_clean_kernels ] ) ]
