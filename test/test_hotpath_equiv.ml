(* Equivalence tests for the hot-path rewrites: each optimized structure
   is driven against the simple implementation it replaced (or its
   documented policy) on random traces. The optimizations must be
   invisible — same victims, same spans, same drain order, same memory. *)

let cfg = Samhita.Config.default
let layout = Samhita.Layout.of_config cfg
let lb = layout.Samhita.Layout.line_bytes
let pages = cfg.Samhita.Config.pages_per_line

(* ------------------------------------------------------------------ *)
(* Word-wise Diff vs. the retained scalar reference                    *)

let spans_of_reference (d : Samhita.Diff_reference.t) =
  List.map
    (fun (s : Samhita.Diff_reference.span) ->
       (s.Samhita.Diff_reference.offset, s.Samhita.Diff_reference.data))
    d.Samhita.Diff_reference.spans

let spans_of_diff d =
  List.map
    (fun (s : Samhita.Diff.span) ->
       (s.Samhita.Diff.offset, s.Samhita.Diff.data))
    (Samhita.Diff.spans d)

(* Random write patterns: a mix of isolated bytes, short runs and
   word-straddling runs, plus writes of the twin's own value (which must
   not produce a span — the scan is byte-exact, not write-exact). *)
let gen_writes =
  QCheck.Gen.(
    list_size (int_range 0 48)
      (triple (int_bound (lb - 1)) (int_range 1 24) (int_bound 255)))

let prop_diff_matches_reference =
  QCheck.Test.make ~name:"word-wise Diff.make == scalar reference" ~count:300
    (QCheck.make
       QCheck.Gen.(pair gen_writes (int_bound ((1 lsl pages) - 1))))
    (fun (writes, dirty_pages) ->
       let twin = Bytes.init lb (fun i -> Char.chr (i * 7 land 0xFF)) in
       let current = Bytes.copy twin in
       List.iter
         (fun (off, len, v) ->
            let len = min len (lb - off) in
            Bytes.fill current off len (Char.chr v))
         writes;
       let d =
         Samhita.Diff.make layout ~line:3 ~twin ~current ~dirty_pages
       in
       let r =
         Samhita.Diff_reference.make layout ~line:3 ~twin ~current
           ~dirty_pages
       in
       spans_of_diff d = spans_of_reference r
       && Samhita.Diff.span_count d = Samhita.Diff_reference.span_count r
       && Samhita.Diff.payload_bytes d
          = Samhita.Diff_reference.payload_bytes r
       && Samhita.Diff.wire_bytes d = Samhita.Diff_reference.wire_bytes r
       && Samhita.Diff.is_empty d = Samhita.Diff_reference.is_empty r)

(* ------------------------------------------------------------------ *)
(* LRU-chain victim choice vs. the scan it replaced                    *)

(* Reference: the retired O(capacity) scan. Entries are (line, tick,
   dirty); ticks are unique, so the scan's strict comparisons make the
   choice independent of iteration order — exactly what the intrusive
   chains must reproduce. *)
module Scan_model = struct
  type e = { line : int; mutable tick : int; mutable dirty : bool }

  type t = {
    mutable entries : e list;
    mutable clock : int;
    dirty_first : bool;
    cap : int;
  }

  let create ~dirty_first ~cap = { entries = []; clock = 0; dirty_first; cap }

  let find t line = List.find_opt (fun e -> e.line = line) t.entries

  let touch t e =
    t.clock <- t.clock + 1;
    e.tick <- t.clock

  let choose_victim t ~allow_dirty =
    List.fold_left
      (fun best e ->
         if (not allow_dirty) && e.dirty then best
         else
           match best with
           | None -> Some e
           | Some b ->
             if t.dirty_first && e.dirty <> b.dirty then
               if e.dirty then Some e else Some b
             else if e.tick < b.tick then Some e
             else Some b)
      None t.entries

  (* Returns the victim's line, if an eviction happened. *)
  let insert t line =
    match find t line with
    | Some e ->
      touch t e;
      None
    | None ->
      let victim =
        if List.length t.entries >= t.cap then begin
          match choose_victim t ~allow_dirty:true with
          | Some v ->
            t.entries <- List.filter (fun e -> e.line <> v.line) t.entries;
            Some v.line
          | None -> None
        end
        else None
      in
      let e = { line; tick = 0; dirty = false } in
      touch t e;
      t.entries <- e :: t.entries;
      victim
end

type trace_op = Insert of int | Find of int | Mark of int | Clean of int | Drop of int

let trace_gen rng =
  let line = QCheck.Gen.int_range 0 11 rng in
  match QCheck.Gen.int_range 0 9 rng with
  | 0 | 1 | 2 | 3 -> Insert line
  | 4 | 5 -> Find line
  | 6 | 7 -> Mark line
  | 8 -> Clean line
  | _ -> Drop line

let trace_print = function
  | Insert l -> Printf.sprintf "I%d" l
  | Find l -> Printf.sprintf "F%d" l
  | Mark l -> Printf.sprintf "M%d" l
  | Clean l -> Printf.sprintf "C%d" l
  | Drop l -> Printf.sprintf "D%d" l

let arb_trace =
  QCheck.make
    ~print:(fun (ops, df) ->
      Printf.sprintf "dirty_first=%b [%s]" df
        (String.concat "; " (List.map trace_print ops)))
    QCheck.Gen.(pair (list_size (int_range 1 80) trace_gen) bool)

let prop_victims_match_scan =
  QCheck.Test.make
    ~name:"LRU-chain eviction sequence == scan-based reference" ~count:500
    arb_trace
    (fun (ops, dirty_first) ->
       let ccfg =
         { cfg with
           Samhita.Config.cache_lines = 4;
           evict_dirty_first = dirty_first }
       in
       let cache = Samhita.Cache.create ccfg (Samhita.Layout.of_config ccfg) in
       let model = Scan_model.create ~dirty_first ~cap:4 in
       let data () = Bytes.make lb '\000' in
       List.for_all
         (fun op ->
            match op with
            | Insert l ->
              let evicted = ref None in
              (if Samhita.Cache.peek cache l = None then
                 ignore
                   (Samhita.Cache.insert cache ~line:l ~data:(data ())
                      ~version:0
                      ~evict:(fun v ->
                        evicted := Some v.Samhita.Cache.line)
                    : Samhita.Cache.entry)
               else ignore (Samhita.Cache.find cache l));
              let model_victim = Scan_model.insert model l in
              !evicted = model_victim
            | Find l ->
              ignore (Samhita.Cache.find cache l);
              (match Scan_model.find model l with
               | Some e -> Scan_model.touch model e
               | None -> ());
              true
            | Mark l ->
              (match Samhita.Cache.peek cache l with
               | Some e ->
                 Samhita.Cache.mark_written cache e ~offset:0 ~len:8
               | None -> ());
              (match Scan_model.find model l with
               | Some e -> e.Scan_model.dirty <- true
               | None -> ());
              true
            | Clean l ->
              (match Samhita.Cache.peek cache l with
               | Some e -> Samhita.Cache.clean cache e ~version:0
               | None -> ());
              (match Scan_model.find model l with
               | Some e -> e.Scan_model.dirty <- false
               | None -> ());
              true
            | Drop l ->
              Samhita.Cache.invalidate cache l;
              model.Scan_model.entries <-
                List.filter
                  (fun (e : Scan_model.e) -> e.Scan_model.line <> l)
                  model.Scan_model.entries;
              true)
         ops)

(* ------------------------------------------------------------------ *)
(* Unboxed heap vs. a boxed sorted-list reference                      *)

module List_heap = struct
  type 'a t = {
    mutable entries : (int * int * int * 'a) list;  (* time, prio, seq *)
    mutable next_seq : int;
    tie_break : (time:int -> seq:int -> int) option;
  }

  let create ?tie_break () = { entries = []; next_seq = 0; tie_break }

  let push t ~time payload =
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let prio =
      match t.tie_break with Some f -> f ~time ~seq | None -> seq
    in
    t.entries <- (time, prio, seq, payload) :: t.entries

  let pop t =
    match
      List.sort
        (fun (t1, p1, s1, _) (t2, p2, s2, _) ->
           match Int.compare t1 t2 with
           | 0 -> (
               match Int.compare p1 p2 with
               | 0 -> Int.compare s1 s2
               | c -> c)
           | c -> c)
        t.entries
    with
    | [] -> None
    | ((time, _, _, payload) as min) :: _ ->
      t.entries <- List.filter (fun e -> e != min) t.entries;
      Some (time, payload)
end

type heap_op = Push of int | Pop

let arb_heap_trace =
  QCheck.make
    ~print:(fun (ops, tb) ->
      Printf.sprintf "tie_break=%b [%s]" tb
        (String.concat "; "
           (List.map
              (function Push t -> Printf.sprintf "push %d" t | Pop -> "pop")
              ops)))
    QCheck.Gen.(
      pair
        (list_size (int_range 1 120)
           (int_range 0 3 >>= fun k ->
            if k = 0 then return Pop
            else map (fun t -> Push t) (int_bound 50)))
        bool)

let prop_heap_matches_boxed =
  QCheck.Test.make
    ~name:"unboxed heap drain order == boxed reference (with tie-break)"
    ~count:500 arb_heap_trace
    (fun (ops, use_tb) ->
       (* Any pure function works as a tie-break; this one permutes
          same-instant order while colliding often enough to exercise the
          seq fallback. *)
       let tb = if use_tb then Some (fun ~time ~seq -> (time + seq) mod 3) else None in
       let h = Desim.Heap.create ?tie_break:tb ~initial_capacity:4 () in
       let r = List_heap.create ?tie_break:tb () in
       let n = ref 0 in
       List.for_all
         (fun op ->
            match op with
            | Push time ->
              incr n;
              Desim.Heap.push h ~time !n;
              List_heap.push r ~time !n;
              Desim.Heap.length h = List.length r.List_heap.entries
            | Pop -> Desim.Heap.pop h = List_heap.pop r)
         ops
       &&
       (* Drain whatever remains: full order must agree. *)
       let rec drain () =
         match (Desim.Heap.pop h, List_heap.pop r) with
         | None, None -> true
         | a, b when a = b -> drain ()
         | _ -> false
       in
       drain ())

(* ------------------------------------------------------------------ *)
(* Region-log coalescing: same final memory, never more wire bytes     *)

let region = 256

let gen_stores =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (int_range 0 1 >>= fun k ->
       if k = 0 then
         (* 8-aligned i64 store *)
         map
           (fun (slot, v) -> (slot * 8, Int64.of_int v))
           (pair (int_bound ((region / 8) - 1)) (int_bound 10_000))
       else
         map
           (fun (off, len) -> (off, Int64.of_int len))
           (pair (int_bound (region - 25)) (int_range 1 24))))

let replay log buf =
  (* Oldest-first, as grant patches and home application do. *)
  List.iter
    (fun (u : Samhita.Update.t) ->
       Bytes.blit u.Samhita.Update.data 0 buf u.Samhita.Update.addr
         (Bytes.length u.Samhita.Update.data))
    (List.rev log)

let prop_coalesced_log_equivalent =
  QCheck.Test.make
    ~name:"coalesced region log: same memory, wire bytes never larger"
    ~count:500
    (QCheck.make gen_stores)
    (fun stores ->
       let plain = ref [] and coal = ref [] in
       List.iteri
         (fun i (off, v) ->
            (* Even entries: i64 stores; odd entries reuse v as a length
               for a run of bytes — both shapes the runtime logs. *)
            let data =
              if i land 1 = 0 && off land 7 = 0 then Samhita.Update.i64_data v
              else
                Bytes.make
                  (min (Int64.to_int v mod 24 + 1) (region - off))
                  (Char.chr (i land 0xFF))
            in
            plain :=
              Samhita.Update.append ~coalesce:false !plain ~addr:off data;
            coal :=
              Samhita.Update.append ~coalesce:true !coal ~addr:off data)
         stores;
       let m1 = Bytes.make region '\000' in
       let m2 = Bytes.make region '\000' in
       replay !plain m1;
       replay !coal m2;
       Bytes.equal m1 m2
       && Samhita.Update.log_wire_bytes !coal
          <= Samhita.Update.log_wire_bytes !plain
       && List.length !coal <= List.length !plain)

let tests =
  [ QCheck_alcotest.to_alcotest prop_diff_matches_reference;
    QCheck_alcotest.to_alcotest prop_victims_match_scan;
    QCheck_alcotest.to_alcotest prop_heap_matches_boxed;
    QCheck_alcotest.to_alcotest prop_coalesced_log_equivalent ]

let () = Alcotest.run "hotpath-equiv" [ ("equivalence", tests) ]
