(* Tests for the per-thread software cache. *)

let cfg = { Samhita.Config.default with cache_lines = 4 }
let layout = Samhita.Layout.of_config cfg
let lb = layout.Samhita.Layout.line_bytes

let mk () = Samhita.Cache.create cfg layout
let buf () = Bytes.make lb '\000'

let insert_plain c line =
  Samhita.Cache.insert c ~line ~data:(buf ()) ~version:0 ~evict:(fun _ -> ())

let test_insert_find () =
  let c = mk () in
  let e = insert_plain c 5 in
  Alcotest.(check int) "line id" 5 e.Samhita.Cache.line;
  (* Physical equality: entries carry cyclic intrusive LRU links, so
     structural compare must never be applied to them. *)
  Alcotest.(check bool) "found" true
    (match Samhita.Cache.find c 5 with Some e' -> e' == e | None -> false);
  Alcotest.(check bool) "absent" true (Samhita.Cache.find c 6 = None);
  Alcotest.(check int) "size" 1 (Samhita.Cache.size c);
  Alcotest.(check int) "capacity" 4 (Samhita.Cache.capacity c)

let test_duplicate_insert_returns_existing () =
  let c = mk () in
  let e1 = insert_plain c 5 in
  let e2 = insert_plain c 5 in
  Alcotest.(check bool) "same entry" true (e1 == e2);
  Alcotest.(check int) "no duplicate" 1 (Samhita.Cache.size c)

let test_lru_eviction () =
  let c = mk () in
  List.iter (fun l -> ignore (insert_plain c l)) [ 1; 2; 3; 4 ];
  (* Touch 1 so 2 becomes LRU. *)
  ignore (Samhita.Cache.find c 1);
  let evicted = ref [] in
  ignore
    (Samhita.Cache.insert c ~line:9 ~data:(buf ()) ~version:0
       ~evict:(fun v -> evicted := v.Samhita.Cache.line :: !evicted));
  Alcotest.(check (list int)) "LRU victim" [ 2 ] !evicted;
  Alcotest.(check bool) "victim gone" true (Samhita.Cache.peek c 2 = None);
  Alcotest.(check int) "evictions" 1 (Samhita.Cache.evictions c)

let test_dirty_first_eviction () =
  let c = mk () in
  List.iter (fun l -> ignore (insert_plain c l)) [ 1; 2; 3; 4 ];
  (* Make line 3 dirty although recently used. *)
  (match Samhita.Cache.peek c 3 with
   | Some e -> Samhita.Cache.mark_written c e ~offset:0 ~len:8
   | None -> Alcotest.fail "line 3 missing");
  ignore (Samhita.Cache.find c 3);
  let evicted = ref [] in
  ignore
    (Samhita.Cache.insert c ~line:9 ~data:(buf ()) ~version:0
       ~evict:(fun v -> evicted := v.Samhita.Cache.line :: !evicted));
  Alcotest.(check (list int)) "dirty line preferred over LRU" [ 3 ] !evicted;
  Alcotest.(check int) "dirty eviction counted" 1
    (Samhita.Cache.dirty_evictions c)

let test_lru_only_eviction () =
  let cfg' = { cfg with evict_dirty_first = false } in
  let c = Samhita.Cache.create cfg' layout in
  List.iter
    (fun l ->
       ignore
         (Samhita.Cache.insert c ~line:l ~data:(buf ()) ~version:0
            ~evict:(fun _ -> ())))
    [ 1; 2; 3; 4 ];
  (match Samhita.Cache.peek c 1 with
   | Some e -> Samhita.Cache.mark_written c e ~offset:0 ~len:8
   | None -> Alcotest.fail "missing");
  (* With pure LRU, line 1 (just touched by peek-less mark) is victim only
     if oldest; we touched nothing since insert, so 1 is oldest anyway.
     Touch it to make 2 the victim despite 1 being dirty. *)
  ignore (Samhita.Cache.find c 1);
  let evicted = ref [] in
  ignore
    (Samhita.Cache.insert c ~line:9 ~data:(buf ()) ~version:0
       ~evict:(fun v -> evicted := v.Samhita.Cache.line :: !evicted));
  Alcotest.(check (list int)) "pure LRU ignores dirtiness" [ 2 ] !evicted

let test_mark_written_twin_and_bits () =
  let c = mk () in
  let e = insert_plain c 0 in
  Alcotest.(check bool) "clean" true (e.Samhita.Cache.twin = None);
  Bytes.set e.Samhita.Cache.data 5000 'x';
  (* Snapshot must happen before the store in real use; here we emulate the
     correct order: mark, then write. *)
  let e2 = insert_plain c 1 in
  Samhita.Cache.mark_written c e2 ~offset:4096 ~len:8;
  Alcotest.(check bool) "twin created" true (e2.Samhita.Cache.twin <> None);
  Alcotest.(check int) "page 1 dirty" 0b10 e2.Samhita.Cache.dirty_pages;
  Samhita.Cache.mark_written c e2 ~offset:(4096 - 4) ~len:8;
  Alcotest.(check int) "straddle marks pages 0 and 1" 0b11
    e2.Samhita.Cache.dirty_pages;
  Samhita.Cache.clean c e2 ~version:7;
  Alcotest.(check bool) "twin dropped" true (e2.Samhita.Cache.twin = None);
  Alcotest.(check int) "bits cleared" 0 e2.Samhita.Cache.dirty_pages;
  Alcotest.(check int) "version recorded" 7 e2.Samhita.Cache.version

let test_dirty_entries_sorted () =
  let c = mk () in
  let e3 = insert_plain c 3 in
  let e1 = insert_plain c 1 in
  let e2 = insert_plain c 2 in
  Samhita.Cache.mark_written c e3 ~offset:0 ~len:8;
  Samhita.Cache.mark_written c e1 ~offset:0 ~len:8;
  ignore e2;
  Alcotest.(check (list int)) "dirty ascending" [ 1; 3 ]
    (List.map
       (fun (e : Samhita.Cache.entry) -> e.Samhita.Cache.line)
       (Samhita.Cache.dirty_entries c))

let test_invalidate () =
  let c = mk () in
  ignore (insert_plain c 1);
  Samhita.Cache.invalidate c 1;
  Alcotest.(check bool) "gone" true (Samhita.Cache.peek c 1 = None);
  Alcotest.(check int) "counted" 1 (Samhita.Cache.invalidations c);
  (* Invalidating an absent line is harmless. *)
  Samhita.Cache.invalidate c 77;
  Alcotest.(check int) "not counted" 1 (Samhita.Cache.invalidations c)

let test_try_install_respects_dirty () =
  let c = mk () in
  List.iter (fun l -> ignore (insert_plain c l)) [ 1; 2; 3; 4 ];
  (* All clean: try_install evicts a clean victim. *)
  Alcotest.(check bool) "installs over clean" true
    (Samhita.Cache.try_install c ~line:8 ~data:(buf ()) ~version:0);
  (* Make everything dirty: try_install must refuse. *)
  Hashtbl.iter (fun _ _ -> ()) (Hashtbl.create 1);
  List.iter
    (fun l ->
       match Samhita.Cache.peek c l with
       | Some e -> Samhita.Cache.mark_written c e ~offset:0 ~len:8
       | None -> ())
    [ 2; 3; 4; 8 ];
  Alcotest.(check bool) "refuses when all dirty" false
    (Samhita.Cache.try_install c ~line:9 ~data:(buf ()) ~version:0);
  Alcotest.(check bool) "not cached" true (Samhita.Cache.peek c 9 = None);
  (* Duplicate install refused. *)
  Alcotest.(check bool) "duplicate refused" false
    (Samhita.Cache.try_install c ~line:8 ~data:(buf ()) ~version:0)

let test_pending_lifecycle () =
  let c = mk () in
  Alcotest.(check bool) "start" true (Samhita.Cache.pending_start c 5);
  Alcotest.(check bool) "no duplicate prefetch" false
    (Samhita.Cache.pending_start c 5);
  Alcotest.(check bool) "is pending" true (Samhita.Cache.is_pending c 5);
  let got = ref None in
  (match Samhita.Cache.pending_wait c 5 with
   | Some register -> register (fun arrival -> got := Some arrival)
   | None -> Alcotest.fail "expected pending");
  Samhita.Cache.pending_complete c 5 ~data:(buf ()) ~version:3;
  (match !got with
   | Some (Some (_, v)) -> Alcotest.(check int) "version delivered" 3 v
   | _ -> Alcotest.fail "waiter not delivered");
  Alcotest.(check bool) "pending cleared" false (Samhita.Cache.is_pending c 5)

let test_pending_stale_delivery () =
  let c = mk () in
  ignore (Samhita.Cache.pending_start c 6);
  let got = ref None in
  (match Samhita.Cache.pending_wait c 6 with
   | Some register -> register (fun arrival -> got := Some arrival)
   | None -> Alcotest.fail "pending");
  (* Invalidation in flight marks the prefetch stale. *)
  Samhita.Cache.invalidate c 6;
  Samhita.Cache.pending_complete c 6 ~data:(buf ()) ~version:1;
  Alcotest.(check bool) "waiter told to retry" true (!got = Some None);
  Alcotest.(check bool) "stale data not installed" true
    (Samhita.Cache.peek c 6 = None)

let test_pending_no_waiters_installs () =
  let c = mk () in
  ignore (Samhita.Cache.pending_start c 7);
  Samhita.Cache.pending_complete c 7 ~data:(buf ()) ~version:2;
  (match Samhita.Cache.peek c 7 with
   | Some e -> Alcotest.(check int) "installed version" 2 e.Samhita.Cache.version
   | None -> Alcotest.fail "expected install");
  Alcotest.(check int) "prefetch install counted" 1
    (Samhita.Cache.prefetch_installs c)

let test_hit_miss_counters () =
  let c = mk () in
  Samhita.Cache.note_hit c;
  Samhita.Cache.note_hit c;
  Samhita.Cache.note_miss c;
  Alcotest.(check int) "hits" 2 (Samhita.Cache.hits c);
  Alcotest.(check int) "misses" 1 (Samhita.Cache.misses c)

let prop_capacity_never_exceeded =
  QCheck.Test.make ~name:"size never exceeds capacity (plain inserts)"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 1 40) (int_bound 20))
    (fun lines ->
       let c = mk () in
       List.iter
         (fun l ->
            if Samhita.Cache.peek c l = None then
              ignore
                (Samhita.Cache.insert c ~line:l ~data:(buf ()) ~version:0
                   ~evict:(fun _ -> ())))
         lines;
       Samhita.Cache.size c <= Samhita.Cache.capacity c)

let tests =
  [ Alcotest.test_case "insert/find" `Quick test_insert_find;
    Alcotest.test_case "duplicate insert" `Quick
      test_duplicate_insert_returns_existing;
    Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
    Alcotest.test_case "dirty-first eviction" `Quick
      test_dirty_first_eviction;
    Alcotest.test_case "pure LRU eviction" `Quick test_lru_only_eviction;
    Alcotest.test_case "twin + dirty bits" `Quick
      test_mark_written_twin_and_bits;
    Alcotest.test_case "dirty entries sorted" `Quick
      test_dirty_entries_sorted;
    Alcotest.test_case "invalidate" `Quick test_invalidate;
    Alcotest.test_case "try_install" `Quick test_try_install_respects_dirty;
    Alcotest.test_case "pending lifecycle" `Quick test_pending_lifecycle;
    Alcotest.test_case "pending stale" `Quick test_pending_stale_delivery;
    Alcotest.test_case "pending auto-install" `Quick
      test_pending_no_waiters_installs;
    Alcotest.test_case "hit/miss counters" `Quick test_hit_miss_counters;
    QCheck_alcotest.to_alcotest prop_capacity_never_exceeded ]

let () = Alcotest.run "samhita.cache" [ ("cache", tests) ]
