(* Tests for the fabric fault-injection policy and the reliable-delivery
   retry loop it torments. *)

let t0 = Desim.Time.zero

let profile =
  { Fabric.Profile.name = "test";
    hop_latency = 100;
    bandwidth_bytes_per_s = 1e9;
    post_overhead = 50;
    switched = true;
    header_bytes = 0 }

let mk_net ?faults () =
  let e = Desim.Engine.create () in
  (e, Fabric.Network.create ?faults e ~profile ~node_count:4)

let test_level_of_string () =
  let lvl = Alcotest.testable
      (fun ppf l -> Format.pp_print_string ppf (Fabric.Faults.level_name l))
      ( = )
  in
  List.iter
    (fun (s, expect) ->
       Alcotest.(check (result lvl string)) s (Ok expect)
         (Fabric.Faults.level_of_string s))
    [ ("off", Fabric.Faults.Off); ("none", Fabric.Faults.Off);
      ("low", Fabric.Faults.Low); ("medium", Fabric.Faults.Medium);
      ("med", Fabric.Faults.Medium); ("high", Fabric.Faults.High) ];
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Fabric.Faults.level_of_string "chaotic"))

let test_off_is_inert () =
  let f = Fabric.Faults.create ~seed:1 ~level:Fabric.Faults.Off () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "never drops" false
      (Fabric.Faults.should_drop f ~src:0 ~dst:1)
  done;
  let a = Desim.Time.of_ns 500 in
  Alcotest.(check int) "perturb is identity" 500
    (Desim.Time.to_ns (Fabric.Faults.perturb f ~src:0 ~dst:1 ~arrival:a));
  Alcotest.(check int) "no counters" 0
    (Fabric.Faults.messages_delayed f + Fabric.Faults.messages_reordered f
     + Fabric.Faults.messages_dropped f)

let test_bounded_consecutive_drops () =
  (* High allows at most 3 consecutive drops per pair: with no delivery in
     between, a pair's drop budget never replenishes. *)
  let f = Fabric.Faults.create ~seed:7 ~level:Fabric.Faults.High () in
  let drops = ref 0 in
  for _ = 1 to 10_000 do
    if Fabric.Faults.should_drop f ~src:0 ~dst:1 then incr drops
  done;
  Alcotest.(check int) "budget exhausted at 3" 3 !drops;
  (* A delivery (perturb) resets the pair's budget. *)
  ignore (Fabric.Faults.perturb f ~src:0 ~dst:1 ~arrival:t0);
  let more = ref 0 in
  for _ = 1 to 10_000 do
    if Fabric.Faults.should_drop f ~src:0 ~dst:1 then incr more
  done;
  Alcotest.(check int) "budget replenished, re-capped" 3 !more;
  (* Other pairs have independent budgets. *)
  let other = ref 0 in
  for _ = 1 to 10_000 do
    if Fabric.Faults.should_drop f ~src:2 ~dst:3 then incr other
  done;
  Alcotest.(check int) "per-pair budget" 3 !other

let test_per_pair_monotonic () =
  (* Within one (src,dst) pair delivery order is preserved: perturbed
     arrivals are strictly increasing even when the nominal arrivals are
     identical (reorder-scale delays would otherwise leapfrog). *)
  let f = Fabric.Faults.create ~seed:42 ~level:Fabric.Faults.High () in
  let last = ref (-1) in
  for _ = 1 to 500 do
    let a =
      Desim.Time.to_ns
        (Fabric.Faults.perturb f ~src:1 ~dst:2 ~arrival:(Desim.Time.of_ns 1000))
    in
    Alcotest.(check bool) "monotonic within pair" true (a > !last);
    Alcotest.(check bool) "never early" true (a >= 1000);
    last := a
  done;
  Alcotest.(check bool) "jitter injected" true
    (Fabric.Faults.messages_delayed f > 0);
  Alcotest.(check bool) "reorder-scale delays injected" true
    (Fabric.Faults.messages_reordered f > 0)

let test_seed_determinism () =
  let run seed =
    let f = Fabric.Faults.create ~seed ~level:Fabric.Faults.High () in
    let out = ref [] in
    for i = 0 to 199 do
      let src = i mod 3 and dst = (i + 1) mod 3 in
      let d = Fabric.Faults.should_drop f ~src ~dst in
      let a =
        if d then -1
        else
          Desim.Time.to_ns
            (Fabric.Faults.perturb f ~src ~dst
               ~arrival:(Desim.Time.of_ns (100 * i)))
      in
      out := a :: !out
    done;
    ( !out,
      Fabric.Faults.messages_delayed f,
      Fabric.Faults.messages_reordered f,
      Fabric.Faults.messages_dropped f )
  in
  Alcotest.(check bool) "same seed, same stream" true (run 9 = run 9);
  Alcotest.(check bool) "different seed, different stream" true
    (run 9 <> run 10)

let test_reliable_transfer_no_faults () =
  (* Transfers mutate port-queue state, so compare on two fresh fabrics. *)
  let _, net1 = mk_net () in
  let _, net2 = mk_net () in
  Alcotest.(check int) "reduces to Network.transfer"
    (Desim.Time.to_ns (Fabric.Network.transfer net1 ~now:t0 ~src:0 ~dst:1
                         ~bytes:1000))
    (Desim.Time.to_ns (Fabric.Scl.reliable_transfer net2 ~now:t0 ~src:0 ~dst:1
                         ~bytes:1000))

let test_reliable_transfer_retries_through_drops () =
  let faults = Fabric.Faults.create ~seed:3 ~level:Fabric.Faults.High () in
  let _, net = mk_net ~faults () in
  let base = Fabric.Network.one_way_estimate net ~bytes:256 in
  for i = 0 to 199 do
    let now = Desim.Time.of_ns (i * 10_000) in
    let a = Fabric.Scl.reliable_transfer net ~now ~src:0 ~dst:1 ~bytes:256 in
    Alcotest.(check bool) "arrives, never before the uncontended time" true
      (Desim.Time.to_ns a >= Desim.Time.to_ns now + base)
  done;
  (* Every drop costs exactly one retransmission here (only this loop is
     sending), and at High some of 200 sends are dropped. *)
  Alcotest.(check bool) "drops happened" true
    (Fabric.Faults.messages_dropped faults > 0);
  Alcotest.(check int) "one retry per drop"
    (Fabric.Faults.messages_dropped faults)
    (Fabric.Faults.messages_retried faults)

let test_retry_timeout_backoff () =
  let _, net = mk_net () in
  let t k = Fabric.Scl.retry_timeout net ~bytes:256 ~attempt:k in
  Alcotest.(check int) "doubles per attempt" (2 * t 0) (t 1);
  Alcotest.(check int) "keeps doubling" (4 * t 0) (t 2);
  Alcotest.(check int) "backoff capped" (t 4) (t 5);
  Alcotest.(check int) "cap is 16x" (16 * t 0) (t 9)

let test_backoff_cap_boundary () =
  (* Pin the cap itself: the last growing attempt is max_backoff_shift = 4;
     every attempt past it pays exactly the same (capped) timeout, however
     large the attempt counter grows. *)
  Alcotest.(check int) "max_backoff_shift is pinned" 4
    Fabric.Scl.max_backoff_shift;
  let _, net = mk_net () in
  let t k = Fabric.Scl.retry_timeout net ~bytes:512 ~attempt:k in
  Alcotest.(check int) "attempt 3 still below cap" (8 * t 0) (t 3);
  Alcotest.(check int) "attempt 4 reaches the cap" (16 * t 0) (t 4);
  Alcotest.(check int) "attempt 5 stays at the cap" (t 4) (t 5);
  Alcotest.(check int) "attempt 100 stays at the cap" (t 4) (t 100);
  Alcotest.(check int) "attempt max_int stays at the cap" (t 4) (t max_int)

(* ---------------- fail-stop crash escalation ---------------- *)

let test_crash_deadness_is_time_based () =
  let since = Desim.Time.of_ns 10_000 in
  let f =
    Fabric.Faults.create ~crash:(2, since) ~seed:1 ~level:Fabric.Faults.Off ()
  in
  Alcotest.(check bool) "alive before the crash instant" false
    (Fabric.Faults.node_dead f ~node:2 ~at:(Desim.Time.of_ns 9_999));
  Alcotest.(check bool) "dead at the crash instant" true
    (Fabric.Faults.node_dead f ~node:2 ~at:since);
  Alcotest.(check bool) "dead forever after" true
    (Fabric.Faults.node_dead f ~node:2 ~at:(Desim.Time.of_ns 1_000_000));
  Alcotest.(check bool) "other nodes unaffected" false
    (Fabric.Faults.node_dead f ~node:1 ~at:(Desim.Time.of_ns 1_000_000))

let test_dead_dst_escalates_after_budget () =
  (* A send to a crashed destination is swallowed (it occupies the wire:
     the sender cannot know) and retried; after exactly
     [dead_retry_budget] retransmissions — each counted once by
     [note_retry] — the sender gives up with [Node_dead]. *)
  let faults =
    Fabric.Faults.create ~crash:(1, t0) ~seed:5 ~level:Fabric.Faults.Off ()
  in
  let _, net = mk_net ~faults () in
  let raised =
    try
      ignore
        (Fabric.Scl.reliable_transfer net ~now:t0 ~src:0 ~dst:1 ~bytes:256
         : Desim.Time.t);
      None
    with Fabric.Scl.Node_dead (n, at) -> Some (n, at)
  in
  (match raised with
   | None -> Alcotest.fail "expected Node_dead"
   | Some (n, at) ->
     Alcotest.(check int) "names the dead node" 1 n;
     (* The give-up instant is the send instant of the final attempt: the
        sum of the timeouts of attempts 0 .. budget-1, each offset by the
        per-(src,dst,attempt) backoff jitter. *)
     let expect =
       let acc = ref 0 in
       for k = 0 to Fabric.Scl.dead_retry_budget - 1 do
         acc :=
           !acc
           + Fabric.Scl.retry_timeout net ~bytes:256 ~attempt:k
           + Fabric.Faults.retry_jitter faults ~src:0 ~dst:1 ~attempt:k
       done;
       !acc
     in
     Alcotest.(check int) "give-up instant = sum of paid timeouts" expect
       (Desim.Time.to_ns at));
  Alcotest.(check int) "one note_retry per retransmission, exactly"
    Fabric.Scl.dead_retry_budget
    (Fabric.Faults.messages_retried faults);
  (* budget + 1 transmissions entered the fabric and were swallowed. *)
  Alcotest.(check int) "every transmission swallowed and counted"
    (Fabric.Scl.dead_retry_budget + 1)
    (Fabric.Faults.messages_dead faults)

let test_dead_src_sends_nothing () =
  (* A dead source cannot transmit: nothing enters the fabric (no
     dead-send counted), but the caller still pays the retry schedule
     before concluding the peer — itself — is gone. *)
  let faults =
    Fabric.Faults.create ~crash:(0, t0) ~seed:5 ~level:Fabric.Faults.Off ()
  in
  let _, net = mk_net ~faults () in
  Alcotest.check_raises "escalates" (Failure "Node_dead") (fun () ->
      try
        ignore
          (Fabric.Scl.reliable_transfer net ~now:t0 ~src:0 ~dst:1 ~bytes:64
           : Desim.Time.t)
      with Fabric.Scl.Node_dead (0, _) -> failwith "Node_dead");
  Alcotest.(check int) "nothing entered the fabric" 0
    (Fabric.Faults.messages_dead faults)

let test_delivery_before_crash_instant () =
  (* Sends completing before the crash instant behave normally. *)
  let faults =
    Fabric.Faults.create ~crash:(1, Desim.Time.of_ns 1_000_000) ~seed:5
      ~level:Fabric.Faults.Off ()
  in
  let _, net1 = mk_net ~faults () in
  let _, net2 = mk_net () in
  Alcotest.(check int) "pre-crash send is undisturbed"
    (Desim.Time.to_ns (Fabric.Network.transfer net2 ~now:t0 ~src:0 ~dst:1
                         ~bytes:1000))
    (Desim.Time.to_ns (Fabric.Scl.reliable_transfer net1 ~now:t0 ~src:0
                         ~dst:1 ~bytes:1000))

let tests =
  [ Alcotest.test_case "level_of_string" `Quick test_level_of_string;
    Alcotest.test_case "off is inert" `Quick test_off_is_inert;
    Alcotest.test_case "bounded consecutive drops" `Quick
      test_bounded_consecutive_drops;
    Alcotest.test_case "per-pair monotonic delivery" `Quick
      test_per_pair_monotonic;
    Alcotest.test_case "seed determinism" `Quick test_seed_determinism;
    Alcotest.test_case "reliable_transfer without faults" `Quick
      test_reliable_transfer_no_faults;
    Alcotest.test_case "reliable_transfer retries through drops" `Quick
      test_reliable_transfer_retries_through_drops;
    Alcotest.test_case "retry timeout backoff" `Quick
      test_retry_timeout_backoff;
    Alcotest.test_case "backoff cap boundary" `Quick
      test_backoff_cap_boundary;
    Alcotest.test_case "crash deadness is time-based" `Quick
      test_crash_deadness_is_time_based;
    Alcotest.test_case "dead dst escalates after budget" `Quick
      test_dead_dst_escalates_after_budget;
    Alcotest.test_case "dead src sends nothing" `Quick
      test_dead_src_sends_nothing;
    Alcotest.test_case "delivery before crash instant" `Quick
      test_delivery_before_crash_instant ]

let () = Alcotest.run "fabric.faults" [ ("faults", tests) ]
