(* Integration tests of the full DSM stack: System + Thread_ctx + RegC.

   These tests exercise real data movement through the simulated cluster:
   demand paging, twins/diffs, multiple-writer merging, write notices,
   fine-grained lock-grant patching, prefetching, eviction, allocation,
   condition variables and the single-node manager bypass. *)

module T = Samhita.Thread_ctx

let cfg = Samhita.Config.default
let line_bytes = Samhita.Config.line_bytes cfg

let run_threads ?config ~threads body =
  let sys = Samhita.System.create ?config ~threads () in
  for tid = 0 to threads - 1 do
    ignore (Samhita.System.spawn sys (fun t -> body sys tid t) : T.t)
  done;
  Samhita.System.run sys;
  sys

(* ---------------- basics ---------------- *)

let test_read_own_write () =
  ignore
    (run_threads ~threads:1 (fun sys _tid t ->
         ignore sys;
         let a = T.malloc t ~bytes:64 in
         T.write_f64 t a 3.25;
         T.write_i64 t (a + 8) 99L;
         Alcotest.(check (float 0.)) "f64" 3.25 (T.read_f64 t a);
         Alcotest.(check int64) "i64" 99L (T.read_i64 t (a + 8))))

let test_zero_fill () =
  ignore
    (run_threads ~threads:1 (fun _sys _tid t ->
         let a = T.malloc t ~bytes:64 in
         Alcotest.(check (float 0.)) "fresh memory is zero" 0.0
           (T.read_f64 t a)))

let test_alignment_enforced () =
  ignore
    (run_threads ~threads:1 (fun _sys _tid t ->
         let a = T.malloc t ~bytes:64 in
         Alcotest.check_raises "misaligned"
           (Invalid_argument
              "Samhita: 8-byte accesses must be 8-byte aligned") (fun () ->
             ignore (T.read_f64 t (a + 4)))))

let test_malloc_invalid () =
  ignore
    (run_threads ~threads:1 (fun _sys _tid t ->
         Alcotest.check_raises "bytes<=0"
           (Invalid_argument "Samhita.malloc: bytes must be positive")
           (fun () -> ignore (T.malloc t ~bytes:0))))

let test_unlock_without_lock () =
  ignore
    (run_threads ~threads:1 (fun sys _tid t ->
         let l = Samhita.System.mutex sys in
         Alcotest.check_raises "unlock unheld"
           (Invalid_argument "Samhita.mutex_unlock: lock not held by thread")
           (fun () -> T.mutex_unlock t l)))

let test_arena_reuse_after_free () =
  ignore
    (run_threads ~threads:1 (fun _sys _tid t ->
         let a1 = T.malloc t ~bytes:128 in
         T.free t ~addr:a1 ~bytes:128;
         let a2 = T.malloc t ~bytes:128 in
         Alcotest.(check int) "exact-size reuse" a1 a2))

let test_three_allocation_strategies () =
  ignore
    (run_threads ~threads:1 (fun sys _tid t ->
         let small = T.malloc t ~bytes:64 in
         let medium = T.malloc t ~bytes:(cfg.small_threshold * 2) in
         let large = T.malloc t ~bytes:(cfg.large_threshold * 2) in
         Alcotest.(check int) "medium 8-aligned" 0 (medium mod 8);
         Alcotest.(check int) "large stripe-aligned" 0
           (large mod Samhita.Home.stripe_bytes cfg);
         (* All three land in distinct, non-overlapping GAS regions. *)
         let mgr = Samhita.System.manager sys in
         Alcotest.(check bool) "gas covers them" true
           (Samhita.Manager_shard.gas_used mgr
            > max small (max medium large));
         (* And are usable. *)
         T.write_f64 t small 1.0;
         T.write_f64 t medium 2.0;
         T.write_f64 t large 3.0;
         Alcotest.(check (float 0.)) "small" 1.0 (T.read_f64 t small);
         Alcotest.(check (float 0.)) "medium" 2.0 (T.read_f64 t medium);
         Alcotest.(check (float 0.)) "large" 3.0 (T.read_f64 t large)))

(* ---------------- barrier propagation / multiple writers ---------------- *)

(* Each thread writes its slice of one shared line; after a barrier every
   thread must observe every other thread's bytes (home-merged diffs). *)
let test_multiple_writer_merge () =
  let threads = 4 in
  let base = ref 0 in
  let errors = ref 0 in
  let sys = Samhita.System.create ~threads () in
  let bar = Samhita.System.barrier sys ~parties:threads in
  let slice = line_bytes / threads in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then base := T.malloc t ~bytes:line_bytes;
           T.barrier_wait t bar;
           for o = 0 to (slice / 8) - 1 do
             T.write_f64 t
               (!base + (tid * slice) + (o * 8))
               (float_of_int (100 + tid))
           done;
           T.barrier_wait t bar;
           for other = 0 to threads - 1 do
             for o = 0 to (slice / 8) - 1 do
               let got = T.read_f64 t (!base + (other * slice) + (o * 8)) in
               if got <> float_of_int (100 + other) then incr errors
             done
           done)
        : T.t)
  done;
  Samhita.System.run sys;
  Alcotest.(check int) "no stale or lost bytes" 0 !errors

(* Repeated write/read rounds over the same shared line. *)
let test_barrier_rounds () =
  let threads = 3 in
  let rounds = 5 in
  let base = ref 0 in
  let errors = ref 0 in
  let sys = Samhita.System.create ~threads () in
  let bar = Samhita.System.barrier sys ~parties:threads in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then base := T.malloc t ~bytes:(threads * 8);
           T.barrier_wait t bar;
           for r = 1 to rounds do
             T.write_f64 t (!base + (tid * 8)) (float_of_int ((r * 10) + tid));
             T.barrier_wait t bar;
             for other = 0 to threads - 1 do
               let got = T.read_f64 t (!base + (other * 8)) in
               if got <> float_of_int ((r * 10) + other) then incr errors
             done;
             T.barrier_wait t bar
           done)
        : T.t)
  done;
  Samhita.System.run sys;
  Alcotest.(check int) "every round coherent" 0 !errors

(* ---------------- locks & fine-grained updates ---------------- *)

let test_lock_protected_counter () =
  let threads = 8 in
  let iters = 20 in
  let addr = ref 0 in
  let final = ref nan in
  let sys = Samhita.System.create ~threads () in
  let l = Samhita.System.mutex sys in
  let bar = Samhita.System.barrier sys ~parties:threads in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then begin
             addr := T.malloc t ~bytes:8;
             T.write_f64 t !addr 0.0
           end;
           T.barrier_wait t bar;
           for _ = 1 to iters do
             T.mutex_lock t l;
             T.write_f64 t !addr (T.read_f64 t !addr +. 1.0);
             T.mutex_unlock t l
           done;
           T.barrier_wait t bar;
           if tid = 0 then begin
             T.mutex_lock t l;
             final := T.read_f64 t !addr;
             T.mutex_unlock t l
           end)
        : T.t)
  done;
  Samhita.System.run sys;
  Alcotest.(check (float 0.)) "all increments survive"
    (float_of_int (threads * iters))
    !final

(* With zero history the acquire path must fall back to invalidation and
   still be correct. *)
let test_lock_counter_no_history () =
  let config = { cfg with update_log_history = 0 } in
  let threads = 4 in
  let addr = ref 0 in
  let final = ref nan in
  let sys = Samhita.System.create ~config ~threads () in
  let l = Samhita.System.mutex sys in
  let bar = Samhita.System.barrier sys ~parties:threads in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then addr := T.malloc t ~bytes:8;
           T.barrier_wait t bar;
           for _ = 1 to 10 do
             T.mutex_lock t l;
             T.write_f64 t !addr (T.read_f64 t !addr +. 1.0);
             T.mutex_unlock t l
           done;
           T.barrier_wait t bar;
           if tid = 0 then begin
             T.mutex_lock t l;
             final := T.read_f64 t !addr;
             T.mutex_unlock t l
           end)
        : T.t)
  done;
  Samhita.System.run sys;
  Alcotest.(check (float 0.)) "invalidate fallback correct" 40.0 !final

let test_nested_locks () =
  let threads = 2 in
  let addr = ref 0 in
  let final = ref nan in
  let sys = Samhita.System.create ~threads () in
  let outer = Samhita.System.mutex sys in
  let inner = Samhita.System.mutex sys in
  let bar = Samhita.System.barrier sys ~parties:threads in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then addr := T.malloc t ~bytes:16;
           T.barrier_wait t bar;
           for _ = 1 to 5 do
             T.mutex_lock t outer;
             T.write_f64 t !addr (T.read_f64 t !addr +. 1.0);
             T.mutex_lock t inner;
             T.write_f64 t (!addr + 8) (T.read_f64 t (!addr + 8) +. 2.0);
             T.mutex_unlock t inner;
             T.mutex_unlock t outer
           done;
           T.barrier_wait t bar;
           if tid = 0 then begin
             T.mutex_lock t outer;
             T.mutex_lock t inner;
             final := T.read_f64 t !addr +. T.read_f64 t (!addr + 8);
             T.mutex_unlock t inner;
             T.mutex_unlock t outer
           end)
        : T.t)
  done;
  Samhita.System.run sys;
  Alcotest.(check (float 0.)) "nested regions both propagate" 30.0 !final

let test_mutual_exclusion_is_real () =
  (* Under mutual exclusion, observed occupancy never exceeds one. *)
  let threads = 6 in
  let inside = ref 0 in
  let max_inside = ref 0 in
  let sys = Samhita.System.create ~threads () in
  let l = Samhita.System.mutex sys in
  for _tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           for _ = 1 to 5 do
             T.mutex_lock t l;
             incr inside;
             if !inside > !max_inside then max_inside := !inside;
             (* Hold the lock across simulated time. *)
             T.charge_flops t 10_000;
             decr inside;
             T.mutex_unlock t l
           done)
        : T.t)
  done;
  Samhita.System.run sys;
  Alcotest.(check int) "never two holders" 1 !max_inside

(* ---------------- eviction under pressure ---------------- *)

let test_tiny_cache_correctness () =
  (* A 2-line cache forces constant eviction; data must survive via
     flush-on-evict and refetch. *)
  let config = { cfg with cache_lines = 2; prefetch = false } in
  let lines = 6 in
  ignore
    (run_threads ~config ~threads:1 (fun _sys _tid t ->
         let a = T.malloc t ~bytes:(lines * line_bytes) in
         for i = 0 to lines - 1 do
           T.write_f64 t (a + (i * line_bytes)) (float_of_int i)
         done;
         for i = 0 to lines - 1 do
           Alcotest.(check (float 0.))
             (Printf.sprintf "line %d survives eviction" i)
             (float_of_int i)
             (T.read_f64 t (a + (i * line_bytes)))
         done;
         Alcotest.(check bool) "evictions happened" true
           (Samhita.Cache.evictions (T.cache t) > 0)))

let test_tiny_cache_multithreaded () =
  let config = { cfg with cache_lines = 2; prefetch = false } in
  let threads = 3 in
  let lines = 4 in
  let base = ref 0 in
  let errors = ref 0 in
  let sys = Samhita.System.create ~config ~threads () in
  let bar = Samhita.System.barrier sys ~parties:threads in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then
             base := T.malloc t ~bytes:(threads * lines * line_bytes);
           T.barrier_wait t bar;
           for i = 0 to lines - 1 do
             T.write_f64 t
               (!base + (((tid * lines) + i) * line_bytes))
               (float_of_int ((tid * 100) + i))
           done;
           T.barrier_wait t bar;
           let other = (tid + 1) mod threads in
           for i = 0 to lines - 1 do
             let got =
               T.read_f64 t (!base + (((other * lines) + i) * line_bytes))
             in
             if got <> float_of_int ((other * 100) + i) then incr errors
           done)
        : T.t)
  done;
  Samhita.System.run sys;
  Alcotest.(check int) "cross-thread reads correct under thrash" 0 !errors

(* ---------------- prefetching ---------------- *)

let test_prefetch_installs_adjacent () =
  ignore
    (run_threads ~threads:1 (fun _sys _tid t ->
         let a = T.malloc t ~bytes:(4 * line_bytes) in
         (* Sequential walk with enough compute between touches for the
            asynchronous prefetch of the adjacent line to land. *)
         for i = 0 to 3 do
           ignore (T.read_f64 t (a + (i * line_bytes)));
           T.charge_flops t 1_000_000
         done;
         let c = T.cache t in
         Alcotest.(check bool) "prefetch installs happened" true
           (Samhita.Cache.prefetch_installs c > 0);
         Alcotest.(check bool) "fewer demand misses than lines touched" true
           (Samhita.Cache.misses c < 4)))

let test_prefetch_off () =
  let config = { cfg with prefetch = false } in
  ignore
    (run_threads ~config ~threads:1 (fun _sys _tid t ->
         let a = T.malloc t ~bytes:(4 * line_bytes) in
         for i = 0 to 3 do
           ignore (T.read_f64 t (a + (i * line_bytes)))
         done;
         Alcotest.(check int) "no prefetch installs" 0
           (Samhita.Cache.prefetch_installs (T.cache t))))

(* ---------------- condition variables ---------------- *)

let test_cond_ping_pong () =
  let threads = 2 in
  let addr = ref 0 in
  let observed = ref [] in
  let sys = Samhita.System.create ~threads () in
  let l = Samhita.System.mutex sys in
  let c = Samhita.System.cond sys in
  let bar = Samhita.System.barrier sys ~parties:threads in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then begin
             addr := T.malloc t ~bytes:8;
             T.write_f64 t !addr 0.0
           end;
           T.barrier_wait t bar;
           if tid = 0 then begin
             (* Consumer: wait until the flag is set, then record it. *)
             T.mutex_lock t l;
             while T.read_f64 t !addr = 0.0 do
               T.cond_wait t c l
             done;
             observed := T.read_f64 t !addr :: !observed;
             T.mutex_unlock t l
           end
           else begin
             T.charge_flops t 100_000;
             T.mutex_lock t l;
             T.write_f64 t !addr 42.0;
             T.cond_signal t c;
             T.mutex_unlock t l
           end)
        : T.t)
  done;
  Samhita.System.run sys;
  Alcotest.(check (list (float 0.))) "consumer saw the flag" [ 42.0 ]
    !observed

let test_cond_broadcast_wakes_all () =
  let threads = 4 in
  let woken = ref 0 in
  let addr = ref 0 in
  let sys = Samhita.System.create ~threads () in
  let l = Samhita.System.mutex sys in
  let c = Samhita.System.cond sys in
  let bar = Samhita.System.barrier sys ~parties:threads in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then begin
             addr := T.malloc t ~bytes:8;
             T.write_f64 t !addr 0.0
           end;
           T.barrier_wait t bar;
           if tid > 0 then begin
             T.mutex_lock t l;
             while T.read_f64 t !addr = 0.0 do
               T.cond_wait t c l
             done;
             incr woken;
             T.mutex_unlock t l
           end
           else begin
             T.charge_flops t 1_000_000;
             T.mutex_lock t l;
             T.write_f64 t !addr 1.0;
             T.cond_broadcast t c;
             T.mutex_unlock t l
           end)
        : T.t)
  done;
  Samhita.System.run sys;
  Alcotest.(check int) "all waiters woken" 3 !woken

(* ---------------- configuration variants ---------------- *)

let shared_line_round_trip config =
  let threads = 4 in
  let base = ref 0 in
  let errors = ref 0 in
  let sys = Samhita.System.create ~config ~threads () in
  let bar = Samhita.System.barrier sys ~parties:threads in
  let slice = 2048 in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then base := T.malloc t ~bytes:(threads * slice);
           T.barrier_wait t bar;
           for o = 0 to (slice / 8) - 1 do
             T.write_f64 t (!base + (tid * slice) + (o * 8))
               (float_of_int tid)
           done;
           T.barrier_wait t bar;
           for other = 0 to threads - 1 do
             for o = 0 to (slice / 8) - 1 do
               if
                 T.read_f64 t (!base + (other * slice) + (o * 8))
                 <> float_of_int other
               then incr errors
             done
           done)
        : T.t)
  done;
  Samhita.System.run sys;
  !errors

let test_multiple_memory_servers () =
  Alcotest.(check int) "striped homes stay coherent" 0
    (shared_line_round_trip { cfg with memory_servers = 3 })

let test_single_page_lines () =
  Alcotest.(check int) "1-page lines" 0
    (shared_line_round_trip { cfg with pages_per_line = 1 })

let test_large_lines () =
  Alcotest.(check int) "8-page lines" 0
    (shared_line_round_trip { cfg with pages_per_line = 8 })

let test_manager_bypass_correct () =
  Alcotest.(check int) "bypass mode coherent" 0
    (shared_line_round_trip { cfg with manager_bypass = true })

let test_scif_profile_correct () =
  Alcotest.(check int) "scif fabric coherent" 0
    (shared_line_round_trip { cfg with fabric = Fabric.Profile.pcie_scif })

let test_manager_bypass_cheaper_sync () =
  let sync_of config =
    let sys = Samhita.System.create ~config ~threads:4 () in
    let bar = Samhita.System.barrier sys ~parties:4 in
    for _ = 1 to 4 do
      ignore
        (Samhita.System.spawn sys (fun t ->
             for _ = 1 to 10 do
               T.barrier_wait t bar
             done)
          : T.t)
    done;
    Samhita.System.run sys;
    List.fold_left
      (fun acc t -> acc + T.sync_ns t)
      0 (Samhita.System.threads sys)
  in
  Alcotest.(check bool) "bypass reduces barrier cost" true
    (sync_of { cfg with manager_bypass = true } < sync_of cfg)

(* ---------------- accounting ---------------- *)

let test_metrics_accounting () =
  let sys =
    run_threads ~threads:2 (fun sys tid t ->
        let bar_done = Samhita.System.manager sys in
        ignore bar_done;
        let a = T.malloc t ~bytes:64 in
        T.write_f64 t a 1.0;
        T.charge_flops t 1000;
        ignore tid)
  in
  List.iter
    (fun ctx ->
       let m = Samhita.Metrics.of_ctx ctx in
       Alcotest.(check bool) "compute accounted" true (m.compute_ns > 0);
       Alcotest.(check bool) "alloc accounted" true (m.alloc_ns > 0))
    (Samhita.System.threads sys);
  let agg = Samhita.Metrics.of_system sys in
  Alcotest.(check int) "thread count" 2 agg.threads;
  Alcotest.(check bool) "wall covers work" true
    (agg.wall_ns >= agg.max_compute_ns)

let test_spawn_limit () =
  let sys = Samhita.System.create ~threads:1 () in
  ignore (Samhita.System.spawn sys (fun _ -> ()) : T.t);
  Alcotest.check_raises "no more slots"
    (Invalid_argument "System.spawn: all thread slots used") (fun () ->
      ignore (Samhita.System.spawn sys (fun _ -> ()) : T.t))

let tests =
  [ Alcotest.test_case "read own write" `Quick test_read_own_write;
    Alcotest.test_case "zero fill" `Quick test_zero_fill;
    Alcotest.test_case "alignment enforced" `Quick test_alignment_enforced;
    Alcotest.test_case "malloc invalid" `Quick test_malloc_invalid;
    Alcotest.test_case "unlock without lock" `Quick test_unlock_without_lock;
    Alcotest.test_case "arena reuse" `Quick test_arena_reuse_after_free;
    Alcotest.test_case "three allocation strategies" `Quick
      test_three_allocation_strategies;
    Alcotest.test_case "multiple-writer merge" `Quick
      test_multiple_writer_merge;
    Alcotest.test_case "barrier rounds" `Quick test_barrier_rounds;
    Alcotest.test_case "lock-protected counter" `Quick
      test_lock_protected_counter;
    Alcotest.test_case "counter without history" `Quick
      test_lock_counter_no_history;
    Alcotest.test_case "nested locks" `Quick test_nested_locks;
    Alcotest.test_case "mutual exclusion" `Quick
      test_mutual_exclusion_is_real;
    Alcotest.test_case "tiny cache single thread" `Quick
      test_tiny_cache_correctness;
    Alcotest.test_case "tiny cache multithreaded" `Quick
      test_tiny_cache_multithreaded;
    Alcotest.test_case "prefetch installs" `Quick
      test_prefetch_installs_adjacent;
    Alcotest.test_case "prefetch off" `Quick test_prefetch_off;
    Alcotest.test_case "condvar ping-pong" `Quick test_cond_ping_pong;
    Alcotest.test_case "condvar broadcast" `Quick
      test_cond_broadcast_wakes_all;
    Alcotest.test_case "multiple memory servers" `Quick
      test_multiple_memory_servers;
    Alcotest.test_case "single-page lines" `Quick test_single_page_lines;
    Alcotest.test_case "large lines" `Quick test_large_lines;
    Alcotest.test_case "manager bypass correct" `Quick
      test_manager_bypass_correct;
    Alcotest.test_case "scif profile correct" `Quick
      test_scif_profile_correct;
    Alcotest.test_case "manager bypass cheaper" `Quick
      test_manager_bypass_cheaper_sync;
    Alcotest.test_case "metrics accounting" `Quick test_metrics_accounting;
    Alcotest.test_case "spawn limit" `Quick test_spawn_limit ]

let () = Alcotest.run "samhita.dsm" [ ("dsm-integration", tests) ]
