(* Statistical and structural tests for the Zipf key sampler.

   The sampler is deterministic per seed, so the chi-squared tests are
   not flaky: each checks one pinned (seed, s, n, draws) combination
   against the analytic pmf at a fixed critical value. *)

(* Upper critical values of the chi-squared distribution at alpha = 0.001
   (i.e. a correct sampler fails with probability 1/1000 per fresh seed;
   with pinned seeds, never — these seeds were observed to pass). *)
let chi2_crit_df15 = 37.70
let chi2_crit_df7 = 24.32

let chi2 ~counts ~expected =
  let c = ref 0. in
  Array.iteri
    (fun k n ->
       let e = expected.(k) in
       let d = float_of_int n -. e in
       c := !c +. (d *. d /. e))
    counts;
  !c

let draw_counts ~seed ~n ~s ~draws =
  let z = Workload.Zipf.create ~n ~s in
  let rng = Desim.Rng.create ~seed in
  let counts = Array.make n 0 in
  for _i = 1 to draws do
    let k = Workload.Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  counts

let expected_counts ~n ~s ~draws =
  let z = Workload.Zipf.create ~n ~s in
  Array.init n (fun k -> float_of_int draws *. Workload.Zipf.pmf z k)

let check_gof ~seed ~n ~s ~draws ~crit =
  let counts = draw_counts ~seed ~n ~s ~draws in
  let expected = expected_counts ~n ~s ~draws in
  let c = chi2 ~counts ~expected in
  Alcotest.(check bool)
    (Printf.sprintf "chi2 GOF s=%.2f n=%d seed=%d (got %.2f < %.2f)" s n
       seed c crit)
    true (c < crit)

let test_gof_uniform () =
  (* s = 0 must degenerate to the uniform distribution. *)
  check_gof ~seed:1 ~n:16 ~s:0.0 ~draws:16_000 ~crit:chi2_crit_df15;
  check_gof ~seed:7 ~n:8 ~s:0.0 ~draws:8_000 ~crit:chi2_crit_df7

let test_gof_skewed () =
  check_gof ~seed:2 ~n:16 ~s:0.5 ~draws:16_000 ~crit:chi2_crit_df15;
  check_gof ~seed:3 ~n:16 ~s:1.0 ~draws:16_000 ~crit:chi2_crit_df15;
  check_gof ~seed:4 ~n:16 ~s:1.5 ~draws:16_000 ~crit:chi2_crit_df15;
  check_gof ~seed:5 ~n:8 ~s:0.9 ~draws:8_000 ~crit:chi2_crit_df7

let test_gof_power () =
  (* Negative control: the same statistic must reject a wrong hypothesis,
     or the GOF tests above are vacuous. Zipf(1.5) draws tested against
     the uniform pmf concentrate ~half the mass on key 0. *)
  let counts = draw_counts ~seed:2 ~n:16 ~s:1.5 ~draws:16_000 in
  let expected = expected_counts ~n:16 ~s:0.0 ~draws:16_000 in
  let c = chi2 ~counts ~expected in
  Alcotest.(check bool)
    (Printf.sprintf "chi2 rejects wrong pmf (got %.0f)" c)
    true
    (c > 100. *. chi2_crit_df15)

let test_determinism () =
  let stream seed =
    let z = Workload.Zipf.create ~n:64 ~s:0.9 in
    let rng = Desim.Rng.create ~seed in
    List.init 1000 (fun _ -> Workload.Zipf.sample z rng)
  in
  Alcotest.(check (list int)) "same seed, same key stream" (stream 42)
    (stream 42);
  Alcotest.(check bool) "different seeds diverge" true
    (stream 42 <> stream 43)

let test_pmf_properties () =
  List.iter
    (fun s ->
       let n = 32 in
       let z = Workload.Zipf.create ~n ~s in
       let total = ref 0. in
       for k = 0 to n - 1 do
         total := !total +. Workload.Zipf.pmf z k;
         if k > 0 then
           Alcotest.(check bool)
             (Printf.sprintf "pmf non-increasing (s=%.1f k=%d)" s k)
             true
             (Workload.Zipf.pmf z k <= Workload.Zipf.pmf z (k - 1))
       done;
       Alcotest.(check bool)
         (Printf.sprintf "pmf sums to 1 (s=%.1f)" s)
         true
         (Float.abs (!total -. 1.) < 1e-9))
    [ 0.0; 0.5; 0.9; 1.5; 3.0 ];
  let u = Workload.Zipf.create ~n:10 ~s:0.0 in
  Alcotest.(check (float 0.)) "s=0 pmf exactly uniform" 0.1
    (Workload.Zipf.pmf u 3)

let test_validation () =
  Alcotest.check_raises "n = 0"
    (Invalid_argument "Zipf.create: n must be positive") (fun () ->
      ignore (Workload.Zipf.create ~n:0 ~s:1.0));
  Alcotest.check_raises "negative s"
    (Invalid_argument "Zipf.create: s must be finite and non-negative")
    (fun () -> ignore (Workload.Zipf.create ~n:4 ~s:(-1.0)));
  Alcotest.check_raises "pmf out of range"
    (Invalid_argument "Zipf.pmf: key out of range") (fun () ->
      ignore (Workload.Zipf.pmf (Workload.Zipf.create ~n:4 ~s:1.0) 4))

let prop_sample_in_range =
  QCheck.Test.make ~name:"samples always land in [0,n)" ~count:200
    QCheck.(triple (int_range 1 200) (float_range 0. 3.) small_int)
    (fun (n, s, seed) ->
       let z = Workload.Zipf.create ~n ~s in
       let rng = Desim.Rng.create ~seed in
       List.for_all
         (fun _ ->
            let k = Workload.Zipf.sample z rng in
            k >= 0 && k < n)
         (List.init 100 Fun.id))

let prop_head_dominates =
  QCheck.Test.make ~name:"more skew never makes key 0 rarer" ~count:100
    QCheck.(pair (int_range 2 100) (float_range 0. 2.))
    (fun (n, s) ->
       let a = Workload.Zipf.create ~n ~s in
       let b = Workload.Zipf.create ~n ~s:(s +. 0.5) in
       Workload.Zipf.pmf b 0 >= Workload.Zipf.pmf a 0)

let tests =
  [ Alcotest.test_case "GOF: s=0 is uniform" `Quick test_gof_uniform;
    Alcotest.test_case "GOF: skewed pmfs" `Quick test_gof_skewed;
    Alcotest.test_case "GOF power (negative control)" `Quick test_gof_power;
    Alcotest.test_case "determinism per seed" `Quick test_determinism;
    Alcotest.test_case "pmf properties" `Quick test_pmf_properties;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest prop_sample_in_range;
    QCheck_alcotest.to_alcotest prop_head_dominates ]

let () = Alcotest.run "zipf" [ ("zipf", tests) ]
