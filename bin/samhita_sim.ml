(* Command-line driver for the Samhita/RegC reproduction.

   Subcommands:
     list                 enumerate reproducible figures/ablations
     fig <id>             regenerate one figure (text table or CSV)
     micro                run the Figure-2 micro-benchmark once
     jacobi               run the Jacobi kernel once
     md                   run the molecular-dynamics kernel once
     race                 run the seeded-race kernel under RegCSan
     serve                KV serving: open-loop load sweep, tail latency

   Shared flags, converters, validators and the usage-error shape live in
   {!Cli}; `micro`, `jacobi` and `md` accept --sanitize to attach the
   RegCSan analyzer, and --shards / --migrate to shard the control plane
   and enable home-page migration. *)

open Cmdliner

let scale_t = Cli.scale_t
let backend_t = Cli.backend_t
let report_t = Cli.report_t
let threads_t = Cli.threads_t
let sanitize_t = Cli.sanitize_t
let print_sanitizer = Cli.print_sanitizer

(* ---------------- list ---------------- *)

let list_cmd =
  let run () =
    let c = Harness.Experiments.ctx Harness.Experiments.Quick in
    List.iter
      (fun (id, _) -> print_endline id)
      (Harness.Experiments.all c)
  in
  Cmd.v (Cmd.info "list" ~doc:"List reproducible figures and ablations")
    Term.(const run $ const ())

(* ---------------- fig ---------------- *)

let fig_cmd =
  let id_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Figure id (see $(b,list)).")
  in
  let csv_t =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")
  in
  let run id scale csv =
    match Harness.Experiments.by_id id with
    | None ->
      Cli.usage ~cmd:"fig" "unknown figure id %S (try `samhita_sim list`)" id
    | Some f ->
      let fig = f (Harness.Experiments.ctx scale) in
      if csv then print_string (Harness.Series.to_csv fig)
      else Harness.Series.render Format.std_formatter fig
  in
  Cmd.v
    (Cmd.info "fig" ~doc:"Regenerate one figure of the paper's evaluation")
    Term.(const run $ id_t $ scale_t $ csv_t)

(* ---------------- micro ---------------- *)

let micro_cmd =
  let alloc_t =
    let parse = function
      | "local" -> Ok Workload.Microbench.Local
      | "global" -> Ok Workload.Microbench.Global
      | "strided" -> Ok Workload.Microbench.Global_strided
      | s -> Error (`Msg (Printf.sprintf "unknown allocation mode %S" s))
    in
    let print ppf v =
      Format.pp_print_string ppf (Workload.Microbench.mode_name v)
    in
    Arg.(
      value
      & opt (conv (parse, print)) Workload.Microbench.Local
      & info [ "alloc" ] ~docv:"MODE"
          ~doc:"Allocation: $(b,local), $(b,global) or $(b,strided).")
  in
  let m_t =
    Arg.(value & opt int 10 & info [ "m" ] ~docv:"M" ~doc:"Inner iterations.")
  in
  let s_t =
    Arg.(value & opt int 2 & info [ "s" ] ~docv:"S" ~doc:"Rows per thread.")
  in
  let run backend threads alloc m s shards servers migrate report sanitize
      domains =
    let p =
      { Workload.Microbench.default_params with alloc; m_inner = m; s_rows = s }
    in
    let captured = ref None in
    let b =
      Cli.kernel_backend ~cmd:"micro" ~backend ~threads ~shards ~servers
        ~migrate ~sanitize ~domains ~captured
    in
    let r = Workload.Microbench.run b ~threads p in
    Printf.printf
      "micro %s alloc=%s P=%d M=%d S=%d\n\
      \  wall            %.3f ms\n\
      \  compute (mean)  %.3f ms   sync (mean)  %.3f ms\n\
      \  misses          %d\n\
      \  gsum            %.9g (expected %.9g) %s\n"
      (Cli.backend_name backend)
      (Workload.Microbench.mode_name alloc)
      threads m s
      (float_of_int r.wall_ns /. 1e6)
      (Workload.Microbench.mean r.compute_ns /. 1e6)
      (Workload.Microbench.mean r.sync_ns /. 1e6)
      (Array.fold_left ( + ) 0 r.misses)
      r.gsum r.expected_gsum
      (if r.gsum = r.expected_gsum then "OK" else "MISMATCH");
    match !captured with
    | Some sys ->
      (* The harness report already embeds the sanitizer section when the
         analyzer is attached, so print it standalone only without --report. *)
      if report then
        Format.printf "%a@." Harness.Report.pp (Harness.Report.of_system sys)
      else if sanitize then print_sanitizer sys
    | None ->
      if report || sanitize then
        Cli.usage ~cmd:"micro"
          "%s requires --backend smh (got --backend pth)"
          (if report then "--report" else "--sanitize")
  in
  Cmd.v
    (Cmd.info "micro" ~doc:"Run the paper's Figure-2 micro-benchmark once")
    Term.(
      const run $ backend_t $ threads_t $ alloc_t $ m_t $ s_t $ Cli.shards_t
      $ Cli.servers_t $ Cli.migrate_t $ report_t $ sanitize_t
      $ Cli.domains_t)

(* ---------------- jacobi ---------------- *)

let jacobi_cmd =
  let n_t =
    Arg.(value & opt int 256 & info [ "n" ] ~docv:"N" ~doc:"Interior size.")
  in
  let iters_t =
    Arg.(value & opt int 20 & info [ "iters" ] ~docv:"K" ~doc:"Sweeps.")
  in
  let run backend threads n iters shards servers migrate sanitize domains =
    let p = { Workload.Jacobi.default_params with n; iters } in
    let captured = ref None in
    let b =
      Cli.kernel_backend ~cmd:"jacobi" ~backend ~threads ~shards ~servers
        ~migrate ~sanitize ~domains ~captured
    in
    let r = Workload.Jacobi.run b ~threads p in
    let ref_sum, ref_res = Workload.Jacobi.reference p in
    Printf.printf
      "jacobi %s P=%d n=%d iters=%d\n\
      \  wall       %.3f ms\n\
      \  checksum   %.9g (reference %.9g) %s\n\
      \  residual   %.9g (reference %.9g)\n"
      (Cli.backend_name backend)
      threads n iters
      (float_of_int r.wall_ns /. 1e6)
      r.checksum ref_sum
      (if r.checksum = ref_sum then "OK" else "MISMATCH")
      r.residual ref_res;
    (match !captured with
     | Some sys -> if sanitize then print_sanitizer sys
     | None ->
       if sanitize then
         Cli.usage ~cmd:"jacobi"
           "--sanitize requires --backend smh (got --backend pth)")
  in
  Cmd.v
    (Cmd.info "jacobi" ~doc:"Run the Jacobi application kernel once")
    Term.(
      const run $ backend_t $ threads_t $ n_t $ iters_t $ Cli.shards_t
      $ Cli.servers_t $ Cli.migrate_t $ sanitize_t $ Cli.domains_t)

(* ---------------- md ---------------- *)

let md_cmd =
  let n_t =
    Arg.(value & opt int 192 & info [ "n" ] ~docv:"N" ~doc:"Particles.")
  in
  let steps_t =
    Arg.(value & opt int 10 & info [ "steps" ] ~docv:"K" ~doc:"Time steps.")
  in
  let run backend threads n steps shards servers migrate sanitize domains =
    let p = { Workload.Md.default_params with n; steps } in
    let captured = ref None in
    let b =
      Cli.kernel_backend ~cmd:"md" ~backend ~threads ~shards ~servers
        ~migrate ~sanitize ~domains ~captured
    in
    let r = Workload.Md.run b ~threads p in
    let ref_sum, _ = Workload.Md.reference p in
    Printf.printf
      "md %s P=%d n=%d steps=%d\n\
      \  wall          %.3f ms\n\
      \  pos checksum  %.9g (reference %.9g) %s\n"
      (Cli.backend_name backend)
      threads n steps
      (float_of_int r.wall_ns /. 1e6)
      r.pos_checksum ref_sum
      (if r.pos_checksum = ref_sum then "OK" else "MISMATCH");
    List.iteri
      (fun i (ke, pe) ->
         Printf.printf "  step %2d  kinetic %.6f  potential %.6f\n" i ke pe)
      r.energies;
    (match !captured with
     | Some sys -> if sanitize then print_sanitizer sys
     | None ->
       if sanitize then
         Cli.usage ~cmd:"md"
           "--sanitize requires --backend smh (got --backend pth)")
  in
  Cmd.v
    (Cmd.info "md" ~doc:"Run the molecular-dynamics kernel once")
    Term.(
      const run $ backend_t $ threads_t $ n_t $ steps_t $ Cli.shards_t
      $ Cli.servers_t $ Cli.migrate_t $ sanitize_t $ Cli.domains_t)

(* ---------------- serve ---------------- *)

(* BENCH.json is written whole by bench/main.exe; the serve block is
   always its last field, so appending is textual: drop an existing
   serve block (or just the closing brace) and re-emit. No JSON parser
   in the repo, and none needed. *)
let serve_json_marker = "  \"serve\": "

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let trim_end s =
  let n = ref (String.length s) in
  while
    !n > 0
    && (match s.[!n - 1] with '\n' | '\r' | ' ' | '\t' -> true | _ -> false)
  do
    decr n
  done;
  String.sub s 0 !n

let append_serve_json sweep =
  let block = Harness.Serving.to_json sweep in
  let fresh () = "{\n" ^ serve_json_marker ^ block ^ "\n}\n" in
  let content =
    if Sys.file_exists "BENCH.json" then begin
      let ic = open_in_bin "BENCH.json" in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match find_substring s serve_json_marker with
      | Some i ->
        (* Replace the existing block: what precedes it already ends
           with '{' (serve-only file) or ',' (after bench's fields). *)
        trim_end (String.sub s 0 i) ^ "\n" ^ serve_json_marker ^ block
        ^ "\n}\n"
      | None ->
        (match String.rindex_opt s '}' with
         | Some i ->
           trim_end (String.sub s 0 i) ^ ",\n" ^ serve_json_marker ^ block
           ^ "\n}\n"
         | None -> fresh ())
    end
    else fresh ()
  in
  let oc = open_out_bin "BENCH.json" in
  output_string oc content;
  close_out oc;
  Printf.printf "wrote serve block to BENCH.json\n%!"

let serve_cmd =
  let keys_t =
    Arg.(value & opt int 256 & info [ "keys" ] ~docv:"N" ~doc:"Key count.")
  in
  let shards_t =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"N"
          ~doc:"Mutex-protected key partitions ($(i,key mod shards)).")
  in
  let clients_t =
    Arg.(
      value & opt int 16
      & info [ "clients" ] ~docv:"N"
          ~doc:"Simulated clients (serial request streams).")
  in
  let requests_t =
    Arg.(
      value & opt int 2048
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per sweep point.")
  in
  let zipf_t =
    Arg.(
      value & opt float 0.9
      & info [ "zipf" ] ~docv:"S"
          ~doc:"Key-popularity skew exponent; 0 is uniform.")
  in
  let read_fraction_t =
    Arg.(
      value & opt float 0.9
      & info [ "read-fraction" ] ~docv:"F"
          ~doc:"Probability a request is a Get.")
  in
  let seed_t =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Workload seed.")
  in
  let replication_t =
    Arg.(
      value & opt int 0
      & info [ "replication" ] ~docv:"R"
          ~doc:
            "Memory-server replication factor, 0 or 1 (smh backend \
             only; 1 mirrors every write to a backup).")
  in
  let crash_t =
    Arg.(
      value & flag
      & info [ "crash" ]
          ~doc:
            "Inject a fail-stop memory-server crash mid-point and measure \
             what the lease-detected promotion costs the tail (requires \
             --replication 1).")
  in
  let load_t =
    Arg.(
      value
      & opt string "0.25,0.5,0.75,0.9,1.5"
      & info [ "load" ] ~docv:"F1,F2,..."
          ~doc:
            "Offered-load sweep, as fractions of the measured closed-loop \
             capacity; points past 1.0 are overloaded.")
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Also write the sweep as the $(b,serve) block of BENCH.json \
             in the current directory.")
  in
  let run backend threads keys shards manager_shards clients requests zipf
      read_fraction seed replication crash load json domains =
    (* Hand-validated so usage errors exit 2 (the shared contract). *)
    let usage fmt = Cli.usage ~cmd:"serve" fmt in
    Cli.check_threads ~cmd:"serve" threads;
    if keys <= 0 then usage "--keys must be positive";
    if shards <= 0 || shards > keys then
      usage "--shards must be in 1..keys";
    Cli.check_shards ~cmd:"serve" ~flag:"--manager-shards" manager_shards;
    if clients <= 0 then usage "--clients must be positive";
    if requests <= 0 then usage "--requests must be positive";
    if not (Float.is_finite zipf) || zipf < 0. then
      usage "--zipf must be non-negative";
    if not (Float.is_finite read_fraction)
       || read_fraction < 0. || read_fraction > 1.
    then usage "--read-fraction must be in [0,1]";
    if replication < 0 || replication > 1 then
      usage "--replication must be 0 or 1";
    if backend = `Pth && (replication > 0 || crash) then
      usage "--replication and --crash require --backend smh";
    Cli.check_smh_only ~cmd:"serve" ~backend
      [ ("--manager-shards", manager_shards > 1);
        ("--domains", domains <> 1) ];
    if domains < 1 then usage "--domains must be >= 1";
    if domains > 1 && crash then
      usage "--domains > 1 is incompatible with --crash";
    if crash && replication = 0 then
      usage "--crash requires --replication 1";
    let fractions =
      String.split_on_char ',' load
      |> List.map (fun s ->
          match float_of_string_opt (String.trim s) with
          | Some f when Float.is_finite f && f > 0. -> f
          | _ -> usage "--load: %S is not a positive load fraction" s)
    in
    if fractions = [] then usage "--load: empty sweep";
    let kv =
      { Workload.Kv.traffic =
          { Workload.Traffic.clients;
            requests;
            rate_rps = 1.;  (* overridden per sweep point *)
            keys;
            zipf_s = zipf;
            read_fraction;
            seed };
        shards;
        service_flops = Workload.Kv.default_params.Workload.Kv.service_flops }
    in
    let kind =
      match backend with
      | `Smh -> Harness.Serving.Smh
      | `Pth -> Harness.Serving.Pth
    in
    let sweep =
      Harness.Serving.run ~fractions ~backend:kind ~threads ~replication
        ~manager_shards ~domains ~crash kv
    in
    Format.printf "%a@?" Harness.Serving.pp sweep;
    if json then append_serve_json sweep;
    let lost =
      List.fold_left
        (fun a p -> a + p.Harness.Serving.lost_writes)
        0 sweep.Harness.Serving.points
    in
    if lost > 0 then begin
      Printf.eprintf
        "samhita_sim serve: %d acked write(s) lost (see the lost column)\n"
        lost;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Zipfian KV serving scenario: measure closed-loop capacity, then \
          sweep open-loop offered load at fractions of it, reporting \
          p50/p99/p999 tail latency per point (exit 1 if any acked write \
          was lost)")
    Term.(
      const run $ backend_t $ threads_t $ keys_t $ shards_t
      $ Cli.manager_shards_t $ clients_t $ requests_t $ zipf_t
      $ read_fraction_t $ seed_t $ replication_t $ crash_t $ load_t
      $ json_t $ Cli.domains_t)

(* ---------------- torture ---------------- *)

let torture_cmd =
  let seeds_t =
    Arg.(
      value & opt int 50
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of consecutive seeds to run.")
  in
  let base_seed_t =
    Arg.(
      value & opt int 1
      & info [ "base-seed" ] ~docv:"S" ~doc:"First seed of the range.")
  in
  let faults_t =
    Arg.(
      value
      & opt Cli.faults_conv Fabric.Faults.High
      & info [ "faults" ] ~docv:"LEVEL"
          ~doc:
            "Fabric fault-injection level: $(b,off), $(b,low), \
             $(b,medium) or $(b,high).")
  in
  let kernel_t =
    let parse s =
      match Torture.Runner.kernel_of_string s with
      | Ok v -> Ok v
      | Error e -> Error (`Msg e)
    in
    let print ppf v =
      Format.pp_print_string ppf (Torture.Runner.kernel_name v)
    in
    Arg.(
      value
      & opt (conv (parse, print)) Torture.Runner.Micro
      & info [ "kernel" ] ~docv:"K"
          ~doc:
            "Workload to torture: $(b,micro), $(b,jacobi), $(b,kv) or \
             $(b,racy).")
  in
  let replay_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "replay" ] ~docv:"SEED"
          ~doc:
            "Replay one seed verbosely (violations and oracle trace tail) \
             instead of sweeping; exits 1 if it has violations.")
  in
  let crash_t =
    Arg.(
      value & flag
      & info [ "crash" ]
          ~doc:
            "Crash mode: each seed additionally derives a replicated \
             geometry (primary-backup memory servers, short leases) and a \
             fail-stop crash of one seed-chosen memory server at a \
             seed-chosen instant; the oracle also checks post-recovery \
             invariants (no stale promotion, no lost acked write).")
  in
  let crash_shard_t =
    Arg.(
      value & flag
      & info [ "crash-shard" ]
          ~doc:
            "Shard-crash mode: each seed additionally derives a sharded \
             control plane (2..4 manager shards) and a fail-stop crash of \
             one seed-chosen non-zero shard at a seed-chosen instant; the \
             surviving ring successor absorbs the dead shard's locks, \
             barriers and condvars and the oracle's invariants (checksums \
             vs the sequential reference, session guarantees, determinism \
             replay) must still hold across the takeover.")
  in
  let partition_t =
    Arg.(
      value & flag
      & info [ "partition" ]
          ~doc:
            "Gray-failure mode: each seed derives a replicated geometry \
             and a network partition (not a crash) of one seed-chosen \
             memory server over a seed-chosen window, long enough that \
             its lease falsely expires while it keeps executing; the \
             oracle also checks the epoch-fencing invariants (no \
             split-brain through the zombie primary, no lost acked write \
             across the false suspicion, post-heal rejoin convergence).")
  in
  let run seeds base_seed level kernel replay crash crash_shard partition
      domains =
    (* Torture needs probes, shuffle and fault injection — all sequential
       machinery; the flag exists so sweep scripts can pass --domains
       uniformly, but only 1 is accepted. *)
    if domains <> 1 then
      Cli.usage ~cmd:"torture"
        "--domains must be 1 (the torture oracle and schedule fuzzing \
         need the sequential engine)";
    if (crash && crash_shard) || (crash && partition)
       || (crash_shard && partition)
    then
      Cli.usage ~cmd:"torture"
        "--crash, --crash-shard and --partition are mutually exclusive \
         (single-failure model)";
    if crash_shard && kernel = Torture.Runner.Racy then
      Cli.usage ~cmd:"torture"
        "--crash-shard supports --kernel micro, jacobi or kv (racy pins \
         per-class defect counts that a takeover would perturb)";
    if partition && kernel = Torture.Runner.Racy then
      Cli.usage ~cmd:"torture"
        "--partition supports --kernel micro, jacobi or kv (racy pins \
         per-class defect counts that a false suspicion would perturb)";
    let flags_repro =
      (if crash then " --crash" else "")
      ^ (if crash_shard then " --crash-shard" else "")
      ^ if partition then " --partition" else ""
    in
    match replay with
    | Some seed ->
      let o =
        Torture.Runner.run_one ~crash ~crash_shard ~partition ~kernel
          ~level ~seed ()
      in
      Format.printf "%a@." Torture.Runner.pp_outcome o;
      if o.Torture.Runner.o_violations <> [] then begin
        Printf.eprintf
          "samhita_sim torture: replay of --kernel %s --faults %s%s --replay \
           %d found violations\n"
          (Torture.Runner.kernel_name kernel)
          (Fabric.Faults.level_name level)
          flags_repro seed;
        exit 1
      end
    | None ->
      let s =
        Torture.Runner.run ~crash ~crash_shard ~partition ~kernel ~level
          ~seeds ~base_seed ()
      in
      Format.printf "%a@." Torture.Runner.pp_summary s;
      if s.Torture.Runner.s_failures <> [] then begin
        List.iter
          (fun o -> Format.printf "%a@." Torture.Runner.pp_outcome o)
          s.Torture.Runner.s_failures;
        Format.printf
          "reproduce any failing seed with: samhita_sim torture --kernel \
           %s --faults %s%s --replay <seed>@."
          (Torture.Runner.kernel_name kernel)
          (Fabric.Faults.level_name level)
          flags_repro;
        Printf.eprintf
          "samhita_sim torture: --kernel %s --faults %s%s: %d of %d seed(s) \
           failed\n"
          (Torture.Runner.kernel_name kernel)
          (Fabric.Faults.level_name level)
          flags_repro
          (List.length s.Torture.Runner.s_failures)
          seeds;
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:
         "Deterministic fault-injection + schedule-fuzzing torture harness: \
          each seed derives a system geometry, a same-instant event \
          shuffle and a fabric fault policy, runs a kernel under the \
          linearizable-memory oracle, checks the result against the \
          sequential reference, and replays the seed to prove \
          bit-for-bit determinism")
    Term.(
      const run $ seeds_t $ base_seed_t $ faults_t $ kernel_t $ replay_t
      $ crash_t $ crash_shard_t $ partition_t $ Cli.domains_t)

(* ---------------- race ---------------- *)

let race_cmd =
  let run () =
    let sys = Workload.Racy.run () in
    print_sanitizer sys;
    (* Defect-detection commands share one exit-code contract: 1 when the
       tool found what it hunts for, 2 on usage errors, 0 clean. *)
    match Samhita.System.sanitizer sys with
    | Some s when Analysis.Regcsan.findings_count s > 0 -> exit 1
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "race"
       ~doc:
         "Run the deliberately racy two-thread kernel under RegCSan; it \
          must report exactly one finding per seeded defect class and \
          exit 1")
    Term.(const run $ const ())

(* ---------------- check ---------------- *)

let check_cmd =
  let kernel_t =
    (* Parsed by hand in [run] so an unknown kernel exits 2 (the usage
       exit of the shared contract) rather than cmdliner's 124. *)
    Arg.(
      value
      & opt string (Check.Kernels.name Check.Kernels.Racy)
      & info [ "kernel" ] ~docv:"K"
          ~doc:
            "Bounded kernel to exhaust: $(b,racy) (seeded race), \
             $(b,micro) (clean global-sum), $(b,abba) \
             (schedule-dependent lock-order deadlock), or $(b,gray) \
             (explicit-state model of epoch-fenced recovery: every \
             interleaving of client writes with false suspicion, heal \
             and rejoin, plus a fence-disabled negative control).")
  in
  let threads_t =
    Arg.(
      value & opt int 2
      & info [ "t"; "threads" ] ~docv:"N"
          ~doc:"Compute threads (small scope: 2 or 3).")
  in
  let pages_t =
    Arg.(
      value & opt int 1
      & info [ "pages" ] ~docv:"N" ~doc:"Data pages (small scope: 1 or 2).")
  in
  let crash_t =
    Arg.(
      value & flag
      & info [ "crash" ]
          ~doc:
            "Explore with a replicated geometry and one injected \
             fail-stop memory-server crash.")
  in
  let max_t =
    Arg.(
      value & opt int 10_000
      & info [ "max-schedules" ] ~docv:"N"
          ~doc:"Exploration budget (runs + prunes) before truncating.")
  in
  let naive_t =
    Arg.(
      value & flag
      & info [ "naive" ]
          ~doc:
            "Disable partial-order reduction and enumerate the full \
             choice tree.")
  in
  let quantum_t =
    Arg.(
      value
      & opt int Check.Checker.default_opts.Check.Checker.quantum
      & info [ "quantum" ] ~docv:"NS"
          ~doc:
            "Scheduling quantum: future event instants round up to this \
             grid (ns) so contended operations staggered only by port \
             serialization become explicit same-instant choices.")
  in
  let compare_t =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:
            "Run naive enumeration and DPOR back to back and print the \
             schedule-count reduction factor.")
  in
  let replay_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"SCHEDULE"
          ~doc:
            "Re-execute one counterexample schedule (dot-separated \
             choices as printed by an exploration) instead of exploring.")
  in
  let run kernel threads pages crash max_schedules naive quantum compare
      replay =
    (* The gray kernel is a self-contained explicit-state model (no
       simulator underneath), dispatched before the simulator-backed
       kernel registry. *)
    if kernel = "gray" then begin
      if crash then
        Cli.usage ~cmd:"check"
          "--kernel gray models a partition, not a crash (--crash is for \
           the simulator-backed kernels)";
      if replay <> None then
        Cli.usage ~cmd:"check" "--kernel gray does not support --replay";
      let writes = 2 in
      let defects = ref 0 in
      List.iter
        (fun scope ->
           let r = Check.Gray.explore ~scope ~writes () in
           Format.printf "%a@." Check.Gray.pp_result r;
           defects := !defects + List.length r.Check.Gray.g_defects)
        [ Check.Gray.Isolate; Check.Gray.Control ];
      (* Negative control: the same exploration with the epoch fence
         disabled must find split-brain counterexamples, or the
         invariant checks are vacuous. *)
      let neg =
        Check.Gray.explore ~fence:false ~scope:Check.Gray.Control ~writes ()
      in
      Format.printf "%a@." Check.Gray.pp_result neg;
      if neg.Check.Gray.g_defects = [] then begin
        Printf.eprintf
          "samhita_sim check: gray negative control (fence disabled) found \
           no violations — the invariant checks are vacuous\n";
        exit 1
      end;
      Format.printf
        "gray: fence holds over every interleaving; %d violation(s) \
         without it@."
        (List.length neg.Check.Gray.g_defects);
      if !defects > 0 then exit 1 else exit 0
    end;
    let kernel =
      match Check.Kernels.of_name kernel with
      | Ok k -> k
      | Error e -> Cli.usage ~cmd:"check" "%s" e
    in
    if threads < 2 || threads > 3 then
      Cli.usage ~cmd:"check" "--threads must be 2 or 3";
    if pages < 1 || pages > 2 then
      Cli.usage ~cmd:"check" "--pages must be 1 or 2";
    if quantum < 0 then Cli.usage ~cmd:"check" "--quantum must be >= 0";
    let opts =
      { Check.Checker.kernel;
        threads;
        pages;
        crash;
        dpor = not naive;
        max_schedules;
        quantum }
    in
    match replay with
    | Some sched_str -> begin
        match Check.Schedule.of_string sched_str with
        | Error e -> Cli.usage ~cmd:"check" "%s" e
        | Ok sched -> begin
            match Check.Checker.replay opts sched with
            | rp ->
              Format.printf "%a@." Check.Checker.pp_replay rp;
              if rp.Check.Checker.rp_defects <> [] then exit 1
            | exception Check.Checker.Bad_schedule msg ->
              Cli.usage ~cmd:"check" "%s" msg
          end
      end
    | None ->
      if compare then begin
        let naive_r =
          Check.Checker.explore { opts with Check.Checker.dpor = false }
        in
        let dpor_r =
          Check.Checker.explore { opts with Check.Checker.dpor = true }
        in
        Format.printf "%a@.%a@." Check.Checker.pp_result naive_r
          Check.Checker.pp_result dpor_r;
        let nn = naive_r.Check.Checker.r_schedules
        and nd = dpor_r.Check.Checker.r_schedules in
        Format.printf "reduction: naive %d vs dpor %d schedules (%.2fx)@."
          nn nd
          (if nd > 0 then float_of_int nn /. float_of_int nd else nan);
        if dpor_r.Check.Checker.r_defects <> [] then exit 1
      end
      else begin
        let r = Check.Checker.explore opts in
        Format.printf "%a@." Check.Checker.pp_result r;
        if r.Check.Checker.r_defects <> [] then exit 1
      end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "RegCCheck: exhaustively model-check a bounded kernel over every \
          same-instant scheduling choice (with dynamic partial-order \
          reduction), checking RegCSan findings, torture-oracle \
          invariants, kernel checksums and deadlock at every terminal \
          state; exits 1 with a replayable counterexample schedule when a \
          defect is found")
    Term.(
      const run $ kernel_t $ threads_t $ pages_t $ crash_t $ max_t $ naive_t
      $ quantum_t $ compare_t $ replay_t)

let () =
  let doc = "Samhita virtual-shared-memory reproduction driver" in
  let info = Cmd.info "samhita_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; fig_cmd; micro_cmd; jacobi_cmd; md_cmd; race_cmd;
            serve_cmd; torture_cmd; check_cmd ]))
