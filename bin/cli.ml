(* Shared command-line vocabulary for the samhita_sim driver.

   Every subcommand draws its converters, common flags and usage-error
   reporting from here, so two contracts are declared exactly once:

   - the exit-code contract (0 clean, 1 the tool found what it hunts
     for, 2 usage error), pinned by test/exit_codes.sh;
   - the usage-error shape: "samhita_sim <cmd>: message" on stderr, so a
     scripted consumer always learns which subcommand and flag it got
     wrong before the exit-2.

   Flags that several subcommands share (backend, threads, control-plane
   shards, sanitizer, ...) are defined here as cmdliner terms; the
   validators re-check semantic bounds that cmdliner's converters cannot
   express (threads against the config's max_threads field, shard counts,
   backend/flag compatibility). *)

open Cmdliner

(* ---------------- usage errors ---------------- *)

let usage ~cmd fmt =
  Printf.ksprintf
    (fun m ->
       Printf.eprintf "samhita_sim %s: %s\n" cmd m;
       exit 2)
    fmt

(* ---------------- converters ---------------- *)

let scale_conv =
  let parse s =
    match Harness.Experiments.scale_of_string s with
    | Ok v -> Ok v
    | Error e -> Error (`Msg e)
  in
  let print ppf = function
    | Harness.Experiments.Quick -> Format.fprintf ppf "quick"
    | Harness.Experiments.Paper -> Format.fprintf ppf "paper"
  in
  Arg.conv (parse, print)

type backend = [ `Smh | `Pth ]

let backend_name = function `Smh -> "samhita" | `Pth -> "pthreads"

let backend_conv =
  let parse = function
    | "smh" | "samhita" -> Ok `Smh
    | "pth" | "pthreads" -> Ok `Pth
    | s -> Error (`Msg (Printf.sprintf "unknown backend %S" s))
  in
  let print ppf v =
    Format.pp_print_string ppf (match v with `Smh -> "smh" | `Pth -> "pth")
  in
  Arg.conv (parse, print)

let faults_conv =
  let parse s =
    match Fabric.Faults.level_of_string s with
    | Ok v -> Ok v
    | Error e -> Error (`Msg e)
  in
  let print ppf v = Format.pp_print_string ppf (Fabric.Faults.level_name v) in
  Arg.conv (parse, print)

(* ---------------- shared terms ---------------- *)

let scale_t =
  Arg.(
    value
    & opt scale_conv Harness.Experiments.Paper
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Sweep size: $(b,quick) or $(b,paper).")

let backend_t =
  Arg.(
    value
    & opt backend_conv `Smh
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:"Runtime: $(b,smh) (Samhita DSM) or $(b,pth) (SMP baseline).")

let threads_t =
  Arg.(
    value & opt int 8
    & info [ "t"; "threads" ] ~docv:"N" ~doc:"Compute thread count.")

let report_t =
  Arg.(
    value & flag
    & info [ "report" ]
        ~doc:
          "After the run, print a system report (fabric traffic, server \
           and manager utilization, cache behaviour). Samhita backend \
           only.")

let sanitize_t =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Attach the RegCSan access-stream analyzer and print its \
           findings after the run: data races, RegC publication \
           violations, mixed region/ordinary writes, invalid reads, lock \
           misuse. Samhita backend only.")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Workload seed.")

(* Control-plane geometry: the kernels call the manager-shard count
   --shards; serve already uses --shards for its KV key partitions, so
   there the same knob is spelled --manager-shards. *)

let shards_t =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Manager (control-plane) shards: sync objects are \
           consistent-hashed across $(docv) shard processes; allocation \
           stays on shard 0. Samhita backend only.")

let manager_shards_t =
  Arg.(
    value & opt int 1
    & info [ "manager-shards" ] ~docv:"N"
        ~doc:
          "Manager (control-plane) shards: sync objects are \
           consistent-hashed across $(docv) shard processes; allocation \
           stays on shard 0. Samhita backend only.")

let servers_t =
  Arg.(
    value
    & opt int Samhita.Config.default.Samhita.Config.memory_servers
    & info [ "servers" ] ~docv:"N"
        ~doc:
          "Memory servers the global address space is striped across. \
           Samhita backend only.")

let domains_t =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "ParDES: run the simulation engine on $(docv) OCaml domains \
           (default 1, the sequential engine). Simulated results are \
           deterministic and equal to the 1-domain run; only host \
           wall-clock changes. Samhita backend only; incompatible with \
           --sanitize, --migrate and fault/crash injection.")

let migrate_t =
  Arg.(
    value & flag
    & info [ "migrate" ]
        ~doc:
          "Enable home-page migration: each shard periodically re-homes \
           its hottest write-shared line next to the dominant writer \
           (decisions are a pure function of the seed). Samhita backend \
           only.")

(* ---------------- validators ---------------- *)

(* The thread cap is a config field, not a compile-time constant; errors
   name the violated bound so the fix (raise max_threads) is evident. *)
let check_threads ~cmd ?(config = Samhita.Config.default) threads =
  if threads <= 0 then usage ~cmd "--threads must be positive";
  if threads > config.Samhita.Config.max_threads then
    usage ~cmd
      "--threads %d exceeds the config's max_threads = %d (raise the \
       max_threads field to run larger systems)"
      threads config.Samhita.Config.max_threads

let check_shards ~cmd ~flag shards =
  if shards < 1 then usage ~cmd "%s must be >= 1" flag

(* The DSM-only flags, rejected with context when the SMP baseline was
   selected. *)
let check_smh_only ~cmd ~backend flags =
  match backend with
  | `Smh -> ()
  | `Pth ->
    List.iter
      (fun (flag, set) ->
         if set then
           usage ~cmd "%s requires --backend smh (got --backend pth)" flag)
      flags

(* ---------------- backend construction ---------------- *)

(* Kernel config for the smh backend: Config.default with only the
   flag-selected fields overridden, so a run with every new flag at its
   default is byte-identical to the pre-sharding driver. *)
let kernel_config ~cmd ~threads ~shards ~servers ~migrate ~sanitize
    ~domains =
  check_shards ~cmd ~flag:"--shards" shards;
  if servers < 1 then usage ~cmd "--servers must be >= 1";
  if domains < 1 then usage ~cmd "--domains must be >= 1";
  let config =
    { Samhita.Config.default with
      Samhita.Config.sanitize;
      memory_servers = servers;
      manager_shards = shards;
      home_migration = migrate;
      domains }
  in
  check_threads ~cmd ~config threads;
  (* Surface Config.validate's ParDES-exclusion messages as usage errors
     (exit 2) instead of a System.create exception. *)
  (match Samhita.Config.validate config with
   | Ok () -> ()
   | Error msg -> usage ~cmd "%s" msg);
  config

(* The smh backend for a kernel run, capturing the concrete system so
   report/sanitizer sections can be read back after the run. *)
let smh_backend ~config ~captured =
  Workload.Samhita_backend.make ~config
    ~on_create:(fun sys -> captured := Some sys)
    ()

let kernel_backend ~cmd ~backend ~threads ~shards ~servers ~migrate
    ~sanitize ~domains ~captured =
  match backend with
  | `Smh ->
    let config =
      kernel_config ~cmd ~threads ~shards ~servers ~migrate ~sanitize
        ~domains
    in
    smh_backend ~config ~captured
  | `Pth ->
    check_smh_only ~cmd ~backend
      [ ("--shards", shards > 1);
        ("--servers", servers <> Samhita.Config.default.Samhita.Config.memory_servers);
        ("--migrate", migrate);
        ("--domains", domains <> 1) ];
    check_threads ~cmd threads;
    Workload.Smp_backend.default

let print_sanitizer sys =
  match Samhita.System.sanitizer sys with
  | None -> ()
  | Some s -> Format.printf "%a@." Analysis.Regcsan.pp_report s
