(** Wait-for analysis of a stalled branch.

    When a controlled run raises {!Desim.Engine.Stalled}, the system is
    frozen mid-deadlock: the manager still knows who holds and who queues
    on every lock, barrier and condition variable. This module rebuilds
    the thread wait-for graph from that state ({!Samhita.Manager}'s
    blocking-state introspection) and extracts the lock cycle if one
    exists — the classic ABBA diagnosis — plus any barrier or condvar
    parking that explains a cycle-free stall. *)

type edge = { waiter : int; holder : int; lock : Samhita.Manager_shard.lock_id }

type t = {
  edges : edge list;  (** All lock wait-for edges. *)
  cycle : edge list option;  (** A cycle, if the lock graph has one. *)
  barriers : (Samhita.Manager_shard.barrier_id * int list * int) list;
      (** Incomplete episodes: (barrier, parked threads, parties). *)
  conds : (Samhita.Manager_shard.cond_id * int list) list;
      (** Condvars with parked threads. *)
}

val analyze : Samhita.System.t -> t

val pp : Format.formatter -> t -> unit
