(** A schedule: the choice made at each scheduling choice point, in order.

    A choice point is an instant where two or more simulation events are
    enabled (see {!Desim.Heap.tie_seqs}); the choice is an index into the
    candidate list sorted by heap sequence number, which is deterministic
    across re-executions of the same prefix. The empty schedule (every
    point takes candidate 0) prints as ["-"]. *)

type t = int list

val to_string : t -> string
(** Dot-separated indices, e.g. ["0.2.1"]; ["-"] for the empty schedule. *)

val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit
