(** What a scheduling interval touched: the dependence alphabet of
    RegCCheck's partial-order reduction.

    A {e scheduling interval} is everything the simulator executes between
    two consecutive choice points. Its footprint records global-memory
    words read and written (by 8-byte word index), synchronization objects
    and serially-reusable facilities touched (by name — reservation order
    on a {!Desim.Resource} decides completion times, so two intervals
    queueing on one facility are dependent), and the compute threads that
    acted. Two intervals {e conflict} when some word is written by one and
    touched by the other, or when their sync/facility sets intersect; only
    conflicting intervals can justify exploring a reordering. *)

type t

val create : unit -> t

val universal : unit -> t
(** A footprint that conflicts with everything (conservative fallback,
    e.g. for crash-injection intervals). *)

val add_read : t -> thread:int -> addr:int -> len:int -> unit
val add_write : t -> thread:int -> addr:int -> len:int -> unit

val add_sync : t -> thread:int -> string -> unit
(** A synchronization object, e.g. ["lock:3"]; treated as read-write. *)

val add_resource : t -> string -> unit
(** A facility reservation (no thread attribution — reservations fire in
    manager/network thunks too). *)

val add_thread : t -> int -> unit
val set_global : t -> unit

val conflict : t -> t -> bool

val sync_conflict : t -> t -> bool
(** Conflict through sync objects, facilities, or a global footprint —
    i.e. a dependence the vector-clock happens-before oracle does not
    cover (clocks order only thread-attributed memory accesses). *)

val threads : t -> int list
(** Threads that executed in the interval, ascending. *)

val pp : Format.formatter -> t -> unit
