type edge = { waiter : int; holder : int; lock : Samhita.Manager_shard.lock_id }

type t = {
  edges : edge list;
  cycle : edge list option;
  barriers : (Samhita.Manager_shard.barrier_id * int list * int) list;
  conds : (Samhita.Manager_shard.cond_id * int list) list;
}

(* Lock wait-for edges: thread [w] queued on lock [l] waits for the
   current holder. Lease waiters and cond/barrier parking produce no lock
   edge — they are reported separately so a stall with no lock cycle still
   explains itself. *)
let edges_of mgr =
  List.concat_map
    (fun lock ->
       match Samhita.Manager_shard.lock_holder mgr lock with
       | None -> []
       | Some holder ->
         List.map
           (fun waiter -> { waiter; holder; lock })
           (Samhita.Manager_shard.lock_waiters mgr lock))
    (Samhita.Manager_shard.lock_ids mgr)

(* Find a cycle in the waiter -> holder graph. DFS with a path stack; the
   graph is tiny (<= threads nodes), so no need for anything clever.
   Returns the cycle's edges in traversal order. *)
let find_cycle edges =
  let succ v = List.filter (fun e -> e.waiter = v) edges in
  let rec dfs path v =
    match List.find_opt (fun e -> e.waiter = v) path with
    | Some _ ->
      (* [v] already on the path: the cycle is the suffix from its first
         occurrence. [path] is newest-first. *)
      let rec take acc = function
        | [] -> acc
        | e :: rest ->
          if e.waiter = v then e :: acc else take (e :: acc) rest
      in
      Some (take [] path)
    | None ->
      List.find_map (fun e -> dfs (e :: path) e.holder) (succ v)
  in
  List.find_map (fun e -> dfs [] e.waiter) edges

let analyze sys =
  let mgr = Samhita.System.manager sys in
  let edges = edges_of mgr in
  let barriers =
    List.filter_map
      (fun b ->
         match Samhita.Manager_shard.barrier_blocked mgr b with
         | [] -> None
         | blocked -> Some (b, blocked, Samhita.Manager_shard.barrier_parties mgr b))
      (Samhita.Manager_shard.barrier_ids mgr)
  in
  let conds =
    List.filter_map
      (fun c ->
         match Samhita.Manager_shard.cond_blocked mgr c with
         | [] -> None
         | blocked -> Some (c, blocked))
      (Samhita.Manager_shard.cond_ids mgr)
  in
  { edges; cycle = find_cycle edges; barriers; conds }

let pp_cycle ppf cycle =
  List.iter
    (fun e ->
       Format.fprintf ppf "t%d --lock %d--> t%d " e.waiter e.lock e.holder)
    cycle;
  match cycle with
  | [] -> ()
  | first :: _ -> Format.fprintf ppf "(back to t%d)" first.waiter

let pp ppf t =
  (match t.cycle with
   | Some cycle -> Format.fprintf ppf "@[wait-for cycle: %a@]" pp_cycle cycle
   | None ->
     Format.fprintf ppf "no lock cycle";
     List.iter
       (fun e ->
          Format.fprintf ppf "@,  t%d waits on lock %d held by t%d" e.waiter
            e.lock e.holder)
       t.edges);
  List.iter
    (fun (b, blocked, parties) ->
       Format.fprintf ppf "@,  barrier %d: %d/%d arrived (%s parked)" b
         (List.length blocked) parties
         (String.concat "," (List.map (Printf.sprintf "t%d") blocked)))
    t.barriers;
  List.iter
    (fun (c, blocked) ->
       Format.fprintf ppf "@,  cond %d: %s parked" c
         (String.concat "," (List.map (Printf.sprintf "t%d") blocked)))
    t.conds
