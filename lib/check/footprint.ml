module ISet = Set.Make (Int)
module SSet = Set.Make (String)

type t = {
  mutable rd : ISet.t;
  mutable wr : ISet.t;
  mutable sync : SSet.t;
  mutable threads : ISet.t;
  mutable global : bool;
}

let create () =
  { rd = ISet.empty;
    wr = ISet.empty;
    sync = SSet.empty;
    threads = ISet.empty;
    global = false }

let universal () =
  let fp = create () in
  fp.global <- true;
  fp

let words addr len =
  let first = addr asr 3 and last = (addr + len - 1) asr 3 in
  let rec go w acc = if w > last then acc else go (w + 1) (w :: acc) in
  go first []

let add_read fp ~thread ~addr ~len =
  fp.threads <- ISet.add thread fp.threads;
  List.iter (fun w -> fp.rd <- ISet.add w fp.rd) (words addr len)

let add_write fp ~thread ~addr ~len =
  fp.threads <- ISet.add thread fp.threads;
  List.iter (fun w -> fp.wr <- ISet.add w fp.wr) (words addr len)

let add_sync fp ~thread name =
  fp.threads <- ISet.add thread fp.threads;
  fp.sync <- SSet.add name fp.sync

let add_resource fp name = fp.sync <- SSet.add name fp.sync
let add_thread fp thread = fp.threads <- ISet.add thread fp.threads
let set_global fp = fp.global <- true

let word_conflict a b =
  (not (ISet.disjoint a.wr b.wr))
  || (not (ISet.disjoint a.wr b.rd))
  || not (ISet.disjoint a.rd b.wr)

let sync_conflict a b = a.global || b.global || not (SSet.disjoint a.sync b.sync)
let conflict a b = sync_conflict a b || word_conflict a b
let threads fp = ISet.elements fp.threads

let pp ppf fp =
  let ints s = String.concat "," (List.map string_of_int (ISet.elements s)) in
  Format.fprintf ppf "{rd=%s wr=%s sync=%s%s}" (ints fp.rd) (ints fp.wr)
    (String.concat "," (SSet.elements fp.sync))
    (if fp.global then " global" else "")
