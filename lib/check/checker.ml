exception Pruned
exception Bad_schedule of string

type opts = {
  kernel : Kernels.t;
  threads : int;
  pages : int;
  crash : bool;
  dpor : bool;
  max_schedules : int;
  quantum : int;
}

let default_opts =
  { kernel = Kernels.Racy;
    threads = 2;
    pages = 1;
    crash = false;
    dpor = true;
    max_schedules = 10_000;
    quantum = 256 }

(* Crash-mode runs cannot rely on queue drain for stall detection: the
   lease monitor re-arms itself every interval while any thread is
   unfinished, so a deadlocked run keeps the queue non-empty forever.
   Bound the run instead and call unfinished-at-horizon a stall. *)
let crash_horizon = Desim.Time.of_ns 5_000_000

let config_for opts =
  (* One thread per node: symmetric fabric paths make concurrent requests
     reach the manager and the servers at identical instants, turning the
     racing orders into explicit same-instant choice points instead of
     accidents of shared-port FCFS serialization. *)
  let base =
    { Samhita.Config.default with
      Samhita.Config.sanitize = true;
      threads_per_node = 1 }
  in
  if not opts.crash then base
  else
    { base with
      Samhita.Config.memory_servers = 2;
      replication = 1;
      lease_interval = Desim.Time.ns 20_000;
      crash_server = Some (0, 30_000) }

(* ------------------------------------------------------------------ *)
(* One controlled execution *)

type point = {
  p_time : int;
  p_seqs : int array;  (* candidates, sorted by heap seq *)
  p_chosen : int;  (* index into p_seqs *)
  p_sleep0 : (int * Footprint.t) list;  (* sleep set on arrival *)
}

type exec = {
  e_points : point array;
  e_fps : Footprint.t array;  (* fp of the interval opened by point i *)
  e_clocks : Analysis.Vclock.t array array;
      (* length npoints+1; [i] = per-thread clocks when point i was
         reached, [npoints] = at end of run. *)
  e_defects : (string * string) list;  (* (class, message) *)
  e_deadlock : Deadlock.t option;
  e_digest : int;
}

let schedule_of exec =
  Array.to_list (Array.map (fun p -> p.p_chosen) exec.e_points)

let index_of x a =
  let n = Array.length a in
  let rec go i = if i >= n then None else if a.(i) = x then Some i else go (i + 1) in
  go 0

(* Execute the kernel once: follow [prefix], then take the first
   non-sleeping candidate at every further choice point. [branch_sleep]
   is installed on arrival at the last prefix point — the sleep set the
   DFS accumulated from that point's already-explored siblings. *)
let run_once opts ~prefix ~branch_sleep =
  let config = config_for opts in
  let oracle = Torture.Oracle.create ~config () in
  let sys = Samhita.System.create ~config ~threads:opts.threads () in
  let engine = Samhita.System.engine sys in
  (* Coarsen the clock so events staggered only by port-serialization
     deltas tie — those orders, who reaches the manager first, are the
     schedules worth exploring. *)
  Desim.Engine.set_quantum engine opts.quantum;
  let pre_fp = Footprint.create () in
  let cur = ref pre_fp in
  let points = ref [] and ifps = ref [] and clocks = ref [] in
  let sleep = ref (if prefix = [] then branch_sleep else []) in
  let depth = ref 0 in
  let prefix_arr = Array.of_list prefix in
  let nprefix = Array.length prefix_arr in
  let snapshot () =
    match Samhita.System.sanitizer sys with
    | Some san ->
      Array.init opts.threads (fun t ->
          Analysis.Regcsan.thread_clock san ~thread:t)
    | None -> [||]
  in
  let chooser ~time ~seqs =
    let d = !depth in
    (* The just-closed interval wakes any sleeping event it depends on. *)
    if d > 0 then begin
      let prev = !cur in
      sleep :=
        List.filter (fun (_, ufp) -> not (Footprint.conflict ufp prev)) !sleep
    end;
    if d = nprefix - 1 then sleep := branch_sleep;
    clocks := snapshot () :: !clocks;
    let k =
      if d < nprefix then begin
        let k = prefix_arr.(d) in
        if k < 0 || k >= Array.length seqs then
          raise
            (Bad_schedule
               (Printf.sprintf
                  "choice %d out of range at point %d (%d candidates)" k d
                  (Array.length seqs)));
        k
      end
      else begin
        let n = Array.length seqs in
        let asleep s = List.exists (fun (u, _) -> u = s) !sleep in
        let rec find i =
          if i >= n then raise Pruned
          else if asleep seqs.(i) then find (i + 1)
          else i
        in
        find 0
      end
    in
    points :=
      { p_time = time;
        p_seqs = Array.copy seqs;
        p_chosen = k;
        p_sleep0 = !sleep }
      :: !points;
    let fp = Footprint.create () in
    ifps := fp :: !ifps;
    cur := fp;
    depth := d + 1;
    k
  in
  let op = Torture.Oracle.probe oracle in
  let probe =
    { Samhita.Probe.on_read =
        (fun ~thread ~time ~addr ~len ~value ->
           Footprint.add_read !cur ~thread ~addr ~len;
           op.Samhita.Probe.on_read ~thread ~time ~addr ~len ~value);
      on_write =
        (fun ~thread ~time ~addr ~len ~value ->
           Footprint.add_write !cur ~thread ~addr ~len;
           op.Samhita.Probe.on_write ~thread ~time ~addr ~len ~value);
      on_publish = op.Samhita.Probe.on_publish;
      on_malloc =
        (fun ~thread ~time ~addr ~bytes ->
           Footprint.add_thread !cur thread;
           op.Samhita.Probe.on_malloc ~thread ~time ~addr ~bytes);
      on_free =
        (fun ~thread ~time ~addr ~bytes ->
           Footprint.add_thread !cur thread;
           op.Samhita.Probe.on_free ~thread ~time ~addr ~bytes);
      on_barrier =
        (fun ~thread ~time ~barrier ~epoch ~phase ->
           Footprint.add_sync !cur ~thread (Printf.sprintf "bar:%d" barrier);
           op.Samhita.Probe.on_barrier ~thread ~time ~barrier ~epoch ~phase);
      on_sync =
        (fun ~thread ~time ~op:sync_op ->
           let name =
             match sync_op with
             | Samhita.Probe.Lock_acquired l | Samhita.Probe.Unlock l ->
               Printf.sprintf "lock:%d" l
             | Samhita.Probe.Cond_signal c | Samhita.Probe.Cond_wake c ->
               Printf.sprintf "cond:%d" c
           in
           Footprint.add_sync !cur ~thread name;
           op.Samhita.Probe.on_sync ~thread ~time ~op:sync_op);
      on_crash =
        (fun ~time ~node ~server ->
           Footprint.set_global !cur;
           op.Samhita.Probe.on_crash ~time ~node ~server);
      on_recovery =
        (fun ~time ~failed ~promoted ~replayed ->
           Footprint.set_global !cur;
           op.Samhita.Probe.on_recovery ~time ~failed ~promoted ~replayed);
      on_rejoin =
        (fun ~time ~zombie ~primary ~copied ->
           Footprint.set_global !cur;
           op.Samhita.Probe.on_rejoin ~time ~zombie ~primary ~copied) }
  in
  Samhita.System.set_probe sys probe;
  Desim.Engine.set_chooser engine (Some chooser);
  let check_sum =
    Kernels.build opts.kernel sys ~threads:opts.threads ~pages:opts.pages
  in
  Desim.Resource.set_observer
    (Some
       (fun r ->
          Footprint.add_resource !cur ("res:" ^ Desim.Resource.name r)));
  let outcome =
    Fun.protect
      ~finally:(fun () -> Desim.Resource.set_observer None)
      (fun () ->
         try
           if opts.crash then begin
             Desim.Engine.run_until engine crash_horizon;
             if Samhita.System.finished_threads sys < opts.threads then
               `Stalled "unfinished threads at crash-mode horizon"
             else `Done
           end
           else begin
             Samhita.System.run sys;
             `Done
           end
         with
         | Desim.Engine.Stalled msg -> `Stalled msg
         | Pruned -> `Abandoned)
  in
  match outcome with
  | `Abandoned -> `Pruned
  | (`Done | `Stalled _) as outcome ->
    let final = snapshot () in
    let defects = ref [] in
    let deadlock =
      match outcome with
      | `Stalled msg ->
        let dl = Deadlock.analyze sys in
        defects :=
          ( "deadlock",
            Format.asprintf "@[<v>%s@,%a@]" msg Deadlock.pp dl )
          :: !defects;
        Some dl
      | `Done ->
        (match check_sum () with
         | Some msg -> defects := ("checksum", msg) :: !defects
         | None -> ());
        Torture.Oracle.finalize oracle sys;
        None
    in
    List.iter
      (fun v ->
         defects :=
           (v.Torture.Oracle.v_class, v.Torture.Oracle.v_message) :: !defects)
      (Torture.Oracle.violations oracle);
    (match Samhita.System.sanitizer sys with
     | Some san ->
       List.iter
         (fun f ->
            defects :=
              ( Analysis.Regcsan.kind_name f.Analysis.Regcsan.kind,
                Format.asprintf "%a" Analysis.Regcsan.pp_finding f )
              :: !defects)
         (Analysis.Regcsan.findings san)
     | None -> ());
    `Run
      { e_points = Array.of_list (List.rev !points);
        e_fps = Array.of_list (List.rev !ifps);
        e_clocks = Array.of_list (List.rev (final :: !clocks));
        e_defects = List.rev !defects;
        e_deadlock = deadlock;
        e_digest = Torture.Oracle.digest oracle }

(* ------------------------------------------------------------------ *)
(* Dependence between intervals *)

(* Interval [i] is provably ordered before interval [j] when every thread
   [u] active in [j] had, by the start of [j], acquired a release that
   every thread [t] active in [i] issued after [i] closed. RegCSan ticks a
   thread's own component after publishing each release clock, so [t]'s
   epoch at the close of [i] (say [e]) is first published by its next
   release — [u]'s view of [t] reaches [e] exactly when that later release
   arrived. [e = 0] means [t] has never released: no cross-thread edge
   exists, so stay conservatively dependent (whole-clock [leq] would claim
   ordering vacuously there — two untouched clocks satisfy pointwise <=
   without any synchronization between the threads). *)
let hb_ordered exec i j =
  let ti = Footprint.threads exec.e_fps.(i)
  and tj = Footprint.threads exec.e_fps.(j) in
  ti <> [] && tj <> []
  && List.for_all
       (fun t ->
          let e = Analysis.Vclock.get exec.e_clocks.(i + 1).(t) t in
          e > 0
          && List.for_all
               (fun u -> Analysis.Vclock.get exec.e_clocks.(j).(u) t >= e)
               tj)
       ti

(* Sync-object and facility conflicts are dependencies outright (their
   service order decides timing); word conflicts are excused when the
   happens-before oracle orders the intervals — reordering same-instant
   events cannot flip an HB edge that synchronization established. *)
let dependent exec i j =
  let a = exec.e_fps.(i) and b = exec.e_fps.(j) in
  if Footprint.sync_conflict a b then true
  else if Footprint.conflict a b then not (hb_ordered exec i j)
  else false

(* ------------------------------------------------------------------ *)
(* DFS over schedules *)

type frame = {
  f_prefix : int list;  (* choices before this point *)
  f_seqs : int array;
  f_sleep0 : (int * Footprint.t) list;
  mutable f_tried : (int * Footprint.t) list;  (* (choice, interval fp) *)
  mutable f_todo : int list;
}

type defect = {
  d_class : string;
  d_message : string;
  d_schedule : Schedule.t;
}

type result = {
  r_opts : opts;
  r_schedules : int;  (* complete controlled runs *)
  r_pruned : int;  (* runs abandoned by the sleep set *)
  r_truncated : bool;  (* hit max_schedules before exhausting *)
  r_max_points : int;  (* deepest choice-point count seen *)
  r_defect_runs : int;  (* runs that surfaced at least one defect *)
  r_defects : defect list;
      (* one per class, carrying the shortest schedule seen *)
}

let take n l = List.filteri (fun i _ -> i < n) l

let explore opts =
  let frames : frame list ref = ref [] in
  let runs = ref 0 and pruned = ref 0 and truncated = ref false in
  let max_points = ref 0 and defect_runs = ref 0 in
  let best : (string, defect) Hashtbl.t = Hashtbl.create 8 in
  let note_defects sched defects =
    if defects <> [] then incr defect_runs;
    List.iter
      (fun (cls, msg) ->
         let d = { d_class = cls; d_message = msg; d_schedule = sched } in
         match Hashtbl.find_opt best cls with
         | None -> Hashtbl.replace best cls d
         | Some old ->
           if List.length sched < List.length old.d_schedule then
             Hashtbl.replace best cls d)
      defects
  in
  let add_todo fr k =
    if (not (List.mem_assoc k fr.f_tried)) && not (List.mem k fr.f_todo) then
      fr.f_todo <- fr.f_todo @ [ k ]
  in
  (* Flanagan-Godefroid backtrack sets: for each interval [j], find the
     latest earlier interval [i] whose footprint is dependent with [j]'s
     and revisit point [i] running [j]'s side first. When [j]'s chosen
     event already existed at point [i] (same-instant tie) that exact
     candidate is the alternative; otherwise the event was created later
     and the first step of the chain leading to it is unknown —
     conservatively try every candidate at [i]. *)
  let add_backtracks exec =
    let pts = exec.e_points in
    let fr = Array.of_list !frames in
    let n = min (Array.length pts) (Array.length fr) in
    for j = 1 to n - 1 do
      let rec scan i =
        if i < 0 then ()
        else if dependent exec i j then begin
          let sj = pts.(j).p_seqs.(pts.(j).p_chosen) in
          (match index_of sj pts.(i).p_seqs with
           | Some k -> add_todo fr.(i) k
           | None ->
             for k = 0 to Array.length pts.(i).p_seqs - 1 do
               add_todo fr.(i) k
             done)
        end
        else scan (i - 1)
      in
      scan (j - 1)
    done
  in
  let sync_frames exec ~prefix =
    let pts = exec.e_points in
    let n = Array.length pts in
    let d0 = List.length prefix in
    max_points := max !max_points n;
    let kept = take d0 !frames in
    (if d0 > 0 then begin
       let fr = List.nth kept (d0 - 1) in
       let p = pts.(d0 - 1) in
       if not (List.mem_assoc p.p_chosen fr.f_tried) then
         fr.f_tried <- (p.p_chosen, exec.e_fps.(d0 - 1)) :: fr.f_tried
     end);
    let fresh =
      List.init (n - d0) (fun idx ->
          let d = d0 + idx in
          let p = pts.(d) in
          let f =
            { f_prefix = List.init d (fun i -> pts.(i).p_chosen);
              f_seqs = p.p_seqs;
              f_sleep0 = p.p_sleep0;
              f_tried = [ (p.p_chosen, exec.e_fps.(d)) ];
              f_todo = [] }
          in
          if not opts.dpor then
            for k = 0 to Array.length p.p_seqs - 1 do
              if k <> p.p_chosen then f.f_todo <- f.f_todo @ [ k ]
            done;
          f)
    in
    frames := kept @ fresh
  in
  let do_run ~prefix ~branch_sleep =
    match run_once opts ~prefix ~branch_sleep with
    | `Pruned ->
      incr pruned;
      (* Mark the branch tried (with a universal footprint, so as a
         future sleep entry it wakes immediately and never over-prunes)
         or the backtrack sets would re-add it forever. *)
      (match prefix with
       | [] -> ()
       | _ ->
         let d = List.length prefix - 1 in
         (match List.nth_opt !frames d with
          | Some fr ->
            let k = List.nth prefix d in
            if not (List.mem_assoc k fr.f_tried) then
              fr.f_tried <- (k, Footprint.universal ()) :: fr.f_tried
          | None -> ()))
    | `Run exec ->
      incr runs;
      note_defects (schedule_of exec) exec.e_defects;
      sync_frames exec ~prefix;
      if opts.dpor then add_backtracks exec
  in
  let select () =
    (* deepest frame with pending backtrack candidates *)
    let chosen = ref None in
    List.iteri
      (fun d fr -> if fr.f_todo <> [] then chosen := Some (d, fr))
      !frames;
    !chosen
  in
  do_run ~prefix:[] ~branch_sleep:[];
  let continue = ref true in
  while !continue do
    if !runs + !pruned >= opts.max_schedules then begin
      if select () <> None then truncated := true;
      continue := false
    end
    else
      match select () with
      | None -> continue := false
      | Some (d, fr) ->
        let k = List.hd fr.f_todo in
        fr.f_todo <- List.tl fr.f_todo;
        if not (List.mem_assoc k fr.f_tried) then begin
          frames := take (d + 1) !frames;
          let branch_sleep =
            if opts.dpor then
              fr.f_sleep0
              @ List.map (fun (kk, fp) -> (fr.f_seqs.(kk), fp)) fr.f_tried
            else []
          in
          do_run ~prefix:(fr.f_prefix @ [ k ]) ~branch_sleep
        end
  done;
  let defects =
    Hashtbl.fold (fun _ d acc -> d :: acc) best []
    |> List.sort (fun a b -> String.compare a.d_class b.d_class)
  in
  { r_opts = opts;
    r_schedules = !runs;
    r_pruned = !pruned;
    r_truncated = !truncated;
    r_max_points = !max_points;
    r_defect_runs = !defect_runs;
    r_defects = defects }

(* ------------------------------------------------------------------ *)
(* Replay *)

type replay = {
  rp_points : int;
  rp_defects : (string * string) list;
  rp_digest : int;
}

let replay opts schedule =
  match run_once opts ~prefix:schedule ~branch_sleep:[] with
  | `Pruned -> assert false (* no sleep set installed *)
  | `Run exec ->
    { rp_points = Array.length exec.e_points;
      rp_defects = exec.e_defects;
      rp_digest = exec.e_digest }

(* ------------------------------------------------------------------ *)
(* Reporting *)

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>regccheck: kernel=%s threads=%d pages=%d crash=%s mode=%s@,\
     schedules: %d explored, %d pruned, max choice points %d%s@,"
    (Kernels.name r.r_opts.kernel)
    r.r_opts.threads r.r_opts.pages
    (if r.r_opts.crash then "on" else "off")
    (if r.r_opts.dpor then "dpor" else "naive")
    r.r_schedules r.r_pruned r.r_max_points
    (if r.r_truncated then
       Printf.sprintf " (TRUNCATED at --max-schedules %d)"
         r.r_opts.max_schedules
     else "");
  if r.r_defects = [] then
    Format.fprintf ppf "no defects: every explored schedule is clean@]"
  else begin
    Format.fprintf ppf "defects: %d class(es), %d defective schedule(s)"
      (List.length r.r_defects) r.r_defect_runs;
    List.iter
      (fun d ->
         Format.fprintf ppf "@,@[<v2>[%s] counterexample --replay %s@,%s@]"
           d.d_class
           (Schedule.to_string d.d_schedule)
           d.d_message)
      r.r_defects;
    Format.fprintf ppf "@]"
  end

let pp_replay ppf rp =
  Format.fprintf ppf "@[<v>replay: %d choice points, digest %08x@,"
    rp.rp_points (rp.rp_digest land 0xffffffff);
  if rp.rp_defects = [] then Format.fprintf ppf "no defects@]"
  else begin
    Format.fprintf ppf "defects:";
    List.iter
      (fun (cls, msg) -> Format.fprintf ppf "@,@[<v2>[%s]@,%s@]" cls msg)
      rp.rp_defects;
    Format.fprintf ppf "@]"
  end
