(** Bounded kernels for exhaustive exploration.

    Each kernel is small-scope by construction — 2–3 threads, 1–2 pages of
    data, a handful of synchronization episodes — so its same-instant
    scheduling tree is exhaustible:

    - [racy]: seeds one data race (all threads store word 0 unordered)
      next to a correctly lock-protected counter. Every schedule carries
      the race; the counter doubles as a checksum.
    - [micro]: a properly synchronized cut of the paper's micro-benchmark
      (per-thread rows, lock-protected global sum, barriers). Every
      schedule must be clean and produce the analytic sum.
    - [abba]: a schedule-dependent ABBA deadlock — a racy flag handoff
      under one lock decides whether the threads nest a lock pair in ring
      or ascending order, so some schedules deadlock and some complete. *)

type t = Racy | Micro | Abba

val name : t -> string
val all : t list
val of_name : string -> (t, string) result

val build : t -> Samhita.System.t -> threads:int -> pages:int -> unit -> string option
(** Create the kernel's sync objects and spawn its thread bodies into an
    already-created system (the caller installs its probe and controlled
    scheduler first, then calls {!Samhita.System.run}). The returned thunk
    is the post-run checksum: [Some message] on mismatch. *)
