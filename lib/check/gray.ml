type scope = Isolate | Control

let scope_name = function Isolate -> "isolate" | Control -> "control"

(* The victim of the partition is server 0 — the primary at time zero.
   Server 1 is its backup, promoted if the detector fires. *)
let victim = 0

type store = {
  value : int;  (* 0 = initial; write i stores i. *)
  version : int;
}

type wstate =
  | Todo
  | Sent of int * int  (* (epoch, target) captured at resolution time *)
  | Acked of int  (* target that served and acknowledged it *)

(* One abstract protocol state. Immutable: every transition builds a
   fresh record, so structural equality/hashing dedups visited states. *)
type state = {
  epoch : int;
  mapping : int;  (* physical server currently primary: 0 or 1 *)
  partition : bool;  (* the window is still open *)
  promoted : bool;
  rejoined : bool;
  s0 : store;
  s1 : store;
  writes : wstate list;  (* the client's bounded sequence, in order *)
}

type result = {
  g_scope : scope;
  g_fence : bool;
  g_writes : int;
  g_states : int;
  g_transitions : int;
  g_terminals : int;
  g_fenced : int;
  g_defects : (string * string list) list;
}

let max_defects = 16

let store_of t s = if t = victim then s.s0 else s.s1
let with_store t st s =
  if t = victim then { s with s0 = st } else { s with s1 = st }

(* The client is sequential: the active write is the first one not yet
   acknowledged. *)
let active_write s =
  let rec go i = function
    | [] -> None
    | Acked _ :: rest -> go (i + 1) rest
    | (Todo | Sent _) as w :: _ -> Some (i, w)
  in
  go 0 s.writes

let set_write s i w =
  { s with writes = List.mapi (fun j x -> if j = i then w else x) s.writes }

(* A hop is blocked iff the partition window is open and the victim is an
   endpoint — for [Isolate] always (everyone is a peer), for [Control]
   only when the other endpoint is the control plane. Client and servers
   are data-plane endpoints, so under [Control] no data hop blocks: the
   zombie stays reachable and only the epoch fence protects it. *)
let data_hop_blocked ~scope s ~a ~b =
  s.partition && scope = Isolate && (a = victim || b = victim)

(* Enabled transitions of [s]: (label, defect option, fenced, s'). The
   defect is attached to the transition that manifests it, so DFS (which
   expands every reachable state's outgoing transitions exactly once)
   detects every distinct (state, transition) violation. *)
let transitions ~scope ~fence s =
  let ts = ref [] in
  let push ?defect ?(fenced = false) label s' =
    ts := (label, defect, fenced, s') :: !ts
  in
  (* Client step. *)
  (match active_write s with
   | None -> ()
   | Some (i, Todo) ->
     (* Resolve: capture the epoch and the mapping it was read under. *)
     push
       (Printf.sprintf "send w%d->s%d@e%d" (i + 1) s.mapping s.epoch)
       (set_write s i (Sent (s.epoch, s.mapping)))
   | Some (i, Sent (e, t)) ->
     if fence && e <> s.epoch then
       (* The reply lands under a moved epoch: fence, re-resolve. This is
          also how an [Isolate]-parked delivery resumes after promotion
          (the failover path re-resolves before re-running). *)
       push ~fenced:true
         (Printf.sprintf "fence w%d (e%d<e%d)" (i + 1) e s.epoch)
         (set_write s i Todo)
     else if data_hop_blocked ~scope s ~a:(-1) ~b:t then
       (* Client->victim delivery parks until heal or promotion. *)
       ()
     else begin
       (* Apply at the captured target, mirror to its backup, ack. *)
       let defect =
         if s.promoted && t <> s.mapping then
           Some
             (Printf.sprintf
                "split-brain: write %d applied at server %d after recovery \
                 deposed it (current primary %d, epoch %d)"
                (i + 1) t s.mapping s.epoch)
         else None
       in
       let st = store_of t s in
       let st' = { value = i + 1; version = st.version + 1 } in
       let s' = with_store t st' s in
       let peer = 1 - t in
       let s' =
         if data_hop_blocked ~scope s ~a:t ~b:peer then s' (* degraded *)
         else with_store peer st' s'
       in
       push ?defect
         (Printf.sprintf "deliver w%d@s%d" (i + 1) t)
         (set_write s' i (Acked t))
     end
   | Some (_, Acked _) -> assert false);
  (* Detector: the false suspicion can land at any point — before, at, or
     after the heal (a lease expiry decided during the window completes
     later) — which is exactly the interleaving family this model
     exhausts. *)
  if not s.promoted then
    push "suspect"
      { s with epoch = s.epoch + 1; mapping = 1 - victim; promoted = true };
  (* The window closes. *)
  if s.partition then push "heal" { s with partition = false };
  (* Post-heal resync: the zombie becomes the promoted primary's backup,
     bit-identical. *)
  if s.promoted && (not s.partition) && not s.rejoined then
    push "rejoin"
      (let p = store_of (1 - victim) s in
       with_store victim p { s with rejoined = true });
  !ts

let check_terminal ~writes s =
  let defects = ref [] in
  let primary = store_of s.mapping s in
  if writes > 0 && primary.value <> writes then
    defects :=
      Printf.sprintf
        "lost acked write: terminal primary %d holds value %d but write %d \
         was acknowledged last"
        s.mapping primary.value writes
      :: !defects;
  if s.rejoined && s.s0 <> s.s1 then
    defects :=
      Printf.sprintf
        "rejoin divergence: terminal replicas differ (s0=%d/v%d, s1=%d/v%d)"
        s.s0.value s.s0.version s.s1.value s.s1.version
      :: !defects;
  List.rev !defects

let explore ?(fence = true) ~scope ~writes () =
  if writes < 1 || writes > 4 then
    invalid_arg "Gray.explore: writes must be 1..4";
  let init =
    { epoch = 0;
      mapping = victim;
      partition = true;
      promoted = false;
      rejoined = false;
      s0 = { value = 0; version = 0 };
      s1 = { value = 0; version = 0 };
      writes = List.init writes (fun _ -> Todo) }
  in
  let visited : (state, unit) Hashtbl.t = Hashtbl.create 4096 in
  let n_transitions = ref 0 in
  let n_terminals = ref 0 in
  let n_fenced = ref 0 in
  let defects = ref [] in
  let n_defects = ref 0 in
  let note_defect msg path =
    if !n_defects < max_defects then begin
      defects := (msg, List.rev path) :: !defects;
      incr n_defects
    end
  in
  let stack = ref [ (init, []) ] in
  Hashtbl.replace visited init ();
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (s, path) :: rest ->
      stack := rest;
      let ts = transitions ~scope ~fence s in
      if ts = [] then begin
        incr n_terminals;
        List.iter (fun msg -> note_defect msg path) (check_terminal ~writes s)
      end
      else
        List.iter
          (fun (label, defect, fenced, s') ->
             incr n_transitions;
             if fenced then incr n_fenced;
             let path' = label :: path in
             (match defect with
              | Some msg -> note_defect msg path'
              | None -> ());
             if not (Hashtbl.mem visited s') then begin
               Hashtbl.replace visited s' ();
               stack := (s', path') :: !stack
             end)
          ts
  done;
  { g_scope = scope;
    g_fence = fence;
    g_writes = writes;
    g_states = Hashtbl.length visited;
    g_transitions = !n_transitions;
    g_terminals = !n_terminals;
    g_fenced = !n_fenced;
    g_defects = List.rev !defects }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>graycheck scope=%s fence=%b writes=%d: %d states, %d \
     transitions, %d terminals, %d fenced@,"
    (scope_name r.g_scope) r.g_fence r.g_writes r.g_states r.g_transitions
    r.g_terminals r.g_fenced;
  if r.g_defects = [] then Format.fprintf ppf "no invariant violations@]"
  else begin
    Format.fprintf ppf "%d invariant violation(s):@," (List.length r.g_defects);
    List.iter
      (fun (msg, trace) ->
         Format.fprintf ppf "  %s@," msg;
         Format.fprintf ppf "    trace: %s@," (String.concat " ; " trace))
      r.g_defects;
    Format.fprintf ppf "@]"
  end
