type t = int list

let to_string = function
  | [] -> "-"
  | s -> String.concat "." (List.map string_of_int s)

let of_string str =
  let str = String.trim str in
  if str = "" || str = "-" then Ok []
  else
    try
      let parts = String.split_on_char '.' str in
      let choices = List.map int_of_string parts in
      if List.exists (fun c -> c < 0) choices then
        Error "schedule: choices must be non-negative"
      else Ok choices
    with Failure _ ->
      Error "schedule: expected dot-separated choice indices, e.g. \"0.2.1\""

let pp ppf s = Format.pp_print_string ppf (to_string s)
