type t = Racy | Micro | Abba

let name = function Racy -> "racy" | Micro -> "micro" | Abba -> "abba"
let all = [ Racy; Micro; Abba ]

let of_name s =
  match List.find_opt (fun k -> name k = String.lowercase_ascii s) all with
  | Some k -> Ok k
  | None ->
    Error
      (Printf.sprintf "unknown kernel %S (expected %s)" s
         (String.concat ", " (List.map name all)))

open Samhita

(* ------------------------------------------------------------------ *)
(* racy: every thread stores word 0 with no happens-before edge — the
   seeded race — then bumps a lock-protected counter. Disjoint per-thread
   words exercise the multiple-writer path without adding defects. The
   counter read-back at the end is a checksum: under correct locking it
   must equal the thread count in every schedule. *)

let build_racy sys ~threads ~pages =
  let m = System.mutex sys in
  let b = System.barrier sys ~parties:threads in
  let nwords = 8 * pages in
  let base = ref 0 in
  let counter_out = ref nan in
  let body me ctx =
    let open Thread_ctx in
    if me = 0 then base := malloc ctx ~bytes:((nwords + 1) * 8);
    barrier_wait ctx b;
    let base = !base in
    let counter = base + (nwords * 8) in
    (* Seeded race: unordered conflicting stores on word 0. *)
    write_f64 ctx base (float_of_int (me + 1));
    (* Disjoint words: legal concurrent writers, no finding. *)
    if me + 1 < nwords then write_f64 ctx (base + (8 * (me + 1))) 1.0;
    mutex_lock ctx m;
    write_f64 ctx counter (read_f64 ctx counter +. 1.0);
    mutex_unlock ctx m;
    barrier_wait ctx b;
    if me = 0 then begin
      mutex_lock ctx m;
      counter_out := read_f64 ctx counter;
      mutex_unlock ctx m
    end
  in
  for me = 0 to threads - 1 do
    ignore (System.spawn sys (body me) : Thread_ctx.t)
  done;
  fun () ->
    if !counter_out = float_of_int threads then None
    else
      Some
        (Printf.sprintf "racy counter: got %g, want %d" !counter_out threads)

(* ------------------------------------------------------------------ *)
(* micro: a bounded cut of the paper's micro-benchmark — per-thread rows
   ([pages] rows of 4 doubles, arena-allocated so there is no false
   sharing), two outer iterations each ending in a lock-protected
   global-sum update and a barrier. Properly synchronized: every schedule
   must be defect-free and produce the same sum. *)

let micro_cols = 4
let micro_outer = 2
let micro_decay = 0.5

let micro_expected ~threads ~pages =
  let a = Array.make (pages * micro_cols) 1.0 in
  let g = ref 0.0 in
  for _i = 1 to micro_outer do
    let sum = ref 0.0 in
    Array.iteri
      (fun idx v ->
         a.(idx) <- micro_decay *. v;
         sum := !sum +. a.(idx))
      a;
    for _t = 1 to threads do
      g := !g +. !sum
    done
  done;
  !g

let build_micro sys ~threads ~pages =
  let m = System.mutex sys in
  let b = System.barrier sys ~parties:threads in
  let gsum_addr = ref 0 in
  let gsum_out = ref nan in
  let row_bytes = micro_cols * 8 in
  let body me ctx =
    let open Thread_ctx in
    if me = 0 then begin
      gsum_addr := malloc ctx ~bytes:8;
      write_f64 ctx !gsum_addr 0.0
    end;
    barrier_wait ctx b;
    let mine = malloc ctx ~bytes:(pages * row_bytes) in
    for w = 0 to (pages * micro_cols) - 1 do
      write_f64 ctx (mine + (w * 8)) 1.0
    done;
    barrier_wait ctx b;
    for _i = 1 to micro_outer do
      let sum = ref 0.0 in
      for w = 0 to (pages * micro_cols) - 1 do
        let addr = mine + (w * 8) in
        let v = micro_decay *. read_f64 ctx addr in
        write_f64 ctx addr v;
        sum := !sum +. v
      done;
      mutex_lock ctx m;
      write_f64 ctx !gsum_addr (read_f64 ctx !gsum_addr +. !sum);
      mutex_unlock ctx m;
      barrier_wait ctx b
    done;
    if me = 0 then begin
      mutex_lock ctx m;
      gsum_out := read_f64 ctx !gsum_addr;
      mutex_unlock ctx m
    end
  in
  for me = 0 to threads - 1 do
    ignore (System.spawn sys (body me) : Thread_ctx.t)
  done;
  fun () ->
    let want = micro_expected ~threads ~pages in
    if Float.abs (!gsum_out -. want) <= 1e-9 then None
    else Some (Printf.sprintf "micro gsum: got %.17g, want %.17g" !gsum_out want)

(* ------------------------------------------------------------------ *)
(* abba: a schedule-dependent deadlock. Phase 1 races (under lock 0) for
   a flag: thread 0 sets it, the others read whatever the grant chain has
   published by then — so the value each reader sees is decided by the
   lock-acquisition order, a scheduling choice. Phase 2: thread 0 and
   every thread that read the flag take the ring order (L_me then
   L_{me+1}), the rest take ascending order. All-ring is a cycle —
   schedules where thread 0 won phase 1 deadlock, schedules where it lost
   complete. The checker must find both kinds. *)

let build_abba sys ~threads ~pages:_ =
  let locks = Array.init threads (fun _ -> System.mutex sys) in
  let b = System.barrier sys ~parties:threads in
  let base = ref 0 in
  let body me ctx =
    let open Thread_ctx in
    if me = 0 then base := malloc ctx ~bytes:8;
    barrier_wait ctx b;
    let flag = !base in
    let saw = ref 0L in
    mutex_lock ctx locks.(0);
    if me = 0 then write_i64 ctx flag 1L else saw := read_i64 ctx flag;
    mutex_unlock ctx locks.(0);
    barrier_wait ctx b;
    let ring = me = 0 || !saw = 1L in
    let i = me and j = (me + 1) mod threads in
    let first, second =
      if ring then (i, j) else (min i j, max i j)
    in
    mutex_lock ctx locks.(first);
    mutex_lock ctx locks.(second);
    mutex_unlock ctx locks.(second);
    mutex_unlock ctx locks.(first)
  in
  for me = 0 to threads - 1 do
    ignore (System.spawn sys (body me) : Thread_ctx.t)
  done;
  fun () -> None

let build kernel sys ~threads ~pages =
  match kernel with
  | Racy -> build_racy sys ~threads ~pages
  | Micro -> build_micro sys ~threads ~pages
  | Abba -> build_abba sys ~threads ~pages
