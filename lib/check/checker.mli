(** RegCCheck: stateless small-scope model checking of the simulator.

    The simulator is deterministic except for one degree of freedom: the
    order in which same-instant events pop from the engine's queue. A
    controlled scheduler ({!Desim.Engine.set_chooser}) turns each
    same-instant tie into an explicit choice point; a {e schedule} is the
    list of choices taken. The checker re-executes a bounded kernel
    ({!Kernels}) from scratch for every schedule of interest — depth-first
    over the choice tree — and evaluates every terminal state: RegCSan
    findings, torture-oracle invariants, a kernel checksum, and deadlock
    (via {!Deadlock} on stalled branches). Any defect yields a
    counterexample schedule replayable with {!replay}.

    Exploration is pruned by dynamic partial-order reduction: each
    interval's {!Footprint} defines dependence, RegCSan's vector clocks
    excuse conflicts that synchronization already orders, and sleep sets
    stop sibling branches from re-proving the same commutations. Naive
    mode ([dpor = false]) enumerates the full tree — useful to measure
    the reduction factor and to cross-check coverage. *)

exception Bad_schedule of string
(** A replayed schedule named a choice index out of range — it was
    recorded against a different kernel, geometry, or build. *)

type opts = {
  kernel : Kernels.t;
  threads : int;
  pages : int;
  crash : bool;  (** Replicated geometry with one injected server crash. *)
  dpor : bool;  (** Partial-order reduction (default); naive otherwise. *)
  max_schedules : int;  (** Exploration budget (runs + prunes). *)
  quantum : int;
      (** Scheduling quantum in ns ({!Desim.Engine.set_quantum}): future
          instants round up to this grid so contended operations staggered
          only by port serialization become explicit ties. *)
}

val default_opts : opts

type defect = {
  d_class : string;  (** e.g. ["race"], ["deadlock"], ["checksum"]. *)
  d_message : string;
  d_schedule : Schedule.t;  (** Shortest counterexample seen. *)
}

type result = {
  r_opts : opts;
  r_schedules : int;
  r_pruned : int;
  r_truncated : bool;
  r_max_points : int;
  r_defect_runs : int;
  r_defects : defect list;  (** One per class, sorted by class. *)
}

val explore : opts -> result

type replay = {
  rp_points : int;
  rp_defects : (string * string) list;
  rp_digest : int;  (** Oracle stream digest — replay determinism check. *)
}

val replay : opts -> Schedule.t -> replay
(** Re-execute one schedule (the prefix is forced, the suffix takes
    candidate 0 everywhere). Raises {!Bad_schedule} on a stale schedule. *)

val pp_result : Format.formatter -> result -> unit
val pp_replay : Format.formatter -> replay -> unit
