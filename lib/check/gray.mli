(** GrayCheck: exhaustive exploration of suspicion-vs-heal interleavings.

    A small explicit-state model of the epoch-fenced recovery protocol —
    two memory servers (primary and backup), one client issuing a bounded
    sequence of replicated writes, a lease detector that may falsely
    suspect the primary while a partition holds, and a post-heal rejoin.
    Unlike the simulator-backed {!Checker}, the state here is abstract
    (per-server value/version registers and protocol control bits), so
    {e every} interleaving of client sends/deliveries with the suspect,
    heal and rejoin events is explored — including the boundary cases a
    seeded sweep only samples: suspicion landing exactly at the heal, a
    write in flight across the promotion, a zombie serving after it was
    deposed.

    Invariants checked on every path:
    - {e no split-brain}: once recovery deposes the primary, no delivery
      may apply there (the epoch fence must reject it);
    - {e no lost acked write}: at every terminal state the current
      primary holds the last acknowledged write;
    - {e rejoin convergence}: after the zombie is resynced, both replicas
      are identical.

    The model can be explored with the epoch fence disabled
    ([~fence:false]) as a negative control: the same exploration must
    then find split-brain counterexamples, proving the invariant checks
    are not vacuous. *)

type scope = Isolate | Control
(** Mirror of [Samhita.Config.partition_scope]: [Isolate] blocks the
    victim from everyone (client deliveries to it park until promotion
    or heal); [Control] blocks only the control plane (the client can
    still reach the zombie primary — fencing is load-bearing). *)

val scope_name : scope -> string

type result = {
  g_scope : scope;
  g_fence : bool;
  g_writes : int;  (** Writes in the bounded client sequence. *)
  g_states : int;  (** Distinct states visited. *)
  g_transitions : int;  (** Transitions executed (including fences). *)
  g_terminals : int;  (** Quiescent terminal states checked. *)
  g_fenced : int;  (** Deliveries rejected by the epoch fence. *)
  g_defects : (string * string list) list;
      (** Invariant violations: message and the transition trace (oldest
          first) that reaches the violating state. Bounded. *)
}

val explore : ?fence:bool -> scope:scope -> writes:int -> unit -> result
(** Exhaust every interleaving. [fence] defaults to [true]; [writes]
    must be 1..4 (the state space is exponential in it). *)

val pp_result : Format.formatter -> result -> unit
