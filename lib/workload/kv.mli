(** A read-dominated key-value store served over the shared-memory
    system, driven by the open-loop {!Traffic} generator.

    Each key holds a version counter; a [Put] increments it under the
    key's shard mutex, a [Get] reads it under the same mutex (RegC, like
    Pthreads, only guarantees lock-protected data is fresh when read
    under its lock). Versions make correctness exactly checkable: after
    the run, key [k]'s counter must equal the number of [Put]s for [k] in
    the generated stream — an acknowledged write that a crash or
    promotion lost shows up as a shortfall — and the per-client sequence
    of observed versions supports read-your-writes and monotonic-reads
    session checks ({!Torture.Oracle.check_kv_history}).

    Requests are partitioned to serving workers by [client mod threads],
    so one client's requests are processed in issue order. Workers wait
    for each pre-drawn arrival with {!Backend_sig.S.idle_until}; when
    offered load exceeds capacity they fall behind and the recorded
    latency (completion minus arrival) grows with the queue. *)

type event = {
  e_client : int;
  e_key : int;
  e_op : Traffic.op;
  e_version : int;  (** Version read (Get) or written (Put). *)
}
(** One serviced request, in per-worker processing order (which embeds
    per-client program order). *)

type params = {
  traffic : Traffic.params;
  shards : int;  (** Mutex-protected key partitions ([key mod shards]). *)
  service_flops : int;
      (** Per-request CPU cost (parse/hash/dispatch) besides the value
          access itself. *)
}

val default_params : params

type result = {
  params : params;
  threads : int;
  wall_ns : int;
  served : int;
  latencies_ns : int array;
      (** Indexed like the generated request stream: completion minus
          arrival, queueing delay included. *)
  idle_ns : int;  (** Total worker time parked waiting for arrivals. *)
  final_versions : int array;  (** Per key, read back after serving. *)
  expected_versions : int array;  (** {!Traffic.puts_per_key}. *)
  history : event array;  (** Empty unless [record_history]. *)
}

module Make (B : Backend_sig.S) : sig
  val run :
    ?record_history:bool ->
    ?on_latency:(Traffic.request -> latency_ns:int -> unit) ->
    threads:int -> params -> result
  (** [on_latency] fires at each request completion (the serving harness
      feeds a streaming percentile estimator with it). *)
end

val run :
  ?record_history:bool ->
  ?on_latency:(Traffic.request -> latency_ns:int -> unit) ->
  Backend_sig.backend -> threads:int -> params -> result

val lost_writes : result -> (int * int * int) list
(** Keys whose final version disagrees with the stream:
    [(key, expected, found)]. Empty iff no acked write was lost (and no
    phantom write appeared). *)
