type t = {
  n : int;
  s : float;
  z : float;  (* Normalizer: sum over k of (k+1)^(-s). *)
  cdf : float array;  (* cdf.(k) = P(X <= k); cdf.(n-1) forced to 1. *)
}

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if not (Float.is_finite s) || s < 0. then
    invalid_arg "Zipf.create: s must be finite and non-negative";
  let cdf = Array.make n 0. in
  let total = ref 0. in
  for k = 0 to n - 1 do
    total := !total +. (float_of_int (k + 1) ** -.s);
    cdf.(k) <- !total
  done;
  let z = !total in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. z
  done;
  (* Guard against the prefix sum landing a ulp short of 1: a draw in the
     gap must still map to the last key, not run off the array. *)
  cdf.(n - 1) <- 1.;
  { n; s; z; cdf }

let n t = t.n
let s t = t.s

let pmf t k =
  if k < 0 || k >= t.n then invalid_arg "Zipf.pmf: key out of range";
  float_of_int (k + 1) ** -.t.s /. t.z

let sample t rng =
  let u = Desim.Rng.float rng 1.0 in
  (* Smallest k with u < cdf.(k): inverse-CDF by binary search, one RNG
     draw per sample so key streams replay exactly per seed. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if u < t.cdf.(mid) then hi := mid else lo := mid + 1
  done;
  !lo
