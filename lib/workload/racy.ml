(* A deliberately buggy two-thread kernel: RegCSan's acceptance workload.

   Each defect class the analyzer reports is seeded exactly once, on its
   own word, with deterministic cross-thread ordering arranged through a
   mutex-protected flag and a condition variable (never through a barrier,
   which would publish the ordinary writes and hide the bugs):

   - word 0: both threads store with no happens-before edge   -> race
   - word 1: ordinary store, read by the peer via a lock edge -> unpublished
   - word 2: ordinary store, then the peer stores it under a
     lock without an intervening barrier                      -> mixed
   - a private block written, freed, then read back           -> invalid-read

   Because it exercises condition variables, this workload is
   Samhita-specific rather than a {!Backend_sig.S} kernel. *)

let run ?(on_create = fun (_ : Samhita.System.t) -> ())
    ?(config = Samhita.Config.default) () =
  let config = { config with Samhita.Config.sanitize = true } in
  let sys = Samhita.System.create ~config ~threads:2 () in
  on_create sys;
  let m = Samhita.System.mutex sys in
  let c = Samhita.System.cond sys in
  let b = Samhita.System.barrier sys ~parties:2 in
  let base = ref 0 in
  let body me ctx =
    let open Samhita.Thread_ctx in
    if me = 0 then base := malloc ctx ~bytes:64;
    barrier_wait ctx b;
    let base = !base in
    let flag = base + 24 in
    (* Seed 1: unordered conflicting stores. *)
    write_f64 ctx base (float_of_int (me + 1));
    if me = 0 then begin
      (* Ordinary stores that no barrier will publish before t1 looks. *)
      write_f64 ctx (base + 8) 42.0;
      write_f64 ctx (base + 16) 1.0;
      mutex_lock ctx m;
      write_i64 ctx flag 1L;
      cond_signal ctx c;
      mutex_unlock ctx m;
      (* Seed 4: use-after-free, private to this thread. *)
      let p = malloc ctx ~bytes:32 in
      write_f64 ctx p 3.0;
      free ctx ~addr:p ~bytes:32;
      ignore (read_f64 ctx p : float)
    end
    else begin
      mutex_lock ctx m;
      while read_i64 ctx flag = 0L do
        cond_wait ctx c m
      done;
      (* Seed 2: lock-ordered read of an ordinary (unpublished) store. *)
      ignore (read_f64 ctx (base + 8) : float);
      (* Seed 3: region store over an unpublished ordinary store. *)
      write_f64 ctx (base + 16) 2.0;
      mutex_unlock ctx m
    end;
    barrier_wait ctx b
  in
  for me = 0 to 1 do
    ignore (Samhita.System.spawn sys (body me) : Samhita.Thread_ctx.t)
  done;
  Samhita.System.run sys;
  sys
