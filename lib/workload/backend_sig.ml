(** The programming model shared by both runtimes.

    The paper's benchmarks share one code base, with memory allocation,
    synchronization and thread creation expressed as m4 macros expanded for
    either Pthreads or Samhita (§III). The OCaml equivalent is a module
    signature: kernels are functors over [S], instantiated with the
    Samhita backend and the SMP ("Pthreads") backend. *)

module type S = sig
  val name : string

  type system
  type thread
  type mutex
  type barrier

  (** {2 System lifecycle} *)

  val create : threads:int -> system
  val mutex : system -> mutex
  val barrier : system -> parties:int -> barrier
  val spawn : system -> (thread -> unit) -> unit
  val run : system -> unit
  val elapsed_ns : system -> int

  (** {2 Thread operations (inside a spawned body)} *)

  val thread_id : thread -> int
  val malloc : thread -> bytes:int -> int
  val free : thread -> addr:int -> bytes:int -> unit
  val read_f64 : thread -> int -> float
  val write_f64 : thread -> int -> float -> unit
  val charge_flops : thread -> int -> unit

  val charge_mem_ops : thread -> int -> unit
  (** Account [n] private cache-hit memory accesses without going through
      the shared-memory system (used when a kernel works on a local copy
      of shared data; the copy itself goes through {!read_f64}). *)

  val now_ns : thread -> int
  (** The thread's current virtual instant (ns since simulation start):
      the global clock plus locally accumulated cost. *)

  val idle_until : thread -> int -> unit
  (** Advance virtual time to at least the given absolute instant,
      accounting the gap as idle (neither compute nor sync). Past
      instants are a no-op. The open-loop traffic generator waits for
      pre-drawn arrivals with this. *)

  val lock : thread -> mutex -> unit
  val unlock : thread -> mutex -> unit
  val barrier_wait : thread -> barrier -> unit

  (** {2 Accounting} *)

  val compute_ns : thread -> int
  val sync_ns : thread -> int
  val misses : thread -> int
  (** DSM line misses; coherence misses are not per-thread on the SMP
      baseline, which reports 0. *)
end

type backend = (module S)
