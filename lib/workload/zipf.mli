(** Zipfian key-popularity distribution over [\[0, n)].

    [pmf k] is proportional to [(k+1)^(-s)], the classic serving-workload
    skew (low-numbered keys are hot). [s = 0] degenerates to the uniform
    distribution; larger [s] concentrates more mass on the head. Sampling
    inverts the CDF with a binary search — O(log n) per draw, consuming
    exactly one {!Desim.Rng.float}, so a key stream is a pure function of
    the generator's seed. *)

type t

val create : n:int -> s:float -> t
(** Raises [Invalid_argument] unless [n > 0] and [s] is finite and
    non-negative. *)

val n : t -> int
val s : t -> float

val pmf : t -> int -> float
(** Analytic probability of key [k]; raises [Invalid_argument] out of
    range. The statistical tests chi-square observed draw counts against
    this. *)

val sample : t -> Desim.Rng.t -> int
(** Draw a key in [\[0, n)]. *)
