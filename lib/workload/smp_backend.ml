(** {!Backend_sig.S} over the simulated cache-coherent node — the paper's
    Pthreads baseline. *)

let make ?(config = Smp.Config.default) () : Backend_sig.backend =
  (module struct
    let name = "pthreads"

    type system = Smp.Runtime.system
    type thread = Smp.Runtime.thread
    type mutex = Smp.Runtime.mutex
    type barrier = Smp.Runtime.barrier

    let create ~threads = Smp.Runtime.create ~config ~threads ()
    let mutex = Smp.Runtime.mutex
    let barrier sys ~parties = Smp.Runtime.barrier sys ~parties

    let spawn sys body =
      ignore (Smp.Runtime.spawn sys body : Smp.Runtime.thread)

    let run = Smp.Runtime.run
    let elapsed_ns sys = Desim.Time.to_ns (Smp.Runtime.elapsed sys)
    let thread_id = Smp.Runtime.thread_id
    let malloc t ~bytes = Smp.Runtime.malloc t ~bytes
    let free _t ~addr:_ ~bytes:_ = ()
    let read_f64 = Smp.Runtime.read_f64
    let write_f64 = Smp.Runtime.write_f64
    let charge_flops = Smp.Runtime.charge_flops

    let charge_mem_ops t n =
      Smp.Runtime.charge t (float_of_int n *. config.Smp.Config.t_mem)
    let now_ns = Smp.Runtime.now_ns
    let idle_until = Smp.Runtime.idle_until
    let lock = Smp.Runtime.lock
    let unlock = Smp.Runtime.unlock
    let barrier_wait = Smp.Runtime.barrier_wait
    let compute_ns = Smp.Runtime.compute_ns
    let sync_ns = Smp.Runtime.sync_ns
    let misses _ = 0
  end)

let default : Backend_sig.backend = make ()
