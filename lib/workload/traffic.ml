type op = Get | Put

type request = {
  client : int;
  key : int;
  op : op;
  arrival_ns : int;
}

type params = {
  clients : int;
  requests : int;
  rate_rps : float;
  keys : int;
  zipf_s : float;
  read_fraction : float;
  seed : int;
}

let validate p =
  if p.clients <= 0 then invalid_arg "Traffic.generate: clients";
  if p.requests < 0 then invalid_arg "Traffic.generate: requests";
  if not (Float.is_finite p.rate_rps) || p.rate_rps <= 0. then
    invalid_arg "Traffic.generate: rate_rps must be positive";
  if p.keys <= 0 then invalid_arg "Traffic.generate: keys";
  if not (Float.is_finite p.read_fraction)
     || p.read_fraction < 0. || p.read_fraction > 1.
  then invalid_arg "Traffic.generate: read_fraction must be in [0,1]"

let generate p =
  validate p;
  let rng = Desim.Rng.create ~seed:p.seed in
  let zipf = Zipf.create ~n:p.keys ~s:p.zipf_s in
  let mean = 1e9 /. p.rate_rps in
  (* Open-loop: every arrival instant is drawn before any request is
     served, from a Poisson process with the offered rate. Nothing here
     can react to service times — if the servers fall behind, requests
     queue and the recorded latencies show it (the point of open-loop
     measurement; a closed-loop generator would throttle itself and hide
     the collapse). *)
  let t = ref 0. in
  Array.init p.requests (fun _ ->
      t := !t +. Desim.Rng.exponential rng ~mean;
      let client = Desim.Rng.int rng p.clients in
      let key = Zipf.sample zipf rng in
      let op =
        if Desim.Rng.float rng 1.0 < p.read_fraction then Get else Put
      in
      { client; key; op; arrival_ns = int_of_float !t })

let per_worker reqs ~workers =
  if workers <= 0 then invalid_arg "Traffic.per_worker: workers";
  let buckets = Array.make workers [] in
  Array.iter
    (fun r -> buckets.(r.client mod workers)
              <- r :: buckets.(r.client mod workers))
    reqs;
  Array.map (fun l -> Array.of_list (List.rev l)) buckets

let puts_per_key reqs ~keys =
  if keys <= 0 then invalid_arg "Traffic.puts_per_key: keys";
  let counts = Array.make keys 0 in
  Array.iter
    (fun r ->
       if r.op = Put then counts.(r.key) <- counts.(r.key) + 1)
    reqs;
  counts
