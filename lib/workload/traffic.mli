(** Open-loop traffic generation for the KV serving scenario.

    The generator draws every request — arrival instant, client, key,
    operation — ahead of service, from a Poisson process at the offered
    aggregate rate with Zipf-skewed keys. Because arrivals never wait for
    completions, offered load beyond capacity makes queues (and measured
    latencies) grow without bound instead of silently throttling the
    generator: the open- vs closed-loop distinction that makes tail
    latency measurable. *)

type op = Get | Put

type request = {
  client : int;  (** Simulated client issuing the request. *)
  key : int;
  op : op;
  arrival_ns : int;
      (** Absolute arrival instant, ns from the start of serving. *)
}

type params = {
  clients : int;  (** Simulated clients (each a serial request stream). *)
  requests : int;  (** Total requests to draw. *)
  rate_rps : float;  (** Aggregate offered load, requests per second. *)
  keys : int;
  zipf_s : float;  (** Key-popularity skew ({!Zipf}); 0 = uniform. *)
  read_fraction : float;  (** Probability a request is a [Get]. *)
  seed : int;
}

val generate : params -> request array
(** Requests in arrival order. Deterministic per [seed]; raises
    [Invalid_argument] on nonsensical parameters. *)

val per_worker : request array -> workers:int -> request array array
(** Partition by [client mod workers], preserving arrival order within
    each bucket. A client's requests all land on one worker, so per-client
    program order equals processing order — what makes the session
    guarantees (read-your-writes, monotonic reads) checkable. *)

val puts_per_key : request array -> keys:int -> int array
(** How many [Put]s the stream contains for each key: the expected final
    version counters, which the exactness oracle checks against the
    store's contents after the run (an acked write must never be lost). *)
