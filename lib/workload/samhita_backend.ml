(** {!Backend_sig.S} over the Samhita DSM runtime. *)

(* [on_create] lets callers capture the concrete systems a kernel builds
   (e.g. to print a Harness.Report after the run). *)
let make ?(on_create = fun (_ : Samhita.System.t) -> ())
    ?(config = Samhita.Config.default) () : Backend_sig.backend =
  (module struct
    let name = "samhita"

    type system = Samhita.System.t
    type thread = Samhita.Thread_ctx.t
    type mutex = Samhita.Manager_shard.lock_id
    type barrier = Samhita.Manager_shard.barrier_id

    let create ~threads =
      let sys = Samhita.System.create ~config ~threads () in
      on_create sys;
      sys
    let mutex sys = Samhita.System.mutex sys
    let barrier sys ~parties = Samhita.System.barrier sys ~parties

    let spawn sys body =
      ignore (Samhita.System.spawn sys body : Samhita.Thread_ctx.t)

    let run = Samhita.System.run
    let elapsed_ns sys = Desim.Time.to_ns (Samhita.System.elapsed sys)
    let thread_id = Samhita.Thread_ctx.id
    let malloc t ~bytes = Samhita.Thread_ctx.malloc t ~bytes
    let free t ~addr ~bytes = Samhita.Thread_ctx.free t ~addr ~bytes
    let read_f64 = Samhita.Thread_ctx.read_f64
    let write_f64 = Samhita.Thread_ctx.write_f64
    let charge_flops = Samhita.Thread_ctx.charge_flops

    let charge_mem_ops t n =
      Samhita.Thread_ctx.charge t
        (float_of_int n *. config.Samhita.Config.t_mem)
    let now_ns = Samhita.Thread_ctx.now_ns
    let idle_until = Samhita.Thread_ctx.idle_until
    let lock = Samhita.Thread_ctx.mutex_lock
    let unlock = Samhita.Thread_ctx.mutex_unlock
    let barrier_wait = Samhita.Thread_ctx.barrier_wait
    let compute_ns = Samhita.Thread_ctx.compute_ns
    let sync_ns = Samhita.Thread_ctx.sync_ns
    let misses t = Samhita.Cache.misses (Samhita.Thread_ctx.cache t)
  end)

let default : Backend_sig.backend = make ()
