(** A deliberately buggy two-thread kernel used to validate RegCSan.

    Seeds exactly one instance of each defect class on its own word:
    a write-write data race, a read of an ordinary store no barrier
    published, mixed region/ordinary stores to one word, and a
    use-after-free — all with deterministic ordering, so the analyzer
    must report exactly four findings every run. *)

val run :
  ?on_create:(Samhita.System.t -> unit) ->
  ?config:Samhita.Config.t -> unit -> Samhita.System.t
(** Build, run and return the system. [Config.sanitize] is forced on;
    query {!Samhita.System.sanitizer} on the result for the findings.
    [on_create] runs after {!Samhita.System.create} but before any thread
    is spawned — the torture harness attaches its oracle probe there. *)
