type event = {
  e_client : int;
  e_key : int;
  e_op : Traffic.op;
  e_version : int;
}

type params = {
  traffic : Traffic.params;
  shards : int;
  service_flops : int;
}

let default_params =
  { traffic =
      { Traffic.clients = 16;
        requests = 2048;
        rate_rps = 500_000.;
        keys = 256;
        zipf_s = 0.9;
        read_fraction = 0.9;
        seed = 42 };
    shards = 4;
    service_flops = 32 }

type result = {
  params : params;
  threads : int;
  wall_ns : int;
  served : int;
  latencies_ns : int array;
  idle_ns : int;
  final_versions : int array;
  expected_versions : int array;
  history : event array;
}

(* Per-shard value stripes are padded to the largest DSM line any
   configuration uses (Kernel_util.isolation_pad) so two shards never
   share a line: a Put under shard lock A must not generate write traffic
   that invalidates shard B's hot keys at another worker. Within a
   stripe, key [k] (with [k mod shards = shard]) lives at slot
   [k / shards]. *)
let stripe_bytes ~keys ~shards =
  let keys_per_shard = (keys + shards - 1) / shards in
  let bytes = keys_per_shard * 8 in
  (bytes + Kernel_util.isolation_pad - 1)
  / Kernel_util.isolation_pad * Kernel_util.isolation_pad

module Make (B : Backend_sig.S) = struct
  let run ?(record_history = false) ?(on_latency = fun _ ~latency_ns:_ -> ())
      ~threads (p : params) =
    if threads <= 0 then invalid_arg "Kv.run: threads";
    if p.shards <= 0 then invalid_arg "Kv.run: shards";
    if p.service_flops < 0 then invalid_arg "Kv.run: service_flops";
    let tp = p.traffic in
    let keys = tp.Traffic.keys in
    let requests = Traffic.generate tp in
    (* Partition request indices, not requests, so recorded latencies line
       up with the generated stream by global index. *)
    let assignment = Array.make threads [] in
    Array.iteri
      (fun i r ->
         let w = r.Traffic.client mod threads in
         assignment.(w) <- i :: assignment.(w))
      requests;
    let assignment = Array.map (fun l -> Array.of_list (List.rev l)) assignment in
    let stripe = stripe_bytes ~keys ~shards:p.shards in
    let sys = B.create ~threads in
    let locks = Array.init p.shards (fun _ -> B.mutex sys) in
    let bar = B.barrier sys ~parties:threads in
    let base_addr = ref 0 in
    let latencies = Array.make (Array.length requests) 0 in
    let idle = Array.make threads 0 in
    let histories = Array.make threads [] in
    let final_versions = Array.make keys 0 in
    let slot base k = base + ((k mod p.shards) * stripe) + (k / p.shards * 8) in
    let body t =
      let tid = B.thread_id t in
      if tid = 0 then begin
        let base = B.malloc t ~bytes:(p.shards * stripe) in
        (* First-touch zeroing is ordinary stores; the barrier below
           publishes them, after which every access is under a shard
           lock (region stores — the legal RegC mix). *)
        for k = 0 to keys - 1 do
          B.write_f64 t (slot base k) 0.0
        done;
        base_addr := base
      end;
      B.barrier_wait t bar;
      let base = !base_addr in
      let start = B.now_ns t in
      let idle0 = ref 0 in
      Array.iter
        (fun i ->
           let r = requests.(i) in
           let arrival = start + r.Traffic.arrival_ns in
           (* Open-loop wait: a past arrival is a no-op and the request
              is served late — its latency records the queueing delay. *)
           let before = B.now_ns t in
           B.idle_until t arrival;
           idle0 := !idle0 + max 0 (arrival - before);
           let shard = r.Traffic.key mod p.shards in
           let addr = slot base r.Traffic.key in
           B.lock t locks.(shard);
           B.charge_flops t p.service_flops;
           let version =
             match r.Traffic.op with
             | Traffic.Get -> int_of_float (B.read_f64 t addr)
             | Traffic.Put ->
               let v = int_of_float (B.read_f64 t addr) + 1 in
               B.write_f64 t addr (float_of_int v);
               v
           in
           B.unlock t locks.(shard);
           let latency_ns = B.now_ns t - arrival in
           latencies.(i) <- latency_ns;
           on_latency r ~latency_ns;
           if record_history then
             histories.(tid)
             <- { e_client = r.Traffic.client;
                  e_key = r.Traffic.key;
                  e_op = r.Traffic.op;
                  e_version = version }
                :: histories.(tid))
        assignment.(tid);
      idle.(tid) <- !idle0;
      B.barrier_wait t bar;
      (* Post-run audit: read every key back under its shard lock. *)
      if tid = 0 then
        for shard = 0 to p.shards - 1 do
          B.lock t locks.(shard);
          let k = ref shard in
          while !k < keys do
            final_versions.(!k) <- int_of_float (B.read_f64 t (slot base !k));
            k := !k + p.shards
          done;
          B.unlock t locks.(shard)
        done
    in
    for _i = 1 to threads do
      B.spawn sys body
    done;
    B.run sys;
    let history =
      if record_history then
        Array.concat
          (Array.to_list (Array.map (fun l -> Array.of_list (List.rev l)) histories))
      else [||]
    in
    { params = p;
      threads;
      wall_ns = B.elapsed_ns sys;
      served = Array.length requests;
      latencies_ns = latencies;
      idle_ns = Array.fold_left ( + ) 0 idle;
      final_versions;
      expected_versions = Traffic.puts_per_key requests ~keys;
      history }
end

let run ?record_history ?on_latency (backend : Backend_sig.backend) ~threads p =
  let module B = (val backend) in
  let module M = Make (B) in
  M.run ?record_history ?on_latency ~threads p

let lost_writes r =
  let lost = ref [] in
  for k = Array.length r.final_versions - 1 downto 0 do
    if r.final_versions.(k) <> r.expected_versions.(k) then
      lost := (k, r.expected_versions.(k), r.final_versions.(k)) :: !lost
  done;
  !lost
