type mutex = {
  mutable holder : int;  (* thread id or -1 *)
  waiters : (unit -> unit) Queue.t;
}

type barrier = {
  parties : int;
  mutable arrived : int;
  mutable waiting : (unit -> unit) list;
}

type cond = { cwaiters : (unit -> unit) Queue.t }

type system = {
  engine : Desim.Engine.t;
  cfg : Config.t;
  machine : Machine.t;
  total : int;
  mutable next : int;
  mutable threads_rev : thread list;
}

and thread = {
  id : int;
  sys : system;
  (* One-element floatarray, not a mutable float field: a float field
     store boxes, and [accum] is written on every memory access. *)
  accum : floatarray;
  mutable m_compute : int;
  mutable m_sync : int;
  mutable m_idle : int;
}

let create ?(config = Config.default) ~threads () =
  if threads <= 0 then invalid_arg "Smp.Runtime.create: threads";
  if threads > config.Config.max_threads then
    invalid_arg
      (Printf.sprintf
         "Smp.Runtime.create: %d threads exceed the node's %d cores" threads
         config.Config.max_threads);
  { engine = Desim.Engine.create ();
    cfg = config;
    machine = Machine.create config;
    total = threads;
    next = 0;
    threads_rev = [] }

let engine s = s.engine
let machine s = s.machine
let config s = s.cfg

let mutex _s = { holder = -1; waiters = Queue.create () }

let barrier _s ~parties =
  if parties <= 0 then invalid_arg "Smp.Runtime.barrier: parties";
  { parties; arrived = 0; waiting = [] }

let cond _s = { cwaiters = Queue.create () }

let spawn s body =
  if s.next >= s.total then invalid_arg "Smp.Runtime.spawn: no slots left";
  let t =
    { id = s.next;
      sys = s;
      accum = Float.Array.make 1 0.;
      m_compute = 0;
      m_sync = 0;
      m_idle = 0 }
  in
  s.next <- s.next + 1;
  s.threads_rev <- t :: s.threads_rev;
  Desim.Engine.spawn s.engine ~name:(Printf.sprintf "pth%d" t.id)
    (fun () ->
       body t;
       (* Flush residual local time into the compute bucket. *)
       let a = Float.Array.unsafe_get t.accum 0 in
       if a > 0. then begin
         let d = Desim.Time.span_of_float_ns a in
         Float.Array.unsafe_set t.accum 0 0.;
         t.m_compute <- t.m_compute + d;
         Desim.Engine.delay d
       end);
  t

let run s = Desim.Engine.run s.engine
let threads s = List.rev s.threads_rev
let elapsed s = Desim.Engine.now s.engine

let thread_id t = t.id

let now t = Desim.Engine.now t.sys.engine

let sync_clock t =
  let a = Float.Array.unsafe_get t.accum 0 in
  if a > 0. then begin
    let d = Desim.Time.span_of_float_ns a in
    Float.Array.unsafe_set t.accum 0 0.;
    t.m_compute <- t.m_compute + d;
    Desim.Engine.delay d
  end

let malloc t ~bytes = Machine.alloc t.sys.machine ~bytes ~align:64

let charge t ns =
  Float.Array.unsafe_set t.accum 0 (Float.Array.unsafe_get t.accum 0 +. ns)

(* Virtual instant and idle wait — see the Samhita Thread_ctx twins; the
   serving workload timestamps requests with these on both backends. *)
let now_ns t =
  Desim.Time.to_ns (now t)
  + Desim.Time.span_of_float_ns (Float.Array.unsafe_get t.accum 0)

let idle_until t target =
  if target > now_ns t then begin
    sync_clock t;
    let gap = target - Desim.Time.to_ns (now t) in
    if gap > 0 then begin
      t.m_idle <- t.m_idle + gap;
      Desim.Engine.delay gap
    end
  end

let read_i64 t addr =
  charge t (Machine.read_cost t.sys.machine ~thread:t.id ~addr);
  Machine.read_i64 t.sys.machine addr

let write_i64 t addr v =
  charge t (Machine.write_cost t.sys.machine ~thread:t.id ~addr);
  Machine.write_i64 t.sys.machine addr v

let read_f64 t addr = Int64.float_of_bits (read_i64 t addr)
let write_f64 t addr v = write_i64 t addr (Int64.bits_of_float v)
let charge_flops t n = charge t (float_of_int n *. t.sys.cfg.Config.t_flop)

let lock t m =
  sync_clock t;
  let start = now t in
  Desim.Engine.delay t.sys.cfg.Config.t_lock;
  if m.holder = -1 then m.holder <- t.id
  else begin
    Desim.Engine.suspend ~register:(fun ~wake -> Queue.push wake m.waiters);
    (* The releaser handed us the lock. *)
    m.holder <- t.id
  end;
  t.m_sync <- t.m_sync + Desim.Time.diff (now t) start

let unlock t m =
  sync_clock t;
  let start = now t in
  if m.holder <> t.id then
    invalid_arg "Smp.Runtime.unlock: lock not held by thread";
  Desim.Engine.delay t.sys.cfg.Config.t_lock;
  (match Queue.take_opt m.waiters with
   | Some wake ->
     (* Direct hand-off: the holder field keeps a non-(-1) value until the
        woken waiter overwrites it, so a third thread cannot barge in. *)
     wake ()
   | None -> m.holder <- -1);
  t.m_sync <- t.m_sync + Desim.Time.diff (now t) start

let barrier_cost t parties =
  t.sys.cfg.Config.t_barrier_base
  + (parties * t.sys.cfg.Config.t_barrier_per_thread)

let barrier_wait t b =
  sync_clock t;
  let start = now t in
  b.arrived <- b.arrived + 1;
  if b.arrived < b.parties then
    Desim.Engine.suspend ~register:(fun ~wake ->
        b.waiting <- wake :: b.waiting)
  else begin
    let cost = barrier_cost t b.parties in
    let engine = t.sys.engine in
    List.iter
      (fun wake -> Desim.Engine.schedule engine ~delay:cost wake)
      b.waiting;
    b.waiting <- [];
    b.arrived <- 0;
    Desim.Engine.delay cost
  end;
  t.m_sync <- t.m_sync + Desim.Time.diff (now t) start

let cond_wait t c m =
  unlock t m;
  let start = now t in
  Desim.Engine.suspend ~register:(fun ~wake -> Queue.push wake c.cwaiters);
  t.m_sync <- t.m_sync + Desim.Time.diff (now t) start;
  lock t m

let cond_signal t c =
  sync_clock t;
  let start = now t in
  Desim.Engine.delay t.sys.cfg.Config.t_lock;
  (match Queue.take_opt c.cwaiters with Some wake -> wake () | None -> ());
  t.m_sync <- t.m_sync + Desim.Time.diff (now t) start

let cond_broadcast t c =
  sync_clock t;
  let start = now t in
  Desim.Engine.delay t.sys.cfg.Config.t_lock;
  Queue.iter (fun wake -> wake ()) c.cwaiters;
  Queue.clear c.cwaiters;
  t.m_sync <- t.m_sync + Desim.Time.diff (now t) start

let compute_ns t = t.m_compute
let sync_ns t = t.m_sync
let idle_ns t = t.m_idle
