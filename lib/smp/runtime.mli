(** The Pthreads-like runtime over the simulated SMP node.

    Threads are simulation processes using virtual-time batching: memory
    accesses and arithmetic accumulate cost locally; only synchronization
    operations interact with the event queue. Time accounting matches the
    DSM side: compute vs synchronization, so the two backends plot on the
    same axes. *)

type system
type thread
type mutex
type barrier
type cond

val create : ?config:Config.t -> threads:int -> unit -> system
(** Raises [Invalid_argument] if [threads] exceeds
    [Config.max_threads] (a single node is all the hardware there is). *)

val engine : system -> Desim.Engine.t
val machine : system -> Machine.t
val config : system -> Config.t

val mutex : system -> mutex
val barrier : system -> parties:int -> barrier
val cond : system -> cond

val spawn : system -> (thread -> unit) -> thread
val run : system -> unit
val threads : system -> thread list
val elapsed : system -> Desim.Time.t

(** {2 Thread operations} *)

val thread_id : thread -> int
val malloc : thread -> bytes:int -> int
(** 64-byte aligned, so separate allocations never share a coherence
    line (glibc-arena-style behaviour, and what makes "local allocation"
    false-sharing-free on the baseline too). *)

val read_f64 : thread -> int -> float
val write_f64 : thread -> int -> float -> unit
val read_i64 : thread -> int -> int64
val write_i64 : thread -> int -> int64 -> unit
val charge : thread -> float -> unit
val charge_flops : thread -> int -> unit

val now_ns : thread -> int
(** The thread's current virtual instant (global clock plus accumulated
    local cost), in nanoseconds. *)

val idle_until : thread -> int -> unit
(** Advance virtual time to at least the given absolute instant,
    accounting the gap as idle; past instants are a no-op. *)

val lock : thread -> mutex -> unit
val unlock : thread -> mutex -> unit
val barrier_wait : thread -> barrier -> unit
val cond_wait : thread -> cond -> mutex -> unit
val cond_signal : thread -> cond -> unit
val cond_broadcast : thread -> cond -> unit

val compute_ns : thread -> int
val sync_ns : thread -> int
val idle_ns : thread -> int
