type lock_id = int
type barrier_id = int
type cond_id = int

type grant_action =
  | Fresh
  | Patch of Update.t list * (int * int) list
  | Notices of (int * int) list

type grant = {
  lock_version : int;
  action : grant_action;
  wire_bytes : int;
}

type waiter = {
  w_thread : int;
  w_last_seen : int;
  w_endpoint : Fabric.Scl.endpoint;
  w_wake : grant -> unit;
}

(* One retained release: the lock version it produced, the fine-grained
   update log, and the home versions of the lines the log touched. *)
type history_entry = {
  h_version : int;
  h_log : Update.t list;
  h_line_versions : (int * int) list;
}

type lock_state = {
  mutable holder : int option;
  waiters : waiter Queue.t;
  mutable version : int;
  mutable history : history_entry list;  (* newest first *)
  touched : (int, int) Hashtbl.t;  (* line -> latest version under lock *)
}

type barrier_waiter = {
  b_thread : int;
  b_endpoint : Fabric.Scl.endpoint;
  b_wake : (int * int) list * int -> unit;
}

(* Per epoch: line id -> bitmask of writer thread ids. *)
type barrier_state = {
  parties : int;
  mutable epoch : int;
  mutable arrived : int;
  mutable bwaiters : barrier_waiter list;
  epoch_writers : (int, int) Hashtbl.t;
}

type cond_waiter = {
  c_thread : int;
  c_endpoint : Fabric.Scl.endpoint;
  c_wake : unit -> unit;
}

type cond_state = { cwaiters : cond_waiter Queue.t }

type t = {
  cfg : Config.t;
  layout : Layout.t;
  engine : Desim.Engine.t;
  endpoint : Fabric.Scl.endpoint;
  service : Desim.Resource.t;
  mutable cursor : int;  (* GAS bump pointer *)
  locks : (lock_id, lock_state) Hashtbl.t;
  barriers : (barrier_id, barrier_state) Hashtbl.t;
  conds : (cond_id, cond_state) Hashtbl.t;
  mutable next_id : int;
  (* Lease-based failure detection / recovery bookkeeping. *)
  mutable heartbeats : int;
  mutable leases_expired : int;
  mutable replayed : int;
}

let acquire_request_wire = 48
let ack_wire = 16
let grant_framing = 48
let notice_entry_wire = 12

let notice_wire notices = List.length notices * notice_entry_wire

let release_wire ~log ~line_versions =
  ack_wire + Update.log_wire_bytes log + notice_wire line_versions

let create cfg layout ~engine ~endpoint =
  { cfg;
    layout;
    engine;
    endpoint;
    service = Desim.Resource.create ~name:"manager" ();
    cursor = 0;
    locks = Hashtbl.create 64;
    barriers = Hashtbl.create 16;
    conds = Hashtbl.create 16;
    next_id = 1;
    heartbeats = 0;
    leases_expired = 0;
    replayed = 0 }

let endpoint t = t.endpoint
let service t = t.service

let fresh_id t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  id

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)

let align_up n a = (n + a - 1) / a * a

let alloc t ~kind ~bytes =
  if bytes <= 0 then invalid_arg "Manager.alloc: bytes must be positive";
  let alignment =
    match kind with
    | `Arena_chunk -> Config.line_bytes t.cfg
    | `Shared -> 8
    | `Large -> Home.stripe_bytes t.cfg
  in
  let base = align_up t.cursor alignment in
  t.cursor <- base + bytes;
  base

let gas_used t = t.cursor

(* ------------------------------------------------------------------ *)
(* Locks                                                               *)

let lock_state t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some s -> s
  | None -> invalid_arg "Manager: unknown lock"

let lock_create t =
  let id = fresh_id t in
  Hashtbl.replace t.locks id
    { holder = None;
      waiters = Queue.create ();
      version = 0;
      history = [];
      touched = Hashtbl.create 16 };
  id

(* Build the consistency action bringing a thread from [last_seen] up to
   the lock's current version. *)
let grant_for t st ~last_seen =
  let action =
    if last_seen >= st.version then Fresh
    else begin
      (* History covers the gap iff it reaches back to last_seen + 1. *)
      let covering =
        List.filter (fun h -> h.h_version > last_seen) st.history
      in
      let covered =
        List.length covering = st.version - last_seen
        && t.cfg.Config.update_log_history > 0
      in
      if covered then begin
        (* Oldest first so later stores overwrite earlier ones. *)
        let ordered = List.rev covering in
        let log = List.concat_map (fun h -> h.h_log) ordered in
        let lv = Hashtbl.create 16 in
        List.iter
          (fun h ->
             List.iter (fun (l, v) -> Hashtbl.replace lv l v)
               h.h_line_versions)
          ordered;
        Patch (log, Hashtbl.fold (fun l v acc -> (l, v) :: acc) lv [])
      end
      else
        Notices (Hashtbl.fold (fun l v acc -> (l, v) :: acc) st.touched [])
    end
  in
  let wire =
    grant_framing
    + (match action with
       | Fresh -> 0
       | Patch (log, lvs) -> Update.log_wire_bytes log + notice_wire lvs
       | Notices ns -> notice_wire ns)
  in
  { lock_version = st.version; action; wire_bytes = wire }

let lock_acquire t ~now:_ ~lock ~thread ~last_seen ~endpoint ~wake =
  let st = lock_state t lock in
  match st.holder with
  | None ->
    st.holder <- Some thread;
    `Granted (grant_for t st ~last_seen)
  | Some _ ->
    Queue.push
      { w_thread = thread; w_last_seen = last_seen; w_endpoint = endpoint;
        w_wake = wake }
      st.waiters;
    `Queued

let lock_release t ~now ~lock ~thread ~log ~line_versions =
  let st = lock_state t lock in
  (match st.holder with
   | Some h when h = thread -> ()
   | _ -> invalid_arg "Manager.lock_release: thread does not hold the lock");
  st.version <- st.version + 1;
  st.history <-
    { h_version = st.version; h_log = log; h_line_versions = line_versions }
    :: st.history;
  (let keep = t.cfg.Config.update_log_history in
   if List.length st.history > keep then
     st.history <- List.filteri (fun i _ -> i < keep) st.history);
  List.iter (fun (l, v) -> Hashtbl.replace st.touched l v) line_versions;
  match Queue.take_opt st.waiters with
  | None -> st.holder <- None
  | Some w ->
    st.holder <- Some w.w_thread;
    let g = grant_for t st ~last_seen:w.w_last_seen in
    let net = Fabric.Scl.network t.endpoint in
    (* Grant pushes ride the retrying primitive: a dropped push would
       otherwise strand the new holder forever. *)
    let arrival =
      Fabric.Scl.reliable_transfer net ~now
        ~src:(Fabric.Scl.node t.endpoint)
        ~dst:(Fabric.Scl.node w.w_endpoint)
        ~bytes:g.wire_bytes
    in
    Desim.Engine.schedule_at t.engine arrival (fun () -> w.w_wake g)

let lock_holder t lock = (lock_state t lock).holder
let lock_version t lock = (lock_state t lock).version

(* ------------------------------------------------------------------ *)
(* Blocking-state introspection (model-checker support). RegCCheck's
   deadlock analysis reads who holds and who queues on every sync object
   of a stalled branch to build the wait-for graph. Read-only. *)

let sorted_ids tbl =
  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let lock_ids t = sorted_ids t.locks

let lock_waiters t lock =
  let st = lock_state t lock in
  List.rev (Queue.fold (fun acc w -> w.w_thread :: acc) [] st.waiters)

(* ------------------------------------------------------------------ *)
(* Barriers                                                            *)

let barrier_state t barrier =
  match Hashtbl.find_opt t.barriers barrier with
  | Some s -> s
  | None -> invalid_arg "Manager: unknown barrier"

let barrier_create t ~parties =
  if parties <= 0 then invalid_arg "Manager.barrier_create: parties";
  let id = fresh_id t in
  Hashtbl.replace t.barriers id
    { parties;
      epoch = 0;
      arrived = 0;
      bwaiters = [];
      epoch_writers = Hashtbl.create 64 };
  id

let barrier_arrive t ~now ~barrier ~thread ~lines ~endpoint ~wake =
  if thread < 0 || thread > 61 then
    invalid_arg "Manager.barrier_arrive: thread id must fit a writer mask";
  let st = barrier_state t barrier in
  let bit = 1 lsl thread in
  List.iter
    (fun l ->
       let mask =
         Option.value (Hashtbl.find_opt st.epoch_writers l) ~default:0
       in
       Hashtbl.replace st.epoch_writers l (mask lor bit))
    lines;
  st.arrived <- st.arrived + 1;
  if st.arrived < st.parties then begin
    st.bwaiters <-
      { b_thread = thread; b_endpoint = endpoint; b_wake = wake }
      :: st.bwaiters;
    `Wait
  end
  else begin
    let all =
      Hashtbl.fold (fun l mask acc -> (l, mask) :: acc) st.epoch_writers []
    in
    let wire = ack_wire + notice_wire all in
    let net = Fabric.Scl.network t.endpoint in
    List.iter
      (fun w ->
         let arrival =
           Fabric.Scl.reliable_transfer net ~now
             ~src:(Fabric.Scl.node t.endpoint)
             ~dst:(Fabric.Scl.node w.b_endpoint)
             ~bytes:wire
         in
         Desim.Engine.schedule_at t.engine arrival (fun () ->
             w.b_wake (all, wire)))
      st.bwaiters;
    st.bwaiters <- [];
    st.arrived <- 0;
    st.epoch <- st.epoch + 1;
    Hashtbl.reset st.epoch_writers;
    `Released (all, wire)
  end

let barrier_epoch t barrier = (barrier_state t barrier).epoch
let barrier_ids t = sorted_ids t.barriers
let barrier_parties t barrier = (barrier_state t barrier).parties

let barrier_blocked t barrier =
  let st = barrier_state t barrier in
  List.sort Int.compare (List.map (fun w -> w.b_thread) st.bwaiters)

(* ------------------------------------------------------------------ *)
(* Condition variables                                                 *)

let cond_state t cond =
  match Hashtbl.find_opt t.conds cond with
  | Some s -> s
  | None -> invalid_arg "Manager: unknown condition variable"

let cond_create t =
  let id = fresh_id t in
  Hashtbl.replace t.conds id { cwaiters = Queue.create () };
  id

let cond_wait t ~cond ~thread ~endpoint ~wake =
  let st = cond_state t cond in
  Queue.push { c_thread = thread; c_endpoint = endpoint; c_wake = wake }
    st.cwaiters

let wake_one t ~now w =
  let net = Fabric.Scl.network t.endpoint in
  let arrival =
    Fabric.Scl.reliable_transfer net ~now
      ~src:(Fabric.Scl.node t.endpoint)
      ~dst:(Fabric.Scl.node w.c_endpoint)
      ~bytes:ack_wire
  in
  Desim.Engine.schedule_at t.engine arrival (fun () -> w.c_wake ())

let cond_signal t ~now ~cond =
  let st = cond_state t cond in
  match Queue.take_opt st.cwaiters with
  | None -> 0
  | Some w ->
    wake_one t ~now w;
    1

let cond_broadcast t ~now ~cond =
  let st = cond_state t cond in
  let n = Queue.length st.cwaiters in
  Queue.iter (fun w -> wake_one t ~now w) st.cwaiters;
  Queue.clear st.cwaiters;
  n

let cond_ids t = sorted_ids t.conds

let cond_blocked t cond =
  let st = cond_state t cond in
  List.rev (Queue.fold (fun acc w -> w.c_thread :: acc) [] st.cwaiters)

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)

let heartbeat_wire = 24

let note_heartbeat t = t.heartbeats <- t.heartbeats + 1

(* Recovery after the lease monitor declares physical server [dead]
   fail-stop: promote its backup in the directory, then replay surviving
   update logs. The manager's retained lock histories record, per
   release, the update log and the home versions it produced — any line
   homed on the dead server whose promoted replica is behind (a diff
   acked by the primary whose mirror never happened, e.g. a degraded
   write or an unreplicated run) is patched forward from the log, oldest
   release first. With synchronous mirroring the replica is normally
   already current and replay is a no-op safety net. Finally parked
   threads are rescheduled. *)
let recover t ~dir ~servers ~dead ~probe ~now =
  let promoted = Directory.promote dir ~dead in
  t.leases_expired <- t.leases_expired + 1;
  let psrv = servers.(promoted) in
  let replayed_here = ref 0 in
  let locks =
    Hashtbl.fold (fun id st acc -> (id, st) :: acc) t.locks []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (_, st) ->
       List.iter
         (fun h ->
            List.iter
              (fun (line, v) ->
                 if Home.server_of_line t.cfg ~line = dead
                    && Memory_server.version psrv line < v
                 then begin
                   List.iter
                     (fun u ->
                        if List.mem line (Update.lines_touched t.layout u)
                        then
                          Update.apply_to_line t.layout u ~line
                            (Memory_server.line psrv line))
                     h.h_log;
                   Memory_server.force_version psrv line v;
                   incr replayed_here;
                   match probe with
                   | Some p ->
                     p.Probe.on_publish ~thread:(-1) ~time:now
                       ~server:promoted ~line ~version:v
                       ~data:(Memory_server.line psrv line)
                   | None -> ()
                 end)
              h.h_line_versions)
         (List.rev st.history))
    locks;
  t.replayed <- t.replayed + !replayed_here;
  List.iter
    (fun wake -> Desim.Engine.schedule_at t.engine now wake)
    (Directory.take_waiters dir);
  (promoted, !replayed_here)

let heartbeats t = t.heartbeats
let leases_expired t = t.leases_expired
let replayed_updates t = t.replayed
