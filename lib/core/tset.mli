(** Growable thread-id sets (dense bitmaps over an [int array]).

    Replaces the historical single-int sharer/writer bitmasks whose 63-bit
    width capped the system at 62 threads. Iteration order is ascending
    thread id, matching the old mask-scan order, so protocol decisions that
    depend on enumeration order are unchanged for <= 62 threads. *)

type t

val create : unit -> t
(** The empty set. Capacity grows on demand. *)

val singleton : int -> t
val of_list : int list -> t
val copy : t -> t
val clear : t -> unit

val add : t -> int -> unit
(** Raises [Invalid_argument] on a negative id. *)

val remove : t -> int -> unit
val mem : t -> int -> bool
val is_empty : t -> bool
val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** Ascending thread id. *)

val to_list : t -> int list
(** Ascending thread id. *)

val exists_other : t -> self:int -> bool
(** [exists_other t ~self] is [true] iff [t] contains a member other than
    [self] — the "did anyone else write this line?" test at barriers. *)

val equal : t -> t -> bool
val union_into : into:t -> t -> unit
val pp : Format.formatter -> t -> unit
