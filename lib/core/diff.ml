type span = { offset : int; data : bytes }

(* Packed representation: span boundaries live in two int arrays and the
   changed bytes in one concatenated payload buffer, filled in offset
   order. Building it allocates exactly three blocks (plus the record)
   regardless of how many spans the line produced — the span-list layout
   paid a Bytes.sub, a record and two conses per span, which dominated
   Diff.make for fragmented lines (e.g. byte-interleaved false sharing). *)
type t = {
  line : int;
  count : int;  (* number of spans *)
  offs : int array;  (* span offsets within the line, ascending *)
  lens : int array;  (* span lengths, parallel to [offs] *)
  payload : bytes;  (* span bytes, concatenated in offset order *)
}

(* Diffs are byte-exact: a span carries only bytes that actually changed.
   Coalescing across small unchanged gaps would be cheaper on the wire but
   is unsound under the multiple-writer protocol — an unchanged byte equals
   the writer's twin, not necessarily the home's current contents, so
   shipping it can roll back a concurrent writer's disjoint store (e.g.
   byte-interleaved false sharing). Hence coalesce_gap = 1: any unchanged
   byte terminates the run. *)
let coalesce_gap = 1
let span_framing = 12
let diff_framing = 16

(* Short copies skip the C-call overhead of [Bytes.blit]. *)
let small_blit src spos dst dpos len =
  if len <= 16 then
    for k = 0 to len - 1 do
      Bytes.unsafe_set dst (dpos + k) (Bytes.unsafe_get src (spos + k))
    done
  else Bytes.blit src spos dst dpos len

(* Span-boundary scratch reused across calls, grown geometrically and
   never shrunk. Domain-local (ParDES runs [make] concurrently from every
   client partition's domain when threads flush their dirty lines);
   within one domain [make] never re-enters (it calls no user code), so
   handing out the arrays before the scan is safe. *)
type scratch = { mutable offs : int array; mutable lens : int array }

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { offs = Array.make 128 0; lens = Array.make 128 0 })

let ensure_scratch n =
  let s = Domain.DLS.get scratch_key in
  let cur = Array.length s.offs in
  if n >= cur then begin
    let cap = ref cur in
    while n >= !cap do
      cap := !cap * 2
    done;
    let offs = Array.make !cap 0 and lens = Array.make !cap 0 in
    Array.blit s.offs 0 offs 0 cur;
    Array.blit s.lens 0 lens 0 cur;
    s.offs <- offs;
    s.lens <- lens
  end;
  s

let make (layout : Layout.t) ~line ~twin ~current ~dirty_pages =
  if Bytes.length twin <> layout.Layout.line_bytes
     || Bytes.length current <> layout.Layout.line_bytes
  then invalid_arg "Diff.make: buffers must be line-sized";
  (* One pass over the dirty pages records span boundaries in the scratch
     arrays; the exact-size result is copied out afterwards. The scan
     compares 8 bytes at a time (a native 64-bit load; the typer
     specializes [<>] at int64 to an unboxed comparison) and narrows to
     byte granularity only inside words that differ or at a run boundary,
     so the recorded runs are byte-for-byte those of the scalar scan.

     The emit sites are spelled out inline rather than shared through
     local closures: with no closure capturing them, the state refs below
     compile to mutable locals (registers), and scratch is pre-sized to
     the worst case (alternating differ/equal bytes) so emits skip the
     capacity check. Both matter — the closured version measured ~1.6x
     slower on fragmented lines. *)
  let scratch = ensure_scratch ((layout.Layout.line_bytes / 2) + 1) in
  let offs = scratch.offs and lens = scratch.lens in
  let count = ref 0 and total = ref 0 in
  let run_start = ref (-1) in
  let page = layout.Layout.page_bytes in
  for p = 0 to layout.Layout.pages_per_line - 1 do
    if dirty_pages land (1 lsl p) <> 0 then begin
      let lo = p * page and hi = (p + 1) * page in
      let word_end = lo + ((hi - lo) land lnot 7) in
      let i = ref lo in
      while !i < word_end do
        (* A differing word falls back to the plain byte loop. Two fancier
           schemes were measured and rejected: an all-bytes-differ fast
           path (has-zero-byte trick on the XOR) taxes the partial-word
           words every numeric kernel produces — a double's mantissa
           changes, its exponent byte does not — and walking the word's
           bytes out of the XOR image with shift-and-mask tests loses to
           the byte reloads, which hit L1 and cost less than the extra
           shifts and branches. *)
        (if Bytes.get_int64_ne twin !i <> Bytes.get_int64_ne current !i
         then
           for j = !i to !i + 7 do
             if Bytes.unsafe_get twin j <> Bytes.unsafe_get current j
             then begin
               if !run_start < 0 then run_start := j
             end
             else if !run_start >= 0 then begin
               let n = !count in
               Array.unsafe_set offs n !run_start;
               Array.unsafe_set lens n (j - !run_start);
               total := !total + (j - !run_start);
               count := n + 1;
               run_start := -1
             end
           done
         else if !run_start >= 0 then begin
           let n = !count in
           Array.unsafe_set offs n !run_start;
           Array.unsafe_set lens n (!i - !run_start);
           total := !total + (!i - !run_start);
           count := n + 1;
           run_start := -1
         end);
        i := !i + 8
      done;
      for j = word_end to hi - 1 do
        if Bytes.unsafe_get twin j <> Bytes.unsafe_get current j then begin
          if !run_start < 0 then run_start := j
        end
        else if !run_start >= 0 then begin
          let n = !count in
          Array.unsafe_set offs n !run_start;
          Array.unsafe_set lens n (j - !run_start);
          total := !total + (j - !run_start);
          count := n + 1;
          run_start := -1
        end
      done;
      (* Runs never cross a page boundary (matching the scalar scan, which
         flushed at each region's end). *)
      if !run_start >= 0 then begin
        let n = !count in
        Array.unsafe_set offs n !run_start;
        Array.unsafe_set lens n (hi - !run_start);
        total := !total + (hi - !run_start);
        count := n + 1;
        run_start := -1
      end
    end
  done;
  if !count = 0 then
    { line; count = 0; offs = [||]; lens = [||]; payload = Bytes.empty }
  else begin
    let n = !count in
    let offs = Array.sub offs 0 n in
    let lens = Array.sub lens 0 n in
    let payload = Bytes.create !total in
    let pos = ref 0 in
    for i = 0 to n - 1 do
      let len = Array.unsafe_get lens i in
      small_blit current (Array.unsafe_get offs i) payload !pos len;
      pos := !pos + len
    done;
    { line; count = n; offs; lens; payload }
  end

let apply t buf =
  let pos = ref 0 in
  for i = 0 to t.count - 1 do
    let len = Array.unsafe_get t.lens i in
    small_blit t.payload !pos buf (Array.unsafe_get t.offs i) len;
    pos := !pos + len
  done

let is_empty t = t.count = 0
let span_count t = t.count

let payload_bytes t = Bytes.length t.payload

let wire_bytes t =
  diff_framing + (span_framing * t.count) + payload_bytes t

let spans (t : t) =
  let rec build i pos acc =
    if i < 0 then acc
    else
      let pos = pos - t.lens.(i) in
      let data = Bytes.sub t.payload pos t.lens.(i) in
      build (i - 1) pos ({ offset = t.offs.(i); data } :: acc)
  in
  build (t.count - 1) (Bytes.length t.payload) []
