(* Logical-to-physical stripe map. Healthy systems have the identity map
   and pay nothing; after a crash the manager's recovery protocol repoints
   the dead logical server at its promoted backup. Threads that hit a dead
   physical node park here until recovery wakes them. *)

type t = {
  memory_servers : int;
  (* physical.(logical) = index of the Memory_server currently serving
     that logical stripe slot. Identity until a promotion. *)
  physical : int array;
  (* The physical server declared fail-stop dead, once detected. A thread
     can observe deadness (Scl.Node_dead) before the manager's lease
     expires; [failed] distinguishes "recovery already ran" from "wait for
     it". *)
  mutable dead : int option;
  mutable waiters : (unit -> unit) list;
  mutable promotions : int;
  (* Home-migration overrides: line -> logical server, consulted before
     the striped default. Empty (and never probed beyond one Hashtbl
     lookup on a 0-entry table) unless home migration ran. *)
  rehome : (int, int) Hashtbl.t;
  (* Configuration epoch, monotonically increasing: bumped on every lease
     expiry (promotion). epochs.(logical) is the epoch under which that
     slot's current mapping was installed — clients stamp requests with
     it and fence replies whose slot epoch moved mid-flight. All zero
     until a promotion, so healthy runs never see a fence. *)
  mutable cur_epoch : int;
  epochs : int array;
  (* Gray-failure bookkeeping. [rejoined] marks that the (falsely)
     suspected server has been resynced back in as a backup. *)
  mutable rejoined : bool;
  mutable suspicions : int;
  mutable false_suspicions : int;
  mutable fenced : int;
  mutable rejoins : int;
}

exception Stale_epoch

let create (cfg : Config.t) =
  { memory_servers = cfg.Config.memory_servers;
    physical = Array.init cfg.Config.memory_servers Fun.id;
    dead = None;
    waiters = [];
    promotions = 0;
    rehome = Hashtbl.create 64;
    cur_epoch = 0;
    epochs = Array.make cfg.Config.memory_servers 0;
    rejoined = false;
    suspicions = 0;
    false_suspicions = 0;
    fenced = 0;
    rejoins = 0 }

let physical_of_logical t logical =
  if logical < 0 || logical >= t.memory_servers then
    invalid_arg "Directory.physical_of_logical: bad logical server";
  t.physical.(logical)

let logical_of_line t cfg ~line =
  match Hashtbl.find_opt t.rehome line with
  | Some logical -> logical
  | None -> Home.server_of_line cfg ~line

let server_of_line t cfg ~line = t.physical.(logical_of_line t cfg ~line)

let set_home t ~line ~logical =
  if logical < 0 || logical >= t.memory_servers then
    invalid_arg "Directory.set_home: bad logical server";
  Hashtbl.replace t.rehome line logical

let rehomed t = Hashtbl.length t.rehome

(* Primary-backup placement: the backup of server [i] is its ring
   successor. With replication on, [memory_servers >= 2] guarantees the
   backup is a different node. *)
let backup_of t i = (i + 1) mod t.memory_servers

let failed t phys = t.dead = Some phys

let promote ?epoch t ~dead =
  if t.dead <> None then
    invalid_arg "Directory.promote: a server already failed (single-failure \
                 model)";
  (* The new epoch comes from the lease-expiring manager shard when one
     drove the recovery; it can only move the directory epoch forward. *)
  let e =
    max (t.cur_epoch + 1) (Option.value epoch ~default:(t.cur_epoch + 1))
  in
  t.cur_epoch <- e;
  let promoted = backup_of t dead in
  (* Every logical slot mapped at the dead physical server (the identity
     slot, pre-promotion) repoints to the promoted backup and is stamped
     with the new epoch — a round trip that resolved the slot before the
     promotion carries the old stamp and will be fenced. *)
  Array.iteri
    (fun logical phys ->
       if phys = dead then begin
         t.physical.(logical) <- promoted;
         t.epochs.(logical) <- e
       end)
    t.physical;
  t.dead <- Some dead;
  t.promotions <- t.promotions + 1;
  promoted

let await_recovery t ~wake = t.waiters <- wake :: t.waiters

let take_waiters t =
  let ws = List.rev t.waiters in
  t.waiters <- [];
  ws

let promotions t = t.promotions

let epoch t = t.cur_epoch

let epoch_of t ~logical =
  if logical < 0 || logical >= t.memory_servers then
    invalid_arg "Directory.epoch_of: bad logical server";
  t.epochs.(logical)

let note_fenced t = t.fenced <- t.fenced + 1

let fence t ~logical ~epoch =
  if t.epochs.(logical) <> epoch then begin
    note_fenced t;
    raise Stale_epoch
  end

let rejoined t = t.rejoined

let note_suspicion t = t.suspicions <- t.suspicions + 1
let note_false_suspicion t = t.false_suspicions <- t.false_suspicions + 1

let note_rejoin t =
  t.rejoined <- true;
  t.rejoins <- t.rejoins + 1

let suspicions t = t.suspicions
let false_suspicions t = t.false_suspicions
let fenced t = t.fenced
let rejoins t = t.rejoins
