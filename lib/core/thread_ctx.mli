(** A Samhita compute thread: the runtime a thread's memory accesses and
    synchronization operations flow through.

    This module implements the protocol side of the paper:

    - {b Demand paging}: accesses go through the thread's software cache;
      a miss fetches the whole line from its home memory server and — with
      prefetching enabled — asynchronously requests the adjacent line.
    - {b Regional consistency}: stores issued while at least one mutex is
      held belong to a {e consistency region} and are logged fine-grained
      (standing in for the paper's LLVM store instrumentation); stores
      outside are {e ordinary} and tracked by twin + per-page dirty bits.
      Release flushes the region log to the homes and deposits it with the
      manager; acquire patches (or invalidates) stale cached lines; a
      barrier flushes ordinary diffs and exchanges write notices.
    - {b Virtual-time batching}: cached accesses accumulate cost locally;
      the thread synchronizes with the global clock only at protocol
      interactions, keeping simulation cost proportional to protocol
      events.

    Time accounting follows the paper's measurement split: miss stalls
    count as {e compute} time, lock/barrier/condvar operations as
    {e synchronization} time, allocation as its own bucket. *)

type t

type env = {
  cfg : Config.t;
  layout : Layout.t;
  engine : Desim.Engine.t;
  network : Fabric.Network.t;
  servers : Memory_server.t array;
  dir : Directory.t;
      (** Logical-to-physical stripe map; identity until a crash recovery
          promotes a backup ({!Directory}). *)
  cp : Control_plane.t;
      (** The sharded control plane; sync objects resolve to their shard
          per request, so a shard takeover is picked up transparently. *)
  sc : Coherence_sc.t;  (** Directory for the Sc_invalidate model. *)
  san : Analysis.Regcsan.t option;
      (** RegCSan access-stream analyzer; [None] (the default) costs one
          branch per access. *)
  probe : Probe.t option;
      (** Protocol-event observer (torture oracle); [None] (the default)
          costs one branch per event site. *)
}
(** Shared runtime a thread plugs into (built by {!System}). *)

val create : env -> id:int -> node:Fabric.Network.node -> t

val id : t -> int
val env : t -> env
val cache : t -> Cache.t
val endpoint : t -> Fabric.Scl.endpoint

(** {2 Memory access} *)

val read_f64 : t -> int -> float
(** Read the double at a byte address (8-aligned). *)

val write_f64 : t -> int -> float -> unit

val read_i64 : t -> int -> int64
val write_i64 : t -> int -> int64 -> unit

val read_f32 : t -> int -> float
(** 4-byte float at a 4-aligned address. *)

val write_f32 : t -> int -> float -> unit
val read_i32 : t -> int -> int32
val write_i32 : t -> int -> int32 -> unit

val read_u8 : t -> int -> int
(** Single byte (0..255); no alignment requirement. *)

val write_u8 : t -> int -> int -> unit

val read_bytes : t -> int -> len:int -> bytes
(** Bulk copy out of the GAS, crossing line boundaries as needed; charges
    one cached-access cost per 8 bytes (plus any miss stalls). *)

val write_bytes : t -> int -> bytes -> unit
(** Bulk store; inside a consistency region the whole range is logged as
    fine-grained updates, otherwise it dirties the touched pages. *)

val charge : t -> float -> unit
(** Accumulate [ns] of pure compute cost (the workload's arithmetic). *)

val charge_flops : t -> int -> unit

val now_ns : t -> int
(** The thread's current virtual instant in nanoseconds: the global clock
    plus locally accumulated (not yet synchronized) cost. *)

val idle_until : t -> int -> unit
(** Advance virtual time to at least the given absolute instant (ns),
    accounting the gap as {e idle} time (neither compute nor sync). A
    target in the past is a no-op. Open-loop traffic generators use this
    to wait for the next pre-drawn arrival. *)

(** {2 Allocation} *)

val malloc : t -> bytes:int -> int
(** The three-strategy allocator: arena ([bytes <= small_threshold]),
    manager shared zone, or stripe-aligned large allocation. *)

val free : t -> addr:int -> bytes:int -> unit
(** Arena blocks are recycled thread-locally; shared-zone and large blocks
    are abandoned (the paper does not describe reclamation for them). *)

(** {2 Synchronization (with RegC consistency actions)} *)

val mutex_lock : t -> Manager_shard.lock_id -> unit
val mutex_unlock : t -> Manager_shard.lock_id -> unit
val barrier_wait : t -> Manager_shard.barrier_id -> unit

val cond_wait : t -> Manager_shard.cond_id -> Manager_shard.lock_id -> unit
(** Pthreads semantics: atomically releases the mutex and sleeps;
    re-acquires before returning. *)

val cond_signal : t -> Manager_shard.cond_id -> unit
val cond_broadcast : t -> Manager_shard.cond_id -> unit

val in_consistency_region : t -> bool

val held_locks : t -> Manager_shard.lock_id list
(** Locks the thread currently holds, innermost first. RegCCheck's
    deadlock detector combines this with {!Manager}'s waiter introspection
    to build the wait-for graph of a stalled branch. *)

(** {2 Lifecycle and accounting} *)

val finish : t -> unit
(** Flush residual local time into the metrics (call at thread-body end;
    {!System.spawn} does). Dirty cache lines are deliberately {e not}
    flushed: RegC makes writes visible at synchronization points only. *)

val compute_ns : t -> int
val sync_ns : t -> int
val alloc_ns : t -> int

val idle_ns : t -> int
(** Time spent parked in {!idle_until} waiting for traffic. *)

val lock_acquires : t -> int
val barrier_waits : t -> int

val failover_waits : t -> int
(** Times this thread hit a dead memory server or manager shard and re-ran
    the interaction through the directory / control plane (after parking
    for recovery if needed). *)
