(** Logical-to-physical stripe map for crash fault tolerance.

    {!Home.server_of_line} computes the {e logical} home of a line; this
    module maps logical servers to the physical {!Memory_server} currently
    serving them. Healthy systems carry the identity map (one array read
    on the fetch path); after a fail-stop crash the manager's recovery
    protocol {!promote}s the dead server's backup and repoints the map, so
    every subsequent fetch/flush lands on the promoted replica without the
    threads knowing the topology changed. *)

type t

exception Stale_epoch
(** A round trip resolved its target under an epoch that moved before the
    reply landed (a promotion happened mid-flight, or the requester is a
    zombie-side stale hint). The protocol layer treats it like a bounced
    request: re-resolve via the directory and re-run — never apply. *)

val create : Config.t -> t

val physical_of_logical : t -> int -> int
(** Physical server index currently serving a logical stripe slot. *)

val logical_of_line : t -> Config.t -> line:int -> int
(** Logical home of a line: the home-migration override if one exists,
    otherwise the striped default {!Home.server_of_line}. *)

val server_of_line : t -> Config.t -> line:int -> int
(** [physical_of_logical] composed with {!logical_of_line}. *)

val set_home : t -> line:int -> logical:int -> unit
(** Record a home migration: [line]'s logical home becomes [logical]. *)

val rehomed : t -> int
(** Number of lines whose home has migrated off the striped default. *)

val backup_of : t -> int -> int
(** Primary-backup placement: the backup of server [i] is [(i + 1) mod
    memory_servers]. *)

val failed : t -> int -> bool
(** Whether this physical server has been declared dead {e and} recovery
    has already repointed the map (threads observing [Scl.Node_dead]
    before that must park via {!await_recovery}). *)

val promote : ?epoch:int -> t -> dead:int -> int
(** Declare physical server [dead] failed and repoint every logical slot
    it served at its backup, stamping each repointed slot with the new
    epoch; returns the promoted physical index. [epoch], when given, is
    the expiring manager shard's epoch — the directory epoch advances to
    at least [cur_epoch + 1] regardless (monotone). Raises
    [Invalid_argument] on a second failure (single-failure model). *)

val await_recovery : t -> wake:(unit -> unit) -> unit
(** Park a blocked thread's wake callback until recovery completes. *)

val take_waiters : t -> (unit -> unit) list
(** Drain the parked wake callbacks (called by the recovery protocol),
    oldest first. *)

val promotions : t -> int

(** {2 Epochs and fencing}

    The configuration epoch is the recovery protocol's defense against
    gray failures: it is bumped on every lease expiry and stamped onto
    the repointed directory slots, so traffic resolved under the old
    mapping — a zombie primary's acks, a stale client's cached hint — is
    detectably stale. All zero until a promotion; healthy runs never
    fence. *)

val epoch : t -> int
(** Current configuration epoch (0 until the first promotion). *)

val epoch_of : t -> logical:int -> int
(** Epoch under which this logical slot's current mapping was installed.
    Clients capture it before a round trip and fence the reply if it
    moved. *)

val note_fenced : t -> unit
(** Count a fenced message without raising (the asynchronous prefetch
    path, which aborts its pending slot instead of unwinding). *)

val fence : t -> logical:int -> epoch:int -> unit
(** Validate a completed round trip: if [logical]'s slot epoch no longer
    equals the [epoch] captured at send time, count the fenced message
    and raise {!Stale_epoch} — the caller must re-resolve and re-run
    before any state mutates. *)

val rejoined : t -> bool
(** Whether the suspected server has been resynced back in as a backup
    (see [Control_plane.rejoin_server]). *)

(** {2 Failure-detection accounting} *)

val note_suspicion : t -> unit
(** A lease expired: the detector suspects a server. *)

val note_false_suspicion : t -> unit
(** The suspected server was not crash-dead — a gray failure fooled the
    detector. *)

val note_rejoin : t -> unit
(** The suspected server rejoined as a backup after the heal. *)

val suspicions : t -> int
val false_suspicions : t -> int
val fenced : t -> int
val rejoins : t -> int
