(** Logical-to-physical stripe map for crash fault tolerance.

    {!Home.server_of_line} computes the {e logical} home of a line; this
    module maps logical servers to the physical {!Memory_server} currently
    serving them. Healthy systems carry the identity map (one array read
    on the fetch path); after a fail-stop crash the manager's recovery
    protocol {!promote}s the dead server's backup and repoints the map, so
    every subsequent fetch/flush lands on the promoted replica without the
    threads knowing the topology changed. *)

type t

val create : Config.t -> t

val physical_of_logical : t -> int -> int
(** Physical server index currently serving a logical stripe slot. *)

val logical_of_line : t -> Config.t -> line:int -> int
(** Logical home of a line: the home-migration override if one exists,
    otherwise the striped default {!Home.server_of_line}. *)

val server_of_line : t -> Config.t -> line:int -> int
(** [physical_of_logical] composed with {!logical_of_line}. *)

val set_home : t -> line:int -> logical:int -> unit
(** Record a home migration: [line]'s logical home becomes [logical]. *)

val rehomed : t -> int
(** Number of lines whose home has migrated off the striped default. *)

val backup_of : t -> int -> int
(** Primary-backup placement: the backup of server [i] is [(i + 1) mod
    memory_servers]. *)

val failed : t -> int -> bool
(** Whether this physical server has been declared dead {e and} recovery
    has already repointed the map (threads observing [Scl.Node_dead]
    before that must park via {!await_recovery}). *)

val promote : t -> dead:int -> int
(** Declare physical server [dead] failed and repoint every logical slot
    it served at its backup; returns the promoted physical index. Raises
    [Invalid_argument] on a second failure (single-failure model). *)

val await_recovery : t -> wake:(unit -> unit) -> unit
(** Park a blocked thread's wake callback until recovery completes. *)

val take_waiters : t -> (unit -> unit) list
(** Drain the parked wake callbacks (called by the recovery protocol),
    oldest first. *)

val promotions : t -> int
