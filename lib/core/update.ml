type t = { addr : int; data : bytes }

let framing = 12

let of_i64 ~addr v =
  let data = Bytes.create 8 in
  Bytes.set_int64_le data 0 v;
  { addr; data }

let i64_data v =
  let data = Bytes.create 8 in
  Bytes.set_int64_le data 0 v;
  data

(* Append a store to a region log (newest record first). With [coalesce]
   the new store merges into the head record when it overwrites it exactly
   or extends it contiguously upward — the two shapes the region-local
   store patterns produce (a variable updated repeatedly; adjacent fields
   written in order). Merging only ever touches the head, so the log's
   oldest-first replay semantics are unchanged: the merged record carries
   the same final bytes the two records would have produced. *)
let append ~coalesce log ~addr data =
  match log with
  | prev :: rest when coalesce ->
    let plen = Bytes.length prev.data in
    if addr = prev.addr && Bytes.length data = plen then
      { addr; data } :: rest
    else if addr = prev.addr + plen then
      { addr = prev.addr; data = Bytes.cat prev.data data } :: rest
    else { addr; data } :: log
  | _ -> { addr; data } :: log

let wire_bytes t = framing + Bytes.length t.data

let log_wire_bytes log =
  List.fold_left (fun acc u -> acc + wire_bytes u) 0 log

let apply_to_line (layout : Layout.t) t ~line buf =
  let len = Bytes.length t.data in
  let base = Layout.line_base layout line in
  let lo = max t.addr base in
  let hi = min (t.addr + len) (base + layout.Layout.line_bytes) in
  if lo < hi then
    Bytes.blit t.data (lo - t.addr) buf (lo - base) (hi - lo)

let lines_touched layout t =
  let len = Bytes.length t.data in
  if len = 0 then []
  else begin
    let first, last = Layout.lines_spanning layout ~addr:t.addr ~len in
    let rec build i acc = if i < first then acc else build (i - 1) (i :: acc) in
    build last []
  end
