type t = {
  cfg : Config.t;
  layout : Layout.t;
  engine : Desim.Engine.t;
  network : Fabric.Network.t;
  servers : Memory_server.t array;
  dir : Directory.t;
  cp : Control_plane.t;
  sc : Coherence_sc.t;
  san : Analysis.Regcsan.t option;
  total_threads : int;
  first_compute_node : int;
  mutable threads_rev : Thread_ctx.t list;
  mutable next_thread : int;
  (* Atomic: with domains > 1, client partitions increment it from their
     own domains while hub-side monitor processes poll it. *)
  finished : int Atomic.t;
  mutable probe : Probe.t option;
}

(* The lease-based failure detector (active when replication is on): each
   control-plane shard owns a monitor process that, every
   [lease_interval], runs a heartbeat round trip to each live memory
   server in its slice (servers are partitioned round-robin across
   shards; with one shard that is every server, in index order — the
   classic path). The round trips ride the retrying primitive, so a
   transient drop only delays renewal; a fail-stop crash exhausts the
   retry budget and escalates to [Node_dead] — the lease is expired and
   {!Control_plane.recover_server} promotes the backup, replays the
   surviving update logs of every shard and wakes parked threads. The
   monitor exits once every spawned thread has finished (it must: a
   sleeping process keeps the engine's queue non-empty forever), or when
   its own host shard dies. *)
let spawn_lease_monitor t ~shard:si ~subset =
  let name =
    if Control_plane.shard_count t.cp = 1 then "lease-monitor"
    else Printf.sprintf "lease-monitor%d" si
  in
  Desim.Engine.spawn t.engine ~name (fun () ->
      let net = t.network in
      let sh = Control_plane.shard t.cp si in
      let mgr_node = Fabric.Scl.node (Manager_shard.endpoint sh) in
      let alive = ref true in
      let rec loop () =
        Desim.Engine.delay t.cfg.Config.lease_interval;
        if
          Atomic.get t.finished < t.next_thread
          && !alive
          && not (Control_plane.shard_failed t.cp si)
        then begin
          let expired = ref None in
          List.iter
            (fun i ->
               if !expired = None && !alive && not (Directory.failed t.dir i)
               then begin
                 let snode =
                   Fabric.Scl.node (Memory_server.endpoint t.servers.(i))
                 in
                 try
                   let arrival =
                     Fabric.Scl.reliable_transfer net
                       ~now:(Desim.Engine.now t.engine)
                       ~src:mgr_node ~dst:snode
                       ~bytes:Manager_shard.heartbeat_wire
                   in
                   ignore
                     (Fabric.Scl.reliable_transfer net ~now:arrival
                        ~src:snode ~dst:mgr_node
                        ~bytes:Manager_shard.ack_wire
                      : Desim.Time.t);
                   Manager_shard.note_heartbeat sh
                 with Fabric.Scl.Node_dead (n, give_up) ->
                   (* If our own host shard crashed the transfer blames the
                      source; the shard monitor owns that failure. *)
                   if n = mgr_node then alive := false
                   else expired := Some (i, give_up)
               end)
            subset;
          (match !expired with
           | None -> ()
           | Some (i, give_up) ->
             (* The shard knows at the give-up instant of its last
                retransmission; detection, promotion, replay and wakeups
                all land there (replay cost is charged to the control
                plane's service loops implicitly via the blocked threads'
                own re-issued round trips). *)
             if Desim.Time.( < ) (Desim.Engine.now t.engine) give_up then
               Desim.Engine.delay
                 (Desim.Time.diff give_up (Desim.Engine.now t.engine));
             let now = Desim.Engine.now t.engine in
             (* Classify the suspicion: a partitioned (or stalled) victim
                is alive — the detector cannot tell, but the run's ground
                truth can, and the metrics report the false-positive
                rate. Recovery proceeds identically either way; only the
                epoch fence makes the false case safe. *)
             Directory.note_suspicion t.dir;
             let truly_dead =
               match Fabric.Network.faults t.network with
               | Some f -> Fabric.Faults.node_dead f ~node:(1 + i) ~at:now
               | None -> false
             in
             if not truly_dead then Directory.note_false_suspicion t.dir;
             (match t.probe with
              | Some p ->
                p.Probe.on_crash ~time:now ~node:(1 + i) ~server:i
              | None -> ());
             let promoted, replayed =
               Control_plane.recover_server t.cp ~dir:t.dir
                 ~servers:t.servers ~dead:i ~probe:t.probe ~now
                 ~detecting:si
             in
             (match t.probe with
              | Some p ->
                p.Probe.on_recovery ~time:now ~failed:i ~promoted ~replayed
              | None -> ()));
          (* Gray-failure runs only: probe the suspected server after its
             lease expired. While the partition is open every probe
             attempt dies at the wall (a pure timing computation — no
             simulated time passes); the first probe whose round trip
             completes is the zombie answering after the heal, and it
             rejoins as a backup via the epoch-stamped resync. *)
          if
            t.cfg.Config.partition_server <> None
            || t.cfg.Config.stall_server <> None
          then
            List.iter
              (fun i ->
                 if
                   !alive
                   && Directory.failed t.dir i
                   && not (Directory.rejoined t.dir)
                 then begin
                   let snode =
                     Fabric.Scl.node (Memory_server.endpoint t.servers.(i))
                   in
                   try
                     let arrival =
                       Fabric.Scl.reliable_transfer net
                         ~now:(Desim.Engine.now t.engine)
                         ~src:mgr_node ~dst:snode
                         ~bytes:Manager_shard.heartbeat_wire
                     in
                     let ack =
                       Fabric.Scl.reliable_transfer net ~now:arrival
                         ~src:snode ~dst:mgr_node
                         ~bytes:Manager_shard.ack_wire
                     in
                     if Desim.Time.( < ) (Desim.Engine.now t.engine) ack then
                       Desim.Engine.delay
                         (Desim.Time.diff ack (Desim.Engine.now t.engine));
                     ignore
                       (Control_plane.rejoin_server t.cp ~dir:t.dir
                          ~servers:t.servers ~zombie:i ~probe:t.probe
                          ~now:(Desim.Engine.now t.engine)
                        : int * int)
                   with Fabric.Scl.Node_dead _ -> ()
                 end)
              subset;
          if !alive then loop ()
        end
      in
      loop ())

(* Shard-failure detector (active when the control plane is sharded):
   shard 0 — which hosts allocation and is never killable — heartbeats
   its peers every lease interval; a peer that exhausts the retry budget
   is declared dead and the ring successor absorbs its slice
   ({!Control_plane.recover_shard}). *)
let spawn_shard_monitor t =
  Desim.Engine.spawn t.engine ~name:"shard-monitor" (fun () ->
      let net = t.network in
      let n0 =
        Fabric.Scl.node (Manager_shard.endpoint (Control_plane.shard t.cp 0))
      in
      let count = Control_plane.shard_count t.cp in
      let rec loop () =
        Desim.Engine.delay t.cfg.Config.lease_interval;
        if
          Atomic.get t.finished < t.next_thread
          && not (Control_plane.any_shard_failed t.cp)
        then begin
          let dead = ref None in
          for s = 1 to count - 1 do
            if !dead = None then begin
              let snode =
                Fabric.Scl.node
                  (Manager_shard.endpoint (Control_plane.shard t.cp s))
              in
              try
                let arrival =
                  Fabric.Scl.reliable_transfer net
                    ~now:(Desim.Engine.now t.engine)
                    ~src:n0 ~dst:snode ~bytes:Manager_shard.heartbeat_wire
                in
                ignore
                  (Fabric.Scl.reliable_transfer net ~now:arrival ~src:snode
                     ~dst:n0 ~bytes:Manager_shard.ack_wire
                   : Desim.Time.t);
                Control_plane.note_shard_heartbeat t.cp
              with Fabric.Scl.Node_dead (_, give_up) ->
                dead := Some (s, give_up)
            end
          done;
          (match !dead with
           | None -> ()
           | Some (s, give_up) ->
             if Desim.Time.( < ) (Desim.Engine.now t.engine) give_up then
               Desim.Engine.delay
                 (Desim.Time.diff give_up (Desim.Engine.now t.engine));
             let now = Desim.Engine.now t.engine in
             ignore
               (Control_plane.recover_shard t.cp ~dead:s ~now
                : int * int * int));
          loop ()
        end
      in
      loop ())

(* Home-page migration executor: copy the line's current bytes and
   version from the old home to the new one (and its mirror), repoint the
   directory, and publish the unchanged version at the new home so a
   probe's last-snapshot map follows the move. The copy is modeled as a
   background transfer with no client-visible latency; what the
   simulation measures is the locality change on subsequent fetches. *)
let migrator t ~line ~target =
  let cur = Directory.logical_of_line t.dir t.cfg ~line in
  if cur = target then false
  else begin
    let src = t.servers.(Directory.physical_of_logical t.dir cur) in
    let v = Memory_server.version src line in
    if v = 0 then false (* never flushed: nothing to move *)
    else begin
      let dst_phys = Directory.physical_of_logical t.dir target in
      let dst = t.servers.(dst_phys) in
      let bytes = Config.line_bytes t.cfg in
      Bytes.blit (Memory_server.line src line) 0
        (Memory_server.line dst line) 0 bytes;
      Memory_server.force_version dst line v;
      (match Memory_server.backup dst with
       | Some b ->
         Bytes.blit (Memory_server.line src line) 0
           (Memory_server.line b line) 0 bytes;
         Memory_server.force_version b line v
       | None -> ());
      Directory.set_home t.dir ~line ~logical:target;
      (match t.probe with
       | Some p ->
         p.Probe.on_publish ~thread:(-1)
           ~time:(Desim.Engine.now t.engine)
           ~server:dst_phys ~line ~version:v
           ~data:(Memory_server.line dst line)
       | None -> ());
      true
    end
  end

let create ?(trace = Desim.Trace.null) ?(config = Config.default) ~threads () =
  (match Config.validate config with
   | Ok () -> ()
   | Error msg -> invalid_arg ("System.create: " ^ msg));
  if threads <= 0 then invalid_arg "System.create: threads must be positive";
  if threads > config.Config.max_threads then
    invalid_arg
      (Printf.sprintf
         "System.create: %d threads requested but config.max_threads = %d \
          (raise the max_threads field to run larger systems)"
         threads config.Config.max_threads);
  let tie_break =
    if config.Config.shuffle then
      Some (Desim.Engine.shuffle_tie_break ~seed:config.Config.seed)
    else None
  in
  if config.Config.domains > 1 && Desim.Trace.enabled trace then
    invalid_arg "System.create: tracing requires domains = 1";
  let engine =
    Desim.Engine.create ~trace ?tie_break ~domains:config.Config.domains ()
  in
  let ms = config.Config.memory_servers in
  let tpn = config.Config.threads_per_node in
  let nshards = config.Config.manager_shards in
  let compute_nodes = (threads + tpn - 1) / tpn in
  (* Node map: 0 = manager shard 0, 1..ms = memory servers, then compute
     nodes, then shards 1..N-1 on trailing nodes. With one shard this is
     exactly the historical map. *)
  let node_count = 1 + ms + compute_nodes + (nshards - 1) in
  let first_compute_node = 1 + ms in
  let shard_node s =
    if s = 0 then
      (* §V future work: a single-node system can synchronize locally. *)
      if config.Config.manager_bypass then first_compute_node else 0
    else 1 + ms + compute_nodes + (s - 1)
  in
  (* Crash spec: memory server [srv] lives on fabric node [1 + srv];
     manager shard [s] lives on [shard_node s]. A fault policy is
     attached exactly when the level is on or a crash / gray failure is
     injected, so the default configuration's fabric stays byte-exact
     with the seed build. *)
  let crash =
    match (config.Config.crash_server, config.Config.crash_shard) with
    | Some (srv, at), _ -> Some (1 + srv, Desim.Time.of_ns at)
    | None, Some (s, at) -> Some (shard_node s, Desim.Time.of_ns at)
    | None, None -> None
  in
  (* Gray-failure specs, in fabric-node terms. Isolate cuts the victim
     off from every peer; Control cuts only the manager-shard nodes, so
     clients keep reaching the deposed primary — the zombie scenario. *)
  let partition =
    match config.Config.partition_server with
    | None -> None
    | Some (srv, scope, start, heal) ->
      let peers =
        match scope with
        | Config.Isolate -> []
        | Config.Control -> Array.to_list (Array.init nshards shard_node)
      in
      Some (1 + srv, peers, Desim.Time.of_ns start, Desim.Time.of_ns heal)
  in
  let stall =
    match config.Config.stall_server with
    | None -> None
    | Some (srv, start, heal) ->
      Some (1 + srv, Desim.Time.of_ns start, Desim.Time.of_ns heal)
  in
  let faults =
    match (config.Config.fault_level, crash, partition, stall) with
    | Fabric.Faults.Off, None, None, None -> None
    | level, _, _, _ ->
      Some
        (Fabric.Faults.create ?crash ?partition ?stall
           ~seed:config.Config.seed ~level ())
  in
  let network =
    Fabric.Network.create ?faults engine ~profile:config.Config.fabric
      ~node_count
  in
  if config.Config.domains > 1 then
    Desim.Engine.set_lookahead engine (Fabric.Network.lookahead network);
  let layout = Layout.of_config config in
  let shard_nodes = Array.init nshards shard_node in
  let shards =
    Array.init nshards (fun s ->
        Manager_shard.create config layout ~engine
          ~endpoint:(Fabric.Scl.endpoint network shard_nodes.(s)))
  in
  let cp = Control_plane.create config ~engine ~shards ~nodes:shard_nodes in
  let servers =
    Array.init ms (fun i ->
        Memory_server.create config layout ~id:i
          ~endpoint:(Fabric.Scl.endpoint network (1 + i)))
  in
  let dir = Directory.create config in
  if config.Config.replication >= 1 then
    Array.iteri
      (fun i srv ->
         Memory_server.set_backup srv servers.(Directory.backup_of dir i))
      servers;
  let t =
    { cfg = config;
      layout;
      engine;
      network;
      servers;
      dir;
      cp;
      sc = Coherence_sc.create ~max_threads:config.Config.max_threads ();
      san =
        (if config.Config.sanitize then
           Some
             (Analysis.Regcsan.create ~threads
                ~page_bytes:config.Config.page_bytes)
         else None);
      total_threads = threads;
      first_compute_node;
      threads_rev = [];
      next_thread = 0;
      finished = Atomic.make 0;
      probe = None }
  in
  if config.Config.home_migration then
    Array.iter (fun sh -> Manager_shard.set_migrator sh (migrator t)) shards;
  if config.Config.replication >= 1 then
    (* Servers are partitioned round-robin across shards; every shard
       with a non-empty slice runs its own lease monitor. With one shard
       that is the single classic monitor over all servers. *)
    for s = 0 to nshards - 1 do
      let subset =
        List.filter (fun i -> i mod nshards = s) (List.init ms Fun.id)
      in
      if subset <> [] then spawn_lease_monitor t ~shard:s ~subset
    done;
  if nshards > 1 then spawn_shard_monitor t;
  (* Partition heal-wake: a client can park in await_recovery after
     escalating against the partitioned victim even though no lease ever
     expires (Isolate windows shorter than the monitor's escalation).
     Recovery would wake it; if recovery never runs, the heal does. All
     partition-induced parks happen strictly before the heal instant
     (every attempt of an escalated transfer was in-window), so one
     drain at the heal instant suffices; when recovery already drained
     the list this finds it empty. *)
  (match config.Config.partition_server with
   | Some (_, _, _, heal) ->
     Desim.Engine.spawn engine ~name:"heal-wake" (fun () ->
         Desim.Engine.delay
           (Desim.Time.diff (Desim.Time.of_ns heal)
              (Desim.Engine.now engine));
         let now = Desim.Engine.now engine in
         List.iter
           (fun wake -> Desim.Engine.schedule_at engine now wake)
           (Directory.take_waiters dir))
   | None -> ());
  t

let config t = t.cfg
let layout t = t.layout
let engine t = t.engine
let network t = t.network
let control_plane t = t.cp
let manager t = Control_plane.shard t.cp 0
let servers t = t.servers
let directory t = t.dir
let total_threads t = t.total_threads
let sanitizer t = t.san

let set_probe t probe =
  if t.next_thread > 0 then
    invalid_arg "System.set_probe: attach the probe before spawning threads";
  if t.cfg.Config.domains > 1 then
    invalid_arg
      "System.set_probe: probes observe the global sequential schedule \
       and require domains = 1";
  t.probe <- Some probe

let probe t = t.probe

let mutex t = Control_plane.mutex_create t.cp
let barrier t ~parties = Control_plane.barrier_create t.cp ~parties
let cond t = Control_plane.cond_create t.cp

let env t : Thread_ctx.env =
  { Thread_ctx.cfg = t.cfg;
    layout = t.layout;
    engine = t.engine;
    network = t.network;
    servers = t.servers;
    dir = t.dir;
    cp = t.cp;
    sc = t.sc;
    san = t.san;
    probe = t.probe }

let spawn t body =
  if t.next_thread >= t.total_threads then
    invalid_arg "System.spawn: all thread slots used";
  let id = t.next_thread in
  t.next_thread <- id + 1;
  let tpn = t.cfg.Config.threads_per_node in
  let node_idx = id / tpn in
  let node = t.first_compute_node + node_idx in
  (* ParDES partition map: compute nodes split into [domains] contiguous
     blocks, one client partition per block; a node's threads never
     straddle partitions, so all intra-node state stays domain-local.
     With domains = 1 [spawn_on] takes its sequential path and [part] is
     irrelevant. *)
  let compute_nodes = (t.total_threads + tpn - 1) / tpn in
  let part = 1 + (node_idx * t.cfg.Config.domains / compute_nodes) in
  let ctx = Thread_ctx.create (env t) ~id ~node in
  t.threads_rev <- ctx :: t.threads_rev;
  Desim.Engine.spawn_on t.engine ~part ~name:(Printf.sprintf "thread%d" id)
    (fun () ->
       body ctx;
       Thread_ctx.finish ctx;
       Atomic.incr t.finished);
  ctx

let threads t = List.rev t.threads_rev
let finished_threads t = Atomic.get t.finished
let run t = Desim.Engine.run t.engine
let elapsed t = Desim.Engine.now t.engine
let events t = Desim.Engine.events t.engine
