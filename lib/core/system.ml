type t = {
  cfg : Config.t;
  layout : Layout.t;
  engine : Desim.Engine.t;
  network : Fabric.Network.t;
  servers : Memory_server.t array;
  manager : Manager.t;
  sc : Coherence_sc.t;
  san : Analysis.Regcsan.t option;
  total_threads : int;
  first_compute_node : int;
  mutable threads_rev : Thread_ctx.t list;
  mutable next_thread : int;
  mutable probe : Probe.t option;
}

let create ?(trace = Desim.Trace.null) ?(config = Config.default) ~threads () =
  (match Config.validate config with
   | Ok () -> ()
   | Error msg -> invalid_arg ("System.create: " ^ msg));
  if threads <= 0 then invalid_arg "System.create: threads must be positive";
  if threads > Config.max_threads then
    invalid_arg
      (Printf.sprintf
         "System.create: %d threads requested but at most %d are supported \
          (thread ids must fit the sharer/writer bitmasks)"
         threads Config.max_threads);
  let tie_break =
    if config.Config.shuffle then
      Some (Desim.Engine.shuffle_tie_break ~seed:config.Config.seed)
    else None
  in
  let engine = Desim.Engine.create ~trace ?tie_break () in
  let ms = config.Config.memory_servers in
  let tpn = config.Config.threads_per_node in
  let compute_nodes = (threads + tpn - 1) / tpn in
  let node_count = 1 + ms + compute_nodes in
  let faults =
    match config.Config.fault_level with
    | Fabric.Faults.Off -> None
    | level ->
      Some (Fabric.Faults.create ~seed:config.Config.seed ~level)
  in
  let network =
    Fabric.Network.create ?faults engine ~profile:config.Config.fabric
      ~node_count
  in
  let layout = Layout.of_config config in
  let first_compute_node = 1 + ms in
  let manager_node =
    (* §V future work: a single-node system can synchronize locally. *)
    if config.Config.manager_bypass then first_compute_node else 0
  in
  let manager =
    Manager.create config layout ~engine
      ~endpoint:(Fabric.Scl.endpoint network manager_node)
  in
  let servers =
    Array.init ms (fun i ->
        Memory_server.create config layout ~id:i
          ~endpoint:(Fabric.Scl.endpoint network (1 + i)))
  in
  { cfg = config;
    layout;
    engine;
    network;
    servers;
    manager;
    sc = Coherence_sc.create ();
    san =
      (if config.Config.sanitize then
         Some
           (Analysis.Regcsan.create ~threads
              ~page_bytes:config.Config.page_bytes)
       else None);
    total_threads = threads;
    first_compute_node;
    threads_rev = [];
    next_thread = 0;
    probe = None }

let config t = t.cfg
let layout t = t.layout
let engine t = t.engine
let network t = t.network
let manager t = t.manager
let servers t = t.servers
let total_threads t = t.total_threads
let sanitizer t = t.san

let set_probe t probe =
  if t.next_thread > 0 then
    invalid_arg "System.set_probe: attach the probe before spawning threads";
  t.probe <- Some probe

let probe t = t.probe

let mutex t = Manager.lock_create t.manager
let barrier t ~parties = Manager.barrier_create t.manager ~parties
let cond t = Manager.cond_create t.manager

let env t : Thread_ctx.env =
  { Thread_ctx.cfg = t.cfg;
    layout = t.layout;
    engine = t.engine;
    network = t.network;
    servers = t.servers;
    manager = t.manager;
    sc = t.sc;
    san = t.san;
    probe = t.probe }

let spawn t body =
  if t.next_thread >= t.total_threads then
    invalid_arg "System.spawn: all thread slots used";
  let id = t.next_thread in
  t.next_thread <- id + 1;
  let node = t.first_compute_node + (id / t.cfg.Config.threads_per_node) in
  let ctx = Thread_ctx.create (env t) ~id ~node in
  t.threads_rev <- ctx :: t.threads_rev;
  Desim.Engine.spawn t.engine ~name:(Printf.sprintf "thread%d" id)
    (fun () ->
       body ctx;
       Thread_ctx.finish ctx);
  ctx

let threads t = List.rev t.threads_rev
let run t = Desim.Engine.run t.engine
let elapsed t = Desim.Engine.now t.engine
