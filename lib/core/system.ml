type t = {
  cfg : Config.t;
  layout : Layout.t;
  engine : Desim.Engine.t;
  network : Fabric.Network.t;
  servers : Memory_server.t array;
  dir : Directory.t;
  manager : Manager.t;
  sc : Coherence_sc.t;
  san : Analysis.Regcsan.t option;
  total_threads : int;
  first_compute_node : int;
  mutable threads_rev : Thread_ctx.t list;
  mutable next_thread : int;
  mutable finished : int;
  mutable probe : Probe.t option;
}

(* The lease-based failure detector (active when replication is on): a
   manager-owned process that, every [lease_interval], runs a heartbeat
   round trip to each live memory server. The round trips ride the
   retrying primitive, so a transient drop only delays renewal; a
   fail-stop crash exhausts the retry budget and escalates to [Node_dead]
   — the lease is expired and {!Manager.recover} promotes the backup,
   replays surviving update logs and wakes parked threads. The monitor
   exits once every spawned thread has finished (it must: a sleeping
   process keeps the engine's queue non-empty forever). *)
let spawn_lease_monitor t =
  Desim.Engine.spawn t.engine ~name:"lease-monitor" (fun () ->
      let net = t.network in
      let mgr_node = Fabric.Scl.node (Manager.endpoint t.manager) in
      let rec loop () =
        Desim.Engine.delay t.cfg.Config.lease_interval;
        if t.finished < t.next_thread then begin
          let expired = ref None in
          Array.iteri
            (fun i srv ->
               if !expired = None && not (Directory.failed t.dir i) then begin
                 let snode =
                   Fabric.Scl.node (Memory_server.endpoint srv)
                 in
                 try
                   let arrival =
                     Fabric.Scl.reliable_transfer net
                       ~now:(Desim.Engine.now t.engine)
                       ~src:mgr_node ~dst:snode
                       ~bytes:Manager.heartbeat_wire
                   in
                   ignore
                     (Fabric.Scl.reliable_transfer net ~now:arrival
                        ~src:snode ~dst:mgr_node ~bytes:Manager.ack_wire
                      : Desim.Time.t);
                   Manager.note_heartbeat t.manager
                 with Fabric.Scl.Node_dead (_, give_up) ->
                   expired := Some (i, give_up)
               end)
            t.servers;
          (match !expired with
           | None -> ()
           | Some (i, give_up) ->
             (* The manager knows at the give-up instant of its last
                retransmission; detection, promotion, replay and wakeups
                all land there (replay cost is charged to the manager's
                service loop implicitly via the blocked threads' own
                re-issued round trips). *)
             if Desim.Time.( < ) (Desim.Engine.now t.engine) give_up then
               Desim.Engine.delay
                 (Desim.Time.diff give_up (Desim.Engine.now t.engine));
             let now = Desim.Engine.now t.engine in
             (match t.probe with
              | Some p ->
                p.Probe.on_crash ~time:now ~node:(1 + i) ~server:i
              | None -> ());
             let promoted, replayed =
               Manager.recover t.manager ~dir:t.dir ~servers:t.servers
                 ~dead:i ~probe:t.probe ~now
             in
             (match t.probe with
              | Some p ->
                p.Probe.on_recovery ~time:now ~failed:i ~promoted ~replayed
              | None -> ()));
          loop ()
        end
      in
      loop ())

let create ?(trace = Desim.Trace.null) ?(config = Config.default) ~threads () =
  (match Config.validate config with
   | Ok () -> ()
   | Error msg -> invalid_arg ("System.create: " ^ msg));
  if threads <= 0 then invalid_arg "System.create: threads must be positive";
  if threads > Config.max_threads then
    invalid_arg
      (Printf.sprintf
         "System.create: %d threads requested but at most %d are supported \
          (thread ids must fit the sharer/writer bitmasks)"
         threads Config.max_threads);
  let tie_break =
    if config.Config.shuffle then
      Some (Desim.Engine.shuffle_tie_break ~seed:config.Config.seed)
    else None
  in
  let engine = Desim.Engine.create ~trace ?tie_break () in
  let ms = config.Config.memory_servers in
  let tpn = config.Config.threads_per_node in
  let compute_nodes = (threads + tpn - 1) / tpn in
  let node_count = 1 + ms + compute_nodes in
  (* Crash spec: memory server [srv] lives on fabric node [1 + srv]. A
     fault policy is attached exactly when the level is on or a crash is
     injected, so the default configuration's fabric stays byte-exact with
     the seed build. *)
  let crash =
    match config.Config.crash_server with
    | Some (srv, at) -> Some (1 + srv, Desim.Time.of_ns at)
    | None -> None
  in
  let faults =
    match (config.Config.fault_level, crash) with
    | Fabric.Faults.Off, None -> None
    | level, _ ->
      Some (Fabric.Faults.create ?crash ~seed:config.Config.seed ~level ())
  in
  let network =
    Fabric.Network.create ?faults engine ~profile:config.Config.fabric
      ~node_count
  in
  let layout = Layout.of_config config in
  let first_compute_node = 1 + ms in
  let manager_node =
    (* §V future work: a single-node system can synchronize locally. *)
    if config.Config.manager_bypass then first_compute_node else 0
  in
  let manager =
    Manager.create config layout ~engine
      ~endpoint:(Fabric.Scl.endpoint network manager_node)
  in
  let servers =
    Array.init ms (fun i ->
        Memory_server.create config layout ~id:i
          ~endpoint:(Fabric.Scl.endpoint network (1 + i)))
  in
  let dir = Directory.create config in
  if config.Config.replication >= 1 then
    Array.iteri
      (fun i srv ->
         Memory_server.set_backup srv servers.(Directory.backup_of dir i))
      servers;
  let t =
    { cfg = config;
      layout;
      engine;
      network;
      servers;
      dir;
      manager;
      sc = Coherence_sc.create ();
      san =
        (if config.Config.sanitize then
           Some
             (Analysis.Regcsan.create ~threads
                ~page_bytes:config.Config.page_bytes)
         else None);
      total_threads = threads;
      first_compute_node;
      threads_rev = [];
      next_thread = 0;
      finished = 0;
      probe = None }
  in
  if config.Config.replication >= 1 then spawn_lease_monitor t;
  t

let config t = t.cfg
let layout t = t.layout
let engine t = t.engine
let network t = t.network
let manager t = t.manager
let servers t = t.servers
let directory t = t.dir
let total_threads t = t.total_threads
let sanitizer t = t.san

let set_probe t probe =
  if t.next_thread > 0 then
    invalid_arg "System.set_probe: attach the probe before spawning threads";
  t.probe <- Some probe

let probe t = t.probe

let mutex t = Manager.lock_create t.manager
let barrier t ~parties = Manager.barrier_create t.manager ~parties
let cond t = Manager.cond_create t.manager

let env t : Thread_ctx.env =
  { Thread_ctx.cfg = t.cfg;
    layout = t.layout;
    engine = t.engine;
    network = t.network;
    servers = t.servers;
    dir = t.dir;
    manager = t.manager;
    sc = t.sc;
    san = t.san;
    probe = t.probe }

let spawn t body =
  if t.next_thread >= t.total_threads then
    invalid_arg "System.spawn: all thread slots used";
  let id = t.next_thread in
  t.next_thread <- id + 1;
  let node = t.first_compute_node + (id / t.cfg.Config.threads_per_node) in
  let ctx = Thread_ctx.create (env t) ~id ~node in
  t.threads_rev <- ctx :: t.threads_rev;
  Desim.Engine.spawn t.engine ~name:(Printf.sprintf "thread%d" id)
    (fun () ->
       body ctx;
       Thread_ctx.finish ctx;
       t.finished <- t.finished + 1);
  ctx

let threads t = List.rev t.threads_rev
let finished_threads t = t.finished
let run t = Desim.Engine.run t.engine
let elapsed t = Desim.Engine.now t.engine
