(** The sharded control plane: N {!Manager_shard}s behind one facade.

    Sync objects get facade-global ids assigned to shards by the
    consistent-hash ring ({!Hash_ring}); allocation is pinned to shard 0
    (one bump pointer keeps GAS addresses identical to the unsharded
    build). A logical-to-physical shard map mirrors {!Directory}'s server
    map: after a shard crash the ring successor absorbs the dead shard's
    slice ({!Manager_shard.absorb}) and the map repoints, so requesters
    re-resolve object ids and land on the takeover shard. With
    [manager_shards = 1] every path degenerates to the classic singleton
    manager, byte-for-byte. *)

type t

val create :
  Config.t -> engine:Desim.Engine.t -> shards:Manager_shard.t array ->
  nodes:int array -> t
(** [nodes.(s)] is the fabric node hosting (logical) shard [s]. *)

val shard_count : t -> int
val shard : t -> int -> Manager_shard.t
val shards : t -> Manager_shard.t array

val shard_for : t -> int -> Manager_shard.t
(** The shard {e currently} serving sync object [id] (ring lookup, then
    the logical-to-physical map). *)

val logical_shard_for : t -> int -> int

val alloc_shard : t -> Manager_shard.t
(** The shard owning the GAS bump pointer (shard 0, or its takeover). *)

(** {2 Sync-object creation} (facade-global ids) *)

val mutex_create : t -> Manager_shard.lock_id
val barrier_create : t -> parties:int -> Manager_shard.barrier_id
val cond_create : t -> Manager_shard.cond_id

(** {2 Shard-crash takeover} *)

val shard_failed : t -> int -> bool
(** Whether this logical shard has been declared dead {e and} takeover
    already repointed the map. *)

val any_shard_failed : t -> bool

val shard_node_of : t -> int -> int option
(** Reverse-map a fabric node to the logical shard hosted there (for
    classifying [Scl.Node_dead]). *)

val await_shard_recovery : t -> wake:(unit -> unit) -> unit
(** Park a blocked requester's wake callback until shard takeover
    completes. *)

val note_shard_heartbeat : t -> unit

val recover_shard : t -> dead:int -> now:Desim.Time.t -> int * int * int
(** Declare logical shard [dead] failed: the ring successor absorbs its
    slice, the map repoints, stranded reply pushes are re-driven and
    parked requesters rescheduled. Returns
    [(takeover, objects_moved, pushes_redriven)]. Raises
    [Invalid_argument] on a second failure or for shard 0. *)

(** {2 Memory-server recovery} *)

val recover_server :
  t -> dir:Directory.t -> servers:Memory_server.t array -> dead:int ->
  probe:Probe.t option -> now:Desim.Time.t -> detecting:int -> int * int
(** The sharded [promote -> replay -> wake] path: promote the backup
    once, replay every shard's surviving update logs (ascending shard,
    then lock id), wake the parked threads once. [detecting] is the
    shard whose lease monitor detected the failure. Returns
    [(promoted, replayed_entries)]. The detecting shard's lease expiry
    bumps its configuration epoch; promotion stamps the directory and
    the promoted replica with it ({!Directory.epoch}), fencing the
    suspected server's stale traffic. *)

val rejoin_server :
  t -> dir:Directory.t -> servers:Memory_server.t array -> zombie:int ->
  probe:Probe.t option -> now:Desim.Time.t -> int * int
(** A falsely suspected server answered a post-heal probe: stamp it with
    the current epoch and resync it back in as the backup it already
    ring-wires to — an epoch-stamped diff against the live primary's
    versions (only lines that primary currently serves, only where the
    zombie is behind), modeled as a zero-latency background copy like
    the home-migration blit. Returns [(primary_backed, lines_copied)]
    and fires [Probe.on_rejoin]. *)

(** {2 Aggregated introspection} *)

val lock_ids : t -> Manager_shard.lock_id list
val lock_holder : t -> Manager_shard.lock_id -> int option
val lock_version : t -> Manager_shard.lock_id -> int
val lock_waiters : t -> Manager_shard.lock_id -> int list
val barrier_ids : t -> Manager_shard.barrier_id list
val barrier_parties : t -> Manager_shard.barrier_id -> int
val barrier_blocked : t -> Manager_shard.barrier_id -> int list
val cond_ids : t -> Manager_shard.cond_id list
val cond_blocked : t -> Manager_shard.cond_id -> int list

val gas_used : t -> int
val heartbeats : t -> int
val leases_expired : t -> int
val replayed_updates : t -> int
val migrations : t -> int

val migration_log : t -> (int * int) list
(** Per-shard decision logs concatenated in shard order. *)

val shard_heartbeats : t -> int
val takeovers : t -> int
val absorbed_objects : t -> int
val redriven_pushes : t -> int

val service_utilization : t -> horizon:Desim.Time.t -> float
(** Mean utilization across shard service resources (equals the
    singleton's utilization with one shard). *)

val service_jobs : t -> int
