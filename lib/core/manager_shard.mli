(** One shard of the Samhita control plane: memory allocation,
    synchronization and the RegC bookkeeping that synchronization carries
    (paper §II).

    Historically this was the singleton [Manager]; under
    {!Control_plane} it is one of N consistent-hash shards, each owning a
    slice of the locks/barriers/condvars (and their update-log histories),
    its own service resource, and its own slice of the lease monitoring.
    With one shard the behavior is byte-identical to the old singleton.

    The shard is passive simulation state; requesting threads mutate it
    during their interactions and charge time through the shard's service
    {!Desim.Resource} and the fabric. State transitions therefore execute
    in request-{e issue} order while timestamps model request-{e arrival}
    order; the two can transiently disagree under contention, which only
    permutes grant order among already-racing threads (any such order is
    legal) — documented in DESIGN.md.

    Timing contract: every operation takes [~now], the instant the shard
    {e finishes processing} the request (the caller reserved the service
    resource); replies to third parties (lock hand-off, barrier release,
    condvar signal) are scheduled by the shard itself as fabric transfers
    starting at [~now].

    Retry contract (shard crash): requests carry enough identity
    ([?seq] on release, [?epoch] on barrier arrival, the thread id on
    acquire) that a retry of a request whose original execution mutated
    state but whose reply was lost is recognized and answered without
    mutating twice. *)

type t

type lock_id = int
type barrier_id = int
type cond_id = int

(** What an acquiring thread must do to make lock-protected data current. *)
type grant_action =
  | Fresh  (** Acquirer already saw every release. *)
  | Patch of Update.t list * (int * int) list
      (** Apply these fine-grained updates to cached lines, then set the
          cached versions per the [(line, version)] list. *)
  | Notices of (int * int) list
      (** History insufficient: invalidate any cached line older than its
          [(line, version)] entry. *)

type grant = {
  lock_version : int;  (** Version the acquirer has seen after applying. *)
  action : grant_action;
  wire_bytes : int;  (** Size of the grant reply on the wire. *)
}

val create :
  Config.t -> Layout.t -> engine:Desim.Engine.t -> endpoint:Fabric.Scl.endpoint ->
  t

val endpoint : t -> Fabric.Scl.endpoint
val service : t -> Desim.Resource.t

(** {2 Allocation}

    Under the facade only shard 0 allocates (a single bump pointer keeps
    addresses identical to the unsharded build). *)

val alloc : t -> kind:[ `Arena_chunk | `Shared | `Large ] -> bytes:int -> int
(** Reserve GAS space: arena chunks are line-aligned, shared-zone requests
    8-byte aligned, large requests stripe-aligned. Returns the base
    address. *)

val gas_used : t -> int

(** {2 Mutual exclusion} *)

val lock_create : t -> lock_id
(** Create with a shard-local id (standalone / single-shard use). *)

val lock_register : t -> id:lock_id -> unit
(** Create lock state under a facade-assigned id. *)

val lock_acquire :
  t -> now:Desim.Time.t -> lock:lock_id -> thread:int -> last_seen:int ->
  endpoint:Fabric.Scl.endpoint -> wake:(grant -> unit) ->
  [ `Granted of grant | `Queued ]
(** If free, grants immediately (caller models its own reply transfer). If
    held, queues the waiter; on hand-off the shard schedules the grant
    transfer and [wake] runs at its arrival. A retry by the current holder
    re-grants; a retry by an already-queued thread replaces the stale
    queued [wake]. *)

val lock_release :
  ?seq:int ->
  t -> now:Desim.Time.t -> lock:lock_id -> thread:int ->
  log:Update.t list -> line_versions:(int * int) list -> unit
(** Record the release: bumps the lock version, retains the release log
    (bounded history) for future acquirers, merges [line_versions] into the
    lock's notice map, and hands the lock to the next waiter if any.
    [?seq] is the releaser's per-lock release sequence number: a retry
    carrying an already-recorded [seq] is a no-op (shard-crash
    idempotence). Raises [Invalid_argument] if [thread] does not hold the
    lock. *)

val lock_holder : t -> lock_id -> int option
val lock_version : t -> lock_id -> int

(** {2 Blocking-state introspection}

    Read-only views of who holds and who queues on each sync object.
    RegCCheck's deadlock analysis walks these on a stalled branch to build
    the thread wait-for graph and print the cycle. *)

val lock_ids : t -> lock_id list
(** All locks ever created, ascending. *)

val lock_waiters : t -> lock_id -> int list
(** Thread ids queued on the lock, FIFO (next grantee first). *)

val barrier_ids : t -> barrier_id list
val barrier_parties : t -> barrier_id -> int

val barrier_blocked : t -> barrier_id -> int list
(** Thread ids parked in the current episode, ascending. *)

val cond_ids : t -> cond_id list

val cond_blocked : t -> cond_id -> int list
(** Thread ids parked on the condvar, FIFO. *)

(** {2 Barriers} *)

val barrier_create : t -> parties:int -> barrier_id
val barrier_register : t -> id:barrier_id -> parties:int -> unit

val barrier_arrive :
  ?epoch:int ->
  t -> now:Desim.Time.t -> barrier:barrier_id -> thread:int ->
  lines:int list -> endpoint:Fabric.Scl.endpoint ->
  wake:((int * Tset.t) list * int -> unit) ->
  [ `Released of (int * Tset.t) list * int | `Wait ]
(** Register arrival along with the lines this thread wrote (flushed) during
    the ending interval. The last arriver triggers the release: everyone
    receives the epoch's aggregated write notices as [(line, writers)]
    pairs ([`Released] for the caller, scheduled [wake]s for the rest, each
    carrying the reply wire size). A thread must invalidate any cached line
    whose writer set names a writer other than itself — with multiple
    writers, version equality does not imply content equality, only the
    home holds the merge. [?epoch] is the episode the caller arrives for;
    a retry for an already-released episode the thread participated in
    replays that episode's notices instead of joining the next one. *)

val barrier_epoch : t -> barrier_id -> int

(** {2 Condition variables} *)

val cond_create : t -> cond_id
val cond_register : t -> id:cond_id -> unit

val cond_wait :
  t -> cond:cond_id -> thread:int -> endpoint:Fabric.Scl.endpoint ->
  wake:(unit -> unit) -> unit
(** Register a waiter. The caller must have released the associated mutex
    first and must re-acquire it after [wake] (pthreads semantics). *)

val cond_signal : t -> now:Desim.Time.t -> cond:cond_id -> int
(** Wake one waiter (if any); returns the number woken. *)

val cond_broadcast : t -> now:Desim.Time.t -> cond:cond_id -> int

(** {2 Home-page migration} *)

val set_migrator : t -> (line:int -> target:int -> bool) -> unit
(** Install the migration executor ({!System} owns the servers and the
    directory). Called once at system creation when
    {!Config.t.home_migration} is on; the callback returns whether the
    line actually moved. *)

val migrations : t -> int
val migration_log : t -> (int * int) list
(** [(line, target_logical_server)] decisions in decision order — pinned
    by the seed-determinism test. *)

(** {2 Crash recovery}

    The control plane owns the lease-based failure detector (the monitor
    processes live in {!System}; they call these). *)

val note_heartbeat : t -> unit
(** One lease-renewal round trip to a memory server completed. *)

val note_lease_expired : t -> unit
(** A memory server's lease expired at this shard. Also bumps the shard's
    configuration epoch (see {!epoch}) — the epoch counts configuration
    changes, so a false suspicion bumps it too. *)

val epoch : t -> int
(** This shard's configuration epoch: the number of leases it has
    expired. Recovery stamps the directory slots and the promoted
    replica with it; traffic resolved under an older epoch is fenced
    ({!Directory.Stale_epoch}). *)

val replay :
  t -> dir:Directory.t -> servers:Memory_server.t array -> dead:int ->
  promoted:int -> probe:Probe.t option -> now:Desim.Time.t -> int
(** Replay this shard's surviving update-log entries onto promoted server
    [promoted] for any line logically homed on [dead] whose replica is
    behind its published version (publishing each replayed line through
    [probe] with thread [-1]). Returns the number of replayed entries. *)

val recover :
  t -> dir:Directory.t -> servers:Memory_server.t array -> dead:int ->
  probe:Probe.t option -> now:Desim.Time.t -> int * int
(** Single-shard recovery for failed physical server [dead]: expire its
    lease, {!Directory.promote} its backup, {!replay}, and reschedule
    threads parked in {!Directory.await_recovery}. Returns
    [(promoted, replayed_entries)]. *)

val absorb : t -> from:t -> now:Desim.Time.t -> int * int
(** Shard takeover: move every sync object of dead shard [from] into this
    shard and re-drive [from]'s stranded reply pushes from this shard's
    endpoint. Returns [(objects_moved, pushes_redriven)]. *)

val heartbeats : t -> int
val leases_expired : t -> int
val replayed_updates : t -> int

(** {2 Wire-size helpers} *)

val acquire_request_wire : int
val release_wire : log:Update.t list -> line_versions:(int * int) list -> int
val notice_wire : ('a * 'b) list -> int
val ack_wire : int
val heartbeat_wire : int
