(** Bytewise diffs for the multiple-writer protocol.

    When a thread first writes a cached line in an ordinary region, the
    cache keeps a pristine copy (the {e twin}). At the next consistency
    point, the diff of the current contents against the twin — restricted
    to pages actually written — travels to the line's home, which applies
    it. Two threads writing disjoint bytes of the same line (false sharing)
    produce disjoint diffs that merge cleanly at the home. *)

type span = { offset : int; data : bytes }
(** A run of modified bytes at [offset] within the line. *)

type t = private {
  line : int;
  count : int;  (** Number of spans. *)
  offs : int array;  (** Span offsets within the line, ascending. *)
  lens : int array;  (** Span lengths, parallel to [offs]. *)
  payload : bytes;  (** Span bytes, concatenated in offset order. *)
}
(** Spans are packed — boundaries in two int arrays, changed bytes in one
    concatenated buffer — so building a diff costs a fixed handful of
    allocations however fragmented the line is. Use {!spans} for the
    materialised per-span view. *)

val make :
  Layout.t -> line:int -> twin:bytes -> current:bytes -> dirty_pages:int -> t
(** Compare [current] against [twin] within the pages set in the
    [dirty_pages] bitmask. Spans are byte-exact: only changed bytes are
    carried, so concurrent writers of disjoint bytes — even interleaved
    within one word — merge correctly at the home. Raises
    [Invalid_argument] if the buffers are not line-sized. *)

val apply : t -> bytes -> unit
(** Write every span into a line-sized buffer. *)

val is_empty : t -> bool
val span_count : t -> int

val spans : t -> span list
(** Materialise the spans (offset-ascending). Allocates; for tests and
    debugging — hot paths read the packed fields directly. *)

val payload_bytes : t -> int
(** Total modified bytes carried. *)

val wire_bytes : t -> int
(** Size on the wire: payload plus per-span and per-diff framing. *)

val coalesce_gap : int
(** Always 1: see the soundness note in the implementation. *)
