(** A memory server: backing store for its share of the global address
    space.

    Servers are passive state in the simulation — a requesting thread's
    interaction mutates the store and charges time through the server's
    service {!Desim.Resource} and the fabric, so concurrent requests from
    many threads queue exactly as they would at a busy server. Lines
    materialize zero-filled on first touch (demand-zero backing). *)

type t

val create :
  Config.t -> Layout.t -> id:int -> endpoint:Fabric.Scl.endpoint -> t

val id : t -> int
val endpoint : t -> Fabric.Scl.endpoint
val service : t -> Desim.Resource.t

val set_backup : t -> t -> unit
(** Wire this server's primary-backup replica ([Config.replication = 1];
    {!System.create} picks the ring successor via
    {!Directory.backup_of}). *)

val backup : t -> t option

val epoch : t -> int
(** Configuration epoch this server last learned (0 until a recovery or
    rejoin stamps it). A zombie primary keeps its pre-promotion epoch. *)

val set_epoch : t -> int -> unit
(** Stamp the server with a configuration epoch (recovery stamps the
    promoted replica; rejoin stamps the returning zombie). *)

val iter_lines : t -> (int -> bytes -> int -> unit) -> unit
(** Visit every materialized line as [(line_id, contents, version)], in
    line-id order (deterministic) — the rejoin resync walks the new
    primary's lines with this. *)

val line : t -> int -> bytes
(** The live backing buffer for a line (zero-filled on first touch). The
    returned buffer is the store's own: callers must not alias it into a
    cache — use {!fetch}. *)

val version : t -> int -> int
(** Current version of a line; 0 until first written. *)

val fetch : t -> int -> bytes * int
(** Copy of the line contents and its version (a page/line fetch reply). *)

val apply_diff : t -> Diff.t -> int
(** Merge a writer's diff into the backing line; returns the new version. *)

val apply_update : t -> Update.t -> (int * int) list
(** Apply a fine-grained update; returns [(line, new_version)] for every
    line it touched. *)

val note_mirror : t -> bytes:int -> unit
(** A write to this primary was successfully mirrored to its backup,
    carrying this many payload bytes. *)

val note_degraded : t -> unit
(** A write to this primary could not be mirrored (its backup is dead):
    the write was acknowledged unreplicated. *)

val force_version : t -> int -> int -> unit
(** [force_version t line v] raises [line]'s version to at least [v]
    (recovery replay; no-op when already there). *)

val service_time_for_bytes : t -> int -> Desim.Time.span
(** Service-loop occupancy for handling a request carrying this many
    payload bytes (fixed handling cost + per-byte apply cost). *)

val lines_resident : t -> int
val fetches : t -> int
val diffs_applied : t -> int
val updates_applied : t -> int
val mirrors : t -> int
val mirror_bytes : t -> int
val degraded_writes : t -> int
