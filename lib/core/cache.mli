(** The per-thread software cache over the global address space.

    Every compute thread accesses the GAS through one of these (paper §II:
    "each compute thread has a local software cache ... populated by demand
    paging"). Entries are whole lines ([pages_per_line] pages). A line
    written in an ordinary region lazily gains a {e twin} (pristine copy)
    and per-page dirty bits, from which {!Diff.make} produces the flush
    payload at consistency points.

    The cache is pure bookkeeping: fetching, timing and protocol decisions
    live in {!Thread_ctx}. Eviction selection honours the paper's
    write-biased policy; actually flushing a dirty victim is the caller's
    job (the [evict] callback).

    Entries live on two intrusive doubly-linked chains (dirty and clean)
    tracking membership only; recency is the [tick] stamp, so the access
    path stays a single store. Victim selection scans one chain for the
    minimum tick instead of the whole table — the write-biased policy
    reads the (typically small) dirty chain first — and the dirty chain
    doubles as the maintained index behind {!dirty_entries}. *)

type entry = {
  line : int;
  data : bytes;
  mutable version : int;  (** Home version this copy corresponds to. *)
  mutable twin : bytes option;
  mutable dirty_pages : int;
      (** Bitmask over pages of the line. Mutate only through
          {!mark_written}/{!clean} — the LRU chains key on it. *)
  mutable tick : int;  (** Last-use stamp for LRU. *)
  mutable excl : bool;
      (** Sequential-consistency mode: held exclusive (sole writer). *)
  mutable lru_prev : entry;  (** Internal: intrusive LRU chain link. *)
  mutable lru_next : entry;  (** Internal: intrusive LRU chain link. *)
}
(** The chain links make entries cyclic values: compare entries with [==],
    never with polymorphic [=]. *)

type t

val create : Config.t -> Layout.t -> t

val capacity : t -> int
val size : t -> int

val find : t -> int -> entry option
(** Lookup by line id; refreshes LRU state. The single-entry fast path for
    repeated hits on one line lives in {!Thread_ctx}; this is the general
    path. *)

val find_exn : t -> int -> entry
(** [find] without the option: raises [Not_found] on a miss. The
    allocation-free variant for the per-access path in {!Thread_ctx};
    callers match the exception inline ([match ... with exception]). *)

val peek : t -> int -> entry option
(** Lookup without touching LRU state. *)

val insert :
  t -> line:int -> data:bytes -> version:int -> evict:(entry -> unit) ->
  entry
(** Install a fetched line, evicting a victim first when full. The [evict]
    callback sees the victim (possibly dirty — flush it) before removal.
    The buffer is owned by the cache afterwards. If the line turned out to
    be present already (an asynchronous prefetch completed while the caller
    was blocked fetching), the existing entry is returned and the new
    buffer dropped. *)

val ensure_room : t -> line:int -> evict:(entry -> unit) -> unit
(** Evict until inserting [line] would need no eviction (no-op when the
    line is already cached). The [evict] callback may yield; eviction
    repeats if the freed slot is taken meanwhile. Used by protocol drivers
    that must perform their subsequent state transitions atomically. *)

val try_install : t -> line:int -> data:bytes -> version:int -> bool
(** Install only if no eviction of a {e dirty} line would be needed (the
    asynchronous prefetch path, which runs outside any process and so
    cannot flush). Clean victims may be displaced. Returns [false] and
    drops the data otherwise. *)

val mark_written : t -> entry -> offset:int -> len:int -> unit
(** Note an ordinary-region write to [entry]: creates the twin on first
    write and sets the dirty bits of the touched pages. *)

val invalidate : t -> int -> unit
(** Drop a line (no flush — callers flush first when needed). Marks any
    in-flight prefetch of that line stale. *)

val dirty_entries : t -> entry list
(** All entries with dirty pages, ascending line id (deterministic flush
    order). *)

val entries : t -> entry list
(** Every resident entry, ascending line id (for end-of-run invariant
    checks: no twin or dirty bits may survive the final consistency
    point). *)

val clean : t -> entry -> version:int -> unit
(** After a successful flush: drop twin and dirty bits, record the new home
    version. *)

(** {2 In-flight prefetch bookkeeping} *)

type arrival = (bytes * int) option
(** [Some (data, version)] on delivery; [None] when the prefetch was
    invalidated in flight and the waiter must demand-fetch. *)

val pending_start : t -> int -> bool
(** Mark a prefetch in flight for the line; [false] if one already is. *)

val is_pending : t -> int -> bool

val pending_wait : t -> int -> ((arrival -> unit) -> unit) option
(** If the line is in flight, returns a registrar the caller can hand its
    wake to ([Thread_ctx] suspends on it). *)

val pending_abort : t -> int -> unit
(** The in-flight prefetch will never deliver (its home crashed): drop the
    slot and wake any waiters with [None] so they demand-fetch. No-op when
    nothing is pending. *)

val pending_complete : t -> int -> data:bytes -> version:int -> unit
(** Prefetch delivery: wakes waiters (with [None] if stale) and, when there
    are no waiters and the line is fresh, installs via {!try_install}. *)

(** {2 Counters} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val dirty_evictions : t -> int
val invalidations : t -> int
val prefetch_installs : t -> int
val note_hit : t -> unit
val note_miss : t -> unit
