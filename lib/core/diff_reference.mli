(** The pre-optimization scalar diff, kept as an executable specification.

    {!Diff} scans word-wise and packs its spans; this module is the
    original byte-at-a-time, span-list implementation it must agree with.
    Equivalence tests compare the two span for span on random inputs, and
    the benchmark driver measures both back to back so the reported
    speedup is a same-process ratio. Never used on a simulation path. *)

type span = { offset : int; data : bytes }
(** A run of modified bytes at [offset] within the line. *)

type t = { line : int; spans : span list }

val make :
  Layout.t -> line:int -> twin:bytes -> current:bytes -> dirty_pages:int -> t

val apply : t -> bytes -> unit
val is_empty : t -> bool
val span_count : t -> int
val payload_bytes : t -> int
val wire_bytes : t -> int
val coalesce_gap : int
