(** Consistent-hash ring mapping control-plane object ids to manager
    shards.

    Placement is a pure function of [(salt, shards, vnodes)] built on
    [Desim.Rng.hash3] — no RNG stream is consumed, so lookups are stable
    across replays, and changing the shard count by one only remaps the
    ~1/N of keys whose ring segment changed owner. *)

type t

val default_vnodes : int
(** Virtual points per shard (64). *)

val create : ?vnodes:int -> ?salt:int -> shards:int -> unit -> t
(** Raises [Invalid_argument] if [shards < 1] or [vnodes < 1]. *)

val shards : t -> int

val lookup : t -> int -> int
(** Owning shard of a key, in [0 .. shards-1]. With one shard this is
    always 0 without hashing. *)
