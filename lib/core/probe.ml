type sync_op =
  | Lock_acquired of int
  | Unlock of int
  | Cond_signal of int
  | Cond_wake of int

type t = {
  on_read :
    thread:int -> time:Desim.Time.t -> addr:int -> len:int ->
    value:int64 option -> unit;
  on_write :
    thread:int -> time:Desim.Time.t -> addr:int -> len:int ->
    value:int64 option -> unit;
  on_publish :
    thread:int -> time:Desim.Time.t -> server:int -> line:int ->
    version:int -> data:bytes -> unit;
  on_malloc : thread:int -> time:Desim.Time.t -> addr:int -> bytes:int -> unit;
  on_free : thread:int -> time:Desim.Time.t -> addr:int -> bytes:int -> unit;
  on_barrier :
    thread:int -> time:Desim.Time.t -> barrier:int -> epoch:int ->
    phase:[ `Arrive | `Depart ] -> unit;
  on_sync : thread:int -> time:Desim.Time.t -> op:sync_op -> unit;
  on_crash : time:Desim.Time.t -> node:int -> server:int -> unit;
  on_recovery :
    time:Desim.Time.t -> failed:int -> promoted:int -> replayed:int -> unit;
  on_rejoin :
    time:Desim.Time.t -> zombie:int -> primary:int -> copied:int -> unit;
}

let nothing =
  { on_read = (fun ~thread:_ ~time:_ ~addr:_ ~len:_ ~value:_ -> ());
    on_write = (fun ~thread:_ ~time:_ ~addr:_ ~len:_ ~value:_ -> ());
    on_publish =
      (fun ~thread:_ ~time:_ ~server:_ ~line:_ ~version:_ ~data:_ -> ());
    on_malloc = (fun ~thread:_ ~time:_ ~addr:_ ~bytes:_ -> ());
    on_free = (fun ~thread:_ ~time:_ ~addr:_ ~bytes:_ -> ());
    on_barrier = (fun ~thread:_ ~time:_ ~barrier:_ ~epoch:_ ~phase:_ -> ());
    on_sync = (fun ~thread:_ ~time:_ ~op:_ -> ());
    on_crash = (fun ~time:_ ~node:_ ~server:_ -> ());
    on_recovery = (fun ~time:_ ~failed:_ ~promoted:_ ~replayed:_ -> ());
    on_rejoin = (fun ~time:_ ~zombie:_ ~primary:_ ~copied:_ -> ()) }
