(** Fine-grained (data-object level) update records.

    Stores performed inside a consistency region are logged as updates
    (paper §II: the LLVM pass instruments such stores; here the runtime
    logs them as the API executes). At lock release the log is applied at
    the homes and retained by the manager so the next acquirer can patch
    its cached copies instead of invalidating them. *)

type t = { addr : int; data : bytes }

val of_i64 : addr:int -> int64 -> t

val i64_data : int64 -> bytes
(** The 8-byte little-endian image of a value (an update's [data]). *)

val append : coalesce:bool -> t list -> addr:int -> bytes -> t list
(** Prepend a store to a region log (newest first). With [coalesce:true]
    the store merges into the head record when it exactly overwrites it or
    extends it contiguously upward; replayed oldest-first, the merged log
    produces byte-for-byte the memory the unmerged one would. With
    [coalesce:false] this is a plain cons. *)

val wire_bytes : t -> int
val log_wire_bytes : t list -> int

val apply_to_line : Layout.t -> t -> line:int -> bytes -> unit
(** Apply the portion of the update that falls within [line] to a
    line-sized buffer (updates may in principle straddle lines). *)

val lines_touched : Layout.t -> t -> int list
(** Ascending line ids covered by the update. *)
