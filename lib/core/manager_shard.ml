type lock_id = int
type barrier_id = int
type cond_id = int

type grant_action =
  | Fresh
  | Patch of Update.t list * (int * int) list
  | Notices of (int * int) list

type grant = {
  lock_version : int;
  action : grant_action;
  wire_bytes : int;
}

type waiter = {
  w_thread : int;
  w_last_seen : int;
  w_endpoint : Fabric.Scl.endpoint;
  w_wake : grant -> unit;
}

(* One retained release: the lock version it produced, the fine-grained
   update log, and the home versions of the lines the log touched. *)
type history_entry = {
  h_version : int;
  h_log : Update.t list;
  h_line_versions : (int * int) list;
}

type lock_state = {
  mutable holder : int option;
  mutable waiters : waiter Queue.t;
  mutable version : int;
  mutable history : history_entry list;  (* newest first *)
  touched : (int, int) Hashtbl.t;  (* line -> latest version under lock *)
  (* Highest release sequence number completed per thread: a shard-crash
     retry whose original release mutated state but lost its ack must be
     a no-op, not a double release. *)
  release_seen : (int, int) Hashtbl.t;
}

type barrier_waiter = {
  b_thread : int;
  b_endpoint : Fabric.Scl.endpoint;
  b_wake : (int * Tset.t) list * int -> unit;
}

(* Per epoch: line id -> set of writer thread ids. The set travels as
   [notice_entry_wire] bytes per line on the wire regardless of its
   population, exactly like the historical single-int writer mask. *)
type barrier_state = {
  parties : int;
  mutable epoch : int;
  mutable arrived : int;
  mutable bwaiters : barrier_waiter list;
  epoch_writers : (int, Tset.t) Hashtbl.t;
  parts : Tset.t;  (* arrivers of the in-progress episode *)
  (* Replay state for shard-crash retries: a thread whose arrival released
     the episode but whose reply was lost re-arrives with the episode's
     epoch; it must receive the released notices again, not join the next
     episode. *)
  mutable last_epoch : int;
  mutable last_parts : Tset.t;
  mutable last_all : (int * Tset.t) list;
  mutable last_wire : int;
}

type cond_waiter = {
  c_thread : int;
  c_endpoint : Fabric.Scl.endpoint;
  c_wake : unit -> unit;
}

type cond_state = { cwaiters : cond_waiter Queue.t }

(* A reply push (lock hand-off, barrier release, condvar wake) that could
   not leave this shard's node because the node was already declared dead
   at the send instant — the in-flight-request window of a shard crash.
   The takeover shard re-drives these from its own endpoint. *)
type orphan = {
  o_endpoint : Fabric.Scl.endpoint;  (* destination *)
  o_bytes : int;
  o_fire : unit -> unit;
}

type t = {
  cfg : Config.t;
  layout : Layout.t;
  engine : Desim.Engine.t;
  endpoint : Fabric.Scl.endpoint;
  service : Desim.Resource.t;
  mutable cursor : int;  (* GAS bump pointer (facade: shard 0 only) *)
  locks : (lock_id, lock_state) Hashtbl.t;
  barriers : (barrier_id, barrier_state) Hashtbl.t;
  conds : (cond_id, cond_state) Hashtbl.t;
  mutable next_id : int;
  (* Lease-based failure detection / recovery bookkeeping. The shard's
     configuration epoch advances with every lease it expires; recovery
     stamps the directory and the promoted replica with it, fencing the
     suspected server's stale traffic. *)
  mutable heartbeats : int;
  mutable leases_expired : int;
  mutable cfg_epoch : int;
  mutable replayed : int;
  mutable orphans : orphan list;  (* newest first *)
  (* Home-page migration: per-line write counters over this shard's sync
     traffic, and the migration callback System installs (it owns the
     servers and the directory). *)
  write_counts : (int, (int, int) Hashtbl.t) Hashtbl.t;
  mutable migrate : (line:int -> target:int -> bool) option;
  mutable migrations : int;
  mutable migration_log : (int * int) list;  (* (line, target), newest first *)
}

let acquire_request_wire = 48
let ack_wire = 16
let grant_framing = 48
let notice_entry_wire = 12

let notice_wire notices = List.length notices * notice_entry_wire

let release_wire ~log ~line_versions =
  ack_wire + Update.log_wire_bytes log + notice_wire line_versions

let create cfg layout ~engine ~endpoint =
  { cfg;
    layout;
    engine;
    endpoint;
    service = Desim.Resource.create ~name:"manager" ();
    cursor = 0;
    locks = Hashtbl.create 64;
    barriers = Hashtbl.create 16;
    conds = Hashtbl.create 16;
    next_id = 1;
    heartbeats = 0;
    leases_expired = 0;
    cfg_epoch = 0;
    replayed = 0;
    orphans = [];
    write_counts = Hashtbl.create 64;
    migrate = None;
    migrations = 0;
    migration_log = [] }

let endpoint t = t.endpoint
let service t = t.service

let fresh_id t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  id

(* Reply pushes ride the retrying primitive: a dropped push would strand
   the recipient forever. A push whose source node is already dead (this
   shard crashed while the triggering request was in flight) is stashed
   and re-driven by the takeover shard. *)
let push t ~now ~dst ~bytes fire =
  let net = Fabric.Scl.network t.endpoint in
  try
    let arrival =
      Fabric.Scl.reliable_transfer net ~now
        ~src:(Fabric.Scl.node t.endpoint)
        ~dst:(Fabric.Scl.node dst)
        ~bytes
    in
    Desim.Engine.schedule_at t.engine arrival fire
  with Fabric.Scl.Node_dead _ ->
    t.orphans <- { o_endpoint = dst; o_bytes = bytes; o_fire = fire }
                 :: t.orphans

(* ------------------------------------------------------------------ *)
(* Home-page migration                                                 *)

let server_for_thread cfg thread =
  (thread / cfg.Config.threads_per_node) mod cfg.Config.memory_servers

(* Count each thread's flushed writes per line; every [migration_window]
   observations of a line, migrate its home to the dominant writer's
   nearest server when that writer produced at least half the window.
   Pure function of the (deterministic) request sequence, so decisions
   replay bit-for-bit. *)
let note_writes t ~thread lines =
  if t.cfg.Config.home_migration && t.migrate <> None then
    List.iter
      (fun line ->
         let per =
           match Hashtbl.find_opt t.write_counts line with
           | Some h -> h
           | None ->
             let h = Hashtbl.create 8 in
             Hashtbl.replace t.write_counts line h;
             h
         in
         Hashtbl.replace per thread
           (1 + Option.value (Hashtbl.find_opt per thread) ~default:0);
         let total = Hashtbl.fold (fun _ c acc -> acc + c) per 0 in
         if total >= t.cfg.Config.migration_window then begin
           (* Order-independent arg-max: strictly more writes wins, ties
              go to the lowest thread id. *)
           let dom, dom_c =
             Hashtbl.fold
               (fun th c (bt, bc) ->
                  if c > bc || (c = bc && th < bt) then (th, c) else (bt, bc))
               per (max_int, 0)
           in
           Hashtbl.remove t.write_counts line;
           if 2 * dom_c >= total then begin
             let target = server_for_thread t.cfg dom in
             match t.migrate with
             | Some f ->
               if f ~line ~target then begin
                 t.migrations <- t.migrations + 1;
                 t.migration_log <- (line, target) :: t.migration_log
               end
             | None -> ()
           end
         end)
      lines

let set_migrator t f = t.migrate <- Some f
let migrations t = t.migrations
let migration_log t = List.rev t.migration_log

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)

let align_up n a = (n + a - 1) / a * a

let alloc t ~kind ~bytes =
  if bytes <= 0 then invalid_arg "Manager_shard.alloc: bytes must be positive";
  let alignment =
    match kind with
    | `Arena_chunk -> Config.line_bytes t.cfg
    | `Shared -> 8
    | `Large -> Home.stripe_bytes t.cfg
  in
  let base = align_up t.cursor alignment in
  t.cursor <- base + bytes;
  base

let gas_used t = t.cursor

(* ------------------------------------------------------------------ *)
(* Locks                                                               *)

let lock_state t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some s -> s
  | None -> invalid_arg "Manager_shard: unknown lock"

let lock_register t ~id =
  Hashtbl.replace t.locks id
    { holder = None;
      waiters = Queue.create ();
      version = 0;
      history = [];
      touched = Hashtbl.create 16;
      release_seen = Hashtbl.create 8 }

let lock_create t =
  let id = fresh_id t in
  lock_register t ~id;
  id

(* Build the consistency action bringing a thread from [last_seen] up to
   the lock's current version. *)
let grant_for t st ~last_seen =
  let action =
    if last_seen >= st.version then Fresh
    else begin
      (* History covers the gap iff it reaches back to last_seen + 1. *)
      let covering =
        List.filter (fun h -> h.h_version > last_seen) st.history
      in
      let covered =
        List.length covering = st.version - last_seen
        && t.cfg.Config.update_log_history > 0
      in
      if covered then begin
        (* Oldest first so later stores overwrite earlier ones. *)
        let ordered = List.rev covering in
        let log = List.concat_map (fun h -> h.h_log) ordered in
        let lv = Hashtbl.create 16 in
        List.iter
          (fun h ->
             List.iter (fun (l, v) -> Hashtbl.replace lv l v)
               h.h_line_versions)
          ordered;
        Patch (log, Hashtbl.fold (fun l v acc -> (l, v) :: acc) lv [])
      end
      else
        Notices (Hashtbl.fold (fun l v acc -> (l, v) :: acc) st.touched [])
    end
  in
  let wire =
    grant_framing
    + (match action with
       | Fresh -> 0
       | Patch (log, lvs) -> Update.log_wire_bytes log + notice_wire lvs
       | Notices ns -> notice_wire ns)
  in
  { lock_version = st.version; action; wire_bytes = wire }

let lock_acquire t ~now:_ ~lock ~thread ~last_seen ~endpoint ~wake =
  let st = lock_state t lock in
  match st.holder with
  | Some h when h = thread ->
    (* Shard-crash retry: the original acquire was granted but the reply
       leg died with the shard. Nobody else can have advanced the lock
       (this thread holds it), so the same grant is rebuilt. *)
    `Granted (grant_for t st ~last_seen)
  | None ->
    st.holder <- Some thread;
    `Granted (grant_for t st ~last_seen)
  | Some _ ->
    if Queue.fold (fun acc w -> acc || w.w_thread = thread) false st.waiters
    then begin
      (* Retry of a queued acquire: the first attempt's wake belongs to an
         already-resumed continuation — replace it in place. *)
      let q = Queue.create () in
      Queue.iter
        (fun w ->
           Queue.push
             (if w.w_thread = thread then
                { w with w_last_seen = last_seen; w_endpoint = endpoint;
                  w_wake = wake }
              else w)
             q)
        st.waiters;
      st.waiters <- q;
      `Queued
    end
    else begin
      Queue.push
        { w_thread = thread; w_last_seen = last_seen; w_endpoint = endpoint;
          w_wake = wake }
        st.waiters;
      `Queued
    end

let lock_release ?seq t ~now ~lock ~thread ~log ~line_versions =
  let st = lock_state t lock in
  let duplicate =
    match seq with
    | Some s ->
      (match Hashtbl.find_opt st.release_seen thread with
       | Some s' -> s' >= s
       | None -> false)
    | None -> false
  in
  if not duplicate then begin
    (match st.holder with
     | Some h when h = thread -> ()
     | _ ->
       invalid_arg
         "Manager_shard.lock_release: thread does not hold the lock");
    (match seq with
     | Some s -> Hashtbl.replace st.release_seen thread s
     | None -> ());
    st.version <- st.version + 1;
    st.history <-
      { h_version = st.version; h_log = log; h_line_versions = line_versions }
      :: st.history;
    (let keep = t.cfg.Config.update_log_history in
     if List.length st.history > keep then
       st.history <- List.filteri (fun i _ -> i < keep) st.history);
    List.iter (fun (l, v) -> Hashtbl.replace st.touched l v) line_versions;
    note_writes t ~thread (List.map fst line_versions);
    match Queue.take_opt st.waiters with
    | None -> st.holder <- None
    | Some w ->
      st.holder <- Some w.w_thread;
      let g = grant_for t st ~last_seen:w.w_last_seen in
      push t ~now ~dst:w.w_endpoint ~bytes:g.wire_bytes (fun () -> w.w_wake g)
  end

let lock_holder t lock = (lock_state t lock).holder
let lock_version t lock = (lock_state t lock).version

(* ------------------------------------------------------------------ *)
(* Blocking-state introspection (model-checker support). RegCCheck's
   deadlock analysis reads who holds and who queues on every sync object
   of a stalled branch to build the wait-for graph. Read-only. *)

let sorted_ids tbl =
  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let lock_ids t = sorted_ids t.locks

let lock_waiters t lock =
  let st = lock_state t lock in
  List.rev (Queue.fold (fun acc w -> w.w_thread :: acc) [] st.waiters)

(* ------------------------------------------------------------------ *)
(* Barriers                                                            *)

let barrier_state t barrier =
  match Hashtbl.find_opt t.barriers barrier with
  | Some s -> s
  | None -> invalid_arg "Manager_shard: unknown barrier"

let barrier_register t ~id ~parties =
  if parties <= 0 then invalid_arg "Manager_shard.barrier_create: parties";
  Hashtbl.replace t.barriers id
    { parties;
      epoch = 0;
      arrived = 0;
      bwaiters = [];
      epoch_writers = Hashtbl.create 64;
      parts = Tset.create ();
      last_epoch = -1;
      last_parts = Tset.create ();
      last_all = [];
      last_wire = 0 }

let barrier_create t ~parties =
  if parties <= 0 then invalid_arg "Manager_shard.barrier_create: parties";
  let id = fresh_id t in
  barrier_register t ~id ~parties;
  id

let barrier_arrive ?epoch t ~now ~barrier ~thread ~lines ~endpoint ~wake =
  if thread < 0 then
    invalid_arg "Manager_shard.barrier_arrive: negative thread id";
  let st = barrier_state t barrier in
  let duplicate_of_released =
    match epoch with
    | Some e -> e = st.last_epoch && Tset.mem st.last_parts thread
    | None -> false
  in
  if duplicate_of_released then
    (* Shard-crash retry: this thread's arrival already released the
       episode; hand it the released notices again. *)
    `Released (st.last_all, st.last_wire)
  else if List.exists (fun w -> w.b_thread = thread) st.bwaiters then begin
    (* Retry of an arrival parked in the in-progress episode: the first
       attempt's wake belongs to an already-resumed continuation. *)
    st.bwaiters <-
      List.map
        (fun w ->
           if w.b_thread = thread then
             { w with b_endpoint = endpoint; b_wake = wake }
           else w)
        st.bwaiters;
    `Wait
  end
  else begin
    List.iter
      (fun l ->
         let set =
           match Hashtbl.find_opt st.epoch_writers l with
           | Some s -> s
           | None ->
             let s = Tset.create () in
             Hashtbl.replace st.epoch_writers l s;
             s
         in
         Tset.add set thread)
      lines;
    note_writes t ~thread lines;
    Tset.add st.parts thread;
    st.arrived <- st.arrived + 1;
    if st.arrived < st.parties then begin
      st.bwaiters <-
        { b_thread = thread; b_endpoint = endpoint; b_wake = wake }
        :: st.bwaiters;
      `Wait
    end
    else begin
      let all =
        Hashtbl.fold (fun l set acc -> (l, set) :: acc) st.epoch_writers []
      in
      let wire = ack_wire + notice_wire all in
      List.iter
        (fun w ->
           push t ~now ~dst:w.b_endpoint ~bytes:wire (fun () ->
               w.b_wake (all, wire)))
        st.bwaiters;
      st.bwaiters <- [];
      st.arrived <- 0;
      st.last_epoch <- st.epoch;
      st.last_parts <- Tset.copy st.parts;
      st.last_all <- all;
      st.last_wire <- wire;
      Tset.clear st.parts;
      st.epoch <- st.epoch + 1;
      Hashtbl.reset st.epoch_writers;
      `Released (all, wire)
    end
  end

let barrier_epoch t barrier = (barrier_state t barrier).epoch
let barrier_ids t = sorted_ids t.barriers
let barrier_parties t barrier = (barrier_state t barrier).parties

let barrier_blocked t barrier =
  let st = barrier_state t barrier in
  List.sort Int.compare (List.map (fun w -> w.b_thread) st.bwaiters)

(* ------------------------------------------------------------------ *)
(* Condition variables                                                 *)

let cond_state t cond =
  match Hashtbl.find_opt t.conds cond with
  | Some s -> s
  | None -> invalid_arg "Manager_shard: unknown condition variable"

let cond_register t ~id =
  Hashtbl.replace t.conds id { cwaiters = Queue.create () }

let cond_create t =
  let id = fresh_id t in
  cond_register t ~id;
  id

let cond_wait t ~cond ~thread ~endpoint ~wake =
  let st = cond_state t cond in
  Queue.push { c_thread = thread; c_endpoint = endpoint; c_wake = wake }
    st.cwaiters

let wake_one t ~now w =
  push t ~now ~dst:w.c_endpoint ~bytes:ack_wire (fun () -> w.c_wake ())

let cond_signal t ~now ~cond =
  let st = cond_state t cond in
  match Queue.take_opt st.cwaiters with
  | None -> 0
  | Some w ->
    wake_one t ~now w;
    1

let cond_broadcast t ~now ~cond =
  let st = cond_state t cond in
  let n = Queue.length st.cwaiters in
  Queue.iter (fun w -> wake_one t ~now w) st.cwaiters;
  Queue.clear st.cwaiters;
  n

let cond_ids t = sorted_ids t.conds

let cond_blocked t cond =
  let st = cond_state t cond in
  List.rev (Queue.fold (fun acc w -> w.c_thread :: acc) [] st.cwaiters)

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)

let heartbeat_wire = 24

let note_heartbeat t = t.heartbeats <- t.heartbeats + 1

(* Every lease expiry bumps the owning shard's configuration epoch, even
   when the suspicion later turns out false — the epoch numbers
   configuration changes, not deaths. *)
let note_lease_expired t =
  t.leases_expired <- t.leases_expired + 1;
  t.cfg_epoch <- t.cfg_epoch + 1

let epoch t = t.cfg_epoch

(* Replay this shard's surviving update logs after physical server [dead]
   failed and [promoted] took over its stripes. The shard's retained lock
   histories record, per release, the update log and the home versions it
   produced — any line homed (logically) on the dead server whose promoted
   replica is behind is patched forward from the log, oldest release
   first. With synchronous mirroring the replica is normally already
   current and replay is a no-op safety net. *)
let replay t ~dir ~servers ~dead ~promoted ~probe ~now =
  let psrv = servers.(promoted) in
  let replayed_here = ref 0 in
  let locks =
    Hashtbl.fold (fun id st acc -> (id, st) :: acc) t.locks []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (_, st) ->
       List.iter
         (fun h ->
            List.iter
              (fun (line, v) ->
                 if Directory.logical_of_line dir t.cfg ~line = dead
                    && Memory_server.version psrv line < v
                 then begin
                   List.iter
                     (fun u ->
                        if List.mem line (Update.lines_touched t.layout u)
                        then
                          Update.apply_to_line t.layout u ~line
                            (Memory_server.line psrv line))
                     h.h_log;
                   Memory_server.force_version psrv line v;
                   incr replayed_here;
                   match probe with
                   | Some p ->
                     p.Probe.on_publish ~thread:(-1) ~time:now
                       ~server:promoted ~line ~version:v
                       ~data:(Memory_server.line psrv line)
                   | None -> ()
                 end)
              h.h_line_versions)
         (List.rev st.history))
    locks;
  t.replayed <- t.replayed + !replayed_here;
  !replayed_here

(* Single-shard recovery (the classic path; the sharded facade composes
   [replay] across shards instead): promote the backup, replay, wake
   parked threads. *)
let recover t ~dir ~servers ~dead ~probe ~now =
  t.leases_expired <- t.leases_expired + 1;
  t.cfg_epoch <- t.cfg_epoch + 1;
  let promoted = Directory.promote ~epoch:t.cfg_epoch dir ~dead in
  Memory_server.set_epoch servers.(promoted) (Directory.epoch dir);
  let replayed_here = replay t ~dir ~servers ~dead ~promoted ~probe ~now in
  List.iter
    (fun wake -> Desim.Engine.schedule_at t.engine now wake)
    (Directory.take_waiters dir);
  (promoted, replayed_here)

(* ------------------------------------------------------------------ *)
(* Shard takeover (control-plane crash): the ring successor absorbs the
   dead shard's slice. Control state is modeled as synchronously
   replicated among the shards — what the simulation charges for is the
   detection latency, the parked requesters' re-issued round trips, and
   the re-driven reply pushes. *)

let absorb t ~from ~now =
  let moved = ref 0 in
  Hashtbl.iter
    (fun id st ->
       Hashtbl.replace t.locks id st;
       incr moved)
    from.locks;
  Hashtbl.iter
    (fun id st ->
       Hashtbl.replace t.barriers id st;
       incr moved)
    from.barriers;
  Hashtbl.iter
    (fun id st ->
       Hashtbl.replace t.conds id st;
       incr moved)
    from.conds;
  Hashtbl.reset from.locks;
  Hashtbl.reset from.barriers;
  Hashtbl.reset from.conds;
  (* Re-drive reply pushes the dead shard could not send, from the
     takeover shard's own endpoint. Oldest first. *)
  let orphans = List.rev from.orphans in
  from.orphans <- [];
  List.iter
    (fun o -> push t ~now ~dst:o.o_endpoint ~bytes:o.o_bytes o.o_fire)
    orphans;
  (!moved, List.length orphans)

let heartbeats t = t.heartbeats
let leases_expired t = t.leases_expired
let replayed_updates t = t.replayed
