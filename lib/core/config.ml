type model = Regc | Sc_invalidate

(* Which pairs a partitioned memory server loses. Isolate cuts the victim
   off from everyone (clients stall and park until the heal — no false
   promotion can corrupt anything because nobody reaches the victim
   either). Control cuts only the manager-shard nodes: clients still
   reach the victim while the lease monitor suspects it — the
   zombie-primary case the epoch fence exists for. *)
type partition_scope = Isolate | Control

type t = {
  model : model;
  page_bytes : int;
  pages_per_line : int;
  cache_lines : int;
  evict_dirty_first : bool;
  prefetch : bool;
  small_threshold : int;
  large_threshold : int;
  arena_chunk_bytes : int;
  stripe_lines : int;
  update_log_history : int;
  manager_bypass : bool;
  coalesce_updates : bool;
  t_mem : float;
  t_flop : float;
  server_service : Desim.Time.span;
  manager_service : Desim.Time.span;
  diff_apply_ns_per_byte : float;
  memory_servers : int;
  threads_per_node : int;
  fabric : Fabric.Profile.t;
  seed : int;
  sanitize : bool;
  fault_level : Fabric.Faults.level;
  shuffle : bool;
  replication : int;
  crash_server : (int * int) option;
  lease_interval : Desim.Time.span;
  max_threads : int;
  manager_shards : int;
  home_migration : bool;
  migration_window : int;
  crash_shard : (int * int) option;
  domains : int;
  (* Gray-failure injection: (server, scope, start_ns, heal_ns) makes the
     server's node unreachable per scope inside [start, heal) — it keeps
     executing, unlike crash_server. stall_server (server, start_ns,
     heal_ns) adds a constant multi-RTT penalty to its traffic instead. *)
  partition_server : (int * partition_scope * int * int) option;
  stall_server : (int * int * int) option;
}

let default =
  { model = Regc;
    page_bytes = 4096;
    pages_per_line = 4;
    cache_lines = 1024;  (* 16 MiB of cached lines per thread *)
    evict_dirty_first = true;
    prefetch = true;
    small_threshold = 32 * 1024;
    large_threshold = 1024 * 1024;
    arena_chunk_bytes = 64 * 1024;
    stripe_lines = 4;
    update_log_history = 64;
    manager_bypass = false;
    coalesce_updates = false;
    t_mem = 1.2;
    t_flop = 0.8;
    server_service = Desim.Time.ns 1_500;
    manager_service = Desim.Time.ns 1_000;
    diff_apply_ns_per_byte = 0.25;
    memory_servers = 1;
    threads_per_node = 8;
    fabric = Fabric.Profile.ib_qdr_verbs;
    seed = 42;
    sanitize = false;
    fault_level = Fabric.Faults.Off;
    shuffle = false;
    replication = 0;
    crash_server = None;
    lease_interval = Desim.Time.ns 100_000;
    max_threads = 512;
    manager_shards = 1;
    home_migration = false;
    migration_window = 32;
    crash_shard = None;
    domains = 1;
    partition_server = None;
    stall_server = None }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let line_bytes t = t.page_bytes * t.pages_per_line

let line_shift t =
  let rec shift n acc = if n <= 1 then acc else shift (n lsr 1) (acc + 1) in
  shift (line_bytes t) 0

let validate t =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let* () = check (is_pow2 t.page_bytes) "page_bytes must be a power of two" in
  let* () =
    check
      (is_pow2 t.pages_per_line && t.pages_per_line <= 62)
      "pages_per_line must be a power of two <= 62"
  in
  let* () = check (t.cache_lines >= 2) "cache_lines must be >= 2" in
  let* () =
    check (t.small_threshold >= 8) "small_threshold must be >= 8"
  in
  let* () =
    check
      (t.large_threshold >= t.small_threshold)
      "large_threshold must be >= small_threshold"
  in
  let* () =
    check
      (t.arena_chunk_bytes >= t.small_threshold
       && t.arena_chunk_bytes mod line_bytes t = 0)
      "arena_chunk_bytes must be a line multiple >= small_threshold"
  in
  let* () = check (t.stripe_lines >= 1) "stripe_lines must be >= 1" in
  let* () =
    check (t.update_log_history >= 0) "update_log_history must be >= 0"
  in
  let* () = check (t.memory_servers >= 1) "memory_servers must be >= 1" in
  let* () =
    check (t.threads_per_node >= 1) "threads_per_node must be >= 1"
  in
  let* () =
    check
      (t.t_mem >= 0. && t.t_flop >= 0. && t.diff_apply_ns_per_byte >= 0.)
      "cost-model rates must be non-negative"
  in
  let* () =
    check (t.replication = 0 || t.replication = 1)
      "replication must be 0 or 1 (primary-backup)"
  in
  let* () =
    check
      (t.replication = 0 || t.memory_servers >= 2)
      "replication requires memory_servers >= 2 (a backup must live on \
       another node)"
  in
  let* () =
    check (t.replication = 0 || t.model = Regc)
      "replication is only modeled for the regc engine"
  in
  let* () =
    match t.crash_server with
    | None -> Ok ()
    | Some (srv, at) ->
      let* () =
        check
          (srv >= 0 && srv < t.memory_servers)
          "crash_server index out of range"
      in
      let* () = check (at >= 0) "crash_server instant must be >= 0" in
      check (t.model = Regc)
        "crash_server is only modeled for the regc engine"
  in
  let* () = check (t.lease_interval >= 1) "lease_interval must be >= 1ns" in
  let* () = check (t.max_threads >= 1) "max_threads must be >= 1" in
  let* () =
    check (t.manager_shards >= 1) "manager_shards must be >= 1"
  in
  let* () =
    check
      ((not t.manager_bypass) || t.manager_shards = 1)
      "manager_bypass requires manager_shards = 1 (bypass is a \
       single-compute-node optimization)"
  in
  let* () =
    check (t.migration_window >= 2) "migration_window must be >= 2"
  in
  let* () =
    check
      ((not t.home_migration) || t.model = Regc)
      "home_migration is only modeled for the regc engine"
  in
  let* () = check (t.domains >= 1) "domains must be >= 1" in
  (* ParDES exclusions: parallel runs keep the conservative-safety
     argument simple by forbidding every feature that either perturbs
     timing sub-lookahead (faults, shuffle), needs the global sequential
     schedule (sanitize feeds the vector-clock analyzer), or lets the
     protocol bypass the hub (manager_bypass loopback, home migration's
     direct blits). *)
  let* () =
    check (t.domains = 1 || t.model = Regc)
      "domains > 1 is only modeled for the regc engine"
  in
  let* () =
    check (t.domains = 1 || not t.sanitize)
      "domains > 1 is incompatible with sanitize (RegCSan needs the \
       sequential engine)"
  in
  let* () =
    check (t.domains = 1 || not t.shuffle)
      "domains > 1 is incompatible with shuffle (tie fuzzing needs the \
       sequential engine)"
  in
  let* () =
    check (t.domains = 1 || t.fault_level = Fabric.Faults.Off)
      "domains > 1 is incompatible with fault injection"
  in
  let* () =
    check (t.domains = 1 || (t.crash_server = None && t.crash_shard = None))
      "domains > 1 is incompatible with crash injection"
  in
  let* () =
    check (t.domains = 1 || not t.home_migration)
      "domains > 1 is incompatible with home_migration"
  in
  let* () =
    check (t.domains = 1 || not t.manager_bypass)
      "domains > 1 is incompatible with manager_bypass"
  in
  let* () =
    match t.crash_shard with
    | None -> Ok ()
    | Some (shard, at) ->
      let* () =
        check (t.manager_shards >= 2)
          "crash_shard requires manager_shards >= 2 (a surviving shard must \
           take over)"
      in
      let* () =
        check
          (shard >= 1 && shard < t.manager_shards)
          "crash_shard index out of range (shard 0 hosts allocation and is \
           not killable)"
      in
      let* () = check (at >= 0) "crash_shard instant must be >= 0" in
      let* () =
        check (t.crash_server = None)
          "crash_shard and crash_server are mutually exclusive \
           (single-failure model)"
      in
      check (t.model = Regc) "crash_shard is only modeled for the regc engine"
  in
  let* () =
    match t.partition_server with
    | None -> Ok ()
    | Some (srv, _, start, heal) ->
      let* () =
        check
          (srv >= 0 && srv < t.memory_servers)
          "partition_server index out of range"
      in
      let* () =
        check
          (0 <= start && start < heal)
          "partition_server window must satisfy 0 <= start < heal"
      in
      let* () =
        check (t.model = Regc)
          "partition_server is only modeled for the regc engine"
      in
      let* () =
        check (t.replication = 1)
          "partition_server requires replication = 1 (promotion under a \
           false suspicion needs a backup to promote)"
      in
      let* () =
        check
          (t.crash_server = None && t.crash_shard = None)
          "partition_server and crash injection are mutually exclusive \
           (single-failure model)"
      in
      check (t.domains = 1)
        "partition_server is incompatible with domains > 1"
  in
  match t.stall_server with
  | None -> Ok ()
  | Some (srv, start, heal) ->
    let* () =
      check
        (srv >= 0 && srv < t.memory_servers)
        "stall_server index out of range"
    in
    let* () =
      check
        (0 <= start && start < heal)
        "stall_server window must satisfy 0 <= start < heal"
    in
    let* () =
      check (t.model = Regc)
        "stall_server is only modeled for the regc engine"
    in
    check (t.domains = 1) "stall_server is incompatible with domains > 1"

let model_name = function Regc -> "regc" | Sc_invalidate -> "sc-invalidate"

let scope_name = function Isolate -> "isolate" | Control -> "control"

let scope_of_string = function
  | "isolate" | "iso" -> Ok Isolate
  | "control" | "ctl" -> Ok Control
  | s -> Error (Printf.sprintf "unknown partition scope %S" s)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>model=%s page=%dB line=%dpages cache=%dlines prefetch=%b dirty-first=%b sanitize=%b@ \
     torture: faults=%s shuffle=%b seed=%d@ \
     alloc: small<=%d large>%d arena=%d stripe=%d@ \
     regc: history=%d bypass=%b coalesce=%b@ \
     cost: mem=%.2fns flop=%.2fns server=%a manager=%a diff=%.3fns/B@ \
     layout: %d server(s), %d threads/node, %s@ \
     ft: replication=%d crash=%s lease=%a@ \
     ctl: shards=%d max-threads=%d migrate=%b crash-shard=%s"
    (model_name t.model)
    t.page_bytes t.pages_per_line t.cache_lines t.prefetch
    t.evict_dirty_first t.sanitize
    (Fabric.Faults.level_name t.fault_level)
    t.shuffle t.seed t.small_threshold t.large_threshold
    t.arena_chunk_bytes t.stripe_lines t.update_log_history t.manager_bypass
    t.coalesce_updates
    t.t_mem t.t_flop Desim.Time.pp_span t.server_service Desim.Time.pp_span
    t.manager_service t.diff_apply_ns_per_byte t.memory_servers
    t.threads_per_node t.fabric.Fabric.Profile.name
    t.replication
    (match t.crash_server with
     | None -> "none"
     | Some (srv, at) -> Printf.sprintf "server%d@%dns" srv at)
    Desim.Time.pp_span t.lease_interval
    t.manager_shards t.max_threads t.home_migration
    (match t.crash_shard with
     | None -> "none"
     | Some (shard, at) -> Printf.sprintf "shard%d@%dns" shard at);
  (* Only parallel runs mention ParDES, keeping every domains = 1 report
     byte-identical to the sequential engine's. Likewise only gray-failure
     runs mention partitions/stalls. *)
  if t.domains <> 1 then Format.fprintf ppf "@ par: domains=%d" t.domains;
  if t.partition_server <> None || t.stall_server <> None then
    Format.fprintf ppf "@ gray: partition=%s stall=%s"
      (match t.partition_server with
       | None -> "none"
       | Some (srv, scope, start, heal) ->
         Printf.sprintf "server%d/%s@[%dns,%dns)" srv (scope_name scope)
           start heal)
      (match t.stall_server with
       | None -> "none"
       | Some (srv, start, heal) ->
         Printf.sprintf "server%d@[%dns,%dns)" srv start heal);
  Format.fprintf ppf "@]"
