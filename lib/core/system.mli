(** Assembling a Samhita instance: fabric, memory servers, control plane
    and compute threads (Figure 1 of the paper).

    Node layout mirrors the testbed: node 0 runs manager shard 0, nodes
    [1 .. memory_servers] run memory servers, compute threads pack onto
    subsequent nodes, [threads_per_node] per node (so threads on one node
    share that node's fabric ports, contending exactly where an 8-core
    Penryn node's HCA would), and manager shards [1 .. N-1] occupy
    trailing nodes when [Config.manager_shards > 1]. With
    [Config.manager_bypass] the (single) manager shard is co-located with
    the first compute node — the paper's §V single-node optimization —
    turning synchronization round trips into loopbacks. *)

type t

val create :
  ?trace:Desim.Trace.t -> ?config:Config.t -> threads:int -> unit -> t
(** Build a system able to host [threads] compute threads. Raises
    [Invalid_argument] if the configuration fails {!Config.validate} or if
    [threads] exceeds the configuration's [max_threads] field. *)

val config : t -> Config.t
val layout : t -> Layout.t
val engine : t -> Desim.Engine.t
val network : t -> Fabric.Network.t

val control_plane : t -> Control_plane.t
(** The sharded control plane facade (a single shard by default). *)

val manager : t -> Manager_shard.t
(** Shard 0 — the full control plane when [manager_shards = 1]. *)

val servers : t -> Memory_server.t array

val directory : t -> Directory.t
(** The logical-to-physical stripe map (identity until a crash recovery
    promotes a backup). *)

val total_threads : t -> int

val sanitizer : t -> Analysis.Regcsan.t option
(** The RegCSan instance observing this system, when
    [Config.sanitize] is set. Query it after {!run} for findings. *)

val set_probe : t -> Probe.t -> unit
(** Attach a protocol-event observer ({!Probe.t}); the torture oracle
    subscribes through this. Must be called before the first {!spawn}
    (raises [Invalid_argument] otherwise) so every thread sees it.
    Probes observe the global sequential schedule, so this also raises
    when [Config.domains > 1]. *)

val probe : t -> Probe.t option

val mutex : t -> Manager_shard.lock_id
(** Create a mutex (setup-time operation; no simulated cost). *)

val barrier : t -> parties:int -> Manager_shard.barrier_id
val cond : t -> Manager_shard.cond_id

val spawn : t -> (Thread_ctx.t -> unit) -> Thread_ctx.t
(** Create the next compute thread and schedule its body as a simulation
    process. The body runs when {!run} drains the engine;
    {!Thread_ctx.finish} is called on completion automatically. *)

val threads : t -> Thread_ctx.t list
(** Spawned threads, in id order. *)

val finished_threads : t -> int
(** Threads whose bodies have returned. RegCCheck compares this against
    the spawn count to detect a stall when the run is bounded by a time
    horizon instead of queue drain (crash mode, where the lease monitor
    keeps the queue non-empty). *)

val run : t -> unit
(** Drive the simulation to completion. *)

val elapsed : t -> Desim.Time.t
(** Simulated makespan so far. *)

val events : t -> int
(** Simulation events executed so far, summed over all partitions
    ({!Desim.Engine.events}) — the numerator of the ParDES events/sec
    throughput metric. *)
