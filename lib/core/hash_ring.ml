(* Consistent-hash ring assigning control-plane objects (locks, barriers,
   condition variables, pages) to manager shards. Each shard contributes
   [vnodes] virtual points hashed from (salt, shard, replica); a key is
   owned by the first point clockwise from its own hash. Adding or
   removing one shard therefore only moves the keys that fall on the
   segments the changed shard owns (~1/N of the space), which a test pins.

   Everything is derived from Desim.Rng.hash3, so placement is a pure
   function of (salt, shards, vnodes) — no RNG stream is consumed and
   replays are stable by construction. *)

type t = {
  shards : int;
  points : (int * int) array; (* (hash, shard), sorted by hash *)
}

let mask h = h land max_int

let default_vnodes = 64

let create ?(vnodes = default_vnodes) ?(salt = 0x72696e67) ~shards () =
  if shards < 1 then invalid_arg "Hash_ring.create: shards must be >= 1";
  if vnodes < 1 then invalid_arg "Hash_ring.create: vnodes must be >= 1";
  let points =
    Array.init (shards * vnodes) (fun i ->
        let shard = i / vnodes and replica = i mod vnodes in
        (mask (Desim.Rng.hash3 salt shard replica), shard))
  in
  Array.sort compare points;
  { shards; points }

let shards t = t.shards

let lookup t key =
  if t.shards = 1 then 0
  else begin
    let h = mask (Desim.Rng.hash3 0x6b6579 key 0x6873) in
    (* First point with hash >= h, wrapping to points.(0). *)
    let n = Array.length t.points in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
    done;
    snd t.points.(if !lo = n then 0 else !lo)
  end
