type entry = {
  line : int;
  data : bytes;
  mutable version : int;
  mutable twin : bytes option;
  mutable dirty_pages : int;
  mutable tick : int;
  (* Sequential-consistency mode only: this copy is the line's single
     writable instance. *)
  mutable excl : bool;
  (* Intrusive LRU chain links (see the chain invariant below). A resident
     entry points at its neighbours or a chain sentinel; an entry not on
     any chain is self-linked. *)
  mutable lru_prev : entry;
  mutable lru_next : entry;
}

type arrival = (bytes * int) option

type pending = {
  mutable stale : bool;
  mutable waiters : (arrival -> unit) list;
}

(* Resident entries live on one of two intrusive doubly-linked chains —
   [lru_dirty] for entries with dirty pages, [lru_clean] for the rest. The
   chains track *membership only* (their internal order is arbitrary):
   recency lives exclusively in the [tick] stamps, so touching an entry on
   the access path is a single store, exactly as cheap as before the
   chains existed. Victim selection scans one chain for the minimum tick —
   never the whole table: the write-biased policy reads only the dirty
   chain (typically a small fraction of residency) and falls back to the
   clean chain, and the prefetch path reads only the clean chain. Ticks
   are unique, so the choice equals the old full-table scan's exactly.
   The dirty chain doubles as the maintained index for [dirty_entries].

   Keeping the chains in strict LRU order instead (O(1) victim reads) was
   measured and rejected: it moves an unlink+append onto every touch, and
   workloads that round-robin a few lines (a stencil's rows defeat the
   single-entry fast path in [Thread_ctx.locate]) pay it per access —
   ~25% end-to-end on the Jacobi figure — while evictions, which the
   ordering would speed up, are orders of magnitude rarer. *)
type t = {
  layout : Layout.t;
  capacity : int;
  evict_dirty_first : bool;
  table : (int, entry) Hashtbl.t;
  pending : (int, pending) Hashtbl.t;
  mutable tick : int;
  lru_clean : entry;  (* sentinel *)
  lru_dirty : entry;  (* sentinel *)
  c_hits : Desim.Stats.Counter.t;
  c_misses : Desim.Stats.Counter.t;
  c_evictions : Desim.Stats.Counter.t;
  c_dirty_evictions : Desim.Stats.Counter.t;
  c_invalidations : Desim.Stats.Counter.t;
  c_prefetch_installs : Desim.Stats.Counter.t;
}

let sentinel () =
  let rec s =
    { line = -1; data = Bytes.empty; version = 0; twin = None;
      dirty_pages = 0; tick = min_int; excl = false; lru_prev = s;
      lru_next = s }
  in
  s

let create (cfg : Config.t) layout =
  { layout;
    capacity = cfg.Config.cache_lines;
    evict_dirty_first = cfg.Config.evict_dirty_first;
    table = Hashtbl.create 256;
    pending = Hashtbl.create 16;
    tick = 0;
    lru_clean = sentinel ();
    lru_dirty = sentinel ();
    c_hits = Desim.Stats.Counter.create ();
    c_misses = Desim.Stats.Counter.create ();
    c_evictions = Desim.Stats.Counter.create ();
    c_dirty_evictions = Desim.Stats.Counter.create ();
    c_invalidations = Desim.Stats.Counter.create ();
    c_prefetch_installs = Desim.Stats.Counter.create () }

let capacity t = t.capacity
let size t = Hashtbl.length t.table

let is_dirty e = e.dirty_pages <> 0

(* ---- intrusive chain primitives ---- *)

(* Idempotent: unlinking a self-linked entry is a no-op. *)
let unlink e =
  e.lru_prev.lru_next <- e.lru_next;
  e.lru_next.lru_prev <- e.lru_prev;
  e.lru_prev <- e;
  e.lru_next <- e

(* Chain order is arbitrary; push anywhere cheap (the front). *)
let push (s : entry) (e : entry) =
  e.lru_prev <- s;
  e.lru_next <- s.lru_next;
  s.lru_next.lru_prev <- e;
  s.lru_next <- e

let linked e = e.lru_next != e

(* The access path: recency is the tick stamp alone, so this stays the
   single store it was before the chains existed. *)
let touch t (e : entry) =
  t.tick <- t.tick + 1;
  e.tick <- t.tick

let find t line =
  match Hashtbl.find_opt t.table line with
  | Some e ->
    touch t e;
    Some e
  | None -> None

(* [find] without the option wrapper: [Hashtbl.find_opt] allocates a
   [Some] and [find] rebuilds another, two minor blocks on every access
   whose line differs from the previous one (any stencil kernel defeats
   the single-entry fast path). The hot callers match the exception
   inline, so no [Some] is ever built on the hit path. *)
let find_exn t line =
  let e = Hashtbl.find t.table line in
  touch t e;
  e

let peek t line = Hashtbl.find_opt t.table line

(* Minimum-tick entry of one chain (ticks are unique, so the walk order
   cannot matter). *)
let chain_oldest (s : entry) =
  let rec go (at : entry) (best : entry option) =
    if at == s then best
    else
      go at.lru_next
        (match best with
         | Some b when b.tick < at.tick -> best
         | _ -> Some at)
  in
  go s.lru_next None

(* Scans only the relevant chain(s); equivalent to the old full-table scan
   (see the chain invariant above). *)
let choose_victim t ~allow_dirty =
  if t.evict_dirty_first then begin
    let d = if allow_dirty then chain_oldest t.lru_dirty else None in
    match d with Some _ -> d | None -> chain_oldest t.lru_clean
  end
  else
    let d = if allow_dirty then chain_oldest t.lru_dirty else None in
    let c = chain_oldest t.lru_clean in
    match (d, c) with
    | None, v | v, None -> v
    | Some de, Some ce -> if de.tick < ce.tick then Some de else Some ce

let remove t (e : entry) =
  unlink e;
  Hashtbl.remove t.table e.line

let insert t ~line ~data ~version ~evict =
  (* The caller may have yielded between detecting the miss and calling
     insert (clock sync, fetch round trip, or the victim flush below), and
     an asynchronous prefetch completion can install lines meanwhile — so
     re-check rather than assume absence. *)
  match Hashtbl.find_opt t.table line with
  | Some e ->
    touch t e;
    e
  | None ->
    if Hashtbl.length t.table >= t.capacity then begin
      match choose_victim t ~allow_dirty:true with
      | None -> ()
      | Some victim ->
        Desim.Stats.Counter.incr t.c_evictions;
        if is_dirty victim then
          Desim.Stats.Counter.incr t.c_dirty_evictions;
        (* [evict] may flush (and yield); re-check afterwards. *)
        evict victim;
        remove t victim
    end;
    (match Hashtbl.find_opt t.table line with
     | Some e ->
       touch t e;
       e
     | None ->
       let rec e =
         { line; data; version; twin = None; dirty_pages = 0; tick = 0;
           excl = false; lru_prev = e; lru_next = e }
       in
       t.tick <- t.tick + 1;
       e.tick <- t.tick;
       push t.lru_clean e;
       Hashtbl.replace t.table line e;
       e)

let ensure_room t ~line ~evict =
  let rec go () =
    if
      (not (Hashtbl.mem t.table line))
      && Hashtbl.length t.table >= t.capacity
    then begin
      match choose_victim t ~allow_dirty:true with
      | None -> ()
      | Some victim ->
        Desim.Stats.Counter.incr t.c_evictions;
        if is_dirty victim then Desim.Stats.Counter.incr t.c_dirty_evictions;
        evict victim;
        remove t victim;
        go ()
    end
  in
  go ()

let try_install t ~line ~data ~version =
  if Hashtbl.mem t.table line then false
  else begin
    let have_room =
      if Hashtbl.length t.table < t.capacity then true
      else
        match choose_victim t ~allow_dirty:false with
        | Some victim ->
          Desim.Stats.Counter.incr t.c_evictions;
          remove t victim;
          true
        | None -> false
    in
    if have_room then begin
      let rec e =
        { line; data; version; twin = None; dirty_pages = 0; tick = 0;
          excl = false; lru_prev = e; lru_next = e }
      in
      t.tick <- t.tick + 1;
      e.tick <- t.tick;
      push t.lru_clean e;
      Hashtbl.replace t.table line e;
      Desim.Stats.Counter.incr t.c_prefetch_installs
    end;
    have_room
  end

let mark_written t e ~offset ~len =
  (match e.twin with
   | None -> e.twin <- Some (Bytes.copy e.data)
   | Some _ -> ());
  let was_dirty = is_dirty e in
  let first = Layout.page_in_line t.layout ~offset in
  let last = Layout.page_in_line t.layout ~offset:(offset + len - 1) in
  for p = first to last do
    e.dirty_pages <- e.dirty_pages lor (1 lsl p)
  done;
  if (not was_dirty) && is_dirty e && linked e then begin
    unlink e;
    push t.lru_dirty e
  end

let invalidate t line =
  (match Hashtbl.find_opt t.table line with
   | Some e ->
     Desim.Stats.Counter.incr t.c_invalidations;
     remove t e
   | None -> ());
  match Hashtbl.find_opt t.pending line with
  | Some p -> p.stale <- true
  | None -> ()

(* Walk the dirty chain (the maintained index) instead of folding the
   whole table; only the handful of dirty entries pay the sort. *)
let dirty_entries t =
  let rec collect at acc =
    if at == t.lru_dirty then acc else collect at.lru_next (at :: acc)
  in
  collect t.lru_dirty.lru_next []
  |> List.sort (fun a b -> Int.compare a.line b.line)

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
  |> List.sort (fun a b -> Int.compare a.line b.line)

let clean t e ~version =
  e.twin <- None;
  let was_dirty = is_dirty e in
  e.dirty_pages <- 0;
  e.version <- version;
  if was_dirty && linked e then begin
    unlink e;
    push t.lru_clean e
  end

let pending_start t line =
  if Hashtbl.mem t.pending line then false
  else begin
    Hashtbl.replace t.pending line { stale = false; waiters = [] };
    true
  end

let is_pending t line = Hashtbl.mem t.pending line

let pending_wait t line =
  match Hashtbl.find_opt t.pending line with
  | None -> None
  | Some p -> Some (fun wake -> p.waiters <- wake :: p.waiters)

let pending_abort t line =
  match Hashtbl.find_opt t.pending line with
  | None -> ()
  | Some p ->
    Hashtbl.remove t.pending line;
    List.iter (fun wake -> wake None) (List.rev p.waiters)

let pending_complete t line ~data ~version =
  match Hashtbl.find_opt t.pending line with
  | None -> ()
  | Some p ->
    Hashtbl.remove t.pending line;
    let result = if p.stale then None else Some (data, version) in
    (match (p.waiters, result) with
     | [], Some (data, version) ->
       ignore (try_install t ~line ~data ~version : bool)
     | [], None -> ()
     | waiters, result ->
       (* FIFO wake order: earliest waiter installs, the rest find it. *)
       List.iter (fun wake -> wake result) (List.rev waiters))

let hits t = Desim.Stats.Counter.value t.c_hits
let misses t = Desim.Stats.Counter.value t.c_misses
let evictions t = Desim.Stats.Counter.value t.c_evictions
let dirty_evictions t = Desim.Stats.Counter.value t.c_dirty_evictions
let invalidations t = Desim.Stats.Counter.value t.c_invalidations
let prefetch_installs t = Desim.Stats.Counter.value t.c_prefetch_installs
let note_hit t = Desim.Stats.Counter.incr t.c_hits
let note_miss t = Desim.Stats.Counter.incr t.c_misses
