type entry = {
  line : int;
  data : bytes;
  mutable version : int;
  mutable twin : bytes option;
  mutable dirty_pages : int;
  mutable tick : int;
  (* Sequential-consistency mode only: this copy is the line's single
     writable instance. *)
  mutable excl : bool;
}

type arrival = (bytes * int) option

type pending = {
  mutable stale : bool;
  mutable waiters : (arrival -> unit) list;
}

type t = {
  layout : Layout.t;
  capacity : int;
  evict_dirty_first : bool;
  table : (int, entry) Hashtbl.t;
  pending : (int, pending) Hashtbl.t;
  mutable tick : int;
  c_hits : Desim.Stats.Counter.t;
  c_misses : Desim.Stats.Counter.t;
  c_evictions : Desim.Stats.Counter.t;
  c_dirty_evictions : Desim.Stats.Counter.t;
  c_invalidations : Desim.Stats.Counter.t;
  c_prefetch_installs : Desim.Stats.Counter.t;
}

let create (cfg : Config.t) layout =
  { layout;
    capacity = cfg.Config.cache_lines;
    evict_dirty_first = cfg.Config.evict_dirty_first;
    table = Hashtbl.create 256;
    pending = Hashtbl.create 16;
    tick = 0;
    c_hits = Desim.Stats.Counter.create ();
    c_misses = Desim.Stats.Counter.create ();
    c_evictions = Desim.Stats.Counter.create ();
    c_dirty_evictions = Desim.Stats.Counter.create ();
    c_invalidations = Desim.Stats.Counter.create ();
    c_prefetch_installs = Desim.Stats.Counter.create () }

let capacity t = t.capacity
let size t = Hashtbl.length t.table

let touch t (e : entry) =
  t.tick <- t.tick + 1;
  e.tick <- t.tick

let find t line =
  match Hashtbl.find_opt t.table line with
  | Some e ->
    touch t e;
    Some e
  | None -> None

let peek t line = Hashtbl.find_opt t.table line

let is_dirty e = e.dirty_pages <> 0

(* Scan for the LRU victim; with the write-biased policy dirty lines are
   preferred (flushing them cheapens future consistency points). *)
let choose_victim t ~allow_dirty =
  let best = ref None in
  let better cand =
    match !best with
    | None -> true
    | Some b ->
      if t.evict_dirty_first && is_dirty cand <> is_dirty b then
        (* Prefer dirty when allowed; among equals fall through to LRU. *)
        is_dirty cand
      else cand.tick < b.tick
  in
  Hashtbl.iter
    (fun _ e ->
       if (allow_dirty || not (is_dirty e)) && better e then best := Some e)
    t.table;
  !best

let insert t ~line ~data ~version ~evict =
  (* The caller may have yielded between detecting the miss and calling
     insert (clock sync, fetch round trip, or the victim flush below), and
     an asynchronous prefetch completion can install lines meanwhile — so
     re-check rather than assume absence. *)
  match Hashtbl.find_opt t.table line with
  | Some e ->
    touch t e;
    e
  | None ->
    if Hashtbl.length t.table >= t.capacity then begin
      match choose_victim t ~allow_dirty:true with
      | None -> ()
      | Some victim ->
        Desim.Stats.Counter.incr t.c_evictions;
        if is_dirty victim then
          Desim.Stats.Counter.incr t.c_dirty_evictions;
        (* [evict] may flush (and yield); re-check afterwards. *)
        evict victim;
        Hashtbl.remove t.table victim.line
    end;
    (match Hashtbl.find_opt t.table line with
     | Some e ->
       touch t e;
       e
     | None ->
       let e =
         { line; data; version; twin = None; dirty_pages = 0; tick = 0;
          excl = false }
       in
       touch t e;
       Hashtbl.replace t.table line e;
       e)

let ensure_room t ~line ~evict =
  let rec go () =
    if
      (not (Hashtbl.mem t.table line))
      && Hashtbl.length t.table >= t.capacity
    then begin
      match choose_victim t ~allow_dirty:true with
      | None -> ()
      | Some victim ->
        Desim.Stats.Counter.incr t.c_evictions;
        if is_dirty victim then Desim.Stats.Counter.incr t.c_dirty_evictions;
        evict victim;
        Hashtbl.remove t.table victim.line;
        go ()
    end
  in
  go ()

let try_install t ~line ~data ~version =
  if Hashtbl.mem t.table line then false
  else begin
    let have_room =
      if Hashtbl.length t.table < t.capacity then true
      else
        match choose_victim t ~allow_dirty:false with
        | Some victim ->
          Desim.Stats.Counter.incr t.c_evictions;
          Hashtbl.remove t.table victim.line;
          true
        | None -> false
    in
    if have_room then begin
      let e =
        { line; data; version; twin = None; dirty_pages = 0; tick = 0;
          excl = false }
      in
      touch t e;
      Hashtbl.replace t.table line e;
      Desim.Stats.Counter.incr t.c_prefetch_installs
    end;
    have_room
  end

let mark_written t e ~offset ~len =
  if e.twin = None then e.twin <- Some (Bytes.copy e.data);
  let first = Layout.page_in_line t.layout ~offset in
  let last = Layout.page_in_line t.layout ~offset:(offset + len - 1) in
  for p = first to last do
    e.dirty_pages <- e.dirty_pages lor (1 lsl p)
  done

let invalidate t line =
  if Hashtbl.mem t.table line then begin
    Desim.Stats.Counter.incr t.c_invalidations;
    Hashtbl.remove t.table line
  end;
  match Hashtbl.find_opt t.pending line with
  | Some p -> p.stale <- true
  | None -> ()

let dirty_entries t =
  Hashtbl.fold (fun _ e acc -> if is_dirty e then e :: acc else acc) t.table []
  |> List.sort (fun a b -> compare a.line b.line)

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
  |> List.sort (fun a b -> compare a.line b.line)

let clean _t e ~version =
  e.twin <- None;
  e.dirty_pages <- 0;
  e.version <- version

let pending_start t line =
  if Hashtbl.mem t.pending line then false
  else begin
    Hashtbl.replace t.pending line { stale = false; waiters = [] };
    true
  end

let is_pending t line = Hashtbl.mem t.pending line

let pending_wait t line =
  match Hashtbl.find_opt t.pending line with
  | None -> None
  | Some p -> Some (fun wake -> p.waiters <- wake :: p.waiters)

let pending_complete t line ~data ~version =
  match Hashtbl.find_opt t.pending line with
  | None -> ()
  | Some p ->
    Hashtbl.remove t.pending line;
    let result = if p.stale then None else Some (data, version) in
    (match (p.waiters, result) with
     | [], Some (data, version) ->
       ignore (try_install t ~line ~data ~version : bool)
     | [], None -> ()
     | waiters, result ->
       (* FIFO wake order: earliest waiter installs, the rest find it. *)
       List.iter (fun wake -> wake result) (List.rev waiters))

let hits t = Desim.Stats.Counter.value t.c_hits
let misses t = Desim.Stats.Counter.value t.c_misses
let evictions t = Desim.Stats.Counter.value t.c_evictions
let dirty_evictions t = Desim.Stats.Counter.value t.c_dirty_evictions
let invalidations t = Desim.Stats.Counter.value t.c_invalidations
let prefetch_installs t = Desim.Stats.Counter.value t.c_prefetch_installs
let note_hit t = Desim.Stats.Counter.incr t.c_hits
let note_miss t = Desim.Stats.Counter.incr t.c_misses
