(* The sharded control plane: N Manager_shard instances behind one
   facade. Sync objects (locks, barriers, condvars) get facade-global ids
   and are assigned to shards by the consistent-hash ring; allocation
   stays on shard 0 (one bump pointer keeps GAS addresses identical to
   the unsharded build). A logical-to-physical shard map mirrors the
   Directory's server map: after a shard crash, the ring successor
   absorbs the dead shard's slice and the map repoints, so requesters
   re-resolve and land on the takeover shard. With manager_shards = 1
   everything degenerates to the classic singleton, byte-for-byte. *)

type t = {
  cfg : Config.t;
  engine : Desim.Engine.t;
  shards : Manager_shard.t array;  (* by logical shard id *)
  ring : Hash_ring.t;
  (* physical.(logical) = shard currently serving that slice. Identity
     until a shard crash promotes the ring successor. *)
  physical : int array;
  nodes : int array;  (* fabric node of each (logical) shard, pre-crash *)
  mutable next_id : int;
  mutable dead_shard : int option;
  mutable shard_waiters : (unit -> unit) list;
  mutable shard_heartbeats : int;
  mutable takeovers : int;
  mutable absorbed_objects : int;
  mutable redriven_pushes : int;
}

let create cfg ~engine ~shards ~nodes =
  let n = Array.length shards in
  if n < 1 then invalid_arg "Control_plane.create: at least one shard";
  { cfg;
    engine;
    shards;
    ring = Hash_ring.create ~shards:n ();
    physical = Array.init n Fun.id;
    nodes;
    next_id = 1;
    dead_shard = None;
    shard_waiters = [];
    shard_heartbeats = 0;
    takeovers = 0;
    absorbed_objects = 0;
    redriven_pushes = 0 }

let shard_count t = Array.length t.shards

let shard t i = t.shards.(i)

let shards t = t.shards

(* The shard currently serving sync object [id]. *)
let shard_for t id = t.shards.(t.physical.(Hash_ring.lookup t.ring id))

let logical_shard_for t id = Hash_ring.lookup t.ring id

(* Allocation is pinned to shard 0 so the bump pointer — and therefore
   every GAS address — matches the unsharded build exactly. Shard 0 is
   never killable (Config.validate). *)
let alloc_shard t = t.shards.(t.physical.(0))

let fresh_id t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  id

let mutex_create t =
  let id = fresh_id t in
  Manager_shard.lock_register (shard_for t id) ~id;
  id

let barrier_create t ~parties =
  if parties <= 0 then invalid_arg "Manager_shard.barrier_create: parties";
  let id = fresh_id t in
  Manager_shard.barrier_register (shard_for t id) ~id ~parties;
  id

let cond_create t =
  let id = fresh_id t in
  Manager_shard.cond_register (shard_for t id) ~id;
  id

(* ------------------------------------------------------------------ *)
(* Shard-crash takeover                                                *)

let shard_failed t logical = t.dead_shard = Some logical

let any_shard_failed t = t.dead_shard <> None

let shard_node_of t node =
  let found = ref None in
  Array.iteri (fun i n -> if n = node then found := Some i) t.nodes;
  !found

let await_shard_recovery t ~wake =
  t.shard_waiters <- wake :: t.shard_waiters

let note_shard_heartbeat t = t.shard_heartbeats <- t.shard_heartbeats + 1

(* The ring successor absorbs the dead shard's slice. Mirrors
   Directory.promote for memory servers: single-failure model, the map
   repoints, parked requesters are rescheduled at [now]. *)
let recover_shard t ~dead ~now =
  if t.dead_shard <> None then
    invalid_arg
      "Control_plane.recover_shard: a shard already failed (single-failure \
       model)";
  if dead = 0 then
    invalid_arg "Control_plane.recover_shard: shard 0 cannot be killed";
  let n = Array.length t.shards in
  let takeover = (dead + 1) mod n in
  Array.iteri
    (fun logical phys -> if phys = dead then t.physical.(logical) <- takeover)
    t.physical;
  t.dead_shard <- Some dead;
  t.takeovers <- t.takeovers + 1;
  let moved, redriven =
    Manager_shard.absorb t.shards.(takeover) ~from:t.shards.(dead) ~now
  in
  t.absorbed_objects <- t.absorbed_objects + moved;
  t.redriven_pushes <- t.redriven_pushes + redriven;
  let ws = List.rev t.shard_waiters in
  t.shard_waiters <- [];
  List.iter (fun wake -> Desim.Engine.schedule_at t.engine now wake) ws;
  (takeover, moved, redriven)

(* ------------------------------------------------------------------ *)
(* Memory-server recovery, composed across shards                      *)

(* Promote once, then replay every shard's surviving logs in (shard,
   lock id) order, then wake the parked threads once. With one shard
   this is exactly Manager_shard.recover. [detecting] is the shard whose
   lease monitor expired the lease. *)
let recover_server t ~dir ~servers ~dead ~probe ~now ~detecting =
  (* The detecting shard's lease expiry bumps its configuration epoch;
     promotion stamps the directory slots and the promoted replica with
     it. The suspected server keeps its old epoch — if it is merely
     partitioned (not dead), its in-flight round trips now fence. *)
  Manager_shard.note_lease_expired t.shards.(detecting);
  let promoted =
    Directory.promote ~epoch:(Manager_shard.epoch t.shards.(detecting)) dir
      ~dead
  in
  Memory_server.set_epoch servers.(promoted) (Directory.epoch dir);
  let replayed = ref 0 in
  Array.iter
    (fun sh ->
       replayed :=
         !replayed
         + Manager_shard.replay sh ~dir ~servers ~dead ~promoted ~probe ~now)
    t.shards;
  List.iter
    (fun wake -> Desim.Engine.schedule_at t.engine now wake)
    (Directory.take_waiters dir);
  (promoted, !replayed)

(* A falsely suspected server answered a probe after its partition
   healed: resync it back in as the backup of whichever primary it maps
   to now. The resync is an epoch-stamped diff against the new primary's
   versions — only lines the primary currently serves where the zombie
   is behind are copied — modeled like the home-migration blit as a
   zero-latency background copy (the lease monitor's probe round trip
   already charged the detection latency). Writes the zombie absorbed as
   a Control-scope zombie primary before the promotion were
   synchronously mirrored to exactly the server that got promoted, so
   nothing it holds is newer than the primary; stale lines are simply
   overwritten. *)
let rejoin_server t ~dir ~servers ~zombie ~probe ~now =
  let z = servers.(zombie) in
  Memory_server.set_epoch z (Directory.epoch dir);
  let copied = ref 0 in
  let primary = ref zombie in
  Array.iteri
    (fun pi p ->
       if pi <> zombie && not (Directory.failed dir pi) then
         match Memory_server.backup p with
         | Some b when Memory_server.id b = zombie ->
           primary := pi;
           Memory_server.iter_lines p (fun line data v ->
               (* Version compare alone is not enough: a post-heal mirror
                  may have applied a diff onto the zombie's stale base and
                  forced the versions equal while the bytes still differ
                  (the zombie missed the diffs degraded away during the
                  partition). The resync must compare content. *)
               if Directory.server_of_line dir t.cfg ~line = pi
                  && (Memory_server.version z line < v
                      || not (Bytes.equal (Memory_server.line z line) data))
               then begin
                 let dst = Memory_server.line z line in
                 Bytes.blit data 0 dst 0 (Bytes.length data);
                 Memory_server.force_version z line v;
                 incr copied
               end)
         | _ -> ())
    servers;
  Directory.note_rejoin dir;
  (match probe with
   | Some p ->
     p.Probe.on_rejoin ~time:now ~zombie ~primary:!primary ~copied:!copied
   | None -> ());
  (!primary, !copied)

(* ------------------------------------------------------------------ *)
(* Aggregated introspection (deadlock analysis, metrics, reports)      *)

let concat_sorted f t =
  List.sort_uniq Int.compare
    (Array.fold_left (fun acc sh -> f sh @ acc) [] t.shards)

let lock_ids t = concat_sorted Manager_shard.lock_ids t
let barrier_ids t = concat_sorted Manager_shard.barrier_ids t
let cond_ids t = concat_sorted Manager_shard.cond_ids t

let lock_holder t lock = Manager_shard.lock_holder (shard_for t lock) lock
let lock_version t lock = Manager_shard.lock_version (shard_for t lock) lock
let lock_waiters t lock = Manager_shard.lock_waiters (shard_for t lock) lock

let barrier_parties t b = Manager_shard.barrier_parties (shard_for t b) b
let barrier_blocked t b = Manager_shard.barrier_blocked (shard_for t b) b
let cond_blocked t c = Manager_shard.cond_blocked (shard_for t c) c

let gas_used t = Manager_shard.gas_used (alloc_shard t)

let sum f t = Array.fold_left (fun acc sh -> acc + f sh) 0 t.shards

let heartbeats t = sum Manager_shard.heartbeats t
let leases_expired t = sum Manager_shard.leases_expired t
let replayed_updates t = sum Manager_shard.replayed_updates t
let migrations t = sum Manager_shard.migrations t

let migration_log t =
  Array.to_list t.shards |> List.concat_map Manager_shard.migration_log

let shard_heartbeats t = t.shard_heartbeats
let takeovers t = t.takeovers
let absorbed_objects t = t.absorbed_objects
let redriven_pushes t = t.redriven_pushes

(* Mean utilization / total jobs over the shard service resources. With
   one shard these equal the singleton's numbers exactly. *)
let service_utilization t ~horizon =
  let u =
    Array.fold_left
      (fun acc sh ->
         acc
         +. Desim.Resource.utilization (Manager_shard.service sh) ~horizon)
      0. t.shards
  in
  u /. float_of_int (Array.length t.shards)

let service_jobs t =
  sum (fun sh -> Desim.Resource.jobs (Manager_shard.service sh)) t
