type t = {
  id : int;
  endpoint : Fabric.Scl.endpoint;
  layout : Layout.t;
  cfg : Config.t;
  store : (int, bytes) Hashtbl.t;
  versions : (int, int) Hashtbl.t;
  service : Desim.Resource.t;
  fetches : Desim.Stats.Counter.t;
  diffs : Desim.Stats.Counter.t;
  updates : Desim.Stats.Counter.t;
  (* Primary-backup replication (Config.replication = 1): writes applied
     here are synchronously mirrored into [backup]'s store by the
     requesting thread, after the mirror round trip's time is charged. *)
  mutable backup : t option;
  mutable mirrors : int;
  mutable mirror_bytes : int;
  mutable degraded : int;
  (* Configuration epoch this server last learned (stamped by recovery
     and rejoin). A zombie primary keeps its pre-promotion epoch — the
     visible mark distinguishing it from the epoch-current replica. *)
  mutable epoch : int;
}

let create cfg layout ~id ~endpoint =
  { id;
    endpoint;
    layout;
    cfg;
    store = Hashtbl.create 1024;
    versions = Hashtbl.create 1024;
    service = Desim.Resource.create ~name:(Printf.sprintf "memsrv%d" id) ();
    fetches = Desim.Stats.Counter.create ();
    diffs = Desim.Stats.Counter.create ();
    updates = Desim.Stats.Counter.create ();
    backup = None;
    mirrors = 0;
    mirror_bytes = 0;
    degraded = 0;
    epoch = 0 }

let id t = t.id
let endpoint t = t.endpoint
let service t = t.service

let set_backup t b = t.backup <- Some b
let backup t = t.backup

let epoch t = t.epoch
let set_epoch t e = t.epoch <- e

let line t line_id =
  match Hashtbl.find_opt t.store line_id with
  | Some b -> b
  | None ->
    let b = Bytes.make t.layout.Layout.line_bytes '\000' in
    Hashtbl.replace t.store line_id b;
    b

let version t line_id =
  Option.value (Hashtbl.find_opt t.versions line_id) ~default:0

let bump_version t line_id =
  let v = version t line_id + 1 in
  Hashtbl.replace t.versions line_id v;
  v

let fetch t line_id =
  Desim.Stats.Counter.incr t.fetches;
  (Bytes.copy (line t line_id), version t line_id)

let apply_diff t diff =
  Desim.Stats.Counter.incr t.diffs;
  Diff.apply diff (line t diff.Diff.line);
  bump_version t diff.Diff.line

let apply_update t (u : Update.t) =
  Desim.Stats.Counter.incr t.updates;
  let touched = Update.lines_touched t.layout u in
  List.map
    (fun l ->
       Update.apply_to_line t.layout u ~line:l (line t l);
       (l, bump_version t l))
    touched

let note_mirror t ~bytes =
  t.mirrors <- t.mirrors + 1;
  t.mirror_bytes <- t.mirror_bytes + bytes

let note_degraded t = t.degraded <- t.degraded + 1

(* Recovery replay: raise a line's version to at least [v] (idempotent —
   the synchronous mirror usually has the promoted replica there
   already). *)
let force_version t line_id v =
  if v > version t line_id then Hashtbl.replace t.versions line_id v

(* Resync support: visit every materialized line with its contents and
   version, in line-id order so callers stay schedule-deterministic. *)
let iter_lines t f =
  Hashtbl.fold (fun line_id _ acc -> line_id :: acc) t.store []
  |> List.sort compare
  |> List.iter (fun line_id ->
      f line_id (line t line_id) (version t line_id))

let service_time_for_bytes t bytes =
  t.cfg.Config.server_service
  + Desim.Time.span_of_float_ns
      (float_of_int bytes *. t.cfg.Config.diff_apply_ns_per_byte)

let lines_resident t = Hashtbl.length t.store
let fetches t = Desim.Stats.Counter.value t.fetches
let diffs_applied t = Desim.Stats.Counter.value t.diffs
let updates_applied t = Desim.Stats.Counter.value t.updates
let mirrors t = t.mirrors
let mirror_bytes t = t.mirror_bytes
let degraded_writes t = t.degraded
