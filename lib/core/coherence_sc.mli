(** Directory state for the sequential-consistency comparison mode.

    {!Config.model}[ = Sc_invalidate] runs the runtime as a classic
    IVY-lineage single-writer DSM instead of RegC: every line has at most
    one writer (the {e owner}, holding it exclusive) or any number of
    readers (the {e sharers}); a write invalidates every other copy, a read
    of an exclusively-held line recalls it (writeback + downgrade). The
    paper's premise (§I-II) is that this class of protocol is what makes
    strong consistency unaffordable on DSM; the [abl-sc] ablation measures
    that claim against RegC.

    This module is the bookkeeping only: a per-line directory entry and a
    registry of per-thread callbacks (peek/invalidate/downgrade) that the
    protocol driver in {!Thread_ctx} uses to act on remote caches. Timing
    (recall and invalidation round trips) is charged by the driver. *)

type t

type peer = {
  p_node : Fabric.Network.node;  (** For recall/invalidation transfers. *)
  p_peek : int -> bytes option;  (** Live cached contents of a line. *)
  p_invalidate : int -> unit;  (** Drop the line from the peer's cache. *)
  p_downgrade : int -> unit;  (** Exclusive -> shared. *)
}

val create : ?max_threads:int -> unit -> t
(** [max_threads] bounds acceptable thread ids (defaults to
    {!Config.default}'s cap). *)

val register : t -> thread:int -> peer -> unit
(** Threads register themselves at creation. Thread ids must be below the
    [max_threads] the directory was created with. *)

val peer : t -> int -> peer

(** {2 Directory entries} *)

val owner : t -> line:int -> int option
val sharers : t -> line:int -> Tset.t
(** Thread ids sharing the line (excluding the owner). The returned set is
    live directory state — callers must not mutate it. *)

val set_owner : t -> line:int -> thread:int -> unit
(** Make [thread] the exclusive owner (sharers cleared). *)

val clear_owner : t -> line:int -> unit
val add_sharer : t -> line:int -> thread:int -> unit
val drop_sharer : t -> line:int -> thread:int -> unit

val sharer_list : t -> line:int -> int list
(** Ascending thread ids currently sharing the line. *)
