(** Per-thread and aggregated run metrics (the quantities the paper's
    figures plot). *)

type thread = {
  thread_id : int;
  compute_ns : int;  (** Compute-loop time including miss stalls. *)
  sync_ns : int;  (** Time in lock/unlock/barrier/condvar operations. *)
  alloc_ns : int;
  idle_ns : int;
      (** Time parked in {!Thread_ctx.idle_until} waiting for open-loop
          traffic arrivals; 0 for the compute kernels. *)
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  lock_acquires : int;
  barrier_waits : int;
}

val of_ctx : Thread_ctx.t -> thread

type aggregate = {
  threads : int;
  mean_compute_ns : float;
  max_compute_ns : int;
  mean_sync_ns : float;
  max_sync_ns : int;
  mean_alloc_ns : float;
  total_misses : int;
  total_invalidations : int;
  wall_ns : int;  (** Simulated makespan of the run. *)
}

val aggregate : wall_ns:int -> thread list -> aggregate

val of_system : System.t -> aggregate
(** Convenience: collect every spawned thread after {!System.run}. *)

(** Fabric fault-injection counters ({!Fabric.Faults}): messages the
    policy perturbed, and retransmissions the SCL retry layer issued. *)
type faults = {
  delayed : int;  (** Messages given latency jitter. *)
  reordered : int;  (** Messages given a reorder-scale extra delay. *)
  dropped : int;  (** Messages dropped in flight (later retried). *)
  retried : int;  (** Retransmissions issued by {!Fabric.Scl}. *)
}

val faults_of_system : System.t -> faults option
(** [None] when the run had no fault policy attached
    ([Config.fault_level = Off]). *)

(** Crash-fault-tolerance counters: primary-backup mirroring, the lease
    monitor's failure detection, and the recovery protocol's work. *)
type replication = {
  mirrored_writes : int;  (** Writes synchronously mirrored to a backup. *)
  mirror_bytes : int;  (** Payload bytes shipped primary-to-backup. *)
  degraded_writes : int;
      (** Writes acked unreplicated because the backup was dead. *)
  dead_sends : int;  (** Messages swallowed by a crashed destination. *)
  heartbeats : int;  (** Lease renewals the monitor completed. *)
  leases_expired : int;  (** Failure detections (at most 1 per run). *)
  promotions : int;  (** Backup promotions performed by recovery. *)
  replayed_updates : int;
      (** Logged updates re-applied to the promoted replica. *)
  failover_waits : int;
      (** Thread interactions that hit a dead server and re-ran. *)
}

val replication_of_system : System.t -> replication option
(** [None] when the run had neither replication nor an injected crash
    ([Config.replication = 0], [Config.crash_server = None] and
    [Config.crash_shard = None]). *)

val pp_replication : Format.formatter -> replication -> unit

(** Failure-detection quality counters for gray-failure runs: how often
    the lease detector fired, how often it was wrong, how much stale
    traffic the epoch fence rejected, and whether the falsely suspected
    server made it back in. *)
type detection = {
  suspicions : int;  (** Lease expiries: servers the detector suspected. *)
  false_suspicions : int;
      (** Suspected servers that were in fact alive (gray failure). *)
  fenced_messages : int;
      (** Round trips rejected by the epoch fence (Stale_epoch). *)
  rejoins : int;  (** Falsely suspected servers resynced back in. *)
}

val detection_of_system : System.t -> detection option
(** [None] unless the run injected a gray failure
    ([Config.partition_server] or [Config.stall_server]), so crash-run
    and healthy reports stay byte-identical with the seed build. *)

val pp_detection : Format.formatter -> detection -> unit

(** Sharded-control-plane counters: inter-shard failure detection, shard
    takeover, and home-page migration. *)
type control = {
  shards : int;
  shard_heartbeats : int;  (** Inter-shard lease renewals completed. *)
  takeovers : int;  (** Shard failures absorbed (at most 1 per run). *)
  absorbed_objects : int;  (** Sync objects moved to the takeover shard. *)
  redriven_pushes : int;  (** Stranded reply pushes re-driven at takeover. *)
  migrations : int;  (** Home-page migrations executed. *)
  rehomed_lines : int;  (** Lines living off their striped default home. *)
}

val control_of_system : System.t -> control option
(** [None] when the control plane is unsharded and migration is off
    ([manager_shards = 1] and [home_migration = false]), so classic runs
    report byte-identically. *)

val pp_control : Format.formatter -> control -> unit

val pp_thread : Format.formatter -> thread -> unit
val pp_aggregate : Format.formatter -> aggregate -> unit
val pp_faults : Format.formatter -> faults -> unit
