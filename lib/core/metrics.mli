(** Per-thread and aggregated run metrics (the quantities the paper's
    figures plot). *)

type thread = {
  thread_id : int;
  compute_ns : int;  (** Compute-loop time including miss stalls. *)
  sync_ns : int;  (** Time in lock/unlock/barrier/condvar operations. *)
  alloc_ns : int;
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  lock_acquires : int;
  barrier_waits : int;
}

val of_ctx : Thread_ctx.t -> thread

type aggregate = {
  threads : int;
  mean_compute_ns : float;
  max_compute_ns : int;
  mean_sync_ns : float;
  max_sync_ns : int;
  mean_alloc_ns : float;
  total_misses : int;
  total_invalidations : int;
  wall_ns : int;  (** Simulated makespan of the run. *)
}

val aggregate : wall_ns:int -> thread list -> aggregate

val of_system : System.t -> aggregate
(** Convenience: collect every spawned thread after {!System.run}. *)

(** Fabric fault-injection counters ({!Fabric.Faults}): messages the
    policy perturbed, and retransmissions the SCL retry layer issued. *)
type faults = {
  delayed : int;  (** Messages given latency jitter. *)
  reordered : int;  (** Messages given a reorder-scale extra delay. *)
  dropped : int;  (** Messages dropped in flight (later retried). *)
  retried : int;  (** Retransmissions issued by {!Fabric.Scl}. *)
}

val faults_of_system : System.t -> faults option
(** [None] when the run had no fault policy attached
    ([Config.fault_level = Off]). *)

val pp_thread : Format.formatter -> thread -> unit
val pp_aggregate : Format.formatter -> aggregate -> unit
val pp_faults : Format.formatter -> faults -> unit
