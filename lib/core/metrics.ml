type thread = {
  thread_id : int;
  compute_ns : int;
  sync_ns : int;
  alloc_ns : int;
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  lock_acquires : int;
  barrier_waits : int;
}

let of_ctx ctx =
  let cache = Thread_ctx.cache ctx in
  { thread_id = Thread_ctx.id ctx;
    compute_ns = Thread_ctx.compute_ns ctx;
    sync_ns = Thread_ctx.sync_ns ctx;
    alloc_ns = Thread_ctx.alloc_ns ctx;
    hits = Cache.hits cache;
    misses = Cache.misses cache;
    evictions = Cache.evictions cache;
    invalidations = Cache.invalidations cache;
    lock_acquires = Thread_ctx.lock_acquires ctx;
    barrier_waits = Thread_ctx.barrier_waits ctx }

type aggregate = {
  threads : int;
  mean_compute_ns : float;
  max_compute_ns : int;
  mean_sync_ns : float;
  max_sync_ns : int;
  mean_alloc_ns : float;
  total_misses : int;
  total_invalidations : int;
  wall_ns : int;
}

let aggregate ~wall_ns ts =
  let n = List.length ts in
  if n = 0 then invalid_arg "Metrics.aggregate: no threads";
  let fmean f = List.fold_left (fun a t -> a +. float_of_int (f t)) 0. ts
                /. float_of_int n in
  let imax f = List.fold_left (fun a t -> max a (f t)) 0 ts in
  let isum f = List.fold_left (fun a t -> a + f t) 0 ts in
  { threads = n;
    mean_compute_ns = fmean (fun t -> t.compute_ns);
    max_compute_ns = imax (fun t -> t.compute_ns);
    mean_sync_ns = fmean (fun t -> t.sync_ns);
    max_sync_ns = imax (fun t -> t.sync_ns);
    mean_alloc_ns = fmean (fun t -> t.alloc_ns);
    total_misses = isum (fun t -> t.misses);
    total_invalidations = isum (fun t -> t.invalidations);
    wall_ns = wall_ns }

let of_system sys =
  aggregate
    ~wall_ns:(Desim.Time.to_ns (System.elapsed sys))
    (List.map of_ctx (System.threads sys))

type faults = {
  delayed : int;
  reordered : int;
  dropped : int;
  retried : int;
}

let faults_of_system sys =
  match Fabric.Network.faults (System.network sys) with
  | None -> None
  | Some f ->
    Some
      { delayed = Fabric.Faults.messages_delayed f;
        reordered = Fabric.Faults.messages_reordered f;
        dropped = Fabric.Faults.messages_dropped f;
        retried = Fabric.Faults.messages_retried f }

let pp_faults ppf f =
  Format.fprintf ppf "faults: delayed=%d reordered=%d dropped=%d retried=%d"
    f.delayed f.reordered f.dropped f.retried

let pp_thread ppf t =
  Format.fprintf ppf
    "t%d: compute=%a sync=%a alloc=%a hits=%d misses=%d evict=%d inval=%d \
     locks=%d barriers=%d"
    t.thread_id Desim.Time.pp (Desim.Time.of_ns t.compute_ns) Desim.Time.pp
    (Desim.Time.of_ns t.sync_ns) Desim.Time.pp
    (Desim.Time.of_ns t.alloc_ns) t.hits t.misses t.evictions
    t.invalidations t.lock_acquires t.barrier_waits

let pp_aggregate ppf a =
  Format.fprintf ppf
    "%d threads: compute mean=%a max=%a, sync mean=%a max=%a, misses=%d \
     inval=%d, wall=%a"
    a.threads Desim.Time.pp
    (Desim.Time.of_ns (int_of_float a.mean_compute_ns))
    Desim.Time.pp
    (Desim.Time.of_ns a.max_compute_ns)
    Desim.Time.pp
    (Desim.Time.of_ns (int_of_float a.mean_sync_ns))
    Desim.Time.pp
    (Desim.Time.of_ns a.max_sync_ns)
    a.total_misses a.total_invalidations Desim.Time.pp
    (Desim.Time.of_ns a.wall_ns)
