type thread = {
  thread_id : int;
  compute_ns : int;
  sync_ns : int;
  alloc_ns : int;
  idle_ns : int;
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  lock_acquires : int;
  barrier_waits : int;
}

let of_ctx ctx =
  let cache = Thread_ctx.cache ctx in
  { thread_id = Thread_ctx.id ctx;
    compute_ns = Thread_ctx.compute_ns ctx;
    sync_ns = Thread_ctx.sync_ns ctx;
    alloc_ns = Thread_ctx.alloc_ns ctx;
    idle_ns = Thread_ctx.idle_ns ctx;
    hits = Cache.hits cache;
    misses = Cache.misses cache;
    evictions = Cache.evictions cache;
    invalidations = Cache.invalidations cache;
    lock_acquires = Thread_ctx.lock_acquires ctx;
    barrier_waits = Thread_ctx.barrier_waits ctx }

type aggregate = {
  threads : int;
  mean_compute_ns : float;
  max_compute_ns : int;
  mean_sync_ns : float;
  max_sync_ns : int;
  mean_alloc_ns : float;
  total_misses : int;
  total_invalidations : int;
  wall_ns : int;
}

let aggregate ~wall_ns ts =
  let n = List.length ts in
  if n = 0 then invalid_arg "Metrics.aggregate: no threads";
  let fmean f = List.fold_left (fun a t -> a +. float_of_int (f t)) 0. ts
                /. float_of_int n in
  let imax f = List.fold_left (fun a t -> max a (f t)) 0 ts in
  let isum f = List.fold_left (fun a t -> a + f t) 0 ts in
  { threads = n;
    mean_compute_ns = fmean (fun t -> t.compute_ns);
    max_compute_ns = imax (fun t -> t.compute_ns);
    mean_sync_ns = fmean (fun t -> t.sync_ns);
    max_sync_ns = imax (fun t -> t.sync_ns);
    mean_alloc_ns = fmean (fun t -> t.alloc_ns);
    total_misses = isum (fun t -> t.misses);
    total_invalidations = isum (fun t -> t.invalidations);
    wall_ns = wall_ns }

let of_system sys =
  aggregate
    ~wall_ns:(Desim.Time.to_ns (System.elapsed sys))
    (List.map of_ctx (System.threads sys))

type faults = {
  delayed : int;
  reordered : int;
  dropped : int;
  retried : int;
}

let faults_of_system sys =
  match Fabric.Network.faults (System.network sys) with
  | None -> None
  | Some f ->
    Some
      { delayed = Fabric.Faults.messages_delayed f;
        reordered = Fabric.Faults.messages_reordered f;
        dropped = Fabric.Faults.messages_dropped f;
        retried = Fabric.Faults.messages_retried f }

type replication = {
  mirrored_writes : int;
  mirror_bytes : int;
  degraded_writes : int;
  dead_sends : int;
  heartbeats : int;
  leases_expired : int;
  promotions : int;
  replayed_updates : int;
  failover_waits : int;
}

let replication_of_system sys =
  let cfg = System.config sys in
  if
    cfg.Config.replication = 0
    && cfg.Config.crash_server = None
    && cfg.Config.crash_shard = None
  then None
  else
    let servers = System.servers sys in
    let cp = System.control_plane sys in
    let sum f = Array.fold_left (fun a s -> a + f s) 0 servers in
    Some
      { mirrored_writes = sum Memory_server.mirrors;
        mirror_bytes = sum Memory_server.mirror_bytes;
        degraded_writes = sum Memory_server.degraded_writes;
        dead_sends =
          (match Fabric.Network.faults (System.network sys) with
           | None -> 0
           | Some f -> Fabric.Faults.messages_dead f);
        heartbeats = Control_plane.heartbeats cp;
        leases_expired = Control_plane.leases_expired cp;
        promotions = Directory.promotions (System.directory sys);
        replayed_updates = Control_plane.replayed_updates cp;
        failover_waits =
          List.fold_left
            (fun a t -> a + Thread_ctx.failover_waits t)
            0 (System.threads sys) }

type detection = {
  suspicions : int;  (** Lease expiries: servers the detector suspected. *)
  false_suspicions : int;
      (** Suspected servers that were in fact alive (gray failure). *)
  fenced_messages : int;
      (** Round trips rejected by the epoch fence (Stale_epoch). *)
  rejoins : int;  (** Falsely suspected servers resynced back in. *)
}

(* Failure-detection counters are reported only for gray-failure runs
   (partition/stall injection), so crash-run and healthy reports stay
   byte-identical with the seed build. *)
let detection_of_system sys =
  let cfg = System.config sys in
  if cfg.Config.partition_server = None && cfg.Config.stall_server = None
  then None
  else
    let dir = System.directory sys in
    Some
      { suspicions = Directory.suspicions dir;
        false_suspicions = Directory.false_suspicions dir;
        fenced_messages = Directory.fenced dir;
        rejoins = Directory.rejoins dir }

type control = {
  shards : int;
  shard_heartbeats : int;  (** Inter-shard lease renewals completed. *)
  takeovers : int;  (** Shard failures absorbed (at most 1 per run). *)
  absorbed_objects : int;  (** Sync objects moved to the takeover shard. *)
  redriven_pushes : int;  (** Stranded reply pushes re-driven at takeover. *)
  migrations : int;  (** Home-page migrations executed. *)
  rehomed_lines : int;  (** Lines living off their striped default home. *)
}

(* Control-plane counters are reported only when the run actually sharded
   the control plane or migrated pages, so single-shard reports stay
   byte-identical with the unsharded build. *)
let control_of_system sys =
  let cfg = System.config sys in
  if cfg.Config.manager_shards = 1 && not cfg.Config.home_migration then None
  else
    let cp = System.control_plane sys in
    Some
      { shards = Control_plane.shard_count cp;
        shard_heartbeats = Control_plane.shard_heartbeats cp;
        takeovers = Control_plane.takeovers cp;
        absorbed_objects = Control_plane.absorbed_objects cp;
        redriven_pushes = Control_plane.redriven_pushes cp;
        migrations = Control_plane.migrations cp;
        rehomed_lines = Directory.rehomed (System.directory sys) }

let pp_control ppf c =
  Format.fprintf ppf
    "control: shards=%d shard-heartbeats=%d takeovers=%d absorbed=%d \
     redriven=%d migrations=%d rehomed=%d"
    c.shards c.shard_heartbeats c.takeovers c.absorbed_objects
    c.redriven_pushes c.migrations c.rehomed_lines

let pp_replication ppf r =
  Format.fprintf ppf
    "replication: mirrors=%d (%d B) degraded=%d dead-sends=%d heartbeats=%d \
     leases-expired=%d promotions=%d replayed=%d failover-waits=%d"
    r.mirrored_writes r.mirror_bytes r.degraded_writes r.dead_sends
    r.heartbeats r.leases_expired r.promotions r.replayed_updates
    r.failover_waits

let pp_detection ppf d =
  Format.fprintf ppf
    "detection: suspicions=%d false-suspicions=%d fenced=%d rejoins=%d"
    d.suspicions d.false_suspicions d.fenced_messages d.rejoins

let pp_faults ppf f =
  Format.fprintf ppf "faults: delayed=%d reordered=%d dropped=%d retried=%d"
    f.delayed f.reordered f.dropped f.retried

let pp_thread ppf t =
  Format.fprintf ppf
    "t%d: compute=%a sync=%a alloc=%a hits=%d misses=%d evict=%d inval=%d \
     locks=%d barriers=%d"
    t.thread_id Desim.Time.pp (Desim.Time.of_ns t.compute_ns) Desim.Time.pp
    (Desim.Time.of_ns t.sync_ns) Desim.Time.pp
    (Desim.Time.of_ns t.alloc_ns) t.hits t.misses t.evictions
    t.invalidations t.lock_acquires t.barrier_waits;
  (* Idle time exists only for serving workloads; the kernels' report
     lines stay byte-identical. *)
  if t.idle_ns > 0 then
    Format.fprintf ppf " idle=%a" Desim.Time.pp (Desim.Time.of_ns t.idle_ns)

let pp_aggregate ppf a =
  Format.fprintf ppf
    "%d threads: compute mean=%a max=%a, sync mean=%a max=%a, misses=%d \
     inval=%d, wall=%a"
    a.threads Desim.Time.pp
    (Desim.Time.of_ns (int_of_float a.mean_compute_ns))
    Desim.Time.pp
    (Desim.Time.of_ns a.max_compute_ns)
    Desim.Time.pp
    (Desim.Time.of_ns (int_of_float a.mean_sync_ns))
    Desim.Time.pp
    (Desim.Time.of_ns a.max_sync_ns)
    a.total_misses a.total_invalidations Desim.Time.pp
    (Desim.Time.of_ns a.wall_ns)
