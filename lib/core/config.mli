(** Samhita runtime configuration.

    One record gathers every knob: address-space geometry, cache policy,
    allocator thresholds, the RegC protocol options, the cost model used to
    charge simulated time, and the cluster layout. [default] reflects the
    paper's testbed (Section III): dual quad-core 2.8 GHz Penryn nodes on
    QDR InfiniBand, one memory server, one manager node. *)

(** Which consistency engine drives the runtime. *)
type model =
  | Regc  (** The paper's regional consistency (default). *)
  | Sc_invalidate
      (** IVY-style sequential consistency: single writer per line,
          write-invalidate with recalls — the comparison strawman for the
          [abl-sc] ablation. *)

(** Which pairs a partitioned memory server loses (gray-failure
    injection). *)
type partition_scope =
  | Isolate
      (** The victim is unreachable from {e everyone}: clients stall and
          park until the heal; the lease monitor falsely suspects it. *)
  | Control
      (** Only the manager-shard nodes lose the victim: clients still
          reach it while its lease expires — the zombie-primary scenario
          the epoch fence exists for. *)

type t = {
  model : model;
  (* Address-space geometry *)
  page_bytes : int;  (** Must be a power of two. *)
  pages_per_line : int;
      (** Cache lines span multiple pages (paper §II); power of two, and
          [pages_per_line <= 62] so a dirty bitmask fits an [int]. *)
  (* Software cache *)
  cache_lines : int;  (** Per-thread cache capacity, in lines. *)
  evict_dirty_first : bool;
      (** Paper §II: eviction is biased toward pages that have been written. *)
  prefetch : bool;
      (** Anticipatory paging: on a miss, asynchronously request the
          adjacent line. *)
  (* Allocator *)
  small_threshold : int;
      (** Requests at or below this size come from per-thread arenas. *)
  large_threshold : int;
      (** Requests above this size are stripe-aligned across servers. *)
  arena_chunk_bytes : int;  (** Granularity of arena refills (line-aligned). *)
  stripe_lines : int;
      (** Consecutive lines per server before the home rotates. *)
  (* RegC protocol *)
  update_log_history : int;
      (** Release logs retained per lock for fine-grained patching of
          acquirers; older acquirers fall back to invalidation. *)
  manager_bypass : bool;
      (** Paper §V (future work): on a single compute node, synchronize
          locally instead of a manager round trip. *)
  coalesce_updates : bool;
      (** Merge a consistency-region store into the head of the region log
          when it exactly overwrites it or extends it contiguously (e.g. a
          counter updated in place, adjacent fields written in order).
          Replayed oldest-first the log yields the same memory, but fewer
          records travel at release — so wire bytes and simulated service
          times shift. Off by default to keep figure outputs identical to
          the seed build. *)
  (* Cost model, nanoseconds *)
  t_mem : float;  (** Per cached (hit) memory access. *)
  t_flop : float;  (** Per floating-point operation. *)
  server_service : Desim.Time.span;
      (** Memory-server software handling per request (user-level DSM). *)
  manager_service : Desim.Time.span;  (** Manager handling per request. *)
  diff_apply_ns_per_byte : float;
      (** Cost at a server to create/apply a byte of diff or update. *)
  (* Cluster layout *)
  memory_servers : int;
  threads_per_node : int;  (** Compute threads hosted per compute node. *)
  fabric : Fabric.Profile.t;
  seed : int;
  sanitize : bool;
      (** Attach a RegCSan analyzer ({!Analysis.Regcsan}) to every thread:
          all reads, writes, allocations and sync edges stream into a
          happens-before race detector and RegC-conformance linter. Off by
          default; when off the runtime pays a single branch per access. *)
  fault_level : Fabric.Faults.level;
      (** Fabric fault injection (torture harness): jitter, cross-pair
          reordering and bounded transient drops, all seeded from [seed].
          [Off] by default — no policy is attached and the fabric is
          byte-exact with the seed build. *)
  shuffle : bool;
      (** Schedule fuzzing (torture harness): permute same-instant event
          order in the engine with a tie-break seeded from [seed], instead
          of the default FIFO. One [(seed, shuffle)] pair is one fully
          deterministic, replayable schedule. *)
  (* Crash fault tolerance *)
  replication : int;
      (** Replication factor for memory-server state: 0 (off, default) or
          1 (primary-backup — every [apply_diff]/[apply_update] is
          synchronously mirrored to the next server, charging fabric and
          service time). Requires [memory_servers >= 2] and the [Regc]
          model. *)
  crash_server : (int * int) option;
      (** Fail-stop crash injection: [(server, instant_ns)] kills memory
          server [server] (its fabric node) from that simulated instant
          on. Survivable only with [replication = 1]; [Regc] model only.
          [None] (default) leaves the fabric byte-exact with the seed
          build when [fault_level] is also [Off]. *)
  lease_interval : Desim.Time.span;
      (** Heartbeat period of the manager's lease-based failure detector
          (only active when [replication >= 1]). A server that fails to
          answer a heartbeat within {!Fabric.Scl.dead_retry_budget}
          retransmissions has its lease expired and recovery begins. *)
  (* Control plane *)
  max_threads : int;
      (** Validated cap on compute threads per system (default 512).
          Sharer/writer sets are {!Tset} bitmaps, so the cap is a resource
          bound, not a representation limit; {!System.create} enforces
          it. *)
  manager_shards : int;
      (** Number of control-plane shards (default 1 — the classic single
          manager, byte-identical to the unsharded build). Locks, barriers,
          condition variables and pages are assigned to shards by the
          consistent-hash ring ({!Hash_ring}); each shard owns its slice of
          lock state, update logs and lease monitoring. Shard 0 also owns
          the global address-space allocator. *)
  home_migration : bool;
      (** Migrate a page's home server toward its dominant writer, decided
          seed-deterministically from per-shard write counters (default
          off). [Regc] model only. *)
  migration_window : int;
      (** Writes observed per line between home-migration decisions
          (default 32). *)
  crash_shard : (int * int) option;
      (** Fail-stop crash injection for the control plane:
          [(shard, instant_ns)] kills manager shard [shard] (its fabric
          node) from that simulated instant on. Requires
          [manager_shards >= 2] and [shard >= 1] (shard 0 hosts
          allocation); mutually exclusive with [crash_server]
          (single-failure model). The ring successor takes over the dead
          shard's slice. *)
  (* Parallel execution *)
  domains : int;
      (** ParDES: number of OCaml domains driving the simulation
          (default 1 — the sequential engine, byte-identical to the seed
          build). With [domains = n >= 2] the system partitions compute
          nodes across [n] client partitions and runs them concurrently
          under the conservative hub/client alternation
          ({!Desim.Engine.create}); all servers, shards and fabric state
          stay on the hub. Simulated results stay deterministic per seed
          and equal to the 1-domain run. Requires the [Regc] model and is
          mutually exclusive with [sanitize], [shuffle], fault/crash
          injection, [home_migration] and [manager_bypass]. *)
  (* Gray failures *)
  partition_server : (int * partition_scope * int * int) option;
      (** Gray-failure injection: [(server, scope, start_ns, heal_ns)]
          makes memory server [server]'s node unreachable (per [scope])
          inside the window [\[start_ns, heal_ns)], then heals. Unlike
          [crash_server] the victim keeps executing — its lease expires
          ({e false} suspicion), the backup is promoted under a new
          epoch, stale traffic to/from the zombie is fenced, and after
          the heal it rejoins as the backup via an epoch-stamped resync.
          Requires [replication = 1] and the [Regc] model; mutually
          exclusive with crash injection (single-failure model). [None]
          (default) keeps every output byte-identical to the seed
          build. *)
  stall_server : (int * int * int) option;
      (** [(server, start_ns, heal_ns)]: every delivery touching the
          server's node inside the window pays a constant multi-RTT
          penalty ({!Fabric.Faults.stall_penalty_ns}), then heals. The
          detector counts lost attempts, not lateness, so a stall
          perturbs latency without expiring the lease — "slow" stays
          distinguishable from "gone". [Regc] model only. *)
}

val default : t

val validate : t -> (unit, string) result
(** Check geometric and layout invariants; returned error names the first
    violated one. *)

val line_bytes : t -> int
val line_shift : t -> int
(** [log2 (line_bytes t)]. *)

val model_name : model -> string

val scope_name : partition_scope -> string
val scope_of_string : string -> (partition_scope, string) result

val pp : Format.formatter -> t -> unit
