(* Growable thread-id sets. Sharer and writer sets used to be single-int
   bitmasks, which capped the system at 62 threads; this keeps the same
   dense-bitmap representation and iteration order (ascending thread id)
   but spreads the bits over an int array so the cap is a config knob. *)

let bits_per_word = 63 (* OCaml int: 63 usable bits *)

type t = { mutable words : int array }

let create () = { words = [||] }

let ensure t w =
  let n = Array.length t.words in
  if w >= n then begin
    let words = Array.make (w + 1) 0 in
    Array.blit t.words 0 words 0 n;
    t.words <- words
  end

let add t i =
  if i < 0 then invalid_arg "Tset.add: negative thread id";
  let w = i / bits_per_word and b = i mod bits_per_word in
  ensure t w;
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  if i >= 0 then begin
    let w = i / bits_per_word and b = i mod bits_per_word in
    if w < Array.length t.words then
      t.words.(w) <- t.words.(w) land lnot (1 lsl b)
  end

let mem t i =
  i >= 0
  &&
  let w = i / bits_per_word and b = i mod bits_per_word in
  w < Array.length t.words && t.words.(w) land (1 lsl b) <> 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let singleton i =
  let t = create () in
  add t i;
  t

let of_list l =
  let t = create () in
  List.iter (add t) l;
  t

let copy t = { words = Array.copy t.words }

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  Array.iteri
    (fun wi w ->
       if w <> 0 then
         for b = 0 to bits_per_word - 1 do
           if w land (1 lsl b) <> 0 then f ((wi * bits_per_word) + b)
         done)
    t.words

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let exists_other t ~self =
  let found = ref false in
  Array.iteri
    (fun wi w ->
       let w =
         if wi = self / bits_per_word then
           w land lnot (1 lsl (self mod bits_per_word))
         else w
       in
       if w <> 0 then found := true)
    t.words;
  !found

let equal a b =
  let n = max (Array.length a.words) (Array.length b.words) in
  let word t i = if i < Array.length t.words then t.words.(i) else 0 in
  let rec go i = i >= n || (word a i = word b i && go (i + 1)) in
  go 0

let union_into ~into src =
  Array.iteri
    (fun wi w ->
       if w <> 0 then begin
         ensure into wi;
         into.words.(wi) <- into.words.(wi) lor w
       end)
    src.words

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (to_list t)))
