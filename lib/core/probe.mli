(** A protocol-event observer attachable to a running system
    ({!System.set_probe}).

    The torture harness's linearizable-memory oracle subscribes through
    this record: the runtime reports every global-memory access (with the
    value for 8-byte word accesses), every {e publication} — a home-side
    merge of a flushed diff or update log, the instant a value becomes
    RegC-visible to other threads — every allocation event, every barrier
    episode and every lock/condvar edge.

    Callbacks run synchronously inside the emitting thread's process, in
    deterministic simulation order, so an event stream is replayable and
    hashable. [data] buffers passed to [on_publish] are {e borrowed} (the
    home's live line) — copy before retaining. With no probe attached the
    runtime pays one branch per event site. *)

type sync_op =
  | Lock_acquired of int
  | Unlock of int
  | Cond_signal of int
  | Cond_wake of int

type t = {
  on_read :
    thread:int -> time:Desim.Time.t -> addr:int -> len:int ->
    value:int64 option -> unit;
      (** [value] is [Some] for aligned 8-byte accesses, [None] for bulk
          or sub-word reads. *)
  on_write :
    thread:int -> time:Desim.Time.t -> addr:int -> len:int ->
    value:int64 option -> unit;
  on_publish :
    thread:int -> time:Desim.Time.t -> server:int -> line:int ->
    version:int -> data:bytes -> unit;
      (** The home server's line [line] now holds [data] (borrowed) at
          [version], after merging a diff or update log flushed by
          [thread]. *)
  on_malloc : thread:int -> time:Desim.Time.t -> addr:int -> bytes:int -> unit;
  on_free : thread:int -> time:Desim.Time.t -> addr:int -> bytes:int -> unit;
  on_barrier :
    thread:int -> time:Desim.Time.t -> barrier:int -> epoch:int ->
    phase:[ `Arrive | `Depart ] -> unit;
  on_sync : thread:int -> time:Desim.Time.t -> op:sync_op -> unit;
  on_crash : time:Desim.Time.t -> node:int -> server:int -> unit;
      (** The lease monitor detected that fabric node [node] (hosting
          memory server [server]) is fail-stop dead. [time] is the
          detection instant — after the crash instant by at least one
          missed heartbeat. *)
  on_recovery :
    time:Desim.Time.t -> failed:int -> promoted:int -> replayed:int -> unit;
      (** Recovery finished: physical server [failed]'s stripes now live
          on [promoted], after replaying [replayed] surviving update-log
          entries; parked threads resume from [time]. *)
  on_rejoin :
    time:Desim.Time.t -> zombie:int -> primary:int -> copied:int -> unit;
      (** A falsely suspected server rejoined after its partition healed:
          [zombie] was resynced ([copied] lines) against [primary], the
          live primary it now backs, under the current epoch. *)
}

val nothing : t
(** Every callback a no-op; build probes with [{ nothing with ... }]. *)
