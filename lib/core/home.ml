let server_of_line (cfg : Config.t) ~line =
  (line / cfg.Config.stripe_lines) mod cfg.Config.memory_servers

let stripe_bytes (cfg : Config.t) =
  Config.line_bytes cfg * cfg.Config.stripe_lines

let group_lines_by_server cfg lines =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun line ->
       let s = server_of_line cfg ~line in
       let existing = Option.value (Hashtbl.find_opt tbl s) ~default:[] in
       Hashtbl.replace tbl s (line :: existing))
    lines;
  Hashtbl.fold (fun s ls acc -> (s, List.rev ls) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
