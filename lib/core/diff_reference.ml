(* The original scalar diff implementation, kept verbatim as an executable
   specification: equivalence tests check the word-wise {!Diff} against it
   span for span, and the benchmark driver measures both back to back so
   the reported speedup is a same-process ratio, immune to machine-wide
   frequency drift between runs. Not used on any simulation path. *)

type span = { offset : int; data : bytes }

type t = { line : int; spans : span list }

let coalesce_gap = 1
let span_framing = 12
let diff_framing = 16

(* Scan [lo, hi) for maximal runs of differing bytes. *)
let scan_region ~twin ~current ~lo ~hi acc =
  let acc = ref acc in
  let run_start = ref (-1) in
  let gap = ref 0 in
  let flush_at stop =
    if !run_start >= 0 then begin
      let len = stop - !run_start in
      let data = Bytes.sub current !run_start len in
      acc := { offset = !run_start; data } :: !acc;
      run_start := -1
    end
  in
  for i = lo to hi - 1 do
    if Bytes.unsafe_get twin i <> Bytes.unsafe_get current i then begin
      if !run_start < 0 then run_start := i;
      gap := 0
    end
    else if !run_start >= 0 then begin
      incr gap;
      if !gap >= coalesce_gap then begin
        flush_at (i - !gap + 1);
        gap := 0
      end
    end
  done;
  if !run_start >= 0 then flush_at (hi - !gap);
  !acc

let make (layout : Layout.t) ~line ~twin ~current ~dirty_pages =
  if Bytes.length twin <> layout.Layout.line_bytes
     || Bytes.length current <> layout.Layout.line_bytes
  then invalid_arg "Diff.make: buffers must be line-sized";
  let page = layout.Layout.page_bytes in
  let spans = ref [] in
  for p = 0 to layout.Layout.pages_per_line - 1 do
    if dirty_pages land (1 lsl p) <> 0 then
      spans := scan_region ~twin ~current ~lo:(p * page) ~hi:((p + 1) * page)
          !spans
  done;
  { line; spans = List.rev !spans }

let apply t buf =
  List.iter
    (fun { offset; data } ->
       Bytes.blit data 0 buf offset (Bytes.length data))
    t.spans

let is_empty t = t.spans = []
let span_count t = List.length t.spans

let payload_bytes t =
  List.fold_left (fun acc s -> acc + Bytes.length s.data) 0 t.spans

let wire_bytes t =
  diff_framing + (span_framing * span_count t) + payload_bytes t
