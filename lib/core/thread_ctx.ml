type env = {
  cfg : Config.t;
  layout : Layout.t;
  engine : Desim.Engine.t;
  network : Fabric.Network.t;
  servers : Memory_server.t array;
  dir : Directory.t;
      (** Logical-to-physical stripe map (identity until a recovery
          promotes a backup). *)
  cp : Control_plane.t;
      (** The sharded control plane; sync objects resolve to their shard
          per request, so a shard takeover is picked up transparently. *)
  sc : Coherence_sc.t;  (** Directory for the Sc_invalidate model. *)
  san : Analysis.Regcsan.t option;
      (** RegCSan access-stream analyzer ([Config.sanitize]). *)
  probe : Probe.t option;
      (** Protocol-event observer (torture oracle); see {!Probe}. *)
}

type t = {
  id : int;
  e : env;
  endpoint : Fabric.Scl.endpoint;
  cache : Cache.t;
  arena : Allocator.Arena.t;
  (* Local compute time not yet synchronized with the global clock. A
     one-element [floatarray] rather than a mutable float field: the field
     would box a fresh float on every store, and this is written on every
     memory access. *)
  accum : floatarray;
  (* Single-line fast path for the common repeated-hit case. *)
  mutable last : Cache.entry option;
  (* Held locks, innermost first, each with its consistency-region store
     log (newest store first). *)
  mutable held : (Manager_shard.lock_id * Update.t list ref) list;
  (* Last lock version integrated, per lock. *)
  lock_seen : (Manager_shard.lock_id, int) Hashtbl.t;
  (* Per-lock release sequence numbers: each release carries the next
     number so a shard-crash retry of the same release is recognized as a
     duplicate and not double-applied. *)
  release_seq : (Manager_shard.lock_id, int) Hashtbl.t;
  (* Lines this thread flushed as ordinary-region diffs (at consistency
     points or evictions) since its last barrier. Reported as write notices
     at the next barrier so every other thread invalidates its stale
     copies. *)
  interval_writes : (int, unit) Hashtbl.t;
  mutable m_compute : int;
  mutable m_sync : int;
  mutable m_alloc : int;
  mutable m_idle : int;
  mutable m_locks : int;
  mutable m_barriers : int;
  mutable m_failovers : int;
}

(* Wire sizes of the fixed protocol messages. *)
let fetch_request_wire = 32
let fetch_reply_overhead = 32
let diff_reply_wire = 24
let alloc_request_wire = 32
let alloc_reply_wire = 16
let cond_request_wire = 32
let barrier_arrive_overhead = 32

let create e ~id ~node =
  let t =
    { id;
      e;
      endpoint = Fabric.Scl.endpoint e.network node;
      cache = Cache.create e.cfg e.layout;
      arena = Allocator.Arena.create ();
      accum = Float.Array.make 1 0.;
      last = None;
      held = [];
      lock_seen = Hashtbl.create 8;
      release_seq = Hashtbl.create 8;
      interval_writes = Hashtbl.create 16;
      m_compute = 0;
      m_sync = 0;
      m_alloc = 0;
      m_idle = 0;
      m_locks = 0;
      m_barriers = 0;
      m_failovers = 0 }
  in
  (* Register this thread's cache with the SC directory so remote writers
     can invalidate/recall its copies (no-ops under RegC). *)
  Coherence_sc.register e.sc ~thread:id
    { Coherence_sc.p_node = node;
      p_peek =
        (fun line ->
           Option.map
             (fun (en : Cache.entry) -> en.Cache.data)
             (Cache.peek t.cache line));
      p_invalidate =
        (fun line ->
           (match Cache.peek t.cache line with
            | Some en -> (
                match t.last with
                | Some le when le == en -> t.last <- None
                | _ -> ())
            | None -> ());
           Cache.invalidate t.cache line);
      p_downgrade =
        (fun line ->
           match Cache.peek t.cache line with
           | Some en -> en.Cache.excl <- false
           | None -> ()) };
  t

let id t = t.id
let env t = t.e
let cache t = t.cache
let endpoint t = t.endpoint

let now t = Desim.Engine.now t.e.engine

let sync_clock t =
  let a = Float.Array.unsafe_get t.accum 0 in
  if a > 0. then begin
    let d = Desim.Time.span_of_float_ns a in
    Float.Array.unsafe_set t.accum 0 0.;
    t.m_compute <- t.m_compute + d;
    Desim.Engine.delay d
  end

let charge t ns =
  Float.Array.unsafe_set t.accum 0 (Float.Array.unsafe_get t.accum 0 +. ns)
let charge_flops t n = charge t (float_of_int n *. t.e.cfg.Config.t_flop)

(* The thread's virtual instant: the global clock plus locally accumulated
   (not yet synchronized) cost. Open-loop load generators timestamp
   request starts and completions with this. *)
let now_ns t =
  Desim.Time.to_ns (now t)
  + Desim.Time.span_of_float_ns (Float.Array.unsafe_get t.accum 0)

(* Advance virtual time to at least [target] (ns since simulation start),
   accounting the gap as idle — neither compute nor sync — so a serving
   worker waiting for its next arrival does not distort either metric.
   Past instants are a no-op (the worker is already running behind). *)
let idle_until t target =
  if target > now_ns t then begin
    sync_clock t;
    let gap = target - Desim.Time.to_ns (now t) in
    if gap > 0 then begin
      t.m_idle <- t.m_idle + gap;
      Desim.Engine.delay gap
    end
  end

let server_of t line =
  t.e.servers.(Directory.server_of_line t.e.dir t.e.cfg ~line)

(* Request/reply legs ride the retrying primitive: under fault injection a
   dropped message costs a timeout + backoff and is resent, so every RPC
   below keeps its exactly-once semantics (state mutates only after the
   full round trip lands). Fault-free, this is Network.transfer verbatim. *)
let transfer_to t ~dst ~bytes =
  Fabric.Scl.reliable_transfer t.e.network ~now:(now t)
    ~src:(Fabric.Scl.node t.endpoint) ~dst:(Fabric.Scl.node dst) ~bytes

let transfer_from t ~src ~at ~bytes =
  Fabric.Scl.reliable_transfer t.e.network ~now:at
    ~src:(Fabric.Scl.node src) ~dst:(Fabric.Scl.node t.endpoint) ~bytes

let delay_until t instant =
  Desim.Engine.delay (Desim.Time.diff instant (now t))

(* ------------------------------------------------------------------ *)
(* Crash fault tolerance: failover and primary-backup mirroring        *)

(* Run a memory-server interaction, absorbing a fail-stop crash of the
   target: wait out the paid retransmission timeouts, park until the
   manager's recovery protocol repoints the directory (unless it already
   has), then re-run [f] — which re-resolves its physical server through
   the directory and lands on the promoted replica. [f] must mutate state
   only after its full round trip lands (the simulation-wide idiom), so a
   retry never double-applies. Escalations from non-server nodes (the
   manager never crashes in this model) propagate.

   This wrapper (and {!with_shard_failover} below) also marks the ParDES
   hub-region boundary: every protocol interaction that touches
   hub-owned simulated state — fabric ports, memory servers, manager
   shards, the directory — already runs under one of the two, so routing
   the body through {!Desim.Engine.hub_run} is all it takes to make the
   protocol domain-safe. With [domains = 1] (and for any caller already
   on the hub) [hub_run] is an inline call and nothing changes; under a
   parallel run the client fiber parks, the body executes as a hub
   fiber — serially, while clients are paused — and the result (or
   exception) travels back. Crashes are excluded when [domains > 1], so
   the failover path itself never runs off the hub. *)
let rec with_failover t f =
  try Desim.Engine.hub_run t.e.engine f with
  | Fabric.Scl.Node_dead (node, at)
    when node >= 1 && node <= t.e.cfg.Config.memory_servers ->
    t.m_failovers <- t.m_failovers + 1;
    if Desim.Time.( < ) (now t) at then delay_until t at;
    let phys = node - 1 in
    if not (Directory.failed t.e.dir phys) then
      Desim.Engine.suspend ~register:(fun ~wake ->
          Directory.await_recovery t.e.dir ~wake);
    with_failover t f
  | Directory.Stale_epoch ->
    (* The slot's epoch moved while the round trip was in flight (a
       promotion happened under us, or our cached hint aimed at a
       deposed primary). Nothing was applied; the directory is already
       repointed, so re-running re-resolves and lands on the
       epoch-current replica immediately. *)
    with_failover t f

(* Epoch fence around a memory-server round trip: capture the logical
   slot's epoch before sending; after the reply lands, reject the whole
   interaction if the epoch moved mid-flight — before any state mutates.
   The server's ack is treated as carrying the epoch the requester
   resolved under; a mismatch is the [Stale_epoch] reply of the
   protocol. Healthy runs compare 0 = 0 and never allocate or raise. *)
let fence t ~logical ~epoch =
  Directory.fence t.e.dir ~logical ~epoch

(* The control-plane analogue: absorb a fail-stop crash of a manager
   shard. Wait out the paid retransmission timeouts, park until the shard
   monitor's takeover repoints the shard map (unless it already has), then
   re-run [f] — which re-resolves its shard through the control plane and
   lands on the ring successor. Every shard RPC below is idempotent under
   retry (holder re-grants, release sequence numbers, barrier epoch
   replay), so a request that executed before the crash is not
   double-applied. *)
let rec with_shard_failover t f =
  try Desim.Engine.hub_run t.e.engine f with
  | Fabric.Scl.Node_dead (node, at)
    when Control_plane.shard_node_of t.e.cp node <> None ->
    (match Control_plane.shard_node_of t.e.cp node with
     | None -> assert false
     | Some logical ->
       t.m_failovers <- t.m_failovers + 1;
       if Desim.Time.( < ) (now t) at then delay_until t at;
       if not (Control_plane.shard_failed t.e.cp logical) then
         Desim.Engine.suspend ~register:(fun ~wake ->
             Control_plane.await_shard_recovery t.e.cp ~wake);
       with_shard_failover t f)

(* Framing of a primary-to-backup mirror message beyond its payload. *)
let mirror_overhead_wire = 32

(* Synchronous primary-backup mirroring, timing side: between the primary
   serving a write ([~at]) and its ack to the client, the primary ships
   the payload to its backup, the backup applies it (service occupancy)
   and acks. Returns the instant the primary may ack the client and
   whether the mirror happened. A dead backup costs the primary its retry
   budget and degrades the write (acked unreplicated) — the recovery
   replay covers the gap. A dead primary propagates to the caller's
   {!with_failover}. *)
let replicate_ready t srv ~at ~payload_bytes =
  if t.e.cfg.Config.replication = 0 then (at, false)
  else
    match Memory_server.backup srv with
    | None -> (at, false)
    | Some b ->
      let pnode = Fabric.Scl.node (Memory_server.endpoint srv) in
      let bnode = Fabric.Scl.node (Memory_server.endpoint b) in
      (try
         let m_arrival =
           Fabric.Scl.reliable_transfer t.e.network ~now:at ~src:pnode
             ~dst:bnode
             ~bytes:(payload_bytes + mirror_overhead_wire)
         in
         let m_served =
           Desim.Resource.reserve (Memory_server.service b) ~now:m_arrival
             ~duration:(Memory_server.service_time_for_bytes b payload_bytes)
         in
         let ack =
           Fabric.Scl.reliable_transfer t.e.network ~now:m_served ~src:bnode
             ~dst:pnode ~bytes:Manager_shard.ack_wire
         in
         (ack, true)
       with Fabric.Scl.Node_dead (n, give_up) when n = bnode ->
         Memory_server.note_degraded srv;
         (Desim.Time.max at give_up, false))

(* State side of the mirror, run after the client's round trip lands (ack
   received <=> applied at primary and backup). [Diff.apply] /
   [Update.apply_to_line] directly — the backup's own request counters
   track client traffic, not mirrors — and versions forced equal to the
   primary's, which is what makes promotion version-consistent. *)
let mirror_diff srv (diff : Diff.t) ~version =
  match Memory_server.backup srv with
  | None -> ()
  | Some b ->
    Diff.apply diff (Memory_server.line b diff.Diff.line);
    Memory_server.force_version b diff.Diff.line version

let mirror_update t srv (u : Update.t) ~line_versions =
  match Memory_server.backup srv with
  | None -> ()
  | Some b ->
    List.iter
      (fun (line, v) ->
         Update.apply_to_line t.e.layout u ~line (Memory_server.line b line);
         Memory_server.force_version b line v)
      line_versions

(* Protocol-event tracing: free when the engine's trace is Null. *)
let trace t ~tag fmt =
  let tr = Desim.Engine.trace t.e.engine in
  Desim.Trace.emitf tr ~time:(now t) ~tag fmt

let traced t = Desim.Trace.enabled (Desim.Engine.trace t.e.engine)

(* RegCSan hooks: with the analyzer disabled (the default) each access pays
   exactly one branch on an immutable field — nothing is allocated and no
   event is constructed. *)

let san_read t ~addr ~len =
  match t.e.san with
  | None -> ()
  | Some s -> Analysis.Regcsan.on_read s ~thread:t.id ~time:(now t) ~addr ~len

let san_write t ~addr ~len =
  match t.e.san with
  | None -> ()
  | Some s ->
    let lock = match t.held with (l, _) :: _ -> l | [] -> -1 in
    Analysis.Regcsan.on_write s ~thread:t.id ~time:(now t) ~addr ~len ~lock

(* Probe hooks follow the same discipline: one branch per event site when
   no observer is attached. *)

let probe_read t ~addr ~len ~value =
  match t.e.probe with
  | None -> ()
  | Some p -> p.Probe.on_read ~thread:t.id ~time:(now t) ~addr ~len ~value

let probe_write t ~addr ~len ~value =
  match t.e.probe with
  | None -> ()
  | Some p -> p.Probe.on_write ~thread:t.id ~time:(now t) ~addr ~len ~value

(* i64 variants: the [Some v] option cell is built only after the observer
   check, so the disabled-probe path (the default) allocates nothing. *)

let probe_read_i64 t ~addr v =
  match t.e.probe with
  | None -> ()
  | Some p ->
    p.Probe.on_read ~thread:t.id ~time:(now t) ~addr ~len:8 ~value:(Some v)

let probe_write_i64 t ~addr v =
  match t.e.probe with
  | None -> ()
  | Some p ->
    p.Probe.on_write ~thread:t.id ~time:(now t) ~addr ~len:8 ~value:(Some v)

(* Publication: the home's line now holds the merged bytes at [version];
   this is the instant the data becomes RegC-visible to later acquirers
   and barrier crossers. The buffer is borrowed (the server's live line). *)
let probe_publish t ~srv ~line ~version =
  match t.e.probe with
  | None -> ()
  | Some p ->
    p.Probe.on_publish ~thread:t.id ~time:(now t)
      ~server:(Memory_server.id srv) ~line ~version
      ~data:(Memory_server.line srv line)

let probe_sync t op =
  match t.e.probe with
  | None -> ()
  | Some p -> p.Probe.on_sync ~thread:t.id ~time:(now t) ~op

let forget_last t (e : Cache.entry) =
  match t.last with
  | Some le when le == e -> t.last <- None
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Flushing (ordinary-region diffs)                                    *)

(* Flush one dirty entry with its own round trip (the eviction path). *)
let flush_entry t (entry : Cache.entry) =
  match entry.Cache.twin with
  | None -> ()
  | Some twin ->
    let diff =
      Diff.make t.e.layout ~line:entry.Cache.line ~twin
        ~current:entry.Cache.data ~dirty_pages:entry.Cache.dirty_pages
    in
    if Diff.is_empty diff then
      Cache.clean t.cache entry ~version:entry.Cache.version
    else begin
      let payload = Diff.payload_bytes diff in
      let srv, v =
        with_failover t (fun () ->
            let logical =
              Directory.logical_of_line t.e.dir t.e.cfg
                ~line:entry.Cache.line
            in
            let epoch = Directory.epoch_of t.e.dir ~logical in
            let srv = t.e.servers.(Directory.physical_of_logical t.e.dir
                                     logical) in
            let sep = Memory_server.endpoint srv in
            let arrival =
              transfer_to t ~dst:sep ~bytes:(Diff.wire_bytes diff)
            in
            let served =
              Desim.Resource.reserve (Memory_server.service srv) ~now:arrival
                ~duration:(Memory_server.service_time_for_bytes srv payload)
            in
            let ready, mirrored =
              replicate_ready t srv ~at:served ~payload_bytes:payload
            in
            let reply =
              transfer_from t ~src:sep ~at:ready ~bytes:diff_reply_wire
            in
            delay_until t reply;
            (* Epoch fence before anything mutates: if a promotion moved
               the slot while the round trip was in flight, the ack we
               just received came from a deposed primary (or raced the
               repointing) — it is a [Stale_epoch] reply, not a commit.
               with_failover re-runs against the epoch-current replica. *)
            fence t ~logical ~epoch;
            (* Re-resolve at apply time: a home migration may have moved
               the line while the round trip was in flight; the diff must
               land at the line's current home or it would be lost in the
               migration copy. Without migration this is [srv]. *)
            let srv = server_of t entry.Cache.line in
            let v = Memory_server.apply_diff srv diff in
            if mirrored then begin
              mirror_diff srv diff ~version:v;
              Memory_server.note_mirror srv ~bytes:payload
            end;
            (srv, v))
      in
      probe_publish t ~srv ~line:entry.Cache.line ~version:v;
      if traced t then
        trace t ~tag:"flush" "t%d line=%d bytes=%d v=%d (eviction)" t.id
          entry.Cache.line (Diff.payload_bytes diff) v;
      Hashtbl.replace t.interval_writes entry.Cache.line ();
      Cache.clean t.cache entry ~version:v
    end

(* Flush every dirty line, batching one message per home server (paper:
   synchronization moves only the minimum data required). Returns the
   (line, new_version) write notices. *)
let flush_dirty_all t =
  let dirty = Cache.dirty_entries t.cache in
  if dirty = [] then []
  else begin
    let by_server = Hashtbl.create 4 in
    List.iter
      (fun (entry : Cache.entry) ->
         match entry.Cache.twin with
         | None -> ()
         | Some twin ->
           let diff =
             Diff.make t.e.layout ~line:entry.Cache.line ~twin
               ~current:entry.Cache.data ~dirty_pages:entry.Cache.dirty_pages
           in
           if Diff.is_empty diff then
             Cache.clean t.cache entry ~version:entry.Cache.version
           else begin
             let s =
               Directory.logical_of_line t.e.dir t.e.cfg
                 ~line:entry.Cache.line
             in
             let existing =
               Option.value (Hashtbl.find_opt by_server s) ~default:[]
             in
             Hashtbl.replace by_server s ((entry, diff) :: existing)
           end)
      dirty;
    let servers =
      List.sort Int.compare (Hashtbl.fold (fun s _ a -> s :: a) by_server [])
    in
    List.concat_map
      (fun s ->
         (* [s] is the logical home; the physical server is re-resolved
            inside the retried block so a failover lands the whole batch
            on the promoted replica. *)
         let batch = List.rev (Hashtbl.find by_server s) in
         let wire =
           List.fold_left (fun acc (_, d) -> acc + Diff.wire_bytes d) 0 batch
         in
         let payload =
           List.fold_left (fun acc (_, d) -> acc + Diff.payload_bytes d) 0
             batch
         in
         with_failover t (fun () ->
             let epoch = Directory.epoch_of t.e.dir ~logical:s in
             let srv =
               t.e.servers.(Directory.physical_of_logical t.e.dir s)
             in
             let sep = Memory_server.endpoint srv in
             let arrival = transfer_to t ~dst:sep ~bytes:wire in
             let served =
               Desim.Resource.reserve (Memory_server.service srv) ~now:arrival
                 ~duration:(Memory_server.service_time_for_bytes srv payload)
             in
             let ready, mirrored =
               replicate_ready t srv ~at:served ~payload_bytes:payload
             in
             let reply =
               transfer_from t ~src:sep ~at:ready
                 ~bytes:(diff_reply_wire + (12 * List.length batch))
             in
             delay_until t reply;
             (* Epoch fence before the batch mutates anything (see
                flush_entry): a mid-flight promotion fences the whole
                batch and with_failover re-runs it on the new primary. *)
             fence t ~logical:s ~epoch;
             if mirrored then Memory_server.note_mirror srv ~bytes:payload;
             List.map
               (fun ((entry : Cache.entry), diff) ->
                  (* Per-line re-resolve at apply time: a concurrent home
                     migration moves the line's home mid-flight; the diff
                     must land at the current home (equals [srv] when no
                     migration ran). *)
                  let srv = server_of t entry.Cache.line in
                  let v = Memory_server.apply_diff srv diff in
                  if mirrored then mirror_diff srv diff ~version:v;
                  probe_publish t ~srv ~line:entry.Cache.line ~version:v;
                  Hashtbl.replace t.interval_writes entry.Cache.line ();
                  Cache.clean t.cache entry ~version:v;
                  (entry.Cache.line, v))
               batch))
      servers
  end

(* ------------------------------------------------------------------ *)
(* Sequential-consistency mode (Config.Sc_invalidate): IVY-style single
   writer per line. All protocol work below runs in the requesting
   thread's process context; directory state lives in [t.e.sc]. *)

let sc_server_node t line =
  Fabric.Scl.node (Memory_server.endpoint (server_of t line))

(* Ship an exclusively-held line home (eviction of an exclusive copy). *)
let sc_writeback t (entry : Cache.entry) =
  let line = entry.Cache.line in
  let srv = server_of t line in
  let sep = Memory_server.endpoint srv in
  let arrival =
    transfer_to t ~dst:sep
      ~bytes:(t.e.layout.Layout.line_bytes + fetch_reply_overhead)
  in
  let served =
    Desim.Resource.reserve (Memory_server.service srv) ~now:arrival
      ~duration:
        (Memory_server.service_time_for_bytes srv
           t.e.layout.Layout.line_bytes)
  in
  let reply = transfer_from t ~src:sep ~at:served ~bytes:diff_reply_wire in
  delay_until t reply;
  Bytes.blit entry.Cache.data 0
    (Memory_server.line srv line)
    0 t.e.layout.Layout.line_bytes;
  entry.Cache.excl <- false;
  Coherence_sc.clear_owner t.e.sc ~line

(* Recall an exclusive copy held by [owner_tid]: the home asks the owner,
   the owner ships the line back and keeps a shared copy. Runs at [now]
   (the home's service completion); returns when the writeback lands. *)
let sc_recall t ~line ~owner_tid ~now =
  let srv = server_of t line in
  let server_node = sc_server_node t line in
  let p = Coherence_sc.peer t.e.sc owner_tid in
  let req =
    Fabric.Network.transfer t.e.network ~now ~src:server_node
      ~dst:p.Coherence_sc.p_node ~bytes:fetch_request_wire
  in
  let back =
    Fabric.Network.transfer t.e.network ~now:req
      ~src:p.Coherence_sc.p_node ~dst:server_node
      ~bytes:(t.e.layout.Layout.line_bytes + fetch_reply_overhead)
  in
  (match p.Coherence_sc.p_peek line with
   | Some data ->
     Bytes.blit data 0
       (Memory_server.line srv line)
       0 t.e.layout.Layout.line_bytes
   | None -> ());  (* owner evicted meanwhile: home already current *)
  p.Coherence_sc.p_downgrade line;
  Coherence_sc.clear_owner t.e.sc ~line;
  Coherence_sc.add_sharer t.e.sc ~line ~thread:owner_tid;
  back

(* Invalidate every sharer except [self]; returns when the last ack is
   back at the home. *)
let sc_invalidate_sharers t ~line ~now =
  let server_node = sc_server_node t line in
  List.fold_left
    (fun tmax s ->
       if s = t.id then tmax
       else begin
         let p = Coherence_sc.peer t.e.sc s in
         let inv =
           Fabric.Network.transfer t.e.network ~now ~src:server_node
             ~dst:p.Coherence_sc.p_node ~bytes:fetch_request_wire
         in
         let ack =
           Fabric.Network.transfer t.e.network ~now:inv
             ~src:p.Coherence_sc.p_node ~dst:server_node
             ~bytes:Manager_shard.ack_wire
         in
         p.Coherence_sc.p_invalidate line;
         Coherence_sc.drop_sharer t.e.sc ~line ~thread:s;
         Desim.Time.max tmax ack
       end)
    now
    (Coherence_sc.sharer_list t.e.sc ~line)

(* ------------------------------------------------------------------ *)
(* Demand paging                                                       *)

let evict_victim t (victim : Cache.entry) =
  forget_last t victim;
  match t.e.cfg.Config.model with
  | Config.Regc ->
    if victim.Cache.dirty_pages <> 0 then flush_entry t victim
  | Config.Sc_invalidate ->
    if victim.Cache.excl then sc_writeback t victim
    else
      Coherence_sc.drop_sharer t.e.sc ~line:victim.Cache.line ~thread:t.id

let install t ~line ~data ~version =
  Cache.insert t.cache ~line ~data ~version ~evict:(evict_victim t)

let maybe_prefetch t line =
  if t.e.cfg.Config.prefetch
     && t.e.cfg.Config.model = Config.Regc
     && Option.is_none (Cache.peek t.cache line)
     && Cache.pending_start t.cache line
  then begin
    let logical = Directory.logical_of_line t.e.dir t.e.cfg ~line in
    let epoch = Directory.epoch_of t.e.dir ~logical in
    let srv = t.e.servers.(Directory.physical_of_logical t.e.dir logical) in
    let sep = Memory_server.endpoint srv in
    match
      Fabric.Scl.async_read
        ~service:(Memory_server.service srv)
        ~service_time:(Memory_server.service_time_for_bytes srv 0)
        ~src:t.endpoint ~dst:sep
        ~bytes:(t.e.layout.Layout.line_bytes + fetch_reply_overhead)
        ~on_complete:(fun _arrival ->
          if Directory.epoch_of t.e.dir ~logical <> epoch then begin
            (* The prefetched reply was assembled under a deposed
               mapping (promotion raced it): fence it instead of
               installing — a later demand fetch re-resolves. *)
            Directory.note_fenced t.e.dir;
            Cache.pending_abort t.cache line
          end
          else begin
            let data, version = Memory_server.fetch srv line in
            Cache.pending_complete t.cache line ~data ~version
          end)
        ()
    with
    | () -> ()
    | exception Fabric.Scl.Node_dead _ ->
      (* The home crashed: this prefetch will never deliver. Drop the
         in-flight slot so a later demand fetch (which retries through
         the failover path) is not parked on it forever. *)
      Cache.pending_abort t.cache line
  end

(* Demand-fetch a line; the clock must already be synchronized. The miss
   was detected before the caller synchronized the clock (a yield), so the
   line may have been installed by a prefetch completion meanwhile. *)
let rec demand_fetch t line : Cache.entry =
  match Cache.find t.cache line with
  | Some entry -> entry
  | None ->
  match Cache.pending_wait t.cache line with
  | Some register ->
    (* A prefetch of this line is in flight: piggyback on it, chaining the
       prefetch forward immediately so a sequential scan stays pipelined. *)
    maybe_prefetch t (line + 1);
    (match Desim.Engine.suspendv ~register:(fun ~wake -> register wake) with
     | Some (data, version) -> (
         match Cache.peek t.cache line with
         | Some entry -> entry  (* an earlier waiter installed it *)
         | None -> install t ~line ~data ~version)
     | None -> demand_fetch t line (* invalidated in flight: retry *))
  | None ->
    (* Paper section II: on a miss, the request for the missing line and
       the asynchronous request for the adjacent line are placed together,
       so the prefetch overlaps the demand fetch. *)
    maybe_prefetch t (line + 1);
    let logical = Directory.logical_of_line t.e.dir t.e.cfg ~line in
    let epoch = Directory.epoch_of t.e.dir ~logical in
    let srv = t.e.servers.(Directory.physical_of_logical t.e.dir logical) in
    let sep = Memory_server.endpoint srv in
    let arrival = transfer_to t ~dst:sep ~bytes:fetch_request_wire in
    let served =
      Desim.Resource.reserve (Memory_server.service srv) ~now:arrival
        ~duration:(Memory_server.service_time_for_bytes srv 0)
    in
    let reply =
      transfer_from t ~src:sep ~at:served
        ~bytes:(t.e.layout.Layout.line_bytes + fetch_reply_overhead)
    in
    delay_until t reply;
    (* Epoch fence before installing: a reply assembled by a deposed
       primary (promotion raced the round trip) must not enter the
       cache — the caller's failover wrapper re-fetches from the
       epoch-current replica. *)
    fence t ~logical ~epoch;
    let data, version = Memory_server.fetch srv line in
    if traced t then
      trace t ~tag:"fetch" "t%d line=%d v=%d from server %d" t.id line
        version (Memory_server.id srv);
    install t ~line ~data ~version

(* The directory transaction of an SC fetch/upgrade must execute without
   yields: concurrent transactions are serialized by the home in reality,
   and in the simulator by execution order. Cache room is therefore
   secured first (eviction writebacks may yield), then the state
   transition (recall, invalidations, fetch, install, ownership) runs
   atomically, and only then the requester pays its latency. *)

(* SC read miss: fetch from home, recalling an exclusive holder first. *)
let sc_read_fetch t line : Cache.entry =
  Cache.ensure_room t.cache ~line ~evict:(evict_victim t);
  let srv = server_of t line in
  let sep = Memory_server.endpoint srv in
  let arrival = transfer_to t ~dst:sep ~bytes:fetch_request_wire in
  let served =
    Desim.Resource.reserve (Memory_server.service srv) ~now:arrival
      ~duration:(Memory_server.service_time_for_bytes srv 0)
  in
  (* --- atomic directory transaction (no yields) --- *)
  let ready =
    match Coherence_sc.owner t.e.sc ~line with
    | Some o when o <> t.id -> sc_recall t ~line ~owner_tid:o ~now:served
    | _ -> served
  in
  let data, version = Memory_server.fetch srv line in
  Coherence_sc.add_sharer t.e.sc ~line ~thread:t.id;
  let entry = install t ~line ~data ~version in
  (* --- end of transaction; pay the latency --- *)
  let reply =
    transfer_from t ~src:sep ~at:ready
      ~bytes:(t.e.layout.Layout.line_bytes + fetch_reply_overhead)
  in
  delay_until t reply;
  entry

(* SC write: obtain the line exclusively — invalidate every other sharer
   and recall any other owner; upgrade in place when a shared copy is
   already cached. The clock must be synchronized. [commit] runs inside
   the atomic transaction, right after ownership transfers: the store
   commits logically at grant time, so a concurrent transaction that runs
   while this thread pays its latency recalls the already-stored value —
   no lost updates and no grant/steal livelock. *)
let sc_acquire_exclusive t line ~commit : Cache.entry =
  Cache.ensure_room t.cache ~line ~evict:(evict_victim t);
  let srv = server_of t line in
  let sep = Memory_server.endpoint srv in
  let arrival = transfer_to t ~dst:sep ~bytes:fetch_request_wire in
  let served =
    Desim.Resource.reserve (Memory_server.service srv) ~now:arrival
      ~duration:(Memory_server.service_time_for_bytes srv 0)
  in
  (* --- atomic directory transaction (no yields) --- *)
  let after_recall =
    match Coherence_sc.owner t.e.sc ~line with
    | Some o when o <> t.id -> sc_recall t ~line ~owner_tid:o ~now:served
    | _ -> served
  in
  let ready = sc_invalidate_sharers t ~line ~now:after_recall in
  let cached = Cache.peek t.cache line in
  let reply_bytes =
    match cached with
    | Some _ -> Manager_shard.ack_wire  (* upgrade: data already valid *)
    | None -> t.e.layout.Layout.line_bytes + fetch_reply_overhead
  in
  let entry =
    match cached with
    | Some e -> e
    | None ->
      let data, version = Memory_server.fetch srv line in
      install t ~line ~data ~version
  in
  entry.Cache.excl <- true;
  Coherence_sc.drop_sharer t.e.sc ~line ~thread:t.id;
  Coherence_sc.set_owner t.e.sc ~line ~thread:t.id;
  commit entry;
  (* --- end of transaction; pay the latency --- *)
  let reply = transfer_from t ~src:sep ~at:ready ~bytes:reply_bytes in
  delay_until t reply;
  entry

(* Locate the cache entry for [addr], faulting it in on a miss. The
   caller derives the line offset with {!line_off} — returning the entry
   alone keeps the repeated-hit path free of the per-access tuple it used
   to build. Miss stalls count as compute time, matching the paper's
   measurement split. *)
let locate t addr : Cache.entry =
  let line = addr lsr t.e.layout.Layout.line_shift in
  let entry =
    match t.last with
    | Some e when e.Cache.line = line ->
      Cache.note_hit t.cache;
      e
    | _ -> (
        match Cache.find_exn t.cache line with
        | e ->
          Cache.note_hit t.cache;
          t.last <- Some e;
          e
        | exception Not_found ->
          (* Sync the clock before classifying: accumulated local time may
             let an in-flight prefetch of this very line land, turning the
             would-be miss into a hit. *)
          sync_clock t;
          (match Cache.find_exn t.cache line with
           | e ->
             Cache.note_hit t.cache;
             t.last <- Some e;
             e
           | exception Not_found ->
             Cache.note_miss t.cache;
             let start = now t in
             let e =
               match t.e.cfg.Config.model with
               | Config.Regc ->
                 with_failover t (fun () -> demand_fetch t line)
               | Config.Sc_invalidate -> sc_read_fetch t line
             in
             t.m_compute <- t.m_compute + Desim.Time.diff (now t) start;
             (* Under SC the copy may have been invalidated while the
                reply was in flight: this read still returns the value
                current at fetch time (legal — it linearizes at the home's
                service instant), but the stale object must not become the
                fast path. *)
             (match Cache.peek t.cache line with
              | Some e' when e' == e -> t.last <- Some e
              | _ -> t.last <- None);
             e))
  in
  charge t t.e.cfg.Config.t_mem;
  entry

let line_off t addr = addr land t.e.layout.Layout.line_mask

(* SC store driver: fast path on an exclusively-held line, else the full
   acquire transaction with the store committed inside it. [store] writes
   into the entry at the line offset and must not yield. *)
let sc_store t addr ~store =
  charge t t.e.cfg.Config.t_mem;
  let line = addr lsr t.e.layout.Layout.line_shift in
  let off = addr land t.e.layout.Layout.line_mask in
  match t.last with
  | Some e when e.Cache.line = line && e.Cache.excl ->
    Cache.note_hit t.cache;
    store e off
  | _ -> (
      match Cache.find t.cache line with
      | Some e when e.Cache.excl ->
        Cache.note_hit t.cache;
        t.last <- Some e;
        store e off
      | _ ->
        Cache.note_miss t.cache;
        sync_clock t;
        let start = now t in
        let e = sc_acquire_exclusive t line ~commit:(fun e -> store e off) in
        t.m_compute <- t.m_compute + Desim.Time.diff (now t) start;
        (* Keep the fast path only if the grant survived the latency. *)
        (match Cache.peek t.cache line with
         | Some e' when e' == e && e.Cache.excl -> t.last <- Some e
         | _ -> t.last <- None))

(* ------------------------------------------------------------------ *)
(* Typed accessors                                                     *)

let check_aligned addr =
  if addr land 7 <> 0 then
    invalid_arg "Samhita: 8-byte accesses must be 8-byte aligned"

let read_i64 t addr =
  check_aligned addr;
  let entry = locate t addr in
  san_read t ~addr ~len:8;
  let v = Bytes.get_int64_le entry.Cache.data (line_off t addr) in
  probe_read_i64 t ~addr v;
  v

let write_i64 t addr v =
  check_aligned addr;
  san_write t ~addr ~len:8;
  probe_write_i64 t ~addr v;
  match t.e.cfg.Config.model with
  | Config.Sc_invalidate ->
    sc_store t addr ~store:(fun (e : Cache.entry) off ->
        Bytes.set_int64_le e.Cache.data off v)
  | Config.Regc ->
    let entry = locate t addr in
    let off = line_off t addr in
    (* Dirty tracking must precede the store: the twin snapshots the
       pre-store contents, or the store would be absent from its own
       diff. *)
    (match t.held with
     | (_, log) :: _ ->
       (* Consistency region: fine-grained logging (the paper's
          instrumented store path). The store also lands in any twin so
          it can never be picked up a second time by this thread's
          ordinary-region diff — that stale re-flush would overwrite
          later holders' updates at the home. *)
       log :=
         Update.append ~coalesce:t.e.cfg.Config.coalesce_updates !log
           ~addr (Update.i64_data v);
       (match entry.Cache.twin with
        | Some twin -> Bytes.set_int64_le twin off v
        | None -> ())
     | [] -> Cache.mark_written t.cache entry ~offset:off ~len:8);
    Bytes.set_int64_le entry.Cache.data off v

let read_f64 t addr = Int64.float_of_bits (read_i64 t addr)
let write_f64 t addr v = write_i64 t addr (Int64.bits_of_float v)

(* Generic raw access, line segment by line segment. Bulk operations charge
   one cached-access cost per 8 bytes touched (locate charges the first). *)
let charge_extra_words t seg =
  if seg > 8 then
    charge t (float_of_int ((seg - 1) / 8) *. t.e.cfg.Config.t_mem)

let write_bytes t addr src =
  let len = Bytes.length src in
  if len > 0 then begin
    san_write t ~addr ~len;
    probe_write t ~addr ~len ~value:None
  end;
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    match t.e.cfg.Config.model with
    | Config.Sc_invalidate ->
      let off0 = a land t.e.layout.Layout.line_mask in
      let seg = min (len - !pos) (t.e.layout.Layout.line_bytes - off0) in
      let from = !pos in
      charge_extra_words t seg;
      sc_store t a ~store:(fun (e : Cache.entry) off ->
          Bytes.blit src from e.Cache.data off seg);
      pos := !pos + seg
    | Config.Regc ->
      let entry = locate t a in
      let off = line_off t a in
      let seg = min (len - !pos) (t.e.layout.Layout.line_bytes - off) in
      charge_extra_words t seg;
      (match t.held with
       | (_, log) :: _ ->
         log :=
           Update.append ~coalesce:t.e.cfg.Config.coalesce_updates !log
             ~addr:a (Bytes.sub src !pos seg);
         (match entry.Cache.twin with
          | Some twin -> Bytes.blit src !pos twin off seg
          | None -> ())
       | [] -> Cache.mark_written t.cache entry ~offset:off ~len:seg);
      Bytes.blit src !pos entry.Cache.data off seg;
      pos := !pos + seg
  done

let read_bytes t addr ~len =
  if len < 0 then invalid_arg "Samhita.read_bytes: negative length";
  if len > 0 then begin
    san_read t ~addr ~len;
    probe_read t ~addr ~len ~value:None
  end;
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let entry = locate t a in
    let off = line_off t a in
    let seg = min (len - !pos) (t.e.layout.Layout.line_bytes - off) in
    charge_extra_words t seg;
    Bytes.blit entry.Cache.data off out !pos seg;
    pos := !pos + seg
  done;
  out

let read_u8 t addr =
  let entry = locate t addr in
  san_read t ~addr ~len:1;
  probe_read t ~addr ~len:1 ~value:None;
  Char.code (Bytes.get entry.Cache.data (line_off t addr))

let write_u8 t addr v =
  if v < 0 || v > 255 then invalid_arg "Samhita.write_u8: value out of range";
  let b = Bytes.make 1 (Char.chr v) in
  write_bytes t addr b

let check_aligned4 addr =
  if addr land 3 <> 0 then
    invalid_arg "Samhita: 4-byte accesses must be 4-byte aligned"

let read_i32 t addr =
  check_aligned4 addr;
  let entry = locate t addr in
  san_read t ~addr ~len:4;
  probe_read t ~addr ~len:4 ~value:None;
  Bytes.get_int32_le entry.Cache.data (line_off t addr)

let write_i32 t addr v =
  check_aligned4 addr;
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 v;
  write_bytes t addr b

let read_f32 t addr = Int32.float_of_bits (read_i32 t addr)
let write_f32 t addr v = write_i32 t addr (Int32.bits_of_float v)

let in_consistency_region t = t.held <> []

(* Innermost-first, matching acquisition nesting. *)
let held_locks t = List.map fst t.held

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)

(* Allocation is served by shard 0 (never killable), so the RPC needs no
   failover wrapper — only the hub region. *)
let manager_alloc_rpc t ~kind ~bytes =
  Desim.Engine.hub_run t.e.engine (fun () ->
      let mgr = Control_plane.alloc_shard t.e.cp in
      let mep = Manager_shard.endpoint mgr in
      let arrival = transfer_to t ~dst:mep ~bytes:alloc_request_wire in
      let served =
        Desim.Resource.reserve (Manager_shard.service mgr) ~now:arrival
          ~duration:t.e.cfg.Config.manager_service
      in
      let reply =
        transfer_from t ~src:mep ~at:served ~bytes:alloc_reply_wire
      in
      delay_until t reply;
      Manager_shard.alloc mgr ~kind ~bytes)

let rec malloc_impl t ~bytes =
  if bytes <= 0 then invalid_arg "Samhita.malloc: bytes must be positive";
  charge t t.e.cfg.Config.t_mem;
  if bytes <= t.e.cfg.Config.small_threshold then begin
    match Allocator.Arena.alloc t.arena ~bytes with
    | `Hit addr -> addr
    | `Need_chunk ->
      sync_clock t;
      let start = now t in
      let size = t.e.cfg.Config.arena_chunk_bytes in
      let base = manager_alloc_rpc t ~kind:`Arena_chunk ~bytes:size in
      Allocator.Arena.add_chunk t.arena ~base ~size;
      t.m_alloc <- t.m_alloc + Desim.Time.diff (now t) start;
      malloc_impl t ~bytes
  end
  else begin
    sync_clock t;
    let start = now t in
    let kind =
      if bytes <= t.e.cfg.Config.large_threshold then `Shared else `Large
    in
    let addr = manager_alloc_rpc t ~kind ~bytes in
    t.m_alloc <- t.m_alloc + Desim.Time.diff (now t) start;
    addr
  end

let malloc t ~bytes =
  let addr = malloc_impl t ~bytes in
  (match t.e.san with
   | None -> ()
   | Some s ->
     Analysis.Regcsan.on_malloc s ~thread:t.id ~time:(now t) ~addr ~bytes);
  (match t.e.probe with
   | None -> ()
   | Some p -> p.Probe.on_malloc ~thread:t.id ~time:(now t) ~addr ~bytes);
  addr

let free t ~addr ~bytes =
  (match t.e.san with
   | None -> ()
   | Some s when bytes > 0 ->
     Analysis.Regcsan.on_free s ~thread:t.id ~time:(now t) ~addr ~bytes
   | Some _ -> ());
  (match t.e.probe with
   | None -> ()
   | Some p when bytes > 0 ->
     p.Probe.on_free ~thread:t.id ~time:(now t) ~addr ~bytes
   | Some _ -> ());
  if bytes > 0 && bytes <= t.e.cfg.Config.small_threshold then
    Allocator.Arena.free t.arena ~addr ~bytes

(* ------------------------------------------------------------------ *)
(* RegC grant application                                              *)

(* Version-based invalidation (lock-grant fallback path). A dirty entry is
   flushed first so this thread's ordinary writes are not lost; the home
   merge preserves them. *)
let apply_notices t notices =
  List.iter
    (fun (line, v) ->
       match Cache.peek t.cache line with
       | Some entry when entry.Cache.version <> v ->
         if entry.Cache.dirty_pages <> 0 then flush_entry t entry;
         forget_last t entry;
         Cache.invalidate t.cache line
       | Some _ -> ()
       | None ->
         (* Not cached, but a prefetch may be in flight: mark it stale. *)
         Cache.invalidate t.cache line)
    notices

(* Writer-set invalidation (barrier path): drop any cached line written by
   another thread this interval; only the home holds the merge. *)
let apply_writer_notices t notices =
  List.iter
    (fun (line, writers) ->
       if Tset.exists_other writers ~self:t.id then begin
         (match Cache.peek t.cache line with
          | Some entry ->
            forget_last t entry;
            Cache.invalidate t.cache line
          | None ->
            (* A prefetch may be in flight: mark it stale. *)
            Cache.invalidate t.cache line)
       end)
    notices

let apply_grant t (g : Manager_shard.grant) =
  match g.Manager_shard.action with
  | Manager_shard.Fresh -> ()
  | Manager_shard.Notices ns -> apply_notices t ns
  | Manager_shard.Patch (log, _line_versions) ->
    (* The aggregated log spans (last_seen, current]: its final absolute
       value per byte is the value as of the lock's current version, i.e.
       the newest value any release produced, so unconditional oldest-first
       application converges regardless of how fresh the cached copy is.
       (Writing the same byte both inside and outside consistency regions
       is a race, exactly as mixing atomic and plain accesses is under
       Pthreads.) Entry versions are deliberately left at their fetch/flush
       values: a patch refreshes only this lock's bytes, not the line. *)
    let patched = ref 0 in
    List.iter
      (fun (u : Update.t) ->
         List.iter
           (fun line ->
              match Cache.peek t.cache line with
              | Some entry ->
                Update.apply_to_line t.e.layout u ~line entry.Cache.data;
                (* Keep any twin in step so the patch is not re-flushed as
                   part of this thread's own diff. *)
                (match entry.Cache.twin with
                 | Some twin -> Update.apply_to_line t.e.layout u ~line twin
                 | None -> ());
                patched := !patched + Bytes.length u.Update.data
              | None -> ())
           (Update.lines_touched t.e.layout u))
      log;
    if !patched > 0 then
      Desim.Engine.delay
        (Desim.Time.span_of_float_ns
           (float_of_int !patched *. t.e.cfg.Config.diff_apply_ns_per_byte))

(* ------------------------------------------------------------------ *)
(* Fine-grained update flush (release path)                            *)

let flush_update_log t log =
  if log = [] then []
  else begin
    let by_server = Hashtbl.create 4 in
    List.iter
      (fun (u : Update.t) ->
         let line = List.hd (Update.lines_touched t.e.layout u) in
         let s = Directory.logical_of_line t.e.dir t.e.cfg ~line in
         let existing =
           Option.value (Hashtbl.find_opt by_server s) ~default:[]
         in
         Hashtbl.replace by_server s (u :: existing))
      log;
    let servers =
      List.sort Int.compare (Hashtbl.fold (fun s _ a -> s :: a) by_server [])
    in
    let merged = Hashtbl.create 16 in
    List.iter
      (fun s ->
         (* [s] is the logical home; re-resolve the physical server inside
            the retried block (see {!flush_dirty_all}). *)
         let batch = List.rev (Hashtbl.find by_server s) in
         let wire = Update.log_wire_bytes batch in
         with_failover t (fun () ->
             let epoch = Directory.epoch_of t.e.dir ~logical:s in
             let srv =
               t.e.servers.(Directory.physical_of_logical t.e.dir s)
             in
             let sep = Memory_server.endpoint srv in
             let arrival = transfer_to t ~dst:sep ~bytes:wire in
             let served =
               Desim.Resource.reserve (Memory_server.service srv) ~now:arrival
                 ~duration:(Memory_server.service_time_for_bytes srv wire)
             in
             let ready, mirrored =
               replicate_ready t srv ~at:served ~payload_bytes:wire
             in
             let reply =
               transfer_from t ~src:sep ~at:ready ~bytes:diff_reply_wire
             in
             delay_until t reply;
             (* Epoch fence before the log applies (see flush_entry):
                the ack either commits under the epoch we resolved or
                the whole batch re-runs — never half-applied. *)
             fence t ~logical:s ~epoch;
             if mirrored then Memory_server.note_mirror srv ~bytes:wire;
             List.iter
               (fun u ->
                  (* Re-resolve at apply time (see {!flush_dirty_all}): a
                     concurrent home migration must not strand the update
                     at the old home. *)
                  let srv =
                    server_of t (List.hd (Update.lines_touched t.e.layout u))
                  in
                  let lvs = Memory_server.apply_update srv u in
                  if mirrored then
                    mirror_update t srv u ~line_versions:lvs;
                  List.iter
                    (fun (line, v) ->
                       probe_publish t ~srv ~line ~version:v;
                       Hashtbl.replace merged line v;
                       (* Our own cached copy already holds the stored
                          values; track the new home version so barrier
                          notices do not invalidate it spuriously. *)
                       match Cache.peek t.cache line with
                       | Some entry -> entry.Cache.version <- v
                       | None -> ())
                    lvs)
               batch))
      servers;
    (* Note: lines touched here are deliberately NOT added to
       interval_writes. Under RegC, consistency-region data propagates via
       the lock protocol (grant patches); only ordinary-region writes
       produce barrier write notices. Reading lock-protected data without
       the lock is a race, exactly as under Pthreads. *)
    Hashtbl.fold (fun l v acc -> (l, v) :: acc) merged []
  end

(* ------------------------------------------------------------------ *)
(* Synchronization                                                     *)

let mutex_lock t lock =
  sync_clock t;
  (match t.e.san with
   | None -> ()
   | Some s ->
     Analysis.Regcsan.on_lock_attempt s ~thread:t.id ~time:(now t) ~lock);
  let start = now t in
  let last_seen =
    Option.value (Hashtbl.find_opt t.lock_seen lock) ~default:0
  in
  let grant =
    with_shard_failover t (fun () ->
        let mgr = Control_plane.shard_for t.e.cp lock in
        let mep = Manager_shard.endpoint mgr in
        (* The one-shot continuation is threaded through an [Ok]/[Error]
           result: if a transfer leg dies with the shard, the continuation
           is consumed with [Error] at the give-up instant and the crash
           re-raised outside — never leaked, never resumed twice. *)
        match
          Desim.Engine.suspendv ~register:(fun ~wake ->
              try
                let arrival =
                  transfer_to t ~dst:mep
                    ~bytes:Manager_shard.acquire_request_wire
                in
                let served =
                  Desim.Resource.reserve (Manager_shard.service mgr)
                    ~now:arrival ~duration:t.e.cfg.Config.manager_service
                in
                match
                  Manager_shard.lock_acquire mgr ~now:served ~lock
                    ~thread:t.id ~last_seen ~endpoint:t.endpoint
                    ~wake:(fun g -> wake (Ok g))
                with
                | `Granted g ->
                  let reply =
                    transfer_from t ~src:mep ~at:served
                      ~bytes:g.Manager_shard.wire_bytes
                  in
                  Desim.Engine.schedule_at t.e.engine reply (fun () ->
                      wake (Ok g))
                | `Queued -> ()
              with Fabric.Scl.Node_dead (n, at) ->
                Desim.Engine.schedule_at t.e.engine at (fun () ->
                    wake (Error (n, at))))
        with
        | Ok g -> g
        | Error (n, at) -> raise (Fabric.Scl.Node_dead (n, at)))
  in
  if traced t then
    trace t ~tag:"acquire" "t%d lock=%d v=%d action=%s" t.id lock
      grant.Manager_shard.lock_version
      (match grant.Manager_shard.action with
       | Manager_shard.Fresh -> "fresh"
       | Manager_shard.Patch (log, _) ->
         Printf.sprintf "patch(%d updates)" (List.length log)
       | Manager_shard.Notices ns ->
         Printf.sprintf "notices(%d lines)" (List.length ns));
  apply_grant t grant;
  Hashtbl.replace t.lock_seen lock grant.Manager_shard.lock_version;
  (match t.e.san with
   | None -> ()
   | Some s ->
     Analysis.Regcsan.on_lock_acquired s ~thread:t.id ~time:(now t) ~lock);
  probe_sync t (Probe.Lock_acquired lock);
  t.held <- (lock, ref []) :: t.held;
  t.m_locks <- t.m_locks + 1;
  t.m_sync <- t.m_sync + Desim.Time.diff (now t) start

let mutex_unlock t lock =
  sync_clock t;
  (match t.e.san with
   | None -> ()
   | Some s ->
     Analysis.Regcsan.on_unlock s ~thread:t.id ~time:(now t) ~lock);
  let start = now t in
  let log =
    match List.assoc_opt lock t.held with
    | Some log_ref ->
      t.held <- List.remove_assoc lock t.held;
      List.rev !log_ref
    | None -> invalid_arg "Samhita.mutex_unlock: lock not held by thread"
  in
  let line_versions = flush_update_log t log in
  let wire = Manager_shard.release_wire ~log ~line_versions in
  (* The release carries a per-lock sequence number so a shard-crash
     retry that already executed is a no-op at the takeover shard. *)
  let seq = 1 + Option.value (Hashtbl.find_opt t.release_seq lock) ~default:0 in
  Hashtbl.replace t.release_seq lock seq;
  with_shard_failover t (fun () ->
      let mgr = Control_plane.shard_for t.e.cp lock in
      let mep = Manager_shard.endpoint mgr in
      let arrival = transfer_to t ~dst:mep ~bytes:wire in
      let served =
        Desim.Resource.reserve (Manager_shard.service mgr) ~now:arrival
          ~duration:t.e.cfg.Config.manager_service
      in
      Manager_shard.lock_release mgr ~seq ~now:served ~lock ~thread:t.id ~log
        ~line_versions;
      if traced t then
        trace t ~tag:"release" "t%d lock=%d updates=%d lines=%d" t.id lock
          (List.length log)
          (List.length line_versions);
      Hashtbl.replace t.lock_seen lock (Manager_shard.lock_version mgr lock);
      let reply =
        transfer_from t ~src:mep ~at:served ~bytes:Manager_shard.ack_wire
      in
      delay_until t reply);
  probe_sync t (Probe.Unlock lock);
  t.m_sync <- t.m_sync + Desim.Time.diff (now t) start

let barrier_wait t barrier =
  sync_clock t;
  let start = now t in
  ignore (flush_dirty_all t : (int * int) list);
  let lines = Hashtbl.fold (fun l () acc -> l :: acc) t.interval_writes [] in
  Hashtbl.reset t.interval_writes;
  let wire = barrier_arrive_overhead + (8 * List.length lines) in
  (* The shard bumps the epoch when it releases the barrier, so every
     participant captures the same epoch number before arriving. The
     capture also keys the shard-crash retry: an arrival whose episode
     already released replays that episode's notices instead of bleeding
     into the next one. *)
  let aepoch =
    Manager_shard.barrier_epoch (Control_plane.shard_for t.e.cp barrier)
      barrier
  in
  let epoch = if t.e.san = None && t.e.probe = None then -1 else aepoch in
  (match t.e.san with
   | None -> ()
   | Some s ->
     Analysis.Regcsan.on_barrier_arrive s ~thread:t.id ~barrier ~epoch);
  (match t.e.probe with
   | None -> ()
   | Some p ->
     p.Probe.on_barrier ~thread:t.id ~time:(now t) ~barrier ~epoch
       ~phase:`Arrive);
  let all, _reply_wire =
    with_shard_failover t (fun () ->
        let mgr = Control_plane.shard_for t.e.cp barrier in
        let mep = Manager_shard.endpoint mgr in
        match
          Desim.Engine.suspendv ~register:(fun ~wake ->
              try
                let arrival = transfer_to t ~dst:mep ~bytes:wire in
                let served =
                  Desim.Resource.reserve (Manager_shard.service mgr)
                    ~now:arrival ~duration:t.e.cfg.Config.manager_service
                in
                match
                  Manager_shard.barrier_arrive mgr ~epoch:aepoch ~now:served
                    ~barrier ~thread:t.id ~lines ~endpoint:t.endpoint
                    ~wake:(fun r -> wake (Ok r))
                with
                | `Released (all, reply_wire) ->
                  let reply =
                    transfer_from t ~src:mep ~at:served ~bytes:reply_wire
                  in
                  Desim.Engine.schedule_at t.e.engine reply (fun () ->
                      wake (Ok (all, reply_wire)))
                | `Wait -> ()
              with Fabric.Scl.Node_dead (n, at) ->
                Desim.Engine.schedule_at t.e.engine at (fun () ->
                    wake (Error (n, at))))
        with
        | Ok r -> r
        | Error (n, at) -> raise (Fabric.Scl.Node_dead (n, at)))
  in
  if traced t then
    trace t ~tag:"barrier" "t%d barrier=%d notices=%d" t.id barrier
      (List.length all);
  (match t.e.san with
   | None -> ()
   | Some s ->
     Analysis.Regcsan.on_barrier_depart s ~thread:t.id ~barrier ~epoch);
  (match t.e.probe with
   | None -> ()
   | Some p ->
     p.Probe.on_barrier ~thread:t.id ~time:(now t) ~barrier ~epoch
       ~phase:`Depart);
  apply_writer_notices t all;
  t.m_barriers <- t.m_barriers + 1;
  t.m_sync <- t.m_sync + Desim.Time.diff (now t) start

let cond_wait t cond lock =
  let mgr = Control_plane.shard_for t.e.cp cond in
  let mep = Manager_shard.endpoint mgr in
  (* POSIX requires releasing the mutex and starting the wait to be one
     atomic step, so the waiter registers with the shard before the
     release. Registering after the release's ack round trip (as an
     earlier version did) leaves a window where another thread can
     acquire, signal and release while we are still in flight — the
     signal finds no waiter and the wakeup is lost. The latch handles a
     signal that lands before we manage to suspend. *)
  let state = ref `Armed in
  (* The registration is a pure bookkeeping write on the shard — no wire
     cost, no reply — so under ParDES it rides a fire-and-forget post
     rather than a hub region: a region's resume would hand the shard's
     answer back to this thread with zero simulated turnaround, below the
     fabric lookahead. Ordering is still right: the post and the
     [mutex_unlock] region behind it drain from this partition's outbox
     in staging order, so the shard sees the registration before the
     release — the POSIX atomic release-and-wait. The [state] latch is
     phase-safe: the client writes it strictly before its pass ends, hub
     signals read it strictly after. *)
  Desim.Engine.remote_post t.e.engine (fun () ->
      Manager_shard.cond_wait mgr ~cond ~thread:t.id ~endpoint:t.endpoint
        ~wake:(fun () ->
            match !state with
            | `Suspended wake -> wake ()
            | _ -> state := `Signalled));
  mutex_unlock t lock;
  let start = now t in
  (match !state with
   | `Signalled -> ()
   | _ ->
     Desim.Engine.suspendv ~register:(fun ~wake ->
         (* The waiter is already registered (the post above); this round
            trip only models the wait notification's wire cost, so under
            ParDES it too is a fire-and-forget hub post — the suspend
            itself stays on the client. If the shard died mid-flight the
            cost is forfeited but the wake path stays intact: the
            registration travels with the absorbed state and a signal on
            the takeover shard fires it. *)
         Desim.Engine.remote_post t.e.engine (fun () ->
             try
               let arrival =
                 transfer_to t ~dst:mep ~bytes:cond_request_wire
               in
               let served =
                 Desim.Resource.reserve (Manager_shard.service mgr)
                   ~now:arrival ~duration:t.e.cfg.Config.manager_service
               in
               ignore (served : Desim.Time.t)
             with Fabric.Scl.Node_dead _ -> ());
         state := `Suspended wake));
  (match t.e.san with
   | None -> ()
   | Some s -> Analysis.Regcsan.on_cond_wake s ~thread:t.id ~cond);
  probe_sync t (Probe.Cond_wake cond);
  t.m_sync <- t.m_sync + Desim.Time.diff (now t) start;
  mutex_lock t lock

let cond_wake_op t cond ~broadcast =
  sync_clock t;
  (match t.e.san with
   | None -> ()
   | Some s -> Analysis.Regcsan.on_cond_signal s ~thread:t.id ~cond);
  probe_sync t (Probe.Cond_signal cond);
  let start = now t in
  (* A shard-crash retry whose first attempt already signalled can wake a
     second waiter — a spurious wakeup, benign under the pthreads
     contract (waiters re-check their predicate in a loop). *)
  with_shard_failover t (fun () ->
      let mgr = Control_plane.shard_for t.e.cp cond in
      let mep = Manager_shard.endpoint mgr in
      let arrival = transfer_to t ~dst:mep ~bytes:cond_request_wire in
      let served =
        Desim.Resource.reserve (Manager_shard.service mgr) ~now:arrival
          ~duration:t.e.cfg.Config.manager_service
      in
      let woken =
        if broadcast then Manager_shard.cond_broadcast mgr ~now:served ~cond
        else Manager_shard.cond_signal mgr ~now:served ~cond
      in
      ignore (woken : int);
      let reply =
        transfer_from t ~src:mep ~at:served ~bytes:Manager_shard.ack_wire
      in
      delay_until t reply);
  t.m_sync <- t.m_sync + Desim.Time.diff (now t) start

let cond_signal t cond = cond_wake_op t cond ~broadcast:false
let cond_broadcast t cond = cond_wake_op t cond ~broadcast:true

(* ------------------------------------------------------------------ *)
(* Lifecycle / metrics                                                 *)

let finish t = sync_clock t

let compute_ns t = t.m_compute
let sync_ns t = t.m_sync
let alloc_ns t = t.m_alloc
let idle_ns t = t.m_idle
let lock_acquires t = t.m_locks
let barrier_waits t = t.m_barriers
let failover_waits t = t.m_failovers
