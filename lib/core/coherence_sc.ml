type peer = {
  p_node : Fabric.Network.node;
  p_peek : int -> bytes option;
  p_invalidate : int -> unit;
  p_downgrade : int -> unit;
}

type dirent = { mutable owner : int option; mutable sharers : int }

type t = {
  peers : (int, peer) Hashtbl.t;
  dir : (int, dirent) Hashtbl.t;
}

let create () = { peers = Hashtbl.create 64; dir = Hashtbl.create 1024 }

let register t ~thread peer =
  (* System.create validates the count up front; this guards direct use. *)
  if thread < 0 || thread >= Config.max_threads then
    invalid_arg "Coherence_sc.register: thread id must fit a bitmask";
  Hashtbl.replace t.peers thread peer

let peer t thread =
  match Hashtbl.find_opt t.peers thread with
  | Some p -> p
  | None -> invalid_arg "Coherence_sc.peer: unregistered thread"

let entry t line =
  match Hashtbl.find_opt t.dir line with
  | Some e -> e
  | None ->
    let e = { owner = None; sharers = 0 } in
    Hashtbl.replace t.dir line e;
    e

let owner t ~line = (entry t line).owner
let sharers t ~line = (entry t line).sharers

let set_owner t ~line ~thread =
  let e = entry t line in
  e.owner <- Some thread;
  e.sharers <- 0

let clear_owner t ~line = (entry t line).owner <- None

let add_sharer t ~line ~thread =
  let e = entry t line in
  e.sharers <- e.sharers lor (1 lsl thread)

let drop_sharer t ~line ~thread =
  let e = entry t line in
  e.sharers <- e.sharers land lnot (1 lsl thread)

let sharer_list t ~line =
  let mask = sharers t ~line in
  let rec go i acc =
    if i >= Config.max_threads then List.rev acc
    else go (i + 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc)
  in
  go 0 []
