type peer = {
  p_node : Fabric.Network.node;
  p_peek : int -> bytes option;
  p_invalidate : int -> unit;
  p_downgrade : int -> unit;
}

type dirent = { mutable owner : int option; sharers : Tset.t }

type t = {
  peers : (int, peer) Hashtbl.t;
  dir : (int, dirent) Hashtbl.t;
  cap : int;
}

let create ?(max_threads = Config.default.Config.max_threads) () =
  { peers = Hashtbl.create 64; dir = Hashtbl.create 1024; cap = max_threads }

let register t ~thread peer =
  (* System.create validates the count up front; this guards direct use. *)
  if thread < 0 || thread >= t.cap then
    invalid_arg "Coherence_sc.register: thread id out of range (max_threads)";
  Hashtbl.replace t.peers thread peer

let peer t thread =
  match Hashtbl.find_opt t.peers thread with
  | Some p -> p
  | None -> invalid_arg "Coherence_sc.peer: unregistered thread"

let entry t line =
  match Hashtbl.find_opt t.dir line with
  | Some e -> e
  | None ->
    let e = { owner = None; sharers = Tset.create () } in
    Hashtbl.replace t.dir line e;
    e

let owner t ~line = (entry t line).owner
let sharers t ~line = (entry t line).sharers

let set_owner t ~line ~thread =
  let e = entry t line in
  e.owner <- Some thread;
  Tset.clear e.sharers

let clear_owner t ~line = (entry t line).owner <- None

let add_sharer t ~line ~thread = Tset.add (entry t line).sharers thread

let drop_sharer t ~line ~thread = Tset.remove (entry t line).sharers thread

let sharer_list t ~line = Tset.to_list (sharers t ~line)
