(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every stochastic choice in the simulator draws from one of these so that
    a run is a pure function of its seed. [split] derives an independent
    stream, letting each component own a generator without cross-coupling
    the draw sequences. *)

type t

val create : seed:int -> t
val split : t -> t
(** Derive an independent generator; the parent advances by one draw. *)

val int64 : t -> int64
val bits : t -> int
(** 62 uniform non-negative bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val hash3 : int -> int -> int -> int
(** Stateless SplitMix-style mix of three ints to 62 uniform non-negative
    bits. Pure, so schedule-fuzzing tie-breaks derived from
    [(seed, time, seq)] replay identically. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean (for arrival
    processes in workload generators). *)
