type event = { time : Time.t; tag : string; message : string }

type sink = Null | Record of event list ref | Log

type t = { sink : sink }

let null = { sink = Null }
let recording () = { sink = Record (ref []) }
let logging () = { sink = Log }

let enabled t = t.sink <> Null

let src = Logs.Src.create "desim" ~doc:"Discrete-event simulator"

module Log_ = (val Logs.src_log src : Logs.LOG)

let emit t ~time ~tag message =
  match t.sink with
  | Null -> ()
  | Record r -> r := { time; tag; message } :: !r
  | Log ->
    Log_.debug (fun m -> m "[%a] %s: %s" Time.pp time tag message)

let emitf t ~time ~tag fmt =
  (* With the Null sink the format arguments must not be rendered at all:
     ikfprintf consumes them without formatting, so a disabled trace costs
     no allocation on hot paths. *)
  match t.sink with
  | Null ->
    Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  | Record _ | Log -> Format.kasprintf (fun s -> emit t ~time ~tag s) fmt

let events t =
  match t.sink with
  | Null | Log -> []
  | Record r -> List.rev !r

let clear t =
  match t.sink with
  | Null | Log -> ()
  | Record r -> r := []
