type chooser = time:int -> seqs:int array -> int

(* ------------------------------------------------------------------ *)
(* ParDES: conservative parallel partitions.

   A parallel engine ([domains >= 2]) splits the simulation into one hub
   partition (index 0) plus [domains] client partitions (1..domains),
   each with its own event heap and local clock. The hub owns every
   shared simulated object (fabric links, memory servers, manager
   shards); clients own the per-thread state of the simulated threads
   assigned to them. Client partitions run their events concurrently on
   OCaml domains; hub events run serially on the main domain while the
   clients are paused, so hub code may touch client-owned state (and
   vice versa never concurrently). The alternation bound is conservative
   CMB-style: clients only execute events strictly below
   [min (next hub event + 1, min client horizon + lookahead)], where the
   lookahead is the fabric's minimum cross-node latency — so no hub
   event can ever wake a client in its executed past. *)

type part = {
  p_queue : (unit -> unit) Heap.t;
  mutable p_now : Time.t;
  mutable p_live : int;  (* processes spawned here and not yet finished *)
  p_names : (int, string) Hashtbl.t;
  mutable p_next_pid : int;
  mutable p_events : int;
  (* Cross-partition messages staged by this partition's client pass,
     drained into the hub heap by the main thread at the pass barrier.
     Entries are [(time_ns, thunk)]; the thunk runs in hub context. *)
  p_outbox : (int * (unit -> unit)) Queue.t;
}

type t = {
  mutable now : Time.t;
  queue : (unit -> unit) Heap.t;
  mutable live : int;  (* processes spawned and not yet finished *)
  (* Names of live processes, keyed by spawn id, so a stall can say who is
     blocked rather than just how many. *)
  names : (int, string) Hashtbl.t;
  mutable next_pid : int;
  trace : Trace.t;
  (* Controlled scheduler (model-checker support): when installed, every
     pop with two or more same-instant candidates asks the chooser which
     one runs, instead of letting the [(prio, seq)] tie order decide. *)
  mutable chooser : chooser option;
  (* Scheduling quantum in ns (0 = off): event instants round up to the
     next multiple, so events staggered only by sub-quantum serialization
     deltas land on the same instant and become explicit ties. Only the
     model checker sets this; default runs keep exact timing. *)
  mutable quantum : int;
  (* ParDES state; [parts = [||]] and the hub fields above are the whole
     engine when [domains = 1] (the default, sequential mode). *)
  domains : int;
  parts : part array;  (* client partitions 1..domains, at index - 1 *)
  mutable lookahead : int;  (* ns; conservative min cross-node latency *)
  mutable events : int;  (* events executed on the hub / sequentially *)
  mutable drain_seq : int;  (* total order over drained outbox entries *)
}

exception Stalled of string

type _ Effect.t +=
  | Delay : Time.span -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let shuffle_tie_break ~seed : Heap.tie_break =
 fun ~time ~seq -> Rng.hash3 seed time seq

(* The partition the executing domain is currently driving. Only
   consulted when [domains >= 2]; maintained by the pass loops (clients)
   and the hub pass (0). The main domain also holds 0 outside runs, so
   setup-phase scheduling lands on the hub. *)
let cur_key = Domain.DLS.new_key (fun () -> 0)
let cur () = Domain.DLS.get cur_key
let set_cur p = Domain.DLS.set cur_key p

let create ?(trace = Trace.null) ?tie_break ?(domains = 1) () =
  if domains < 1 then invalid_arg "Engine.create: domains must be >= 1";
  set_cur 0;
  { now = Time.zero;
    queue = Heap.create ?tie_break ();
    live = 0;
    names = Hashtbl.create 16;
    next_pid = 0;
    trace;
    chooser = None;
    quantum = 0;
    domains;
    parts =
      (if domains = 1 then [||]
       else
         Array.init domains (fun _ ->
             { p_queue = Heap.create ?tie_break ();
               p_now = Time.zero;
               p_live = 0;
               p_names = Hashtbl.create 16;
               p_next_pid = 0;
               p_events = 0;
               p_outbox = Queue.create () }));
    lookahead = 0;
    events = 0;
    drain_seq = 0 }

let set_chooser t c = t.chooser <- c

let set_quantum t q =
  if q < 0 then invalid_arg "Engine.set_quantum: negative quantum";
  t.quantum <- q

let domains t = t.domains

let set_lookahead t la =
  if la < 0 then invalid_arg "Engine.set_lookahead: negative lookahead";
  t.lookahead <- la

let events t =
  Array.fold_left (fun acc p -> acc + p.p_events) t.events t.parts

(* Event queue and clock of the partition the caller is running on. *)
let local_queue t =
  if t.domains = 1 then t.queue
  else match cur () with 0 -> t.queue | p -> t.parts.(p - 1).p_queue

let local_now t =
  if t.domains = 1 then t.now
  else match cur () with 0 -> t.now | p -> t.parts.(p - 1).p_now

let now t = local_now t
let trace t = t.trace

let schedule_at t at thunk =
  let pnow = local_now t in
  if Time.( < ) at pnow then
    invalid_arg "Engine.schedule_at: instant is in the simulated past";
  let time = Time.to_ns at in
  let time =
    (* Round future instants up to the quantum grid. The current instant
       stays exact so yields and same-instant wake chains still run before
       time advances; rounding up never schedules into the past. *)
    if t.quantum > 1 && Time.( < ) pnow at && time mod t.quantum <> 0 then
      ((time / t.quantum) + 1) * t.quantum
    else time
  in
  Heap.push (local_queue t) ~time thunk

let schedule t ?(delay = 0) thunk =
  let delay = if delay < 0 then 0 else delay in
  schedule_at t (Time.add (local_now t) delay) thunk

(* Deliver a wake for a process homed on partition [home]. Same-partition
   wakes are ordinary local schedules. A hub event waking a parked client
   fiber pushes straight into the client's heap: clients are paused while
   hub events run, and the conservative bound guarantees the hub's clock
   is never behind any executed client event. A client waking a hub fiber
   rides its outbox. Client-to-other-client wakes would be a protocol
   violation (all cross-thread interaction is hub-mediated) and fail
   loudly. *)
let wake_home t home thunk =
  if t.domains = 1 then schedule t thunk
  else begin
    let c = cur () in
    if c = home then schedule t thunk
    else if c = 0 then begin
      let p = t.parts.(home - 1) in
      if Time.( < ) t.now p.p_now then
        failwith
          "Engine: conservative bound violated (hub wake in a client's past)";
      Heap.push p.p_queue ~time:(Time.to_ns t.now) thunk
    end
    else if home = 0 then
      Queue.add
        (Time.to_ns t.parts.(c - 1).p_now, thunk)
        t.parts.(c - 1).p_outbox
    else
      failwith "Engine: cross-partition wake between client partitions"
  end

(* Run [body] under the effect handler that maps Delay/Suspend onto the
   event queue. Continuations are one-shot; Suspend guards against double
   wake so synchronization primitives may broadcast defensively. [pidx]
   is the partition the process lives on (0 in sequential mode);
   continuations never migrate partitions. *)
let exec_process t pidx pid name body =
  let open Effect.Deep in
  let finished () =
    if pidx = 0 then begin
      t.live <- t.live - 1;
      Hashtbl.remove t.names pid
    end
    else begin
      let p = t.parts.(pidx - 1) in
      p.p_live <- p.p_live - 1;
      Hashtbl.remove p.p_names pid
    end
  in
  let handler =
    { retc = (fun () -> finished ());
      exnc =
        (fun exn ->
           finished ();
           if Trace.enabled t.trace then
             Trace.emitf t.trace ~time:t.now ~tag:"process"
               "%s raised %s" name (Printexc.to_string exn);
           raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
           match eff with
           | Delay d ->
             Some
               (fun (k : (a, unit) continuation) ->
                  schedule t ~delay:d (fun () -> continue k ()))
           | Suspend register ->
             Some
               (fun (k : (a, unit) continuation) ->
                  let home = if t.domains = 1 then 0 else cur () in
                  let woken = ref false in
                  let wake v =
                    if not !woken then begin
                      woken := true;
                      wake_home t home (fun () -> continue k v)
                    end
                  in
                  register wake)
           | _ -> None);
    }
  in
  match_with body () handler

let spawn_on t ~part ?(delay = 0) ?(name = "process") body =
  if t.domains = 1 || part = 0 then begin
    let pid = t.next_pid in
    t.next_pid <- pid + 1;
    t.live <- t.live + 1;
    Hashtbl.replace t.names pid name;
    schedule t ~delay (fun () -> exec_process t 0 pid name body)
  end
  else begin
    if part < 0 || part > t.domains then
      invalid_arg "Engine.spawn_on: partition out of range";
    let p = t.parts.(part - 1) in
    let pid = p.p_next_pid in
    p.p_next_pid <- pid + 1;
    p.p_live <- p.p_live + 1;
    Hashtbl.replace p.p_names pid name;
    let delay = if delay < 0 then 0 else delay in
    Heap.push p.p_queue
      ~time:(Time.to_ns (Time.add p.p_now delay))
      (fun () -> exec_process t part pid name body)
  end

let spawn t ?(delay = 0) ?(name = "process") body =
  let part = if t.domains = 1 then 0 else cur () in
  spawn_on t ~part ~delay ~name body

let blocked_names t =
  let of_tbl names =
    Hashtbl.fold (fun pid name acc -> (pid, name) :: acc) names []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map snd
  in
  of_tbl t.names
  @ List.concat_map (fun p -> of_tbl p.p_names) (Array.to_list t.parts)

let step t =
  match t.chooser with
  | None -> (
      match Heap.pop t.queue with
      | None -> false
      | Some (time, thunk) ->
        t.now <- Time.of_ns time;
        t.events <- t.events + 1;
        thunk ();
        true)
  | Some choose -> (
      (* Controlled mode: same-instant ties are a scheduling choice point;
         singletons run directly so the chooser only sees real choices. *)
      match Heap.tie_seqs t.queue with
      | [||] -> false
      | seqs ->
        let time =
          match Heap.peek_time t.queue with Some x -> x | None -> assert false
        in
        let k = if Array.length seqs = 1 then 0 else choose ~time ~seqs in
        let time, thunk = Heap.pop_tie t.queue k in
        t.now <- Time.of_ns time;
        t.events <- t.events + 1;
        thunk ();
        true)

let run_seq t =
  while step t do () done;
  if t.live > 0 then
    raise
      (Stalled
         (Printf.sprintf
            "simulation stalled at t=%dns with %d process(es) blocked: %s"
            (Time.to_ns t.now) t.live
            (String.concat ", " (blocked_names t))))

(* ------------------------------------------------------------------ *)
(* Parallel run: hub/client alternation. *)

(* Drained outbox entries carry explicit huge priorities so that at one
   instant they order after every hub-local event (seq-keyed, small) and
   among themselves in drain order — partition index first, then staging
   order — which is deterministic because the drain is serial. *)
let hub_prio_base = 1 lsl 60

let run_par t =
  if t.chooser <> None then
    invalid_arg "Engine.run: the chooser requires a single-domain engine";
  if t.quantum > 0 then
    invalid_arg "Engine.run: a quantum requires a single-domain engine";
  if Trace.enabled t.trace then
    invalid_arg "Engine.run: tracing requires a single-domain engine";
  if t.lookahead < 1 then
    invalid_arg
      "Engine.run: a parallel run needs a positive lookahead \
       (Engine.set_lookahead)";
  let d = t.domains in
  (* Epoch handshake. The alternation is fine-grained — the epoch count
     is on the order of the event count — so the round-trip cost sits on
     the critical path. Publication therefore goes through atomics (a
     worker spins briefly on [epoch], the main domain on [pending]) and
     the mutex/condvar pair is only the fallback for waits that outlast
     the spin budget. Plain fields ([bound], [active], [errors]) are
     safely published across domains by the atomic they precede: the
     writer updates them before the atomic store, the reader loads the
     atomic first, and the OCaml memory model orders the pair. *)
  let m = Mutex.create () in
  let cv_go = Condition.create () in
  let cv_done = Condition.create () in
  let epoch = Atomic.make 0 in
  let pending = Atomic.make 0 in
  let sleepers = Atomic.make 0 in
  let main_sleeping = Atomic.make false in
  let quit = Atomic.make false in
  let bound = ref 0 in
  let active = Array.make (d + 1) false in
  let errors = Array.make (d + 1) None in
  let spin_budget = 500 in
  (* One client pass: pop and run this partition's events strictly below
     the bound. Runs on the partition's own domain. *)
  let run_pass pidx b =
    set_cur pidx;
    let p = t.parts.(pidx - 1) in
    let continue_ = ref true in
    while !continue_ do
      match Heap.peek_time p.p_queue with
      | Some time when time < b -> (
          match Heap.pop p.p_queue with
          | Some (time, thunk) ->
            p.p_now <- Time.of_ns time;
            p.p_events <- p.p_events + 1;
            thunk ()
          | None -> assert false)
      | _ -> continue_ := false
    done
  in
  let worker pidx () =
    let last = ref 0 in
    let stop = ref false in
    while not !stop do
      let spins = ref 0 in
      while
        Atomic.get epoch = !last
        && (not (Atomic.get quit))
        && !spins < spin_budget
      do
        incr spins;
        Domain.cpu_relax ()
      done;
      if Atomic.get epoch = !last && not (Atomic.get quit) then begin
        (* Slow path: register as a sleeper and recheck under the lock,
           so the main domain's post-increment broadcast cannot slip
           between the check and the wait. *)
        Mutex.lock m;
        Atomic.incr sleepers;
        while Atomic.get epoch = !last && not (Atomic.get quit) do
          Condition.wait cv_go m
        done;
        Atomic.decr sleepers;
        Mutex.unlock m
      end;
      if Atomic.get quit then stop := true
      else begin
        (* A worker can only skip epochs in which it was inactive: when
           it is counted in [pending], the main domain's barrier wait
           keeps the epoch open until this pass completes. *)
        last := Atomic.get epoch;
        if active.(pidx) then begin
          let b = !bound in
          (try run_pass pidx b with e -> errors.(pidx) <- Some e);
          if Atomic.fetch_and_add pending (-1) = 1 then
            if Atomic.get main_sleeping then begin
              Mutex.lock m;
              Condition.signal cv_done;
              Mutex.unlock m
            end
        end
      end
    done
  in
  let doms = Array.init (d - 1) (fun i -> Domain.spawn (worker (i + 2))) in
  let finish_workers () =
    Atomic.set quit true;
    Mutex.lock m;
    Condition.broadcast cv_go;
    Mutex.unlock m;
    Array.iter Domain.join doms;
    set_cur 0
  in
  let min_client () =
    Array.fold_left
      (fun acc p ->
         match Heap.peek_time p.p_queue with
         | Some x when x < acc -> x
         | _ -> acc)
      max_int t.parts
  in
  (* The hub pass runs every hub event strictly below the earliest
     pending client event, recomputing that horizon as it goes: a hub
     event may push a wake into a client heap (lowering the horizon), at
     which point the hub stops and the tie goes to the client. Serial, on
     the main domain, with every client paused — so hub events may touch
     client-owned simulated state. *)
  let hub_pass () =
    set_cur 0;
    let continue_ = ref true in
    while !continue_ do
      match Heap.peek_time t.queue with
      | Some time when time < min_client () -> (
          match Heap.pop t.queue with
          | Some (time, thunk) ->
            t.now <- Time.of_ns time;
            t.events <- t.events + 1;
            thunk ()
          | None -> assert false)
      | _ -> continue_ := false
    done
  in
  Fun.protect ~finally:finish_workers (fun () ->
      let running = ref true in
      while !running do
        let next_h =
          match Heap.peek_time t.queue with Some x -> x | None -> max_int
        in
        let t_min = min_client () in
        if next_h = max_int && t_min = max_int then running := false
        else begin
          (* Clients may run events strictly below [b]: up to and
             including the next hub instant (the +1 hands exact hub/client
             ties to the client, whose event cannot affect the hub sooner
             than the lookahead), and never beyond the earliest client
             horizon plus lookahead (CMB: no client's output can reach
             another partition earlier than that). *)
          let b1 = if next_h = max_int then max_int else next_h + 1 in
          let b2 = if t_min = max_int then max_int else t_min + t.lookahead in
          let b = Stdlib.min b1 b2 in
          let nact = ref 0 in
          for pidx = 1 to d do
            let act =
              match Heap.peek_time t.parts.(pidx - 1).p_queue with
              | Some x -> x < b
              | None -> false
            in
            active.(pidx) <- act;
            if act && pidx >= 2 then incr nact
          done;
          if !nact > 0 then begin
            (* [pending]/[bound]/[active] precede the epoch bump that
               publishes them; spinning workers need no wakeup, blocked
               ones get the broadcast. *)
            Atomic.set pending !nact;
            bound := b;
            Atomic.incr epoch;
            if Atomic.get sleepers > 0 then begin
              Mutex.lock m;
              Condition.broadcast cv_go;
              Mutex.unlock m
            end
          end;
          if active.(1) then
            (try run_pass 1 b with e -> errors.(1) <- Some e);
          if !nact > 0 then begin
            let spins = ref 0 in
            while Atomic.get pending > 0 && !spins < spin_budget do
              incr spins;
              Domain.cpu_relax ()
            done;
            if Atomic.get pending > 0 then begin
              Mutex.lock m;
              Atomic.set main_sleeping true;
              while Atomic.get pending > 0 do
                Condition.wait cv_done m
              done;
              Atomic.set main_sleeping false;
              Mutex.unlock m
            end
          end;
          for pidx = 1 to d do
            match errors.(pidx) with Some e -> raise e | None -> ()
          done;
          (* Barrier passed: drain the outboxes into the hub heap, in
             partition order then staging order — a serial, deterministic
             merge. *)
          for pidx = 1 to d do
            let p = t.parts.(pidx - 1) in
            while not (Queue.is_empty p.p_outbox) do
              let time, thunk = Queue.pop p.p_outbox in
              Heap.push t.queue ~prio:(hub_prio_base + t.drain_seq) ~time
                thunk;
              t.drain_seq <- t.drain_seq + 1
            done
          done;
          hub_pass ()
        end
      done;
      (* Normalize every clock to the global maximum so [now] (elapsed
         time) is well-defined after the run, whichever partition asks. *)
      let gmax =
        Array.fold_left (fun acc p -> Time.max acc p.p_now) t.now t.parts
      in
      t.now <- gmax;
      Array.iter (fun p -> p.p_now <- gmax) t.parts;
      let total_live =
        Array.fold_left (fun acc p -> acc + p.p_live) t.live t.parts
      in
      if total_live > 0 then
        raise
          (Stalled
             (Printf.sprintf
                "simulation stalled at t=%dns with %d process(es) blocked: %s"
                (Time.to_ns t.now) total_live
                (String.concat ", " (blocked_names t)))))

let run t = if t.domains = 1 then run_seq t else run_par t

let run_until t limit =
  if t.domains > 1 then
    invalid_arg "Engine.run_until: requires a single-domain engine";
  let continue_ = ref true in
  while !continue_ do
    match Heap.peek_time t.queue with
    | Some next when Time.( <= ) (Time.of_ns next) limit ->
      ignore (step t : bool)
    | _ -> continue_ := false
  done;
  if Time.( < ) t.now limit then t.now <- limit

let delay d = if d > 0 then Effect.perform (Delay d)
let yield () = Effect.perform (Delay 0)

let suspend ~register =
  Effect.perform (Suspend (fun wake -> register ~wake))

let suspendv ~register =
  Effect.perform (Suspend (fun wake -> register ~wake))

(* ------------------------------------------------------------------ *)
(* Hub regions: the bridge protocol code uses to touch hub-owned state. *)

let hub_run t f =
  if t.domains = 1 then f ()
  else begin
    let home = cur () in
    if home = 0 then f ()
    else begin
      let p = t.parts.(home - 1) in
      match
        suspendv ~register:(fun ~wake ->
            let entered = Time.to_ns p.p_now in
            Queue.add
              ( entered,
                fun () ->
                  (* Hub side: run the region body as a fresh hub fiber
                     (it performs Delay/Suspend), then wake the parked
                     client fiber with its result. *)
                  let pid = t.next_pid in
                  t.next_pid <- pid + 1;
                  t.live <- t.live + 1;
                  Hashtbl.replace t.names pid "hub-region";
                  exec_process t 0 pid "hub-region" (fun () ->
                      let r =
                        match f () with v -> Ok v | exception e -> Error e
                      in
                      wake r) )
              p.p_outbox)
      with
      | Ok v -> v
      | Error e -> raise e
    end
  end

let remote_post t f =
  if t.domains = 1 then f ()
  else
    match cur () with
    | 0 -> f ()
    | c -> Queue.add (Time.to_ns t.parts.(c - 1).p_now, f) t.parts.(c - 1).p_outbox
