type chooser = time:int -> seqs:int array -> int

type t = {
  mutable now : Time.t;
  queue : (unit -> unit) Heap.t;
  mutable live : int;  (* processes spawned and not yet finished *)
  (* Names of live processes, keyed by spawn id, so a stall can say who is
     blocked rather than just how many. *)
  names : (int, string) Hashtbl.t;
  mutable next_pid : int;
  trace : Trace.t;
  (* Controlled scheduler (model-checker support): when installed, every
     pop with two or more same-instant candidates asks the chooser which
     one runs, instead of letting the [(prio, seq)] tie order decide. *)
  mutable chooser : chooser option;
  (* Scheduling quantum in ns (0 = off): event instants round up to the
     next multiple, so events staggered only by sub-quantum serialization
     deltas land on the same instant and become explicit ties. Only the
     model checker sets this; default runs keep exact timing. *)
  mutable quantum : int;
}

exception Stalled of string

type _ Effect.t +=
  | Delay : Time.span -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let shuffle_tie_break ~seed : Heap.tie_break =
 fun ~time ~seq -> Rng.hash3 seed time seq

let create ?(trace = Trace.null) ?tie_break () =
  { now = Time.zero;
    queue = Heap.create ?tie_break ();
    live = 0;
    names = Hashtbl.create 16;
    next_pid = 0;
    trace;
    chooser = None;
    quantum = 0 }

let set_chooser t c = t.chooser <- c

let set_quantum t q =
  if q < 0 then invalid_arg "Engine.set_quantum: negative quantum";
  t.quantum <- q

let now t = t.now
let trace t = t.trace

let schedule_at t at thunk =
  if Time.( < ) at t.now then
    invalid_arg "Engine.schedule_at: instant is in the simulated past";
  let time = Time.to_ns at in
  let time =
    (* Round future instants up to the quantum grid. The current instant
       stays exact so yields and same-instant wake chains still run before
       time advances; rounding up never schedules into the past. *)
    if t.quantum > 1 && Time.( < ) t.now at && time mod t.quantum <> 0 then
      ((time / t.quantum) + 1) * t.quantum
    else time
  in
  Heap.push t.queue ~time thunk

let schedule t ?(delay = 0) thunk =
  let delay = if delay < 0 then 0 else delay in
  schedule_at t (Time.add t.now delay) thunk

(* Run [body] under the effect handler that maps Delay/Suspend onto the
   event queue. Continuations are one-shot; Suspend guards against double
   wake so synchronization primitives may broadcast defensively. *)
let exec_process t pid name body =
  let open Effect.Deep in
  let finished () =
    t.live <- t.live - 1;
    Hashtbl.remove t.names pid
  in
  let handler =
    { retc = (fun () -> finished ());
      exnc =
        (fun exn ->
           finished ();
           if Trace.enabled t.trace then
             Trace.emitf t.trace ~time:t.now ~tag:"process"
               "%s raised %s" name (Printexc.to_string exn);
           raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
           match eff with
           | Delay d ->
             Some
               (fun (k : (a, unit) continuation) ->
                  schedule t ~delay:d (fun () -> continue k ()))
           | Suspend register ->
             Some
               (fun (k : (a, unit) continuation) ->
                  let woken = ref false in
                  let wake v =
                    if not !woken then begin
                      woken := true;
                      schedule t (fun () -> continue k v)
                    end
                  in
                  register wake)
           | _ -> None);
    }
  in
  match_with body () handler

let spawn t ?(delay = 0) ?(name = "process") body =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  t.live <- t.live + 1;
  Hashtbl.replace t.names pid name;
  schedule t ~delay (fun () -> exec_process t pid name body)

let blocked_names t =
  Hashtbl.fold (fun pid name acc -> (pid, name) :: acc) t.names []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd

let step t =
  match t.chooser with
  | None -> (
      match Heap.pop t.queue with
      | None -> false
      | Some (time, thunk) ->
        t.now <- Time.of_ns time;
        thunk ();
        true)
  | Some choose -> (
      (* Controlled mode: same-instant ties are a scheduling choice point;
         singletons run directly so the chooser only sees real choices. *)
      match Heap.tie_seqs t.queue with
      | [||] -> false
      | seqs ->
        let time =
          match Heap.peek_time t.queue with Some x -> x | None -> assert false
        in
        let k = if Array.length seqs = 1 then 0 else choose ~time ~seqs in
        let time, thunk = Heap.pop_tie t.queue k in
        t.now <- Time.of_ns time;
        thunk ();
        true)

let run t =
  while step t do () done;
  if t.live > 0 then
    raise
      (Stalled
         (Printf.sprintf
            "simulation stalled at t=%dns with %d process(es) blocked: %s"
            (Time.to_ns t.now) t.live
            (String.concat ", " (blocked_names t))))

let run_until t limit =
  let continue_ = ref true in
  while !continue_ do
    match Heap.peek_time t.queue with
    | Some next when Time.( <= ) (Time.of_ns next) limit ->
      ignore (step t : bool)
    | _ -> continue_ := false
  done;
  if Time.( < ) t.now limit then t.now <- limit

let delay d = if d > 0 then Effect.perform (Delay d)
let yield () = Effect.perform (Delay 0)

let suspend ~register =
  Effect.perform (Suspend (fun wake -> register ~wake))

let suspendv ~register =
  Effect.perform (Suspend (fun wake -> register ~wake))
