(* Unboxed parallel-arrays layout: the key fields live in three plain int
   arrays and the payloads in a fourth array, so a push allocates nothing
   (the old layout boxed every entry in a record inside an option) and a
   sift step compares immediate ints instead of pattern-matching two
   [Some] cells. The payload array is created lazily from the first pushed
   payload so it gets the right runtime representation (e.g. a flat float
   array when ['a = float]). *)

type tie_break = time:int -> seq:int -> int

type 'a t = {
  mutable times : int array;
  mutable prios : int array;
  mutable seqs : int array;
  (* [Array.length payloads = 0] until the first push; slots at indices
     >= [size] may retain stale payloads until overwritten (see .mli). *)
  mutable payloads : 'a array;
  mutable size : int;
  mutable next_seq : int;
  mutable tie_break : tie_break option;
}

let create ?(initial_capacity = 256) ?tie_break () =
  let cap = Stdlib.max 1 initial_capacity in
  { times = Array.make cap 0;
    prios = Array.make cap 0;
    seqs = Array.make cap 0;
    payloads = [||];
    size = 0;
    next_seq = 0;
    tie_break }

let set_tie_break t tb = t.tie_break <- tb

let is_empty t = t.size = 0
let length t = t.size

(* Among equal times, [prio] decides; [seq] breaks prio collisions so the
   order is total and deterministic. With no tie_break installed
   [prio = seq], i.e. FIFO among equals. Keys are unique (seq is), so the
   drain order is independent of the heap's internal shape — the unboxed
   rewrite pops in exactly the order the boxed implementation did. *)
let key_lt ~time ~prio ~seq t j =
  let tj = Array.unsafe_get t.times j in
  time < tj
  || (time = tj
      && (let pj = Array.unsafe_get t.prios j in
          prio < pj || (prio = pj && seq < Array.unsafe_get t.seqs j)))

let grow t =
  let cap = Array.length t.times in
  let cap' = 2 * cap in
  let grow_int a =
    let a' = Array.make cap' 0 in
    Array.blit a 0 a' 0 t.size;
    a'
  in
  t.times <- grow_int t.times;
  t.prios <- grow_int t.prios;
  t.seqs <- grow_int t.seqs;
  (* grow is only reached with size = cap >= 1, so payloads is non-empty
     and payloads.(0) is a valid seed element. *)
  let p' = Array.make cap' t.payloads.(0) in
  Array.blit t.payloads 0 p' 0 t.size;
  t.payloads <- p'

let set_slot t i ~time ~prio ~seq payload =
  Array.unsafe_set t.times i time;
  Array.unsafe_set t.prios i prio;
  Array.unsafe_set t.seqs i seq;
  Array.unsafe_set t.payloads i payload

let move_slot t ~src ~dst =
  Array.unsafe_set t.times dst (Array.unsafe_get t.times src);
  Array.unsafe_set t.prios dst (Array.unsafe_get t.prios src);
  Array.unsafe_set t.seqs dst (Array.unsafe_get t.seqs src);
  Array.unsafe_set t.payloads dst (Array.unsafe_get t.payloads src)

let push t ?prio ~time payload =
  if t.size = Array.length t.times then grow t;
  if Array.length t.payloads = 0 then
    t.payloads <- Array.make (Array.length t.times) payload;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let prio =
    match prio with
    | Some p -> p
    | None ->
      (match t.tie_break with None -> seq | Some f -> f ~time ~seq)
  in
  (* Hole-based sift-up: parents slide down until the new key's slot is
     found; the new element is written exactly once. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let stop = ref false in
  while (not !stop) && !i > 0 do
    let parent = (!i - 1) / 2 in
    if key_lt ~time ~prio ~seq t parent then begin
      move_slot t ~src:parent ~dst:!i;
      i := parent
    end
    else stop := true
  done;
  set_slot t !i ~time ~prio ~seq payload

let pop t =
  if t.size = 0 then None
  else begin
    let time0 = t.times.(0) and payload0 = t.payloads.(0) in
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      (* Hole-based sift-down of the displaced last element. *)
      let time = t.times.(n)
      and prio = t.prios.(n)
      and seq = t.seqs.(n) in
      let payload = t.payloads.(n) in
      let i = ref 0 in
      let stop = ref false in
      while not !stop do
        let l = (2 * !i) + 1 in
        if l >= n then stop := true
        else begin
          let r = l + 1 in
          let c =
            if
              r < n
              && key_lt
                   ~time:(Array.unsafe_get t.times r)
                   ~prio:(Array.unsafe_get t.prios r)
                   ~seq:(Array.unsafe_get t.seqs r)
                   t l
            then r
            else l
          in
          if key_lt ~time ~prio ~seq t c then stop := true
          else begin
            move_slot t ~src:c ~dst:!i;
            i := c
          end
        end
      done;
      set_slot t !i ~time ~prio ~seq payload
    end;
    Some (time0, payload0)
  end

let peek_time t = if t.size = 0 then None else Some t.times.(0)

(* ------------------------------------------------------------------ *)
(* Same-instant tie introspection (model-checker support).

   The controlled scheduler needs to see every entry sharing the minimal
   time and pop a chosen one, bypassing the [(prio, seq)] order. These
   scans are O(n) and only run in checking mode, where heaps hold a
   handful of events. Entries are identified by [seq]: with a fixed
   execution prefix, re-running assigns identical seqs, so a recorded
   choice replays exactly. *)

let tie_slots t =
  (* Heap slots whose time equals the minimum, sorted by seq so candidate
     indices are stable and independent of the heap's internal shape. *)
  if t.size = 0 then []
  else begin
    let t0 = t.times.(0) in
    let acc = ref [] in
    for i = t.size - 1 downto 0 do
      if t.times.(i) = t0 then acc := i :: !acc
    done;
    List.sort (fun a b -> Int.compare t.seqs.(a) t.seqs.(b)) !acc
  end

let tie_seqs t = Array.of_list (List.map (fun i -> t.seqs.(i)) (tie_slots t))

let swap_slots t i j =
  let swap (a : int array) =
    let v = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- v
  in
  swap t.times;
  swap t.prios;
  swap t.seqs;
  let p = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- p

let slot_lt t i j =
  key_lt ~time:t.times.(i) ~prio:t.prios.(i) ~seq:t.seqs.(i) t j

let rec sift_up_at t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if slot_lt t i parent then begin
      swap_slots t i parent;
      sift_up_at t parent
    end
  end

let rec sift_down_at t i =
  let l = (2 * i) + 1 in
  if l < t.size then begin
    let r = l + 1 in
    let c = if r < t.size && slot_lt t r l then r else l in
    if slot_lt t c i then begin
      swap_slots t i c;
      sift_down_at t c
    end
  end

let pop_tie t k =
  let slots = tie_slots t in
  match List.nth_opt slots k with
  | None -> invalid_arg "Heap.pop_tie: tie index out of range"
  | Some p ->
    let time = t.times.(p) and payload = t.payloads.(p) in
    let n = t.size - 1 in
    t.size <- n;
    if p < n then begin
      move_slot t ~src:n ~dst:p;
      (* The moved key can violate the heap property in either direction;
         at most one of the two restorations moves it. *)
      sift_down_at t p;
      sift_up_at t p
    end;
    (time, payload)

let clear t =
  t.size <- 0;
  (* Drop the payload array so no popped payloads are retained; it is
     re-created on the next push. *)
  t.payloads <- [||]
