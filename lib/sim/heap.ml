type 'a entry = { time : int; prio : int; seq : int; payload : 'a }

type tie_break = time:int -> seq:int -> int

type 'a t = {
  mutable arr : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
  mutable tie_break : tie_break option;
}

let create ?(initial_capacity = 256) ?tie_break () =
  { arr = Array.make (Stdlib.max 1 initial_capacity) None;
    size = 0;
    next_seq = 0;
    tie_break }

let set_tie_break t tb = t.tie_break <- tb

let is_empty t = t.size = 0
let length t = t.size

(* Among equal times, [prio] decides; [seq] breaks prio collisions so the
   order is total and deterministic. With no tie_break installed
   [prio = seq], i.e. FIFO among equals. *)
let entry_lt a b =
  a.time < b.time
  || (a.time = b.time
      && (a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)))

let grow t =
  let arr = Array.make (2 * Array.length t.arr) None in
  Array.blit t.arr 0 arr 0 t.size;
  t.arr <- arr

let get t i =
  match t.arr.(i) with
  | Some e -> e
  | None -> assert false

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let ei = get t i and ep = get t parent in
    if entry_lt ei ep then begin
      t.arr.(i) <- Some ep;
      t.arr.(parent) <- Some ei;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_lt (get t l) (get t !smallest) then smallest := l;
  if r < t.size && entry_lt (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    let ei = get t i and es = get t !smallest in
    t.arr.(i) <- Some es;
    t.arr.(!smallest) <- Some ei;
    sift_down t !smallest
  end

let push t ~time payload =
  if t.size = Array.length t.arr then grow t;
  let seq = t.next_seq in
  let prio =
    match t.tie_break with None -> seq | Some f -> f ~time ~seq
  in
  let e = { time; prio; seq; payload } in
  t.next_seq <- t.next_seq + 1;
  t.arr.(t.size) <- Some e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.size <- t.size - 1;
    t.arr.(0) <- t.arr.(t.size);
    t.arr.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some (get t 0).time

let clear t =
  Array.fill t.arr 0 t.size None;
  t.size <- 0
