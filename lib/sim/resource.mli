(** A serially-reusable facility (a link, a NIC port, a server's service
    loop) modeled by next-free-time bookkeeping.

    Jobs occupy the resource back to back: a job arriving at [now] starts at
    [max now free_at] and completes [duration] later. This captures queueing
    delay and contention without dedicating a process to the facility, at
    the cost of FCFS-only service order (which is what the modeled hardware
    does anyway). *)

type t

val create : ?name:string -> unit -> t

val name : t -> string

val reserve : t -> now:Time.t -> duration:Time.span -> Time.t
(** Book the next slot; returns the completion instant. [now] must be
    monotonically consistent with simulation time (callers reserve at their
    current instant). *)

val set_observer : (t -> unit) option -> unit
(** Install ([Some]) or clear ([None]) a module-wide reservation observer,
    called at the start of every {!reserve} with the resource being
    reserved. RegCCheck uses this to record which facilities a scheduling
    interval queues on: reservation order among same-instant events decides
    completion times, so two intervals reserving the same resource are
    dependent for partial-order reduction. Resources are identified by
    {!name}, which {!Samhita} assigns uniquely per system and
    deterministically across re-executions. Set around a checked run and
    clear afterwards. *)

val free_at : t -> Time.t
(** Instant at which the resource next becomes idle. *)

val jobs : t -> int
(** Number of jobs served so far. *)

val busy_time : t -> Time.span
(** Total time spent serving jobs. *)

val utilization : t -> horizon:Time.t -> float
(** [busy_time / horizon], the classic utilization estimate. *)

val reset : t -> unit
