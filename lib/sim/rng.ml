type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = int64 t }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then draw () else v
  in
  draw ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let hash3 a b c =
  let z = Int64.add (Int64.of_int a) golden_gamma in
  let z = mix64 (Int64.logxor z (Int64.mul (Int64.of_int b) golden_gamma)) in
  let z = mix64 (Int64.add z (Int64.mul (Int64.of_int c) golden_gamma)) in
  Int64.to_int (Int64.shift_right_logical z 2)

let exponential t ~mean =
  let u = float t 1.0 in
  (* Clamp away from 0 so log is finite. *)
  let u = if u < 1e-300 then 1e-300 else u in
  -.mean *. log u
