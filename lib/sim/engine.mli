(** Discrete-event simulation engine with effects-based processes.

    The engine owns a clock and an event queue of thunks. A {e process} is
    an ordinary OCaml function run under an effect handler; it interacts
    with simulated time through {!delay}, {!suspend} and {!yield}, which
    must only be called from inside a process body. Events scheduled for the
    same instant run in insertion order, so a run is fully deterministic. *)

type t

exception Stalled of string
(** Raised by {!run} when processes remain blocked but no event can ever
    wake them (a deadlock in the simulated system). The message names every
    blocked process (their spawn [?name]s) in spawn order. *)

val create :
  ?trace:Trace.t -> ?tie_break:Heap.tie_break -> ?domains:int -> unit -> t
(** [tie_break] installs a same-instant ordering hook on the event queue
    (see {!Heap.tie_break}); omitted, events at one instant run in
    insertion order.

    [domains] (default 1) selects ParDES parallel execution: with
    [domains = n >= 2] the engine holds one {e hub} partition (index 0)
    plus [n] {e client} partitions (1..n), each with its own event heap
    and clock, and {!run} executes client passes concurrently on [n] OCaml
    domains (the caller's plus [n - 1] spawned ones), alternating with
    serial hub passes. [domains = 1] is the classic sequential engine —
    same code path, byte-identical behavior. *)

val domains : t -> int
(** The [?domains] the engine was created with (1 = sequential). *)

val set_lookahead : t -> Time.span -> unit
(** Conservative lookahead for parallel runs: a lower bound (in ns) on
    the latency of any cross-partition interaction — for this simulator,
    the fabric's minimum cross-node one-way latency
    ({!Fabric.Network.lookahead}). Must be positive before a parallel
    {!run}; ignored by sequential engines. *)

val events : t -> int
(** Total number of events executed so far, summed over all partitions.
    The macro benchmark divides this by wall-clock time for events/sec. *)

val shuffle_tie_break : seed:int -> Heap.tie_break
(** The schedule fuzzer's seeded shuffler: a pure hash of
    [(seed, time, seq)], so one seed yields one — replayable — permutation
    of every same-instant event group. *)

type chooser = time:int -> seqs:int array -> int
(** A controlled-scheduler decision: given the sequence numbers of every
    event enabled at the current instant (see {!Heap.tie_seqs}), return
    the index of the one to run. Called only when two or more events tie,
    so each call is a genuine scheduling choice point. *)

val set_chooser : t -> chooser option -> unit
(** Install ([Some]) or remove ([None]) a controlled scheduler. While one
    is installed {!step}/{!run} ignore the tie-break priority order and
    route every same-instant choice through the chooser — RegCCheck uses
    this to enumerate all schedules of a bounded geometry. The chooser may
    raise to abandon the run (the exception propagates out of {!run}). *)

val set_quantum : t -> int -> unit
(** Set the scheduling quantum in ns (0 — the default — disables it).
    With a quantum [q], every scheduled instant rounds up to the next
    multiple of [q], so events separated only by sub-quantum serialization
    deltas (port FCFS staggering, a few tens of ns) land on the same
    instant and become same-instant ties. RegCCheck sets this so that the
    orders it explores include the contended ones — who reaches the
    manager first — rather than only exact-tie accidents. Default runs
    never set it, keeping exact timing. Raises [Invalid_argument] on a
    negative quantum. *)

val blocked_names : t -> string list
(** Names of live (spawned, unfinished) processes, in spawn order. After
    {!run} raised {!Stalled} these are exactly the blocked processes. *)

val now : t -> Time.t
(** Current simulated time. Callable from anywhere. *)

val trace : t -> Trace.t

val schedule : t -> ?delay:Time.span -> (unit -> unit) -> unit
(** Enqueue a plain callback to run at [now + delay] (default: now). The
    callback runs outside any process context; use {!spawn} if it needs to
    delay or suspend. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** Enqueue a callback at an absolute instant, which must not be in the
    simulated past. *)

val spawn : t -> ?delay:Time.span -> ?name:string -> (unit -> unit) -> unit
(** Start a new process at [now + delay]. The engine counts live processes
    so {!run} can detect deadlock. On a parallel engine the process lands
    on the calling partition (the hub during setup). *)

val spawn_on :
  t -> part:int -> ?delay:Time.span -> ?name:string -> (unit -> unit) -> unit
(** Like {!spawn} but places the process on partition [part] (0 = hub,
    1..domains = clients). Call during setup, before {!run}. On a
    sequential engine [part] is ignored. A process never migrates: its
    continuations always resume on its home partition. *)

val run : t -> unit
(** Drain the event queue. Raises {!Stalled} if processes spawned via
    {!spawn} are still suspended when the queue empties. Exceptions raised
    by process bodies propagate. *)

val run_until : t -> Time.t -> unit
(** Process events up to and including instant [t]; the clock finishes at
    exactly [t] even if the queue empties earlier. *)

(** {2 Operations available inside a process} *)

val delay : Time.span -> unit
(** Advance this process's time by the given span, yielding to other
    events. *)

val yield : unit -> unit
(** Re-enqueue this process at the current instant, letting events already
    queued for this instant run first. *)

val suspend : register:(wake:(unit -> unit) -> unit) -> unit
(** Park this process. [register] is called immediately with a [wake]
    callback; invoking [wake] (once) re-enqueues the process at the waking
    instant. Subsequent calls to [wake] are ignored. *)

val suspendv : register:(wake:('a -> unit) -> unit) -> 'a
(** Like {!suspend} but the waker passes a value through to the suspended
    process. *)

val hub_run : t -> (unit -> 'a) -> 'a
(** Run [f] in hub context and return its result. Sequentially (or when
    already on the hub) this is exactly [f ()]. On a client partition the
    calling fiber parks, a migration message carries the region to the
    hub (merged deterministically at the next pass barrier, ordered after
    all same-instant hub-local events), the hub runs [f] as a fresh fiber
    — it may delay, suspend, and touch hub-owned simulated state — and
    the result (or exception, re-raised here) wakes the caller at the
    hub's clock. Because every region body starts with a cross-node
    transfer (>= lookahead), the resume can never land in the client's
    executed past. *)

val remote_post : t -> (unit -> unit) -> unit
(** Fire-and-forget variant of {!hub_run} for {e effect-free} closures:
    sequentially (or on the hub) runs [f] inline now; from a client
    partition, stages [f] to run as a plain hub event at this partition's
    current instant (no fiber, so [f] must not delay or suspend). Used
    for pure hub-state registrations whose turnaround would otherwise be
    zero (e.g. condition-variable wait registration). *)
