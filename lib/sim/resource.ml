type t = {
  name : string;
  mutable free_at : Time.t;
  mutable busy : Time.span;
  mutable jobs : int;
}

let create ?(name = "resource") () =
  { name; free_at = Time.zero; busy = 0; jobs = 0 }

let name t = t.name

(* Reservation observer (model-checker support): RegCCheck records which
   resources each scheduling interval queues on, because reservation order
   among same-instant events decides completion times — a dependency its
   partial-order reduction must see. One module-level slot, set around a
   checked run and cleared after; absent, reserve pays one ref read. *)
let observer : (t -> unit) option ref = ref None

let set_observer f = observer := f

let reserve t ~now ~duration =
  (match !observer with Some f -> f t | None -> ());
  let duration = if duration < 0 then 0 else duration in
  let start = Time.max now t.free_at in
  let finish = Time.add start duration in
  t.free_at <- finish;
  t.busy <- t.busy + duration;
  t.jobs <- t.jobs + 1;
  finish

let free_at t = t.free_at
let jobs t = t.jobs
let busy_time t = t.busy

let utilization t ~horizon =
  let h = Time.to_ns horizon in
  if h <= 0 then 0.0 else float_of_int t.busy /. float_of_int h

let reset t =
  t.free_at <- Time.zero;
  t.busy <- 0;
  t.jobs <- 0
