(** Array-backed binary min-heap used as the simulator's event queue.

    Entries are ordered by [(time, prio, seq)]. The sequence number is
    assigned on insertion; by default [prio = seq], making the pop order of
    simultaneous events deterministic FIFO among equals. Installing a
    {!tie_break} hook replaces that default: the hook maps [(time, seq)] to
    a priority, permuting same-instant order (the schedule fuzzer's seeded
    shuffler) while [seq] still breaks priority collisions, so any hook
    yields a total, deterministic order.

    Storage is an unboxed parallel-arrays layout — three int arrays for
    the [(time, prio, seq)] keys plus one payload array — so {!push}
    allocates nothing and sift steps compare immediate ints. Because every
    key is unique ([seq] is), the drain order is a pure function of the
    pushed keys, independent of the heap's internal shape. One
    consequence of the layout: payload slots at indices >= [length] may
    retain a previously pushed payload (keeping it reachable) until the
    slot is overwritten by a later push; {!clear} drops the whole payload
    array. Intended payloads are small scheduler closures, for which this
    retention is negligible. *)

type 'a t

type tie_break = time:int -> seq:int -> int
(** Priority of an entry pushed at [time] with insertion number [seq].
    Must be a pure function so replaying a run reproduces it. *)

val create : ?initial_capacity:int -> ?tie_break:tie_break -> unit -> 'a t

val set_tie_break : 'a t -> tie_break option -> unit
(** Install ([Some]) or remove ([None]) the tie-break hook. Affects only
    subsequently pushed entries; callers switch modes between runs, not
    mid-drain. *)

val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> ?prio:int -> time:int -> 'a -> unit
(** Insert a payload keyed by [time]. O(log n). [?prio] overrides the
    entry's priority outright (bypassing both the [prio = seq] default and
    any {!tie_break} hook); the parallel engine uses huge explicit
    priorities to order cross-partition merges after all same-instant
    local events. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the entry with the smallest [(time, prio, seq)] key,
    as [(time, payload)]. O(log n). *)

val peek_time : 'a t -> int option
(** Time key of the next entry without removing it. *)

(** {2 Same-instant tie introspection (model-checker support)}

    RegCCheck drives the simulator through every same-instant scheduling
    choice: instead of letting [(prio, seq)] decide among simultaneous
    events, it inspects the tie group and pops a chosen member. Both
    operations are O(n) scans and are only used in checking mode, where
    event queues are small. *)

val tie_seqs : 'a t -> int array
(** Sequence numbers of every entry sharing the minimal time, in ascending
    [seq] (i.e. insertion) order — the candidate set of one scheduling
    choice point. Empty iff the heap is empty. With a deterministic
    execution prefix, re-running yields the same seqs, so an index into
    this array identifies the same event across re-executions. *)

val pop_tie : 'a t -> int -> int * 'a
(** [pop_tie t k] removes and returns the entry at index [k] of
    {!tie_seqs}' order (the [k]-th oldest entry of the minimal-time tie
    group). Raises [Invalid_argument] if [k] is out of range. *)

val clear : 'a t -> unit
