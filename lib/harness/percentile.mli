(** Streaming quantile estimation over non-negative integers (latencies
    in nanoseconds), HdrHistogram-style.

    Values below 64 are counted exactly; above, each power-of-two octave
    is split into 32 linear subbuckets, so memory is a fixed small array
    however many observations stream in, and a reported quantile [est]
    relates to the exact nearest-rank sorted-array quantile [exact] by

    {v 0 <= est - exact <= exact / 32 v}

    (the estimator reports a bucket's inclusive upper edge, clamped into
    the observed [\[min, max\]] range — it never undershoots, and
    overshoots by at most the bucket width, 1/32 relative). *)

type t

val create : unit -> t

val add : t -> int -> unit
(** O(1). Raises [Invalid_argument] on a negative value. *)

val count : t -> int

val percentile : t -> float -> int
(** [percentile t q] with [q] in [\[0, 1\]]: the estimated nearest-rank
    quantile ([q = 0.5] → p50, [0.999] → p999). Raises
    [Invalid_argument] when empty or [q] is out of range. A singleton
    stream reports its one value for every [q]. *)

val min_value : t -> int
(** Exact. Raises [Invalid_argument] when empty. *)

val max_value : t -> int
(** Exact. Raises [Invalid_argument] when empty. *)

val mean : t -> float
(** Exact (within float summation). Raises [Invalid_argument] when
    empty. *)
