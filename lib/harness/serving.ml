type backend_kind = Smh | Pth

let backend_name = function Smh -> "smh" | Pth -> "pth"

type point = {
  fraction : float;
  rate_rps : float;
  served : int;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  mean_ns : float;
  max_ns : int;
  achieved_rps : float;
  wall_ns : int;
  lost_writes : int;
}

type t = {
  backend : string;
  threads : int;
  replication : int;
  manager_shards : int;
  domains : int;
  crash : bool;
  kv : Workload.Kv.params;
  capacity_rps : float;
  points : point list;
}

let default_fractions = [ 0.25; 0.5; 0.75; 0.9; 1.5 ]

(* Both sides of a replication on/off comparison run with two memory
   servers, so the comparison isolates the mirroring cost itself (the
   bench replication probe does the same). *)
let smh_config ~replication ~manager_shards ~domains ~crash ~span_ns =
  let base =
    { Samhita.Config.default with
      Samhita.Config.memory_servers = 2;
      replication;
      manager_shards;
      domains }
  in
  if crash then
    { base with
      Samhita.Config.crash_server = Some (0, span_ns / 2);
      lease_interval = Desim.Time.ns 20_000 }
  else base

let backend_of ~kind ~replication ~manager_shards ~domains ~crash ~span_ns :
  Workload.Backend_sig.backend =
  match kind with
  | Pth -> Workload.Smp_backend.default
  | Smh ->
    Workload.Samhita_backend.make
      ~config:
        (smh_config ~replication ~manager_shards ~domains ~crash ~span_ns)
      ()

(* Serving span at the offered rate: when to schedule a mid-run crash. *)
let span_ns_of (kv : Workload.Kv.params) =
  let tp = kv.Workload.Kv.traffic in
  int_of_float
    (float_of_int tp.Workload.Traffic.requests
     *. 1e9 /. tp.Workload.Traffic.rate_rps)

let run_kv ~kind ~threads ~replication ~manager_shards ~domains ~crash
    (kv : Workload.Kv.params) =
  let b =
    backend_of ~kind ~replication ~manager_shards ~domains ~crash
      ~span_ns:(span_ns_of kv)
  in
  let r = Workload.Kv.run b ~threads kv in
  (* The estimator is fed from the recorded latency array after the run
     rather than streamed through [on_latency]: with [domains > 1] the
     callback would fire concurrently from every client partition's
     domain, racing on the histogram counts. The array slots are
     per-request (disjoint writers), and filling in request order keeps
     the feed deterministic. *)
  let est = Percentile.create () in
  Array.iter (fun l -> Percentile.add est l) r.Workload.Kv.latencies_ns;
  (r, est)

let point_of ~fraction ~rate_rps (r : Workload.Kv.result) est =
  { fraction;
    rate_rps;
    served = r.Workload.Kv.served;
    p50_ns = Percentile.percentile est 0.5;
    p99_ns = Percentile.percentile est 0.99;
    p999_ns = Percentile.percentile est 0.999;
    mean_ns = Percentile.mean est;
    max_ns = Percentile.max_value est;
    achieved_rps =
      float_of_int r.Workload.Kv.served *. 1e9
      /. float_of_int r.Workload.Kv.wall_ns;
    wall_ns = r.Workload.Kv.wall_ns;
    lost_writes = List.length (Workload.Kv.lost_writes r) }

let with_rate (kv : Workload.Kv.params) rate =
  { kv with
    Workload.Kv.traffic =
      { kv.Workload.Kv.traffic with Workload.Traffic.rate_rps = rate } }

let run ?(fractions = default_fractions) ?(manager_shards = 1)
    ?(domains = 1) ~backend:kind ~threads ~replication ~crash
    (kv : Workload.Kv.params) =
  if threads <= 0 then invalid_arg "Serving.run: threads";
  if replication < 0 || replication > 1 then
    invalid_arg "Serving.run: replication must be 0 or 1";
  if manager_shards < 1 then
    invalid_arg "Serving.run: manager_shards must be >= 1";
  if domains < 1 then invalid_arg "Serving.run: domains must be >= 1";
  if kind = Pth && (replication > 0 || crash || manager_shards > 1) then
    invalid_arg
      "Serving.run: replication, crash and manager shards need the smh \
       backend";
  if kind = Pth && domains > 1 then
    invalid_arg "Serving.run: domains > 1 needs the smh backend";
  if domains > 1 && crash then
    invalid_arg "Serving.run: domains > 1 is incompatible with crash";
  if crash && replication = 0 then
    invalid_arg "Serving.run: a crash is survivable only with replication";
  if fractions = [] then invalid_arg "Serving.run: empty load sweep";
  List.iter
    (fun f ->
       if not (Float.is_finite f) || f <= 0. then
         invalid_arg "Serving.run: load fractions must be positive")
    fractions;
  (* Capacity probe: offered load so far beyond any capacity that every
     request has arrived by the time serving starts — the workers run
     closed-loop, back to back, and throughput is pure service capacity.
     The probe never crashes (a recovery pause would understate
     capacity and shift every sweep point). *)
  let probe_r, probe_est =
    run_kv ~kind ~threads ~replication ~manager_shards ~domains
      ~crash:false (with_rate kv 1e12)
  in
  ignore (probe_est : Percentile.t);
  let capacity_rps =
    float_of_int probe_r.Workload.Kv.served *. 1e9
    /. float_of_int probe_r.Workload.Kv.wall_ns
  in
  let points =
    List.map
      (fun fraction ->
         let rate_rps = fraction *. capacity_rps in
         let r, est =
           run_kv ~kind ~threads ~replication ~manager_shards ~domains
             ~crash (with_rate kv rate_rps)
         in
         point_of ~fraction ~rate_rps r est)
      fractions
  in
  { backend = backend_name kind;
    threads;
    replication;
    manager_shards;
    domains;
    crash;
    kv;
    capacity_rps;
    points }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp ppf t =
  let tp = t.kv.Workload.Kv.traffic in
  Format.fprintf ppf
    "== kv serving: %s P=%d keys=%d shards=%d clients=%d requests=%d \
     zipf=%.2f reads=%.2f repl=%d%s%s ==@\n"
    t.backend t.threads tp.Workload.Traffic.keys t.kv.Workload.Kv.shards
    tp.Workload.Traffic.clients tp.Workload.Traffic.requests
    tp.Workload.Traffic.zipf_s tp.Workload.Traffic.read_fraction
    t.replication
    (if t.manager_shards > 1 then
       Printf.sprintf " mshards=%d" t.manager_shards
     else "")
    ((if t.domains > 1 then Printf.sprintf " domains=%d" t.domains else "")
     ^ if t.crash then " crash" else "");
  Format.fprintf ppf "capacity %.0f req/s (closed-loop probe)@\n"
    t.capacity_rps;
  Format.fprintf ppf
    "%8s %12s %12s %10s %10s %10s %10s %6s@\n"
    "load" "offered" "achieved" "p50" "p99" "p999" "max" "lost";
  List.iter
    (fun p ->
       Format.fprintf ppf
         "%7.0f%% %12.0f %12.0f %10d %10d %10d %10d %6d@\n"
         (p.fraction *. 100.) p.rate_rps p.achieved_rps p.p50_ns p.p99_ns
         p.p999_ns p.max_ns p.lost_writes)
    t.points

(* ------------------------------------------------------------------ *)
(* JSON (hand-rolled like bench/main.ml: no parser dependency) *)

let to_json t =
  let b = Buffer.create 1024 in
  let tp = t.kv.Workload.Kv.traffic in
  Buffer.add_string b "{\n";
  Printf.bprintf b "    \"backend\": \"%s\",\n" t.backend;
  Printf.bprintf b "    \"threads\": %d,\n" t.threads;
  Printf.bprintf b "    \"replication\": %d,\n" t.replication;
  Printf.bprintf b "    \"manager_shards\": %d,\n" t.manager_shards;
  Printf.bprintf b "    \"domains\": %d,\n" t.domains;
  Printf.bprintf b "    \"crash\": %b,\n" t.crash;
  Printf.bprintf b "    \"keys\": %d,\n" tp.Workload.Traffic.keys;
  Printf.bprintf b "    \"shards\": %d,\n" t.kv.Workload.Kv.shards;
  Printf.bprintf b "    \"clients\": %d,\n" tp.Workload.Traffic.clients;
  Printf.bprintf b "    \"requests\": %d,\n" tp.Workload.Traffic.requests;
  Printf.bprintf b "    \"zipf_s\": %g,\n" tp.Workload.Traffic.zipf_s;
  Printf.bprintf b "    \"read_fraction\": %g,\n"
    tp.Workload.Traffic.read_fraction;
  Printf.bprintf b "    \"seed\": %d,\n" tp.Workload.Traffic.seed;
  Printf.bprintf b "    \"capacity_rps\": %.1f,\n" t.capacity_rps;
  Buffer.add_string b "    \"points\": [";
  List.iteri
    (fun i p ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b "\n      {";
       Printf.bprintf b "\"fraction\": %g, " p.fraction;
       Printf.bprintf b "\"rate_rps\": %.1f, " p.rate_rps;
       Printf.bprintf b "\"achieved_rps\": %.1f, " p.achieved_rps;
       Printf.bprintf b "\"served\": %d, " p.served;
       Printf.bprintf b "\"p50_ns\": %d, " p.p50_ns;
       Printf.bprintf b "\"p99_ns\": %d, " p.p99_ns;
       Printf.bprintf b "\"p999_ns\": %d, " p.p999_ns;
       Printf.bprintf b "\"mean_ns\": %.1f, " p.mean_ns;
       Printf.bprintf b "\"max_ns\": %d, " p.max_ns;
       Printf.bprintf b "\"wall_ns\": %d, " p.wall_ns;
       Printf.bprintf b "\"lost_writes\": %d}" p.lost_writes)
    t.points;
  Buffer.add_string b "\n    ]\n  }";
  Buffer.contents b
