(** Offered-load sweeps of the {!Workload.Kv} serving scenario, with
    tail-latency reporting.

    A sweep first measures service capacity with a closed-loop probe
    (offered rate far beyond capacity, so workers serve back to back),
    then replays the open-loop workload at fractions of that capacity.
    Points past 1.0 are deliberately overloaded: arrivals outpace
    service, queues grow for the rest of the run, and the tail
    percentiles diverge — visible only because the generator is
    open-loop. *)

type backend_kind = Smh | Pth

val backend_name : backend_kind -> string

type point = {
  fraction : float;  (** Of measured capacity. *)
  rate_rps : float;  (** Offered aggregate load. *)
  served : int;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  mean_ns : float;
  max_ns : int;
  achieved_rps : float;  (** served / simulated wall. *)
  wall_ns : int;
  lost_writes : int;  (** {!Workload.Kv.lost_writes}; must be 0. *)
}

type t = {
  backend : string;
  threads : int;
  replication : int;
  manager_shards : int;  (** Control-plane shards (1 = classic manager). *)
  domains : int;  (** ParDES engine domains (1 = sequential). *)
  crash : bool;
  kv : Workload.Kv.params;  (** Base parameters; rate set per point. *)
  capacity_rps : float;
  points : point list;
}

val default_fractions : float list
(** [0.25; 0.5; 0.75; 0.9; 1.5] — four stable points and one past
    capacity. *)

val run :
  ?fractions:float list ->
  ?manager_shards:int ->
  ?domains:int ->
  backend:backend_kind ->
  threads:int ->
  replication:int ->
  crash:bool ->
  Workload.Kv.params -> t
(** Deterministic per seed. [replication]/[crash]/[manager_shards > 1]
    need [Smh] (two memory servers are used for every Smh run so
    replication on/off compares like for like); [crash] needs
    [replication = 1] and injects a fail-stop memory-server crash
    mid-sweep-point, measuring what a lease-detected promotion costs the
    tail. [manager_shards] (default 1) shards the control plane the KV
    mutexes resolve through. [domains] (default 1) runs the simulation
    itself on that many ParDES engine domains ({!Samhita.Config.domains});
    results are deterministic and equal to the 1-domain run, only host
    wall-clock changes. Needs [Smh] and no [crash]. Raises
    [Invalid_argument] on bad combinations. *)

val pp : Format.formatter -> t -> unit
(** Human-readable capacity line plus one row per sweep point. *)

val to_json : t -> string
(** The sweep as a JSON object (hand-rolled, schema pinned by
    [test/exit_codes.sh]); the [serve] CLI appends it to BENCH.json
    under the ["serve"] key. *)
