type server_stats = {
  s_id : int;
  s_fetches : int;
  s_diffs : int;
  s_updates : int;
  s_lines : int;
  s_util : float;
}

type thread_stats = {
  t_metrics : Samhita.Metrics.thread;
  t_prefetch_installs : int;
  t_dirty_evictions : int;
}

type t = {
  wall : Desim.Time.t;
  net_messages : int;
  net_bytes : int;
  servers : server_stats list;
  manager_util : float;
  manager_jobs : int;
  gas_used : int;
  threads : thread_stats list;
  san : Analysis.Regcsan.t option;
  faults : Samhita.Metrics.faults option;
  repl : Samhita.Metrics.replication option;
  detect : Samhita.Metrics.detection option;
  ctl : Samhita.Metrics.control option;
}

let of_system sys =
  let wall = Samhita.System.elapsed sys in
  let net = Samhita.System.network sys in
  let servers =
    Array.to_list (Samhita.System.servers sys)
    |> List.map (fun srv ->
        { s_id = Samhita.Memory_server.id srv;
          s_fetches = Samhita.Memory_server.fetches srv;
          s_diffs = Samhita.Memory_server.diffs_applied srv;
          s_updates = Samhita.Memory_server.updates_applied srv;
          s_lines = Samhita.Memory_server.lines_resident srv;
          s_util =
            Desim.Resource.utilization
              (Samhita.Memory_server.service srv)
              ~horizon:wall })
  in
  let cp = Samhita.System.control_plane sys in
  { wall;
    net_messages = Fabric.Network.messages net;
    net_bytes = Fabric.Network.bytes_carried net;
    servers;
    manager_util = Samhita.Control_plane.service_utilization cp ~horizon:wall;
    manager_jobs = Samhita.Control_plane.service_jobs cp;
    gas_used = Samhita.Control_plane.gas_used cp;
    threads =
      List.map
        (fun ctx ->
           let cache = Samhita.Thread_ctx.cache ctx in
           { t_metrics = Samhita.Metrics.of_ctx ctx;
             t_prefetch_installs = Samhita.Cache.prefetch_installs cache;
             t_dirty_evictions = Samhita.Cache.dirty_evictions cache })
        (Samhita.System.threads sys);
    san = Samhita.System.sanitizer sys;
    faults = Samhita.Metrics.faults_of_system sys;
    repl = Samhita.Metrics.replication_of_system sys;
    detect = Samhita.Metrics.detection_of_system sys;
    ctl = Samhita.Metrics.control_of_system sys }

let fabric_bytes t = t.net_bytes
let fabric_messages t = t.net_messages

let server_utilization t i =
  match List.find_opt (fun s -> s.s_id = i) t.servers with
  | Some s -> s.s_util
  | None -> invalid_arg "Report.server_utilization: unknown server"

let manager_utilization t = t.manager_util

let total_misses t =
  List.fold_left (fun acc th -> acc + th.t_metrics.Samhita.Metrics.misses) 0
    t.threads

let total_hits t =
  List.fold_left (fun acc th -> acc + th.t_metrics.Samhita.Metrics.hits) 0
    t.threads

let hit_rate t =
  let h = total_hits t and m = total_misses t in
  if h + m = 0 then 1.0 else float_of_int h /. float_of_int (h + m)

let sanitizer_findings t =
  Option.map Analysis.Regcsan.findings_count t.san

let fault_counters t = t.faults
let replication_counters t = t.repl
let detection_counters t = t.detect

let pp ppf t =
  Format.fprintf ppf "@[<v>== run report ==@,";
  Format.fprintf ppf "makespan            %a@," Desim.Time.pp t.wall;
  Format.fprintf ppf "fabric              %d messages, %d bytes (%.2f MB)@,"
    t.net_messages t.net_bytes
    (float_of_int t.net_bytes /. 1e6);
  Format.fprintf ppf "global addr space   %d bytes reserved@," t.gas_used;
  Format.fprintf ppf "manager             %d requests, %.1f%% utilized@,"
    t.manager_jobs (100. *. t.manager_util);
  List.iter
    (fun s ->
       Format.fprintf ppf
         "memory server %d     %d fetches, %d diffs, %d updates, %d lines \
          resident, %.1f%% utilized@,"
         s.s_id s.s_fetches s.s_diffs s.s_updates s.s_lines
         (100. *. s.s_util))
    t.servers;
  (match t.faults with
   | None -> ()
   | Some f ->
     Format.fprintf ppf "fault injection     %a@," Samhita.Metrics.pp_faults
       f);
  (match t.repl with
   | None -> ()
   | Some r ->
     Format.fprintf ppf "fault tolerance     %a@,"
       Samhita.Metrics.pp_replication r);
  (match t.detect with
   | None -> ()
   | Some d ->
     Format.fprintf ppf "failure detection   %a@,"
       Samhita.Metrics.pp_detection d);
  (match t.ctl with
   | None -> ()
   | Some c ->
     Format.fprintf ppf "control plane       %a@," Samhita.Metrics.pp_control
       c);
  Format.fprintf ppf "cache hit rate      %.4f (%d hits / %d misses)@,"
    (hit_rate t) (total_hits t) (total_misses t);
  List.iter
    (fun th ->
       Format.fprintf ppf "  %a prefetch-installs=%d dirty-evicts=%d@,"
         Samhita.Metrics.pp_thread th.t_metrics th.t_prefetch_installs
         th.t_dirty_evictions)
    t.threads;
  (match t.san with
   | None -> ()
   | Some s -> Format.fprintf ppf "%a@," Analysis.Regcsan.pp_report s);
  Format.fprintf ppf "@]"
