type series = { label : string; points : (float * float) list }

type figure = {
  id : string;
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
  notes : string list;
}

let xs fig =
  List.concat_map (fun s -> List.map fst s.points) fig.series
  |> List.sort_uniq Float.compare

let value_at fig ~label ~x =
  match List.find_opt (fun s -> s.label = label) fig.series with
  | None -> None
  | Some s ->
    List.find_opt (fun (px, _) -> px = x) s.points |> Option.map snd

let cell_of v =
  if Float.is_nan v then "nan"
  else if Float.abs v >= 1e6 || (Float.abs v < 1e-3 && v <> 0.) then
    Printf.sprintf "%.4g" v
  else Printf.sprintf "%.4f" v

let render ppf fig =
  Format.fprintf ppf "== %s: %s ==@." fig.id fig.title;
  Format.fprintf ppf "   (x = %s, y = %s)@." fig.xlabel fig.ylabel;
  let xvals = xs fig in
  let headers = fig.xlabel :: List.map (fun s -> s.label) fig.series in
  let rows =
    List.map
      (fun x ->
         let fx =
           if Float.is_integer x then Printf.sprintf "%.0f" x
           else Printf.sprintf "%g" x
         in
         fx
         :: List.map
           (fun s ->
              match List.assoc_opt x s.points with
              | Some v -> cell_of v
              | None -> "-")
           fig.series)
      xvals
  in
  let table = headers :: rows in
  let ncols = List.length headers in
  let widths =
    List.init ncols (fun c ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row c)))
          0 table)
  in
  List.iter
    (fun row ->
       List.iteri
         (fun c cell ->
            Format.fprintf ppf "%s%s"
              (if c = 0 then "  " else "  | ")
              (Printf.sprintf "%*s" (List.nth widths c) cell))
         row;
       Format.fprintf ppf "@.")
    table;
  List.iter (fun n -> Format.fprintf ppf "  # %s@." n) fig.notes;
  Format.fprintf ppf "@."

let to_csv fig =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat "," (fig.xlabel :: List.map (fun s -> s.label) fig.series));
  Buffer.add_char buf '\n';
  List.iter
    (fun x ->
       Buffer.add_string buf (Printf.sprintf "%g" x);
       List.iter
         (fun s ->
            Buffer.add_char buf ',';
            match List.assoc_opt x s.points with
            | Some v -> Buffer.add_string buf (Printf.sprintf "%.9g" v)
            | None -> ())
         fig.series;
       Buffer.add_char buf '\n')
    (xs fig);
  Buffer.contents buf
