(* Octave-bucketed histogram (the HdrHistogram idea, fixed at 32
   subbuckets per octave). Values in [0, 64) get exact unit buckets;
   above, each power-of-two octave [2^b, 2^(b+1)) splits into 32 linear
   subbuckets of width 2^(b-5). A value's bucket lower bound is within
   a factor (1 + 1/32) of the value, which gives the documented bound:
   reported quantiles never undershoot and overshoot by at most 1/32
   relative. Memory is a fixed ~1.9k-entry int array regardless of how
   many observations stream in. *)

let subbuckets = 32
let exact_limit = 2 * subbuckets  (* [0, 64): unit-width buckets. *)
let min_octave = 6  (* First bucketed octave: [64, 128). *)
let max_octave = 61  (* OCaml int: values up to 2^62 - 1. *)
let buckets = exact_limit + ((max_octave - min_octave + 1) * subbuckets)

type t = {
  counts : int array;
  mutable n : int;
  mutable vmin : int;
  mutable vmax : int;
  mutable sum : float;
}

let create () =
  { counts = Array.make buckets 0;
    n = 0;
    vmin = max_int;
    vmax = 0;
    sum = 0. }

(* floor (log2 v) for v > 0. *)
let msb v =
  let r = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then begin r := !r + 32; v := !v lsr 32 end;
  if !v lsr 16 <> 0 then begin r := !r + 16; v := !v lsr 16 end;
  if !v lsr 8 <> 0 then begin r := !r + 8; v := !v lsr 8 end;
  if !v lsr 4 <> 0 then begin r := !r + 4; v := !v lsr 4 end;
  if !v lsr 2 <> 0 then begin r := !r + 2; v := !v lsr 2 end;
  if !v lsr 1 <> 0 then r := !r + 1;
  !r

let index_of v =
  if v < exact_limit then v
  else
    let b = min (msb v) max_octave in
    let sub = (v lsr (b - 5)) - subbuckets in
    exact_limit + ((b - min_octave) * subbuckets) + sub

(* Inclusive upper edge of a bucket: what a quantile query reports. *)
let value_of_index idx =
  if idx < exact_limit then idx
  else
    let rel = idx - exact_limit in
    let b = min_octave + (rel / subbuckets) in
    let sub = rel mod subbuckets in
    ((subbuckets + sub + 1) lsl (b - 5)) - 1

let add t v =
  if v < 0 then invalid_arg "Percentile.add: negative value";
  t.counts.(index_of v) <- t.counts.(index_of v) + 1;
  t.n <- t.n + 1;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  t.sum <- t.sum +. float_of_int v

let count t = t.n

let min_value t =
  if t.n = 0 then invalid_arg "Percentile.min_value: empty";
  t.vmin

let max_value t =
  if t.n = 0 then invalid_arg "Percentile.max_value: empty";
  t.vmax

let mean t =
  if t.n = 0 then invalid_arg "Percentile.mean: empty";
  t.sum /. float_of_int t.n

let percentile t q =
  if t.n = 0 then invalid_arg "Percentile.percentile: empty";
  if not (Float.is_finite q) || q < 0. || q > 1. then
    invalid_arg "Percentile.percentile: quantile must be in [0,1]";
  (* Nearest-rank: the smallest value with at least ceil(q*n) observations
     at or below it — matching [Array.sort]ed.(ceil(q*n) - 1). *)
  let rank = max 1 (int_of_float (ceil (q *. float_of_int t.n))) in
  let cum = ref 0 and idx = ref 0 in
  (try
     for i = 0 to buckets - 1 do
       cum := !cum + t.counts.(i);
       if !cum >= rank then begin
         idx := i;
         raise Exit
       end
     done
   with Exit -> ());
  (* The true value lies inside the bucket; clamp the reported edge into
     the observed range so degenerate streams report exactly. *)
  min t.vmax (max t.vmin (value_of_index !idx))
