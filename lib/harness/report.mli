(** Post-run system reports: where the time and bytes went.

    Aggregates fabric, memory-server, manager and per-thread cache
    statistics from a finished {!Samhita.System} run into a readable
    breakdown — the operational view an operator of the real system would
    get from its counters. *)

type t

val of_system : Samhita.System.t -> t

val pp : Format.formatter -> t -> unit
(** Multi-section report: fabric traffic, per-server activity and
    utilization, manager utilization, per-thread cache behaviour and time
    split. *)

val fabric_bytes : t -> int
val fabric_messages : t -> int

val server_utilization : t -> int -> float
(** Service-loop utilization of server [i] over the run's makespan. *)

val manager_utilization : t -> float

val total_misses : t -> int
val total_hits : t -> int

val hit_rate : t -> float
(** Fraction of accesses served by the software caches. *)

val sanitizer_findings : t -> int option
(** RegCSan finding count, when the run had [Config.sanitize] on. The
    findings themselves appear in {!pp} output. *)

val fault_counters : t -> Samhita.Metrics.faults option
(** Fault-injection counters (delayed / reordered / dropped / retried),
    when the run had a {!Fabric.Faults} policy attached. *)

val replication_counters : t -> Samhita.Metrics.replication option
(** Crash-fault-tolerance counters (mirrors, heartbeats, promotions,
    replays), when the run had replication or an injected crash. *)

val detection_counters : t -> Samhita.Metrics.detection option
(** Failure-detection quality counters (suspicions, false suspicions,
    fenced messages, rejoins), when the run injected a gray failure
    (partition or stall). *)
