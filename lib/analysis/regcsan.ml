(* Vector-clock happens-before engine with per-page shadow state at 8-byte
   word granularity. Pages organise the shadow and deduplicate findings;
   conflicts are resolved per word so that RegC's multiple-writer protocol
   (false sharing within a page is fine by design) is not misreported. *)

type kind = Race | Unpublished | Mixed | Invalid_read | Lock_misuse | Lock_order

let kind_name = function
  | Race -> "race"
  | Unpublished -> "unpublished"
  | Mixed -> "mixed"
  | Invalid_read -> "invalid-read"
  | Lock_misuse -> "lock-misuse"
  | Lock_order -> "lock-order"

let kind_rank = function
  | Race -> 0
  | Unpublished -> 1
  | Mixed -> 2
  | Invalid_read -> 3
  | Lock_misuse -> 4
  | Lock_order -> 5

type finding = {
  kind : kind;
  page : int;
  addr : int;
  tid_first : int;
  tid_second : int;
  time_first : Desim.Time.t;
  time_second : Desim.Time.t;
  detail : string;
}

type alloc_state = Unalloc | Alloc | Freed of int * Desim.Time.t

(* Shadow of one 8-byte word. Reads follow the FastTrack discipline: a
   single (tid, clk) epoch while reads stay ordered, promoted to a full
   vector clock once genuinely concurrent readers appear. *)
type cell = {
  mutable w_tid : int;  (* -1: never written *)
  mutable w_clk : int;
  mutable w_time : Desim.Time.t;
  mutable w_lock : int;  (* -1: ordinary write; else region lock id *)
  mutable r_tid : int;  (* -1: no reads; -2: shared (see r_vc) *)
  mutable r_clk : int;
  mutable r_time : Desim.Time.t;
  mutable r_vc : Vclock.t option;
  mutable st : alloc_state;
}

type tstate = {
  vc : Vclock.t;
      (* Full happens-before clock. *)
  pub : Vclock.t;
      (* pub.(u): u's clock up to which u's ordinary writes are guaranteed
         visible to this thread — advanced only by barrier episodes, the
         sole mechanism by which RegC publishes ordinary-region data. *)
  lock_seen : (int, Vclock.t) Hashtbl.t;
      (* Per lock: the lock's release clock as of this thread's latest
         acquire — bounds which region writes the grant chain patched in. *)
  mutable held : int list;
}

type bstate = {
  bvc : Vclock.t;  (* join of participants' clocks at arrival *)
  bpub : Vclock.t;  (* join of participants' pub vectors (transitivity) *)
  parts : bool array;  (* participant flags, indexed by thread id *)
}

type t = {
  n : int;
  page_shift : int;
  threads : tstate array;
  shadow : (int, cell) Hashtbl.t;  (* word index -> cell *)
  locks : (int, Vclock.t) Hashtbl.t;  (* lock -> release clock *)
  barriers : (int * int, bstate) Hashtbl.t;  (* (barrier, epoch) *)
  conds : (int, Vclock.t) Hashtbl.t;  (* cond -> signal clock *)
  seen : (int * int * int * int, unit) Hashtbl.t;  (* dedup keys *)
  (* Lock-order graph: (outer, inner) -> (thread, time) of the first
     acquisition of [inner] while holding [outer]. An edge in both
     directions is an ABBA-inconsistent pair: two threads following the
     two orders concurrently can deadlock even if this run did not. *)
  lock_order : (int * int, int * Desim.Time.t) Hashtbl.t;
  mutable n_lock_order : int;
  mutable findings_rev : finding list;
  mutable n_findings : int;
  mutable n_accesses : int;
}

let log2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let create ~threads ~page_bytes =
  if threads <= 0 then invalid_arg "Regcsan.create: threads must be positive";
  if page_bytes <= 0 || page_bytes land (page_bytes - 1) <> 0 then
    invalid_arg "Regcsan.create: page_bytes must be a power of two";
  { n = threads;
    page_shift = log2 page_bytes;
    threads =
      Array.init threads (fun i ->
          let vc = Vclock.create threads in
          (* Clocks start at 1 so that clock 0 means "before every event"
             and a recorded epoch is never mistaken for one. *)
          Vclock.set vc i 1;
          { vc;
            pub = Vclock.create threads;
            lock_seen = Hashtbl.create 8;
            held = [] });
    shadow = Hashtbl.create 4096;
    locks = Hashtbl.create 8;
    barriers = Hashtbl.create 64;
    conds = Hashtbl.create 8;
    seen = Hashtbl.create 64;
    lock_order = Hashtbl.create 16;
    n_lock_order = 0;
    findings_rev = [];
    n_findings = 0;
    n_accesses = 0 }

let ts t thread =
  if thread < 0 || thread >= t.n then
    invalid_arg "Regcsan: thread id out of range";
  t.threads.(thread)

let report t ~kind ~page ~addr ~tid_first ~tid_second ~time_first ~time_second
    ~detail =
  let a = min tid_first tid_second and b = max tid_first tid_second in
  let key = (page, a, b, kind_rank kind) in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    t.findings_rev <-
      { kind; page; addr; tid_first; tid_second; time_first; time_second;
        detail }
      :: t.findings_rev;
    t.n_findings <- t.n_findings + 1
  end

(* ------------------------------------------------------------------ *)
(* Shadow cells                                                        *)

let fresh_cell st =
  { w_tid = -1;
    w_clk = 0;
    w_time = Desim.Time.zero;
    w_lock = -1;
    r_tid = -1;
    r_clk = 0;
    r_time = Desim.Time.zero;
    r_vc = None;
    st }

let cell_of t word st =
  match Hashtbl.find_opt t.shadow word with
  | Some c -> c
  | None ->
    let c = fresh_cell st in
    Hashtbl.replace t.shadow word c;
    c

let word_range ~addr ~len =
  if len <= 0 then invalid_arg "Regcsan: access length must be positive";
  (addr asr 3, (addr + len - 1) asr 3)

let page_of t word = (word lsl 3) asr t.page_shift

(* ------------------------------------------------------------------ *)
(* Allocation events                                                   *)

let on_malloc t ~thread:_ ~time:_ ~addr ~bytes =
  let lo, hi = word_range ~addr ~len:bytes in
  for w = lo to hi do
    match Hashtbl.find_opt t.shadow w with
    | None -> Hashtbl.replace t.shadow w (fresh_cell Alloc)
    | Some c ->
      (* Reuse of a recycled block: history of the previous tenant must
         not leak into the new one. *)
      c.w_tid <- -1;
      c.w_clk <- 0;
      c.w_lock <- -1;
      c.r_tid <- -1;
      c.r_clk <- 0;
      c.r_vc <- None;
      c.st <- Alloc
  done

let on_free t ~thread ~time ~addr ~bytes =
  let lo, hi = word_range ~addr ~len:bytes in
  for w = lo to hi do
    let c = cell_of t w Unalloc in
    c.st <- Freed (thread, time)
  done

(* ------------------------------------------------------------------ *)
(* Reads and writes                                                    *)

let seen_clock st ~lock ~writer =
  match Hashtbl.find_opt st.lock_seen lock with
  | Some v -> Vclock.get v writer
  | None -> 0

(* The read is ordered after the write by happens-before; check that RegC
   actually delivers the written value along that path. *)
let check_visibility t st ~thread ~time ~word (c : cell) =
  let u = c.w_tid in
  if c.w_lock < 0 then begin
    if c.w_clk > Vclock.get st.pub u then
      report t ~kind:Unpublished ~page:(page_of t word) ~addr:(word lsl 3)
        ~tid_first:u ~tid_second:thread ~time_first:c.w_time ~time_second:time
        ~detail:
          (Printf.sprintf
             "ordinary write by t%d reaches t%d without a barrier in \
              between; RegC publishes ordinary writes only at barriers"
             u thread)
  end
  else if c.w_clk > seen_clock st ~lock:c.w_lock ~writer:u then
    report t ~kind:Unpublished ~page:(page_of t word) ~addr:(word lsl 3)
      ~tid_first:u ~tid_second:thread ~time_first:c.w_time ~time_second:time
      ~detail:
        (Printf.sprintf
           "t%d reads data written by t%d inside lock %d's consistency \
            region without having acquired lock %d since"
           thread u c.w_lock c.w_lock)

let on_read t ~thread ~time ~addr ~len =
  let st = ts t thread in
  let lo, hi = word_range ~addr ~len in
  t.n_accesses <- t.n_accesses + (hi - lo + 1);
  for w = lo to hi do
    let c = cell_of t w Unalloc in
    (match c.st with
     | Alloc -> ()
     | Unalloc ->
       report t ~kind:Invalid_read ~page:(page_of t w) ~addr:(w lsl 3)
         ~tid_first:thread ~tid_second:thread ~time_first:time
         ~time_second:time
         ~detail:
           (Printf.sprintf "t%d reads a GAS address that was never allocated"
              thread)
     | Freed (ftid, ftime) ->
       report t ~kind:Invalid_read ~page:(page_of t w) ~addr:(w lsl 3)
         ~tid_first:ftid ~tid_second:thread ~time_first:ftime
         ~time_second:time
         ~detail:
           (Printf.sprintf "t%d reads a GAS address freed by t%d" thread ftid));
    if c.w_tid >= 0 && c.w_tid <> thread then begin
      if c.w_clk > Vclock.get st.vc c.w_tid then
        report t ~kind:Race ~page:(page_of t w) ~addr:(w lsl 3)
          ~tid_first:c.w_tid ~tid_second:thread ~time_first:c.w_time
          ~time_second:time
          ~detail:
            (Printf.sprintf
               "read by t%d races with a write by t%d (no happens-before \
                ordering)"
               thread c.w_tid)
      else check_visibility t st ~thread ~time ~word:w c
    end;
    (* Record the read. *)
    (match c.r_tid with
     | -1 ->
       c.r_tid <- thread;
       c.r_clk <- Vclock.get st.vc thread;
       c.r_time <- time
     | rt when rt = thread ->
       c.r_clk <- Vclock.get st.vc thread;
       c.r_time <- time
     | -2 ->
       (match c.r_vc with
        | Some v -> Vclock.set v thread (Vclock.get st.vc thread)
        | None -> assert false);
       c.r_time <- time
     | rt ->
       if c.r_clk <= Vclock.get st.vc rt then begin
         (* Previous reader is ordered before us: keep a single epoch. *)
         c.r_tid <- thread;
         c.r_clk <- Vclock.get st.vc thread;
         c.r_time <- time
       end
       else begin
         let v = Vclock.create t.n in
         Vclock.set v rt c.r_clk;
         Vclock.set v thread (Vclock.get st.vc thread);
         c.r_vc <- Some v;
         c.r_tid <- -2;
         c.r_time <- time
       end)
  done

let on_write t ~thread ~time ~addr ~len ~lock =
  let st = ts t thread in
  let lo, hi = word_range ~addr ~len in
  t.n_accesses <- t.n_accesses + (hi - lo + 1);
  for w = lo to hi do
    let c = cell_of t w Unalloc in
    (* Conflicts with the previous write. *)
    if c.w_tid >= 0 && c.w_tid <> thread then begin
      let u = c.w_tid in
      if c.w_clk > Vclock.get st.vc u then
        report t ~kind:Race ~page:(page_of t w) ~addr:(w lsl 3) ~tid_first:u
          ~tid_second:thread ~time_first:c.w_time ~time_second:time
          ~detail:
            (Printf.sprintf
               "write by t%d races with a write by t%d (no happens-before \
                ordering)"
               thread u)
      else if lock >= 0 && c.w_lock < 0 then begin
        (* Region write over an ordinary write: until the ordinary writer
           crosses a barrier its twin still holds the old value, and its
           later page diff would overwrite this region update at the
           home. *)
        if c.w_clk > Vclock.get st.pub u then
          report t ~kind:Mixed ~page:(page_of t w) ~addr:(w lsl 3)
            ~tid_first:u ~tid_second:thread ~time_first:c.w_time
            ~time_second:time
            ~detail:
              (Printf.sprintf
                 "t%d writes under lock %d a word t%d wrote outside any \
                  region with no barrier in between (mixed region/ordinary \
                  writes)"
                 thread lock u)
      end
      else if lock < 0 && c.w_lock >= 0 then begin
        if c.w_clk > seen_clock st ~lock:c.w_lock ~writer:u then
          report t ~kind:Mixed ~page:(page_of t w) ~addr:(w lsl 3)
            ~tid_first:u ~tid_second:thread ~time_first:c.w_time
            ~time_second:time
            ~detail:
              (Printf.sprintf
                 "t%d writes outside any region a word t%d wrote under \
                  lock %d, without having acquired lock %d (mixed \
                  region/ordinary writes)"
                 thread u c.w_lock c.w_lock)
      end
    end;
    (* Conflicts with concurrent reads. *)
    (match c.r_tid with
     | -1 -> ()
     | -2 ->
       (match c.r_vc with
        | Some v ->
          for i = 0 to t.n - 1 do
            if i <> thread && Vclock.get v i > Vclock.get st.vc i then
              report t ~kind:Race ~page:(page_of t w) ~addr:(w lsl 3)
                ~tid_first:i ~tid_second:thread ~time_first:c.r_time
                ~time_second:time
                ~detail:
                  (Printf.sprintf
                     "write by t%d races with a read by t%d (no \
                      happens-before ordering)"
                     thread i)
          done
        | None -> assert false)
     | rt ->
       if rt <> thread && c.r_clk > Vclock.get st.vc rt then
         report t ~kind:Race ~page:(page_of t w) ~addr:(w lsl 3) ~tid_first:rt
           ~tid_second:thread ~time_first:c.r_time ~time_second:time
           ~detail:
             (Printf.sprintf
                "write by t%d races with a read by t%d (no happens-before \
                 ordering)"
                thread rt));
    (* Record the write; prior reads are now ordered before it (or already
       reported), so the read set resets. *)
    c.w_tid <- thread;
    c.w_clk <- Vclock.get st.vc thread;
    c.w_time <- time;
    c.w_lock <- lock;
    c.r_tid <- -1;
    c.r_clk <- 0;
    c.r_vc <- None
  done

(* ------------------------------------------------------------------ *)
(* Synchronization edges                                               *)

let lock_clock t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some v -> v
  | None ->
    let v = Vclock.create t.n in
    Hashtbl.replace t.locks lock v;
    v

let on_lock_attempt t ~thread ~time ~lock =
  let st = ts t thread in
  if List.mem lock st.held then
    report t ~kind:Lock_misuse ~page:(-1) ~addr:(-1) ~tid_first:thread
      ~tid_second:thread ~time_first:time ~time_second:time
      ~detail:
        (Printf.sprintf
           "t%d acquires lock %d while already holding it (self-deadlock)"
           thread lock)

let on_lock_acquired t ~thread ~time ~lock =
  let st = ts t thread in
  let rel = lock_clock t lock in
  Vclock.join st.vc rel;
  (* Remember how much of each thread's region history this acquire made
     current (the grant patch covers exactly the lock's release chain). *)
  (match Hashtbl.find_opt st.lock_seen lock with
   | Some v -> Vclock.join v rel
   | None -> Hashtbl.replace st.lock_seen lock (Vclock.copy rel));
  (* Lock-order bookkeeping: acquiring [lock] while holding [outer] adds
     the edge (outer, lock). If the reverse edge already exists the
     program uses the two locks in both nesting orders — an ABBA pair
     that can deadlock under a schedule this run did not take. *)
  List.iter
    (fun outer ->
       if outer <> lock && not (Hashtbl.mem t.lock_order (outer, lock))
       then begin
         Hashtbl.replace t.lock_order (outer, lock) (thread, time);
         match Hashtbl.find_opt t.lock_order (lock, outer) with
         | None -> ()
         | Some (tid0, time0) ->
           t.n_lock_order <- t.n_lock_order + 1;
           let la = min outer lock and lb = max outer lock in
           report t ~kind:Lock_order
             ~page:(-1 - ((la lsl 16) lor lb))
             ~addr:(-1) ~tid_first:tid0 ~tid_second:thread ~time_first:time0
             ~time_second:time
             ~detail:
               (Printf.sprintf
                  "inconsistent lock order: t%d acquires lock %d while \
                   holding lock %d, but t%d acquired lock %d while holding \
                   lock %d (ABBA pair; deadlock possible even though none \
                   manifested)"
                  thread lock outer tid0 outer lock)
       end)
    st.held;
  st.held <- lock :: st.held

let on_unlock t ~thread ~time ~lock =
  let st = ts t thread in
  if not (List.mem lock st.held) then
    report t ~kind:Lock_misuse ~page:(-1) ~addr:(-1) ~tid_first:thread
      ~tid_second:thread ~time_first:time ~time_second:time
      ~detail:
        (Printf.sprintf "t%d releases lock %d which it does not hold" thread
           lock)
  else begin
    st.held <- List.filter (fun l -> l <> lock) st.held;
    Vclock.join (lock_clock t lock) st.vc;
    Vclock.tick st.vc thread
  end

let bstate_of t key =
  match Hashtbl.find_opt t.barriers key with
  | Some b -> b
  | None ->
    let b =
      { bvc = Vclock.create t.n;
        bpub = Vclock.create t.n;
        parts = Array.make t.n false } in
    Hashtbl.replace t.barriers key b;
    b

let on_barrier_arrive t ~thread ~barrier ~epoch =
  let st = ts t thread in
  let b = bstate_of t (barrier, epoch) in
  Vclock.join b.bvc st.vc;
  Vclock.join b.bpub st.pub;
  b.parts.(thread) <- true;
  Vclock.tick st.vc thread

let on_barrier_depart t ~thread ~barrier ~epoch =
  let st = ts t thread in
  match Hashtbl.find_opt t.barriers (barrier, epoch) with
  | None -> ()
  | Some b ->
    Vclock.join st.vc b.bvc;
    (* The episode flushed every participant's ordinary writes and handed
       out write notices: those writes are now published to us, as is
       whatever the participants had already seen published. *)
    Vclock.join st.pub b.bpub;
    for u = 0 to t.n - 1 do
      if b.parts.(u) && Vclock.get b.bvc u > Vclock.get st.pub u
      then Vclock.set st.pub u (Vclock.get b.bvc u)
    done

let cond_clock t cond =
  match Hashtbl.find_opt t.conds cond with
  | Some v -> v
  | None ->
    let v = Vclock.create t.n in
    Hashtbl.replace t.conds cond v;
    v

let on_cond_signal t ~thread ~cond =
  let st = ts t thread in
  Vclock.join (cond_clock t cond) st.vc;
  Vclock.tick st.vc thread

let on_cond_wake t ~thread ~cond =
  let st = ts t thread in
  Vclock.join st.vc (cond_clock t cond)

(* ------------------------------------------------------------------ *)
(* Results                                                             *)

let findings t = List.rev t.findings_rev
let findings_count t = t.n_findings
let words_shadowed t = Hashtbl.length t.shadow
let accesses_checked t = t.n_accesses
let lock_order_warnings t = t.n_lock_order
let thread_clock t ~thread = Vclock.copy (ts t thread).vc

let pp_finding ppf f =
  if f.kind = Lock_misuse || f.kind = Lock_order then
    Format.fprintf ppf "[%s] at %a: %s" (kind_name f.kind) Desim.Time.pp
      f.time_second f.detail
  else
    Format.fprintf ppf "[%s] page %d addr 0x%x: %s (first access t%d at %a, \
                        second t%d at %a)"
      (kind_name f.kind) f.page f.addr f.detail f.tid_first Desim.Time.pp
      f.time_first f.tid_second Desim.Time.pp f.time_second

let pp_report ppf t =
  Format.fprintf ppf "@[<v>regcsan: %d findings (%d accesses checked, %d \
                      words shadowed)"
    t.n_findings t.n_accesses (Hashtbl.length t.shadow);
  if t.n_lock_order > 0 then
    Format.fprintf ppf "@,  lock-order warnings: %d" t.n_lock_order;
  List.iter (fun f -> Format.fprintf ppf "@,  %a" pp_finding f) (findings t);
  Format.fprintf ppf "@]"
