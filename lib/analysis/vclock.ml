type t = int array

let create n =
  if n <= 0 then invalid_arg "Vclock.create: size must be positive";
  Array.make n 0

let size = Array.length
let copy = Array.copy
let get c i = c.(i)
let set c i v = c.(i) <- v
let tick c i = c.(i) <- c.(i) + 1

let join dst src =
  for i = 0 to Array.length dst - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let leq a b =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let equal a b =
  Array.length a = Array.length b
  &&
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let hb a b = leq a b && not (equal a b)

let pp ppf c =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int c)))
