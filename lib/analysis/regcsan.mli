(** RegCSan: a happens-before data-race detector and Regional-Consistency
    linter over the runtime's access stream.

    The runtime feeds every global-memory read/write, every allocation
    event, and every synchronization edge (mutex release→acquire, barrier
    epoch, condvar signal→wake) into an instance of this module. A
    vector-clock engine maintains the happens-before relation; shadow
    state at 8-byte-word granularity (organised per page) records the last
    write and the concurrent-reader set of every touched word.

    Reported findings:

    - {b Race}: two conflicting accesses (at least one a write, same word,
      different threads) unordered by happens-before. Such a program is
      not data-race-free, so Regional Consistency gives it no
      sequential-consistency guarantee.
    - {b Unpublished}: a cross-thread read that {e is} ordered by
      happens-before but whose value RegC does not guarantee to deliver:
      an ordinary (outside-region) write reaches other threads only
      through a barrier's flush + write notices, and a consistency-region
      write only through a grant of the same lock — ordering established
      through any other sync chain leaves the reader's cached copy stale.
    - {b Mixed}: the same word is written both inside and outside
      consistency regions by different threads with no publishing edge in
      between — the ordinary writer's later page diff can clobber the
      region writer's update at the home (the twin cannot know about it).
    - {b Invalid_read}: a read of a global address that was never
      allocated, or was freed.
    - {b Lock_misuse}: acquiring a lock already held by the same thread
      (self-deadlock) or releasing a lock the thread does not hold.
    - {b Lock_order}: two locks acquired in both nesting orders across the
      run (an ABBA-inconsistent pair). No deadlock need have manifested —
      the warning says one is reachable under some schedule.

    Findings are deduplicated — first occurrence per
    (page, thread pair, kind) — and reported in detection order, which is
    deterministic because the simulation is. *)

type t

type kind = Race | Unpublished | Mixed | Invalid_read | Lock_misuse | Lock_order

type finding = {
  kind : kind;
  page : int;  (** Page index of the offending word ([-1] for lock misuse). *)
  addr : int;  (** Byte address of the word ([-1] for lock misuse). *)
  tid_first : int;   (** Thread of the earlier access (writer/owner). *)
  tid_second : int;  (** Thread whose access triggered the finding. *)
  time_first : Desim.Time.t;
  time_second : Desim.Time.t;
  detail : string;
}

val kind_name : kind -> string

val create : threads:int -> page_bytes:int -> t
(** [threads] bounds the thread ids that will appear; [page_bytes] (a
    power of two) sets the page used for deduplication keys. *)

(** {2 Access stream} *)

val on_read : t -> thread:int -> time:Desim.Time.t -> addr:int -> len:int -> unit

val on_write :
  t -> thread:int -> time:Desim.Time.t -> addr:int -> len:int -> lock:int -> unit
(** [lock] is the id of the innermost held mutex when the store executed
    (the consistency region it belongs to), or [-1] for an ordinary
    write. *)

val on_malloc : t -> thread:int -> time:Desim.Time.t -> addr:int -> bytes:int -> unit
val on_free : t -> thread:int -> time:Desim.Time.t -> addr:int -> bytes:int -> unit

(** {2 Synchronization edges} *)

val on_lock_attempt : t -> thread:int -> time:Desim.Time.t -> lock:int -> unit
(** Call before blocking: checks for double-acquire by the same thread. *)

val on_lock_acquired : t -> thread:int -> time:Desim.Time.t -> lock:int -> unit
(** Besides drawing the release→acquire edge, records the thread's lock
    nesting order and reports a {!Lock_order} finding the first time a
    pair of locks is seen nested both ways. *)

val on_unlock : t -> thread:int -> time:Desim.Time.t -> lock:int -> unit

val on_barrier_arrive : t -> thread:int -> barrier:int -> epoch:int -> unit
val on_barrier_depart : t -> thread:int -> barrier:int -> epoch:int -> unit
(** Arrive before blocking, depart after release; [epoch] is the barrier's
    epoch number captured before arriving, so all participants of one
    episode name the same epoch. *)

val on_cond_signal : t -> thread:int -> cond:int -> unit
val on_cond_wake : t -> thread:int -> cond:int -> unit

(** {2 Results} *)

val findings : t -> finding list
(** Deduplicated findings in (deterministic) detection order. *)

val findings_count : t -> int
val words_shadowed : t -> int
val accesses_checked : t -> int

val lock_order_warnings : t -> int
(** Number of ABBA-inconsistent lock pairs reported (each counted once). *)

val thread_clock : t -> thread:int -> Vclock.t
(** Copy of the thread's current vector clock. RegCCheck samples these at
    scheduling-interval boundaries and uses {!Vclock.hb} as its
    happens-before independence oracle. *)

val pp_finding : Format.formatter -> finding -> unit

val pp_report : Format.formatter -> t -> unit
(** Full report; the first line is ["regcsan: N findings"]. *)
