(** Fixed-size vector clocks over thread ids [0 .. n-1]. *)

type t

val create : int -> t
(** All-zero clock for [n] threads. *)

val size : t -> int
val copy : t -> t

val get : t -> int -> int
val set : t -> int -> int -> unit

val tick : t -> int -> unit
(** Increment thread [i]'s own component (a release-style event). *)

val join : t -> t -> unit
(** [join dst src] folds [src] into [dst] component-wise (acquire). *)

val leq : t -> t -> bool
(** Pointwise [<=]: does every event in the first clock happen before the
    second? *)

val equal : t -> t -> bool
(** Pointwise equality (clocks of different sizes are never equal). *)

val hb : t -> t -> bool
(** Strict happens-before: [leq a b && not (equal a b)]. Irreflexive by
    construction; together with {!leq}'s antisymmetry this makes the
    relation a strict partial order — the independence oracle RegCCheck's
    partial-order reduction rests on. *)

val pp : Format.formatter -> t -> unit
