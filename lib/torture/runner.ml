type kernel = Micro | Jacobi | Kv | Racy

let kernel_name = function
  | Micro -> "micro"
  | Jacobi -> "jacobi"
  | Kv -> "kv"
  | Racy -> "racy"

let kernel_of_string = function
  | "micro" -> Ok Micro
  | "jacobi" -> Ok Jacobi
  | "kv" -> Ok Kv
  | "racy" -> Ok Racy
  | s -> Error (Printf.sprintf "unknown torture kernel %S" s)

type outcome = {
  o_seed : int;
  o_wall_ns : int;
  o_events : int;
  o_reads_checked : int;
  o_digest : int;
  o_violations : Oracle.violation list;
  o_trace : string list;
  o_faults : Samhita.Metrics.faults option;
  o_repl : Samhita.Metrics.replication option;
  o_detect : Samhita.Metrics.detection option;
  o_ctl : Samhita.Metrics.control option;
  o_fault_trace : string list;
}

(* Seed-derived system geometry for the compute kernels: small lines and
   tiny caches force evictions, multiple servers exercise striping, varied
   history lengths flip acquirers between patch and invalidate paths. The
   racy kernel keeps the default geometry — its per-class defect counts
   are pinned by a test and must not depend on eviction accidents. *)
let config_for ~kernel ~level ~crash ~crash_shard ~partition ~seed rng =
  let base =
    match kernel with
    | Racy ->
      { Samhita.Config.default with
        Samhita.Config.seed;
        fault_level = level;
        shuffle = true }
    | Micro | Jacobi | Kv ->
      let pick l = List.nth l (Desim.Rng.int rng (List.length l)) in
      let page_bytes = pick [ 256; 512 ] in
      let pages_per_line = pick [ 1; 2 ] in
      let line = page_bytes * pages_per_line in
      { Samhita.Config.default with
        Samhita.Config.seed;
        fault_level = level;
        shuffle = true;
        page_bytes;
        pages_per_line;
        cache_lines = pick [ 4; 8; 32 ];
        prefetch = Desim.Rng.bool rng;
        evict_dirty_first = Desim.Rng.bool rng;
        small_threshold = 1024;
        large_threshold = 64 * 1024;
        arena_chunk_bytes = 16 * line;
        stripe_lines = pick [ 1; 2; 4 ];
        update_log_history = pick [ 0; 1; 64 ];
        memory_servers = pick [ 1; 2; 3 ];
        threads_per_node = pick [ 1; 2; 4 ] }
  in
  if crash then begin
    (* Crash mode: replicated geometry (at least two servers so a backup
       exists) with one seed-chosen server killed at a seed-chosen
       instant. The racy kernel keeps its minimal replicated geometry for
       the same pinned-count reason as above. Draws happen after all
       geometry draws so crash mode perturbs only the crash spec's own
       stream position, never the geometry. *)
    let ms =
      match kernel with
      | Racy -> 2
      | Micro | Jacobi | Kv -> 2 + Desim.Rng.int rng 2
    in
    let victim = Desim.Rng.int rng ms in
    let at = 5_000 + Desim.Rng.int rng 500_000 in
    { base with
      Samhita.Config.memory_servers = ms;
      replication = 1;
      lease_interval = Desim.Time.ns 20_000;
      crash_server = Some (victim, at) }
  end
  else if crash_shard then begin
    (* Shard-crash mode: seed-derived sharded control plane (2..4 manager
       shards) with one seed-chosen non-zero shard killed at a seed-chosen
       instant; the ring successor must absorb the dead shard's sync
       objects with no protocol invariant violated. Same stream-position
       discipline as crash mode: drawn after all geometry draws. *)
    let shards = 2 + Desim.Rng.int rng 3 in
    let victim = 1 + Desim.Rng.int rng (shards - 1) in
    let at = 5_000 + Desim.Rng.int rng 500_000 in
    { base with
      Samhita.Config.manager_shards = shards;
      crash_shard = Some (victim, at) }
  end
  else if partition then begin
    (* Gray-failure mode: replicated geometry with one seed-chosen server
       partitioned (not crashed) over a seed-chosen window. The window is
       sized so the 20us lease reliably expires inside it (heartbeat
       escalation lands ~90-150us after the cut): every seed exercises a
       false suspicion, the epoch fence, and a post-heal rejoin. The
       scope coin flip alternates the two gray-failure shapes — [Isolate]
       (clients blocked too, park-and-retry) and [Control] (zombie
       primary still reachable by clients, fencing load-bearing). Same
       stream-position discipline as crash mode: drawn after all geometry
       draws. *)
    let ms =
      match kernel with
      | Racy -> 2
      | Micro | Jacobi | Kv -> 2 + Desim.Rng.int rng 2
    in
    let scope =
      if Desim.Rng.bool rng then Samhita.Config.Control
      else Samhita.Config.Isolate
    in
    let victim = Desim.Rng.int rng ms in
    let start = 5_000 + Desim.Rng.int rng 100_000 in
    let dur = 200_000 + Desim.Rng.int rng 300_001 in
    { base with
      Samhita.Config.memory_servers = ms;
      replication = 1;
      lease_interval = Desim.Time.ns 20_000;
      partition_server = Some (victim, scope, start, start + dur) }
  end
  else base

let run_one ?(crash = false) ?(crash_shard = false) ?(partition = false)
    ~kernel ~level ~seed () =
  (* All scenario draws come from a stream independent of the system's own
     seeded streams (engine tie-break, fault policy). *)
  let rng = Desim.Rng.create ~seed:(Desim.Rng.hash3 seed 0x746f72 1) in
  let config =
    config_for ~kernel ~level ~crash ~crash_shard ~partition ~seed rng
  in
  let oracle = Oracle.create ~config () in
  let captured = ref None in
  let on_create sys =
    captured := Some sys;
    Oracle.attach oracle sys
  in
  let finished = ref false in
  (try
     match kernel with
     | Racy ->
       let sys = Workload.Racy.run ~on_create ~config () in
       finished := true;
       let n =
         match Samhita.System.sanitizer sys with
         | Some s -> Analysis.Regcsan.findings_count s
         | None -> -1
       in
       if n <> 4 then
         Oracle.note_violation oracle ~v_class:"sanitizer-count"
           (Printf.sprintf
              "RegCSan reported %d findings, expected exactly 4 (one per \
               seeded defect class)"
              n)
     | Micro ->
       let threads = 2 + Desim.Rng.int rng 3 in
       let alloc =
         List.nth
           [ Workload.Microbench.Local;
             Workload.Microbench.Global;
             Workload.Microbench.Global_strided ]
           (Desim.Rng.int rng 3)
       in
       let p =
         { Workload.Microbench.default_params with
           Workload.Microbench.n_outer = 3;
           m_inner = 2;
           s_rows = 2;
           b_cols = 24;
           warmup = 1;
           alloc }
       in
       let backend = Workload.Samhita_backend.make ~on_create ~config () in
       let r = Workload.Microbench.run backend ~threads p in
       finished := true;
       if r.Workload.Microbench.gsum <> r.Workload.Microbench.expected_gsum
       then
         Oracle.note_violation oracle ~v_class:"checksum"
           (Printf.sprintf
              "micro gsum %.17g <> sequential reference %.17g (lost or \
               corrupted update)"
              r.Workload.Microbench.gsum
              r.Workload.Microbench.expected_gsum)
     | Kv ->
       let threads = 2 + Desim.Rng.int rng 3 in
       let shards = 1 + Desim.Rng.int rng 4 in
       let zipf_s = List.nth [ 0.0; 0.9; 1.4 ] (Desim.Rng.int rng 3) in
       let rate_rps = float_of_int (200_000 + Desim.Rng.int rng 700_001) in
       let requests = 48 + Desim.Rng.int rng 33 in
       let p =
         { Workload.Kv.traffic =
             { Workload.Traffic.clients = 6;
               requests;
               rate_rps;
               keys = 24;
               zipf_s;
               read_fraction = 0.7;
               seed };
           shards;
           service_flops = 16 }
       in
       let backend = Workload.Samhita_backend.make ~on_create ~config () in
       let r = Workload.Kv.run ~record_history:true backend ~threads p in
       finished := true;
       (match Workload.Kv.lost_writes r with
        | [] -> ()
        | (k, want, got) :: _ as l ->
          Oracle.note_violation oracle ~v_class:"checksum"
            (Printf.sprintf
               "kv: %d key(s) disagree with the request stream; first: key \
                %d expected version %d found %d (lost or phantom acked \
                write)"
               (List.length l) k want got));
       Oracle.check_kv_history oracle r.Workload.Kv.history
     | Jacobi ->
       let threads = 2 + Desim.Rng.int rng 3 in
       let n = 8 + (2 * Desim.Rng.int rng 4) in
       let iters = 2 + Desim.Rng.int rng 2 in
       let p = { Workload.Jacobi.default_params with n; iters } in
       let backend = Workload.Samhita_backend.make ~on_create ~config () in
       let r = Workload.Jacobi.run backend ~threads p in
       finished := true;
       let ref_sum, ref_res = Workload.Jacobi.reference p in
       if r.Workload.Jacobi.checksum <> ref_sum then
         Oracle.note_violation oracle ~v_class:"checksum"
           (Printf.sprintf
              "jacobi checksum %.17g <> sequential reference %.17g (lost \
               or corrupted update)"
              r.Workload.Jacobi.checksum ref_sum);
       if r.Workload.Jacobi.residual <> ref_res then
         Oracle.note_violation oracle ~v_class:"checksum"
           (Printf.sprintf
              "jacobi residual %.17g <> sequential reference %.17g"
              r.Workload.Jacobi.residual ref_res)
   with
   | Desim.Engine.Stalled msg ->
     Oracle.note_violation oracle ~v_class:"deadlock" msg
   | exn ->
     Oracle.note_violation oracle ~v_class:"crash" (Printexc.to_string exn));
  (* End-of-run invariants need a quiescent system; a deadlocked or
     crashed run is reported by its primary violation alone. *)
  (match (!finished, !captured) with
   | true, Some sys -> Oracle.finalize oracle sys
   | _ -> ());
  { o_seed = seed;
    o_wall_ns =
      (match !captured with
       | Some sys -> Desim.Time.to_ns (Samhita.System.elapsed sys)
       | None -> 0);
    o_events = Oracle.events oracle;
    o_reads_checked = Oracle.reads_checked oracle;
    o_digest = Oracle.digest oracle;
    o_violations = Oracle.violations oracle;
    o_trace = Oracle.trace_tail oracle;
    o_faults =
      (match !captured with
       | Some sys -> Samhita.Metrics.faults_of_system sys
       | None -> None);
    o_repl =
      (match !captured with
       | Some sys -> Samhita.Metrics.replication_of_system sys
       | None -> None);
    o_detect =
      (match !captured with
       | Some sys -> Samhita.Metrics.detection_of_system sys
       | None -> None);
    o_ctl =
      (match !captured with
       | Some sys -> Samhita.Metrics.control_of_system sys
       | None -> None);
    o_fault_trace =
      (match !captured with
       | Some sys ->
         (match Fabric.Network.faults (Samhita.System.network sys) with
          | Some f -> Fabric.Faults.trace_tail f
          | None -> [])
       | None -> []) }

type summary = {
  s_kernel : kernel;
  s_level : Fabric.Faults.level;
  s_runs : int;
  s_events : int;
  s_reads_checked : int;
  s_faults : Samhita.Metrics.faults;
  s_promotions : int;
  s_takeovers : int;
  s_detect : Samhita.Metrics.detection option;
  s_failures : outcome list;
}

let run ?(replay_check = true) ?(crash = false) ?(crash_shard = false)
    ?(partition = false) ~kernel ~level ~seeds ~base_seed () =
  if seeds <= 0 then invalid_arg "Torture.Runner.run: seeds must be positive";
  let failures = ref [] in
  let events = ref 0 and reads = ref 0 in
  let fd = ref 0 and fr = ref 0 and fo = ref 0 and ft = ref 0 in
  let promotions = ref 0 and takeovers = ref 0 in
  let detect = ref None in
  for i = 0 to seeds - 1 do
    let seed = base_seed + i in
    let o = run_one ~crash ~crash_shard ~partition ~kernel ~level ~seed () in
    let o =
      if not replay_check then o
      else begin
        let o2 =
          run_one ~crash ~crash_shard ~partition ~kernel ~level ~seed ()
        in
        if
          o2.o_digest <> o.o_digest
          || o2.o_events <> o.o_events
          || o2.o_wall_ns <> o.o_wall_ns
        then
          { o with
            o_violations =
              o.o_violations
              @ [ { Oracle.v_class = "nondeterminism";
                    v_message =
                      Printf.sprintf
                        "replay diverged: digest %x vs %x, %d vs %d \
                         events, wall %dns vs %dns"
                        o.o_digest o2.o_digest o.o_events o2.o_events
                        o.o_wall_ns o2.o_wall_ns } ] }
        else o
      end
    in
    events := !events + o.o_events;
    reads := !reads + o.o_reads_checked;
    (match o.o_faults with
     | Some f ->
       fd := !fd + f.Samhita.Metrics.delayed;
       fo := !fo + f.Samhita.Metrics.reordered;
       fr := !fr + f.Samhita.Metrics.dropped;
       ft := !ft + f.Samhita.Metrics.retried
     | None -> ());
    (match o.o_repl with
     | Some r -> promotions := !promotions + r.Samhita.Metrics.promotions
     | None -> ());
    (match o.o_ctl with
     | Some c -> takeovers := !takeovers + c.Samhita.Metrics.takeovers
     | None -> ());
    (match o.o_detect with
     | Some d ->
       let acc =
         match !detect with
         | Some a -> a
         | None ->
           { Samhita.Metrics.suspicions = 0;
             false_suspicions = 0;
             fenced_messages = 0;
             rejoins = 0 }
       in
       detect :=
         Some
           { Samhita.Metrics.suspicions =
               acc.Samhita.Metrics.suspicions + d.Samhita.Metrics.suspicions;
             false_suspicions =
               acc.Samhita.Metrics.false_suspicions
               + d.Samhita.Metrics.false_suspicions;
             fenced_messages =
               acc.Samhita.Metrics.fenced_messages
               + d.Samhita.Metrics.fenced_messages;
             rejoins =
               acc.Samhita.Metrics.rejoins + d.Samhita.Metrics.rejoins }
     | None -> ());
    if o.o_violations <> [] then failures := o :: !failures
  done;
  { s_kernel = kernel;
    s_level = level;
    s_runs = seeds;
    s_events = !events;
    s_reads_checked = !reads;
    s_faults =
      { Samhita.Metrics.delayed = !fd;
        reordered = !fo;
        dropped = !fr;
        retried = !ft };
    s_promotions = !promotions;
    s_takeovers = !takeovers;
    s_detect = !detect;
    s_failures = List.rev !failures }

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>seed %d: %d violation(s)@," o.o_seed
    (List.length o.o_violations);
  List.iter
    (fun (v : Oracle.violation) ->
       Format.fprintf ppf "  [%s] %s@," v.Oracle.v_class v.Oracle.v_message)
    o.o_violations;
  if o.o_trace <> [] then begin
    Format.fprintf ppf "  trace tail (%d events):@," (List.length o.o_trace);
    List.iter (fun l -> Format.fprintf ppf "    %s@," l) o.o_trace
  end;
  if o.o_fault_trace <> [] then begin
    Format.fprintf ppf "  fault trace (%d events):@,"
      (List.length o.o_fault_trace);
    List.iter (fun l -> Format.fprintf ppf "    %s@," l) o.o_fault_trace
  end;
  Format.fprintf ppf "@]"

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>torture %s faults=%s: %d seed(s), %d events, %d reads checked@,\
     injected: %a@,"
    (kernel_name s.s_kernel)
    (Fabric.Faults.level_name s.s_level)
    s.s_runs s.s_events s.s_reads_checked Samhita.Metrics.pp_faults s.s_faults;
  if s.s_promotions > 0 then
    Format.fprintf ppf "crash recovery: %d promotion(s)@," s.s_promotions;
  if s.s_takeovers > 0 then
    Format.fprintf ppf "shard recovery: %d takeover(s)@," s.s_takeovers;
  (match s.s_detect with
   | None -> ()
   | Some d ->
     Format.fprintf ppf
       "gray failures: suspicions=%d false-suspicions=%d fenced=%d \
        rejoins=%d@,"
       d.Samhita.Metrics.suspicions d.Samhita.Metrics.false_suspicions
       d.Samhita.Metrics.fenced_messages d.Samhita.Metrics.rejoins);
  Format.fprintf ppf "%s@]"
    (if s.s_failures = [] then "all seeds clean"
     else Printf.sprintf "%d FAILING seed(s)" (List.length s.s_failures))
