type violation = {
  v_class : string;
  v_message : string;
}

let trace_cap = 64
let max_violations = 32

type t = {
  line_bytes : int;
  (* Word address -> set of values ever published there (home merges). *)
  published : (int, (int64, unit) Hashtbl.t) Hashtbl.t;
  (* (server, line) -> (copy, version) of the line at its last
     publication. *)
  last_line : (int * int, bytes * int) Hashtbl.t;
  (* (thread, word address) -> that thread's last program-order store. *)
  own : (int * int, int64) Hashtbl.t;
  (* Words touched by sub-word/bulk stores: legality not word-expressible. *)
  tainted : (int, unit) Hashtbl.t;
  (* Live allocations: base -> size. *)
  live : (int, int) Hashtbl.t;
  (* (barrier, epoch) -> (arrivals, departures). *)
  episodes : (int * int, int ref * int ref) Hashtbl.t;
  (* (barrier, thread) -> last arrive epoch (must strictly increase). *)
  last_arrive : (int * int, int) Hashtbl.t;
  (* Crash/recovery events, in detection order (single-failure model
     means at most one of each today; lists keep the checks general). *)
  mutable crashes_rev : (int * int * int) list;  (* time, node, server *)
  mutable recoveries_rev : (int * int * int * int) list;
      (* time, failed, promoted, replayed *)
  mutable rejoins_rev : (int * int * int * int) list;
      (* time, zombie, primary, copied *)
  mutable violations_rev : violation list;
  mutable n_violations : int;
  mutable events : int;
  mutable reads_checked : int;
  mutable digest : int;
  trace : string option array;
  mutable trace_next : int;
}

let create ~config () =
  { line_bytes = Samhita.Config.line_bytes config;
    published = Hashtbl.create 4096;
    last_line = Hashtbl.create 256;
    own = Hashtbl.create 4096;
    tainted = Hashtbl.create 64;
    live = Hashtbl.create 64;
    episodes = Hashtbl.create 64;
    last_arrive = Hashtbl.create 64;
    crashes_rev = [];
    recoveries_rev = [];
    rejoins_rev = [];
    violations_rev = [];
    n_violations = 0;
    events = 0;
    reads_checked = 0;
    digest = 0;
    trace = Array.make trace_cap None;
    trace_next = 0 }

let violations t = List.rev t.violations_rev
let crashes t = List.length t.crashes_rev
let recoveries t = List.length t.recoveries_rev
let rejoins t = List.length t.rejoins_rev
let events t = t.events
let reads_checked t = t.reads_checked
let digest t = t.digest

let note_violation t ~v_class msg =
  (* Bounded: one corrupted word can fail thousands of reads; the first
     few localize the bug, the rest only bloat the report. *)
  if t.n_violations < max_violations then begin
    t.violations_rev <- { v_class; v_message = msg } :: t.violations_rev;
    t.n_violations <- t.n_violations + 1
  end

let record t fmt =
  Printf.ksprintf
    (fun s ->
       t.trace.(t.trace_next mod trace_cap) <- Some s;
       t.trace_next <- t.trace_next + 1)
    fmt

let trace_tail t =
  let n = min t.trace_next trace_cap in
  List.filter_map
    (fun i -> t.trace.((t.trace_next - n + i) mod trace_cap))
    (List.init n Fun.id)

(* Order-sensitive stream digest: SplitMix-style fold of each event's
   fields. Same seed, same schedule => same digest, bit for bit. *)
let fold t a b = t.digest <- Desim.Rng.hash3 t.digest a b

let hash_bytes b =
  let h = ref 2166136261 in
  for i = 0 to Bytes.length b - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 16777619 land max_int
  done;
  !h

let word_key v = Int64.to_int v lxor Int64.to_int (Int64.shift_right v 31)

(* ------------------------------------------------------------------ *)
(* Probe callbacks                                                     *)

let taint_words t ~addr ~len =
  let a0 = addr land lnot 7 and a1 = (addr + len - 1) land lnot 7 in
  let a = ref a0 in
  while !a <= a1 do
    Hashtbl.replace t.tainted !a ();
    a := !a + 8
  done

let on_read t ~thread ~time ~addr ~len ~value =
  t.events <- t.events + 1;
  fold t 1 (thread lxor (addr lsl 8) lxor (len lsl 4) lxor time);
  match value with
  | None -> ()
  | Some v ->
    fold t 2 (word_key v);
    if not (Hashtbl.mem t.tainted addr) then begin
      t.reads_checked <- t.reads_checked + 1;
      let legal =
        v = 0L
        || (match Hashtbl.find_opt t.own (thread, addr) with
            | Some w -> w = v
            | None -> false)
        || (match Hashtbl.find_opt t.published addr with
            | Some set -> Hashtbl.mem set v
            | None -> false)
      in
      if not legal then begin
        record t "t=%d READ-VIOLATION thread=%d addr=0x%x got=%Lx" time
          thread addr v;
        note_violation t ~v_class:"illegal-read"
          (Printf.sprintf
             "thread %d read 0x%Lx at addr 0x%x (t=%dns): not its own last \
              store, never published at that word, and not the initial zero"
             thread v addr time)
      end
    end

let on_write t ~thread ~time ~addr ~len ~value =
  t.events <- t.events + 1;
  fold t 3 (thread lxor (addr lsl 8) lxor (len lsl 4) lxor time);
  match value with
  | Some v ->
    fold t 4 (word_key v);
    Hashtbl.replace t.own (thread, addr) v
  | None -> taint_words t ~addr ~len

let on_publish t ~thread ~time ~server ~line ~version ~data =
  t.events <- t.events + 1;
  fold t 5 (thread lxor (server lsl 4) lxor (line lsl 8) lxor version);
  fold t 6 (hash_bytes data lxor time);
  record t "t=%d publish thread=%d server=%d line=%d v=%d" time thread
    server line version;
  (* Split-brain fence check: once recovery has deposed a primary, no
     client may ever again publish through it — the epoch fence must
     reject such round trips before any state mutates. A publication at
     the deposed server strictly after its recovery means two primaries
     served the same stripe. *)
  List.iter
    (fun (rt, failed, _, _) ->
       if failed = server && time > rt then
         note_violation t ~v_class:"split-brain"
           (Printf.sprintf
              "server %d served a publication at t=%dns but was deposed by \
               recovery at t=%dns (zombie primary not fenced)"
              server time rt))
    t.recoveries_rev;
  let base = line * t.line_bytes in
  let words = t.line_bytes / 8 in
  for w = 0 to words - 1 do
    let v = Bytes.get_int64_le data (w * 8) in
    if v <> 0L then begin
      let addr = base + (w * 8) in
      let set =
        match Hashtbl.find_opt t.published addr with
        | Some s -> s
        | None ->
          let s = Hashtbl.create 4 in
          Hashtbl.replace t.published addr s;
          s
      in
      Hashtbl.replace set v ()
    end
  done;
  (* Keep a snapshot (the probe's buffer is the home's live line). *)
  Hashtbl.replace t.last_line (server, line) (Bytes.copy data, version)

let on_malloc t ~thread ~time ~addr ~bytes =
  t.events <- t.events + 1;
  fold t 7 (thread lxor (addr lsl 8) lxor bytes lxor time);
  record t "t=%d malloc thread=%d addr=0x%x bytes=%d" time thread addr bytes;
  Hashtbl.iter
    (fun base size ->
       if addr < base + size && base < addr + bytes then
         note_violation t ~v_class:"alloc-overlap"
           (Printf.sprintf
              "thread %d malloc [0x%x,0x%x) overlaps live block [0x%x,0x%x)"
              thread addr (addr + bytes) base (base + size)))
    t.live;
  Hashtbl.replace t.live addr bytes

let on_free t ~thread ~time ~addr ~bytes =
  t.events <- t.events + 1;
  fold t 8 (thread lxor (addr lsl 8) lxor bytes lxor time);
  record t "t=%d free thread=%d addr=0x%x bytes=%d" time thread addr bytes;
  match Hashtbl.find_opt t.live addr with
  | Some size when size = bytes -> Hashtbl.remove t.live addr
  | Some size ->
    note_violation t ~v_class:"alloc-invalid-free"
      (Printf.sprintf
         "thread %d freed 0x%x with %d bytes but the live block is %d bytes"
         thread addr bytes size)
  | None ->
    note_violation t ~v_class:"alloc-invalid-free"
      (Printf.sprintf "thread %d freed 0x%x which is not a live block"
         thread addr)

let on_barrier t ~thread ~time ~barrier ~epoch ~phase =
  t.events <- t.events + 1;
  let ph = match phase with `Arrive -> 0 | `Depart -> 1 in
  fold t 9 (thread lxor (barrier lsl 4) lxor (epoch lsl 8) lxor ph);
  record t "t=%d barrier-%s thread=%d barrier=%d epoch=%d" time
    (if ph = 0 then "arrive" else "depart")
    thread barrier epoch;
  let arrivals, departures =
    match Hashtbl.find_opt t.episodes (barrier, epoch) with
    | Some c -> c
    | None ->
      let c = (ref 0, ref 0) in
      Hashtbl.replace t.episodes (barrier, epoch) c;
      c
  in
  match phase with
  | `Arrive ->
    incr arrivals;
    (match Hashtbl.find_opt t.last_arrive (barrier, thread) with
     | Some prev when epoch <= prev ->
       note_violation t ~v_class:"barrier-epoch"
         (Printf.sprintf
            "thread %d arrived at barrier %d with epoch %d after epoch %d"
            thread barrier epoch prev)
     | _ -> ());
    Hashtbl.replace t.last_arrive (barrier, thread) epoch
  | `Depart ->
    incr departures;
    (match Hashtbl.find_opt t.last_arrive (barrier, thread) with
     | Some e when e = epoch -> ()
     | Some e ->
       note_violation t ~v_class:"barrier-epoch"
         (Printf.sprintf
            "thread %d departed barrier %d at epoch %d but arrived at %d"
            thread barrier epoch e)
     | None ->
       note_violation t ~v_class:"barrier-epoch"
         (Printf.sprintf
            "thread %d departed barrier %d (epoch %d) without arriving"
            thread barrier epoch))

let on_sync t ~thread ~time ~op =
  t.events <- t.events + 1;
  let tag, id =
    match op with
    | Samhita.Probe.Lock_acquired l ->
      record t "t=%d lock-acquired thread=%d lock=%d" time thread l;
      (10, l)
    | Samhita.Probe.Unlock l ->
      record t "t=%d unlock thread=%d lock=%d" time thread l;
      (11, l)
    | Samhita.Probe.Cond_signal c -> (12, c)
    | Samhita.Probe.Cond_wake c -> (13, c)
  in
  fold t tag (thread lxor (id lsl 8) lxor time)

let on_crash t ~time ~node ~server =
  t.events <- t.events + 1;
  fold t 14 (node lxor (server lsl 8) lxor time);
  record t "t=%d CRASH node=%d server=%d" time node server;
  t.crashes_rev <- (time, node, server) :: t.crashes_rev

let on_recovery t ~time ~failed ~promoted ~replayed =
  t.events <- t.events + 1;
  fold t 15 (failed lxor (promoted lsl 8) lxor (replayed lsl 16) lxor time);
  record t "t=%d RECOVERY failed=%d promoted=%d replayed=%d" time failed
    promoted replayed;
  t.recoveries_rev <- (time, failed, promoted, replayed) :: t.recoveries_rev

let on_rejoin t ~time ~zombie ~primary ~copied =
  t.events <- t.events + 1;
  fold t 16 (zombie lxor (primary lsl 8) lxor (copied lsl 16) lxor time);
  record t "t=%d REJOIN zombie=%d primary=%d copied=%d" time zombie primary
    copied;
  t.rejoins_rev <- (time, zombie, primary, copied) :: t.rejoins_rev

let probe t =
  let ns = Desim.Time.to_ns in
  { Samhita.Probe.on_read = (fun ~thread ~time ~addr ~len ~value ->
        on_read t ~thread ~time:(ns time) ~addr ~len ~value);
    on_write = (fun ~thread ~time ~addr ~len ~value ->
        on_write t ~thread ~time:(ns time) ~addr ~len ~value);
    on_publish = (fun ~thread ~time ~server ~line ~version ~data ->
        on_publish t ~thread ~time:(ns time) ~server ~line ~version ~data);
    on_malloc = (fun ~thread ~time ~addr ~bytes ->
        on_malloc t ~thread ~time:(ns time) ~addr ~bytes);
    on_free = (fun ~thread ~time ~addr ~bytes ->
        on_free t ~thread ~time:(ns time) ~addr ~bytes);
    on_barrier = (fun ~thread ~time ~barrier ~epoch ~phase ->
        on_barrier t ~thread ~time:(ns time) ~barrier ~epoch ~phase);
    on_sync = (fun ~thread ~time ~op -> on_sync t ~thread ~time:(ns time) ~op);
    on_crash = (fun ~time ~node ~server ->
        on_crash t ~time:(ns time) ~node ~server);
    on_recovery = (fun ~time ~failed ~promoted ~replayed ->
        on_recovery t ~time:(ns time) ~failed ~promoted ~replayed);
    on_rejoin = (fun ~time ~zombie ~primary ~copied ->
        on_rejoin t ~time:(ns time) ~zombie ~primary ~copied) }

let attach t sys = Samhita.System.set_probe sys (probe t)

(* ------------------------------------------------------------------ *)
(* End-of-run invariants                                               *)

let finalize t sys =
  (* Twin/dirty residue: each kernel ends at a consistency point, so every
     cached line must be clean — leftover twins mean a flush path forgot
     to clean (and would re-flush a stale diff later). *)
  List.iter
    (fun ctx ->
       List.iter
         (fun (e : Samhita.Cache.entry) ->
            if e.Samhita.Cache.twin <> None
               || e.Samhita.Cache.dirty_pages <> 0
            then
              note_violation t ~v_class:"twin-leak"
                (Printf.sprintf
                   "thread %d ended with line %d still dirty (twin=%b \
                    dirty_pages=0x%x)"
                   (Samhita.Thread_ctx.id ctx)
                   e.Samhita.Cache.line
                   (e.Samhita.Cache.twin <> None)
                   e.Samhita.Cache.dirty_pages))
         (Samhita.Cache.entries (Samhita.Thread_ctx.cache ctx)))
    (Samhita.System.threads sys);
  (* Home divergence: home lines change only through probed merge paths,
     so each must still equal its last published snapshot (this also
     checks diff application is idempotent with respect to replays the
     retry layer could cause). *)
  let servers = Samhita.System.servers sys in
  let failed_servers =
    List.map (fun (_, _, srv) -> srv) t.crashes_rev
  in
  Hashtbl.iter
    (fun (server, line) (snap, _version) ->
       (* A crashed server's store is frozen mid-protocol: a mirror acked
          by its backup may never have reached it, so only live servers
          must match their last publication. The crashed stripe's fate is
          checked against the promoted replica below. *)
       if not (List.mem server failed_servers) then
         let live = Samhita.Memory_server.line servers.(server) line in
         if not (Bytes.equal live snap) then
           note_violation t ~v_class:"home-divergence"
             (Printf.sprintf
                "server %d line %d diverged from its last observed \
                 publication"
                server line))
    t.last_line;
  (* Post-recovery invariants, per completed recovery:
     - version consistency: the promoted replica must be at least as new
       as every publication acknowledged by the dead primary;
     - durability: no acknowledged write lost — every nonzero word of the
       dead primary's last published snapshot must either survive on the
       promoted replica or have been overwritten by another published
       value. *)
  List.iter
    (fun (_, failed, promoted, _) ->
       let psrv = servers.(promoted) in
       Hashtbl.iter
         (fun (server, line) (snap, version) ->
            if server = failed then begin
              let pv = Samhita.Memory_server.version psrv line in
              if pv < version then
                note_violation t ~v_class:"stale-promotion"
                  (Printf.sprintf
                     "promoted server %d holds line %d at version %d but \
                      the crashed primary %d acknowledged version %d"
                     promoted line pv failed version);
              let live = Samhita.Memory_server.line psrv line in
              let base = line * t.line_bytes in
              for w = 0 to (t.line_bytes / 8) - 1 do
                let v = Bytes.get_int64_le snap (w * 8) in
                if v <> 0L then begin
                  let cur = Bytes.get_int64_le live (w * 8) in
                  let legal =
                    cur = v
                    || (match Hashtbl.find_opt t.published (base + (w * 8))
                        with
                        | Some set -> Hashtbl.mem set cur
                        | None -> false)
                  in
                  if not legal then
                    note_violation t ~v_class:"lost-acked-write"
                      (Printf.sprintf
                         "line %d word at 0x%x: crashed primary %d had \
                          acknowledged 0x%Lx but promoted server %d holds \
                          0x%Lx (never published)"
                         line
                         (base + (w * 8))
                         failed v promoted cur)
                end
              done
            end)
         t.last_line)
    t.recoveries_rev;
  (* Rejoin convergence: after a falsely suspected server is resynced
     back in as a backup, it must end the run bit-identical to the
     primary it now backs, for every line that primary currently serves —
     the resync copy plus post-heal mirroring leave no stale residue.
     Lines are drawn from the publication history (the only lines with
     observable state) and filtered through the directory so repointed
     stripes are compared against their current home. *)
  (let dir = Samhita.System.directory sys in
   let cfg = Samhita.System.config sys in
   List.iter
     (fun (_, zombie, primary, _) ->
        let zsrv = servers.(zombie) and psrv = servers.(primary) in
        let checked = Hashtbl.create 64 in
        Hashtbl.iter
          (fun (_, line) _ ->
             if
               (not (Hashtbl.mem checked line))
               && Samhita.Directory.server_of_line dir cfg ~line = primary
             then begin
               Hashtbl.replace checked line ();
               let pv = Samhita.Memory_server.version psrv line in
               let zv = Samhita.Memory_server.version zsrv line in
               if zv <> pv then
                 note_violation t ~v_class:"rejoin-divergence"
                   (Printf.sprintf
                      "rejoined server %d holds line %d at version %d but \
                       its primary %d is at version %d"
                      zombie line zv primary pv)
               else if
                 not
                   (Bytes.equal
                      (Samhita.Memory_server.line zsrv line)
                      (Samhita.Memory_server.line psrv line))
               then
                 note_violation t ~v_class:"rejoin-divergence"
                   (Printf.sprintf
                      "rejoined server %d line %d (version %d) differs \
                       bytewise from its primary %d"
                      zombie line zv primary)
             end)
          t.last_line)
     t.rejoins_rev);
  (* Barrier episodes must balance: every released thread departs. *)
  Hashtbl.iter
    (fun (barrier, epoch) (arrivals, departures) ->
       if !arrivals <> !departures then
         note_violation t ~v_class:"barrier-epoch"
           (Printf.sprintf
              "barrier %d epoch %d: %d arrivals but %d departures" barrier
              epoch !arrivals !departures))
    t.episodes

(* ------------------------------------------------------------------ *)
(* KV session guarantees *)

let check_kv_history t (history : Workload.Kv.event array) =
  (* The KV kernel records events in per-worker processing order, and a
     client's requests all run on one worker ([client mod threads]), so a
     linear scan sees every client's operations in program order — which
     is all the session guarantees quantify over. *)
  let last_put : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let last_seen : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (e : Workload.Kv.event) ->
       let sk = (e.Workload.Kv.e_client, e.Workload.Kv.e_key) in
       let v = e.Workload.Kv.e_version in
       match e.Workload.Kv.e_op with
       | Workload.Traffic.Put ->
         (* The written version is also an observation of the key's
            state: later reads must not travel back behind it. *)
         Hashtbl.replace last_put sk v;
         Hashtbl.replace last_seen sk v
       | Workload.Traffic.Get ->
         (match Hashtbl.find_opt last_put sk with
          | Some w when v < w ->
            note_violation t ~v_class:"kv-read-your-writes"
              (Printf.sprintf
                 "client %d key %d: read version %d after writing version \
                  %d (own acked write invisible)"
                 e.Workload.Kv.e_client e.Workload.Kv.e_key v w)
          | _ -> ());
         (match Hashtbl.find_opt last_seen sk with
          | Some seen when v < seen ->
            note_violation t ~v_class:"kv-monotonic-reads"
              (Printf.sprintf
                 "client %d key %d: read version %d after observing \
                  version %d (state travelled backwards)"
                 e.Workload.Kv.e_client e.Workload.Kv.e_key v seen)
          | _ -> ());
         Hashtbl.replace last_seen sk v)
    history
