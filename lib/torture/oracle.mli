(** The torture harness's linearizable-memory oracle.

    A shadow of the global address space fed by a {!Samhita.Probe}: every
    home-side merge (diff or update-log application) is recorded as a
    {e publication}, and every word-sized [read] is checked against the
    set of RegC-legal values for its address —

    - the initial zero,
    - any value this thread itself stored there (program order), or
    - any value ever published at the word (RegC permits reading stale
      published data absent a happens-before edge; the {e full} history,
      not just the newest value, is legal).

    A read outside this set means protocol corruption: a diff clobbered a
    concurrent writer's bytes, a patch applied garbage, a fetch raced a
    merge. Words touched by sub-word or bulk stores are tainted and
    skipped (their legality is not word-expressible); lost updates are
    caught structurally by the runner's kernel-checksum comparison.

    {!finalize} adds end-of-run invariants: no twin/dirty residue in any
    cache (a consistency point must clean what it flushes), home lines
    bit-identical to their last observed publication (nothing mutates a
    home unprobed), balanced barrier episodes, and allocator sanity
    (overlap, invalid free) accumulated during the run.

    Every event also folds into a stream {!digest}, so two runs of one
    seed can be compared bit-for-bit, and into a bounded trace ring whose
    {!trace_tail} contextualizes a failure. *)

type violation = {
  v_class : string;  (** e.g. ["illegal-read"], ["twin-leak"], ["deadlock"]. *)
  v_message : string;
}

type t

val create : config:Samhita.Config.t -> unit -> t

val probe : t -> Samhita.Probe.t

val attach : t -> Samhita.System.t -> unit
(** [Samhita.System.set_probe] with this oracle's {!probe}; call from the
    backend's [on_create] (before any spawn). *)

val note_violation : t -> v_class:string -> string -> unit
(** Record a violation found outside the probe stream (checksum mismatch,
    deadlock, nondeterminism) so one report carries everything. *)

val finalize : t -> Samhita.System.t -> unit
(** Run the end-of-run invariant checks against the finished system. *)

val check_kv_history : t -> Workload.Kv.event array -> unit
(** Check a KV serving history (per-worker processing order, which
    embeds per-client program order) for the session guarantees the
    sharded-lock protocol must provide: {e read-your-writes} (a client's
    Get never returns a version older than its own last acked Put to
    that key) and {e monotonic reads} (the versions a client observes
    for a key never decrease). Violations are recorded with classes
    ["kv-read-your-writes"] and ["kv-monotonic-reads"]. *)

val violations : t -> violation list
(** All violations, in detection order. *)

val events : t -> int
(** Probe events observed. *)

val crashes : t -> int
(** Fail-stop crash detections observed (0 or 1 today). *)

val recoveries : t -> int
(** Completed recoveries observed. {!finalize} checks each one for
    version-consistent promotion and no lost acknowledged write. *)

val rejoins : t -> int
(** Zombie-rejoin events observed (a falsely suspected server resynced
    back in as a backup after its partition healed). {!finalize} checks
    each one for convergence: the rejoined replica must end the run
    bit-identical to the primary it backs. A publication routed through
    a deposed primary after its recovery is flagged as ["split-brain"]
    as it happens. *)

val reads_checked : t -> int
(** Word reads actually checked against the legality set (i.e. excluding
    tainted words) — a vacuity guard for tests. *)

val digest : t -> int
(** Order-sensitive fold over the whole event stream; equal digests mean
    the two runs observed identical event sequences. *)

val trace_tail : t -> string list
(** The last events (bounded ring), oldest first — the minimized context
    printed with a failing seed. *)
