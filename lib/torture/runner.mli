(** RegCTorture: seeded exploration of the protocol state space.

    Each seed is one fully deterministic run: the seed derives a system
    geometry (line size, cache capacity, server/thread layout, protocol
    knobs), a schedule-fuzzing tie-break ([Config.shuffle]) and a fabric
    fault policy ([Config.fault_level]) — then drives a {!kernel} with the
    {!Oracle} attached and the result checksummed against the kernel's
    sequential reference. Running a seed twice must produce bit-identical
    event streams; {!run} verifies that for every seed. *)

type kernel = Micro | Jacobi | Kv | Racy
(** [Kv] tortures the serving scenario: seed-derived shard count, key
    skew and offered rate; checked for exact final versions against the
    request stream ({!Workload.Kv.lost_writes}) and for per-client
    session guarantees ({!Oracle.check_kv_history}). *)

val kernel_name : kernel -> string
val kernel_of_string : string -> (kernel, string) result

type outcome = {
  o_seed : int;
  o_wall_ns : int;
  o_events : int;
  o_reads_checked : int;
  o_digest : int;
  o_violations : Oracle.violation list;
  o_trace : string list;  (** Oracle trace tail, oldest first. *)
  o_faults : Samhita.Metrics.faults option;
  o_repl : Samhita.Metrics.replication option;
      (** Crash-fault-tolerance counters; [None] outside crash mode. *)
  o_detect : Samhita.Metrics.detection option;
      (** Failure-detection counters; [None] outside partition mode. *)
  o_ctl : Samhita.Metrics.control option;
      (** Control-plane counters; [None] outside shard-crash mode. *)
  o_fault_trace : string list;
      (** The fabric fault policy's event ring (drops, reorders,
          partition blocks — each with its instant), oldest first; the
          injection context printed with a failing seed. *)
}

val run_one :
  ?crash:bool ->
  ?crash_shard:bool ->
  ?partition:bool ->
  kernel:kernel -> level:Fabric.Faults.level -> seed:int -> unit -> outcome
(** One deterministic torture run. Deadlock ([Desim.Engine.Stalled]) and
    kernel crashes are reported as violations, never raised. With [crash]
    (default off) the seed additionally derives a replicated geometry
    (primary-backup, short leases) and a fail-stop crash of one
    seed-chosen memory server at a seed-chosen instant; the oracle then
    also checks the post-recovery invariants ({!Oracle}). With
    [crash_shard] (default off, mutually exclusive with [crash]) the seed
    instead derives a sharded control plane (2..4 manager shards) and a
    fail-stop crash of one seed-chosen non-zero shard; the ring successor
    absorbs the dead shard's sync objects mid-run and every oracle
    invariant must hold across the takeover. With [partition] (default
    off, mutually exclusive with both) the seed derives a replicated
    geometry and a {e gray failure}: one server partitioned over a
    bounded window (scope seed-chosen between [Isolate] and [Control]),
    long enough that its lease falsely expires — the oracle then also
    checks the fencing invariants (no split-brain, no lost acked write
    across the false suspicion, rejoin convergence). *)

type summary = {
  s_kernel : kernel;
  s_level : Fabric.Faults.level;
  s_runs : int;
  s_events : int;
  s_reads_checked : int;
  s_faults : Samhita.Metrics.faults;  (** Summed over all runs. *)
  s_promotions : int;  (** Backup promotions summed over all runs. *)
  s_takeovers : int;  (** Shard takeovers summed over all runs. *)
  s_detect : Samhita.Metrics.detection option;
      (** Failure-detection counters summed over all runs; [None] outside
          partition mode. *)
  s_failures : outcome list;  (** Seeds with at least one violation. *)
}

val run :
  ?replay_check:bool ->
  ?crash:bool ->
  ?crash_shard:bool ->
  ?partition:bool ->
  kernel:kernel ->
  level:Fabric.Faults.level ->
  seeds:int -> base_seed:int -> unit -> summary
(** Torture [seeds] consecutive seeds starting at [base_seed]. With
    [replay_check] (default on) every seed runs twice and any divergence
    in digest, event count or makespan is itself a ["nondeterminism"]
    violation. [crash], [crash_shard] and [partition] are passed through
    to {!run_one}. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** Failing-seed report: violations then the trace tail. *)

val pp_summary : Format.formatter -> summary -> unit
