type level = Off | Low | Medium | High

let level_name = function
  | Off -> "off"
  | Low -> "low"
  | Medium -> "medium"
  | High -> "high"

let level_of_string = function
  | "off" | "none" -> Ok Off
  | "low" -> Ok Low
  | "medium" | "med" -> Ok Medium
  | "high" -> Ok High
  | s -> Error (Printf.sprintf "unknown fault level %S" s)

(* Per-level perturbation intensities. Jitter models per-message service
   variation (sub-RTT); reorder-scale delays are several RTTs, long enough
   that messages on other (src,dst) pairs overtake; drops are transient
   losses, bounded per pair so retry always converges. *)
type params = {
  jitter_p : float;
  jitter_max : int;  (* ns *)
  reorder_p : float;
  reorder_max : int;  (* ns *)
  drop_p : float;
  max_consecutive_drops : int;
}

let params_of_level = function
  | Off ->
    { jitter_p = 0.; jitter_max = 0; reorder_p = 0.; reorder_max = 0;
      drop_p = 0.; max_consecutive_drops = 0 }
  | Low ->
    { jitter_p = 0.2; jitter_max = 400; reorder_p = 0.02;
      reorder_max = 4_000; drop_p = 0.005; max_consecutive_drops = 1 }
  | Medium ->
    { jitter_p = 0.5; jitter_max = 1_500; reorder_p = 0.08;
      reorder_max = 12_000; drop_p = 0.02; max_consecutive_drops = 2 }
  | High ->
    { jitter_p = 0.8; jitter_max = 4_000; reorder_p = 0.2;
      reorder_max = 30_000; drop_p = 0.08; max_consecutive_drops = 3 }

type t = {
  level : level;
  p : params;
  rng : Desim.Rng.t;
  (* Fail-stop crash spec: this node is dead from the given instant on.
     At most one node crashes per run (single-failure model). *)
  crash : (int * Desim.Time.t) option;
  (* Delivery-order floor per (src,dst): the fabric reorders traffic only
     across distinct pairs (differential jitter); within one pair it
     delivers in order, like a reliable-connection QP. *)
  last_arrival : (int * int, Desim.Time.t) Hashtbl.t;
  (* Consecutive drops per (src,dst); capped so losses stay transient. *)
  drops_in_row : (int * int, int) Hashtbl.t;
  mutable delayed : int;
  mutable reordered : int;
  mutable dropped : int;
  mutable retried : int;
  mutable dead_sends : int;
}

let create ?crash ~seed ~level () =
  { level;
    p = params_of_level level;
    rng = Desim.Rng.create ~seed;
    crash;
    last_arrival = Hashtbl.create 64;
    drops_in_row = Hashtbl.create 64;
    delayed = 0;
    reordered = 0;
    dropped = 0;
    retried = 0;
    dead_sends = 0 }

let level t = t.level
let crash t = t.crash

(* Deadness is a pure function of time, not a mutable flag: protocol
   timing chains are computed eagerly at future instants, so callers need
   to ask "is this node dead at instant T?" for arbitrary T. *)
let node_dead t ~node ~at =
  match t.crash with
  | Some (n, since) -> n = node && Desim.Time.( <= ) since at
  | None -> false

let note_dead_send t = t.dead_sends <- t.dead_sends + 1

let should_drop t ~src ~dst =
  if t.p.drop_p = 0. then false
  else begin
    let key = (src, dst) in
    let row = Option.value (Hashtbl.find_opt t.drops_in_row key) ~default:0 in
    if row >= t.p.max_consecutive_drops then false
    else if Desim.Rng.float t.rng 1.0 < t.p.drop_p then begin
      Hashtbl.replace t.drops_in_row key (row + 1);
      t.dropped <- t.dropped + 1;
      true
    end
    else false
  end

let perturb t ~src ~dst ~arrival =
  let key = (src, dst) in
  Hashtbl.remove t.drops_in_row key;
  let extra = ref 0 in
  if t.p.jitter_p > 0. && Desim.Rng.float t.rng 1.0 < t.p.jitter_p then begin
    extra := !extra + 1 + Desim.Rng.int t.rng t.p.jitter_max;
    t.delayed <- t.delayed + 1
  end;
  if t.p.reorder_p > 0. && Desim.Rng.float t.rng 1.0 < t.p.reorder_p
  then begin
    extra := !extra + 1 + Desim.Rng.int t.rng t.p.reorder_max;
    t.reordered <- t.reordered + 1
  end;
  let arrival = Desim.Time.add arrival !extra in
  let arrival =
    match Hashtbl.find_opt t.last_arrival key with
    | Some floor when Desim.Time.( <= ) arrival floor ->
      Desim.Time.add floor 1
    | _ -> arrival
  in
  Hashtbl.replace t.last_arrival key arrival;
  arrival

let note_retry t = t.retried <- t.retried + 1

let messages_delayed t = t.delayed
let messages_reordered t = t.reordered
let messages_dropped t = t.dropped
let messages_retried t = t.retried
let messages_dead t = t.dead_sends

let pp ppf t =
  Format.fprintf ppf "faults=%s delayed=%d reordered=%d dropped=%d retried=%d"
    (level_name t.level) t.delayed t.reordered t.dropped t.retried;
  match t.crash with
  | None -> ()
  | Some (n, at) ->
    Format.fprintf ppf " crash=node%d@%a dead-sends=%d" n Desim.Time.pp at
      t.dead_sends
