type level = Off | Low | Medium | High

let level_name = function
  | Off -> "off"
  | Low -> "low"
  | Medium -> "medium"
  | High -> "high"

let level_of_string = function
  | "off" | "none" -> Ok Off
  | "low" -> Ok Low
  | "medium" | "med" -> Ok Medium
  | "high" -> Ok High
  | s -> Error (Printf.sprintf "unknown fault level %S" s)

(* Per-level perturbation intensities. Jitter models per-message service
   variation (sub-RTT); reorder-scale delays are several RTTs, long enough
   that messages on other (src,dst) pairs overtake; drops are transient
   losses, bounded per pair so retry always converges. *)
type params = {
  jitter_p : float;
  jitter_max : int;  (* ns *)
  reorder_p : float;
  reorder_max : int;  (* ns *)
  drop_p : float;
  max_consecutive_drops : int;
}

let params_of_level = function
  | Off ->
    { jitter_p = 0.; jitter_max = 0; reorder_p = 0.; reorder_max = 0;
      drop_p = 0.; max_consecutive_drops = 0 }
  | Low ->
    { jitter_p = 0.2; jitter_max = 400; reorder_p = 0.02;
      reorder_max = 4_000; drop_p = 0.005; max_consecutive_drops = 1 }
  | Medium ->
    { jitter_p = 0.5; jitter_max = 1_500; reorder_p = 0.08;
      reorder_max = 12_000; drop_p = 0.02; max_consecutive_drops = 2 }
  | High ->
    { jitter_p = 0.8; jitter_max = 4_000; reorder_p = 0.2;
      reorder_max = 30_000; drop_p = 0.08; max_consecutive_drops = 3 }

(* Extra one-way latency on every message touching a stalled node while
   its stall window is open. Several RTTs on the modeled fabrics: enough
   to blow retry timeouts (and, if the window outlives the backoff
   budget, to trigger a false suspicion) without stopping traffic. *)
let stall_penalty_ns = 25_000

(* Ring capacity of the in-memory fault trace (see trace_tail). *)
let trace_cap = 64

type t = {
  level : level;
  p : params;
  seed : int;
  rng : Desim.Rng.t;
  (* Fail-stop crash spec: this node is dead from the given instant on.
     At most one node crashes per run (single-failure model). *)
  crash : (int * Desim.Time.t) option;
  (* Gray-failure specs. A partition makes (victim, peer) pairs
     unreachable inside [start, heal): peers = [] isolates the victim
     from everyone, a non-empty list blocks only those pairs. A stall
     adds stall_penalty_ns to every delivery touching the victim inside
     its window. Unlike crash, the victim keeps executing throughout and
     both windows heal. *)
  partition : (int * int list * Desim.Time.t * Desim.Time.t) option;
  stall : (int * Desim.Time.t * Desim.Time.t) option;
  (* Delivery-order floor per (src,dst): the fabric reorders traffic only
     across distinct pairs (differential jitter); within one pair it
     delivers in order, like a reliable-connection QP. *)
  last_arrival : (int * int, Desim.Time.t) Hashtbl.t;
  (* Consecutive drops per (src,dst); capped so losses stay transient. *)
  drops_in_row : (int * int, int) Hashtbl.t;
  mutable delayed : int;
  mutable reordered : int;
  mutable dropped : int;
  mutable retried : int;
  mutable dead_sends : int;
  mutable unreachable_sends : int;
  (* Bounded ring of injected events with instants, for failing-seed
     artifacts: a failure is diagnosable from the log alone. *)
  trace : string option array;
  mutable trace_next : int;
  mutable trace_total : int;
}

let create ?crash ?partition ?stall ~seed ~level () =
  { level;
    p = params_of_level level;
    seed;
    rng = Desim.Rng.create ~seed;
    crash;
    partition;
    stall;
    last_arrival = Hashtbl.create 64;
    drops_in_row = Hashtbl.create 64;
    delayed = 0;
    reordered = 0;
    dropped = 0;
    retried = 0;
    dead_sends = 0;
    unreachable_sends = 0;
    trace = Array.make trace_cap None;
    trace_next = 0;
    trace_total = 0 }

let level t = t.level
let crash t = t.crash
let partition t = t.partition
let stall t = t.stall

let record t ev =
  t.trace.(t.trace_next) <- Some ev;
  t.trace_next <- (t.trace_next + 1) mod trace_cap;
  t.trace_total <- t.trace_total + 1

let trace_tail t =
  let tail = ref [] in
  for i = trace_cap - 1 downto 0 do
    let slot = (t.trace_next + i) mod trace_cap in
    match t.trace.(slot) with
    | Some ev -> tail := ev :: !tail
    | None -> ()
  done;
  let tail = !tail in
  if t.trace_total > trace_cap then
    Printf.sprintf "... (%d earlier fault events elided)"
      (t.trace_total - trace_cap)
    :: tail
  else tail

(* Deadness is a pure function of time, not a mutable flag: protocol
   timing chains are computed eagerly at future instants, so callers need
   to ask "is this node dead at instant T?" for arbitrary T. *)
let node_dead t ~node ~at =
  match t.crash with
  | Some (n, since) -> n = node && Desim.Time.( <= ) since at
  | None -> false

let in_window ~start ~heal ~at =
  Desim.Time.( <= ) start at && Desim.Time.( < ) at heal

(* If the (src,dst) pair is blocked by an open partition window, return
   the victim node the sender should blame — always the partitioned node,
   never the other endpoint, so escalation suspects the right server no
   matter which leg of a round trip hit the wall. Pure in time, like
   node_dead, for the same eager-timing reason. *)
let unreachable_peer t ~src ~dst ~at =
  match t.partition with
  | Some (victim, peers, start, heal)
    when in_window ~start ~heal ~at
         && (src = victim || dst = victim)
         && (peers = [] || List.mem (if src = victim then dst else src) peers)
    -> Some victim
  | _ -> None

let note_unreachable t ~src ~dst ~at =
  t.unreachable_sends <- t.unreachable_sends + 1;
  record t
    (Printf.sprintf "t=%dns unreachable %d->%d (partition)"
       (Desim.Time.to_ns at) src dst)

let note_dead_send t = t.dead_sends <- t.dead_sends + 1

let should_drop ?at t ~src ~dst =
  if t.p.drop_p = 0. then false
  else begin
    let key = (src, dst) in
    let row = Option.value (Hashtbl.find_opt t.drops_in_row key) ~default:0 in
    if row >= t.p.max_consecutive_drops then false
    else if Desim.Rng.float t.rng 1.0 < t.p.drop_p then begin
      Hashtbl.replace t.drops_in_row key (row + 1);
      t.dropped <- t.dropped + 1;
      (match at with
       | Some at ->
         record t
           (Printf.sprintf "t=%dns drop %d->%d (%d in a row)"
              (Desim.Time.to_ns at) src dst (row + 1))
       | None -> ());
      true
    end
    else false
  end

let perturb t ~src ~dst ~arrival =
  let key = (src, dst) in
  Hashtbl.remove t.drops_in_row key;
  let extra = ref 0 in
  if t.p.jitter_p > 0. && Desim.Rng.float t.rng 1.0 < t.p.jitter_p then begin
    extra := !extra + 1 + Desim.Rng.int t.rng t.p.jitter_max;
    t.delayed <- t.delayed + 1
  end;
  if t.p.reorder_p > 0. && Desim.Rng.float t.rng 1.0 < t.p.reorder_p
  then begin
    let d = 1 + Desim.Rng.int t.rng t.p.reorder_max in
    extra := !extra + d;
    t.reordered <- t.reordered + 1;
    record t
      (Printf.sprintf "t=%dns reorder %d->%d (+%dns)"
         (Desim.Time.to_ns arrival) src dst d)
  end;
  (* Stall penalty is a constant (no RNG draw, so attaching a stall spec
     does not shift the jitter/reorder/drop stream of the same seed). *)
  (match t.stall with
   | Some (victim, start, heal)
     when (src = victim || dst = victim)
          && in_window ~start ~heal ~at:arrival ->
     extra := !extra + stall_penalty_ns
   | _ -> ());
  let arrival = Desim.Time.add arrival !extra in
  let arrival =
    match Hashtbl.find_opt t.last_arrival key with
    | Some floor when Desim.Time.( <= ) arrival floor ->
      Desim.Time.add floor 1
    | _ -> arrival
  in
  Hashtbl.replace t.last_arrival key arrival;
  arrival

let note_retry t = t.retried <- t.retried + 1

(* Seeded, draw-free backoff jitter: a pure hash of (seed, src, dst,
   attempt). Retries by different senders land at different instants, so
   a heal does not release a synchronized stampede onto one server — yet
   the schedule is still a pure function of the seed, and computing it
   perturbs no RNG stream. *)
let retry_jitter t ~src ~dst ~attempt =
  let mix h k =
    let h = h lxor (k * 0x9E3779B1) in
    let h = (h lxor (h lsr 16)) * 0x85EBCA6B in
    h lxor (h lsr 13)
  in
  let h = mix (mix (mix 0x6A09E667 t.seed) (src lxor (dst lsl 8))) attempt in
  h land 0x3FF

let messages_delayed t = t.delayed
let messages_reordered t = t.reordered
let messages_dropped t = t.dropped
let messages_retried t = t.retried
let messages_dead t = t.dead_sends
let messages_unreachable t = t.unreachable_sends

let pp ppf t =
  Format.fprintf ppf "faults=%s delayed=%d reordered=%d dropped=%d retried=%d"
    (level_name t.level) t.delayed t.reordered t.dropped t.retried;
  (match t.crash with
   | None -> ()
   | Some (n, at) ->
     Format.fprintf ppf " crash=node%d@%a dead-sends=%d" n Desim.Time.pp at
       t.dead_sends);
  (match t.partition with
   | None -> ()
   | Some (n, peers, start, heal) ->
     Format.fprintf ppf " partition=node%d%s@[%a,%a) unreachable=%d" n
       (match peers with
        | [] -> ""
        | ps ->
          "/" ^ String.concat "," (List.map string_of_int ps))
       Desim.Time.pp start Desim.Time.pp heal t.unreachable_sends);
  match t.stall with
  | None -> ()
  | Some (n, start, heal) ->
    Format.fprintf ppf " stall=node%d@[%a,%a)" n Desim.Time.pp start
      Desim.Time.pp heal
