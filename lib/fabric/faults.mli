(** Seeded fabric fault injection for the torture harness.

    A policy attached to a {!Network} perturbs message timing and injects
    transient losses, all driven by one {!Desim.Rng} stream so a run is a
    pure function of its seed:

    - {b jitter}: per-message extra latency, sub-RTT scale;
    - {b reorder}: occasional multi-RTT delays, long enough that traffic
      on {e other} (src,dst) pairs overtakes. Within one pair delivery
      order is preserved (clamped monotonic), matching a
      reliable-connection QP — RegC never depends on cross-pair order;
    - {b drop}: transient losses, bounded to at most
      [max_consecutive_drops] in a row per (src,dst) pair, so the
      retry/timeout/backoff loop in {!Scl.reliable_transfer} always
      terminates.

    Counters record what was injected; {!Samhita.Metrics} and
    [Harness.Report] surface them. *)

type level = Off | Low | Medium | High

val level_name : level -> string
val level_of_string : string -> (level, string) result

type t

val create : ?crash:int * Desim.Time.t -> seed:int -> level:level -> unit -> t
(** [crash] is a fail-stop spec [(node, instant)]: the node is dead from
    that instant on (it neither sends nor receives; see {!node_dead}). At
    most one node crashes per run. *)

val level : t -> level

val crash : t -> (int * Desim.Time.t) option

val node_dead : t -> node:int -> at:Desim.Time.t -> bool
(** Whether the crash spec has [node] dead at instant [at]. Pure in time —
    callers evaluating eagerly-computed timing chains may ask about any
    instant, past or future. *)

val note_dead_send : t -> unit
(** A transmission was addressed to a node that is dead at the send
    instant (recorded by {!Network.try_transfer}). *)

val should_drop : t -> src:int -> dst:int -> bool
(** Decide (one RNG draw when the level drops at all) whether this
    transmission is lost. Tracks per-pair consecutive drops and refuses to
    exceed the level's bound. *)

val perturb : t -> src:int -> dst:int -> arrival:Desim.Time.t -> Desim.Time.t
(** Jitter/reorder a delivered message's arrival instant and clamp it to
    the pair's delivery-order floor. Also resets the pair's
    consecutive-drop budget. *)

val note_retry : t -> unit
(** A sender retransmitted after a timeout (called by
    {!Scl.reliable_transfer}). *)

val messages_delayed : t -> int
val messages_reordered : t -> int
val messages_dropped : t -> int
val messages_retried : t -> int
val messages_dead : t -> int

val pp : Format.formatter -> t -> unit
