(** Seeded fabric fault injection for the torture harness.

    A policy attached to a {!Network} perturbs message timing and injects
    transient losses, all driven by one {!Desim.Rng} stream so a run is a
    pure function of its seed:

    - {b jitter}: per-message extra latency, sub-RTT scale;
    - {b reorder}: occasional multi-RTT delays, long enough that traffic
      on {e other} (src,dst) pairs overtakes. Within one pair delivery
      order is preserved (clamped monotonic), matching a
      reliable-connection QP — RegC never depends on cross-pair order;
    - {b drop}: transient losses, bounded to at most
      [max_consecutive_drops] in a row per (src,dst) pair, so the
      retry/timeout/backoff loop in {!Scl.reliable_transfer} always
      terminates;
    - {b partition} (gray failure): a victim node is unreachable from a
      peer set for a bounded window, then heals. Unlike [crash], the
      victim keeps executing — it can be falsely suspected and fenced;
    - {b stall} (gray failure): every delivery touching the victim pays a
      constant multi-RTT penalty inside the window, then heals.

    Counters record what was injected; {!Samhita.Metrics} and
    [Harness.Report] surface them, and {!trace_tail} yields a bounded
    event trace with instants for failing-seed artifacts. *)

type level = Off | Low | Medium | High

val level_name : level -> string
val level_of_string : string -> (level, string) result

type t

val create :
  ?crash:int * Desim.Time.t ->
  ?partition:int * int list * Desim.Time.t * Desim.Time.t ->
  ?stall:int * Desim.Time.t * Desim.Time.t ->
  seed:int ->
  level:level ->
  unit ->
  t
(** [crash] is a fail-stop spec [(node, instant)]: the node is dead from
    that instant on (it neither sends nor receives; see {!node_dead}). At
    most one node crashes per run.

    [partition] is a gray-failure spec [(victim, peers, start, heal)]:
    inside [[start, heal)] every transmission between [victim] and a node
    in [peers] ([peers = []] meaning {e everyone}) fails with
    [`Unreachable victim]. The victim keeps executing throughout, and the
    window heals. [stall] is [(victim, start, heal)]: deliveries touching
    [victim] inside the window pay {!stall_penalty_ns} extra. *)

val level : t -> level

val crash : t -> (int * Desim.Time.t) option

val partition : t -> (int * int list * Desim.Time.t * Desim.Time.t) option

val stall : t -> (int * Desim.Time.t * Desim.Time.t) option

val stall_penalty_ns : int
(** Constant extra one-way latency (ns) on deliveries touching a stalled
    node while its window is open. *)

val node_dead : t -> node:int -> at:Desim.Time.t -> bool
(** Whether the crash spec has [node] dead at instant [at]. Pure in time —
    callers evaluating eagerly-computed timing chains may ask about any
    instant, past or future. *)

val unreachable_peer : t -> src:int -> dst:int -> at:Desim.Time.t -> int option
(** If the (src,dst) pair is blocked by an open partition window at [at],
    the victim node the sender should blame (always the partitioned node,
    never the other endpoint — so escalation suspects the right server no
    matter which leg of a round trip hit the wall). Pure in time, like
    {!node_dead}. *)

val note_unreachable : t -> src:int -> dst:int -> at:Desim.Time.t -> unit
(** A transmission hit a closed partition at instant [at] (recorded by
    {!Network.try_transfer}); counts it and appends to the trace. *)

val note_dead_send : t -> unit
(** A transmission was addressed to a node that is dead at the send
    instant (recorded by {!Network.try_transfer}). *)

val should_drop : ?at:Desim.Time.t -> t -> src:int -> dst:int -> bool
(** Decide (one RNG draw when the level drops at all) whether this
    transmission is lost. Tracks per-pair consecutive drops and refuses to
    exceed the level's bound. [at], when given, timestamps the trace
    entry; it never affects the decision. *)

val perturb : t -> src:int -> dst:int -> arrival:Desim.Time.t -> Desim.Time.t
(** Jitter/reorder a delivered message's arrival instant, add the stall
    penalty when a stall window is open, and clamp to the pair's
    delivery-order floor. Also resets the pair's consecutive-drop
    budget. The stall penalty is draw-free: attaching a stall spec does
    not shift the seed's jitter/reorder/drop stream. *)

val note_retry : t -> unit
(** A sender retransmitted after a timeout (called by
    {!Scl.reliable_transfer}). *)

val retry_jitter : t -> src:int -> dst:int -> attempt:int -> int
(** Seeded backoff jitter in ns (0–1023): a pure hash of (seed, src, dst,
    attempt), no RNG draw. Distinct senders' retries of the same attempt
    land at distinct instants, so a heal does not release a synchronized
    retry stampede, yet the schedule stays a pure function of the seed. *)

val trace_tail : t -> string list
(** The most recent injected fault events (drops, reorders, unreachable
    sends) with instants, oldest first, bounded to a fixed-size ring; a
    leading marker notes how many earlier events were elided. Lets a
    failing-seed artifact carry the fault schedule, not just the seed. *)

val messages_delayed : t -> int
val messages_reordered : t -> int
val messages_dropped : t -> int
val messages_retried : t -> int
val messages_dead : t -> int
val messages_unreachable : t -> int

val pp : Format.formatter -> t -> unit
