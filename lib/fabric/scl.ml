type endpoint = { net : Network.t; node : Network.node }

let endpoint net node = { net; node }
let node e = e.node
let network e = e.net

let request_bytes = 32

let engine e = Network.engine e.net

let block_until e t =
  let now = Desim.Engine.now (engine e) in
  Desim.Engine.delay (Desim.Time.diff t now)

(* Retransmission policy: the timeout starts at roughly one uncontended
   round trip for the message size and doubles per attempt (capped), the
   classic go-back retry. Faults bound consecutive drops per (src,dst)
   pair, so the loop always terminates. *)
let retry_slack = 2_000 (* ns of timer/completion-queue processing *)
let max_backoff_shift = 4

let retry_timeout net ~bytes ~attempt =
  let rtt = 2 * Network.one_way_estimate net ~bytes + retry_slack in
  rtt lsl min attempt max_backoff_shift

exception Node_dead of Network.node * Desim.Time.t

(* How many retransmissions a sender pays before declaring the peer dead.
   A crashed node looks exactly like a lossy path until the budget is
   exhausted; transient drops are bounded per pair (Faults), so a live
   peer always answers within the budget. *)
let dead_retry_budget = 4

let reliable_transfer net ~now ~src ~dst ~bytes =
  match Network.faults net with
  | None -> Network.transfer net ~now ~src ~dst ~bytes
  | Some f ->
    (* Each backoff carries seeded per-(src,dst,attempt) jitter so
       senders that timed out together (say, against one partitioned
       server) do not retry in lockstep after the heal. *)
    let backoff attempt now =
      Desim.Time.add now
        (retry_timeout net ~bytes ~attempt
         + Faults.retry_jitter f ~src ~dst ~attempt)
    in
    let rec go attempt now =
      match Network.try_transfer net ~now ~src ~dst ~bytes with
      | `Delivered at -> at
      | `Dropped ->
        Faults.note_retry f;
        go (attempt + 1) (backoff attempt now)
      | `Node_dead n | `Unreachable n ->
        (* An unreachable peer is indistinguishable from a dead one on
           the wire: same retry budget, same escalation. The difference
           only shows later — a partitioned victim outlives the window
           and can be fenced and rejoined. *)
        if attempt >= dead_retry_budget then raise (Node_dead (n, now))
        else begin
          Faults.note_retry f;
          go (attempt + 1) (backoff attempt now)
        end
    in
    go 0 now

(* Arrival time of a one-way transfer initiated now. *)
let one_way ~src ~dst ~bytes =
  let now = Desim.Engine.now (engine src) in
  reliable_transfer src.net ~now ~src:src.node ~dst:dst.node ~bytes

let serve ?service ?(service_time = 0) ~at () =
  match service with
  | None -> Desim.Time.add at service_time
  | Some r -> Desim.Resource.reserve r ~now:at ~duration:service_time

(* Completion time of a round trip whose request enters the fabric now.
   Either leg may be dropped by the fault policy; the requester cannot
   tell which, so a loss of the reply re-runs the request leg too (the
   modeled operations are idempotent — their state mutation happens once,
   after the round trip completes). *)
let round_trip ?service ?service_time ~src ~dst ~request_bytes:req
    ~reply_bytes () =
  let now = Desim.Engine.now (engine src) in
  let at_dst =
    reliable_transfer src.net ~now ~src:src.node ~dst:dst.node ~bytes:req
  in
  let served = serve ?service ?service_time ~at:at_dst () in
  reliable_transfer src.net ~now:served ~src:dst.node ~dst:src.node
    ~bytes:reply_bytes

let rdma_write ~src ~dst ~bytes =
  block_until src (one_way ~src ~dst ~bytes)

let rdma_read ?service ?service_time ~src ~dst ~bytes () =
  block_until src
    (round_trip ?service ?service_time ~src ~dst ~request_bytes
       ~reply_bytes:bytes ())

let rpc ?service ?service_time ~src ~dst ~request_bytes:req ~reply_bytes () =
  block_until src
    (round_trip ?service ?service_time ~src ~dst ~request_bytes:req
       ~reply_bytes ())

let async_read ?service ?service_time ~src ~dst ~bytes ~on_complete () =
  let arrival =
    round_trip ?service ?service_time ~src ~dst ~request_bytes
      ~reply_bytes:bytes ()
  in
  Desim.Engine.schedule_at (engine src) arrival (fun () ->
      on_complete arrival)
