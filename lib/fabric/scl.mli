(** SCL — the Samhita Communication Layer.

    The paper abstracts the interconnect behind SCL, a direct-memory-access
    style interface (mapping naturally onto InfiniBand verbs). This module
    is that interface for the simulated fabric: endpoints are (network,
    node) pairs; operations either block the calling process until the
    transfer completes or fire a completion callback (the asynchronous path
    used for prefetching).

    Remote service time is modeled with an optional per-target
    {!Desim.Resource}: requests serialize through the target's service loop,
    capturing hot-spot contention at memory servers and the manager. *)

type endpoint

val endpoint : Network.t -> Network.node -> endpoint
val node : endpoint -> Network.node
val network : endpoint -> Network.t

(** {2 Blocking operations (call from a process)} *)

val rdma_write : src:endpoint -> dst:endpoint -> bytes:int -> unit
(** One-way bulk transfer; returns when the last byte arrives at [dst]. *)

val rdma_read :
  ?service:Desim.Resource.t -> ?service_time:Desim.Time.span ->
  src:endpoint -> dst:endpoint -> bytes:int -> unit -> unit
(** Read [bytes] from [dst]'s memory: a small request travels to [dst],
    optionally waits for / occupies [service] for [service_time], then the
    payload travels back. Returns when the payload arrives at [src]. *)

val rpc :
  ?service:Desim.Resource.t -> ?service_time:Desim.Time.span ->
  src:endpoint -> dst:endpoint -> request_bytes:int -> reply_bytes:int ->
  unit -> unit
(** General request/reply round trip. *)

(** {2 Asynchronous operations} *)

val async_read :
  ?service:Desim.Resource.t -> ?service_time:Desim.Time.span ->
  src:endpoint -> dst:endpoint -> bytes:int ->
  on_complete:(Desim.Time.t -> unit) -> unit -> unit
(** Like {!rdma_read} but returns immediately; [on_complete] runs (as a
    scheduled event) at the arrival instant. *)

val request_bytes : int
(** Size of a bare control/request message on the wire. *)

(** {2 Reliable delivery under fault injection} *)

exception Node_dead of Network.node * Desim.Time.t
(** [Node_dead (n, give_up)] — the peer [n] is {e suspected} fail-stop
    dead: {!reliable_transfer} exhausted its retry budget against a node
    that swallowed every attempt, because it is crash-dead
    ([`Node_dead]) or because a partition window blocks the pair
    ([`Unreachable]). The two are indistinguishable on the wire — that
    is the gray-failure point; a suspicion against a partitioned victim
    is {e false} and the epoch fence (see PROTOCOL.md) keeps it safe.
    [give_up] is the send instant of the final (failed) attempt, i.e.
    the earliest time the sender can know; all the timeouts paid along
    the way are included. *)

val dead_retry_budget : int
(** Retransmissions paid before {!reliable_transfer} escalates to
    {!Node_dead} ([dead_retry_budget + 1] transmissions in total). Larger
    than any level's [max_consecutive_drops], so a live peer never gets
    declared dead. *)

val reliable_transfer :
  Network.t -> now:Desim.Time.t -> src:Network.node -> dst:Network.node ->
  bytes:int -> Desim.Time.t
(** Arrival instant of a message that is retransmitted on loss: each
    attempt may be dropped by the network's {!Faults} policy; the sender
    times out after ~one round trip (doubling per attempt, capped, plus
    seeded per-(src,dst,attempt) jitter — {!Faults.retry_jitter} — so
    concurrent senders' retry instants diverge instead of stampeding)
    and retries. With no fault policy this is exactly {!Network.transfer}.
    Pure timing computation — callable outside a process, like
    [Network.transfer]. The protocol layers ({!Samhita.Thread_ctx},
    {!Samhita.Manager}) route every protocol message through this, which
    is what makes RegC survive transient loss.

    @raise Node_dead when an endpoint is fail-stop dead and the retry
    budget is exhausted. *)

val retry_timeout : Network.t -> bytes:int -> attempt:int -> Desim.Time.span
(** The timeout before retransmission number [attempt + 1] (exposed for
    tests). *)

val max_backoff_shift : int
(** Cap on the exponential backoff: {!retry_timeout} stops doubling at
    attempt [max_backoff_shift] (a [2^max_backoff_shift] multiple of the
    attempt-0 timeout) and stays constant for every later attempt. *)
