(** A fabric instance: a set of nodes joined either through a central
    switch (cluster) or directly (host + coprocessor on one bus).

    Every node owns a full-duplex pair of links (transmit and receive), so
    simultaneous transfers contend exactly where the hardware would: at the
    initiator's injection port and the target's delivery port. *)

type node = int
(** Node identifier in [\[0, node_count)]. *)

type t

val create :
  ?faults:Faults.t -> Desim.Engine.t -> profile:Profile.t ->
  node_count:int -> t
(** [faults] attaches a fault-injection policy: every non-loopback
    {!transfer} is jittered/reordered by it, and {!try_transfer} may drop. *)

val engine : t -> Desim.Engine.t
val profile : t -> Profile.t
val node_count : t -> int

val faults : t -> Faults.t option

val transfer :
  t -> now:Desim.Time.t -> src:node -> dst:node -> bytes:int -> Desim.Time.t
(** Book a [bytes]-sized message from [src] to [dst] entering the fabric at
    [now]; returns the arrival instant at [dst]. Includes the initiator's
    post overhead, per-message header bytes, queueing on both ports and
    propagation latency. A loopback ([src = dst]) models an intra-node copy:
    post overhead plus memcpy bandwidth, no fabric crossing. *)

val try_transfer :
  t -> now:Desim.Time.t -> src:node -> dst:node -> bytes:int ->
  [ `Delivered of Desim.Time.t
  | `Dropped
  | `Node_dead of node
  | `Unreachable of node ]
(** Like {!transfer}, but subject to the fault policy's transient drops,
    fail-stop crashes and partitions. [`Dropped] means the message
    occupied the injection port and was lost; the sender must time out
    and retransmit ({!Scl.reliable_transfer}). [`Node_dead n] means an
    endpoint is dead at the send instant: a dead destination swallows the
    message (it still occupied the injection port), a dead source cannot
    transmit at all. Deadness is evaluated at the send instant, so
    in-flight traffic outlives its sender. [`Unreachable n] means an open
    partition window blocks the pair: both endpoints are alive, the
    message occupied the injection port and died at the wall, and [n] is
    the partitioned victim the sender should blame (whichever leg hit the
    wall). Without an attached {!Faults.t} (and on loopbacks) this always
    delivers. *)

val one_way_estimate : t -> bytes:int -> Desim.Time.span
(** Uncontended transfer time for a message of this size (for tests and
    back-of-envelope assertions). *)

val lookahead : t -> Desim.Time.span
(** A strict lower bound on any cross-node one-way transfer through this
    fabric: post overhead plus one hop of propagation latency
    (serialization, switching, queueing and retransmission only add to
    it). ParDES ({!Desim.Engine.set_lookahead}) uses it as the
    conservative lookahead — no simulated thread can affect another
    node's state sooner than this. Loopbacks are cheaper, but loopback
    traffic never crosses a partition. *)

val messages : t -> int
val bytes_carried : t -> int

val tx_link : t -> node -> Link.t
val rx_link : t -> node -> Link.t
