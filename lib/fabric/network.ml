type node = int

type t = {
  engine : Desim.Engine.t;
  profile : Profile.t;
  tx : Link.t array;
  rx : Link.t array;
  faults : Faults.t option;
  mutable messages : int;
  mutable bytes : int;
}

(* Intra-node copies bypass the fabric: charge memcpy bandwidth. *)
let loopback_bandwidth = 20.0e9

let create ?faults engine ~profile ~node_count =
  if node_count <= 0 then invalid_arg "Network.create: node_count";
  let open Profile in
  let mk_tx i =
    Link.create
      ~name:(Printf.sprintf "tx%d" i)
      ~latency:profile.hop_latency
      ~bandwidth_bytes_per_s:profile.bandwidth_bytes_per_s ()
  in
  let mk_rx i =
    (* In a switched fabric the receive port adds a second hop of latency;
       on a direct bus there is only one hop, charged on the tx side. *)
    let latency = if profile.switched then profile.hop_latency else 0 in
    Link.create
      ~name:(Printf.sprintf "rx%d" i)
      ~latency
      ~bandwidth_bytes_per_s:profile.bandwidth_bytes_per_s ()
  in
  { engine;
    profile;
    tx = Array.init node_count mk_tx;
    rx = Array.init node_count mk_rx;
    faults;
    messages = 0;
    bytes = 0 }

let engine t = t.engine
let profile t = t.profile
let faults t = t.faults
let node_count t = Array.length t.tx

let check_node t n =
  if n < 0 || n >= node_count t then invalid_arg "Network: bad node id"

let transfer t ~now ~src ~dst ~bytes =
  check_node t src;
  check_node t dst;
  if bytes < 0 then invalid_arg "Network.transfer: negative size";
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + bytes;
  let wire_bytes = bytes + t.profile.Profile.header_bytes in
  let start = Desim.Time.add now t.profile.Profile.post_overhead in
  if src = dst then
    (* Loopbacks never cross the fabric, so faults do not apply. *)
    let copy =
      Desim.Time.span_of_float_ns
        (float_of_int bytes /. loopback_bandwidth *. 1e9)
    in
    Desim.Time.add start copy
  else
    let at_switch = Link.occupy t.tx.(src) ~now:start ~bytes:wire_bytes in
    let arrival = Link.occupy t.rx.(dst) ~now:at_switch ~bytes:wire_bytes in
    match t.faults with
    | None -> arrival
    | Some f -> Faults.perturb f ~src ~dst ~arrival

(* A transfer that may be lost in the fabric. A dropped message still paid
   the post overhead and occupied the injection port (it left the sender
   and died in flight); it never reaches the receive port. Loopbacks and
   fault-free networks always deliver.

   Fail-stop crashes surface here too: a message addressed to a node that
   is dead at the send instant leaves the sender and dies at the silent
   NIC ([`Node_dead dst]); a dead source cannot transmit at all
   ([`Node_dead src], nothing enters the fabric). Deadness is checked at
   the send instant — a message already in flight when its target dies is
   delivered (the bytes were committed to the wire). *)
let try_transfer t ~now ~src ~dst ~bytes =
  match t.faults with
  | Some f
    when src <> dst
         && (Faults.node_dead f ~node:src ~at:now
             || Faults.node_dead f ~node:dst ~at:now) ->
    check_node t src;
    check_node t dst;
    if bytes < 0 then invalid_arg "Network.try_transfer: negative size";
    if Faults.node_dead f ~node:src ~at:now then `Node_dead src
    else begin
      t.messages <- t.messages + 1;
      t.bytes <- t.bytes + bytes;
      let wire_bytes = bytes + t.profile.Profile.header_bytes in
      let start = Desim.Time.add now t.profile.Profile.post_overhead in
      ignore (Link.occupy t.tx.(src) ~now:start ~bytes:wire_bytes
              : Desim.Time.t);
      Faults.note_dead_send f;
      `Node_dead dst
    end
  | Some f when src <> dst
                && Faults.unreachable_peer f ~src ~dst ~at:now <> None ->
    (* A closed partition: the message leaves the sender, occupies the
       injection port, and dies at the wall. Both endpoints are alive, so
       the sender pays exactly what a drop costs — only escalation after
       repeated timeouts distinguishes "slow" from "gone". *)
    check_node t src;
    check_node t dst;
    if bytes < 0 then invalid_arg "Network.try_transfer: negative size";
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + bytes;
    let wire_bytes = bytes + t.profile.Profile.header_bytes in
    let start = Desim.Time.add now t.profile.Profile.post_overhead in
    ignore (Link.occupy t.tx.(src) ~now:start ~bytes:wire_bytes
            : Desim.Time.t);
    Faults.note_unreachable f ~src ~dst ~at:now;
    let victim =
      match Faults.unreachable_peer f ~src ~dst ~at:now with
      | Some v -> v
      | None -> assert false
    in
    `Unreachable victim
  | Some f when src <> dst && Faults.should_drop ~at:now f ~src ~dst ->
    check_node t src;
    check_node t dst;
    if bytes < 0 then invalid_arg "Network.try_transfer: negative size";
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + bytes;
    let wire_bytes = bytes + t.profile.Profile.header_bytes in
    let start = Desim.Time.add now t.profile.Profile.post_overhead in
    ignore (Link.occupy t.tx.(src) ~now:start ~bytes:wire_bytes
            : Desim.Time.t);
    `Dropped
  | _ -> `Delivered (transfer t ~now ~src ~dst ~bytes)

let one_way_estimate t ~bytes =
  let open Profile in
  let p = t.profile in
  let wire_bytes = bytes + p.header_bytes in
  let ser =
    Desim.Time.span_of_float_ns
      (float_of_int wire_bytes /. p.bandwidth_bytes_per_s *. 1e9)
  in
  (* Serialization happens at both the tx and rx ports (store-and-forward
     through the switch, or injection + delivery DMA on a direct bus);
     propagation latency is per hop. *)
  let hops = if p.switched then 2 else 1 in
  p.post_overhead + (2 * ser) + (hops * p.hop_latency)

let lookahead t =
  let open Profile in
  let p = t.profile in
  p.post_overhead + p.hop_latency

let messages t = t.messages
let bytes_carried t = t.bytes
let tx_link t n = check_node t n; t.tx.(n)
let rx_link t n = check_node t n; t.rx.(n)
