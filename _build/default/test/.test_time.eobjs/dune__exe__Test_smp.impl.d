test/test_smp.ml: Alcotest Array Smp
