test/test_engine.ml: Alcotest Desim List Printf
