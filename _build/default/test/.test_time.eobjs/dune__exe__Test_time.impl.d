test/test_time.ml: Alcotest Desim Format
