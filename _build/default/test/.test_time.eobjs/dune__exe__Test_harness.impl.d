test/test_harness.ml: Alcotest Float Format Harness Lazy List Printf String
