test/test_manager.mli:
