test/test_diff.ml: Alcotest Bytes Char Gen List QCheck QCheck_alcotest Samhita
