test/test_accessors.mli:
