test/test_layout.ml: Alcotest QCheck QCheck_alcotest Samhita
