test/test_manager.ml: Alcotest Desim Fabric Int64 List Samhita
