test/test_workload.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Workload
