test/test_memory_server.mli:
