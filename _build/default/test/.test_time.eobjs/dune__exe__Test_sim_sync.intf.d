test/test_sim_sync.mli:
