test/test_stress.ml: Alcotest Desim Fabric Gen List Printf QCheck QCheck_alcotest Samhita
