test/test_system.ml: Alcotest Fabric Format List Samhita String Workload
