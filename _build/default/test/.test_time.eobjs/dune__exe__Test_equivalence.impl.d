test/test_equivalence.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest Samhita Workload
