test/test_dsm.ml: Alcotest Fabric List Printf Samhita
