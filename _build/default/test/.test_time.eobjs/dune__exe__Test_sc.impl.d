test/test_sc.ml: Alcotest List Printf Samhita Workload
