test/test_models.ml: Alcotest Array Bytes Fun List Printf QCheck QCheck_alcotest Samhita Smp String
