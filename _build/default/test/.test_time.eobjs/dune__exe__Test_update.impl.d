test/test_update.ml: Alcotest Bytes Char List QCheck QCheck_alcotest Samhita
