test/test_cache.ml: Alcotest Bytes Gen Hashtbl List QCheck QCheck_alcotest Samhita
