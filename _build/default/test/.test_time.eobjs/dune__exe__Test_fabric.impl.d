test/test_fabric.ml: Alcotest Desim Fabric QCheck QCheck_alcotest
