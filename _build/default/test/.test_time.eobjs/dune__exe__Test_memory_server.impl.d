test/test_memory_server.ml: Alcotest Bytes Desim Fabric List Samhita
