test/test_sim_sync.ml: Alcotest Desim List
