test/test_heap.ml: Alcotest Desim Fun List QCheck QCheck_alcotest
