test/test_rng.ml: Alcotest Array Desim QCheck QCheck_alcotest
