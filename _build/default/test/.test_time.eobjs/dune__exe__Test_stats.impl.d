test/test_stats.ml: Alcotest Desim Float Gen List QCheck QCheck_alcotest
