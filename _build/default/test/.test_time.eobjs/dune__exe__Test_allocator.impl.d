test/test_allocator.ml: Alcotest Gen List QCheck QCheck_alcotest Samhita
