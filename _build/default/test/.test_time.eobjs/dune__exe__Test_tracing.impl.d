test/test_tracing.ml: Alcotest Desim List Samhita String
