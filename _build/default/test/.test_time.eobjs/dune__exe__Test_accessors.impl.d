test/test_accessors.ml: Alcotest Array Bytes Char Format Harness Hashtbl Int64 Printf QCheck QCheck_alcotest Samhita String
