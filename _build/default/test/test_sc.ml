(* Tests for the sequential-consistency (Sc_invalidate) comparison mode:
   an IVY-style single-writer, write-invalidate DSM sharing the rest of
   the runtime with RegC. *)

module T = Samhita.Thread_ctx

let sc_cfg = { Samhita.Config.default with model = Samhita.Config.Sc_invalidate }
let line_bytes = Samhita.Config.line_bytes sc_cfg

let run_threads ?(config = sc_cfg) ~threads body =
  let sys = Samhita.System.create ~config ~threads () in
  for tid = 0 to threads - 1 do
    ignore (Samhita.System.spawn sys (fun t -> body sys tid t) : T.t)
  done;
  Samhita.System.run sys;
  sys

let test_read_own_write () =
  ignore
    (run_threads ~threads:1 (fun _ _ t ->
         let a = T.malloc t ~bytes:64 in
         T.write_f64 t a 9.5;
         Alcotest.(check (float 0.)) "rw" 9.5 (T.read_f64 t a)))

let test_exclusive_ownership_tracked () =
  let owner_after = ref None in
  let sys =
    run_threads ~threads:1 (fun sys _ t ->
        let a = T.malloc t ~bytes:64 in
        T.write_f64 t a 1.0;
        let layout = Samhita.System.layout sys in
        let line = Samhita.Layout.line_of_addr layout a in
        owner_after :=
          Samhita.Coherence_sc.owner
            (Samhita.Thread_ctx.env t).Samhita.Thread_ctx.sc ~line)
  in
  ignore sys;
  Alcotest.(check (option int)) "writer owns the line" (Some 0) !owner_after

let test_ping_pong_values () =
  (* Two threads alternately increment the same cell, separated by
     barriers: ownership migrates back and forth and no increment is
     lost. *)
  let threads = 2 in
  let rounds = 6 in
  let a = ref 0 in
  let final = ref nan in
  let sys = Samhita.System.create ~config:sc_cfg ~threads () in
  let bar = Samhita.System.barrier sys ~parties:threads in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then a := T.malloc t ~bytes:8;
           T.barrier_wait t bar;
           for r = 0 to rounds - 1 do
             if r mod threads = tid then
               T.write_f64 t !a (T.read_f64 t !a +. 1.0);
             T.barrier_wait t bar
           done;
           if tid = 0 then final := T.read_f64 t !a)
        : T.t)
  done;
  Samhita.System.run sys;
  Alcotest.(check (float 0.)) "all increments land" (float_of_int rounds)
    !final

let test_false_sharing_correct () =
  (* Disjoint slices of one line, written by all threads between barriers:
     single-writer migration must still merge everything (whole-line
     writebacks carry the current merge). *)
  let threads = 4 in
  let base = ref 0 in
  let errors = ref 0 in
  let sys = Samhita.System.create ~config:sc_cfg ~threads () in
  let bar = Samhita.System.barrier sys ~parties:threads in
  let slice = line_bytes / threads in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then base := T.malloc t ~bytes:line_bytes;
           T.barrier_wait t bar;
           for o = 0 to (slice / 8) - 1 do
             T.write_f64 t (!base + (tid * slice) + (o * 8))
               (float_of_int (500 + tid))
           done;
           T.barrier_wait t bar;
           for other = 0 to threads - 1 do
             for o = 0 to (slice / 8) - 1 do
               if
                 T.read_f64 t (!base + (other * slice) + (o * 8))
                 <> float_of_int (500 + other)
               then incr errors
             done
           done)
        : T.t)
  done;
  Samhita.System.run sys;
  Alcotest.(check int) "single-writer migration preserves all bytes" 0
    !errors

let test_eviction_writeback () =
  let config = { sc_cfg with cache_lines = 2; prefetch = false } in
  ignore
    (run_threads ~config ~threads:1 (fun _ _ t ->
         let lines = 5 in
         let a = T.malloc t ~bytes:(lines * line_bytes) in
         for i = 0 to lines - 1 do
           T.write_f64 t (a + (i * line_bytes)) (float_of_int (i + 1))
         done;
         for i = 0 to lines - 1 do
           Alcotest.(check (float 0.))
             (Printf.sprintf "line %d written back on eviction" i)
             (float_of_int (i + 1))
             (T.read_f64 t (a + (i * line_bytes)))
         done))

let test_lock_counter_sc () =
  let threads = 4 in
  let a = ref 0 in
  let final = ref nan in
  let sys = Samhita.System.create ~config:sc_cfg ~threads () in
  let m = Samhita.System.mutex sys in
  let bar = Samhita.System.barrier sys ~parties:threads in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then a := T.malloc t ~bytes:8;
           T.barrier_wait t bar;
           for _ = 1 to 10 do
             T.mutex_lock t m;
             T.write_f64 t !a (T.read_f64 t !a +. 1.0);
             T.mutex_unlock t m
           done;
           T.barrier_wait t bar;
           if tid = 0 then final := T.read_f64 t !a)
        : T.t)
  done;
  Samhita.System.run sys;
  Alcotest.(check (float 0.)) "lock-protected counter" 40.0 !final

let sc_backend = Workload.Samhita_backend.make ~config:sc_cfg ()

let test_micro_exact_under_sc () =
  let p =
    { Workload.Microbench.default_params with n_outer = 3; m_inner = 2 }
  in
  List.iter
    (fun alloc ->
       let r =
         Workload.Microbench.run sc_backend ~threads:4
           { p with Workload.Microbench.alloc }
       in
       Alcotest.(check bool)
         ("gsum exact under SC, " ^ Workload.Microbench.mode_name alloc)
         true
         (r.gsum = r.expected_gsum))
    [ Workload.Microbench.Local; Global; Global_strided ]

let test_jacobi_exact_under_sc () =
  let p = { Workload.Jacobi.default_params with n = 32; iters = 3 } in
  let ref_sum, _ = Workload.Jacobi.reference p in
  let r = Workload.Jacobi.run sc_backend ~threads:4 p in
  Alcotest.(check bool) "jacobi grid exact under SC" true
    (r.checksum = ref_sum)

let test_sc_pays_for_false_sharing () =
  (* The paper's motivating claim: under false sharing, per-store coherence
     (SC) costs far more compute time than RegC's batched consistency. *)
  let p =
    { Workload.Microbench.default_params with
      m_inner = 5;
      alloc = Workload.Microbench.Global_strided }
  in
  let regc = Workload.Microbench.run Workload.Samhita_backend.default
      ~threads:8 p
  in
  let sc = Workload.Microbench.run sc_backend ~threads:8 p in
  let mean = Workload.Microbench.mean in
  Alcotest.(check bool)
    (Printf.sprintf "sc compute (%.0f ns) > 3x regc compute (%.0f ns)"
       (mean sc.compute_ns) (mean regc.compute_ns))
    true
    (mean sc.compute_ns > 3. *. mean regc.compute_ns)

let test_sc_fine_without_sharing () =
  (* Without array sharing, SC's only recurring coherence traffic is the
     lock-protected global sum (one exclusive acquisition per critical
     section); with enough compute per iteration that amortizes and SC
     tracks RegC closely. *)
  let p =
    { Workload.Microbench.default_params with
      m_inner = 100;
      alloc = Workload.Microbench.Local }
  in
  let regc = Workload.Microbench.run Workload.Samhita_backend.default
      ~threads:4 p
  in
  let sc = Workload.Microbench.run sc_backend ~threads:4 p in
  let mean = Workload.Microbench.mean in
  Alcotest.(check bool) "sc local compute within 25% of regc at M=100" true
    (mean sc.compute_ns < 1.25 *. mean regc.compute_ns)

let tests =
  [ Alcotest.test_case "read own write" `Quick test_read_own_write;
    Alcotest.test_case "ownership tracked" `Quick
      test_exclusive_ownership_tracked;
    Alcotest.test_case "ping-pong values" `Quick test_ping_pong_values;
    Alcotest.test_case "false sharing correct" `Quick
      test_false_sharing_correct;
    Alcotest.test_case "eviction writeback" `Quick test_eviction_writeback;
    Alcotest.test_case "lock counter" `Quick test_lock_counter_sc;
    Alcotest.test_case "micro exact" `Quick test_micro_exact_under_sc;
    Alcotest.test_case "jacobi exact" `Quick test_jacobi_exact_under_sc;
    Alcotest.test_case "SC pays for false sharing" `Quick
      test_sc_pays_for_false_sharing;
    Alcotest.test_case "SC fine without sharing" `Quick
      test_sc_fine_without_sharing ]

let () = Alcotest.run "samhita.sc" [ ("sc-invalidate", tests) ]
