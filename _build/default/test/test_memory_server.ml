(* Tests for the memory-server backing store. *)

let cfg = Samhita.Config.default
let layout = Samhita.Layout.of_config cfg
let lb = layout.Samhita.Layout.line_bytes

let mk_server () =
  let e = Desim.Engine.create () in
  let net =
    Fabric.Network.create e ~profile:cfg.Samhita.Config.fabric ~node_count:2
  in
  Samhita.Memory_server.create cfg layout ~id:0
    ~endpoint:(Fabric.Scl.endpoint net 1)

let test_demand_zero () =
  let s = mk_server () in
  Alcotest.(check int) "empty store" 0 (Samhita.Memory_server.lines_resident s);
  let data, version = Samhita.Memory_server.fetch s 42 in
  Alcotest.(check int) "version 0" 0 version;
  Alcotest.(check bytes) "zero filled" (Bytes.make lb '\000') data;
  Alcotest.(check int) "materialized" 1
    (Samhita.Memory_server.lines_resident s);
  Alcotest.(check int) "fetch counted" 1 (Samhita.Memory_server.fetches s)

let test_fetch_returns_copy () =
  let s = mk_server () in
  let data, _ = Samhita.Memory_server.fetch s 0 in
  Bytes.set data 0 'x';
  let data2, _ = Samhita.Memory_server.fetch s 0 in
  Alcotest.(check char) "store unaffected by caller mutation" '\000'
    (Bytes.get data2 0)

let test_apply_diff_bumps_version () =
  let s = mk_server () in
  let twin = Bytes.make lb '\000' in
  let current = Bytes.copy twin in
  Bytes.set current 5 'q';
  let d = Samhita.Diff.make layout ~line:3 ~twin ~current ~dirty_pages:1 in
  let v1 = Samhita.Memory_server.apply_diff s d in
  Alcotest.(check int) "version 1" 1 v1;
  let v2 = Samhita.Memory_server.apply_diff s d in
  Alcotest.(check int) "version 2" 2 v2;
  Alcotest.(check int) "tracked" 2 (Samhita.Memory_server.version s 3);
  let data, v = Samhita.Memory_server.fetch s 3 in
  Alcotest.(check char) "content merged" 'q' (Bytes.get data 5);
  Alcotest.(check int) "fetch sees version" 2 v

let test_apply_update () =
  let s = mk_server () in
  let u = Samhita.Update.of_i64 ~addr:((2 * lb) + 8) 77L in
  let versions = Samhita.Memory_server.apply_update s u in
  Alcotest.(check (list (pair int int))) "line 2 bumped" [ (2, 1) ] versions;
  let data, _ = Samhita.Memory_server.fetch s 2 in
  Alcotest.(check int64) "written" 77L (Bytes.get_int64_le data 8)

let test_apply_update_straddling () =
  let s = mk_server () in
  let u =
    { Samhita.Update.addr = lb - 4;
      data = Bytes.make 8 '\255' }
  in
  let versions =
    List.sort compare (Samhita.Memory_server.apply_update s u)
  in
  Alcotest.(check (list (pair int int))) "both lines bumped"
    [ (0, 1); (1, 1) ] versions;
  let d0, _ = Samhita.Memory_server.fetch s 0 in
  let d1, _ = Samhita.Memory_server.fetch s 1 in
  Alcotest.(check char) "tail" '\255' (Bytes.get d0 (lb - 1));
  Alcotest.(check char) "head" '\255' (Bytes.get d1 3);
  Alcotest.(check char) "beyond" '\000' (Bytes.get d1 4)

let test_service_time_scales () =
  let s = mk_server () in
  let base = Samhita.Memory_server.service_time_for_bytes s 0 in
  let big = Samhita.Memory_server.service_time_for_bytes s 100_000 in
  Alcotest.(check int) "base is server_service"
    (cfg.Samhita.Config.server_service) base;
  Alcotest.(check bool) "grows with payload" true (big > base)

let test_counters () =
  let s = mk_server () in
  ignore (Samhita.Memory_server.fetch s 0);
  let twin = Bytes.make lb '\000' in
  let current = Bytes.copy twin in
  Bytes.set current 0 'x';
  ignore
    (Samhita.Memory_server.apply_diff s
       (Samhita.Diff.make layout ~line:0 ~twin ~current ~dirty_pages:1));
  ignore (Samhita.Memory_server.apply_update s (Samhita.Update.of_i64 ~addr:0 1L));
  Alcotest.(check int) "fetches" 1 (Samhita.Memory_server.fetches s);
  Alcotest.(check int) "diffs" 1 (Samhita.Memory_server.diffs_applied s);
  Alcotest.(check int) "updates" 1 (Samhita.Memory_server.updates_applied s)

let tests =
  [ Alcotest.test_case "demand zero" `Quick test_demand_zero;
    Alcotest.test_case "fetch returns copy" `Quick test_fetch_returns_copy;
    Alcotest.test_case "diff bumps version" `Quick
      test_apply_diff_bumps_version;
    Alcotest.test_case "apply update" `Quick test_apply_update;
    Alcotest.test_case "straddling update" `Quick
      test_apply_update_straddling;
    Alcotest.test_case "service time" `Quick test_service_time_scales;
    Alcotest.test_case "counters" `Quick test_counters ]

let () = Alcotest.run "samhita.memory_server" [ ("memory-server", tests) ]
