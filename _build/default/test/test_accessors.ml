(* Tests for the byte/word/bulk accessors and the run report. *)

module T = Samhita.Thread_ctx

let cfg = Samhita.Config.default
let line_bytes = Samhita.Config.line_bytes cfg

let run_threads ?config ~threads body =
  let sys = Samhita.System.create ?config ~threads () in
  for tid = 0 to threads - 1 do
    ignore (Samhita.System.spawn sys (fun t -> body sys tid t) : T.t)
  done;
  Samhita.System.run sys;
  sys

(* ---------------- scalar accessors ---------------- *)

let test_u8_roundtrip () =
  ignore
    (run_threads ~threads:1 (fun _ _ t ->
         let a = T.malloc t ~bytes:16 in
         for i = 0 to 15 do
           T.write_u8 t (a + i) (200 + i)
         done;
         for i = 0 to 15 do
           Alcotest.(check int) "byte" (200 + i) (T.read_u8 t (a + i))
         done))

let test_u8_range_checked () =
  ignore
    (run_threads ~threads:1 (fun _ _ t ->
         let a = T.malloc t ~bytes:8 in
         Alcotest.check_raises "range"
           (Invalid_argument "Samhita.write_u8: value out of range")
           (fun () -> T.write_u8 t a 256)))

let test_i32_f32_roundtrip () =
  ignore
    (run_threads ~threads:1 (fun _ _ t ->
         let a = T.malloc t ~bytes:16 in
         T.write_i32 t a 0xDEADBEEFl;
         T.write_f32 t (a + 4) 1.5;
         Alcotest.(check int32) "i32" 0xDEADBEEFl (T.read_i32 t a);
         Alcotest.(check (float 0.)) "f32" 1.5 (T.read_f32 t (a + 4));
         Alcotest.check_raises "alignment"
           (Invalid_argument "Samhita: 4-byte accesses must be 4-byte aligned")
           (fun () -> ignore (T.read_i32 t (a + 2)))))

let test_mixed_width_same_word () =
  ignore
    (run_threads ~threads:1 (fun _ _ t ->
         let a = T.malloc t ~bytes:8 in
         T.write_i64 t a 0L;
         T.write_u8 t (a + 3) 0xAB;
         let v = T.read_i64 t a in
         Alcotest.(check int64) "byte visible inside the word"
           (Int64.shift_left 0xABL 24) v))

(* ---------------- bulk transfers ---------------- *)

let test_bulk_roundtrip_within_line () =
  ignore
    (run_threads ~threads:1 (fun _ _ t ->
         let a = T.malloc t ~bytes:256 in
         let src = Bytes.init 100 (fun i -> Char.chr (i mod 256)) in
         T.write_bytes t (a + 16) src;
         let back = T.read_bytes t (a + 16) ~len:100 in
         Alcotest.(check bytes) "roundtrip" src back))

let test_bulk_straddles_lines () =
  ignore
    (run_threads ~threads:1 (fun _ _ t ->
         (* A large-enough allocation spans several lines; write across the
            first boundary. *)
         let a = T.malloc t ~bytes:(3 * line_bytes) in
         let start = a + line_bytes - 64 in
         let src = Bytes.init 128 (fun i -> Char.chr ((i * 7) mod 256)) in
         T.write_bytes t start src;
         Alcotest.(check bytes) "across boundary" src
           (T.read_bytes t start ~len:128);
         (* The byte just past the range is untouched. *)
         Alcotest.(check int) "no overrun" 0 (T.read_u8 t (start + 128))))

let test_bulk_empty_and_invalid () =
  ignore
    (run_threads ~threads:1 (fun _ _ t ->
         let a = T.malloc t ~bytes:8 in
         T.write_bytes t a (Bytes.create 0);
         Alcotest.(check bytes) "empty read" (Bytes.create 0)
           (T.read_bytes t a ~len:0);
         Alcotest.check_raises "negative len"
           (Invalid_argument "Samhita.read_bytes: negative length")
           (fun () -> ignore (T.read_bytes t a ~len:(-1)))))

(* Cross-thread propagation of sub-word ordinary writes (bytewise diffs
   must carry exactly the written bytes). *)
let test_u8_diff_propagation () =
  let threads = 2 in
  let base = ref 0 in
  let errors = ref 0 in
  let sys = Samhita.System.create ~threads () in
  let bar = Samhita.System.barrier sys ~parties:threads in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then base := T.malloc t ~bytes:64;
           T.barrier_wait t bar;
           (* Interleaved single bytes from both threads in one word. *)
           for i = 0 to 31 do
             if i mod threads = tid then T.write_u8 t (!base + i) (64 + i)
           done;
           T.barrier_wait t bar;
           for i = 0 to 31 do
             if T.read_u8 t (!base + i) <> 64 + i then incr errors
           done)
        : T.t)
  done;
  Samhita.System.run sys;
  Alcotest.(check int) "interleaved bytes merge" 0 !errors

(* Bulk writes inside a consistency region propagate via the update log. *)
let test_bulk_in_region_propagates () =
  let threads = 2 in
  let base = ref 0 in
  let seen = ref Bytes.empty in
  let payload = Bytes.init 48 (fun i -> Char.chr (255 - i)) in
  let sys = Samhita.System.create ~threads () in
  let m = Samhita.System.mutex sys in
  let bar = Samhita.System.barrier sys ~parties:threads in
  for tid = 0 to threads - 1 do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if tid = 0 then base := T.malloc t ~bytes:64;
           T.barrier_wait t bar;
           if tid = 0 then begin
             T.mutex_lock t m;
             T.write_bytes t !base payload;
             T.mutex_unlock t m
           end;
           T.barrier_wait t bar;
           if tid = 1 then begin
             T.mutex_lock t m;
             seen := T.read_bytes t !base ~len:48;
             T.mutex_unlock t m
           end)
        : T.t)
  done;
  Samhita.System.run sys;
  Alcotest.(check bytes) "region bulk store reaches peer" payload !seen

(* ---------------- run report ---------------- *)

let test_report_contents () =
  let sys =
    run_threads ~threads:2 (fun sys tid t ->
        ignore sys;
        let a = T.malloc t ~bytes:(2 * line_bytes) in
        T.write_f64 t a (float_of_int tid);
        ignore (T.read_f64 t (a + line_bytes)))
  in
  let r = Harness.Report.of_system sys in
  Alcotest.(check bool) "fabric carried traffic" true
    (Harness.Report.fabric_bytes r > 0
     && Harness.Report.fabric_messages r > 0);
  Alcotest.(check bool) "misses happened" true
    (Harness.Report.total_misses r > 0);
  Alcotest.(check bool) "hit rate within [0;1]" true
    (Harness.Report.hit_rate r >= 0. && Harness.Report.hit_rate r <= 1.);
  Alcotest.(check bool) "server utilization sane" true
    (Harness.Report.server_utilization r 0 >= 0.
     && Harness.Report.server_utilization r 0 <= 1.);
  Alcotest.(check bool) "manager utilization sane" true
    (Harness.Report.manager_utilization r >= 0.
     && Harness.Report.manager_utilization r <= 1.);
  let text = Format.asprintf "%a" Harness.Report.pp r in
  Alcotest.(check bool) "report renders" true (String.length text > 200)

let test_report_unknown_server () =
  let sys = run_threads ~threads:1 (fun _ _ t -> ignore (T.malloc t ~bytes:8)) in
  let r = Harness.Report.of_system sys in
  Alcotest.check_raises "unknown server"
    (Invalid_argument "Report.server_utilization: unknown server") (fun () ->
      ignore (Harness.Report.server_utilization r 9))

let tests =
  [ Alcotest.test_case "u8 roundtrip" `Quick test_u8_roundtrip;
    Alcotest.test_case "u8 range" `Quick test_u8_range_checked;
    Alcotest.test_case "i32/f32 roundtrip" `Quick test_i32_f32_roundtrip;
    Alcotest.test_case "mixed width" `Quick test_mixed_width_same_word;
    Alcotest.test_case "bulk within line" `Quick
      test_bulk_roundtrip_within_line;
    Alcotest.test_case "bulk straddles lines" `Quick
      test_bulk_straddles_lines;
    Alcotest.test_case "bulk edge cases" `Quick test_bulk_empty_and_invalid;
    Alcotest.test_case "u8 diff propagation" `Quick
      test_u8_diff_propagation;
    Alcotest.test_case "bulk region propagation" `Quick
      test_bulk_in_region_propagates;
    Alcotest.test_case "report contents" `Quick test_report_contents;
    Alcotest.test_case "report unknown server" `Quick
      test_report_unknown_server ]

(* Randomized byte-granularity property: random byte offsets partitioned
   over the threads, written per round, compared against a byte-array
   oracle after each barrier. Byte-exact diffs make even neighbouring-byte
   writers by different threads merge correctly. *)
let prop_random_byte_program =
  let gen rng =
    let int_range lo hi = QCheck.Gen.int_range lo hi rng in
    let threads = int_range 2 4 in
    let rounds = int_range 1 4 in
    let nbytes = int_range 1 40 in
    let chosen = Hashtbl.create 16 in
    let offsets =
      Array.init nbytes (fun _ ->
          let rec draw () =
            let o = int_range 0 (line_bytes - 1) in
            if Hashtbl.mem chosen o then draw ()
            else begin
              Hashtbl.replace chosen o ();
              o
            end
          in
          draw ())
    in
    let owner =
      Array.init rounds (fun _ ->
          Array.init nbytes (fun _ -> int_range 0 (threads - 1)))
    in
    (threads, rounds, offsets, owner)
  in
  let arb =
    QCheck.make
      ~print:(fun (t, r, o, _) ->
        Printf.sprintf "{threads=%d; rounds=%d; bytes=%d}" t r
          (Array.length o))
      gen
  in
  QCheck.Test.make ~name:"random byte-granularity programs match the oracle"
    ~count:30 arb
    (fun (threads, rounds, offsets, owner) ->
       let nbytes = Array.length offsets in
       let oracle = Array.make nbytes 0 in
       let observed = Array.make_matrix rounds nbytes (-1) in
       let base = ref 0 in
       let sys = Samhita.System.create ~threads () in
       let bar = Samhita.System.barrier sys ~parties:threads in
       for tid = 0 to threads - 1 do
         ignore
           (Samhita.System.spawn sys (fun t ->
                if tid = 0 then base := T.malloc t ~bytes:line_bytes;
                T.barrier_wait t bar;
                for r = 0 to rounds - 1 do
                  Array.iteri
                    (fun v off ->
                       if owner.(r).(v) = tid then
                         T.write_u8 t (!base + off)
                           ((((r * 37) + v) mod 255) + 1))
                    offsets;
                  T.barrier_wait t bar;
                  if tid = r mod threads then
                    Array.iteri
                      (fun v off ->
                         observed.(r).(v) <- T.read_u8 t (!base + off))
                      offsets;
                  T.barrier_wait t bar
                done)
             : T.t)
       done;
       Samhita.System.run sys;
       let ok = ref true in
       for r = 0 to rounds - 1 do
         for v = 0 to nbytes - 1 do
           oracle.(v) <- (((r * 37) + v) mod 255) + 1;
           if observed.(r).(v) <> oracle.(v) then ok := false
         done
       done;
       !ok)

let () =
  Alcotest.run "samhita.accessors"
    [ ("accessors+report", tests);
      ("random-bytes", [ QCheck_alcotest.to_alcotest prop_random_byte_program ]) ]
