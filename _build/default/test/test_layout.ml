(* Tests for Config validation and Layout address arithmetic. *)

let cfg = Samhita.Config.default
let layout = Samhita.Layout.of_config cfg

let test_default_valid () =
  Alcotest.(check bool) "default validates" true
    (Samhita.Config.validate cfg = Ok ())

let expect_invalid name cfg =
  match Samhita.Config.validate cfg with
  | Ok () -> Alcotest.failf "%s: expected a validation error" name
  | Error _ -> ()

let test_validation_errors () =
  expect_invalid "page not pow2" { cfg with page_bytes = 3000 };
  expect_invalid "pages_per_line not pow2" { cfg with pages_per_line = 3 };
  expect_invalid "pages_per_line too big" { cfg with pages_per_line = 64 };
  expect_invalid "cache too small" { cfg with cache_lines = 1 };
  expect_invalid "thresholds inverted"
    { cfg with large_threshold = cfg.small_threshold - 8 };
  expect_invalid "arena not line multiple"
    { cfg with arena_chunk_bytes = cfg.small_threshold + 1 };
  expect_invalid "no servers" { cfg with memory_servers = 0 };
  expect_invalid "no threads per node" { cfg with threads_per_node = 0 };
  expect_invalid "negative cost" { cfg with t_mem = -1.0 };
  expect_invalid "stripe" { cfg with stripe_lines = 0 };
  expect_invalid "history negative" { cfg with update_log_history = -1 }

let test_line_geometry () =
  Alcotest.(check int) "line bytes" (4096 * 4) (Samhita.Config.line_bytes cfg);
  Alcotest.(check int) "line shift" 14 (Samhita.Config.line_shift cfg);
  Alcotest.(check int) "layout agrees" (Samhita.Config.line_bytes cfg)
    layout.Samhita.Layout.line_bytes

let test_addr_math () =
  let lb = layout.Samhita.Layout.line_bytes in
  Alcotest.(check int) "line of 0" 0 (Samhita.Layout.line_of_addr layout 0);
  Alcotest.(check int) "line of lb" 1 (Samhita.Layout.line_of_addr layout lb);
  Alcotest.(check int) "line of lb-1" 0
    (Samhita.Layout.line_of_addr layout (lb - 1));
  Alcotest.(check int) "base of line 3" (3 * lb)
    (Samhita.Layout.line_base layout 3);
  Alcotest.(check int) "offset" 17
    (Samhita.Layout.offset_in_line layout ((5 * lb) + 17))

let test_page_in_line () =
  Alcotest.(check int) "first page" 0
    (Samhita.Layout.page_in_line layout ~offset:0);
  Alcotest.(check int) "page 1" 1
    (Samhita.Layout.page_in_line layout ~offset:4096);
  Alcotest.(check int) "last byte of page 0" 0
    (Samhita.Layout.page_in_line layout ~offset:4095);
  Alcotest.(check int) "last page" 3
    (Samhita.Layout.page_in_line layout ~offset:(4096 * 4 - 1))

let test_lines_spanning () =
  let lb = layout.Samhita.Layout.line_bytes in
  Alcotest.(check (pair int int)) "within one line" (0, 0)
    (Samhita.Layout.lines_spanning layout ~addr:0 ~len:8);
  Alcotest.(check (pair int int)) "straddles" (0, 1)
    (Samhita.Layout.lines_spanning layout ~addr:(lb - 4) ~len:8);
  Alcotest.(check (pair int int)) "many lines" (1, 3)
    (Samhita.Layout.lines_spanning layout ~addr:lb ~len:(2 * lb + 1));
  Alcotest.check_raises "zero len"
    (Invalid_argument "Layout.lines_spanning: len must be > 0") (fun () ->
      ignore (Samhita.Layout.lines_spanning layout ~addr:0 ~len:0))

let prop_line_roundtrip =
  QCheck.Test.make ~name:"line_base/line_of_addr roundtrip" ~count:500
    QCheck.(int_bound 1_000_000)
    (fun addr ->
       let line = Samhita.Layout.line_of_addr layout addr in
       let base = Samhita.Layout.line_base layout line in
       base <= addr
       && addr < base + layout.Samhita.Layout.line_bytes
       && Samhita.Layout.offset_in_line layout addr = addr - base)

let prop_geometry_all_pows =
  QCheck.Test.make ~name:"layout consistent for all geometries" ~count:50
    QCheck.(pair (int_range 0 4) (int_range 0 3))
    (fun (page_pow, line_pow) ->
       let cfg =
         { cfg with
           page_bytes = 1024 lsl page_pow;
           pages_per_line = 1 lsl line_pow }
       in
       let l = Samhita.Layout.of_config cfg in
       l.Samhita.Layout.line_bytes
       = cfg.Samhita.Config.page_bytes * cfg.Samhita.Config.pages_per_line
       && 1 lsl l.Samhita.Layout.line_shift = l.Samhita.Layout.line_bytes)

let tests =
  [ Alcotest.test_case "default valid" `Quick test_default_valid;
    Alcotest.test_case "validation errors" `Quick test_validation_errors;
    Alcotest.test_case "line geometry" `Quick test_line_geometry;
    Alcotest.test_case "address math" `Quick test_addr_math;
    Alcotest.test_case "page in line" `Quick test_page_in_line;
    Alcotest.test_case "lines spanning" `Quick test_lines_spanning;
    QCheck_alcotest.to_alcotest prop_line_roundtrip;
    QCheck_alcotest.to_alcotest prop_geometry_all_pows ]

let () = Alcotest.run "samhita.layout" [ ("config+layout", tests) ]
