(* Tests for simulator-level synchronization primitives (Ivar, Mailbox,
   Semaphore) and the Resource facility. *)

let ns = Desim.Time.ns

let run_sim body =
  let e = Desim.Engine.create () in
  body e;
  Desim.Engine.run e;
  e

(* ---------------- Ivar ---------------- *)

let test_ivar_fill_then_read () =
  let iv = Desim.Sync.Ivar.create () in
  Desim.Sync.Ivar.fill iv 7;
  Alcotest.(check bool) "filled" true (Desim.Sync.Ivar.is_filled iv);
  Alcotest.(check (option int)) "peek" (Some 7) (Desim.Sync.Ivar.peek iv);
  let got = ref 0 in
  ignore
    (run_sim (fun e ->
         Desim.Engine.spawn e (fun () -> got := Desim.Sync.Ivar.read iv)));
  Alcotest.(check int) "read" 7 !got

let test_ivar_blocks_until_fill () =
  let iv = Desim.Sync.Ivar.create () in
  let got_at = ref (-1) in
  ignore
    (run_sim (fun e ->
         Desim.Engine.spawn e (fun () ->
             ignore (Desim.Sync.Ivar.read iv : int);
             got_at := Desim.Time.to_ns (Desim.Engine.now e));
         Desim.Engine.schedule e ~delay:(ns 40) (fun () ->
             Desim.Sync.Ivar.fill iv 1)));
  Alcotest.(check int) "woken at fill time" 40 !got_at

let test_ivar_multiple_readers () =
  let iv = Desim.Sync.Ivar.create () in
  let sum = ref 0 in
  ignore
    (run_sim (fun e ->
         for _ = 1 to 3 do
           Desim.Engine.spawn e (fun () ->
               sum := !sum + Desim.Sync.Ivar.read iv)
         done;
         Desim.Engine.schedule e ~delay:(ns 5) (fun () ->
             Desim.Sync.Ivar.fill iv 10)));
  Alcotest.(check int) "all readers woken" 30 !sum

let test_ivar_double_fill () =
  let iv = Desim.Sync.Ivar.create () in
  Desim.Sync.Ivar.fill iv 1;
  Alcotest.check_raises "double fill"
    (Invalid_argument "Ivar.fill: already filled") (fun () ->
      Desim.Sync.Ivar.fill iv 2)

(* ---------------- Mailbox ---------------- *)

let test_mailbox_fifo () =
  let mb = Desim.Sync.Mailbox.create () in
  let got = ref [] in
  ignore
    (run_sim (fun e ->
         Desim.Engine.spawn e (fun () ->
             for _ = 1 to 3 do
               got := Desim.Sync.Mailbox.recv mb :: !got
             done);
         Desim.Engine.schedule e (fun () ->
             List.iter (Desim.Sync.Mailbox.send mb) [ 1; 2; 3 ])));
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_buffered () =
  let mb = Desim.Sync.Mailbox.create () in
  Desim.Sync.Mailbox.send mb "x";
  Desim.Sync.Mailbox.send mb "y";
  Alcotest.(check int) "length" 2 (Desim.Sync.Mailbox.length mb);
  Alcotest.(check (option string)) "try_recv" (Some "x")
    (Desim.Sync.Mailbox.try_recv mb);
  Alcotest.(check (option string)) "try_recv 2" (Some "y")
    (Desim.Sync.Mailbox.try_recv mb);
  Alcotest.(check (option string)) "empty" None
    (Desim.Sync.Mailbox.try_recv mb)

let test_mailbox_waiting_receivers_fifo () =
  let mb = Desim.Sync.Mailbox.create () in
  let got = ref [] in
  ignore
    (run_sim (fun e ->
         for i = 1 to 2 do
           Desim.Engine.spawn e (fun () ->
               let v = Desim.Sync.Mailbox.recv mb in
               got := (i, v) :: !got)
         done;
         Desim.Engine.schedule e ~delay:(ns 10) (fun () ->
             Desim.Sync.Mailbox.send mb "a";
             Desim.Sync.Mailbox.send mb "b")));
  Alcotest.(check (list (pair int string)))
    "receivers served in arrival order"
    [ (1, "a"); (2, "b") ]
    (List.rev !got)

(* ---------------- Semaphore ---------------- *)

let test_semaphore_counts () =
  let s = Desim.Sync.Semaphore.create 2 in
  Alcotest.(check int) "initial" 2 (Desim.Sync.Semaphore.available s);
  ignore
    (run_sim (fun e ->
         Desim.Engine.spawn e (fun () ->
             Desim.Sync.Semaphore.acquire s;
             Desim.Sync.Semaphore.acquire s;
             Alcotest.(check int) "drained" 0
               (Desim.Sync.Semaphore.available s);
             Desim.Sync.Semaphore.release s;
             Desim.Sync.Semaphore.release s)));
  Alcotest.(check int) "restored" 2 (Desim.Sync.Semaphore.available s)

let test_semaphore_blocks () =
  let s = Desim.Sync.Semaphore.create 1 in
  let order = ref [] in
  ignore
    (run_sim (fun e ->
         Desim.Engine.spawn e (fun () ->
             Desim.Sync.Semaphore.acquire s;
             order := "a-acq" :: !order;
             Desim.Engine.delay (ns 50);
             Desim.Sync.Semaphore.release s;
             order := "a-rel" :: !order);
         Desim.Engine.spawn e (fun () ->
             Desim.Engine.delay (ns 10);
             Desim.Sync.Semaphore.acquire s;
             order := "b-acq" :: !order)));
  Alcotest.(check (list string))
    "blocked until release"
    [ "a-acq"; "a-rel"; "b-acq" ]
    (List.rev !order)

let test_semaphore_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Semaphore.create: negative count") (fun () ->
      ignore (Desim.Sync.Semaphore.create (-1)))

(* ---------------- Resource ---------------- *)

let test_resource_serializes () =
  let r = Desim.Resource.create ~name:"svc" () in
  let t1 = Desim.Resource.reserve r ~now:(Desim.Time.of_ns 0) ~duration:100 in
  Alcotest.(check int) "first completes at 100" 100 (Desim.Time.to_ns t1);
  (* Arrives at 50 while busy: queues until 100, finishes at 160. *)
  let t2 = Desim.Resource.reserve r ~now:(Desim.Time.of_ns 50) ~duration:60 in
  Alcotest.(check int) "queued job" 160 (Desim.Time.to_ns t2);
  (* Arrives after idle period: starts immediately. *)
  let t3 = Desim.Resource.reserve r ~now:(Desim.Time.of_ns 500) ~duration:10 in
  Alcotest.(check int) "idle restart" 510 (Desim.Time.to_ns t3);
  Alcotest.(check int) "jobs" 3 (Desim.Resource.jobs r);
  Alcotest.(check int) "busy time" 170 (Desim.Resource.busy_time r)

let test_resource_utilization () =
  let r = Desim.Resource.create () in
  ignore (Desim.Resource.reserve r ~now:Desim.Time.zero ~duration:250);
  Alcotest.(check (float 1e-9)) "25%" 0.25
    (Desim.Resource.utilization r ~horizon:(Desim.Time.of_ns 1000));
  Desim.Resource.reset r;
  Alcotest.(check int) "reset busy" 0 (Desim.Resource.busy_time r);
  Alcotest.(check int) "reset jobs" 0 (Desim.Resource.jobs r)

let test_resource_negative_duration () =
  let r = Desim.Resource.create () in
  let t = Desim.Resource.reserve r ~now:(Desim.Time.of_ns 5) ~duration:(-10) in
  Alcotest.(check int) "clamped to zero" 5 (Desim.Time.to_ns t)

let tests =
  [ Alcotest.test_case "ivar fill then read" `Quick test_ivar_fill_then_read;
    Alcotest.test_case "ivar blocks" `Quick test_ivar_blocks_until_fill;
    Alcotest.test_case "ivar broadcast" `Quick test_ivar_multiple_readers;
    Alcotest.test_case "ivar double fill" `Quick test_ivar_double_fill;
    Alcotest.test_case "mailbox fifo" `Quick test_mailbox_fifo;
    Alcotest.test_case "mailbox buffered" `Quick test_mailbox_buffered;
    Alcotest.test_case "mailbox receiver order" `Quick
      test_mailbox_waiting_receivers_fifo;
    Alcotest.test_case "semaphore counts" `Quick test_semaphore_counts;
    Alcotest.test_case "semaphore blocks" `Quick test_semaphore_blocks;
    Alcotest.test_case "semaphore negative" `Quick test_semaphore_negative;
    Alcotest.test_case "resource serializes" `Quick test_resource_serializes;
    Alcotest.test_case "resource utilization" `Quick
      test_resource_utilization;
    Alcotest.test_case "resource negative duration" `Quick
      test_resource_negative_duration ]

let () = Alcotest.run "desim.sync" [ ("sync+resource", tests) ]
