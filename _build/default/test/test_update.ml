(* Tests for fine-grained update records and home striping. *)

let cfg = Samhita.Config.default
let layout = Samhita.Layout.of_config cfg
let lb = layout.Samhita.Layout.line_bytes

(* ---------------- Update ---------------- *)

let test_of_i64 () =
  let u = Samhita.Update.of_i64 ~addr:64 0x0102030405060708L in
  Alcotest.(check int) "addr" 64 u.Samhita.Update.addr;
  Alcotest.(check int) "len" 8 (Bytes.length u.Samhita.Update.data);
  Alcotest.(check int64) "little endian" 0x0102030405060708L
    (Bytes.get_int64_le u.Samhita.Update.data 0)

let test_wire_bytes () =
  let u = Samhita.Update.of_i64 ~addr:0 1L in
  Alcotest.(check int) "framing + payload" 20 (Samhita.Update.wire_bytes u);
  Alcotest.(check int) "log sums" 40
    (Samhita.Update.log_wire_bytes [ u; u ])

let test_apply_within_line () =
  let u = Samhita.Update.of_i64 ~addr:(lb + 16) 0xFFL in
  let buf = Bytes.make lb '\000' in
  Samhita.Update.apply_to_line layout u ~line:1 buf;
  Alcotest.(check int64) "applied at offset 16" 0xFFL
    (Bytes.get_int64_le buf 16);
  (* Applying to an unrelated line is a no-op. *)
  let buf2 = Bytes.make lb '\000' in
  Samhita.Update.apply_to_line layout u ~line:5 buf2;
  Alcotest.(check bytes) "untouched" (Bytes.make lb '\000') buf2

let test_apply_straddling () =
  (* A 16-byte update crossing the line-0/line-1 boundary. *)
  let data = Bytes.init 16 (fun i -> Char.chr (i + 1)) in
  let u = { Samhita.Update.addr = lb - 8; data } in
  Alcotest.(check (list int)) "touches both lines" [ 0; 1 ]
    (Samhita.Update.lines_touched layout u);
  let b0 = Bytes.make lb '\000' and b1 = Bytes.make lb '\000' in
  Samhita.Update.apply_to_line layout u ~line:0 b0;
  Samhita.Update.apply_to_line layout u ~line:1 b1;
  Alcotest.(check char) "tail of line 0" (Char.chr 1) (Bytes.get b0 (lb - 8));
  Alcotest.(check char) "last byte of line 0" (Char.chr 8)
    (Bytes.get b0 (lb - 1));
  Alcotest.(check char) "head of line 1" (Char.chr 9) (Bytes.get b1 0);
  Alcotest.(check char) "8th of line 1" (Char.chr 16) (Bytes.get b1 7)

let test_lines_touched_empty () =
  let u = { Samhita.Update.addr = 0; data = Bytes.create 0 } in
  Alcotest.(check (list int)) "empty update" []
    (Samhita.Update.lines_touched layout u)

let prop_apply_matches_blit =
  QCheck.Test.make ~name:"per-line apply equals a global blit" ~count:200
    QCheck.(pair (int_bound (3 * lb)) (int_range 1 64))
    (fun (addr, len) ->
       let u =
         { Samhita.Update.addr;
           data = Bytes.init len (fun i -> Char.chr (i mod 256)) }
       in
       (* Global picture: a 4-line flat buffer with the update blitted. *)
       let flat = Bytes.make (4 * lb) '\000' in
       Bytes.blit u.Samhita.Update.data 0 flat addr len;
       (* Per-line application. *)
       let ok = ref true in
       List.iter
         (fun line ->
            let buf = Bytes.make lb '\000' in
            Samhita.Update.apply_to_line layout u ~line buf;
            if not (Bytes.equal buf (Bytes.sub flat (line * lb) lb)) then
              ok := false)
         (Samhita.Update.lines_touched layout u);
       !ok)

(* ---------------- Home ---------------- *)

let test_home_striping () =
  let cfg3 = { cfg with memory_servers = 3; stripe_lines = 2 } in
  let homes =
    List.init 12 (fun line -> Samhita.Home.server_of_line cfg3 ~line)
  in
  Alcotest.(check (list int)) "round robin in stripes"
    [ 0; 0; 1; 1; 2; 2; 0; 0; 1; 1; 2; 2 ]
    homes

let test_home_single_server () =
  let homes =
    List.init 20 (fun line -> Samhita.Home.server_of_line cfg ~line)
  in
  Alcotest.(check bool) "all on server 0" true
    (List.for_all (( = ) 0) homes)

let test_stripe_bytes () =
  Alcotest.(check int) "stripe bytes"
    (Samhita.Config.line_bytes cfg * cfg.Samhita.Config.stripe_lines)
    (Samhita.Home.stripe_bytes cfg)

let test_group_lines () =
  let cfg2 = { cfg with memory_servers = 2; stripe_lines = 1 } in
  let groups = Samhita.Home.group_lines_by_server cfg2 [ 0; 1; 2; 3; 4 ] in
  Alcotest.(check (list (pair int (list int))))
    "partitioned"
    [ (0, [ 0; 2; 4 ]); (1, [ 1; 3 ]) ]
    groups

let prop_large_alloc_spans_servers =
  QCheck.Test.make ~name:"any stripe-aligned multi-stripe range hits all \
                          servers"
    ~count:100
    QCheck.(int_range 2 4)
    (fun servers ->
       let cfg' = { cfg with memory_servers = servers } in
       let lines_per_stripe = cfg'.Samhita.Config.stripe_lines in
       let lines = servers * lines_per_stripe in
       let touched =
         List.sort_uniq compare
           (List.init lines (fun l -> Samhita.Home.server_of_line cfg' ~line:l))
       in
       List.length touched = servers)

let tests =
  [ Alcotest.test_case "of_i64" `Quick test_of_i64;
    Alcotest.test_case "wire bytes" `Quick test_wire_bytes;
    Alcotest.test_case "apply within line" `Quick test_apply_within_line;
    Alcotest.test_case "apply straddling" `Quick test_apply_straddling;
    Alcotest.test_case "empty update" `Quick test_lines_touched_empty;
    QCheck_alcotest.to_alcotest prop_apply_matches_blit;
    Alcotest.test_case "home striping" `Quick test_home_striping;
    Alcotest.test_case "single server" `Quick test_home_single_server;
    Alcotest.test_case "stripe bytes" `Quick test_stripe_bytes;
    Alcotest.test_case "group lines" `Quick test_group_lines;
    QCheck_alcotest.to_alcotest prop_large_alloc_spans_servers ]

let () = Alcotest.run "samhita.update" [ ("update+home", tests) ]
