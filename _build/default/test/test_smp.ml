(* Tests for the simulated cache-coherent SMP node (Pthreads baseline). *)

module R = Smp.Runtime
module M = Smp.Machine

let cfg = Smp.Config.default

(* ---------------- Machine / coherence ---------------- *)

let test_machine_alloc () =
  let m = M.create cfg in
  let a1 = M.alloc m ~bytes:10 ~align:64 in
  let a2 = M.alloc m ~bytes:10 ~align:64 in
  Alcotest.(check int) "aligned" 0 (a1 mod 64);
  Alcotest.(check bool) "disjoint lines" true (a2 - a1 >= 64);
  Alcotest.check_raises "bad align"
    (Invalid_argument
       "Smp.Machine.alloc: align must be a positive power of two")
    (fun () -> ignore (M.alloc m ~bytes:8 ~align:3))

let test_machine_grow () =
  let m = M.create cfg in
  let a = M.alloc m ~bytes:(4 lsl 20) ~align:8 in
  M.write_f64 m (a + (4 lsl 20) - 8) 5.5;
  Alcotest.(check (float 0.)) "large store grows" 5.5
    (M.read_f64 m (a + (4 lsl 20) - 8))

let test_coherence_costs () =
  let m = M.create cfg in
  let a = M.alloc m ~bytes:8 ~align:64 in
  (* Cold read. *)
  Alcotest.(check (float 0.)) "cold read" cfg.t_cold_miss
    (M.read_cost m ~thread:0 ~addr:a);
  (* Warm read. *)
  Alcotest.(check (float 0.)) "hit" cfg.t_mem (M.read_cost m ~thread:0 ~addr:a);
  (* Another thread reads: not present in its cache -> miss. *)
  Alcotest.(check (float 0.)) "second reader cold" cfg.t_cold_miss
    (M.read_cost m ~thread:1 ~addr:a);
  (* Write by thread 0 invalidates thread 1's copy. *)
  Alcotest.(check (float 0.)) "write upgrade invalidates" cfg.t_invalidate
    (M.write_cost m ~thread:0 ~addr:a);
  Alcotest.(check (float 0.)) "owner write hits" cfg.t_mem
    (M.write_cost m ~thread:0 ~addr:a);
  (* Thread 1 reads a modified line: cache-to-cache transfer. *)
  Alcotest.(check (float 0.)) "coherence miss" cfg.t_coherence_miss
    (M.read_cost m ~thread:1 ~addr:a);
  (* After the downgrade the owner reads cheaply. *)
  Alcotest.(check (float 0.)) "shared hit" cfg.t_mem
    (M.read_cost m ~thread:0 ~addr:a);
  Alcotest.(check bool) "counters moved" true
    (M.coherence_misses m = 1 && M.invalidations m >= 1
     && M.cold_misses m >= 2)

let test_false_sharing_granularity () =
  let m = M.create cfg in
  let a = M.alloc m ~bytes:128 ~align:64 in
  ignore (M.write_cost m ~thread:0 ~addr:a);
  (* Same line, different byte: ping-pong. *)
  Alcotest.(check (float 0.)) "false sharing costs" cfg.t_invalidate
    (M.write_cost m ~thread:1 ~addr:(a + 8));
  (* Different line: independent. *)
  ignore (M.write_cost m ~thread:0 ~addr:(a + 64));
  Alcotest.(check (float 0.)) "own line hit" cfg.t_mem
    (M.write_cost m ~thread:0 ~addr:(a + 64))

(* ---------------- Runtime ---------------- *)

let test_thread_cap () =
  Alcotest.(check bool) "over core count rejected" true
    (match R.create ~threads:(cfg.max_threads + 1) () with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_data_through_runtime () =
  let sys = R.create ~threads:1 () in
  ignore
    (R.spawn sys (fun t ->
         let a = R.malloc t ~bytes:16 in
         R.write_f64 t a 2.5;
         R.write_i64 t (a + 8) 9L;
         Alcotest.(check (float 0.)) "f64" 2.5 (R.read_f64 t a);
         Alcotest.(check int64) "i64" 9L (R.read_i64 t (a + 8))));
  R.run sys

let test_mutex_exclusion () =
  let sys = R.create ~threads:4 () in
  let m = R.mutex sys in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 4 do
    ignore
      (R.spawn sys (fun t ->
           for _ = 1 to 10 do
             R.lock t m;
             incr inside;
             if !inside > !max_inside then max_inside := !inside;
             R.charge_flops t 1_000;
             decr inside;
             R.unlock t m
           done))
  done;
  R.run sys;
  Alcotest.(check int) "mutual exclusion" 1 !max_inside

let test_unlock_not_held () =
  let sys = R.create ~threads:1 () in
  let m = R.mutex sys in
  ignore
    (R.spawn sys (fun t ->
         Alcotest.check_raises "not holder"
           (Invalid_argument "Smp.Runtime.unlock: lock not held by thread")
           (fun () -> R.unlock t m)));
  R.run sys

let test_barrier_rounds () =
  let threads = 4 in
  let sys = R.create ~threads () in
  let b = R.barrier sys ~parties:threads in
  let shared = Array.make threads 0 in
  let errors = ref 0 in
  for tid = 0 to threads - 1 do
    ignore
      (R.spawn sys (fun t ->
           for r = 1 to 3 do
             shared.(tid) <- r;
             R.barrier_wait t b;
             Array.iter (fun v -> if v <> r then incr errors) shared;
             R.barrier_wait t b
           done;
           ignore t))
  done;
  R.run sys;
  Alcotest.(check int) "barrier separates rounds" 0 !errors

let test_barrier_cost_scales () =
  let sync_for threads =
    let sys = R.create ~threads () in
    let b = R.barrier sys ~parties:threads in
    let acc = ref 0 in
    for _ = 1 to threads do
      ignore
        (R.spawn sys (fun t ->
             for _ = 1 to 5 do
               R.barrier_wait t b
             done;
             acc := !acc + R.sync_ns t))
    done;
    R.run sys;
    !acc / threads
  in
  Alcotest.(check bool) "more threads, more sync" true
    (sync_for 8 > sync_for 2)

let test_cond_signal () =
  let sys = R.create ~threads:2 () in
  let m = R.mutex sys in
  let c = R.cond sys in
  let flag = ref false and observed = ref false in
  ignore
    (R.spawn sys (fun t ->
         R.lock t m;
         while not !flag do
           R.cond_wait t c m
         done;
         observed := true;
         R.unlock t m));
  ignore
    (R.spawn sys (fun t ->
         R.charge_flops t 100_000;
         R.lock t m;
         flag := true;
         R.cond_signal t c;
         R.unlock t m));
  R.run sys;
  Alcotest.(check bool) "consumer woken after signal" true !observed

let test_accounting_split () =
  let sys = R.create ~threads:2 () in
  let b = R.barrier sys ~parties:2 in
  let results = Array.make 2 (0, 0) in
  for tid = 0 to 1 do
    ignore
      (R.spawn sys (fun t ->
           R.charge_flops t 10_000;
           R.barrier_wait t b;
           results.(tid) <- (R.compute_ns t, R.sync_ns t)))
  done;
  R.run sys;
  Array.iter
    (fun (c, s) ->
       Alcotest.(check bool) "compute accounted" true (c >= 8_000);
       Alcotest.(check bool) "sync accounted" true (s > 0))
    results

let tests =
  [ Alcotest.test_case "machine alloc" `Quick test_machine_alloc;
    Alcotest.test_case "machine grow" `Quick test_machine_grow;
    Alcotest.test_case "coherence costs" `Quick test_coherence_costs;
    Alcotest.test_case "false sharing granularity" `Quick
      test_false_sharing_granularity;
    Alcotest.test_case "thread cap" `Quick test_thread_cap;
    Alcotest.test_case "data through runtime" `Quick
      test_data_through_runtime;
    Alcotest.test_case "mutex exclusion" `Quick test_mutex_exclusion;
    Alcotest.test_case "unlock not held" `Quick test_unlock_not_held;
    Alcotest.test_case "barrier rounds" `Quick test_barrier_rounds;
    Alcotest.test_case "barrier cost scales" `Quick test_barrier_cost_scales;
    Alcotest.test_case "cond signal" `Quick test_cond_signal;
    Alcotest.test_case "accounting split" `Quick test_accounting_split ]

let () = Alcotest.run "smp" [ ("smp", tests) ]
