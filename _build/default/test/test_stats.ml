(* Tests for the metric accumulators. *)

module S = Desim.Stats

let test_counter () =
  let c = S.Counter.create () in
  Alcotest.(check int) "zero" 0 (S.Counter.value c);
  S.Counter.incr c;
  S.Counter.add c 5;
  Alcotest.(check int) "accumulates" 6 (S.Counter.value c);
  S.Counter.add c (-2);
  Alcotest.(check int) "signed" 4 (S.Counter.value c);
  S.Counter.reset c;
  Alcotest.(check int) "reset" 0 (S.Counter.value c)

let test_summary_known () =
  let s = S.Summary.create () in
  List.iter (S.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "n" 8 (S.Summary.n s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (S.Summary.mean s);
  (* Sample variance of this classic data set is 32/7. *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0)
    (S.Summary.variance s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (S.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (S.Summary.max s);
  Alcotest.(check (float 1e-9)) "total" 40.0 (S.Summary.total s)

let test_summary_empty_and_single () =
  let s = S.Summary.create () in
  Alcotest.(check (float 0.)) "empty mean" 0.0 (S.Summary.mean s);
  Alcotest.(check (float 0.)) "empty variance" 0.0 (S.Summary.variance s);
  Alcotest.(check bool) "empty min is nan" true
    (Float.is_nan (S.Summary.min s));
  S.Summary.add s 3.5;
  Alcotest.(check (float 1e-12)) "single mean" 3.5 (S.Summary.mean s);
  Alcotest.(check (float 0.)) "single variance" 0.0 (S.Summary.variance s);
  S.Summary.reset s;
  Alcotest.(check int) "reset n" 0 (S.Summary.n s)

let prop_welford_matches_naive =
  QCheck.Test.make ~name:"Welford mean/variance match naive computation"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_exclusive 1000.))
    (fun xs ->
       let s = S.Summary.create () in
       List.iter (S.Summary.add s) xs;
       let n = float_of_int (List.length xs) in
       let mean = List.fold_left ( +. ) 0. xs /. n in
       let var =
         List.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs
         /. (n -. 1.)
       in
       Float.abs (S.Summary.mean s -. mean) < 1e-6
       && Float.abs (S.Summary.variance s -. var) < 1e-4)

let test_histogram_buckets () =
  let h = S.Histogram.create () in
  List.iter (S.Histogram.add h) [ 0; 1; 2; 3; 4; 100; -5 ];
  Alcotest.(check int) "count" 7 (S.Histogram.count h);
  let buckets = S.Histogram.bucket_counts h in
  (* <=1: {0,1,-5}; <=2: {2}; <=4: {3,4}; <=128: {100} *)
  Alcotest.(check (list (pair int int)))
    "buckets"
    [ (1, 3); (2, 1); (4, 2); (128, 1) ]
    buckets

let test_histogram_percentile () =
  let h = S.Histogram.create () in
  for i = 1 to 1000 do
    S.Histogram.add h i
  done;
  let p50 = S.Histogram.percentile h 0.5 in
  let p99 = S.Histogram.percentile h 0.99 in
  Alcotest.(check bool) "median bucket sane" true (p50 >= 500 && p50 <= 512);
  Alcotest.(check bool) "p99 bucket sane" true (p99 >= 990 && p99 <= 1024);
  Alcotest.(check int) "p0 is first bucket" 1 (S.Histogram.percentile h 0.)

let test_histogram_errors () =
  let h = S.Histogram.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Histogram.percentile: empty")
    (fun () -> ignore (S.Histogram.percentile h 0.5));
  S.Histogram.add h 1;
  Alcotest.check_raises "bad p"
    (Invalid_argument "Histogram.percentile: p not in [0;1]") (fun () ->
      ignore (S.Histogram.percentile h 1.5));
  S.Histogram.reset h;
  Alcotest.(check int) "reset" 0 (S.Histogram.count h)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 100) (int_bound 10_000))
    (fun xs ->
       let h = S.Histogram.create () in
       List.iter (S.Histogram.add h) xs;
       let ps = [ 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ] in
       let vals = List.map (S.Histogram.percentile h) ps in
       let rec mono = function
         | a :: (b :: _ as r) -> a <= b && mono r
         | _ -> true
       in
       mono vals)

let tests =
  [ Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "summary known values" `Quick test_summary_known;
    Alcotest.test_case "summary edge cases" `Quick
      test_summary_empty_and_single;
    QCheck_alcotest.to_alcotest prop_welford_matches_naive;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram percentile" `Quick
      test_histogram_percentile;
    Alcotest.test_case "histogram errors" `Quick test_histogram_errors;
    QCheck_alcotest.to_alcotest prop_percentile_monotone ]

let () = Alcotest.run "desim.stats" [ ("stats", tests) ]
