(* Tests for the deterministic splittable RNG. *)

let test_determinism () =
  let a = Desim.Rng.create ~seed:123 and b = Desim.Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Desim.Rng.int64 a)
      (Desim.Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Desim.Rng.create ~seed:1 and b = Desim.Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Desim.Rng.int64 a = Desim.Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_split_independent () =
  let parent = Desim.Rng.create ~seed:7 in
  let child = Desim.Rng.split parent in
  let c1 = Desim.Rng.int64 child in
  (* Re-deriving from the same seed gives the same child stream. *)
  let parent' = Desim.Rng.create ~seed:7 in
  let child' = Desim.Rng.split parent' in
  Alcotest.(check int64) "split deterministic" c1 (Desim.Rng.int64 child')

let test_int_bounds () =
  let rng = Desim.Rng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let v = Desim.Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done

let test_int_invalid () =
  let rng = Desim.Rng.create ~seed:11 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Desim.Rng.int rng 0 : int))

let test_float_bounds () =
  let rng = Desim.Rng.create ~seed:13 in
  for _ = 1 to 10_000 do
    let v = Desim.Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "float out of bounds"
  done

let test_int_coverage () =
  (* All residues of a small bound appear (uniformity smoke test). *)
  let rng = Desim.Rng.create ~seed:5 in
  let seen = Array.make 8 0 in
  for _ = 1 to 4_000 do
    seen.(Desim.Rng.int rng 8) <- seen.(Desim.Rng.int rng 8) + 1
  done;
  Array.iteri
    (fun i c ->
       if c = 0 then Alcotest.failf "residue %d never drawn" i)
    seen

let test_bool_balance () =
  let rng = Desim.Rng.create ~seed:3 in
  let trues = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Desim.Rng.bool rng then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool) "roughly balanced" true (ratio > 0.45 && ratio < 0.55)

let test_exponential_mean () =
  let rng = Desim.Rng.create ~seed:17 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    let v = Desim.Rng.exponential rng ~mean:3.0 in
    if v < 0.0 then Alcotest.fail "negative exponential draw";
    total := !total +. v
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (mean > 2.8 && mean < 3.2)

let prop_bits_nonneg =
  QCheck.Test.make ~name:"bits are non-negative" ~count:200 QCheck.int
    (fun seed ->
       let rng = Desim.Rng.create ~seed in
       Desim.Rng.bits rng >= 0)

let tests =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split determinism" `Quick test_split_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "int coverage" `Quick test_int_coverage;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    QCheck_alcotest.to_alcotest prop_bits_nonneg ]

let () = Alcotest.run "desim.rng" [ ("rng", tests) ]
