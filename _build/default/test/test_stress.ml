(* Randomized stress properties across the simulator and the DSM. *)

module T = Samhita.Thread_ctx

(* ------------------------------------------------------------------ *)
(* Engine: random process populations terminate with a consistent clock *)

let prop_engine_random_processes =
  let gen rng =
    let int_range lo hi = QCheck.Gen.int_range lo hi rng in
    let nprocs = int_range 1 10 in
    List.init nprocs (fun _ ->
        List.init (int_range 1 20) (fun _ -> int_range 0 1000))
  in
  QCheck.Test.make ~name:"random process populations drain cleanly"
    ~count:200
    (QCheck.make
       ~print:(fun delays ->
         Printf.sprintf "%d procs" (List.length delays))
       gen)
    (fun delays ->
       let e = Desim.Engine.create () in
       let finished = ref 0 in
       let expected_end =
         List.fold_left
           (fun acc ds -> max acc (List.fold_left ( + ) 0 ds))
           0 delays
       in
       List.iter
         (fun ds ->
            Desim.Engine.spawn e (fun () ->
                List.iter (fun d -> Desim.Engine.delay d) ds;
                incr finished))
         delays;
       Desim.Engine.run e;
       !finished = List.length delays
       && Desim.Time.to_ns (Desim.Engine.now e) = expected_end)

(* ------------------------------------------------------------------ *)
(* Fabric: FIFO links never reorder completions                        *)

let prop_link_fifo =
  QCheck.Test.make ~name:"link completions are FIFO for ordered arrivals"
    ~count:200
    QCheck.(
      list_of_size Gen.(int_range 2 30)
        (pair (int_bound 1000) (int_range 1 10_000)))
    (fun jobs ->
       let l =
         Fabric.Link.create ~latency:(Desim.Time.ns 100)
           ~bandwidth_bytes_per_s:1e9 ()
       in
       (* Arrivals in nondecreasing time order. *)
       let arrivals =
         List.sort compare (List.map fst jobs)
         |> List.map2 (fun (_, b) t -> (t, b)) jobs
       in
       let completions =
         List.map
           (fun (t, bytes) ->
              Desim.Time.to_ns
                (Fabric.Link.occupy l ~now:(Desim.Time.of_ns t) ~bytes))
           arrivals
       in
       let rec nondecreasing = function
         | a :: (b :: _ as r) -> a <= b && nondecreasing r
         | _ -> true
       in
       nondecreasing completions)

(* ------------------------------------------------------------------ *)
(* DSM: random-sized allocations never overlap and all hold data       *)

let prop_allocations_disjoint =
  QCheck.Test.make ~name:"random allocations are disjoint and usable"
    ~count:60
    QCheck.(
      list_of_size Gen.(int_range 1 25) (int_range 8 300_000))
    (fun sizes ->
       let ok = ref true in
       let sys = Samhita.System.create ~threads:1 () in
       ignore
         (Samhita.System.spawn sys (fun t ->
              let blocks =
                List.mapi
                  (fun i bytes ->
                     let a = T.malloc t ~bytes in
                     (* Stamp the first and last aligned words. *)
                     T.write_f64 t (a + (a mod 8 * 0)) (float_of_int i);
                     let last = a + ((bytes - 8) / 8 * 8) in
                     if last > a then T.write_f64 t last (float_of_int (-i));
                     (a, bytes, last))
                  sizes
              in
              (* No two blocks overlap. *)
              List.iteri
                (fun i (a, s, _) ->
                   List.iteri
                     (fun j (a', s', _) ->
                        if i < j && a < a' + s' && a' < a + s then ok := false)
                     blocks)
                blocks;
              (* Stamps survived every later allocation and write. *)
              List.iteri
                (fun i (a, _, last) ->
                   if T.read_f64 t a <> float_of_int i then ok := false;
                   if last > a && T.read_f64 t last <> float_of_int (-i) then
                     ok := false)
                blocks)
           : T.t);
       Samhita.System.run sys;
       !ok)

(* ------------------------------------------------------------------ *)
(* Metrics: time accounting is internally consistent                   *)

let prop_metrics_consistent =
  QCheck.Test.make ~name:"wall time covers every thread's accounted time"
    ~count:30
    QCheck.(pair (int_range 1 8) (int_range 1 5))
    (fun (threads, rounds) ->
       let sys = Samhita.System.create ~threads () in
       let bar = Samhita.System.barrier sys ~parties:threads in
       for tid = 0 to threads - 1 do
         ignore
           (Samhita.System.spawn sys (fun t ->
                let a = T.malloc t ~bytes:256 in
                for r = 1 to rounds do
                  T.write_f64 t a (float_of_int (r + tid));
                  T.charge_flops t 500;
                  T.barrier_wait t bar
                done)
             : T.t)
       done;
       Samhita.System.run sys;
       let wall = Desim.Time.to_ns (Samhita.System.elapsed sys) in
       List.for_all
         (fun ctx ->
            let m = Samhita.Metrics.of_ctx ctx in
            m.compute_ns >= 0 && m.sync_ns >= 0
            && m.compute_ns + m.sync_ns + m.alloc_ns <= wall
            && m.barrier_waits = rounds)
         (Samhita.System.threads sys))

let tests =
  [ QCheck_alcotest.to_alcotest prop_engine_random_processes;
    QCheck_alcotest.to_alcotest prop_link_fifo;
    QCheck_alcotest.to_alcotest prop_allocations_disjoint;
    QCheck_alcotest.to_alcotest prop_metrics_consistent ]

let () = Alcotest.run "stress" [ ("stress", tests) ]
