(* Tests for links, the network model and the SCL layer. *)

let ns = Desim.Time.ns
let t0 = Desim.Time.zero

let mk_link ?(latency = ns 100) ?(bw = 1e9) () =
  (* 1 GB/s = 1 byte/ns: convenient arithmetic. *)
  Fabric.Link.create ~latency ~bandwidth_bytes_per_s:bw ()

(* ---------------- Link ---------------- *)

let test_link_basic_timing () =
  let l = mk_link () in
  (* 1000 bytes at 1 B/ns = 1000 ns serialization + 100 ns latency. *)
  let arrival = Fabric.Link.occupy l ~now:t0 ~bytes:1000 in
  Alcotest.(check int) "ser + latency" 1100 (Desim.Time.to_ns arrival)

let test_link_queueing () =
  let l = mk_link () in
  ignore (Fabric.Link.occupy l ~now:t0 ~bytes:1000);
  (* Second transfer at t=0 must wait for the wire: 2000 + 100. *)
  let a2 = Fabric.Link.occupy l ~now:t0 ~bytes:1000 in
  Alcotest.(check int) "second queues" 2100 (Desim.Time.to_ns a2);
  (* Much later transfer starts immediately. *)
  let a3 = Fabric.Link.occupy l ~now:(Desim.Time.of_ns 10_000) ~bytes:10 in
  Alcotest.(check int) "idle start" 10_110 (Desim.Time.to_ns a3)

let test_link_stats () =
  let l = mk_link () in
  ignore (Fabric.Link.occupy l ~now:t0 ~bytes:500);
  ignore (Fabric.Link.occupy l ~now:t0 ~bytes:300);
  Alcotest.(check int) "bytes" 800 (Fabric.Link.bytes_carried l);
  Alcotest.(check int) "transfers" 2 (Fabric.Link.transfers l);
  Alcotest.(check int) "busy" 800 (Fabric.Link.busy_time l)

let test_link_invalid_bw () =
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Link.create: bandwidth must be positive") (fun () ->
      ignore (Fabric.Link.create ~latency:0 ~bandwidth_bytes_per_s:0. ()))

(* ---------------- Network ---------------- *)

let profile_1b_per_ns =
  { Fabric.Profile.name = "test";
    hop_latency = ns 100;
    bandwidth_bytes_per_s = 1e9;
    post_overhead = ns 50;
    switched = true;
    header_bytes = 0 }

let mk_net ?(profile = profile_1b_per_ns) ?(nodes = 4) () =
  let e = Desim.Engine.create () in
  (e, Fabric.Network.create e ~profile ~node_count:nodes)

let test_network_transfer_switched () =
  let _, net = mk_net () in
  (* post 50 + tx ser 1000 + tx lat 100 + rx ser 1000 + rx lat 100. *)
  let a = Fabric.Network.transfer net ~now:t0 ~src:0 ~dst:1 ~bytes:1000 in
  Alcotest.(check int) "switched path" 2250 (Desim.Time.to_ns a)

let test_network_estimate_matches_uncontended () =
  let _, net = mk_net () in
  let est = Fabric.Network.one_way_estimate net ~bytes:1000 in
  let a = Fabric.Network.transfer net ~now:t0 ~src:0 ~dst:1 ~bytes:1000 in
  Alcotest.(check int) "estimate = uncontended transfer" est
    (Desim.Time.to_ns a)

let test_network_direct_profile () =
  let profile = { profile_1b_per_ns with switched = false } in
  let _, net = mk_net ~profile () in
  let est = Fabric.Network.one_way_estimate net ~bytes:1000 in
  let a = Fabric.Network.transfer net ~now:t0 ~src:0 ~dst:1 ~bytes:1000 in
  Alcotest.(check int) "direct estimate consistent" est (Desim.Time.to_ns a);
  (* One hop of latency instead of two. *)
  Alcotest.(check int) "one hop" 2150 (Desim.Time.to_ns a)

let test_network_loopback () =
  let _, net = mk_net () in
  let a = Fabric.Network.transfer net ~now:t0 ~src:2 ~dst:2 ~bytes:20_000 in
  (* post 50 + memcpy 20 KB at 20 GB/s = 1000 ns. *)
  Alcotest.(check int) "loopback memcpy" 1050 (Desim.Time.to_ns a);
  Alcotest.(check int) "no fabric bytes on links" 0
    (Fabric.Link.bytes_carried (Fabric.Network.tx_link net 2))

let test_network_contention_at_receiver () =
  let _, net = mk_net () in
  (* Two senders to the same destination at t=0: the second serializes on
     the receiver's delivery port. *)
  let a1 = Fabric.Network.transfer net ~now:t0 ~src:0 ~dst:2 ~bytes:1000 in
  let a2 = Fabric.Network.transfer net ~now:t0 ~src:1 ~dst:2 ~bytes:1000 in
  Alcotest.(check int) "first" 2250 (Desim.Time.to_ns a1);
  Alcotest.(check bool) "second delayed by rx port" true
    (Desim.Time.to_ns a2 >= 3150)

let test_network_bad_node () =
  let _, net = mk_net () in
  Alcotest.check_raises "bad node" (Invalid_argument "Network: bad node id")
    (fun () ->
       ignore (Fabric.Network.transfer net ~now:t0 ~src:0 ~dst:9 ~bytes:1))

let test_network_counters () =
  let _, net = mk_net () in
  ignore (Fabric.Network.transfer net ~now:t0 ~src:0 ~dst:1 ~bytes:10);
  ignore (Fabric.Network.transfer net ~now:t0 ~src:1 ~dst:0 ~bytes:20);
  Alcotest.(check int) "messages" 2 (Fabric.Network.messages net);
  Alcotest.(check int) "bytes" 30 (Fabric.Network.bytes_carried net)

(* ---------------- SCL ---------------- *)

let test_scl_rdma_read_blocks () =
  let e, net = mk_net () in
  let src = Fabric.Scl.endpoint net 0 and dst = Fabric.Scl.endpoint net 1 in
  let finished = ref (-1) in
  Desim.Engine.spawn e (fun () ->
      Fabric.Scl.rdma_read ~src ~dst ~bytes:1000 ();
      finished := Desim.Time.to_ns (Desim.Engine.now e));
  Desim.Engine.run e;
  (* Request: 50+32+100+32+100 = 314; reply: 50+1000+100+1000+100 = 2250;
     total 2564. *)
  Alcotest.(check int) "round trip" 2564 !finished

let test_scl_rdma_write_blocks () =
  let e, net = mk_net () in
  let src = Fabric.Scl.endpoint net 0 and dst = Fabric.Scl.endpoint net 1 in
  let finished = ref (-1) in
  Desim.Engine.spawn e (fun () ->
      Fabric.Scl.rdma_write ~src ~dst ~bytes:1000;
      finished := Desim.Time.to_ns (Desim.Engine.now e));
  Desim.Engine.run e;
  Alcotest.(check int) "one way" 2250 !finished

let test_scl_service_resource () =
  let e, net = mk_net () in
  let src = Fabric.Scl.endpoint net 0 and dst = Fabric.Scl.endpoint net 1 in
  let service = Desim.Resource.create ~name:"srv" () in
  let finished = ref (-1) in
  Desim.Engine.spawn e (fun () ->
      Fabric.Scl.rpc ~service ~service_time:(ns 500) ~src ~dst
        ~request_bytes:0 ~reply_bytes:0 ();
      finished := Desim.Time.to_ns (Desim.Engine.now e));
  Desim.Engine.run e;
  (* 250 each way + 500 service. *)
  Alcotest.(check int) "rpc with service" 1000 !finished;
  Alcotest.(check int) "service job recorded" 1 (Desim.Resource.jobs service)

let test_scl_async_read () =
  let e, net = mk_net () in
  let src = Fabric.Scl.endpoint net 0 and dst = Fabric.Scl.endpoint net 1 in
  let completed_at = ref (-1) in
  Fabric.Scl.async_read ~src ~dst ~bytes:1000
    ~on_complete:(fun t -> completed_at := Desim.Time.to_ns t)
    ();
  Alcotest.(check int) "not yet" (-1) !completed_at;
  Desim.Engine.run e;
  Alcotest.(check int) "completion at arrival" 2564 !completed_at

let test_scl_node_accessors () =
  let _, net = mk_net () in
  let ep = Fabric.Scl.endpoint net 3 in
  Alcotest.(check int) "node" 3 (Fabric.Scl.node ep);
  Alcotest.(check bool) "network" true (Fabric.Scl.network ep == net)

(* ---------------- Profiles ---------------- *)

let test_profiles_sane () =
  let open Fabric.Profile in
  Alcotest.(check bool) "ib switched" true ib_qdr_verbs.switched;
  Alcotest.(check bool) "scif direct" false pcie_scif.switched;
  Alcotest.(check bool) "scif faster bw" true
    (pcie_scif.bandwidth_bytes_per_s > ib_qdr_verbs.bandwidth_bytes_per_s);
  Alcotest.(check bool) "scif lower post" true
    (pcie_scif.post_overhead < ib_qdr_verbs.post_overhead);
  (* A page-sized message is cheaper over SCIF. *)
  let e = Desim.Engine.create () in
  let ib = Fabric.Network.create e ~profile:ib_qdr_verbs ~node_count:2 in
  let scif = Fabric.Network.create e ~profile:pcie_scif ~node_count:2 in
  Alcotest.(check bool) "scif cheaper" true
    (Fabric.Network.one_way_estimate scif ~bytes:4096
     < Fabric.Network.one_way_estimate ib ~bytes:4096)

let prop_transfer_monotone_in_size =
  QCheck.Test.make ~name:"transfer time is monotone in message size"
    ~count:100
    QCheck.(pair (int_bound 100_000) (int_bound 100_000))
    (fun (b1, b2) ->
       let _, net = mk_net () in
       let small = min b1 b2 and big = max b1 b2 in
       Fabric.Network.one_way_estimate net ~bytes:small
       <= Fabric.Network.one_way_estimate net ~bytes:big)

let tests =
  [ Alcotest.test_case "link timing" `Quick test_link_basic_timing;
    Alcotest.test_case "link queueing" `Quick test_link_queueing;
    Alcotest.test_case "link stats" `Quick test_link_stats;
    Alcotest.test_case "link invalid bandwidth" `Quick test_link_invalid_bw;
    Alcotest.test_case "switched transfer" `Quick
      test_network_transfer_switched;
    Alcotest.test_case "estimate matches transfer" `Quick
      test_network_estimate_matches_uncontended;
    Alcotest.test_case "direct profile" `Quick test_network_direct_profile;
    Alcotest.test_case "loopback" `Quick test_network_loopback;
    Alcotest.test_case "receiver contention" `Quick
      test_network_contention_at_receiver;
    Alcotest.test_case "bad node" `Quick test_network_bad_node;
    Alcotest.test_case "counters" `Quick test_network_counters;
    Alcotest.test_case "scl rdma_read" `Quick test_scl_rdma_read_blocks;
    Alcotest.test_case "scl rdma_write" `Quick test_scl_rdma_write_blocks;
    Alcotest.test_case "scl service resource" `Quick
      test_scl_service_resource;
    Alcotest.test_case "scl async_read" `Quick test_scl_async_read;
    Alcotest.test_case "scl endpoints" `Quick test_scl_node_accessors;
    Alcotest.test_case "profiles sane" `Quick test_profiles_sane;
    QCheck_alcotest.to_alcotest prop_transfer_monotone_in_size ]

let () = Alcotest.run "fabric" [ ("fabric", tests) ]
