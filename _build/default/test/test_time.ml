(* Unit tests for Desim.Time. *)

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_roundtrip () =
  check_int "of/to ns" 42 Desim.Time.(to_ns (of_ns 42));
  check_int "zero" 0 Desim.Time.(to_ns zero)

let test_arith () =
  let t = Desim.Time.of_ns 100 in
  check_int "add" 150 Desim.Time.(to_ns (add t 50));
  check_int "add negative span" 70 Desim.Time.(to_ns (add t (-30)));
  check_int "diff" 60 Desim.Time.(diff (of_ns 100) (of_ns 40));
  check_int "diff negative" (-60) Desim.Time.(diff (of_ns 40) (of_ns 100))

let test_units () =
  check_int "us" 3_000 (Desim.Time.us 3);
  check_int "ms" 2_000_000 (Desim.Time.ms 2);
  check_int "s" 1_000_000_000 (Desim.Time.s 1);
  check_int "ns" 7 (Desim.Time.ns 7)

let test_compare () =
  let a = Desim.Time.of_ns 1 and b = Desim.Time.of_ns 2 in
  Alcotest.(check bool) "lt" true Desim.Time.(a < b);
  Alcotest.(check bool) "le refl" true Desim.Time.(a <= a);
  check_int "max" 2 Desim.Time.(to_ns (max a b));
  Alcotest.(check bool) "compare" true (Desim.Time.compare a b < 0)

let test_span_of_float () =
  check_int "rounds" 3 (Desim.Time.span_of_float_ns 2.6);
  check_int "rounds down" 2 (Desim.Time.span_of_float_ns 2.4);
  check_int "negative clamps" 0 (Desim.Time.span_of_float_ns (-5.0));
  check_int "zero" 0 (Desim.Time.span_of_float_ns 0.0)

let test_float_seconds () =
  Alcotest.(check (float 1e-12))
    "to_float_s" 1.5e-3
    (Desim.Time.to_float_s (Desim.Time.of_ns 1_500_000))

let test_pp () =
  let s t = Format.asprintf "%a" Desim.Time.pp (Desim.Time.of_ns t) in
  check_str "ns" "999ns" (s 999);
  check_str "us" "1.50us" (s 1_500);
  check_str "ms" "2.00ms" (s 2_000_000);
  check_str "s" "3.000s" (s 3_000_000_000)

let tests =
  [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "units" `Quick test_units;
    Alcotest.test_case "comparisons" `Quick test_compare;
    Alcotest.test_case "span_of_float_ns" `Quick test_span_of_float;
    Alcotest.test_case "float seconds" `Quick test_float_seconds;
    Alcotest.test_case "pretty printing" `Quick test_pp ]

let () = Alcotest.run "desim.time" [ ("time", tests) ]
