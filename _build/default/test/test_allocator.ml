(* Tests for the per-thread arena allocator. *)

module A = Samhita.Allocator.Arena

let test_round_size () =
  Alcotest.(check int) "1 -> 8" 8 (Samhita.Allocator.round_size 1);
  Alcotest.(check int) "8 -> 8" 8 (Samhita.Allocator.round_size 8);
  Alcotest.(check int) "9 -> 16" 16 (Samhita.Allocator.round_size 9);
  Alcotest.check_raises "zero"
    (Invalid_argument "Allocator.round_size: bytes must be > 0") (fun () ->
      ignore (Samhita.Allocator.round_size 0))

let test_needs_chunk_initially () =
  let a = A.create () in
  Alcotest.(check bool) "no chunk yet" true (A.alloc a ~bytes:8 = `Need_chunk)

let test_bump_allocation () =
  let a = A.create () in
  A.add_chunk a ~base:1000 ~size:64;
  Alcotest.(check bool) "first" true (A.alloc a ~bytes:8 = `Hit 1000);
  Alcotest.(check bool) "second" true (A.alloc a ~bytes:10 = `Hit 1008);
  (* 10 rounds to 16, so next is at 1024. *)
  Alcotest.(check bool) "third" true (A.alloc a ~bytes:8 = `Hit 1024);
  Alcotest.(check int) "allocated bytes" 32 (A.allocated_bytes a)

let test_chunk_exhaustion () =
  let a = A.create () in
  A.add_chunk a ~base:0 ~size:16;
  Alcotest.(check bool) "fits" true (A.alloc a ~bytes:16 = `Hit 0);
  Alcotest.(check bool) "exhausted" true (A.alloc a ~bytes:8 = `Need_chunk);
  A.add_chunk a ~base:100 ~size:16;
  Alcotest.(check bool) "new chunk" true (A.alloc a ~bytes:8 = `Hit 100)

let test_free_reuse () =
  let a = A.create () in
  A.add_chunk a ~base:0 ~size:64;
  let addr = match A.alloc a ~bytes:24 with `Hit x -> x | _ -> -1 in
  A.free a ~addr ~bytes:24;
  Alcotest.(check int) "free list holds it" 1 (A.free_list_blocks a);
  Alcotest.(check bool) "exact-size reuse" true (A.alloc a ~bytes:24 = `Hit addr);
  Alcotest.(check int) "free list drained" 0 (A.free_list_blocks a);
  (* A different size does not reuse the freed block. *)
  A.free a ~addr ~bytes:24;
  (match A.alloc a ~bytes:8 with
   | `Hit x -> Alcotest.(check bool) "different size bumps" true (x <> addr)
   | `Need_chunk -> Alcotest.fail "expected bump hit")

let test_wasted_accounting () =
  let a = A.create () in
  A.add_chunk a ~base:0 ~size:64;
  ignore (A.alloc a ~bytes:8);
  A.add_chunk a ~base:100 ~size:64;
  Alcotest.(check int) "abandoned remainder" 56 (A.wasted_bytes a)

let prop_no_overlap =
  QCheck.Test.make ~name:"live arena blocks never overlap" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (int_range 1 64))
    (fun sizes ->
       let a = A.create () in
       let next_base = ref 0 in
       let live = ref [] in
       let ok = ref true in
       List.iter
         (fun bytes ->
            let rec go () =
              match A.alloc a ~bytes with
              | `Hit addr ->
                let size = Samhita.Allocator.round_size bytes in
                List.iter
                  (fun (b, s) ->
                     if addr < b + s && b < addr + size then ok := false)
                  !live;
                live := (addr, size) :: !live
              | `Need_chunk ->
                A.add_chunk a ~base:!next_base ~size:4096;
                next_base := !next_base + 4096;
                go ()
            in
            go ())
         sizes;
       !ok)

let prop_free_then_alloc_same_size_reuses =
  QCheck.Test.make ~name:"freed blocks are reused LIFO per size class"
    ~count:100
    QCheck.(int_range 1 128)
    (fun bytes ->
       let a = A.create () in
       A.add_chunk a ~base:0 ~size:8192;
       match A.alloc a ~bytes with
       | `Need_chunk -> false
       | `Hit a1 -> (
           A.free a ~addr:a1 ~bytes;
           match A.alloc a ~bytes with
           | `Hit a2 -> a1 = a2
           | `Need_chunk -> false))

let tests =
  [ Alcotest.test_case "round size" `Quick test_round_size;
    Alcotest.test_case "needs chunk" `Quick test_needs_chunk_initially;
    Alcotest.test_case "bump allocation" `Quick test_bump_allocation;
    Alcotest.test_case "chunk exhaustion" `Quick test_chunk_exhaustion;
    Alcotest.test_case "free/reuse" `Quick test_free_reuse;
    Alcotest.test_case "waste accounting" `Quick test_wasted_accounting;
    QCheck_alcotest.to_alcotest prop_no_overlap;
    QCheck_alcotest.to_alcotest prop_free_then_alloc_same_size_reuses ]

let () = Alcotest.run "samhita.allocator" [ ("arena", tests) ]
