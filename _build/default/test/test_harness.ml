(* Tests for the figure harness: series rendering and the qualitative
   shapes the paper's figures must exhibit (asserted at quick scale). *)

module S = Harness.Series
module E = Harness.Experiments

let fig_simple =
  { S.id = "t1";
    title = "test";
    xlabel = "x";
    ylabel = "y";
    series =
      [ { S.label = "a"; points = [ (1., 10.); (2., 20.) ] };
        { S.label = "b"; points = [ (2., 5.) ] } ];
    notes = [ "note" ] }

let test_xs_and_lookup () =
  Alcotest.(check (list (float 0.))) "xs merged" [ 1.; 2. ] (S.xs fig_simple);
  Alcotest.(check (option (float 0.))) "value" (Some 20.)
    (S.value_at fig_simple ~label:"a" ~x:2.);
  Alcotest.(check (option (float 0.))) "hole" None
    (S.value_at fig_simple ~label:"b" ~x:1.);
  Alcotest.(check (option (float 0.))) "unknown series" None
    (S.value_at fig_simple ~label:"zz" ~x:1.)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

let test_render_contains_data () =
  let out = Format.asprintf "%a" S.render fig_simple in
  List.iter
    (fun needle ->
       Alcotest.(check bool) ("render contains " ^ needle) true
         (contains out needle))
    [ "t1"; "10.0000"; "20.0000"; "5.0000"; "# note"; "-" ]

let test_csv () =
  let csv = S.to_csv fig_simple in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check string) "header" "x,a,b" (List.nth lines 0);
  Alcotest.(check string) "row 1 (missing cell empty)" "1,10," (List.nth lines 1);
  Alcotest.(check string) "row 2" "2,20,5" (List.nth lines 2)

let test_scale_parse () =
  Alcotest.(check bool) "quick" true (E.scale_of_string "quick" = Ok E.Quick);
  Alcotest.(check bool) "paper" true (E.scale_of_string "paper" = Ok E.Paper);
  Alcotest.(check bool) "full alias" true
    (E.scale_of_string "full" = Ok E.Paper);
  Alcotest.(check bool) "garbage" true
    (match E.scale_of_string "nope" with Error _ -> true | Ok _ -> false)

let test_registry () =
  let c = E.ctx E.Quick in
  let ids = List.map fst (E.all c) in
  List.iter
    (fun id ->
       Alcotest.(check bool) (id ^ " registered") true (List.mem id ids))
    [ "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10";
      "fig11"; "fig12"; "fig13" ];
  Alcotest.(check bool) "by_id finds" true (E.by_id "fig3" <> None);
  Alcotest.(check bool) "by_id unknown" true (E.by_id "fig99" = None)

(* Shared quick-scale context: experiments memoize across figure builders. *)
let ctx = lazy (E.ctx E.Quick)

let value fig label x =
  match S.value_at fig ~label ~x with
  | Some v -> v
  | None -> Alcotest.failf "missing point %s@%g in %s" label x fig.S.id

(* Figure 3 shape: with local allocation, Samhita's normalized compute time
   stays close to Pthreads at every scale. *)
let test_shape_fig3 () =
  let fig = E.fig3 (Lazy.force ctx) in
  List.iter
    (fun x ->
       let v = value fig "smh,M=1" x in
       Alcotest.(check bool)
         (Printf.sprintf "local smh flat at P=%g (got %g)" x v)
         true
         (v < 1.25))
    [ 1.; 4.; 8. ]

(* Figures 4-5: false sharing penalizes small M and is amortized at larger
   M; strided is at least as bad as plain global. *)
let test_shape_fig45 () =
  let c = Lazy.force ctx in
  let f4 = E.fig4 c and f5 = E.fig5 c in
  let p = 8. in
  Alcotest.(check bool) "global M=1 penalty exists" true
    (value f4 "smh,M=1" p > 1.5);
  Alcotest.(check bool) "amortized by larger M" true
    (value f4 "smh,M=10" p < value f4 "smh,M=1" p);
  Alcotest.(check bool) "strided >= global at M=1" true
    (value f5 "smh,M=1" p >= value f4 "smh,M=1" p);
  Alcotest.(check bool) "pthreads barely affected" true
    (value f4 "pth,M=1" 4. < 1.2)

(* Figures 6: compute grows with S and stays flat across cores for local
   allocation. *)
let test_shape_fig6 () =
  let fig = E.fig6 (Lazy.force ctx) in
  Alcotest.(check bool) "more data, more compute" true
    (value fig "S=4" 4. > value fig "S=1" 4.);
  let v1 = value fig "S=4" 1. and v8 = value fig "S=4" 8. in
  Alcotest.(check bool) "flat across cores (local)" true
    (Float.abs (v8 -. v1) /. v1 < 0.15)

(* Figure 9/10 shapes at the mid core count. *)
let test_shape_fig9_10 () =
  let c = Lazy.force ctx in
  let f9 = E.fig9 c and f10 = E.fig10 c in
  let s = 4. in
  Alcotest.(check bool) "compute: local <= global" true
    (value f9 "local" s <= value f9 "global" s);
  Alcotest.(check bool) "compute: global <= strided" true
    (value f9 "global" s <= value f9 "strided" s);
  (* The full local < global < strided sync ordering only emerges at the
     paper's P=16; the robust quick-scale property is that false-sharing
     sync cost does not shrink as the ordinary region grows. *)
  Alcotest.(check bool) "sync grows with S (strided)" true
    (value f10 "strided" s >= 0.95 *. value f10 "strided" 1.)

(* Figure 11: Samhita synchronization is orders of magnitude above
   Pthreads (consistency operations ride on synchronization). *)
let test_shape_fig11 () =
  let fig = E.fig11 (Lazy.force ctx) in
  let smh = value fig "smh_local" 4. and pth = value fig "pth_local" 4. in
  Alcotest.(check bool)
    (Printf.sprintf "smh sync (%g) >> pth sync (%g)" smh pth)
    true
    (smh > 10. *. pth)

(* Figures 12-13: parallel speedup exists on both runtimes; pthreads scales
   within the node. *)
let test_shape_fig12_13 () =
  let c = Lazy.force ctx in
  let f12 = E.fig12 c and f13 = E.fig13 c in
  Alcotest.(check (float 1e-9)) "speedup normalized at 1" 1.0
    (value f12 "pthreads" 1.);
  Alcotest.(check bool) "jacobi pthreads scales" true
    (value f12 "pthreads" 4. > 2.0);
  Alcotest.(check bool) "md pthreads scales" true
    (value f13 "pthreads" 4. > 2.5);
  Alcotest.(check bool) "md samhita speeds up with cores" true
    (value f13 "samhita" 8. > value f13 "samhita" 1.)

(* Ablations must at least run and produce the expected series. *)
let test_ablations_run () =
  let c = Lazy.force ctx in
  List.iter
    (fun (id, f) ->
       let fig = f c in
       Alcotest.(check bool) (id ^ " has series") true
         (List.length fig.S.series >= 2);
       List.iter
         (fun s ->
            Alcotest.(check bool)
              (id ^ "/" ^ s.S.label ^ " has points")
              true
              (s.S.points <> []))
         fig.S.series)
    [ ("abl-prefetch", E.ablation_prefetch);
      ("abl-line", E.ablation_line_size);
      ("abl-bypass", E.ablation_manager_bypass);
      ("abl-fabric", E.ablation_fabric);
      ("abl-history", E.ablation_history);
      ("abl-evict", E.ablation_eviction) ]

let test_ablation_effects () =
  let c = Lazy.force ctx in
  let bypass = E.ablation_manager_bypass c in
  Alcotest.(check bool) "bypass cheaper at 1 node" true
    (value bypass "manager-bypass" 1. < value bypass "manager-remote" 1.);
  let fabric = E.ablation_fabric c in
  Alcotest.(check bool) "scif cheaper than verbs" true
    (value fabric "pcie-scif" 0. < value fabric "ib-verbs" 0.);
  let hist = E.ablation_history c in
  Alcotest.(check bool) "history reduces sync vs none" true
    (value hist "sync" 64. <= value hist "sync" 0.)

let tests =
  [ Alcotest.test_case "xs and lookup" `Quick test_xs_and_lookup;
    Alcotest.test_case "render" `Quick test_render_contains_data;
    Alcotest.test_case "csv" `Quick test_csv;
    Alcotest.test_case "scale parsing" `Quick test_scale_parse;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "shape: fig3 local parity" `Slow test_shape_fig3;
    Alcotest.test_case "shape: fig4/5 amortization" `Slow test_shape_fig45;
    Alcotest.test_case "shape: fig6 flat local" `Slow test_shape_fig6;
    Alcotest.test_case "shape: fig9/10 ordering" `Slow test_shape_fig9_10;
    Alcotest.test_case "shape: fig11 sync gap" `Slow test_shape_fig11;
    Alcotest.test_case "shape: fig12/13 speedups" `Slow test_shape_fig12_13;
    Alcotest.test_case "ablations run" `Slow test_ablations_run;
    Alcotest.test_case "ablation effects" `Slow test_ablation_effects ]

let () = Alcotest.run "harness" [ ("figures", tests) ]
