(* Model-based property tests: the software cache and the SMP coherence
   state machine are driven with random operation sequences and compared
   against simple reference models. *)

(* ------------------------------------------------------------------ *)
(* Software cache vs. a naive model                                    *)

let cache_cfg = { Samhita.Config.default with cache_lines = 4 }
let layout = Samhita.Layout.of_config cache_cfg
let lb = layout.Samhita.Layout.line_bytes

type cache_op =
  | Insert of int
  | Find of int
  | Invalidate of int
  | Mark of int  (* mark_written page 0 of the line, if cached *)
  | Clean of int

let op_gen rng =
  let line = QCheck.Gen.int_range 0 9 rng in
  match QCheck.Gen.int_range 0 4 rng with
  | 0 -> Insert line
  | 1 -> Find line
  | 2 -> Invalidate line
  | 3 -> Mark line
  | _ -> Clean line

let op_print = function
  | Insert l -> Printf.sprintf "Insert %d" l
  | Find l -> Printf.sprintf "Find %d" l
  | Invalidate l -> Printf.sprintf "Invalidate %d" l
  | Mark l -> Printf.sprintf "Mark %d" l
  | Clean l -> Printf.sprintf "Clean %d" l

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_print ops))
    QCheck.Gen.(list_size (int_range 1 60) op_gen)

(* Reference model: set of (line, dirty) with capacity; eviction picks a
   victim by the same documented policy (dirty-first, then least recently
   used), so the models agree exactly on membership. *)
module Model = struct
  type entry = { line : int; mutable dirty : bool; mutable tick : int }

  type t = { mutable entries : entry list; mutable clock : int }

  let create () = { entries = []; clock = 0 }

  let touch t e =
    t.clock <- t.clock + 1;
    e.tick <- t.clock

  let find t line = List.find_opt (fun e -> e.line = line) t.entries

  let insert t line =
    match find t line with
    | Some e -> touch t e
    | None ->
      if List.length t.entries >= cache_cfg.Samhita.Config.cache_lines then begin
        let victim =
          List.fold_left
            (fun best e ->
               match best with
               | None -> Some e
               | Some b ->
                 if e.dirty <> b.dirty then if e.dirty then Some e else Some b
                 else if e.tick < b.tick then Some e
                 else Some b)
            None t.entries
        in
        match victim with
        | Some v ->
          t.entries <- List.filter (fun e -> e.line <> v.line) t.entries
        | None -> ()
      end;
      let e = { line; dirty = false; tick = 0 } in
      touch t e;
      t.entries <- e :: t.entries

  let apply t = function
    | Insert l -> insert t l
    | Find l -> ( match find t l with Some e -> touch t e | None -> ())
    | Invalidate l ->
      t.entries <- List.filter (fun e -> e.line <> l) t.entries
    | Mark l -> ( match find t l with Some e -> e.dirty <- true | None -> ())
    | Clean l -> ( match find t l with Some e -> e.dirty <- false | None -> ())

  let lines t = List.sort compare (List.map (fun e -> e.line) t.entries)

  let dirty_lines t =
    List.sort compare
      (List.filter_map (fun e -> if e.dirty then Some e.line else None)
         t.entries)
end

let apply_real cache op =
  match op with
  | Insert l ->
    if Samhita.Cache.peek cache l = None then
      ignore
        (Samhita.Cache.insert cache ~line:l ~data:(Bytes.make lb '\000')
           ~version:0 ~evict:(fun _ -> ())
         : Samhita.Cache.entry)
    else ignore (Samhita.Cache.find cache l)
  | Find l -> ignore (Samhita.Cache.find cache l)
  | Invalidate l -> Samhita.Cache.invalidate cache l
  | Mark l -> (
      match Samhita.Cache.peek cache l with
      | Some e -> Samhita.Cache.mark_written cache e ~offset:0 ~len:8
      | None -> ())
  | Clean l -> (
      match Samhita.Cache.peek cache l with
      | Some e -> Samhita.Cache.clean cache e ~version:e.Samhita.Cache.version
      | None -> ())

let real_lines cache =
  List.sort compare
    (List.filter_map
       (fun l ->
          match Samhita.Cache.peek cache l with
          | Some _ -> Some l
          | None -> None)
       (List.init 10 Fun.id))

let real_dirty cache =
  List.sort compare
    (List.map
       (fun (e : Samhita.Cache.entry) -> e.Samhita.Cache.line)
       (Samhita.Cache.dirty_entries cache))

let prop_cache_matches_model =
  QCheck.Test.make ~name:"cache membership/dirtiness matches LRU model"
    ~count:500 arb_ops
    (fun ops ->
       let cache = Samhita.Cache.create cache_cfg layout in
       let model = Model.create () in
       List.for_all
         (fun op ->
            apply_real cache op;
            Model.apply model op;
            real_lines cache = Model.lines model
            && real_dirty cache = Model.dirty_lines model
            && Samhita.Cache.size cache
               <= Samhita.Cache.capacity cache)
         ops)

(* ------------------------------------------------------------------ *)
(* SMP coherence vs. a per-line reference automaton                    *)

type coh_op = Read of int * int | Write of int * int  (* thread, line *)

let coh_gen rng =
  let thread = QCheck.Gen.int_range 0 3 rng in
  let line = QCheck.Gen.int_range 0 3 rng in
  if QCheck.Gen.bool rng then Read (thread, line) else Write (thread, line)

let arb_coh =
  QCheck.make
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (function
             | Read (t, l) -> Printf.sprintf "R t%d l%d" t l
             | Write (t, l) -> Printf.sprintf "W t%d l%d" t l)
           ops))
    QCheck.Gen.(list_size (int_range 1 80) coh_gen)

(* Reference automaton per line: (present bitmask, owner). Mirrors the
   documented model in Smp.Machine. *)
let coh_reference ops =
  let cfg = Smp.Config.default in
  let state = Array.make 4 (0, -1) in
  List.map
    (fun op ->
       match op with
       | Read (t, l) ->
         let present, owner = state.(l) in
         let bit = 1 lsl t in
         if present land bit <> 0 && (owner = t || owner = -1) then begin
           (* hit *)
           cfg.Smp.Config.t_mem
         end
         else begin
           let cost =
             if owner >= 0 && owner <> t then cfg.Smp.Config.t_coherence_miss
             else cfg.Smp.Config.t_cold_miss
           in
           state.(l) <- (present lor bit, -1);
           cost
         end
       | Write (t, l) ->
         let present, owner = state.(l) in
         let bit = 1 lsl t in
         if owner = t then cfg.Smp.Config.t_mem
         else begin
           let others = present land lnot bit in
           let cost =
             if others <> 0 || owner >= 0 then cfg.Smp.Config.t_invalidate
             else if present land bit <> 0 then cfg.Smp.Config.t_mem
             else cfg.Smp.Config.t_cold_miss
           in
           state.(l) <- (bit, t);
           cost
         end)
    ops

let prop_coherence_matches_reference =
  QCheck.Test.make ~name:"SMP coherence costs match the reference automaton"
    ~count:500 arb_coh
    (fun ops ->
       let machine = Smp.Machine.create Smp.Config.default in
       (* Four lines, 64 bytes apart. *)
       let base = Smp.Machine.alloc machine ~bytes:256 ~align:64 in
       let real =
         List.map
           (function
             | Read (t, l) ->
               Smp.Machine.read_cost machine ~thread:t
                 ~addr:(base + (l * 64))
             | Write (t, l) ->
               Smp.Machine.write_cost machine ~thread:t
                 ~addr:(base + (l * 64)))
           ops
       in
       (* The machine starts cold (untouched lines), matching the
          automaton's all-absent initial state except that the very first
          access of each line is a cold miss in both. *)
       real = coh_reference ops)

let tests =
  [ QCheck_alcotest.to_alcotest prop_cache_matches_model;
    QCheck_alcotest.to_alcotest prop_coherence_matches_reference ]

let () = Alcotest.run "models" [ ("model-based", tests) ]
