(* Tests for the benchmark kernels: exact numerical agreement between both
   runtimes and the sequential references, plus partition-function
   properties. *)

let smh = Workload.Samhita_backend.default
let pth = Workload.Smp_backend.default

(* ---------------- micro-benchmark ---------------- *)

let micro_p =
  { Workload.Microbench.default_params with n_outer = 3; m_inner = 2 }

let check_micro backend alloc threads =
  let r = Workload.Microbench.run backend ~threads
      { micro_p with Workload.Microbench.alloc }
  in
  Alcotest.(check bool)
    (Printf.sprintf "gsum exact (%s, P=%d)"
       (Workload.Microbench.mode_name alloc) threads)
    true
    (r.gsum = r.expected_gsum)

let test_micro_pth () =
  List.iter
    (fun alloc -> List.iter (check_micro pth alloc) [ 1; 2; 8 ])
    [ Workload.Microbench.Local; Global; Global_strided ]

let test_micro_smh () =
  List.iter
    (fun alloc -> List.iter (check_micro smh alloc) [ 1; 3; 8 ])
    [ Workload.Microbench.Local; Global; Global_strided ]

let test_micro_smh_16 () =
  (* Threads spanning multiple compute nodes. *)
  List.iter
    (fun alloc -> check_micro smh alloc 16)
    [ Workload.Microbench.Local; Global_strided ]

let test_micro_param_validation () =
  Alcotest.check_raises "warmup >= n_outer"
    (Invalid_argument "Microbench.run: warmup must be < n_outer") (fun () ->
      ignore
        (Workload.Microbench.run pth ~threads:1
           { micro_p with warmup = 3 }));
  Alcotest.check_raises "threads <= 0"
    (Invalid_argument "Microbench.run: threads") (fun () ->
      ignore (Workload.Microbench.run pth ~threads:0 micro_p))

let test_micro_metrics_populated () =
  let r = Workload.Microbench.run smh ~threads:4 micro_p in
  Alcotest.(check int) "per-thread arrays" 4 (Array.length r.compute_ns);
  Array.iter
    (fun c -> Alcotest.(check bool) "compute positive" true (c > 0))
    r.compute_ns;
  Alcotest.(check bool) "wall covers compute" true
    (r.wall_ns > r.compute_ns.(0))

let test_micro_false_sharing_ordering () =
  (* Strided access must cost at least as much compute as local (the
     false-sharing penalty of the paper's Figures 3-5). *)
  let mean = Workload.Microbench.mean in
  let run alloc =
    Workload.Microbench.run smh ~threads:8
      { Workload.Microbench.default_params with
        m_inner = 5;
        alloc }
  in
  let local = run Workload.Microbench.Local in
  let strided = run Workload.Microbench.Global_strided in
  Alcotest.(check bool) "strided compute >= local" true
    (mean strided.compute_ns >= mean local.compute_ns);
  Alcotest.(check bool) "strided misses > local" true
    (Array.fold_left ( + ) 0 strided.misses
     > Array.fold_left ( + ) 0 local.misses)

(* ---------------- Jacobi ---------------- *)

let jacobi_p = { Workload.Jacobi.default_params with n = 32; iters = 4 }

let test_jacobi_exact () =
  let ref_sum, ref_res = Workload.Jacobi.reference jacobi_p in
  Alcotest.(check bool) "reference residual positive" true (ref_res > 0.);
  List.iter
    (fun (backend, name, threads) ->
       let r = Workload.Jacobi.run backend ~threads jacobi_p in
       Alcotest.(check bool)
         (Printf.sprintf "grid exact (%s P=%d)" name threads)
         true
         (r.checksum = ref_sum))
    [ (pth, "pth", 1); (pth, "pth", 4); (smh, "smh", 1); (smh, "smh", 4);
      (smh, "smh", 8) ]

let test_jacobi_residual_decreases () =
  let r1 = Workload.Jacobi.reference { jacobi_p with iters = 1 } in
  let r8 = Workload.Jacobi.reference { jacobi_p with iters = 8 } in
  Alcotest.(check bool) "residual shrinks with iterations" true
    (snd r8 < snd r1)

let test_jacobi_validation () =
  Alcotest.check_raises "grid too small"
    (Invalid_argument "Jacobi.run: grid smaller than threads") (fun () ->
      ignore (Workload.Jacobi.run pth ~threads:4 { jacobi_p with n = 2 }))

let prop_row_range_partitions =
  QCheck.Test.make ~name:"row_range partitions interior rows exactly"
    ~count:200
    QCheck.(pair (int_range 1 200) (int_range 1 32))
    (fun (n, threads) ->
       QCheck.assume (n >= threads);
       let ranges =
         List.init threads (fun tid ->
             Workload.Jacobi.row_range ~n ~threads ~tid)
       in
       (* Contiguous cover of [1, n+1) with no gaps or overlaps. *)
       let rec check expected = function
         | [] -> expected = n + 1
         | (lo, hi) :: rest -> lo = expected && hi >= lo && check hi rest
       in
       check 1 ranges)

(* ---------------- molecular dynamics ---------------- *)

let md_p = { Workload.Md.default_params with n = 48; steps = 3 }

let test_md_positions_exact () =
  let ref_sum, _ = Workload.Md.reference md_p in
  List.iter
    (fun (backend, name, threads) ->
       let r = Workload.Md.run backend ~threads md_p in
       Alcotest.(check bool)
         (Printf.sprintf "positions exact (%s P=%d)" name threads)
         true
         (r.pos_checksum = ref_sum))
    [ (pth, "pth", 1); (pth, "pth", 6); (smh, "smh", 1); (smh, "smh", 6);
      (smh, "smh", 12) ]

let test_md_energies_close () =
  let _, ref_e = Workload.Md.reference md_p in
  let r = Workload.Md.run smh ~threads:6 md_p in
  Alcotest.(check int) "one energy pair per step" md_p.steps
    (List.length r.energies);
  List.iter2
    (fun (ke, pe) (rke, rpe) ->
       let close a b =
         Float.abs (a -. b) <= (1e-9 *. Float.abs b) +. 1e-12
       in
       Alcotest.(check bool) "kinetic close" true (close ke rke);
       Alcotest.(check bool) "potential close" true (close pe rpe))
    r.energies ref_e

let test_md_kinetic_grows_from_rest () =
  let _, ref_e = Workload.Md.reference md_p in
  let kes = List.map fst ref_e in
  let rec increasing = function
    | a :: (b :: _ as r) -> a < b && increasing r
    | _ -> true
  in
  Alcotest.(check bool) "system accelerates from rest" true (increasing kes)

let prop_slice_partitions =
  QCheck.Test.make ~name:"particle slices partition [0,n)" ~count:200
    QCheck.(pair (int_range 1 300) (int_range 1 32))
    (fun (n, threads) ->
       QCheck.assume (n >= threads);
       let slices =
         List.init threads (fun tid -> Workload.Md.slice ~n ~threads ~tid)
       in
       let rec check expected = function
         | [] -> expected = n
         | (lo, hi) :: rest -> lo = expected && hi >= lo && check hi rest
       in
       check 0 slices)

let test_md_validation () =
  Alcotest.check_raises "too few particles"
    (Invalid_argument "Md.run: fewer particles than threads") (fun () ->
      ignore (Workload.Md.run pth ~threads:8 { md_p with n = 4 }))

let tests =
  [ Alcotest.test_case "micro exact on pthreads" `Quick test_micro_pth;
    Alcotest.test_case "micro exact on samhita" `Quick test_micro_smh;
    Alcotest.test_case "micro exact at 16 threads" `Quick test_micro_smh_16;
    Alcotest.test_case "micro validation" `Quick test_micro_param_validation;
    Alcotest.test_case "micro metrics" `Quick test_micro_metrics_populated;
    Alcotest.test_case "false-sharing ordering" `Quick
      test_micro_false_sharing_ordering;
    Alcotest.test_case "jacobi exact" `Quick test_jacobi_exact;
    Alcotest.test_case "jacobi residual decreases" `Quick
      test_jacobi_residual_decreases;
    Alcotest.test_case "jacobi validation" `Quick test_jacobi_validation;
    QCheck_alcotest.to_alcotest prop_row_range_partitions;
    Alcotest.test_case "md positions exact" `Quick test_md_positions_exact;
    Alcotest.test_case "md energies close" `Quick test_md_energies_close;
    Alcotest.test_case "md kinetic grows" `Quick
      test_md_kinetic_grows_from_rest;
    QCheck_alcotest.to_alcotest prop_slice_partitions;
    Alcotest.test_case "md validation" `Quick test_md_validation ]

let () = Alcotest.run "workload" [ ("kernels", tests) ]
