(* Randomized equivalence testing: generated data-race-free programs must
   produce identical memory contents on the Samhita DSM and on the SMP
   baseline (whose strong coherence makes it an oracle).

   Program model: [vars] 8-byte shared variables at randomized offsets
   inside one shared allocation (so variables land in arbitrary positions
   within pages and lines, exercising false sharing and diff merging).
   Execution proceeds in [rounds]; in each round every variable is owned
   by one thread (a seeded random assignment), the owner writes a value
   derived from (round, var), and a barrier separates rounds, after which
   every thread reads every variable. Additionally each thread performs a
   random number of lock-protected increments of a shared accumulator per
   round (exercising the fine-grained update path). Data-race freedom by
   construction; any divergence from the oracle is a protocol bug. *)

module T = Samhita.Thread_ctx

type program = {
  threads : int;
  vars : int;
  rounds : int;
  offsets : int array;  (* var -> byte offset, 8-aligned, unique *)
  owner : int array array;  (* round -> var -> thread *)
  increments : int array array;  (* round -> thread -> count *)
}

let gen_program rng =
  let int_range lo hi = QCheck.Gen.int_range lo hi rng in
  let threads = int_range 2 6 in
  let vars = int_range 1 24 in
  let rounds = int_range 1 5 in
  (* Unique 8-aligned offsets within a 3-line region. *)
  let region = 3 * Samhita.Config.line_bytes Samhita.Config.default in
  let slots = region / 8 in
  let chosen = Hashtbl.create 16 in
  let offsets =
    Array.init vars (fun _ ->
        let rec draw () =
          let s = int_range 0 (slots - 1) in
          if Hashtbl.mem chosen s then draw ()
          else begin
            Hashtbl.replace chosen s ();
            s * 8
          end
        in
        draw ())
  in
  let owner =
    Array.init rounds (fun _ ->
        Array.init vars (fun _ -> int_range 0 (threads - 1)))
  in
  let increments =
    Array.init rounds (fun _ ->
        Array.init threads (fun _ -> int_range 0 3))
  in
  { threads; vars; rounds; offsets; owner; increments }

let arbitrary_program =
  QCheck.make ~print:(fun p ->
      Printf.sprintf "{threads=%d; vars=%d; rounds=%d}" p.threads p.vars
        p.rounds)
    gen_program

let value_of ~round ~var = float_of_int ((round * 1000) + var + 1)

(* Run the program on one backend; returns (per-round read logs, final
   accumulator). The read log records every variable as seen by thread 0
   after each barrier. *)
let run_on (backend : Workload.Backend_sig.backend) (p : program) =
  let module B = (val backend) in
  let sys = B.create ~threads:p.threads in
  let m = B.mutex sys in
  let bar = B.barrier sys ~parties:p.threads in
  let base = ref 0 and acc_addr = ref 0 in
  let region = 3 * Samhita.Config.line_bytes Samhita.Config.default in
  let logs = Array.make_matrix p.rounds p.vars nan in
  let final_acc = ref nan in
  let body t =
    let tid = B.thread_id t in
    if tid = 0 then begin
      base := B.malloc t ~bytes:region;
      acc_addr := B.malloc t ~bytes:(2 * 65536) + 65536;
      B.write_f64 t !acc_addr 0.0
    end;
    B.barrier_wait t bar;
    for r = 0 to p.rounds - 1 do
      Array.iteri
        (fun v off ->
           if p.owner.(r).(v) = tid then
             B.write_f64 t (!base + off) (value_of ~round:r ~var:v))
        p.offsets;
      for _ = 1 to p.increments.(r).(tid) do
        B.lock t m;
        B.write_f64 t !acc_addr (B.read_f64 t !acc_addr +. 1.0);
        B.unlock t m
      done;
      B.barrier_wait t bar;
      if tid = 0 then
        Array.iteri
          (fun v off -> logs.(r).(v) <- B.read_f64 t (!base + off))
          p.offsets;
      B.barrier_wait t bar
    done;
    if tid = 0 then begin
      B.lock t m;
      final_acc := B.read_f64 t !acc_addr;
      B.unlock t m
    end
  in
  for _ = 1 to p.threads do
    B.spawn sys body
  done;
  B.run sys;
  (logs, !final_acc)

let expected_logs (p : program) =
  let logs = Array.make_matrix p.rounds p.vars nan in
  let current = Array.make p.vars 0.0 in
  for r = 0 to p.rounds - 1 do
    for v = 0 to p.vars - 1 do
      current.(v) <- value_of ~round:r ~var:v;
      logs.(r).(v) <- current.(v)
    done
  done;
  logs

let expected_acc (p : program) =
  float_of_int
    (Array.fold_left
       (fun acc row -> Array.fold_left ( + ) acc row)
       0 p.increments)

let check_backend backend p =
  let logs, acc = run_on backend p in
  logs = expected_logs p && acc = expected_acc p

let prop_samhita_matches_spec =
  QCheck.Test.make ~name:"random DRF programs: Samhita matches the spec"
    ~count:40 arbitrary_program
    (fun p -> check_backend Workload.Samhita_backend.default p)

let prop_smp_matches_spec =
  QCheck.Test.make ~name:"random DRF programs: SMP baseline matches the spec"
    ~count:40 arbitrary_program
    (fun p -> check_backend Workload.Smp_backend.default p)

let prop_samhita_stress_configs =
  (* The same programs under hostile configurations: tiny cache, one-page
     lines, several memory servers, no update history. *)
  let configs =
    [ ("tiny-cache", { Samhita.Config.default with cache_lines = 2 });
      ("one-page-lines", { Samhita.Config.default with pages_per_line = 1 });
      ("three-servers", { Samhita.Config.default with memory_servers = 3 });
      ("no-history", { Samhita.Config.default with update_log_history = 0 });
      ("no-prefetch", { Samhita.Config.default with prefetch = false });
      ( "sc-invalidate",
        { Samhita.Config.default with
          model = Samhita.Config.Sc_invalidate } ) ]
  in
  QCheck.Test.make
    ~name:"random DRF programs under hostile configurations" ~count:15
    arbitrary_program
    (fun p ->
       List.for_all
         (fun (_name, config) ->
            check_backend (Workload.Samhita_backend.make ~config ()) p)
         configs)

let tests =
  [ QCheck_alcotest.to_alcotest prop_samhita_matches_spec;
    QCheck_alcotest.to_alcotest prop_smp_matches_spec;
    QCheck_alcotest.to_alcotest prop_samhita_stress_configs ]

let () = Alcotest.run "equivalence" [ ("random-programs", tests) ]
