(* Tests for the multiple-writer diff machinery. *)

let cfg = Samhita.Config.default
let layout = Samhita.Layout.of_config cfg
let lb = layout.Samhita.Layout.line_bytes
let all_pages = (1 lsl cfg.Samhita.Config.pages_per_line) - 1

let mk_pair () = (Bytes.make lb '\000', Bytes.make lb '\000')

let test_empty_diff () =
  let twin, current = mk_pair () in
  let d =
    Samhita.Diff.make layout ~line:0 ~twin ~current ~dirty_pages:all_pages
  in
  Alcotest.(check bool) "empty" true (Samhita.Diff.is_empty d);
  Alcotest.(check int) "no payload" 0 (Samhita.Diff.payload_bytes d)

let test_single_change () =
  let twin, current = mk_pair () in
  Bytes.set current 100 'x';
  let d = Samhita.Diff.make layout ~line:7 ~twin ~current ~dirty_pages:1 in
  Alcotest.(check int) "line id" 7 d.Samhita.Diff.line;
  Alcotest.(check int) "one span" 1 (Samhita.Diff.span_count d);
  Alcotest.(check int) "one byte" 1 (Samhita.Diff.payload_bytes d);
  let target = Bytes.make lb '\000' in
  Samhita.Diff.apply d target;
  Alcotest.(check char) "applied" 'x' (Bytes.get target 100)

let test_dirty_page_mask_restricts () =
  let twin, current = mk_pair () in
  Bytes.set current 10 'a';  (* page 0 *)
  Bytes.set current 5000 'b';  (* page 1 *)
  let d_page0 =
    Samhita.Diff.make layout ~line:0 ~twin ~current ~dirty_pages:1
  in
  Alcotest.(check int) "only page 0 scanned" 1
    (Samhita.Diff.payload_bytes d_page0);
  let d_page1 =
    Samhita.Diff.make layout ~line:0 ~twin ~current ~dirty_pages:2
  in
  let target = Bytes.make lb '\000' in
  Samhita.Diff.apply d_page1 target;
  Alcotest.(check char) "page1 change applied" 'b' (Bytes.get target 5000);
  Alcotest.(check char) "page0 change not applied" '\000'
    (Bytes.get target 10)

let test_byte_exact_spans () =
  let twin, current = mk_pair () in
  (* Adjacent changed bytes form one span. *)
  Bytes.set current 0 'x';
  Bytes.set current 1 'y';
  let d = Samhita.Diff.make layout ~line:0 ~twin ~current ~dirty_pages:1 in
  Alcotest.(check int) "adjacent bytes, one span" 1
    (Samhita.Diff.span_count d);
  Alcotest.(check int) "two bytes" 2 (Samhita.Diff.payload_bytes d);
  (* Any unchanged byte splits the run: unchanged bytes must never travel
     (multiple-writer soundness). *)
  let twin2, current2 = mk_pair () in
  Bytes.set current2 0 'x';
  Bytes.set current2 2 'y';
  let d2 =
    Samhita.Diff.make layout ~line:0 ~twin:twin2 ~current:current2
      ~dirty_pages:1
  in
  Alcotest.(check int) "gap of one splits" 2 (Samhita.Diff.span_count d2);
  Alcotest.(check int) "exactly the changed bytes" 2
    (Samhita.Diff.payload_bytes d2)

let test_wire_bytes () =
  let twin, current = mk_pair () in
  Bytes.set current 0 'x';
  let d = Samhita.Diff.make layout ~line:0 ~twin ~current ~dirty_pages:1 in
  Alcotest.(check bool) "wire > payload" true
    (Samhita.Diff.wire_bytes d > Samhita.Diff.payload_bytes d)

let test_size_mismatch () =
  Alcotest.check_raises "bad sizes"
    (Invalid_argument "Diff.make: buffers must be line-sized") (fun () ->
      ignore
        (Samhita.Diff.make layout ~line:0 ~twin:(Bytes.create 8)
           ~current:(Bytes.create 8) ~dirty_pages:1))

(* The central multiple-writer property: applying a diff to any base that
   agrees with the twin on the changed bytes reproduces current there,
   while untouched bytes of the base survive (disjoint writers merge). *)
let prop_roundtrip =
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 64)
        (pair (int_bound (lb - 1)) (int_bound 255)))
  in
  QCheck.Test.make ~name:"diff roundtrip restores written bytes" ~count:200
    (QCheck.make gen)
    (fun writes ->
       let twin = Bytes.make lb '\000' in
       let current = Bytes.copy twin in
       List.iter
         (fun (off, v) -> Bytes.set current off (Char.chr v))
         writes;
       let d =
         Samhita.Diff.make layout ~line:0 ~twin ~current
           ~dirty_pages:all_pages
       in
       let target = Bytes.copy twin in
       Samhita.Diff.apply d target;
       Bytes.equal target current)

let prop_disjoint_writers_merge =
  (* Two writers touching disjoint byte sets of the same page — including
     interleaved within one word — must merge exactly at the home,
     regardless of application order. *)
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 24) (int_bound 4095))
        (list_size (int_range 1 24) (int_bound 4095)))
  in
  QCheck.Test.make ~name:"disjoint writers merge at the home" ~count:300
    (QCheck.make gen)
    (fun (offs_a, offs_b) ->
       let offs_a = List.sort_uniq compare offs_a in
       let offs_b =
         List.filter (fun o -> not (List.mem o offs_a))
           (List.sort_uniq compare offs_b)
       in
       let base = Bytes.make lb '\000' in
       let a = Bytes.copy base and b = Bytes.copy base in
       List.iter (fun o -> Bytes.set a o 'A') offs_a;
       List.iter (fun o -> Bytes.set b o 'B') offs_b;
       let da =
         Samhita.Diff.make layout ~line:0 ~twin:base ~current:a
           ~dirty_pages:1
       in
       let db =
         Samhita.Diff.make layout ~line:0 ~twin:base ~current:b
           ~dirty_pages:1
       in
       let try_order first second =
         let home = Bytes.make lb '\000' in
         Samhita.Diff.apply first home;
         Samhita.Diff.apply second home;
         List.for_all (fun o -> Bytes.get home o = 'A') offs_a
         && List.for_all (fun o -> Bytes.get home o = 'B') offs_b
       in
       try_order da db && try_order db da)

let prop_payload_exact =
  QCheck.Test.make ~name:"payload carries exactly the changed bytes"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 32) (int_bound (lb - 1)))
    (fun offs ->
       let twin = Bytes.make lb '\000' in
       let current = Bytes.copy twin in
       List.iter (fun o -> Bytes.set current o 'z') offs;
       let d =
         Samhita.Diff.make layout ~line:0 ~twin ~current
           ~dirty_pages:all_pages
       in
       let changed = List.length (List.sort_uniq compare offs) in
       Samhita.Diff.payload_bytes d = changed)

let tests =
  [ Alcotest.test_case "empty diff" `Quick test_empty_diff;
    Alcotest.test_case "single change" `Quick test_single_change;
    Alcotest.test_case "dirty mask restricts" `Quick
      test_dirty_page_mask_restricts;
    Alcotest.test_case "byte-exact spans" `Quick test_byte_exact_spans;
    Alcotest.test_case "wire bytes" `Quick test_wire_bytes;
    Alcotest.test_case "size mismatch" `Quick test_size_mismatch;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_disjoint_writers_merge;
    QCheck_alcotest.to_alcotest prop_payload_exact ]

let () = Alcotest.run "samhita.diff" [ ("diff", tests) ]
