(* Benchmark driver: regenerates every figure of the paper's evaluation
   (Figures 3-13) plus the ablations, then runs Bechamel micro-benchmarks
   of the core runtime primitives.

     dune exec bench/main.exe                 # everything, paper scale
     dune exec bench/main.exe -- --quick      # shrunken sweeps
     dune exec bench/main.exe -- fig3 fig11   # a subset
     dune exec bench/main.exe -- --no-micro   # skip Bechamel section *)

let run_figures ~scale ~ids =
  let c = Harness.Experiments.ctx scale in
  let all = Harness.Experiments.all c in
  let selected =
    match ids with
    | [] -> all
    | ids ->
      List.map
        (fun id ->
           match List.assoc_opt id all with
           | Some f -> (id, f)
           | None ->
             Printf.eprintf "unknown figure id %S; try: %s\n%!" id
               (String.concat " " (List.map fst all));
             exit 2)
        ids
  in
  List.iter
    (fun (_, f) ->
       let fig = f c in
       Harness.Series.render Format.std_formatter fig)
    selected

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core primitives                    *)

let bechamel_tests () =
  let open Bechamel in
  let cfg = Samhita.Config.default in
  let layout = Samhita.Layout.of_config cfg in
  let line_bytes = Samhita.Config.line_bytes cfg in

  let diff_make =
    (* A realistic twin/current pair: one dirty page, ~25% of its bytes
       changed in runs (the microbenchmark's row pattern). *)
    let twin = Bytes.make line_bytes '\000' in
    let current = Bytes.copy twin in
    for i = 0 to (4096 / 16) - 1 do
      Bytes.set_int64_le current (i * 16) 0x3FF0000000000000L
    done;
    Test.make ~name:"diff.make (1 dirty page)"
      (Staged.stage (fun () ->
           ignore
             (Samhita.Diff.make layout ~line:0 ~twin ~current ~dirty_pages:1
              : Samhita.Diff.t)))
  in
  let diff_apply =
    let twin = Bytes.make line_bytes '\000' in
    let current = Bytes.copy twin in
    for i = 0 to (4096 / 16) - 1 do
      Bytes.set_int64_le current (i * 16) 0x3FF0000000000000L
    done;
    let d = Samhita.Diff.make layout ~line:0 ~twin ~current ~dirty_pages:1 in
    let target = Bytes.make line_bytes '\000' in
    Test.make ~name:"diff.apply"
      (Staged.stage (fun () -> Samhita.Diff.apply d target))
  in
  let heap_bench =
    Test.make ~name:"event-queue push+pop x64"
      (Staged.stage (fun () ->
           let h = Desim.Heap.create ~initial_capacity:128 () in
           for i = 0 to 63 do
             Desim.Heap.push h ~time:(i * 37 mod 101) i
           done;
           let rec drain () =
             match Desim.Heap.pop h with
             | Some _ -> drain ()
             | None -> ()
           in
           drain ()))
  in
  let rng_bench =
    let rng = Desim.Rng.create ~seed:7 in
    Test.make ~name:"rng.int64"
      (Staged.stage (fun () -> ignore (Desim.Rng.int64 rng : int64)))
  in
  let arena_bench =
    let arena = Samhita.Allocator.Arena.create () in
    Samhita.Allocator.Arena.add_chunk arena ~base:0 ~size:(1 lsl 20);
    Test.make ~name:"arena alloc+free"
      (Staged.stage (fun () ->
           match Samhita.Allocator.Arena.alloc arena ~bytes:64 with
           | `Hit addr -> Samhita.Allocator.Arena.free arena ~addr ~bytes:64
           | `Need_chunk ->
             Samhita.Allocator.Arena.add_chunk arena ~base:0
               ~size:(1 lsl 20)))
  in
  let smp_read =
    let mcfg = Smp.Config.default in
    let machine = Smp.Machine.create mcfg in
    let addr = Smp.Machine.alloc machine ~bytes:4096 ~align:64 in
    Test.make ~name:"smp coherence read_cost"
      (Staged.stage (fun () ->
           ignore (Smp.Machine.read_cost machine ~thread:0 ~addr : float)))
  in
  let update_apply =
    let u = Samhita.Update.of_i64 ~addr:128 0x4000000000000000L in
    let buf = Bytes.make line_bytes '\000' in
    Test.make ~name:"update.apply_to_line"
      (Staged.stage (fun () ->
           Samhita.Update.apply_to_line layout u ~line:0 buf))
  in
  [ diff_make; diff_apply; heap_bench; rng_bench; arena_bench; smp_read;
    update_apply ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  print_endline "== core-primitive micro-benchmarks (Bechamel) ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
       let results = Benchmark.all cfg instances test in
       let analyzed = Analyze.all ols Instance.monotonic_clock results in
       Hashtbl.iter
         (fun name v ->
            match Analyze.OLS.estimates v with
            | Some [ est ] -> Printf.printf "  %-32s %10.1f ns/run\n%!" name est
            | _ -> Printf.printf "  %-32s (no estimate)\n%!" name)
         analyzed)
    (List.map (fun t -> Test.make_grouped ~name:"" [ t ]) (bechamel_tests ()));
  print_newline ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let no_micro = List.mem "--no-micro" args in
  let ids =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let scale =
    if quick then Harness.Experiments.Quick else Harness.Experiments.Paper
  in
  Printf.printf
    "Samhita/RegC reproduction benchmarks (%s scale)\n\
     one table per figure of the paper's evaluation; see EXPERIMENTS.md\n\n"
    (if quick then "quick" else "paper");
  run_figures ~scale ~ids;
  if not no_micro then run_bechamel ()
