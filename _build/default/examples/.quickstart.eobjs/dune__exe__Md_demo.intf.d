examples/md_demo.mli:
