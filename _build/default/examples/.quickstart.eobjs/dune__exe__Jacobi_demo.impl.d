examples/jacobi_demo.ml: Float List Printf Workload
