examples/quickstart.ml: Format List Printf Samhita
