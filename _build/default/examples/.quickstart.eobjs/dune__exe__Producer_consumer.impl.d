examples/producer_consumer.ml: Array Desim Format Printf Samhita
