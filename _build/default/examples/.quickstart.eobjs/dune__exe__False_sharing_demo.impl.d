examples/false_sharing_demo.ml: Array List Printf Workload
