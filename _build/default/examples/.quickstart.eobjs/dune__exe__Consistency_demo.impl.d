examples/consistency_demo.ml: List Printf Samhita Workload
