examples/md_demo.ml: Float List Printf Workload
