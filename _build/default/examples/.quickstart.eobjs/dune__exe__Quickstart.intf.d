examples/quickstart.mli:
