(* Molecular dynamics on both runtimes (paper Figure 13).

   A velocity-Verlet n-body integration whose O(n) computation per
   particle masks the DSM's synchronization overhead — the paper's example
   of an application class that scales well on Samhita. Prints the energy
   trace and verifies positions exactly against a sequential reference.

     dune exec examples/md_demo.exe *)

let () =
  let p = { Workload.Md.default_params with n = 256; steps = 6 } in
  let ref_sum, ref_energies = Workload.Md.reference p in
  Printf.printf "molecular dynamics: %d particles, %d steps\n\n" p.n p.steps;
  let smh =
    Workload.Md.run Workload.Samhita_backend.default ~threads:16 p
  in
  let pth = Workload.Md.run Workload.Smp_backend.default ~threads:8 p in
  Printf.printf "  pthreads P=8  wall %8.3f ms  positions exact: %b\n"
    (float_of_int pth.wall_ns /. 1e6)
    (pth.pos_checksum = ref_sum);
  Printf.printf "  samhita  P=16 wall %8.3f ms  positions exact: %b\n\n"
    (float_of_int smh.wall_ns /. 1e6)
    (smh.pos_checksum = ref_sum);
  Printf.printf "  %4s  %14s  %14s  %12s\n" "step" "kinetic" "potential"
    "drift vs ref";
  List.iteri
    (fun i ((ke, pe), (rke, rpe)) ->
       let drift =
         Float.abs (ke -. rke) +. Float.abs (pe -. rpe)
       in
       Printf.printf "  %4d  %14.6f  %14.6f  %12.3e\n" i ke pe drift)
    (List.combine smh.energies ref_energies);
  print_newline ();
  print_endline
    "energies accumulate under a mutex, so cross-thread addition order\n\
     differs from the sequential reference: drift is floating-point\n\
     reassociation noise, positions remain bit-exact."
