(* Quickstart: the raw Samhita API (no workload functors).

   Boots a Samhita instance (manager + memory server + compute nodes on a
   simulated QDR InfiniBand fabric), spawns four compute threads that
   cooperatively sum into shared memory under a mutex — exactly the
   pthreads idiom the paper says ports trivially — and prints the
   per-thread time split and run metrics.

     dune exec examples/quickstart.exe *)

let threads = 4
let increments_per_thread = 100

let () =
  let sys = Samhita.System.create ~threads () in
  let counter_lock = Samhita.System.mutex sys in
  let finish_barrier = Samhita.System.barrier sys ~parties:threads in
  (* Thread 0 allocates the shared counter; the address reaches the other
     threads out of band, like passing a pointer to pthread_create. *)
  let counter = ref 0 in
  for _i = 1 to threads do
    ignore
      (Samhita.System.spawn sys (fun t ->
           if Samhita.Thread_ctx.id t = 0 then begin
             counter := Samhita.Thread_ctx.malloc t ~bytes:8;
             Samhita.Thread_ctx.write_f64 t !counter 0.0
           end;
           Samhita.Thread_ctx.barrier_wait t finish_barrier;
           for _k = 1 to increments_per_thread do
             (* Classic critical section: stores inside it are propagated
                as fine-grained updates at release (RegC). *)
             Samhita.Thread_ctx.mutex_lock t counter_lock;
             let v = Samhita.Thread_ctx.read_f64 t !counter in
             Samhita.Thread_ctx.write_f64 t !counter (v +. 1.0);
             Samhita.Thread_ctx.mutex_unlock t counter_lock;
             (* Some private work between critical sections. *)
             Samhita.Thread_ctx.charge_flops t 1000
           done;
           Samhita.Thread_ctx.barrier_wait t finish_barrier;
           if Samhita.Thread_ctx.id t = 0 then begin
             Samhita.Thread_ctx.mutex_lock t counter_lock;
             let v = Samhita.Thread_ctx.read_f64 t !counter in
             Samhita.Thread_ctx.mutex_unlock t counter_lock;
             Printf.printf "final counter: %.0f (expected %d)\n" v
               (threads * increments_per_thread)
           end)
        : Samhita.Thread_ctx.t)
  done;
  Samhita.System.run sys;
  print_endline "per-thread metrics:";
  List.iter
    (fun ctx ->
       Format.printf "  %a@." Samhita.Metrics.pp_thread
         (Samhita.Metrics.of_ctx ctx))
    (Samhita.System.threads sys);
  Format.printf "aggregate: %a@." Samhita.Metrics.pp_aggregate
    (Samhita.Metrics.of_system sys)
