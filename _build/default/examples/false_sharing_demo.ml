(* False sharing under the three allocation strategies (paper section III).

   Runs the paper's micro-benchmark on the Samhita DSM with local, global
   and global-strided allocation and shows how compute time, sync time and
   miss counts respond to the allocation/access pattern — the central
   trade-off the paper quantifies in Figures 3-10.

     dune exec examples/false_sharing_demo.exe *)

let () =
  let threads = 8 in
  let p = { Workload.Microbench.default_params with m_inner = 10 } in
  Printf.printf
    "micro-benchmark on Samhita, %d threads, M=%d S=%d B=%d (steady state)\n\n"
    threads p.m_inner p.s_rows p.b_cols;
  Printf.printf "  %-8s  %12s  %12s  %8s  %8s\n" "alloc" "compute(ms)"
    "sync(ms)" "misses" "gsum ok";
  List.iter
    (fun alloc ->
       let r =
         Workload.Microbench.run Workload.Samhita_backend.default ~threads
           { p with alloc }
       in
       Printf.printf "  %-8s  %12.3f  %12.3f  %8d  %8b\n"
         (Workload.Microbench.mode_name alloc)
         (Workload.Microbench.mean r.compute_ns /. 1e6)
         (Workload.Microbench.mean r.sync_ns /. 1e6)
         (Array.fold_left ( + ) 0 r.misses)
         (r.gsum = r.expected_gsum))
    [ Workload.Microbench.Local; Global; Global_strided ];
  print_newline ();
  print_endline
    "local allocation avoids false sharing entirely (per-thread arenas);";
  print_endline
    "strided access maximizes it: more invalidations, more misses, more\n\
     data moved at synchronization points — amortized only by computation."
