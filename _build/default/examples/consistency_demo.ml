(* Why regional consistency? RegC vs a sequentially-consistent DSM.

   Runs the paper's micro-benchmark on the Samhita runtime twice: once
   under RegC and once under the IVY-style single-writer engine
   (Config.model = Sc_invalidate). With private (local) data the two are
   close; under strided false sharing the SC engine pays a full coherence
   transaction per store — the cost that motivated weakening the
   consistency model in the first place (paper sections I-II).

     dune exec examples/consistency_demo.exe *)

let () =
  let threads = 4 in
  let p = { Workload.Microbench.default_params with m_inner = 5 } in
  let regc = Workload.Samhita_backend.default in
  let sc =
    Workload.Samhita_backend.make
      ~config:
        { Samhita.Config.default with model = Samhita.Config.Sc_invalidate }
      ()
  in
  Printf.printf
    "micro-benchmark, %d threads, M=%d: compute time per thread (ms)\n\n"
    threads p.m_inner;
  Printf.printf "  %-8s  %14s  %14s  %10s\n" "alloc" "regc" "sc-invalidate"
    "ratio";
  List.iter
    (fun alloc ->
       let run backend =
         let r =
           Workload.Microbench.run backend ~threads
             { p with Workload.Microbench.alloc }
         in
         assert (r.gsum = r.expected_gsum);
         Workload.Microbench.mean r.compute_ns /. 1e6
       in
       let a = run regc and b = run sc in
       Printf.printf "  %-8s  %14.3f  %14.3f  %9.0fx\n"
         (Workload.Microbench.mode_name alloc)
         a b (b /. a))
    [ Workload.Microbench.Local; Global; Global_strided ];
  print_newline ();
  print_endline
    "both engines produce bit-identical results; only the cost differs.\n\
     Under false sharing, single-writer coherence ping-pongs the line on\n\
     every store, while RegC's multiple-writer diffs batch the damage\n\
     into synchronization points — the reason DSM systems weaken the\n\
     consistency model (and what RegC keeps programmable)."
