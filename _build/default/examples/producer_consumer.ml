(* Producer/consumer over virtual shared memory with condition variables.

   A bounded buffer lives in the shared global address space; producers
   and consumers coordinate with the mutex + condition variables the
   Samhita API offers alongside barriers (paper section II). Everything —
   the ring storage, head/tail indices — is DSM data kept consistent by
   RegC's consistency-region rules.

     dune exec examples/producer_consumer.exe *)

let capacity = 8
let items_per_producer = 25
let producers = 2
let consumers = 2

let () =
  let threads = producers + consumers in
  let sys = Samhita.System.create ~threads () in
  let m = Samhita.System.mutex sys in
  let not_full = Samhita.System.cond sys in
  let not_empty = Samhita.System.cond sys in
  let start = Samhita.System.barrier sys ~parties:threads in
  (* Shared layout: [head; tail; count; ring[capacity]] as doubles. *)
  let base = ref 0 in
  let slot i = !base + (8 * (3 + i)) in
  let consumed = Array.make consumers 0.0 in
  let module T = Samhita.Thread_ctx in
  let get t addr = int_of_float (T.read_f64 t addr) in
  let set t addr v = T.write_f64 t addr (float_of_int v) in
  let body t =
    let tid = T.id t in
    if tid = 0 then begin
      base := T.malloc t ~bytes:(8 * (3 + capacity));
      set t !base 0;
      set t (!base + 8) 0;
      set t (!base + 16) 0
    end;
    T.barrier_wait t start;
    let head_a = !base and tail_a = !base + 8 and count_a = !base + 16 in
    if tid < producers then
      for k = 1 to items_per_producer do
        T.mutex_lock t m;
        while get t count_a = capacity do
          T.cond_wait t not_full m
        done;
        let tail = get t tail_a in
        T.write_f64 t (slot tail) (float_of_int ((tid * 1000) + k));
        set t tail_a ((tail + 1) mod capacity);
        set t count_a (get t count_a + 1);
        T.cond_signal t not_empty;
        T.mutex_unlock t m;
        T.charge_flops t 500
      done
    else begin
      let cid = tid - producers in
      let quota = producers * items_per_producer / consumers in
      let acc = ref 0.0 in
      for _k = 1 to quota do
        T.mutex_lock t m;
        while get t count_a = 0 do
          T.cond_wait t not_empty m
        done;
        let head = get t head_a in
        acc := !acc +. T.read_f64 t (slot head);
        set t head_a ((head + 1) mod capacity);
        set t count_a (get t count_a - 1);
        T.cond_signal t not_full;
        T.mutex_unlock t m;
        T.charge_flops t 800
      done;
      consumed.(cid) <- !acc
    end
  in
  for _ = 1 to threads do
    ignore (Samhita.System.spawn sys body : T.t)
  done;
  Samhita.System.run sys;
  let total = Array.fold_left ( +. ) 0.0 consumed in
  let expected =
    let s = ref 0.0 in
    for p = 0 to producers - 1 do
      for k = 1 to items_per_producer do
        s := !s +. float_of_int ((p * 1000) + k)
      done
    done;
    !s
  in
  Printf.printf
    "producer/consumer over DSM: consumed sum %.0f (expected %.0f) %s\n"
    total expected
    (if total = expected then "OK" else "MISMATCH");
  Format.printf "simulated time: %a@." Desim.Time.pp
    (Samhita.System.elapsed sys)
