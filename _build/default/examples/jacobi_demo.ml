(* Jacobi solver on both runtimes (paper Figure 12).

   Solves the discrete Laplace problem with the same kernel code on the
   Pthreads (SMP) baseline and on the Samhita DSM — the functor-over-
   backend structure mirrors the paper's single m4-macro code base — and
   verifies both against a sequential reference, bit for bit.

     dune exec examples/jacobi_demo.exe *)

let () =
  let p = { Workload.Jacobi.default_params with n = 128; iters = 10 } in
  let ref_sum, ref_res = Workload.Jacobi.reference p in
  Printf.printf "Jacobi %dx%d, %d sweeps (reference residual %.6f)\n\n" p.n
    p.n p.iters ref_res;
  Printf.printf "  %-10s %4s  %10s  %10s  %8s\n" "runtime" "P" "wall(ms)"
    "speedup" "exact";
  let base = ref nan in
  List.iter
    (fun (backend, name, threads) ->
       let r = Workload.Jacobi.run backend ~threads p in
       let wall_ms = float_of_int r.wall_ns /. 1e6 in
       if Float.is_nan !base then base := wall_ms;
       Printf.printf "  %-10s %4d  %10.3f  %10.2f  %8b\n" name threads
         wall_ms (!base /. wall_ms)
         (r.checksum = ref_sum))
    [ (Workload.Smp_backend.default, "pthreads", 1);
      (Workload.Smp_backend.default, "pthreads", 4);
      (Workload.Smp_backend.default, "pthreads", 8);
      (Workload.Samhita_backend.default, "samhita", 4);
      (Workload.Samhita_backend.default, "samhita", 8);
      (Workload.Samhita_backend.default, "samhita", 16) ];
  print_newline ();
  print_endline
    "\"exact\" means the DSM run reproduced the sequential grid bit for\n\
     bit: every page fetch, diff merge and write notice preserved the data.\n\
     At this demo size synchronization dominates the DSM runs; the\n\
     paper-scale grid (dune exec bench/main.exe -- fig12) shows Samhita\n\
     scaling to 16 cores."
