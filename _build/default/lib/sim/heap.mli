(** Array-backed binary min-heap used as the simulator's event queue.

    Entries are ordered by [(time, seq)]: the sequence number is assigned on
    insertion, making the pop order of simultaneous events deterministic
    (FIFO among equals). *)

type 'a t

val create : ?initial_capacity:int -> unit -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** Insert a payload keyed by [time]. O(log n). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the entry with the smallest [(time, seq)] key,
    as [(time, payload)]. O(log n). *)

val peek_time : 'a t -> int option
(** Time key of the next entry without removing it. *)

val clear : 'a t -> unit
