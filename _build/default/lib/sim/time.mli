(** Simulated time.

    All simulation time is an integer number of nanoseconds since the start
    of the simulation. Spans (durations) share the representation. 63-bit
    integers give ~292 simulated years, far beyond any experiment here. *)

type t = private int
(** An absolute instant, in nanoseconds since simulation start. *)

type span = int
(** A duration in nanoseconds. Durations are plain ints so cost models can
    do arithmetic without friction. *)

val zero : t
val of_ns : int -> t
val to_ns : t -> int

val add : t -> span -> t
val diff : t -> t -> span
(** [diff a b] is [a - b] in nanoseconds. *)

val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val compare : t -> t -> int
val max : t -> t -> t

val ns : int -> span
val us : int -> span
val ms : int -> span
val s : int -> span

val span_of_float_ns : float -> span
(** Round a float nanosecond duration to the nearest integer span, never
    below zero. *)

val to_float_s : t -> float
val span_to_float_s : span -> float

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)

val pp_span : Format.formatter -> span -> unit
