lib/sim/heap.mli:
