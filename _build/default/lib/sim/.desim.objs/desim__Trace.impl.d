lib/sim/trace.ml: Format List Logs Time
