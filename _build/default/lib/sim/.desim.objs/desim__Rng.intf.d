lib/sim/rng.mli:
