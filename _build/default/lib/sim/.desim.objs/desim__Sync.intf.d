lib/sim/sync.mli:
