lib/sim/engine.ml: Effect Heap Printexc Printf Time Trace
