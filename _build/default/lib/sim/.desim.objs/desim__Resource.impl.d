lib/sim/resource.ml: Time
