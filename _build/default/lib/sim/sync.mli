(** Process-level synchronization primitives for the simulator itself.

    These are building blocks for modeling components ({e not} the DSM's
    application-facing primitives, which live in the [samhita] library and
    carry consistency semantics). All operations that can block must be
    called from inside a process body. *)

(** Write-once cell: readers block until the value arrives. *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t
  val fill : 'a t -> 'a -> unit
  (** Raises [Invalid_argument] when filled twice. *)

  val is_filled : 'a t -> bool
  val peek : 'a t -> 'a option
  val read : 'a t -> 'a
  (** Blocks until filled. *)
end

(** Unbounded FIFO channel between processes. *)
module Mailbox : sig
  type 'a t

  val create : unit -> 'a t
  val send : 'a t -> 'a -> unit
  val recv : 'a t -> 'a
  (** Blocks until a message is available. Waiting receivers are served in
      FIFO order. *)

  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end

(** Counting semaphore with FIFO wakeup. *)
module Semaphore : sig
  type t

  val create : int -> t
  val acquire : t -> unit
  val release : t -> unit
  val available : t -> int
end
