(** Metric accumulators used throughout the simulator. *)

module Counter : sig
  type t
  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** Streaming summary statistics (Welford's online algorithm). *)
module Summary : sig
  type t
  val create : unit -> t
  val add : t -> float -> unit
  val n : t -> int
  val mean : t -> float
  val variance : t -> float
  (** Sample variance; 0 for fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  (** [min]/[max] are [nan] when empty. *)

  val total : t -> float
  val reset : t -> unit
  val pp : Format.formatter -> t -> unit
end

(** Power-of-two bucketed histogram for latency-style distributions. *)
module Histogram : sig
  type t
  val create : unit -> t
  val add : t -> int -> unit
  (** Negative observations count into the zero bucket. *)

  val count : t -> int
  val bucket_counts : t -> (int * int) list
  (** [(upper_bound, count)] for every non-empty bucket, ascending. *)

  val percentile : t -> float -> int
  (** Approximate percentile (upper bound of the containing bucket).
      [percentile t 0.5] is the median estimate. Raises [Invalid_argument]
      on an empty histogram or p outside [0;1]. *)

  val reset : t -> unit
end
