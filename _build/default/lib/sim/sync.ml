module Ivar = struct
  type 'a state = Empty of ('a -> unit) Queue.t | Full of 'a

  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty (Queue.create ()) }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
      t.state <- Full v;
      Queue.iter (fun wake -> wake v) waiters

  let is_filled t = match t.state with Full _ -> true | Empty _ -> false

  let peek t = match t.state with Full v -> Some v | Empty _ -> None

  let read t =
    match t.state with
    | Full v -> v
    | Empty waiters ->
      Engine.suspendv ~register:(fun ~wake -> Queue.push wake waiters)
end

module Mailbox = struct
  type 'a t = {
    messages : 'a Queue.t;
    waiters : ('a -> unit) Queue.t;
  }

  let create () = { messages = Queue.create (); waiters = Queue.create () }

  let send t v =
    match Queue.take_opt t.waiters with
    | Some wake -> wake v
    | None -> Queue.push v t.messages

  let recv t =
    match Queue.take_opt t.messages with
    | Some v -> v
    | None ->
      Engine.suspendv ~register:(fun ~wake -> Queue.push wake t.waiters)

  let try_recv t = Queue.take_opt t.messages
  let length t = Queue.length t.messages
end

module Semaphore = struct
  type t = {
    mutable count : int;
    waiters : (unit -> unit) Queue.t;
  }

  let create n =
    if n < 0 then invalid_arg "Semaphore.create: negative count";
    { count = n; waiters = Queue.create () }

  let acquire t =
    if t.count > 0 then t.count <- t.count - 1
    else Engine.suspend ~register:(fun ~wake -> Queue.push wake t.waiters)

  let release t =
    match Queue.take_opt t.waiters with
    | Some wake -> wake ()
    | None -> t.count <- t.count + 1

  let available t = t.count
end
