module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let value t = t.v
  let reset t = t.v <- 0
end

module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.; m2 = 0.; min = nan; max = nan; total = 0. }

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if t.n = 1 then begin
      t.min <- x;
      t.max <- x
    end else begin
      if x < t.min then t.min <- x;
      if x > t.max then t.max <- x
    end

  let n t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let total t = t.total

  let reset t =
    t.n <- 0;
    t.mean <- 0.;
    t.m2 <- 0.;
    t.min <- nan;
    t.max <- nan;
    t.total <- 0.

  let pp ppf t =
    Format.fprintf ppf "n=%d mean=%.3g sd=%.3g min=%.3g max=%.3g" t.n
      (mean t) (stddev t) t.min t.max
end

module Histogram = struct
  (* Bucket i holds observations v with 2^(i-1) < v <= 2^i; bucket 0 holds
     v <= 1 (including negatives, clamped). 63 buckets cover all ints. *)
  let buckets = 63

  type t = { counts : int array; mutable total : int }

  let create () = { counts = Array.make buckets 0; total = 0 }

  let bucket_of v =
    if v <= 1 then 0
    else
      let rec find i bound =
        if v <= bound || i = buckets - 1 then i else find (i + 1) (bound * 2)
      in
      find 1 2

  let add t v =
    t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
    t.total <- t.total + 1

  let count t = t.total

  let upper_bound i = if i = 0 then 1 else 1 lsl i

  let bucket_counts t =
    let acc = ref [] in
    for i = buckets - 1 downto 0 do
      if t.counts.(i) > 0 then acc := (upper_bound i, t.counts.(i)) :: !acc
    done;
    !acc

  let percentile t p =
    if t.total = 0 then invalid_arg "Histogram.percentile: empty";
    if p < 0. || p > 1. then invalid_arg "Histogram.percentile: p not in [0;1]";
    let target = int_of_float (ceil (p *. float_of_int t.total)) in
    let target = if target < 1 then 1 else target in
    let rec walk i seen =
      let seen = seen + t.counts.(i) in
      if seen >= target || i = buckets - 1 then upper_bound i
      else walk (i + 1) seen
    in
    walk 0 0

  let reset t =
    Array.fill t.counts 0 buckets 0;
    t.total <- 0
end
