(** Lightweight event tracing.

    A trace either discards events (the default, zero-allocation fast path)
    or records [(time, tag, message)] triples for tests and debugging. *)

type t

type event = { time : Time.t; tag : string; message : string }

val null : t
(** Discards everything. *)

val recording : unit -> t
(** Collects events in memory (in emission order). *)

val logging : unit -> t
(** Forwards events to the [Logs] library at debug level. *)

val enabled : t -> bool

val emit : t -> time:Time.t -> tag:string -> string -> unit
val emitf :
  t -> time:Time.t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val events : t -> event list
(** Recorded events, oldest first. Empty for [null] and [logging]. *)

val clear : t -> unit
