type t = int
type span = int

let zero = 0
let of_ns n = n
let to_ns t = t
let add t d = t + d
let diff a b = a - b
let ( <= ) (a : t) (b : t) = Stdlib.( <= ) a b
let ( < ) (a : t) (b : t) = Stdlib.( < ) a b
let compare (a : t) (b : t) = Stdlib.compare a b
let max (a : t) (b : t) = Stdlib.max a b
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000

let span_of_float_ns f =
  if Stdlib.( <= ) f 0. then 0 else int_of_float (Float.round f)

let to_float_s t = float_of_int t *. 1e-9
let span_to_float_s d = float_of_int d *. 1e-9

let pp_raw ppf (n : int) =
  if n < 1_000 then Format.fprintf ppf "%dns" n
  else if n < 1_000_000 then Format.fprintf ppf "%.2fus" (float_of_int n /. 1e3)
  else if n < 1_000_000_000 then
    Format.fprintf ppf "%.2fms" (float_of_int n /. 1e6)
  else Format.fprintf ppf "%.3fs" (float_of_int n /. 1e9)

let pp ppf t = pp_raw ppf t
let pp_span ppf d = pp_raw ppf d
