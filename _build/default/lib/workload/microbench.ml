(** The paper's micro-benchmark (Figure 2).

    Per compute thread: [s_rows] rows of [b_cols] doubles. The inner
    compute loop runs [m_inner] times over the thread's data, doing two
    floating-point operations per element; each outer iteration ends with a
    mutex-protected global-sum update and a barrier. Memory comes from one
    of the three allocation/access strategies of §III:

    - [Local]: each thread allocates its own rows (arena allocation — no
      false sharing by construction);
    - [Global]: one thread makes a single large allocation, threads use
      contiguous blocks of it (false sharing at block boundaries);
    - [Global_strided]: same allocation, rows interleaved round-robin
      across threads (maximal false sharing).

    Compute and synchronization time are measured from outer iteration
    [warmup] onward, i.e. in the steady state: the paper's compute-time
    figures reflect warm caches (cold, first-touch misses would otherwise
    dominate the smallest configurations). *)

type alloc_mode = Local | Global | Global_strided

let mode_name = function
  | Local -> "local"
  | Global -> "global"
  | Global_strided -> "strided"

type params = {
  n_outer : int;
  m_inner : int;
  s_rows : int;
  b_cols : int;
  alloc : alloc_mode;
  warmup : int;  (** Outer iterations excluded from measurement. *)
  decay : float;  (** The constant [r] of the kernel. *)
}

let default_params =
  { n_outer = 10;
    m_inner = 10;
    s_rows = 2;
    b_cols = 256;
    alloc = Local;
    warmup = 1;
    decay = 0.999 }

type result = {
  params : params;
  threads : int;
  wall_ns : int;
  compute_ns : int array;  (** Per thread, measured window only. *)
  sync_ns : int array;
  misses : int array;  (** Total misses per thread (whole run). *)
  gsum : float;
  expected_gsum : float;
}

(* Sequential emulation of the kernel arithmetic: every thread performs the
   identical element operations on identically-initialized data, so the
   per-outer-iteration partial sum is one number; the global sum adds it
   once per thread per outer iteration, in an order that cannot affect the
   result (all addends within an iteration are equal). *)
let expected_gsum (p : params) ~threads =
  let a = Array.make (p.s_rows * p.b_cols) 1.0 in
  let g = ref 0.0 in
  for _i = 0 to p.n_outer - 1 do
    let sum = ref 0.0 in
    for _j = 0 to p.m_inner - 1 do
      for k = 0 to p.s_rows - 1 do
        let rsum = ref 0.0 in
        for l = 0 to p.b_cols - 1 do
          let idx = (k * p.b_cols) + l in
          a.(idx) <- p.decay *. a.(idx);
          rsum := !rsum +. a.(idx)
        done;
        sum := !sum +. (Float.pi *. !rsum)
      done
    done;
    for _t = 0 to threads - 1 do
      g := !g +. !sum
    done
  done;
  !g

module Make (B : Backend_sig.S) = struct
  let run ~threads (p : params) =
    if threads <= 0 then invalid_arg "Microbench.run: threads";
    if p.warmup >= p.n_outer then
      invalid_arg "Microbench.run: warmup must be < n_outer";
    let sys = B.create ~threads in
    let m = B.mutex sys in
    let bar = B.barrier sys ~parties:threads in
    let row_bytes = p.b_cols * 8 in
    let block_bytes = p.s_rows * row_bytes in
    let gsum_addr = ref 0 in
    let base_addr = ref 0 in
    let compute = Array.make threads 0 in
    let sync = Array.make threads 0 in
    let misses = Array.make threads 0 in
    let gsum_out = ref nan in
    let body t =
      let tid = B.thread_id t in
      if tid = 0 then begin
        (* Lock-protected scalar on its own line (see Kernel_util). *)
        gsum_addr :=
          B.malloc t ~bytes:(Kernel_util.isolated_size 8)
          + Kernel_util.isolation_pad;
        B.write_f64 t !gsum_addr 0.0;
        if p.alloc <> Local then
          base_addr := B.malloc t ~bytes:(threads * block_bytes)
      end;
      B.barrier_wait t bar;
      let my_base =
        match p.alloc with
        | Local -> B.malloc t ~bytes:block_bytes
        | Global -> !base_addr + (tid * block_bytes)
        | Global_strided -> !base_addr
      in
      let row_addr k =
        match p.alloc with
        | Local | Global -> my_base + (k * row_bytes)
        | Global_strided -> my_base + (((k * threads) + tid) * row_bytes)
      in
      (* First-touch initialization of this thread's rows. *)
      for k = 0 to p.s_rows - 1 do
        let base = row_addr k in
        for l = 0 to p.b_cols - 1 do
          B.write_f64 t (base + (l * 8)) 1.0
        done
      done;
      B.barrier_wait t bar;
      let c0 = ref 0 and s0 = ref 0 in
      for i = 0 to p.n_outer - 1 do
        if i = p.warmup then begin
          c0 := B.compute_ns t;
          s0 := B.sync_ns t
        end;
        let sum = ref 0.0 in
        for _j = 0 to p.m_inner - 1 do
          for k = 0 to p.s_rows - 1 do
            let base = row_addr k in
            let rsum = ref 0.0 in
            for l = 0 to p.b_cols - 1 do
              let addr = base + (l * 8) in
              let v = p.decay *. B.read_f64 t addr in
              B.write_f64 t addr v;
              rsum := !rsum +. v
            done;
            B.charge_flops t (2 * p.b_cols);
            sum := !sum +. (Float.pi *. !rsum);
            B.charge_flops t 2
          done
        done;
        B.lock t m;
        B.write_f64 t !gsum_addr (B.read_f64 t !gsum_addr +. !sum);
        B.unlock t m;
        B.barrier_wait t bar
      done;
      compute.(tid) <- B.compute_ns t - !c0;
      sync.(tid) <- B.sync_ns t - !s0;
      misses.(tid) <- B.misses t;
      (* gsum is lock-protected data: under RegC (as under Pthreads) it must
         be read under its mutex. *)
      if tid = 0 then begin
        B.lock t m;
        gsum_out := B.read_f64 t !gsum_addr;
        B.unlock t m
      end
    in
    for _i = 1 to threads do
      B.spawn sys body
    done;
    B.run sys;
    { params = p;
      threads;
      wall_ns = B.elapsed_ns sys;
      compute_ns = compute;
      sync_ns = sync;
      misses;
      gsum = !gsum_out;
      expected_gsum = expected_gsum p ~threads }
end

let run (backend : Backend_sig.backend) ~threads p =
  let module B = (val backend) in
  let module M = Make (B) in
  M.run ~threads p

let mean a =
  Array.fold_left (fun acc x -> acc +. float_of_int x) 0. a
  /. float_of_int (Array.length a)
