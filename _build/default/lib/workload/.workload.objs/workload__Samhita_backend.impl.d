lib/workload/samhita_backend.ml: Backend_sig Desim Samhita
