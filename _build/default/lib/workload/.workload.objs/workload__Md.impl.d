lib/workload/md.ml: Array Backend_sig Kernel_util List
