lib/workload/backend_sig.ml:
