lib/workload/microbench.ml: Array Backend_sig Float Kernel_util
