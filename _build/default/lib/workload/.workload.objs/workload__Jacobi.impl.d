lib/workload/jacobi.ml: Array Backend_sig Float Kernel_util List
