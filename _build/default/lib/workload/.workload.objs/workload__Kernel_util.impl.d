lib/workload/kernel_util.ml:
