lib/workload/smp_backend.ml: Backend_sig Desim Smp
